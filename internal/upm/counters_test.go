package upm

import "testing"

// TestCounterVector: the steady-state detector's view of the engine —
// AppendCounters layout matches CounterLen, a MigrateMemory invocation
// moves the vector (and LastMigrations), and ApplyCounterDelta lands
// exactly on snapshot + k*delta.
func TestCounterVector(t *testing.T) {
	m, u, lo := mk(t, 4, Options{})
	s0 := u.AppendCounters(nil)
	if len(s0) != u.CounterLen() {
		t.Fatalf("AppendCounters produced %d elements, CounterLen says %d", len(s0), u.CounterLen())
	}

	hammer(m, lo, 3, 200)
	hammer(m, lo, 0, 50)
	if n := u.MigrateMemory(m.CPU(0)); n != 1 {
		t.Fatalf("MigrateMemory moved %d pages, want 1", n)
	}
	if u.LastMigrations() != 1 {
		t.Errorf("LastMigrations = %d, want 1", u.LastMigrations())
	}
	s1 := u.AppendCounters(nil)
	delta := make([]int64, len(s1))
	var moved bool
	for i := range s1 {
		delta[i] = s1[i] - s0[i]
		moved = moved || delta[i] != 0
	}
	if !moved {
		t.Fatal("an invocation that migrated left the counter vector unchanged")
	}

	const k = 7
	u.ApplyCounterDelta(delta, k)
	s2 := u.AppendCounters(nil)
	for i := range s2 {
		if want := s1[i] + k*delta[i]; s2[i] != want {
			t.Errorf("counter %d: got %d, want %d after fast-forward", i, s2[i], want)
		}
	}
	if got := u.Stats().Migrations; got != (k+1)*1 {
		t.Errorf("Stats().Migrations = %d, want %d", got, k+1)
	}

	defer func() {
		if recover() == nil {
			t.Error("no panic on a wrong-length delta")
		}
	}()
	u.ApplyCounterDelta(delta[:2], 1)
}

// TestResetHotCounters zeroes every hot row so the next decision sees a
// fresh trace.
func TestResetHotCounters(t *testing.T) {
	m, u, lo := mk(t, 2, Options{})
	hammer(m, lo, 3, 200)
	u.ResetHotCounters()
	rows := m.PT.Counters(lo, nil)
	for node, v := range rows {
		if v != 0 {
			t.Errorf("node %d row = %d after reset, want 0", node, v)
		}
	}
	// A post-reset invocation sees no dominance and moves nothing.
	if n := u.MigrateMemory(m.CPU(0)); n != 0 {
		t.Errorf("MigrateMemory moved %d pages off a reset trace, want 0", n)
	}
}

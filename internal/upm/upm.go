// Package upm implements UPMlib, the paper's contribution: a user-level
// dynamic page migration engine that gives OpenMP programs implicit data
// distribution and redistribution without any API change.
//
// Mechanisms, with the paper's Fortran entry points in parentheses:
//
//   - hot-area registration (upmlib_memrefcnt): the compiler marks shared
//     arrays that are both read and written across disjoint parallel
//     constructs; only their pages are monitored;
//   - iterative data distribution (upmlib_migrate_memory): after an outer
//     iteration, read the hardware reference counters of every hot page,
//     apply a competitive criterion, and migrate each eligible page to its
//     dominant accessor. Invoked while it keeps finding work; it
//     self-deactivates the first time no page moves. Pages that bounce
//     between two nodes in consecutive invocations are frozen;
//   - record–replay data redistribution (upmlib_record,
//     upmlib_compare_counters, upmlib_replay, upmlib_undo): snapshot the
//     counters at the phase boundaries of one iteration, isolate each
//     phase's reference trace by subtraction, pick the n most critical
//     pages per transition, replay those migrations before the phase in
//     every later iteration and undo them before the next iteration.
//
// All calls run in serial program sections on the calling simulated CPU
// and charge their scan and migration costs to it — the user-level
// engine's overhead is on the critical path exactly as in the paper.
package upm

import (
	"fmt"
	"sort"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
)

// Options tunes the engine. Zero values take the paper's defaults.
type Options struct {
	// Threshold is the competitive ratio thr: a page is eligible when
	// raccmax/lacc > Threshold. The default is 2 (a remote node must
	// reference the page at least twice as often as its home).
	Threshold float64 `json:"threshold,omitempty"`
	// MinAccesses ignores pages with fewer total recorded accesses,
	// so cold pages do not migrate on noise. Default 16.
	MinAccesses uint32 `json:"min_accesses,omitempty"`
	// MaxCritical bounds the pages migrated per Replay call (the paper's
	// environment-variable n; its Figure 5 experiment sets 20).
	// It does not bound MigrateMemory. Default 20.
	MaxCritical int `json:"max_critical,omitempty"`
	// FreezeBounces is how many consecutive-invocation back-and-forth
	// moves a page may make before MigrateMemory freezes it. Default 1
	// (freeze on the first detected bounce, as in the paper).
	FreezeBounces int `json:"freeze_bounces,omitempty"`
	// ScanCostPerPage is the user-level cost of reading one page's
	// counter row through the /proc interface. Default 300 ns.
	ScanCostPerPage int64 `json:"scan_cost_per_page,omitempty"`
}

func (o *Options) setDefaults() {
	if o.Threshold == 0 {
		o.Threshold = 2
	}
	if o.MinAccesses == 0 {
		o.MinAccesses = 16
	}
	if o.MaxCritical == 0 {
		o.MaxCritical = 20
	}
	if o.FreezeBounces == 0 {
		o.FreezeBounces = 1
	}
	if o.ScanCostPerPage == 0 {
		o.ScanCostPerPage = 300 * 1000 // 300 ns in ps
	}
}

// Stats reports what the engine has done. The JSON tags are the wire form
// used by the sweep result store and the sweepd job API.
type Stats struct {
	Invocations      int   `json:"invocations"`                 // MigrateMemory calls
	Migrations       int64 `json:"migrations"`                  // pages moved by MigrateMemory
	FirstInvocation  int64 `json:"first_invocation"`            // of those, moved by the first invocation
	Frozen           int64 `json:"frozen,omitempty"`            // pages frozen for ping-ponging
	ReplayMigrations int64 `json:"replay_migrations,omitempty"` // pages moved by Replay
	UndoMigrations   int64 `json:"undo_migrations,omitempty"`   // pages moved back by Undo
	Replications     int64 `json:"replications,omitempty"`      // read copies created by ReplicateReadOnly
	OverheadPS       int64 `json:"overhead_ps"`                 // total cost charged to the calling CPU
}

// migOp is one page movement of a replay plan.
type migOp struct {
	vpn uint64
	dst int
}

// UPM is one attached engine instance (upmlib_init).
type UPM struct {
	m   *machine.Machine
	opt Options

	ranges [][2]uint64 // registered hot areas, [lo,hi) vpns

	active   bool
	lastMigs int

	// Ping-pong history: last invocation a page moved in and the home it
	// left behind.
	hist map[uint64]histEntry

	// Record–replay state.
	snaps  [][]uint32 // counter snapshots, one per Record call
	plans  [][]migOp  // per phase transition, after CompareCounters
	cursor int        // next plan Replay applies
	undo   []migOp    // inverse ops accumulated this iteration

	stats Stats
	row   []uint32
}

type histEntry struct {
	invocation int
	leftHome   int
	bounces    int
}

// Init attaches a UPMlib engine to the machine (upmlib_init).
func Init(m *machine.Machine, opt Options) *UPM {
	opt.setDefaults()
	return &UPM{
		m:      m,
		opt:    opt,
		active: true,
		hist:   make(map[uint64]histEntry),
		row:    make([]uint32, m.Topo.Nodes()),
	}
}

// MemRefCnt registers the page span [lo, hi) as a hot memory area
// (upmlib_memrefcnt). The machine package's Array.PageRange supplies the
// span for an array.
func (u *UPM) MemRefCnt(lo, hi uint64) {
	if hi <= lo {
		panic(fmt.Sprintf("upm: empty hot range [%d,%d)", lo, hi))
	}
	u.ranges = append(u.ranges, [2]uint64{lo, hi})
	// Registration is setup, not timed work; stamp it at time zero on the
	// kernel lane so it sorts to the head of the trace.
	if trc := u.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{CPU: trace.KernelCPU, Kind: trace.EvUPMRegister,
			Arg0: int64(lo), Arg1: int64(hi)})
	}
}

// Active reports whether the iterative mechanism is still armed; it
// becomes false the first time MigrateMemory finds nothing to move.
func (u *UPM) Active() bool { return u.active }

// Reactivate re-arms the iterative mechanism after it deactivated itself.
// The paper's companion work on multiprogrammed machines re-enables the
// engine when the OS preempts or migrates threads, since that invalidates
// the established placement; the omp Team's SetBinding models exactly that
// intervention.
func (u *UPM) Reactivate() {
	u.active = true
	u.lastMigs = 0
	// The first post-reactivation decision must look at a fresh trace,
	// and migration history from the previous regime should not count as
	// ping-pong.
	u.hotPages(u.m.PT.ResetCounters)
	clear(u.hist)
}

// LastMigrations returns the number of pages moved by the most recent
// MigrateMemory call (the paper's num_migrations variable).
func (u *UPM) LastMigrations() int { return u.lastMigs }

// Stats returns a copy of the engine's counters.
func (u *UPM) Stats() Stats { return u.stats }

// Overhead returns the total picoseconds charged by the engine so far.
func (u *UPM) Overhead() int64 { return u.stats.OverheadPS }

// hotPages calls fn for every registered hot page.
func (u *UPM) hotPages(fn func(vpn uint64)) {
	for _, r := range u.ranges {
		for vpn := r[0]; vpn < r[1]; vpn++ {
			fn(vpn)
		}
	}
}

// charge adds ps of engine overhead to CPU c's clock.
func (u *UPM) charge(c *machine.CPU, ps int64) {
	c.Advance(ps)
	u.stats.OverheadPS += ps
}

// pageMoveCost is the per-page cost of a move within a batch; the engine
// coalesces the TLB shootdowns of one invocation into a single round
// (stale translations are detected by generation anyway), a key economy a
// user-level engine operating at quiescent points can exploit.
func (u *UPM) pageMoveCost() int64 { return u.m.PageMoveCost() }

// competitive applies the competitive criterion to a counter row: it
// returns the dominant remote node and the ratio raccmax/lacc, or ok=false
// when the page should stay (cold page, home-dominated, or below thr).
func (u *UPM) competitive(row []uint32, home int) (dst int, ratio float64, ok bool) {
	var total, raccmax uint32
	dst = -1
	for n, cnt := range row {
		total += cnt
		if n != home && cnt > raccmax {
			raccmax, dst = cnt, n
		}
	}
	if dst < 0 || total < u.opt.MinAccesses || raccmax == 0 {
		return -1, 0, false
	}
	lacc := row[home]
	if lacc == 0 {
		return dst, float64(raccmax) * 1e9, true
	}
	ratio = float64(raccmax) / float64(lacc)
	if ratio <= u.opt.Threshold {
		return -1, 0, false
	}
	return dst, ratio, true
}

// MigrateMemory scans the hot areas' counters, migrates every page whose
// reference trace satisfies the competitive criterion, resets the
// counters, and returns the number of pages moved
// (upmlib_migrate_memory). The calling CPU pays for the scan and for the
// moves. When no page moves, the mechanism deactivates itself; the NAS
// drivers mirror the paper by re-invoking it only while LastMigrations is
// positive.
func (u *UPM) MigrateMemory(c *machine.CPU) int {
	if !u.active {
		return 0
	}
	u.stats.Invocations++
	pt := u.m.PT
	trc := u.m.Tracer()
	var moves []trace.PageMove
	moved := 0
	var scanned int64
	u.hotPages(func(vpn uint64) {
		scanned++
		home := pt.Home(vpn)
		if home < 0 || pt.Frozen(vpn) {
			return
		}
		row := pt.Counters(vpn, u.row)
		dst, _, ok := u.competitive(row, home)
		if !ok {
			return
		}
		if u.pingPong(vpn, dst) {
			pt.Freeze(vpn)
			u.stats.Frozen++
			return
		}
		if res := pt.Migrate(vpn, dst); res.Moved {
			moved++
			u.hist[vpn] = histEntry{invocation: u.stats.Invocations, leftHome: home,
				bounces: u.hist[vpn].bounces}
			u.charge(c, u.pageMoveCost())
			if trc != nil {
				moves = append(moves, trace.PageMove{VPN: vpn, From: res.From, To: res.Dest})
			}
		}
	})
	if moved > 0 {
		u.charge(c, u.m.ShootdownCost())
		if trc != nil {
			trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvShootdown,
				Name: "upm", Arg0: 1})
		}
	}
	// Fresh trace for the next iteration's decision.
	u.hotPages(pt.ResetCounters)
	u.charge(c, scanned*u.opt.ScanCostPerPage)
	u.lastMigs = moved
	u.stats.Migrations += int64(moved)
	if u.stats.Invocations == 1 {
		u.stats.FirstInvocation += int64(moved)
	}
	if trc != nil {
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMMigrate,
			Arg0: int64(moved), Arg1: int64(u.stats.Invocations), Pages: moves})
	}
	if moved == 0 {
		u.active = false // self-deactivation
		if trc != nil {
			trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMDeactivate,
				Arg0: int64(u.stats.Invocations)})
		}
	}
	return moved
}

// pingPong reports whether moving vpn to dst right now completes a
// bounce: the page moved in the previous invocation and would now return
// to the home it left. It also books the bounce.
func (u *UPM) pingPong(vpn uint64, dst int) bool {
	h, seen := u.hist[vpn]
	if !seen || h.invocation != u.stats.Invocations-1 || dst != h.leftHome {
		return false
	}
	h.bounces++
	u.hist[vpn] = h
	return h.bounces >= u.opt.FreezeBounces
}

// Record snapshots the counters of every hot page (upmlib_record). The
// compiler inserts one call at each phase boundary during the recording
// iteration.
func (u *UPM) Record(c *machine.CPU) {
	var snap []uint32
	var scanned int64
	u.hotPages(func(vpn uint64) {
		scanned++
		snap = append(snap, u.m.PT.Counters(vpn, u.row)...)
	})
	u.snaps = append(u.snaps, snap)
	u.charge(c, scanned*u.opt.ScanCostPerPage)
	if trc := u.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMRecord,
			Arg0: int64(len(u.snaps) - 1)})
	}
}

// CompareCounters turns the recorded snapshots into per-phase-transition
// migration plans (upmlib_compare_counters): for each pair of consecutive
// snapshots it isolates the phase's trace Ui,j = Vi,j - Vi,j-1, applies
// the competitive criterion, sorts eligible pages by descending
// raccmax/lacc, and keeps the MaxCritical most critical pages.
func (u *UPM) CompareCounters(c *machine.CPU) {
	if len(u.snaps) < 2 {
		panic("upm: CompareCounters needs at least two Record calls")
	}
	nodes := u.m.Topo.Nodes()
	for s := 1; s < len(u.snaps); s++ {
		prev, cur := u.snaps[s-1], u.snaps[s]
		type cand struct {
			op    migOp
			ratio float64
		}
		var cands []cand
		idx := 0
		u.hotPages(func(vpn uint64) {
			row := make([]uint32, nodes)
			for n := 0; n < nodes; n++ {
				v, p := cur[idx+n], prev[idx+n]
				if v > p {
					row[n] = v - p
				}
			}
			idx += nodes
			home := u.m.PT.Home(vpn)
			if home < 0 {
				return
			}
			if dst, ratio, ok := u.competitive(row, home); ok {
				cands = append(cands, cand{op: migOp{vpn: vpn, dst: dst}, ratio: ratio})
			}
		})
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].ratio != cands[j].ratio {
				return cands[i].ratio > cands[j].ratio
			}
			return cands[i].op.vpn < cands[j].op.vpn
		})
		if len(cands) > u.opt.MaxCritical {
			// Keep the truncated plan balanced across destination
			// nodes: taking the top n purely by ratio can aim every
			// move at the same node (ties are common), concentrating
			// the phase's traffic and trading latency for queueing.
			// Round-robin across destinations, hottest first per node.
			byDst := make([][]cand, nodes)
			for _, cd := range cands {
				byDst[cd.op.dst] = append(byDst[cd.op.dst], cd)
			}
			picked := cands[:0]
			for len(picked) < u.opt.MaxCritical {
				progress := false
				for d := 0; d < nodes && len(picked) < u.opt.MaxCritical; d++ {
					if len(byDst[d]) > 0 {
						picked = append(picked, byDst[d][0])
						byDst[d] = byDst[d][1:]
						progress = true
					}
				}
				if !progress {
					break
				}
			}
			cands = picked
		}
		plan := make([]migOp, len(cands))
		for i, cd := range cands {
			plan[i] = cd.op
		}
		u.plans = append(u.plans, plan)
	}
	u.snaps = nil
	u.cursor = 0
	if trc := u.m.Tracer(); trc != nil {
		var planned int64
		for _, p := range u.plans {
			planned += int64(len(p))
		}
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMCompare,
			Arg0: int64(len(u.plans)), Arg1: planned})
	}
}

// Plans returns the number of phase-transition plans available.
func (u *UPM) Plans() int { return len(u.plans) }

// Replay applies the next phase transition's migration plan
// (upmlib_replay), remembering the inverse moves for Undo. Plans cycle:
// with k plans, the 1st, k+1th, ... calls apply plan 0.
func (u *UPM) Replay(c *machine.CPU) int {
	if len(u.plans) == 0 {
		return 0
	}
	plan := u.plans[u.cursor]
	planIdx := u.cursor
	u.cursor = (u.cursor + 1) % len(u.plans)
	trc := u.m.Tracer()
	var moves []trace.PageMove
	moved := 0
	for _, op := range plan {
		if res := u.m.PT.Migrate(op.vpn, op.dst); res.Moved {
			moved++
			u.undo = append(u.undo, migOp{vpn: op.vpn, dst: res.From})
			u.charge(c, u.pageMoveCost())
			if trc != nil {
				moves = append(moves, trace.PageMove{VPN: op.vpn, From: res.From, To: res.Dest})
			}
		}
	}
	if moved > 0 {
		u.charge(c, u.m.ShootdownCost())
		if trc != nil {
			trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvShootdown,
				Name: "replay", Arg0: 1})
		}
	}
	u.stats.ReplayMigrations += int64(moved)
	if trc != nil {
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMReplay,
			Arg0: int64(moved), Arg1: int64(planIdx), Pages: moves})
	}
	return moved
}

// Undo reverses every migration Replay performed since the last Undo
// (upmlib_undo), restoring the iteration's initial data distribution.
func (u *UPM) Undo(c *machine.CPU) int {
	trc := u.m.Tracer()
	var moves []trace.PageMove
	moved := 0
	for i := len(u.undo) - 1; i >= 0; i-- {
		op := u.undo[i]
		if res := u.m.PT.Migrate(op.vpn, op.dst); res.Moved {
			moved++
			u.charge(c, u.pageMoveCost())
			if trc != nil {
				moves = append(moves, trace.PageMove{VPN: op.vpn, From: res.From, To: res.Dest})
			}
		}
	}
	if moved > 0 {
		u.charge(c, u.m.ShootdownCost())
		if trc != nil {
			trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvShootdown,
				Name: "undo", Arg0: 1})
		}
	}
	u.undo = u.undo[:0]
	u.stats.UndoMigrations += int64(moved)
	if trc != nil {
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvUPMUndo,
			Arg0: int64(moved), Pages: moves})
	}
	return moved
}

// ResetHotCounters zeroes the counters of every hot page; the record
// phase of the NAS drivers uses it to isolate a fresh trace.
func (u *UPM) ResetHotCounters() {
	u.hotPages(u.m.PT.ResetCounters)
}

// CounterLen returns the length AppendCounters appends.
func (u *UPM) CounterLen() int { return 10 }

// AppendCounters appends the engine's cumulative statistics plus its
// per-iteration decision state (replay cursor, last migration count) to
// dst and returns it. The steady-state detector folds the vector into
// the per-iteration delta: repeating deltas mean the engine repeats the
// same work every iteration — for a deactivated engine all deltas are
// zero, for record–replay the same plans move the same pages — and a
// stationary cursor (zero delta, the cursor wraps mod Plans() once per
// iteration) guarantees the plan sequence is aligned identically.
func (u *UPM) AppendCounters(dst []int64) []int64 {
	return append(dst,
		int64(u.stats.Invocations), u.stats.Migrations, u.stats.FirstInvocation,
		u.stats.Frozen, u.stats.ReplayMigrations, u.stats.UndoMigrations,
		u.stats.Replications, u.stats.OverheadPS,
		int64(u.cursor), int64(u.lastMigs))
}

// AppendCounterNames appends one name per AppendCounters slot, in the
// same order, for by-name reporting of delta-vector indices.
func (u *UPM) AppendCounterNames(dst []string) []string {
	return append(dst, "upm_invocations", "upm_migrations", "upm_first_invocation",
		"upm_frozen", "upm_replay_migrations", "upm_undo_migrations",
		"upm_replications", "upm_overhead_ps", "upm_cursor", "upm_last_migs")
}

// ApplyCounterDelta advances the statistics by k repetitions of a
// per-iteration delta (laid out as AppendCounters), extrapolating k more
// identical iterations. Cursor and lastMigs receive their deltas too,
// which for a detected steady state are zero by construction.
func (u *UPM) ApplyCounterDelta(delta []int64, k int64) {
	if len(delta) != u.CounterLen() {
		panic("upm: counter delta length mismatch")
	}
	u.stats.Invocations += int(delta[0] * k)
	u.stats.Migrations += delta[1] * k
	u.stats.FirstInvocation += delta[2] * k
	u.stats.Frozen += delta[3] * k
	u.stats.ReplayMigrations += delta[4] * k
	u.stats.UndoMigrations += delta[5] * k
	u.stats.Replications += delta[6] * k
	u.stats.OverheadPS += delta[7] * k
	u.cursor += int(delta[8] * k)
	u.lastMigs += int(delta[9] * k)
}

package upm

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/vm"
)

// mk builds a worst-case-placed machine with one hot array of npages
// pages, all faulted onto node 0, registered with a fresh engine.
func mk(t *testing.T, npages int, opt Options) (*machine.Machine, *UPM, uint64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	a := m.NewArray("x", npages*2048)
	lo, hi := a.PageRange()
	for p := lo; p < hi; p++ {
		m.PT.Resolve(p, 0)
	}
	u := Init(m, opt)
	u.MemRefCnt(lo, hi)
	return m, u, lo
}

func hammer(m *machine.Machine, vpn uint64, node int, n int) {
	for i := 0; i < n; i++ {
		m.PT.CountMiss(vpn, node)
	}
}

func TestMigrateMemoryMovesDominatedPages(t *testing.T) {
	m, u, lo := mk(t, 4, Options{})
	hammer(m, lo, 3, 200)   // page 0: node 3 dominates
	hammer(m, lo, 0, 50)    // some home accesses, ratio 4 > thr 2
	hammer(m, lo+1, 0, 200) // page 1: home dominates
	hammer(m, lo+2, 5, 100) // page 2: node 5 only
	// page 3: cold.
	c := m.CPU(0)
	n := u.MigrateMemory(c)
	if n != 2 {
		t.Fatalf("MigrateMemory moved %d pages, want 2", n)
	}
	if m.PT.Home(lo) != 3 {
		t.Errorf("page 0 homed on %d, want 3", m.PT.Home(lo))
	}
	if m.PT.Home(lo+1) != 0 {
		t.Errorf("page 1 moved; want kept on 0")
	}
	if m.PT.Home(lo+2) != 5 {
		t.Errorf("page 2 homed on %d, want 5", m.PT.Home(lo+2))
	}
	if m.PT.Home(lo+3) != 0 {
		t.Errorf("cold page moved")
	}
}

func TestMigrateMemoryRespectsThreshold(t *testing.T) {
	m, u, lo := mk(t, 1, Options{Threshold: 4})
	hammer(m, lo, 0, 100)
	hammer(m, lo, 2, 300) // ratio 3 < thr 4
	if n := u.MigrateMemory(m.CPU(0)); n != 0 {
		t.Errorf("moved %d pages below threshold, want 0", n)
	}
}

func TestMigrateMemoryIgnoresColdPages(t *testing.T) {
	m, u, lo := mk(t, 1, Options{MinAccesses: 50})
	hammer(m, lo, 4, 30) // hot-ish but below MinAccesses
	if n := u.MigrateMemory(m.CPU(0)); n != 0 {
		t.Errorf("moved %d cold pages, want 0", n)
	}
}

func TestSelfDeactivation(t *testing.T) {
	m, u, lo := mk(t, 2, Options{})
	hammer(m, lo, 3, 200)
	c := m.CPU(0)
	if n := u.MigrateMemory(c); n != 1 {
		t.Fatalf("first invocation moved %d, want 1", n)
	}
	if !u.Active() {
		t.Fatal("engine deactivated while still migrating")
	}
	// No new traffic: second invocation finds nothing and deactivates.
	if n := u.MigrateMemory(c); n != 0 {
		t.Fatalf("second invocation moved %d, want 0", n)
	}
	if u.Active() {
		t.Error("engine still active after an empty invocation")
	}
	// Further calls are no-ops.
	hammer(m, lo, 5, 500)
	if n := u.MigrateMemory(c); n != 0 {
		t.Error("deactivated engine migrated")
	}
}

func TestCountersResetBetweenInvocations(t *testing.T) {
	m, u, lo := mk(t, 1, Options{})
	hammer(m, lo, 3, 200)
	u.MigrateMemory(m.CPU(0))
	if got := m.PT.Counters(lo, nil)[3]; got != 0 {
		t.Errorf("counters not reset after MigrateMemory: %d", got)
	}
}

func TestPingPongFreeze(t *testing.T) {
	m, u, lo := mk(t, 1, Options{})
	c := m.CPU(0)
	// Invocation 1: page moves 0 -> 3.
	hammer(m, lo, 3, 200)
	if n := u.MigrateMemory(c); n != 1 || m.PT.Home(lo) != 3 {
		t.Fatalf("setup move failed: n=%d home=%d", n, m.PT.Home(lo))
	}
	// Invocation 2: trace says move back 3 -> 0: that is a bounce; the
	// page must freeze instead of moving.
	hammer(m, lo, 0, 200)
	if n := u.MigrateMemory(c); n != 0 {
		t.Fatalf("bouncing page migrated (n=%d)", n)
	}
	if !m.PT.Frozen(lo) {
		t.Error("bouncing page not frozen")
	}
	if m.PT.Home(lo) != 3 {
		t.Errorf("frozen page moved to %d", m.PT.Home(lo))
	}
	if u.Stats().Frozen != 1 {
		t.Errorf("frozen stat = %d, want 1", u.Stats().Frozen)
	}
}

func TestMoveToThirdNodeIsNotABounce(t *testing.T) {
	m, u, lo := mk(t, 1, Options{})
	c := m.CPU(0)
	hammer(m, lo, 3, 200)
	u.MigrateMemory(c)
	hammer(m, lo, 6, 400) // different node: a phase change, not a bounce
	if n := u.MigrateMemory(c); n != 1 {
		t.Errorf("move to a third node suppressed (n=%d)", n)
	}
	if m.PT.Home(lo) != 6 {
		t.Errorf("home = %d, want 6", m.PT.Home(lo))
	}
}

func TestOverheadChargedToCallingCPU(t *testing.T) {
	m, u, lo := mk(t, 8, Options{})
	hammer(m, lo, 3, 200)
	c := m.CPU(0)
	before := c.Now()
	u.MigrateMemory(c)
	elapsed := c.Now() - before
	wantMin := m.PageMoveCost() + m.ShootdownCost()
	if elapsed < wantMin {
		t.Errorf("charged %d ps, want at least the migration cost %d", elapsed, wantMin)
	}
	if u.Overhead() != elapsed {
		t.Errorf("Overhead() = %d, want %d", u.Overhead(), elapsed)
	}
}

func TestFirstInvocationStat(t *testing.T) {
	m, u, lo := mk(t, 4, Options{})
	c := m.CPU(0)
	hammer(m, lo, 3, 200)
	hammer(m, lo+1, 4, 200)
	u.MigrateMemory(c) // 2 moves
	hammer(m, lo+2, 5, 200)
	u.MigrateMemory(c) // 1 move
	s := u.Stats()
	if s.Migrations != 3 || s.FirstInvocation != 2 {
		t.Errorf("migrations=%d first=%d, want 3/2", s.Migrations, s.FirstInvocation)
	}
}

func TestRecordReplayUndoCycle(t *testing.T) {
	m, u, lo := mk(t, 6, Options{MaxCritical: 20})
	c := m.CPU(0)

	// Phase trace: between the two records, node 5 hammers pages 0 and 1.
	u.Record(c)
	hammer(m, lo, 5, 300)
	hammer(m, lo+1, 5, 300)
	hammer(m, lo+2, 0, 300) // home-dominated: not a candidate
	u.Record(c)
	u.CompareCounters(c)
	if u.Plans() != 1 {
		t.Fatalf("plans = %d, want 1", u.Plans())
	}

	// Replay moves pages 0 and 1 to node 5.
	if n := u.Replay(c); n != 2 {
		t.Fatalf("Replay moved %d, want 2", n)
	}
	if m.PT.Home(lo) != 5 || m.PT.Home(lo+1) != 5 {
		t.Errorf("replayed homes = %d,%d want 5,5", m.PT.Home(lo), m.PT.Home(lo+1))
	}
	if m.PT.Home(lo+2) != 0 {
		t.Error("non-candidate page moved")
	}

	// Undo restores the initial placement.
	if n := u.Undo(c); n != 2 {
		t.Fatalf("Undo moved %d, want 2", n)
	}
	if m.PT.Home(lo) != 0 || m.PT.Home(lo+1) != 0 {
		t.Errorf("undo failed: homes %d,%d", m.PT.Home(lo), m.PT.Home(lo+1))
	}

	// The cycle replays again next iteration.
	if n := u.Replay(c); n != 2 {
		t.Errorf("second Replay moved %d, want 2", n)
	}
	u.Undo(c)
	s := u.Stats()
	if s.ReplayMigrations != 4 || s.UndoMigrations != 4 {
		t.Errorf("replay/undo stats = %d/%d, want 4/4", s.ReplayMigrations, s.UndoMigrations)
	}
}

func TestCompareCountersHonoursMaxCritical(t *testing.T) {
	m, u, lo := mk(t, 10, Options{MaxCritical: 3})
	c := m.CPU(0)
	u.Record(c)
	for p := 0; p < 10; p++ {
		hammer(m, lo+uint64(p), 4, 100+10*p) // all eligible, rising heat
	}
	u.Record(c)
	u.CompareCounters(c)
	if n := u.Replay(c); n != 3 {
		t.Errorf("Replay moved %d pages, want MaxCritical=3", n)
	}
	// The 3 hottest pages (largest counters, all with lacc=0 so ordered
	// by raccmax) are the last three.
	for p := 7; p < 10; p++ {
		if m.PT.Home(lo+uint64(p)) != 4 {
			t.Errorf("hot page %d not replayed", p)
		}
	}
}

func TestCompareCountersIsolatesPhases(t *testing.T) {
	// Two transitions: phase A hammers page 0 from node 2, phase B
	// hammers page 1 from node 6. Each plan must only contain its
	// phase's page.
	m, u, lo := mk(t, 2, Options{})
	c := m.CPU(0)
	u.Record(c)
	hammer(m, lo, 2, 300)
	u.Record(c)
	hammer(m, lo+1, 6, 300)
	u.Record(c)
	u.CompareCounters(c)
	if u.Plans() != 2 {
		t.Fatalf("plans = %d, want 2", u.Plans())
	}
	u.Replay(c) // plan for transition into phase A
	if m.PT.Home(lo) != 2 || m.PT.Home(lo+1) != 0 {
		t.Errorf("after replay A: homes %d,%d want 2,0", m.PT.Home(lo), m.PT.Home(lo+1))
	}
	u.Replay(c) // plan B
	if m.PT.Home(lo+1) != 6 {
		t.Errorf("after replay B: page1 home %d, want 6", m.PT.Home(lo+1))
	}
	u.Undo(c)
	if m.PT.Home(lo) != 0 || m.PT.Home(lo+1) != 0 {
		t.Error("undo did not restore both pages")
	}
}

func TestCompareCountersPanicsWithoutRecords(t *testing.T) {
	_, u, _ := mk(t, 1, Options{})
	defer func() {
		if recover() == nil {
			t.Error("no panic with a single record")
		}
	}()
	u.CompareCounters(nil)
}

func TestMemRefCntPanicsOnEmptyRange(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	u := Init(m, Options{})
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty range")
		}
	}()
	u.MemRefCnt(5, 5)
}

func TestUndoWithoutReplayIsNoop(t *testing.T) {
	m, u, _ := mk(t, 2, Options{})
	if n := u.Undo(m.CPU(0)); n != 0 {
		t.Errorf("Undo moved %d pages with empty plan", n)
	}
}

func TestEndToEndDataDistribution(t *testing.T) {
	// The headline mechanism: worst-case placement, each CPU streams its
	// own chunk every "iteration"; after one iteration MigrateMemory must
	// reproduce the first-touch-like distribution and then deactivate.
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	a := m.NewArray("x", 16*2048)
	lo, hi := a.PageRange()
	u := Init(m, Options{})
	u.MemRefCnt(lo, hi)

	iterate := func() {
		for id := 0; id < 16; id++ {
			c := m.CPU(id)
			c.FlushCaches()
			for i := id * 2048; i < (id+1)*2048; i++ {
				a.Set(c, i, 1)
			}
		}
		m.Settle(m.CPUs(), 0)
	}

	iterate()
	if n := u.MigrateMemory(m.CPU(0)); n == 0 {
		t.Fatal("first iteration produced no migrations under worst-case placement")
	}
	for p := lo; p < hi; p++ {
		want := int(p-lo) / 2 // page i belongs to CPU i => node i/2
		if got := m.PT.Home(p); got != want {
			t.Errorf("page %d homed on %d, want %d", p-lo, got, want)
		}
	}
	iterate()
	if n := u.MigrateMemory(m.CPU(0)); n != 0 {
		t.Errorf("second iteration still migrated %d pages", n)
	}
	if u.Active() {
		t.Error("engine did not self-deactivate")
	}
}

func TestReactivateReArmsAndClearsHistory(t *testing.T) {
	m, u, lo := mk(t, 2, Options{})
	c := m.CPU(0)
	hammer(m, lo, 3, 200)
	u.MigrateMemory(c) // moves page 0 to node 3
	u.MigrateMemory(c) // nothing left: deactivates
	if u.Active() {
		t.Fatal("engine still active")
	}
	// A "scheduler intervention" reverses the access pattern.
	u.Reactivate()
	if !u.Active() {
		t.Fatal("Reactivate did not re-arm the engine")
	}
	// Moving back to node 0 would normally be a ping-pong freeze; after
	// reactivation the history must be forgotten.
	hammer(m, lo, 0, 200)
	if n := u.MigrateMemory(c); n != 1 {
		t.Errorf("post-reactivation migration count = %d, want 1", n)
	}
	if m.PT.Home(lo) != 0 {
		t.Errorf("page home = %d, want 0", m.PT.Home(lo))
	}
	if m.PT.Frozen(lo) {
		t.Error("page frozen despite cleared history")
	}
}

func TestReactivateResetsCounters(t *testing.T) {
	m, u, lo := mk(t, 1, Options{})
	hammer(m, lo, 5, 100)
	u.Reactivate()
	if got := m.PT.Counters(lo, nil)[5]; got != 0 {
		t.Errorf("counters not reset on reactivation: %d", got)
	}
}

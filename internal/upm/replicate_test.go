package upm

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/vm"
)

// mkRepl builds a machine with one hot array on node 0 and write tracking
// armed.
func mkRepl(t *testing.T, npages int) (*machine.Machine, *UPM, uint64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	a := m.NewArray("x", npages*2048)
	lo, hi := a.PageRange()
	for p := lo; p < hi; p++ {
		m.PT.Resolve(p, 0)
	}
	u := Init(m, Options{})
	u.MemRefCnt(lo, hi)
	u.EnableWriteTracking()
	return m, u, lo
}

func TestReplicateReadOnlyCreatesCopies(t *testing.T) {
	m, u, lo := mkRepl(t, 2)
	// Page 0: read hot from nodes 3 and 5; page 1: only node 2.
	hammer(m, lo, 3, 200)
	hammer(m, lo, 5, 150)
	hammer(m, lo+1, 2, 200)
	n := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{})
	if n != 2 {
		t.Fatalf("created %d copies, want 2 (page 0 on nodes 3 and 5)", n)
	}
	if got := replicaNodes(m.PT.Replicas(lo)); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("replicas of page 0 = %v, want [3 5]", got)
	}
	if m.PT.HasReplicas(lo + 1) {
		t.Error("single-reader page replicated; should be left to migration")
	}
	if u.Stats().Replications != 2 {
		t.Errorf("Replications stat = %d, want 2", u.Stats().Replications)
	}
}

func TestWrittenPagesNotReplicated(t *testing.T) {
	m, u, lo := mkRepl(t, 1)
	hammer(m, lo, 3, 200)
	hammer(m, lo, 5, 200)
	m.PT.MarkWritten(lo) // a store happened during the traced iteration
	if n := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{}); n != 0 {
		t.Errorf("replicated %d written pages, want 0", n)
	}
}

func TestReadsServedByNearestCopy(t *testing.T) {
	m, u, lo := mkRepl(t, 1)
	hammer(m, lo, 7, 200)
	hammer(m, lo, 6, 200)
	if n := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{}); n != 2 {
		t.Fatalf("created %d copies, want 2", n)
	}
	// CPU 14 is on node 7: its reads must be served locally now.
	c := m.CPU(14)
	before := c.Stat()
	a := machine.Array{} // not needed: drive Load directly
	_ = a
	c.Load(lo << m.PageShift())
	s := c.Stat()
	if s.LocalMem-before.LocalMem != 1 || s.RemoteMem != before.RemoteMem {
		t.Errorf("read not served by the local replica: local+%d remote+%d",
			s.LocalMem-before.LocalMem, s.RemoteMem-before.RemoteMem)
	}
	// Node 0's own CPU still reads the home copy locally.
	c0 := m.CPU(0)
	before0 := c0.Stat()
	c0.Load(lo << m.PageShift())
	if c0.Stat().LocalMem-before0.LocalMem != 1 {
		t.Error("home node read not local")
	}
}

func TestWriteCollapsesReplicas(t *testing.T) {
	m, u, lo := mkRepl(t, 1)
	hammer(m, lo, 7, 200)
	hammer(m, lo, 6, 200)
	u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{})
	if !m.PT.HasReplicas(lo) {
		t.Fatal("no replicas to collapse")
	}
	gen := m.PT.Gen(lo)
	w := m.CPU(2)
	before := w.Now()
	w.Store(lo << m.PageShift())
	if m.PT.HasReplicas(lo) {
		t.Error("replicas survived a write")
	}
	if m.PT.Gen(lo) == gen {
		t.Error("collapse did not bump the generation (no shootdown)")
	}
	if w.Now()-before < m.ShootdownCost() {
		t.Error("writer not charged for the invalidation")
	}
	if m.PT.Collapses() != 1 {
		t.Errorf("collapse count = %d, want 1", m.PT.Collapses())
	}
}

func TestReplicationRespectsMaxReplicas(t *testing.T) {
	m, u, lo := mkRepl(t, 1)
	for n := 1; n < 8; n++ {
		hammer(m, lo, n, 100+10*n)
	}
	created := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{MaxReplicas: 2})
	if created != 2 {
		t.Fatalf("created %d copies, want 2", created)
	}
	// The two hottest readers are nodes 7 and 6.
	if got := replicaNodes(m.PT.Replicas(lo)); len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("replicas = %v, want [6 7]", got)
	}
}

func TestReplicationCapacityRespected(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.FirstTouch
	cfg.CapacityPages = 1
	m := machine.MustNew(cfg)
	a := m.NewArray("x", 2048)
	lo, hi := a.PageRange()
	m.PT.Resolve(lo, 0) // first-touch from node 0
	u := Init(m, Options{})
	u.MemRefCnt(lo, hi)
	u.EnableWriteTracking()
	// Node 3 already full: fault an unrelated page onto it.
	m.PT.Resolve(hi, 3) // hi is outside the hot range but inside the arena
	hammer(m, lo, 3, 200)
	hammer(m, lo, 5, 200)
	created := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{})
	if created != 1 {
		t.Fatalf("created %d copies, want 1 (node 3 full)", created)
	}
	if got := replicaNodes(m.PT.Replicas(lo)); len(got) != 1 || got[0] != 5 {
		t.Errorf("replicas = %v, want [5]", got)
	}
}

func TestReplicatePanicsWithoutTracking(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	u := Init(m, Options{})
	u.MemRefCnt(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic without write tracking")
		}
	}()
	u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{})
}

func TestEndToEndSharedTableReplication(t *testing.T) {
	// A broadcast pattern: every CPU repeatedly reads one shared table
	// that lives on node 0. Replication must convert those remote reads
	// into local ones machine-wide.
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	table := m.NewArray("table", 4*2048) // 4 pages on node 0
	lo, hi := table.PageRange()
	u := Init(m, Options{})
	u.MemRefCnt(lo, hi)
	u.EnableWriteTracking()

	sweep := func() {
		for id := 0; id < m.NumCPUs(); id++ {
			c := m.CPU(id)
			c.FlushCaches()
			for i := 0; i < table.Len(); i += 16 {
				table.Get(c, i)
			}
		}
	}
	sweep() // expose the trace
	if n := u.ReplicateReadOnly(m.CPU(0), ReplicationOptions{MaxReplicas: 7}); n == 0 {
		t.Fatal("no replicas created for a broadcast-read table")
	}
	before := m.Stats()
	sweep()
	after := m.Stats()
	rem := after.RemoteMem - before.RemoteMem
	loc := after.LocalMem - before.LocalMem
	if ratio := float64(rem) / float64(rem+loc); ratio > 0.25 {
		t.Errorf("remote ratio %.2f after replication, want mostly local", ratio)
	}
}

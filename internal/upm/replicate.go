package upm

import (
	"math/bits"
	"sort"

	"upmgo/internal/machine"
)

// Read-only page replication — the extension the paper sketches in one
// sentence ("Read-only pages can be replicated in multiple nodes") but
// does not implement. The policy mirrors the iterative data-distribution
// mechanism: after an iteration has exposed the reference trace in the
// hardware counters, replicate every hot page that (a) has not been
// written since tracking began and (b) is read substantially from several
// nodes, onto its top reader nodes. Writes to a replicated page collapse
// the copies (the machine charges the invalidation), so a wrong guess
// costs one shootdown rather than correctness.

// ReplicationOptions tunes ReplicateReadOnly. Zero values take defaults.
type ReplicationOptions struct {
	// MinReads is the per-node read count that makes a node worth a
	// copy. Default 64.
	MinReads uint32
	// MaxReplicas bounds copies per page (beyond the home). Default 3.
	MaxReplicas int
	// MaxPages bounds how many pages one call replicates. Default 256.
	MaxPages int
}

func (o *ReplicationOptions) setDefaults() {
	if o.MinReads == 0 {
		o.MinReads = 64
	}
	if o.MaxReplicas == 0 {
		o.MaxReplicas = 3
	}
	if o.MaxPages == 0 {
		o.MaxPages = 256
	}
}

// EnableWriteTracking arms the page-level write log that ReplicateReadOnly
// consults; call it before the iteration whose trace will drive the
// replication decision.
func (u *UPM) EnableWriteTracking() {
	u.m.PT.SetWriteTracking(true)
	u.m.PT.ResetWritten()
}

// ReplicateReadOnly scans the hot areas and replicates pages that the
// trace shows to be multi-node read-only, onto their strongest reader
// nodes. It returns the number of copies created and charges the caller
// for the scan and the page copies (replication is a batched user-level
// operation like MigrateMemory, so a single shootdown round suffices to
// downgrade the writers' mappings).
func (u *UPM) ReplicateReadOnly(c *machine.CPU, opt ReplicationOptions) int {
	opt.setDefaults()
	if !u.m.PT.WriteTracking() {
		panic("upm: ReplicateReadOnly requires EnableWriteTracking before the traced iteration")
	}
	pt := u.m.PT
	type cand struct {
		vpn   uint64
		nodes []int
		heat  uint32
	}
	var cands []cand
	var scanned int64
	u.hotPages(func(vpn uint64) {
		scanned++
		if pt.Written(vpn) || pt.Home(vpn) < 0 {
			return
		}
		row := pt.Counters(vpn, u.row)
		home := pt.Home(vpn)
		var nodes []int
		var heat uint32
		for n, cnt := range row {
			if n != home && cnt >= opt.MinReads {
				nodes = append(nodes, n)
				heat += cnt
			}
		}
		if len(nodes) < 2 {
			// A single remote reader is a migration candidate, not a
			// replication one; leave it to MigrateMemory.
			return
		}
		if len(nodes) > opt.MaxReplicas {
			sort.Slice(nodes, func(i, j int) bool {
				if row[nodes[i]] != row[nodes[j]] {
					return row[nodes[i]] > row[nodes[j]]
				}
				return nodes[i] < nodes[j]
			})
			nodes = nodes[:opt.MaxReplicas]
		}
		cands = append(cands, cand{vpn: vpn, nodes: nodes, heat: heat})
	})
	u.charge(c, scanned*u.opt.ScanCostPerPage)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat != cands[j].heat {
			return cands[i].heat > cands[j].heat
		}
		return cands[i].vpn < cands[j].vpn
	})
	if len(cands) > opt.MaxPages {
		cands = cands[:opt.MaxPages]
	}
	created := 0
	for _, cd := range cands {
		for _, n := range cd.nodes {
			if pt.Replicate(cd.vpn, n) {
				created++
				u.charge(c, u.pageMoveCost())
			}
		}
	}
	if created > 0 {
		u.charge(c, u.m.ShootdownCost())
	}
	u.stats.Replications += int64(created)
	return created
}

// replicaNodes decodes a replica bitmask for diagnostics.
func replicaNodes(mask uint32) []int {
	var out []int
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros32(m))
	}
	return out
}

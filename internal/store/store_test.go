package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/upm"
)

// testResult builds a representative Result with every payload field class
// populated: int64 timings, per-iteration slices, engine and machine
// counters.
func testResult(label string) nas.Result {
	return nas.Result{
		Kernel:  "BT",
		Label:   label,
		Class:   nas.ClassS,
		TotalPS: 123456789012345,
		ColdPS:  987654321,
		IterPS:  []int64{41152263004115, 41152263004115, 41152263004115},
		PhasePS: []int64{1000, 2000, 3000},
		UPM: upm.Stats{
			Invocations: 3, Migrations: 17, FirstInvocation: 12,
			Frozen: 1, OverheadPS: 555,
		},
		KmigMoves: 7,
		KmigCost:  999,
		Mach: machine.Stats{
			Accesses: 1 << 40, L1Miss: 1 << 20, L2Miss: 1 << 16,
			TLBMiss: 1 << 10, LocalMem: 60000, RemoteMem: 5536,
			Faults: 4096, Migrations: 24,
		},
		PagesTotal: 640,
		Verified:   true,
		SteadyAt:   5,
	}
}

func TestRoundTripBitIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "BT\x00{Class:S Placement:rr ...}"
	want := testResult("rr-upmlib")
	if err := s.Put(key, "BT", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}

	// A second Put of the same cell must produce byte-identical record
	// files (the cross-process determinism the CI smoke diffs).
	blob1, err := os.ReadFile(filepath.Join(s.Dir(), Address(key)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, "BT", want); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(filepath.Join(s.Dir(), Address(key)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(blob1) != string(blob2) {
		t.Error("re-Put of the same cell changed the record bytes")
	}
	enc, err := EncodeRecord(key, "BT", want)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(blob1) {
		t.Error("EncodeRecord differs from the bytes Put wrote")
	}
}

// TestReadRecordVerbatim: the raw bytes ReadRecord serves (the
// /v1/cells body) are exactly what Put wrote, and damage is detected on
// the way out, never served.
func TestReadRecordVerbatim(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "BT\x00cfg"
	if err := s.Put(key, "BT", testResult("rr-upmlib")); err != nil {
		t.Fatal(err)
	}
	addr := Address(key)
	got, err := s.ReadRecord(addr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(s.Dir(), addr+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("ReadRecord bytes differ from the file Put wrote")
	}
	if _, err := s.ReadRecord(Address("absent")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing address returned %v, want ErrNotFound", err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), addr+".json"), want[:len(want)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRecord(addr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated record returned %v, want ErrCorrupt", err)
	}
}

// TestPutIntoVanishedDir: a store whose directory disappeared under it
// fails Put cleanly instead of silently dropping the record.
func TestPutIntoVanishedDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("BT\x00cfg", "BT", testResult("ft-IRIX")); err == nil {
		t.Error("Put into a removed directory succeeded")
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("no such key"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key returned %v, want ErrNotFound", err)
	}
}

func TestOpenUnwritable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := Open(dir); err == nil {
		t.Error("Open of an unwritable directory succeeded")
	}
}

// TestCorruptionDetected: a truncated or bit-flipped record must read as
// ErrCorrupt — never be served — and the next Put must repair it.
func TestCorruptionDetected(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(blob []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			// Flip a bit inside the payload's numbers, far from the
			// envelope fields, so only the hash check can catch it.
			i := strings.Index(string(b), `"total_ps"`) + len(`"total_ps":`) + 2
			c := append([]byte(nil), b...)
			c[i] ^= 0x01
			return c
		}},
		{"emptied", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := "BT\x00config-" + tc.name
			if err := s.Put(key, "BT", testResult("ft-IRIX")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), Address(key)+".json")
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt record returned %v, want ErrCorrupt", err)
			}
			// Re-simulation repairs: Put overwrites, Get serves again.
			if err := s.Put(key, "BT", testResult("ft-IRIX")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(key); err != nil {
				t.Errorf("record not repaired by re-Put: %v", err)
			}
		})
	}
}

// TestStaleVersionIsMiss: records from another schema or code version are
// misses (re-simulate, overwrite), not corruption.
func TestStaleVersionIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "BT\x00cfg"
	if err := s.Put(key, "BT", testResult("ft-IRIX")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), Address(key)+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Provenance.CodeVersion = "upmgo-sim-0-ancient"
	stale, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("stale record returned %v, want ErrNotFound", err)
	}
	metas, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || !metas[0].Stale {
		t.Errorf("Scan did not flag the stale record: %+v", metas)
	}
}

func TestWrongKeyIsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", "BT", testResult("ft-IRIX")); err != nil {
		t.Fatal(err)
	}
	// Rename key-a's record to key-b's address: the envelope is intact but
	// answers the wrong question.
	if err := os.Rename(
		filepath.Join(s.Dir(), Address("key-a")+".json"),
		filepath.Join(s.Dir(), Address("key-b")+".json")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("key-b"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mis-addressed record returned %v, want ErrCorrupt", err)
	}
}

func TestScanCheckGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"BT\x00a", "SP\x00b", "CG\x00c"}
	for i, key := range keys {
		if err := s.Put(key, strings.Split(key, "\x00")[0], testResult("ft-IRIX")); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	// Damage one record, stale another.
	if err := os.WriteFile(filepath.Join(s.Dir(), Address(keys[1])+".json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Records != 2 || ck.Corrupt != 1 || ck.Stale != 0 {
		t.Fatalf("Check = %+v, want 2 intact + 1 corrupt", ck)
	}
	metas, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("Scan found %d records, want 3", len(metas))
	}
	for _, m := range metas {
		if !m.Corrupt && m.Bench == "" {
			t.Errorf("intact record %s lacks bench metadata", m.Address[:12])
		}
	}

	// GC with no budget removes only the corrupt record.
	gc, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Removed != 1 || gc.Kept != 2 {
		t.Fatalf("GC(0) = %+v, want removed 1, kept 2", gc)
	}
	// GC with a tiny budget evicts intact records down to the cap.
	gc, err = s.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Kept != 0 || gc.Removed != 2 {
		t.Fatalf("GC(1) = %+v, want everything evicted", gc)
	}
	if n, _ := s.Len(); n != 0 {
		t.Errorf("store not empty after full eviction: %d records", n)
	}
}

// TestConcurrentSharing drives two independent Store handles (standing in
// for two processes) writing and reading the same directory concurrently:
// every read must see either a miss or a complete, intact record — never a
// partial write.
func TestConcurrentSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = "BT\x00shared-" + strings.Repeat("x", i)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 256)
	for _, h := range []*Store{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 16; round++ {
				for _, key := range keys {
					if err := h.Put(key, "BT", testResult("ft-IRIX")); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := testResult("ft-IRIX")
			for round := 0; round < 64; round++ {
				for _, key := range keys {
					res, err := h.Get(key)
					if errors.Is(err, ErrNotFound) {
						continue // not written yet
					}
					if err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(res, want) {
						errc <- errors.New("concurrent read returned a mangled result")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n, err := a.Len(); err != nil || n != len(keys) {
		t.Errorf("store holds %d records (%v), want %d", n, err, len(keys))
	}
}

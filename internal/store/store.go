// Package store persists completed sweep cells on disk, content-addressed
// by their memoization key, so a sweep warm-starts across processes: the
// cells PRs 2–6 made cheap to recompute (single-flight memoization, prefix
// forking, steady-state fast-forward) become free to recall forever.
//
// A record is one JSON file named <address>.json, where the address is the
// hex SHA-256 of the cell's memo key (bench + "\x00" + nas.Config
// fingerprint). Each record carries a schema version, provenance (engine
// label, class, simulator code version), the SHA-256 of its payload and
// the payload itself — the full nas.Result, whose fields are all integers
// or strings, so the JSON round-trip is exact and a decoded Result is
// bit-identical to the one encoded.
//
// Concurrency protocol: records are written to a unique temp file in the
// store directory and atomically renamed into place. Readers therefore
// never observe a partial record, and any number of processes (sweep CLIs,
// sweepd servers) may share one directory without locks — two writers
// racing on the same address rename equivalent records over each other
// (same key ⇒ same simulation ⇒ same bytes at Threads 1), which is the
// single-flight-by-rename discipline. There is no read-modify-write
// anywhere: corruption can only come from outside (truncation, bit rot),
// and Get detects it by payload hash and re-reports it as ErrCorrupt so
// callers re-simulate instead of serving damaged cells.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"upmgo/internal/nas"
)

// SchemaVersion is the record format version. Bump it when the record
// envelope changes shape; readers treat records with a different schema as
// absent (stale), never as corrupt.
const SchemaVersion = 1

// CodeVersion names the simulator revision whose results this build
// produces. Bump it whenever a change alters simulated numbers (a latency
// model tweak, a new charging rule): stale records then read as misses and
// are re-simulated and overwritten, rather than serving another revision's
// cells as this one's.
const CodeVersion = "upmgo-sim-1"

// ErrNotFound reports a key with no (current) record: never written,
// written by a different schema or code version, or evicted. Callers match
// it with errors.Is and fall back to simulation.
var ErrNotFound = errors.New("store: cell not found")

// ErrCorrupt reports a record that exists but fails its integrity checks:
// unparseable JSON (truncation), a payload that no longer matches its
// recorded SHA-256 (bit rot), or a key mismatch (hash collision or
// tampering). Callers match it with errors.Is, re-simulate, and overwrite.
var ErrCorrupt = errors.New("store: corrupt record")

// Address returns the content address of a memo key: the hex SHA-256 the
// record file is named by and the /v1/cells/{fingerprint} endpoint of
// cmd/sweepd looks up.
func Address(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// ValidAddress reports whether addr has the shape Address produces: 64
// lower-case hex digits. ReadRecord rejects anything else as ErrNotFound
// before touching the filesystem, so an address taken straight off a URL
// path (cmd/sweepd's /v1/cells/{address}) can never name a file outside
// the store.
func ValidAddress(addr string) bool {
	if len(addr) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Provenance records where a cell's numbers came from.
type Provenance struct {
	// Engine is the cell's figure label ("rr-upmlib"), naming placement
	// and migration engine.
	Engine string `json:"engine"`
	// Class is the NAS problem class letter.
	Class string `json:"class"`
	// CodeVersion is the simulator revision that produced the payload.
	CodeVersion string `json:"code_version"`
}

// Record is the on-disk envelope of one cell.
type Record struct {
	Schema        int             `json:"schema"`
	Key           string          `json:"key"` // full memo key: bench + "\x00" + fingerprint
	Bench         string          `json:"bench"`
	Provenance    Provenance      `json:"provenance"`
	PayloadSHA256 string          `json:"payload_sha256"`
	Payload       json.RawMessage `json:"payload"` // the nas.Result
}

// Store is one result directory. The zero value is unusable; Open it.
// A Store is safe for concurrent use by any number of goroutines and
// coexists with other processes on the same directory (see the package
// comment for the protocol).
type Store struct {
	dir string
}

// Open creates the directory if needed and probes that it is writable, so
// a sweep fails before simulating rather than when its first cell tries to
// persist.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: directory %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// EncodeRecord builds the canonical record bytes for one cell — exactly
// what Put writes and what cmd/sweepd serves for a cell held only in RAM,
// so a fetched cell is byte-identical whether it came from disk or from
// the in-process cache.
func EncodeRecord(key, bench string, res nas.Result) ([]byte, error) {
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: encode payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	rec := Record{
		Schema: SchemaVersion,
		Key:    key,
		Bench:  bench,
		Provenance: Provenance{
			Engine:      res.Label,
			Class:       res.Class.String(),
			CodeVersion: CodeVersion,
		},
		PayloadSHA256: hex.EncodeToString(sum[:]),
		Payload:       payload,
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	return append(blob, '\n'), nil
}

// Put persists one verified cell, atomically: the record lands under its
// content address via write-temp-then-rename, so concurrent readers and
// writers (in this or any other process) never see a partial file.
func (s *Store) Put(key, bench string, res nas.Result) error {
	blob, err := EncodeRecord(key, bench, res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(Address(key))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get recalls the cell stored under key. It returns ErrNotFound when no
// current record exists (missing, stale schema or code version) and
// ErrCorrupt when a record exists but fails integrity: the caller should
// re-simulate either way, and on the corrupt path the next Put repairs the
// store by overwriting the damaged record.
func (s *Store) Get(key string) (nas.Result, error) {
	rec, err := s.readRecord(Address(key))
	if err != nil {
		return nas.Result{}, err
	}
	if rec.Key != key {
		return nas.Result{}, fmt.Errorf("%w: %s holds key %q, want %q",
			ErrCorrupt, Address(key)[:12], rec.Key, key)
	}
	var res nas.Result
	if err := json.Unmarshal(rec.Payload, &res); err != nil {
		return nas.Result{}, fmt.Errorf("%w: %s payload: %v", ErrCorrupt, Address(key)[:12], err)
	}
	return res, nil
}

// ReadRecord returns the verified raw record bytes for a content address —
// the body cmd/sweepd's GET /v1/cells/{fingerprint} serves. The bytes are
// exactly what Put wrote (and EncodeRecord produces), so clients can diff
// them against locally computed records. Addresses that are not 64 hex
// digits read as ErrNotFound without touching the filesystem.
func (s *Store) ReadRecord(addr string) ([]byte, error) {
	if !ValidAddress(addr) {
		return nil, fmt.Errorf("%w (malformed address %q)", ErrNotFound, clip(addr, 16))
	}
	if _, err := s.readRecord(addr); err != nil {
		return nil, err
	}
	return os.ReadFile(s.path(addr))
}

// DecodeRecord parses and integrity-checks one record's raw bytes — the
// pure half of readRecord, shared with the fuzz harness. It distinguishes
// the store's two failure classes exactly as Get does: damage (truncated
// or non-JSON bytes, a payload that fails its recorded SHA-256) wraps
// ErrCorrupt; a well-formed record from another schema or simulator
// revision wraps ErrNotFound, because such a record is absent, not
// damaged — the next Put overwrites it with this revision's cell.
func DecodeRecord(blob []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.Schema != SchemaVersion || rec.Provenance.CodeVersion != CodeVersion {
		return Record{}, fmt.Errorf("%w (stale: schema %d, code %q)",
			ErrNotFound, rec.Schema, clip(rec.Provenance.CodeVersion, 40))
	}
	sum := sha256.Sum256(rec.Payload)
	if hex.EncodeToString(sum[:]) != rec.PayloadSHA256 {
		return Record{}, fmt.Errorf("%w: payload hash mismatch", ErrCorrupt)
	}
	return rec, nil
}

// readRecord loads and integrity-checks one record by address: parseable,
// current schema and code version, payload hash intact.
func (s *Store) readRecord(addr string) (Record, error) {
	blob, err := os.ReadFile(s.path(addr))
	if err != nil {
		if os.IsNotExist(err) {
			return Record{}, ErrNotFound
		}
		return Record{}, fmt.Errorf("store: %w", err)
	}
	rec, err := DecodeRecord(blob)
	if err != nil {
		return Record{}, fmt.Errorf("%s: %w", clip(addr, 12), err)
	}
	return rec, nil
}

// clip bounds a string destined for an error message.
func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// Meta describes one record found by Scan.
type Meta struct {
	Address string `json:"address"`
	Bench   string `json:"bench,omitempty"`
	Engine  string `json:"engine,omitempty"`
	Class   string `json:"class,omitempty"`
	Bytes   int64  `json:"bytes"`
	// Stale marks a record written by another schema or code version;
	// Corrupt one that fails parsing or its payload hash. Both read as
	// misses; GC removes them.
	Stale   bool `json:"stale,omitempty"`
	Corrupt bool `json:"corrupt,omitempty"`
}

// Scan indexes every record in the store, in address order. Unlike Get it
// does not stop at damage: stale and corrupt records are reported with
// their flags set so `sweepd -scan`/-check can show the whole picture.
func (s *Store) Scan() ([]Meta, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	var metas []Meta
	for _, name := range names {
		addr := strings.TrimSuffix(filepath.Base(name), ".json")
		m := Meta{Address: addr}
		if fi, err := os.Stat(name); err == nil {
			m.Bytes = fi.Size()
		}
		rec, err := s.readRecord(addr)
		switch {
		case errors.Is(err, ErrCorrupt):
			m.Corrupt = true
		case errors.Is(err, ErrNotFound):
			m.Stale = true
		case err != nil:
			m.Corrupt = true
		default:
			if Address(rec.Key) != addr {
				// A record renamed to the wrong address serves nobody.
				m.Corrupt = true
			}
			m.Bench, m.Engine, m.Class = rec.Bench, rec.Provenance.Engine, rec.Provenance.Class
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// CheckStats summarises an integrity pass.
type CheckStats struct {
	Records int   `json:"records"` // intact, current records
	Stale   int   `json:"stale"`
	Corrupt int   `json:"corrupt"`
	Bytes   int64 `json:"bytes"` // total on disk, damaged records included
}

// Check verifies every record's integrity (payload hash included) and
// returns the tally. It never modifies the store; GC removes what Check
// flags.
func (s *Store) Check() (CheckStats, error) {
	metas, err := s.Scan()
	if err != nil {
		return CheckStats{}, err
	}
	var st CheckStats
	for _, m := range metas {
		st.Bytes += m.Bytes
		switch {
		case m.Corrupt:
			st.Corrupt++
		case m.Stale:
			st.Stale++
		default:
			st.Records++
		}
	}
	return st, nil
}

// GCStats summarises an eviction pass.
type GCStats struct {
	Removed      int   `json:"removed"`       // records deleted
	RemovedBytes int64 `json:"removed_bytes"` // bytes freed
	Kept         int   `json:"kept"`
	KeptBytes    int64 `json:"kept_bytes"`
}

// GC evicts until the store is healthy and within budget: stale and
// corrupt records always go (they can never be served), orphaned temp
// files older than an hour go (a crashed writer left them), and when
// maxBytes > 0, the oldest intact records (by modification time) go until
// the survivors fit. maxBytes <= 0 means no size budget — GC is then pure
// garbage collection of unservable files.
func (s *Store) GC(maxBytes int64) (GCStats, error) {
	metas, err := s.Scan()
	if err != nil {
		return GCStats{}, err
	}
	var st GCStats
	type aged struct {
		path  string
		bytes int64
		mtime time.Time
	}
	var intact []aged
	for _, m := range metas {
		path := s.path(m.Address)
		if m.Corrupt || m.Stale {
			if err := os.Remove(path); err == nil || os.IsNotExist(err) {
				st.Removed++
				st.RemovedBytes += m.Bytes
			}
			continue
		}
		a := aged{path: path, bytes: m.Bytes}
		if fi, err := os.Stat(path); err == nil {
			a.mtime = fi.ModTime()
		}
		intact = append(intact, a)
	}
	// Orphaned temp files: writers rename within milliseconds, so a
	// temp file an hour old has no owner.
	if tmps, err := filepath.Glob(filepath.Join(s.dir, ".put-*.tmp")); err == nil {
		for _, tmp := range tmps {
			if fi, err := os.Stat(tmp); err == nil && time.Since(fi.ModTime()) > time.Hour {
				os.Remove(tmp)
			}
		}
	}
	sort.Slice(intact, func(i, j int) bool { return intact[i].mtime.Before(intact[j].mtime) })
	var total int64
	for _, a := range intact {
		total += a.bytes
	}
	for _, a := range intact {
		if maxBytes <= 0 || total <= maxBytes {
			st.Kept++
			st.KeptBytes += a.bytes
			continue
		}
		if err := os.Remove(a.path); err == nil || os.IsNotExist(err) {
			st.Removed++
			st.RemovedBytes += a.bytes
			total -= a.bytes
		} else {
			st.Kept++
			st.KeptBytes += a.bytes
		}
	}
	return st, nil
}

// Len returns the number of intact, current records.
func (s *Store) Len() (int, error) {
	st, err := s.Check()
	return st.Records, err
}

func (s *Store) path(addr string) string {
	return filepath.Join(s.dir, addr+".json")
}

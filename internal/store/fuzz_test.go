package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"upmgo/internal/nas"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder — the
// surface every store read and cmd/sweepd's /v1/cells endpoint stand on —
// and pins its contract: it never panics, it classifies every failure as
// exactly one of ErrCorrupt (damage) or ErrNotFound (another revision's
// record), and anything it accepts is a current, hash-intact record that
// survives a re-encode/re-decode round trip bit-for-bit. The committed
// seeds in testdata/fuzz/FuzzDecodeRecord cover each branch; CI runs a
// short -fuzztime smoke on top of them.
func FuzzDecodeRecord(f *testing.F) {
	valid, err := EncodeRecord("bench\x00fp", "BT", nas.Result{Label: "ft-IRIX"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add([]byte("not json"))
	f.Add([]byte("{}"))                     // schema 0: stale, not corrupt
	f.Add([]byte(`{"schema":1,"key":"k"}`)) // current schema, wrong code version
	stale := append([]byte(nil), valid...)
	f.Add(stale[:0])

	f.Fuzz(func(t *testing.T, blob []byte) {
		rec, err := DecodeRecord(blob)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
				t.Fatalf("error outside the contract: %v", err)
			}
			return
		}
		if rec.Schema != SchemaVersion || rec.Provenance.CodeVersion != CodeVersion {
			t.Fatalf("accepted a stale record: schema %d, code %q",
				rec.Schema, rec.Provenance.CodeVersion)
		}
		if sum := sha256.Sum256(rec.Payload); hex.EncodeToString(sum[:]) != rec.PayloadSHA256 {
			t.Fatalf("accepted a record with a bad payload hash")
		}
		// Re-encoding what was accepted must decode to the same record:
		// the envelope is all integers, strings and raw JSON, so the
		// round trip is exact.
		again, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rec2, err := DecodeRecord(again)
		if err != nil {
			t.Fatalf("re-decode rejected a record DecodeRecord produced: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip drifted:\n%+v\n%+v", rec, rec2)
		}
	})
}

// FuzzValidAddress pins ValidAddress against the reference definition —
// exactly the strings Address can produce: 64 characters of lower-case
// hex.
func FuzzValidAddress(f *testing.F) {
	f.Add(Address("some key"))
	f.Add("")
	f.Add("../../etc/passwd")
	f.Add(Address("x")[:63])
	f.Add(Address("x") + "0")
	f.Fuzz(func(t *testing.T, addr string) {
		want := len(addr) == 64
		if want {
			raw, err := hex.DecodeString(addr)
			want = err == nil && len(raw) == 32
			for i := 0; want && i < len(addr); i++ {
				if addr[i] >= 'A' && addr[i] <= 'F' {
					want = false // Address emits lower case only
				}
			}
		}
		if got := ValidAddress(addr); got != want {
			t.Fatalf("ValidAddress(%q) = %v, want %v", addr, got, want)
		}
	})
}

// Command gencorpus regenerates the committed seed corpus of
// FuzzDecodeRecord (testdata/fuzz/FuzzDecodeRecord): one file per
// decoder branch — an intact record, a truncation, non-JSON bytes, a
// stale envelope, a wrong code version and a payload-hash mismatch.
// Run it from the store package directory after changing the record
// envelope:
//
//	go run ./gencorpus testdata/fuzz/FuzzDecodeRecord
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"upmgo/internal/nas"
	"upmgo/internal/store"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gencorpus <corpus-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	valid, err := store.EncodeRecord("BT\x00{Class:S}", "BT",
		nas.Result{Label: "ft-IRIX", Verified: true, TotalPS: 123456789})
	if err != nil {
		panic(err)
	}
	seeds := map[string][]byte{
		"valid-record":  valid,
		"truncated":     valid[:len(valid)/2],
		"not-json":      []byte("not json at all"),
		"empty-object":  []byte("{}"),
		"stale-code":    []byte(`{"schema":1,"key":"k","provenance":{"code_version":"upmgo-sim-0"}}`),
		"hash-mismatch": []byte(`{"schema":1,"key":"k","provenance":{"code_version":"upmgo-sim-1"},"payload_sha256":"deadbeef","payload":{"label":"x"}}`),
	}
	for name, blob := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", blob)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		EvRegionFork:    "region_fork",
		EvUPMDeactivate: "upm_deactivate",
		EvUPMUndo:       "upm_undo",
		Kind(0):         "unknown",
		Kind(200):       "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestRecorderMerge checks the determinism contract: the merged stream is
// sorted by (Time, CPU, Seq), and within one CPU lane program order
// survives even when many events share a timestamp (as at a settled
// barrier) and even when lanes emit concurrently.
func TestRecorderMerge(t *testing.T) {
	r := NewRecorder()
	const perLane = 100
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				// Repeated timestamps within a lane: i/10 gives runs of 10
				// events at the same virtual time.
				r.Emit(Event{Time: int64(i / 10), CPU: cpu, Kind: EvBarrierArrive, Arg0: int64(i)})
			}
		}(cpu)
	}
	wg.Wait()
	r.Emit(Event{Time: 0, CPU: KernelCPU, Kind: EvKmigScan})

	evs := r.Events()
	if len(evs) != 4*perLane+1 {
		t.Fatalf("got %d events, want %d", len(evs), 4*perLane+1)
	}
	if evs[0].CPU != KernelCPU {
		t.Errorf("kernel lane event at time 0 should sort first, got CPU %d", evs[0].CPU)
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Time > b.Time {
			t.Fatalf("events out of time order at %d: %d after %d", i, b.Time, a.Time)
		}
		if a.Time == b.Time && a.CPU > b.CPU {
			t.Fatalf("equal-time events out of CPU order at %d", i)
		}
	}
	// Per-lane program order: Arg0 strictly increases within each lane.
	last := map[int]int64{}
	for _, ev := range evs {
		if ev.CPU == KernelCPU {
			continue
		}
		if prev, ok := last[ev.CPU]; ok && ev.Arg0 <= prev {
			t.Fatalf("lane %d program order broken: %d after %d", ev.CPU, ev.Arg0, prev)
		}
		last[ev.CPU] = ev.Arg0
	}

	if r.Len() != 4*perLane+1 {
		t.Errorf("Len = %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Errorf("Reset did not clear the recorder")
	}
}

// synthetic builds a plausible two-iteration stream: named regions with
// serial gaps, a marked phase, engine activity, and cold-start noise
// before the first iteration.
func synthetic() []Event {
	r := NewRecorder()
	emit := func(t int64, cpu int, k Kind, name string, a0, a1 int64, pages []PageMove) {
		r.Emit(Event{Time: t, CPU: cpu, Kind: k, Name: name, Arg0: a0, Arg1: a1, Pages: pages})
	}
	// Cold start: a fault and an unnamed region outside any iteration.
	emit(0, 0, EvPageFault, "", 7, 1, nil)
	emit(0, 0, EvRegionFork, "init", 0, 0, nil)
	emit(50, 0, EvRegionJoin, "init", 0, 0, nil)

	// Iteration 1: regions [100,200) and [230,300), serial 30+10+20 = wait:
	// window is [100, 360]; see the assertions in TestSummarize.
	emit(100, 0, EvIterStart, "", 1, 0, nil)
	emit(110, 0, EvRegionFork, "compute_rhs", 0, 0, nil)
	emit(120, 1, EvBarrierArrive, "", 0, 0, nil)
	emit(125, KernelCPU, EvBarrierRelease, "", 2, 0, nil)
	emit(200, 0, EvRegionJoin, "compute_rhs", 0, 0, nil)
	emit(230, 0, EvPhaseEnter, "", 0, 0, nil)
	emit(230, 0, EvRegionFork, "z_solve", 0, 0, nil)
	emit(300, 0, EvRegionJoin, "z_solve", 0, 0, nil)
	emit(300, 0, EvPhaseExit, "", 0, 0, nil)
	emit(310, 0, EvUPMMigrate, "", 3, 1, []PageMove{{VPN: 1, From: 0, To: 1}, {VPN: 2, From: 0, To: 2}, {VPN: 3, From: 1, To: 3}})
	emit(310, 0, EvShootdown, "upm", 1, 0, nil)
	emit(360, 0, EvIterEnd, "", 1, 260, nil)

	// Iteration 2: one region, UPM finds nothing and deactivates.
	emit(360, 0, EvIterStart, "", 2, 0, nil)
	emit(370, 0, EvRegionFork, "compute_rhs", 0, 0, nil)
	emit(470, 0, EvRegionJoin, "compute_rhs", 0, 0, nil)
	emit(480, KernelCPU, EvKmigScan, "", 2, 55, nil)
	emit(490, 0, EvUPMMigrate, "", 0, 2, nil)
	emit(490, 0, EvUPMDeactivate, "", 0, 0, nil)
	emit(500, 0, EvIterEnd, "", 2, 140, nil)
	return r.Events()
}

func TestSummarize(t *testing.T) {
	s := Summarize(synthetic())
	if s.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", s.Iterations)
	}
	if s.TotalPS != 400 { // 500 - 100
		t.Errorf("TotalPS = %d, want 400", s.TotalPS)
	}
	wantPhases := []PhaseTotal{
		{Name: "compute_rhs", Regions: 2, TimePS: 90 + 100},
		{Name: "z_solve", Regions: 1, TimePS: 70},
	}
	if len(s.Phases) != len(wantPhases) {
		t.Fatalf("Phases = %+v", s.Phases)
	}
	var regionPS int64
	for i, want := range wantPhases {
		if s.Phases[i] != want {
			t.Errorf("Phases[%d] = %+v, want %+v", i, s.Phases[i], want)
		}
		regionPS += want.TimePS
	}
	if want := s.TotalPS - regionPS; s.SerialPS != want {
		t.Errorf("SerialPS = %d, want %d", s.SerialPS, want)
	}
	if s.MarkedPhasePS != 70 {
		t.Errorf("MarkedPhasePS = %d, want 70", s.MarkedPhasePS)
	}
	if s.UPMInvocations != 2 || s.UPMMoves != 3 || s.UPMDeactivateIter != 2 {
		t.Errorf("UPM: %+v", s)
	}
	if s.KmigScans != 1 || s.KmigMoves != 2 {
		t.Errorf("kmig: scans=%d moves=%d", s.KmigScans, s.KmigMoves)
	}
	if s.Shootdowns != 1 || s.Faults != 1 || s.Barriers != 1 {
		t.Errorf("counters: %+v", s)
	}
	wantIters := []IterStat{
		{Step: 1, TimePS: 260, UPMMoves: 3},
		{Step: 2, TimePS: 140, KmigMoves: 2},
	}
	if len(s.PerIter) != 2 || s.PerIter[0] != wantIters[0] || s.PerIter[1] != wantIters[1] {
		t.Errorf("PerIter = %+v, want %+v", s.PerIter, wantIters)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.TotalPS != 0 || s.Iterations != 0 || len(s.Phases) != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	// Every B has a matching E per (tid, name), nesting included.
	open := map[string][]float64{}
	var regions, instants, metas int
	for _, ce := range parsed.TraceEvents {
		key := ce.Name + "\x00" + string(rune(ce.Tid))
		switch ce.Ph {
		case "B":
			open[key] = append(open[key], ce.Ts)
		case "E":
			st := open[key]
			if len(st) == 0 {
				t.Fatalf("E without B for %q", ce.Name)
			}
			if begin := st[len(st)-1]; ce.Ts < begin {
				t.Fatalf("span %q ends before it begins", ce.Name)
			}
			open[key] = st[:len(st)-1]
			regions++
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ce.Ph)
		}
		if ce.Ph != "M" {
			if _, ok := ce.Args["ps"]; !ok {
				t.Fatalf("event %q missing exact args.ps", ce.Name)
			}
		}
	}
	for key, st := range open {
		if len(st) != 0 {
			t.Errorf("unclosed span %q", strings.SplitN(key, "\x00", 2)[0])
		}
	}
	// 2 iterations + 4 regions (init, compute_rhs x2, z_solve) + 1 marked
	// phase = 7 closed spans.
	if regions != 7 {
		t.Errorf("closed spans = %d, want 7", regions)
	}
	if instants == 0 || metas == 0 {
		t.Errorf("instants = %d, metas = %d; want both > 0", instants, metas)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	WriteSummary(&buf, Summarize(synthetic()))
	out := buf.String()
	for _, want := range []string{
		"2 timed iterations",
		"compute_rhs",
		"z_solve",
		"(serial)",
		"self-deactivated at iteration 2",
		"kmig: 1 scans, 2 moves",
		"per iteration:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one record of the Chrome trace_event JSON format
// (chrome://tracing, Perfetto's legacy loader). Ts is in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events (as returned by Recorder.Events) in the
// Chrome trace_event JSON format. Spans — iterations, parallel regions,
// marked phases — become nested B/E pairs on the master CPU's thread
// track; migrations, faults, shootdowns and barrier events become
// instants. Every record carries the exact integer picosecond timestamp
// in args.ps, since the microsecond ts field is a float and tooling that
// checks the sum contract (phase spans + serial gaps = total) needs the
// unrounded values.
func WriteChromeTrace(w io.Writer, events []Event) error {
	maxCPU := 0
	for _, ev := range events {
		if ev.CPU > maxCPU {
			maxCPU = ev.CPU
		}
	}
	kernelTid := maxCPU + 1

	tid := func(cpu int) int {
		if cpu == KernelCPU {
			return kernelTid
		}
		return cpu
	}
	out := make([]chromeEvent, 0, len(events)+2)
	meta := func(t int, name string) {
		out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": name}})
	}
	meta(kernelTid, "kernel")
	meta(0, "cpu0 (master)")

	for _, ev := range events {
		ce := chromeEvent{Ts: float64(ev.Time) / 1e6, Pid: 1, Tid: tid(ev.CPU),
			Args: map[string]any{"ps": ev.Time}}
		switch ev.Kind {
		case EvIterStart:
			ce.Ph, ce.Name = "B", "iteration"
			ce.Args["step"] = ev.Arg0
		case EvIterEnd:
			ce.Ph, ce.Name = "E", "iteration"
			ce.Args["step"], ce.Args["iter_ps"] = ev.Arg0, ev.Arg1
		case EvRegionFork:
			ce.Ph, ce.Name = "B", regionName(ev.Name)
		case EvRegionJoin:
			ce.Ph, ce.Name = "E", regionName(ev.Name)
		case EvPhaseEnter:
			ce.Ph, ce.Name = "B", "marked_phase"
		case EvPhaseExit:
			ce.Ph, ce.Name = "E", "marked_phase"
		default:
			ce.Ph, ce.Name, ce.S = "i", ev.Kind.String(), "t"
			if ev.Name != "" {
				ce.Args["who"] = ev.Name
			}
			if ev.Arg0 != 0 {
				ce.Args["arg0"] = ev.Arg0
			}
			if ev.Arg1 != 0 {
				ce.Args["arg1"] = ev.Arg1
			}
			if len(ev.Pages) > 0 {
				ce.Args["pages"] = ev.Pages
			}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func regionName(name string) string {
	if name == "" {
		return "parallel"
	}
	return name
}

package trace

// tee fans one event stream out to several tracers in order.
type tee []Tracer

// Emit forwards the event to every branch. Sequence stamping stays the
// receiving tracer's job (a Recorder stamps its own lanes), so the same
// event value reaches each branch unmodified.
func (t tee) Emit(ev Event) {
	for _, tr := range t {
		tr.Emit(ev)
	}
}

// Tee combines tracers into one: every emitted event reaches each of
// them, in argument order. Nil interface values are skipped; zero or one
// live tracer collapses to nil or the tracer itself, preserving the
// nil-check-cheap fast path at every emission site. Callers holding
// concrete pointer types must pass nil interfaces, not typed nil
// pointers (the usual Go interface caveat).
func Tee(tracers ...Tracer) Tracer {
	var live tee
	for _, tr := range tracers {
		if tr != nil {
			live = append(live, tr)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Package trace records virtual-time-stamped simulation events: parallel
// region forks and joins, barrier arrivals and releases, marked-phase
// boundaries, per-iteration timing marks, page faults, TLB shootdown
// rounds, and every action of the two migration engines (kernel scans,
// UPMlib invocations, record–replay page lists).
//
// The paper's claims are event claims — "UPMlib migrates after the first
// iteration, then deactivates itself", "replay moves the top-n critical
// pages before z_solve and undo restores them after" — and aggregate
// end-of-run statistics cannot falsify them. A trace can: the protocol
// and golden-trace tests in internal/nas assert directly against the
// event stream.
//
// Determinism contract: events carry the emitting CPU's virtual clock and
// a per-CPU sequence number stamped at emission. Within one CPU lane,
// emission order is program order; Recorder.Events merges lanes by
// (Time, CPU, Seq), which is a total order (Seq is unique per lane), so
// the merged stream of a deterministic run is itself deterministic — the
// same property the golden-trace test relies on. Machine-level events
// that happen at quiescent points (barrier settlement, kernel-engine
// scans) are attributed to the pseudo-lane KernelCPU.
//
// Tracing never charges virtual time. An attached Tracer observes clocks;
// it must not advance them, so traced and untraced runs are bit-identical
// (internal/nas's TestTracingOffOnEquivalence proves it per benchmark).
package trace

import (
	"sort"
	"sync"
)

// Kind identifies an event type.
type Kind uint8

// Event kinds. The Arg0/Arg1 conventions per kind are documented on each
// constant; unused args are zero.
const (
	// EvRegionFork marks a parallel region start on the master CPU, before
	// the fork overhead is charged. Name is the region's label.
	EvRegionFork Kind = iota + 1
	// EvRegionJoin marks the region's join-barrier settlement; the span
	// fork→join is the region's wall virtual time including barriers and
	// barrier-hook (kernel engine) work.
	EvRegionJoin
	// EvBarrierArrive is one thread reaching a barrier, stamped with the
	// arriving CPU's own clock.
	EvBarrierArrive
	// EvBarrierRelease is the settled release time of a barrier, on the
	// kernel lane. Arg0 is the team size.
	EvBarrierRelease
	// EvPhaseEnter/EvPhaseExit bracket the kernel's marked phase (z_solve
	// in BT and SP) on the master CPU.
	EvPhaseEnter
	EvPhaseExit
	// EvIterStart/EvIterEnd bracket one timed main-loop iteration on the
	// master CPU. Arg0 is the 1-based step; EvIterEnd.Arg1 is the
	// iteration's virtual duration in picoseconds.
	EvIterStart
	EvIterEnd
	// EvPageFault is a first-touch page allocation. Arg0 is the vpn,
	// Arg1 the home node chosen.
	EvPageFault
	// EvShootdown is one machine-wide TLB shootdown round. Arg0 is the
	// number of rounds (always 1 except for the kernel engine, which pays
	// one round per page). Name says who paid: "kmig", "upm", "replay",
	// "undo", or "collapse" (replica collapse on write).
	EvShootdown
	// EvKmigScan is one kernel-engine scan at a barrier, on the kernel
	// lane. Arg0 is the number of pages moved, Arg1 the picoseconds
	// charged to the barrier.
	EvKmigScan
	// EvKmigMigrate carries the page list of a kernel-engine scan that
	// moved pages. Arg0 is the move count.
	EvKmigMigrate
	// EvUPMRegister is one MemRefCnt hot-range registration. Arg0/Arg1
	// are the [lo, hi) vpn bounds.
	EvUPMRegister
	// EvUPMMigrate is one MigrateMemory invocation on the calling CPU.
	// Arg0 is the number of pages moved, Arg1 the 1-based invocation
	// number; Pages lists the moves.
	EvUPMMigrate
	// EvUPMDeactivate marks the engine's self-deactivation (the
	// invocation that found nothing to move).
	EvUPMDeactivate
	// EvUPMRecord is one counter snapshot (upmlib_record). Arg0 is the
	// snapshot index.
	EvUPMRecord
	// EvUPMCompare is the plan construction (upmlib_compare_counters).
	// Arg0 is the number of plans, Arg1 the total planned moves.
	EvUPMCompare
	// EvUPMReplay is one replay application. Arg0 is the number of pages
	// moved, Arg1 the plan index applied; Pages lists the moves.
	EvUPMReplay
	// EvUPMUndo is one undo application; Arg0 and Pages as in EvUPMReplay.
	EvUPMUndo
	// EvSteadyState marks the iteration at whose end the steady-state
	// detector proved the per-iteration counter delta repeats. Arg0 is the
	// 1-based iteration, Arg1 the window length (consecutive identical
	// deltas observed).
	EvSteadyState
	// EvExtrapolate marks a steady-state fast-forward: the remaining
	// iterations were not simulated; their virtual time and counters were
	// added analytically. The event is stamped with the post-jump clock;
	// Arg0 is the number of extrapolated iterations, Arg1 the total
	// picoseconds they account for. The trace deliberately contains no
	// iter/region/barrier events for the extrapolated span — Summary's
	// ExtrapolatedIters/ExtrapolatedPS fields restore the sum contract.
	EvExtrapolate
	// EvCampaignFF marks an analytic campaign fast-forward: a
	// kernel-migration campaign over proven-frozen compute was drained in
	// closed form instead of simulated. Stamped with the post-drain clock;
	// Arg0 is the number of drained iterations, Arg1 the total picoseconds
	// they account for. Like EvExtrapolate, the drained span carries no
	// iter/region/barrier events.
	EvCampaignFF
)

var kindNames = [...]string{
	EvRegionFork:     "region_fork",
	EvRegionJoin:     "region_join",
	EvBarrierArrive:  "barrier_arrive",
	EvBarrierRelease: "barrier_release",
	EvPhaseEnter:     "phase_enter",
	EvPhaseExit:      "phase_exit",
	EvIterStart:      "iter_start",
	EvIterEnd:        "iter_end",
	EvPageFault:      "page_fault",
	EvShootdown:      "shootdown",
	EvKmigScan:       "kmig_scan",
	EvKmigMigrate:    "kmig_migrate",
	EvUPMRegister:    "upm_register",
	EvUPMMigrate:     "upm_migrate",
	EvUPMDeactivate:  "upm_deactivate",
	EvUPMRecord:      "upm_record",
	EvUPMCompare:     "upm_compare",
	EvUPMReplay:      "upm_replay",
	EvUPMUndo:        "upm_undo",
	EvSteadyState:    "steady_state",
	EvExtrapolate:    "extrapolate",
	EvCampaignFF:     "campaign_ff",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// KernelCPU is the pseudo-lane for machine-level events emitted at
// quiescent points (barrier settlement, kernel-engine scans) rather than
// by one application thread.
const KernelCPU = -1

// PageMove is one page migration: vpn moved From → To.
type PageMove struct {
	VPN  uint64 `json:"vpn"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// Event is one trace record.
type Event struct {
	Time  int64  // virtual picoseconds of the emitting clock
	CPU   int    // emitting CPU id, or KernelCPU
	Seq   uint64 // per-CPU emission index, stamped by the Recorder
	Kind  Kind
	Name  string // region label, shootdown payer, ... (kind-specific)
	Arg0  int64  // kind-specific (see the Kind constants)
	Arg1  int64
	Pages []PageMove // migration page lists (nil unless the kind carries one)
}

// Tracer receives events. Implementations must be safe for concurrent
// Emit calls (team threads emit from their own goroutines) and must not
// advance any simulated clock: tracing is observation only, which is what
// keeps traced and untraced runs bit-identical.
type Tracer interface {
	Emit(ev Event)
}

// Recorder is the standard Tracer: an append buffer with per-CPU
// sequence stamping. The zero value is not ready; use NewRecorder.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    map[int]uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{seq: make(map[int]uint64)}
}

// Emit appends the event, stamping its per-CPU sequence number. Event
// volume is modest (thousands per run — engines and barriers, not memory
// accesses), so a single mutex costs less than per-lane buffers would
// and keeps Len/Events trivially consistent.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	ev.Seq = r.seq[ev.CPU]
	r.seq[ev.CPU]++
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events and sequence state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.seq = make(map[int]uint64)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events merged deterministically:
// sorted by (Time, CPU, Seq). Seq is unique within a CPU lane, so the
// order is total, and within a lane it preserves program order even for
// equal timestamps (a settled barrier gives many events the same clock).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.CPU != b.CPU {
			return a.CPU < b.CPU
		}
		return a.Seq < b.Seq
	})
	return out
}

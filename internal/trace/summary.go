package trace

import (
	"fmt"
	"io"
)

// PhaseTotal aggregates the virtual time of one named parallel region
// across the timed main loop.
type PhaseTotal struct {
	Name    string `json:"name"`
	Regions int    `json:"regions"` // region instances summed
	TimePS  int64  `json:"time_ps"` // fork→join spans, barriers included
}

// IterStat is one timed iteration's row.
type IterStat struct {
	Step        int   `json:"step"`
	TimePS      int64 `json:"time_ps"`
	UPMMoves    int64 `json:"upm_moves"`
	ReplayMoves int64 `json:"replay_moves"`
	UndoMoves   int64 `json:"undo_moves"`
	KmigMoves   int64 `json:"kmig_moves"`
}

// Summary is the structured digest of one run's trace. The phase
// breakdown covers the timed main loop only (between the first
// iter_start and the last iter_end); the flat counters at the bottom
// cover the whole trace including the cold-start iteration.
//
// Sum contract: TotalPS == sum of Phases[].TimePS + SerialPS +
// ExtrapolatedPS == sum of PerIter[].TimePS + ExtrapolatedPS. Region
// forks are stamped after the preceding serial section settles and joins
// after the region's barrier-hook work, so the named spans and the
// serial gaps tile the loop exactly. An extrapolate event extends
// TotalPS past the last simulated iteration without any region or iter
// events inside the span; ExtrapolatedPS carries that tail explicitly so
// both equalities keep holding.
type Summary struct {
	Events     int   `json:"events"`
	Iterations int   `json:"iterations"` // simulated iterations only
	TotalPS    int64 `json:"total_ps"`   // first iter_start → end of run

	// Steady-state fast-forward (zero when the run simulated every
	// iteration): iterations whose time was extrapolated rather than
	// simulated, and the picoseconds they account for.
	ExtrapolatedIters int   `json:"extrapolated_iters,omitempty"`
	ExtrapolatedPS    int64 `json:"extrapolated_ps,omitempty"`

	// Analytic campaign fast-forward (zero when no kernel-migration
	// campaign was drained in closed form): iterations the drain covered
	// and the picoseconds they account for. Accounted like an
	// extrapolated span — no iter/region events inside it.
	CampaignIters int   `json:"campaign_iters,omitempty"`
	CampaignPS    int64 `json:"campaign_ps,omitempty"`

	Phases        []PhaseTotal `json:"phases"` // first-appearance order
	SerialPS      int64        `json:"serial_ps"`
	MarkedPhasePS int64        `json:"marked_phase_ps"` // z_solve spans

	PerIter []IterStat `json:"per_iter"`

	UPMInvocations    int64 `json:"upm_invocations"`
	UPMMoves          int64 `json:"upm_moves"`
	UPMDeactivateIter int   `json:"upm_deactivate_iter"` // 0 = never
	ReplayMoves       int64 `json:"replay_moves"`
	UndoMoves         int64 `json:"undo_moves"`
	KmigScans         int64 `json:"kmig_scans"`
	KmigMoves         int64 `json:"kmig_moves"`

	Shootdowns int64 `json:"shootdowns"` // rounds, whole trace
	Faults     int64 `json:"faults"`     // page faults, whole trace
	Barriers   int64 `json:"barriers"`   // barrier releases, whole trace
}

// Summarize digests a merged event stream (as returned by
// Recorder.Events; the stream must be time-sorted).
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events)}
	phaseIdx := map[string]int{}
	var (
		firstIterStart, lastIterEnd int64
		haveIter                    bool
		iter                        *IterStat
		regionStart                 int64
		regionName                  string
		regionOpen                  bool
		markStart                   int64
		regionPS                    int64
	)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EvIterStart:
			if !haveIter {
				firstIterStart, haveIter = ev.Time, true
			}
			s.PerIter = append(s.PerIter, IterStat{Step: int(ev.Arg0)})
			iter = &s.PerIter[len(s.PerIter)-1]
		case EvIterEnd:
			if iter != nil {
				iter.TimePS = ev.Arg1
			}
			lastIterEnd = ev.Time
			iter = nil
			s.Iterations++
		case EvRegionFork:
			if iter != nil {
				regionStart, regionName, regionOpen = ev.Time, ev.Name, true
			}
		case EvRegionJoin:
			if regionOpen {
				name := regionName
				if name == "" {
					name = "parallel"
				}
				j, ok := phaseIdx[name]
				if !ok {
					j = len(s.Phases)
					phaseIdx[name] = j
					s.Phases = append(s.Phases, PhaseTotal{Name: name})
				}
				s.Phases[j].Regions++
				s.Phases[j].TimePS += ev.Time - regionStart
				regionPS += ev.Time - regionStart
				regionOpen = false
			}
		case EvPhaseEnter:
			markStart = ev.Time
		case EvPhaseExit:
			s.MarkedPhasePS += ev.Time - markStart
		case EvUPMMigrate:
			s.UPMInvocations++
			s.UPMMoves += ev.Arg0
			if iter != nil {
				iter.UPMMoves += ev.Arg0
			}
		case EvUPMDeactivate:
			if iter != nil && s.UPMDeactivateIter == 0 {
				s.UPMDeactivateIter = iter.Step
			}
		case EvUPMReplay:
			s.ReplayMoves += ev.Arg0
			if iter != nil {
				iter.ReplayMoves += ev.Arg0
			}
		case EvUPMUndo:
			s.UndoMoves += ev.Arg0
			if iter != nil {
				iter.UndoMoves += ev.Arg0
			}
		case EvKmigScan:
			s.KmigScans++
			s.KmigMoves += ev.Arg0
			if iter != nil {
				iter.KmigMoves += ev.Arg0
			}
		case EvExtrapolate:
			// Stamped with the post-jump clock; the span it accounts for
			// ends the timed loop, so treat it like a final iter_end.
			s.ExtrapolatedIters += int(ev.Arg0)
			s.ExtrapolatedPS += ev.Arg1
			lastIterEnd = ev.Time
		case EvCampaignFF:
			// Mid-loop analytic drain, stamped with the post-drain clock;
			// simulated iterations resume after it.
			s.CampaignIters += int(ev.Arg0)
			s.CampaignPS += ev.Arg1
			lastIterEnd = ev.Time
		case EvShootdown:
			s.Shootdowns += ev.Arg0
		case EvPageFault:
			s.Faults++
		case EvBarrierRelease:
			s.Barriers++
		}
	}
	if haveIter {
		s.TotalPS = lastIterEnd - firstIterStart
		s.SerialPS = s.TotalPS - regionPS - s.ExtrapolatedPS - s.CampaignPS
	}
	return s
}

// WriteSummary renders the summary as text: the per-phase virtual-time
// breakdown the paper's Figure 5 plots, then the engine and machine
// counters, then the per-iteration table.
func WriteSummary(w io.Writer, s Summary) {
	fmt.Fprintf(w, "trace: %d events, %d timed iterations, %.6fs virtual (%d ps)\n",
		s.Events, s.Iterations, float64(s.TotalPS)/1e12, s.TotalPS)
	if s.TotalPS > 0 {
		fmt.Fprintf(w, "phase breakdown of the timed loop:\n")
		pct := func(ps int64) float64 { return 100 * float64(ps) / float64(s.TotalPS) }
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-16s %4d regions  %14d ps  %5.1f%%\n", p.Name, p.Regions, p.TimePS, pct(p.TimePS))
		}
		fmt.Fprintf(w, "  %-16s %4s          %14d ps  %5.1f%%\n", "(serial)", "", s.SerialPS, pct(s.SerialPS))
		if s.ExtrapolatedIters > 0 {
			fmt.Fprintf(w, "  %-16s %4d iters    %14d ps  %5.1f%%\n",
				"(extrapolated)", s.ExtrapolatedIters, s.ExtrapolatedPS, pct(s.ExtrapolatedPS))
		}
		if s.CampaignIters > 0 {
			fmt.Fprintf(w, "  %-16s %4d iters    %14d ps  %5.1f%%\n",
				"(campaign)", s.CampaignIters, s.CampaignPS, pct(s.CampaignPS))
		}
	}
	if s.MarkedPhasePS > 0 {
		fmt.Fprintf(w, "marked phase total: %d ps\n", s.MarkedPhasePS)
	}
	fmt.Fprintf(w, "upm: %d invocations, %d moves", s.UPMInvocations, s.UPMMoves)
	if s.UPMDeactivateIter > 0 {
		fmt.Fprintf(w, ", self-deactivated at iteration %d", s.UPMDeactivateIter)
	}
	fmt.Fprintf(w, "; replay %d, undo %d\n", s.ReplayMoves, s.UndoMoves)
	fmt.Fprintf(w, "kmig: %d scans, %d moves\n", s.KmigScans, s.KmigMoves)
	fmt.Fprintf(w, "shootdown rounds %d, page faults %d, barriers %d\n",
		s.Shootdowns, s.Faults, s.Barriers)
	if len(s.PerIter) > 0 {
		fmt.Fprintf(w, "per iteration:\n")
		fmt.Fprintf(w, "  %4s %14s %8s %8s %8s %8s\n", "iter", "ps", "upm", "replay", "undo", "kmig")
		for _, it := range s.PerIter {
			fmt.Fprintf(w, "  %4d %14d %8d %8d %8d %8d\n",
				it.Step, it.TimePS, it.UPMMoves, it.ReplayMoves, it.UndoMoves, it.KmigMoves)
		}
	}
}

package trace

import "testing"

// TestTee checks the fan-out and its collapsing constructor: nil
// branches are dropped, zero live tracers collapse to nil (preserving
// the nil-check fast path at emission sites), a single live tracer is
// returned as itself, and a real tee delivers every event to every
// branch in order.
func TestTee(t *testing.T) {
	if got := Tee(); got != nil {
		t.Errorf("Tee() = %v, want nil", got)
	}
	if got := Tee(nil, nil); got != nil {
		t.Errorf("Tee(nil, nil) = %v, want nil", got)
	}
	solo := NewRecorder()
	if got := Tee(nil, solo, nil); got != Tracer(solo) {
		t.Errorf("Tee with one live branch = %v, want the branch itself", got)
	}

	a, b := NewRecorder(), NewRecorder()
	tr := Tee(a, nil, b)
	if tr == nil {
		t.Fatal("Tee with two live branches collapsed to nil")
	}
	events := []Event{
		{Kind: EvIterStart, Time: 10, CPU: 0, Arg0: 1},
		{Kind: EvPageFault, Time: 20, CPU: 1, Name: "vpn"},
		{Kind: EvIterEnd, Time: 30, CPU: 0, Arg0: 1},
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	for name, rec := range map[string]*Recorder{"a": a, "b": b} {
		got := rec.Events()
		if len(got) != len(events) {
			t.Fatalf("branch %s saw %d events, want %d", name, len(got), len(events))
		}
		for i, ev := range got {
			if ev.Kind != events[i].Kind || ev.Time != events[i].Time || ev.Name != events[i].Name {
				t.Errorf("branch %s event %d = %+v, want %+v", name, i, ev, events[i])
			}
		}
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSON renders the full series (samples plus any heatmaps) as
// indented JSON — the interchange format consumed by `traceview heatmap`
// and `pagemap -from`.
func (s Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSeries parses a series previously written by WriteJSON.
func ReadSeries(r io.Reader) (Series, error) {
	var s Series
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Series{}, fmt.Errorf("metrics: decoding series: %w", err)
	}
	return s, nil
}

// WriteCSV renders one row per sample for spreadsheet plotting. The
// per-node columns (res<N>, refs<N>) widen with the machine's node
// count; the header names them explicitly.
func (s Series) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("step,kind,time_ps,iter_ps,local_refs,remote_refs,mach_local,mach_remote," +
		"migrations,faults,collapses,upm_moves,replay_moves,undo_moves,kmig_scans,kmig_moves," +
		"shootdown_rounds,frozen_pages,replicated_pages,barriers,barrier_imbalance_ps")
	for n := 0; n < s.Nodes; n++ {
		fmt.Fprintf(&sb, ",res%d", n)
	}
	for n := 0; n < s.Nodes; n++ {
		fmt.Fprintf(&sb, ",refs%d", n)
	}
	sb.WriteByte('\n')
	for _, sm := range s.Samples {
		var rounds int64
		for _, v := range sm.Shootdowns {
			rounds += v
		}
		fmt.Fprintf(&sb, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			sm.Step, sm.Kind, sm.TimePS, sm.IterPS, sm.LocalRefs, sm.RemoteRefs,
			sm.MachLocal, sm.MachRemote, sm.Migrations, sm.Faults, sm.Collapses,
			sm.UPMMoves, sm.ReplayMoves, sm.UndoMoves, sm.KmigScans, sm.KmigMoves,
			rounds, sm.FrozenPages, sm.ReplicaPages, sm.Barriers, sm.BarrierImbalancePS)
		for n := 0; n < s.Nodes; n++ {
			v := int64(0)
			if n < len(sm.Residency) {
				v = sm.Residency[n]
			}
			fmt.Fprintf(&sb, ",%d", v)
		}
		for n := 0; n < s.Nodes; n++ {
			v := uint64(0)
			if n < len(sm.NodeRefs) {
				v = sm.NodeRefs[n]
			}
			fmt.Fprintf(&sb, ",%d", v)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WritePrometheus renders the series' final state as a Prometheus text
// snapshot — the same families a live Registry would expose for this
// cell, frozen at the last sample.
func (s Series) WritePrometheus(w io.Writer) error {
	if len(s.Samples) == 0 {
		return nil
	}
	reg := NewRegistry()
	describe(reg)
	publish(reg, s.Cell, s.Samples[len(s.Samples)-1])
	return reg.WriteText(w)
}

// describe registers the sampler's metric families with their metadata.
func describe(reg *Registry) {
	reg.Describe("upmgo_page_residency", "gauge", "pages resident per node")
	reg.Describe("upmgo_hot_refs", "gauge", "hardware reference-counter refs to hot pages per accessing node (since last engine reset)")
	reg.Describe("upmgo_refs", "gauge", "hot-page reference-counter refs split by locality of the accessing node")
	reg.Describe("upmgo_mem_accesses", "counter", "cumulative main-memory accesses split local/remote")
	reg.Describe("upmgo_page_migrations", "counter", "cumulative successful page migrations")
	reg.Describe("upmgo_page_faults", "counter", "cumulative first-touch page faults")
	reg.Describe("upmgo_replica_collapses", "counter", "cumulative replica collapses on write")
	reg.Describe("upmgo_shootdown_rounds", "counter", "cumulative TLB shootdown rounds by payer")
	reg.Describe("upmgo_barrier_imbalance_ps", "counter", "cumulative barrier arrival spread in picoseconds")
	reg.Describe("upmgo_iteration", "gauge", "latest sampled timed-loop iteration")
}

// publish pushes one sample's values into the registry as labelled
// gauges, labelling every series with the cell name when set.
func publish(reg *Registry, cell string, sm Sample) {
	lbl := func(extra Labels) Labels {
		l := Labels{}
		if cell != "" {
			l["cell"] = cell
		}
		for k, v := range extra {
			l[k] = v
		}
		return l
	}
	for n, v := range sm.Residency {
		reg.Set("upmgo_page_residency", lbl(Labels{"node": strconv.Itoa(n)}), float64(v))
	}
	for n, v := range sm.NodeRefs {
		reg.Set("upmgo_hot_refs", lbl(Labels{"node": strconv.Itoa(n)}), float64(v))
	}
	reg.Set("upmgo_refs", lbl(Labels{"kind": "local"}), float64(sm.LocalRefs))
	reg.Set("upmgo_refs", lbl(Labels{"kind": "remote"}), float64(sm.RemoteRefs))
	reg.Set("upmgo_mem_accesses", lbl(Labels{"kind": "local"}), float64(sm.MachLocal))
	reg.Set("upmgo_mem_accesses", lbl(Labels{"kind": "remote"}), float64(sm.MachRemote))
	reg.Set("upmgo_page_migrations", lbl(nil), float64(sm.Migrations))
	reg.Set("upmgo_page_faults", lbl(nil), float64(sm.Faults))
	reg.Set("upmgo_replica_collapses", lbl(nil), float64(sm.Collapses))
	reg.Set("upmgo_barrier_imbalance_ps", lbl(nil), float64(sm.BarrierImbalancePS))
	reg.Set("upmgo_iteration", lbl(nil), float64(sm.Step))
	for payer, v := range sm.Shootdowns {
		reg.Set("upmgo_shootdown_rounds", lbl(Labels{"payer": payer}), float64(v))
	}
}

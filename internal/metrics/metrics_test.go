package metrics_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/nas/ft"
	"upmgo/internal/vm"
)

// sampleRun runs FT Class S (worst-case placement, both engines, one
// thread) with the given sampler attached and returns its result.
func sampleRun(t *testing.T, s *metrics.Sampler) nas.Result {
	t.Helper()
	res, err := nas.Run(ft.New, nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		KernelMig: true,
		UPM:       nas.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSamplerEndToEnd drives one real run through the sampler and checks
// the series against the run, the live registry publication, and every
// exporter.
func TestSamplerEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	s := metrics.NewSampler(metrics.Options{Heatmap: true, Registry: reg, Cell: "ft-wc"})
	res := sampleRun(t, s)
	se := s.Series()

	if se.Cell != "ft-wc" {
		t.Errorf("series cell %q", se.Cell)
	}
	if se.Nodes == 0 || se.PageBytes == 0 || se.HotPages == 0 || len(se.HotRanges) == 0 {
		t.Errorf("series geometry not filled: %+v", se)
	}
	var iters int
	for _, sm := range se.Samples {
		if sm.Kind == "iter" {
			iters++
		}
	}
	if iters != len(res.IterPS) {
		t.Fatalf("%d iteration samples, want %d", iters, len(res.IterPS))
	}
	if len(se.Heat) != iters {
		t.Fatalf("%d heatmaps, want %d", len(se.Heat), iters)
	}
	local, remote := se.Locality()
	if local != res.Mach.LocalMem || remote != res.Mach.RemoteMem {
		t.Errorf("Locality (%d, %d), run reported (%d, %d)", local, remote, res.Mach.LocalMem, res.Mach.RemoteMem)
	}

	// Live registry: the last iteration's values are published with the
	// cell label.
	var prom bytes.Buffer
	if err := reg.WriteText(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		`upmgo_page_residency{cell="ft-wc",node="0"}`,
		`upmgo_refs{cell="ft-wc",kind="local"}`,
		`upmgo_refs{cell="ft-wc",kind="remote"}`,
		`upmgo_mem_accesses{cell="ft-wc",kind="remote"}`,
		`upmgo_page_migrations{cell="ft-wc"}`,
		"# TYPE upmgo_page_residency gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry text lacks %q:\n%s", want, text)
		}
	}

	// JSON roundtrip is lossless.
	var buf bytes.Buffer
	if err := se.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := metrics.ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(se, back) {
		t.Error("series JSON roundtrip not lossless")
	}

	// CSV: a header plus one row per sample, node columns widened.
	buf.Reset()
	if err := se.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(se.Samples) {
		t.Errorf("CSV has %d lines, want header + %d samples", len(lines), len(se.Samples))
	}
	if !strings.HasPrefix(lines[0], "step,kind,time_ps") || !strings.Contains(lines[0], ",res0,") {
		t.Errorf("CSV header malformed: %s", lines[0])
	}
	for _, l := range lines {
		if got, want := strings.Count(l, ","), strings.Count(lines[0], ","); got != want {
			t.Fatalf("ragged CSV row (%d vs %d columns): %s", got+1, want+1, l)
		}
	}

	// The Prometheus snapshot of the final sample matches the live
	// registry's families.
	buf.Reset()
	if err := se.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `upmgo_page_residency{cell="ft-wc",node="0"}`) {
		t.Errorf("prometheus snapshot lacks residency:\n%s", buf.String())
	}
}

// TestSamplerIdle: an unarmed sampler absorbs events and sampling calls
// without panicking and yields an empty series.
func TestSamplerIdle(t *testing.T) {
	s := metrics.NewSampler(metrics.Options{})
	s.SampleIteration(1, 100)
	se := s.Series()
	if len(se.Samples) != 0 || se.Nodes != 0 {
		t.Errorf("idle sampler produced samples: %+v", se)
	}
	var buf bytes.Buffer
	if err := se.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("empty series rendered %q, %v", buf.String(), err)
	}
}

// TestRegistry checks the hand-rolled registry's exposition format:
// deterministic ordering, label escaping, counter/gauge metadata, Add
// accumulation.
func TestRegistry(t *testing.T) {
	r := metrics.NewRegistry()
	r.Describe("b_counter", "counter", "a counter")
	r.Add("b_counter", nil, 1)
	r.Add("b_counter", nil, 2)
	r.Set("a_gauge", metrics.Labels{"x": `va"l\ue` + "\n"}, 1.5)
	r.Set("a_gauge", metrics.Labels{"x": "other", "a": "z"}, 2)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_gauge gauge
a_gauge{a="z",x="other"} 2
a_gauge{x="va\"l\\ue\n"} 1.5
# HELP b_counter a counter
# TYPE b_counter counter
b_counter 3
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// TestHandler checks the combined observability endpoint: Prometheus
// text on /metrics, expvar JSON on /debug/vars, pprof index, and the
// human index page.
func TestHandler(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Set("upmgo_test", nil, 7)
	srv := httptest.NewServer(metrics.Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "upmgo_test 7") {
		t.Errorf("/metrics body lacks the gauge:\n%s", body)
	}

	code, _, body = get("/debug/vars")
	if code != 200 {
		t.Errorf("/debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars lacks memstats")
	}

	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d", code)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: %d, want 404", code)
	}
}

package metrics

import (
	"strings"
	"testing"
)

// TestHistogramExposition pins the text form: cumulative le buckets with
// an explicit +Inf, then _sum and _count, deterministically ordered.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.DescribeHistogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		r.Observe("lat_seconds", Labels{"ep": "/v1/jobs"}, v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{ep="/v1/jobs",le="0.1"} 2
lat_seconds_bucket{ep="/v1/jobs",le="1"} 3
lat_seconds_bucket{ep="/v1/jobs",le="10"} 4
lat_seconds_bucket{ep="/v1/jobs",le="+Inf"} 5
lat_seconds_sum{ep="/v1/jobs"} 102.65
lat_seconds_count{ep="/v1/jobs"} 5
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got\n%s--- want\n%s", sb.String(), want)
	}
}

// TestHistogramUnlabelled: the unlabelled series renders with only the
// le label, and an undescribed Observe creates the family with
// DefBuckets.
func TestHistogramUnlabelled(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", nil, 0.003)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE h histogram",
		`h_bucket{le="0.005"} 1`,
		`h_bucket{le="+Inf"} 1`,
		"h_sum 0.003",
		"h_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "h_bucket"); got != len(DefBuckets)+1 {
		t.Errorf("bucket lines = %d, want %d", got, len(DefBuckets)+1)
	}
}

// TestHistogramTypeCollisions: writing a gauge value into a histogram
// name (or observing into a gauge name) is dropped instead of panicking
// or corrupting the family.
func TestHistogramTypeCollisions(t *testing.T) {
	r := NewRegistry()
	r.DescribeHistogram("h", "", nil)
	r.Set("h", nil, 42)
	r.Add("h", nil, 1)
	r.Set("g", nil, 7)
	r.Observe("g", nil, 0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Contains(text, "h 4") || strings.Contains(text, "h 1") {
		t.Errorf("gauge write leaked into the histogram family:\n%s", text)
	}
	if !strings.Contains(text, "g 7") || strings.Contains(text, "g_bucket") {
		t.Errorf("observe corrupted the gauge family:\n%s", text)
	}
}

// TestPublishBuildInfo: the gauge carries the identity labels with a
// constant 1 value.
func TestPublishBuildInfo(t *testing.T) {
	r := NewRegistry()
	PublishBuildInfo(r, "upmgo-sim-1", 1)
	PublishBuildInfo(nil, "upmgo-sim-1", 1) // nil registry is a no-op
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE upmgo_build_info gauge",
		`code_version="upmgo-sim-1"`,
		`schema_version="1"`,
		`go_version="go`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("build info lacks %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "} 1\n") {
		t.Errorf("build info gauge is not 1:\n%s", text)
	}
}

// TestObserveCellSeconds: the helper lands in the right family/labels.
func TestObserveCellSeconds(t *testing.T) {
	r := NewRegistry()
	DescribeCellSeconds(r)
	ObserveCellSeconds(r, "BT", "ft-IRIXmig", 0.02)
	ObserveCellSeconds(nil, "BT", "ft", 1) // nil registry is a no-op
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, CellSecondsName+`_bucket{bench="BT",cell="ft-IRIXmig",le="0.05"} 1`) {
		t.Errorf("cell histogram missing the observation:\n%s", text)
	}
	if !strings.Contains(text, CellSecondsName+`_count{bench="BT",cell="ft-IRIXmig"} 1`) {
		t.Errorf("cell histogram count wrong:\n%s", text)
	}
}

package metrics

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live observability endpoint served by
// `cmd/sweep -metrics-addr`: the registry in Prometheus text format at
// /metrics, the process expvar JSON at /debug/vars, and the standard
// net/http/pprof profiles under /debug/pprof/ — everything a
// long-running sweep service needs, from the standard library alone.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>upmgo sweep</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof profiles</li>
</ul></body></html>`)
	})
	return mux
}

// Package metrics aggregates the simulator's NUMA locality telemetry
// into virtual-time time series: per-node page residency, local vs
// remote access counts read from the per-page hardware reference
// counters, page migrations, TLB-shootdown rounds, replica collapses and
// barrier-imbalance picoseconds, sampled at every iteration mark and
// marked-phase boundary of a NAS run.
//
// The tracer (package trace) records events; this package aggregates
// them. A Sampler is both: it implements trace.Tracer to tally the event
// stream (shootdowns, engine moves, barrier imbalance) and is called by
// the nas driver at each sampling point to snapshot state no event
// carries — the reference-counter rows as the migration engines would
// see them, read after the iteration's compute but before the engine
// invocation that resets them.
//
// Sampling obeys the tracing invariant: it reads clocks, page-table
// state and counters but never advances a simulated clock or mutates
// simulated state, so a sampled run is bit-identical in virtual time to
// the same run unsampled (internal/nas's TestMetricsOffOnEquivalence
// proves it per benchmark and engine). For the same reason a config with
// a Sampler attached is rejected by nas.Config.Fingerprint: a sampler's
// identity is a pointer, and serving its run from the sweep cache would
// silently return stale metrics.
package metrics

import (
	"sync"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
)

// Options configures a Sampler.
type Options struct {
	// Heatmap captures, at every iteration sample, the full hot-page ×
	// node reference-counter matrix (Series.Heat). Costs rows×nodes
	// uint32 of host memory per iteration; leave off for long runs.
	Heatmap bool
	// Registry, when non-nil, receives the latest sample's values as
	// live labelled gauges after every completed iteration (the cmd/sweep
	// -metrics-addr endpoint serves a registry shared by all cells).
	Registry *Registry
	// Cell labels this run's series in the Registry and in the
	// Prometheus export ("" = unlabelled).
	Cell string
}

// Sample is one snapshot of the run's locality state. Iteration samples
// ("iter") are taken after the step's compute and before the engine
// invocation that may reset the reference counters; phase samples
// ("phase") at the marked phase's exit; the "baseline" sample right
// after the cold start's counter reset, before the first timed step.
//
// The reference-counter fields (NodeRefs, LocalRefs, RemoteRefs) are the
// hardware counter rows as the engines see them — accumulated since
// whatever engine last reset or decayed them — while MachLocal and
// MachRemote are the machine's cumulative main-memory access split
// (L2 misses served by the page's home node vs remotely), monotone over
// the whole run. Migrations, Faults and Collapses are cumulative
// page-table counters; the event tallies (Shootdowns, engine moves,
// Barriers, BarrierImbalancePS) are cumulative over the timed loop.
type Sample struct {
	Step   int    `json:"step"`              // 1-based iteration; 0 = baseline
	Kind   string `json:"kind"`              // "baseline", "iter" or "phase"
	TimePS int64  `json:"time_ps"`           // virtual time of the snapshot
	IterPS int64  `json:"iter_ps,omitempty"` // full iteration duration (iter samples)

	Residency    []int64 `json:"residency"`        // pages resident per node
	HotHomes     []int64 `json:"hot_homes"`        // hot pages homed per node
	FrozenPages  int64   `json:"frozen_pages"`     // hot pages frozen by the dampening filter
	ReplicaPages int64   `json:"replicated_pages"` // hot pages with live read replicas

	NodeRefs   []uint64 `json:"node_refs"`   // counter refs per accessing node (hot pages)
	LocalRefs  uint64   `json:"local_refs"`  // refs from the page's current home node
	RemoteRefs uint64   `json:"remote_refs"` // refs from every other node

	MachLocal  uint64 `json:"mach_local"`  // cumulative memory accesses served locally
	MachRemote uint64 `json:"mach_remote"` // cumulative memory accesses served remotely

	Migrations int64 `json:"migrations"` // cumulative successful page moves
	Faults     int64 `json:"faults"`     // cumulative first-touch page faults
	Collapses  int64 `json:"collapses"`  // cumulative replica collapses on write

	Shootdowns  map[string]int64 `json:"shootdowns,omitempty"` // TLB shootdown rounds by payer
	UPMMoves    int64            `json:"upm_moves"`            // pages moved by MigrateMemory
	ReplayMoves int64            `json:"replay_moves"`
	UndoMoves   int64            `json:"undo_moves"`
	KmigScans   int64            `json:"kmig_scans"`
	KmigMoves   int64            `json:"kmig_moves"`

	Barriers           int64 `json:"barriers"`             // barrier releases observed
	BarrierImbalancePS int64 `json:"barrier_imbalance_ps"` // Σ (latest−earliest arrival) per barrier
}

// Heat is one iteration's hot-page × node reference-counter matrix:
// Counts[p*Nodes+n] is page p's counter for accessing node n, pages in
// Series.HotRanges order, read at the iteration's sample point.
type Heat struct {
	Step   int      `json:"step"`
	Pages  int      `json:"pages"`
	Nodes  int      `json:"nodes"`
	Counts []uint32 `json:"counts"`
}

// Series is a completed sampler's time series, self-describing enough
// for the exporters and the heatmap renderers (cmd/traceview heatmap,
// cmd/pagemap -from). Treat a returned Series as read-only: samples
// share backing arrays with the sampler.
type Series struct {
	Cell      string      `json:"cell,omitempty"`
	Nodes     int         `json:"nodes"`
	PageBytes int         `json:"page_bytes"`
	HotRanges [][2]uint64 `json:"hot_ranges"` // [lo, hi) vpn spans of the hot arrays
	HotPages  int         `json:"hot_pages"`
	Samples   []Sample    `json:"samples"`
	Heat      []Heat      `json:"heat,omitempty"`
}

// Locality returns the run's cumulative local vs remote split of
// main-memory accesses, from the machine counters of the last sample.
// Unlike the per-sample reference-counter rows (which engines reset),
// these are monotone over the whole run, so the ratio is exact.
func (s Series) Locality() (local, remote uint64) {
	if n := len(s.Samples); n > 0 {
		last := s.Samples[n-1]
		return last.MachLocal, last.MachRemote
	}
	return 0, 0
}

// Sampler collects a Series from one run. Attach it via nas.Config:
// the driver installs it in the machine's tracer chain (so it tallies
// the event stream) and calls Start and SampleIteration at the sampling
// points. All methods are safe for concurrent use; Emit in particular
// is called from every team thread's goroutine.
type Sampler struct {
	opt Options

	mu  sync.Mutex
	m   *machine.Machine
	hot [][2]uint64

	samples []Sample
	heat    []Heat

	// Event tallies, cumulative over the timed loop (Start resets them
	// so the untimed cold start is excluded).
	shootdowns  map[string]int64
	upmMoves    int64
	replayMoves int64
	undoMoves   int64
	kmigScans   int64
	kmigMoves   int64
	barriers    int64
	imbalancePS int64

	// Current-barrier arrival spread; arrivals of one barrier all
	// precede its release, so a running min/max suffices.
	bMin, bMax int64
	bArrivals  int

	curStep    int   // current iteration (from EvIterStart)
	phaseStart int64 // current marked phase's entry clock

	row []uint32 // scratch counter row
}

// NewSampler returns an idle sampler; the nas driver arms it.
func NewSampler(opt Options) *Sampler {
	return &Sampler{opt: opt, shootdowns: map[string]int64{}}
}

// Start arms the sampler at the head of the timed loop: it binds the
// machine and hot ranges, discards event tallies accumulated during the
// untimed cold start, and records the baseline sample (step 0) — the
// post-reset state every engine starts from. now is the master clock.
func (s *Sampler) Start(m *machine.Machine, hot [][2]uint64, now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	s.hot = hot
	if s.opt.Registry != nil {
		describe(s.opt.Registry)
	}
	s.shootdowns = map[string]int64{}
	s.upmMoves, s.replayMoves, s.undoMoves = 0, 0, 0
	s.kmigScans, s.kmigMoves = 0, 0
	s.barriers, s.imbalancePS, s.bArrivals = 0, 0, 0
	s.samples = append(s.samples, s.snapshot(0, "baseline", now))
}

// SampleIteration records step's iteration sample. The driver calls it
// after the step's compute and before the engine invocation, so the
// reference-counter rows are read before MigrateMemory resets them.
// The sample's IterPS is filled in when the iteration's EvIterEnd
// arrives (the engine work between here and there is part of the
// iteration).
func (s *Sampler) SampleIteration(step int, now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		return
	}
	s.samples = append(s.samples, s.snapshot(step, "iter", now))
	if s.opt.Heatmap {
		s.heat = append(s.heat, s.heatmap(step))
	}
}

// Emit implements trace.Tracer: it tallies the event stream. Like all
// tracers it must never advance a simulated clock; it only aggregates.
func (s *Sampler) Emit(ev trace.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case trace.EvBarrierArrive:
		if s.bArrivals == 0 || ev.Time < s.bMin {
			s.bMin = ev.Time
		}
		if s.bArrivals == 0 || ev.Time > s.bMax {
			s.bMax = ev.Time
		}
		s.bArrivals++
	case trace.EvBarrierRelease:
		s.barriers++
		if s.bArrivals > 0 {
			s.imbalancePS += s.bMax - s.bMin
			s.bArrivals = 0
		}
	case trace.EvShootdown:
		s.shootdowns[ev.Name] += ev.Arg0
	case trace.EvUPMMigrate:
		s.upmMoves += ev.Arg0
	case trace.EvUPMReplay:
		s.replayMoves += ev.Arg0
	case trace.EvUPMUndo:
		s.undoMoves += ev.Arg0
	case trace.EvKmigScan:
		s.kmigScans++
		s.kmigMoves += ev.Arg0
	case trace.EvIterStart:
		s.curStep = int(ev.Arg0)
	case trace.EvIterEnd:
		// Close the pending iteration sample with the full duration
		// (the engine invocation after the sample point is part of it).
		for i := len(s.samples) - 1; i >= 0; i-- {
			if s.samples[i].Kind == "iter" {
				if s.samples[i].Step == int(ev.Arg0) {
					s.samples[i].IterPS = ev.Arg1
				}
				break
			}
		}
		s.curStep = 0
		s.publishLocked()
	case trace.EvPhaseEnter:
		s.phaseStart = ev.Time
	case trace.EvPhaseExit:
		// The marked phase exits in the master's serial section — a
		// quiescent point, so counter rows are stable to read.
		if s.m != nil {
			s.samples = append(s.samples, s.snapshot(s.curStep, "phase", ev.Time))
		}
	}
}

// snapshot reads the current locality state; the caller holds s.mu and
// the simulation is at a quiescent point (serial section of the driver
// or the master between regions).
func (s *Sampler) snapshot(step int, kind string, now int64) Sample {
	pt := s.m.PT
	nodes := pt.Nodes()
	sm := Sample{
		Step:       step,
		Kind:       kind,
		TimePS:     now,
		Residency:  pt.Used(),
		HotHomes:   make([]int64, nodes),
		NodeRefs:   make([]uint64, nodes),
		Migrations: pt.Migrations(),
		Faults:     pt.Faults(),
		Collapses:  pt.Collapses(),

		UPMMoves:           s.upmMoves,
		ReplayMoves:        s.replayMoves,
		UndoMoves:          s.undoMoves,
		KmigScans:          s.kmigScans,
		KmigMoves:          s.kmigMoves,
		Barriers:           s.barriers,
		BarrierImbalancePS: s.imbalancePS,
	}
	if len(s.shootdowns) > 0 {
		sm.Shootdowns = make(map[string]int64, len(s.shootdowns))
		for k, v := range s.shootdowns {
			sm.Shootdowns[k] = v
		}
	}
	if cap(s.row) < nodes {
		s.row = make([]uint32, nodes)
	}
	for _, r := range s.hot {
		for vpn := r[0]; vpn < r[1]; vpn++ {
			home := pt.Home(vpn)
			if home >= 0 {
				sm.HotHomes[home]++
			}
			if pt.Frozen(vpn) {
				sm.FrozenPages++
			}
			if pt.HasReplicas(vpn) {
				sm.ReplicaPages++
			}
			row := pt.Counters(vpn, s.row[:nodes])
			for n, c := range row {
				sm.NodeRefs[n] += uint64(c)
				if n == home {
					sm.LocalRefs += uint64(c)
				} else {
					sm.RemoteRefs += uint64(c)
				}
			}
		}
	}
	st := s.m.Stats()
	sm.MachLocal, sm.MachRemote = st.LocalMem, st.RemoteMem
	return sm
}

// heatmap captures the hot-page × node counter matrix; caller holds s.mu.
func (s *Sampler) heatmap(step int) Heat {
	pt := s.m.PT
	nodes := pt.Nodes()
	pages := 0
	for _, r := range s.hot {
		pages += int(r[1] - r[0])
	}
	h := Heat{Step: step, Pages: pages, Nodes: nodes, Counts: make([]uint32, pages*nodes)}
	i := 0
	for _, r := range s.hot {
		for vpn := r[0]; vpn < r[1]; vpn++ {
			copy(h.Counts[i:i+nodes], pt.Counters(vpn, s.row[:nodes]))
			i += nodes
		}
	}
	return h
}

// publishLocked pushes the latest sample to the registry as labelled
// gauges; caller holds s.mu.
func (s *Sampler) publishLocked() {
	if s.opt.Registry == nil || len(s.samples) == 0 {
		return
	}
	publish(s.opt.Registry, s.opt.Cell, s.samples[len(s.samples)-1])
}

// Series returns the collected time series. Call it after the run; the
// result shares backing arrays with the sampler and must be treated as
// read-only.
func (s *Sampler) Series() Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Series{
		Cell:    s.opt.Cell,
		Samples: append([]Sample(nil), s.samples...),
		Heat:    append([]Heat(nil), s.heat...),
	}
	if s.m != nil {
		out.Nodes = s.m.PT.Nodes()
		out.PageBytes = s.m.PageBytes()
		out.HotRanges = append([][2]uint64(nil), s.hot...)
		for _, r := range s.hot {
			out.HotPages += int(r[1] - r[0])
		}
	}
	return out
}

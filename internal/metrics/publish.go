package metrics

import (
	"runtime"
	"strconv"
)

// Canonical telemetry family names, shared by cmd/sweep and cmd/sweepd
// so dashboards can join the two endpoints.
const (
	// BuildInfoName is the classic build-info gauge: constant 1, with
	// the interesting facts in the labels.
	BuildInfoName = "upmgo_build_info"
	// CellSecondsName is the per-cell host-simulation-seconds histogram,
	// labelled by benchmark and cell (placement+engine label).
	CellSecondsName = "upmgo_sweep_cell_host_seconds"
	// JobQueueSecondsName is sweepd's job queue-wait histogram
	// (accepted -> started).
	JobQueueSecondsName = "upmgo_sweepd_job_queue_seconds"
	// JobRunSecondsName is sweepd's job run-time histogram
	// (started -> terminal state).
	JobRunSecondsName = "upmgo_sweepd_job_run_seconds"
	// HTTPSecondsName is sweepd's per-endpoint request-latency
	// histogram, labelled by normalized path and method.
	HTTPSecondsName = "upmgo_sweepd_http_request_seconds"
)

// CellBuckets spreads from sub-millisecond recalls to multi-minute
// Class A simulations — DefBuckets tops out at 10s, which a cold
// Class A cell blows through.
var CellBuckets = []float64{.0005, .001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120, 300}

// PublishBuildInfo sets the build-info gauge: value 1, identity in the
// labels (Go runtime version plus the simulator's code and schema
// versions, passed in by the caller — the metrics package cannot import
// internal/store without a cycle).
func PublishBuildInfo(reg *Registry, codeVersion string, schemaVersion int) {
	if reg == nil {
		return
	}
	reg.Describe(BuildInfoName, "gauge",
		"Build identity of this process; value is constant 1.")
	reg.Set(BuildInfoName, Labels{
		"go_version":     runtime.Version(),
		"code_version":   codeVersion,
		"schema_version": strconv.Itoa(schemaVersion),
	}, 1)
}

// DescribeCellSeconds declares the per-cell host-seconds histogram.
func DescribeCellSeconds(reg *Registry) {
	reg.DescribeHistogram(CellSecondsName,
		"Host wall-clock seconds spent obtaining one sweep cell (simulated or recalled).",
		CellBuckets)
}

// ObserveCellSeconds records one finished cell's host cost.
func ObserveCellSeconds(reg *Registry, bench, cell string, seconds float64) {
	if reg == nil {
		return
	}
	reg.Observe(CellSecondsName, Labels{"bench": bench, "cell": cell}, seconds)
}

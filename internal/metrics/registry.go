package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels name one series within a metric family. A nil map is the
// unlabelled series.
type Labels map[string]string

// key renders the labels in canonical Prometheus form — sorted names,
// escaped values — so equal label sets always address the same series.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// family is one metric name with its metadata and series. Exactly one
// of vals (gauge/counter) or hist (histogram) is populated.
type family struct {
	typ     string // "gauge", "counter" or "histogram"
	help    string
	vals    map[string]float64 // rendered label set -> value
	buckets []float64          // histogram upper bounds, ascending, +Inf implicit
	hist    map[string]*histSeries
}

// histSeries is one labelled histogram: per-bucket counts (the last
// slot is the implicit +Inf bucket) plus the running sum and count.
type histSeries struct {
	counts []uint64
	sum    float64
	count  uint64
}

// DefBuckets is the default histogram bucketing (the conventional
// Prometheus spread), suitable for latencies from milliseconds to
// seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry is a hand-rolled Prometheus-style metric registry: labelled
// gauge/counter families with deterministic text exposition. It exists
// because the repository takes no external dependencies; the exposition
// format is the stable v0.0.4 text format every scraper accepts.
// The zero value is not ready; use NewRegistry. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Describe sets a family's type ("gauge" or "counter") and help text.
// Families Set without a Describe default to type gauge with no help.
func (r *Registry) Describe(name, typ, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name)
	f.typ, f.help = typ, help
}

// Set stores the value of the series (name, labels). Setting a name
// already declared as a histogram is ignored.
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.family(name); f.vals != nil {
		f.vals[labels.key()] = v
	}
}

// Add increments the series (name, labels) by dv, creating it at dv.
// Adding to a name already declared as a histogram is ignored.
func (r *Registry) Add(name string, labels Labels, dv float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.family(name); f.vals != nil {
		f.vals[labels.key()] += dv
	}
}

// DescribeHistogram declares a histogram family with the given help
// text and bucket upper bounds (ascending; the +Inf bucket is implicit
// and must not be listed). Nil or empty buckets mean DefBuckets.
// Re-describing an existing histogram updates the help text but keeps
// the original buckets — observations already made remain countable.
func (r *Registry) DescribeHistogram(name, help string, buckets []float64) {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{}
		r.families[name] = f
	}
	f.typ, f.help = "histogram", help
	if f.hist == nil {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
		f.hist = map[string]*histSeries{}
	}
}

// Observe records v into the histogram series (name, labels), creating
// the family with DefBuckets if it was never described. Observing into
// a name already used as a gauge or counter is a programming error and
// is ignored rather than corrupting the family.
func (r *Registry) Observe(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{typ: "histogram", buckets: append([]float64(nil), DefBuckets...),
			hist: map[string]*histSeries{}}
		r.families[name] = f
	}
	if f.hist == nil {
		return
	}
	k := labels.key()
	s := f.hist[k]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(f.buckets)+1)}
		f.hist[k] = s
	}
	// Non-cumulative per-bucket counts; WriteText accumulates them into
	// the cumulative le-form the exposition format requires.
	i := sort.SearchFloat64s(f.buckets, v)
	s.counts[i]++
	s.sum += v
	s.count++
}

// family returns the named family, creating a gauge; caller holds r.mu.
func (r *Registry) family(name string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{typ: "gauge", vals: map[string]float64{}}
		r.families[name] = f
	}
	return f
}

// WriteText renders the registry in the Prometheus text exposition
// format (v0.0.4): families sorted by name, series sorted by label set,
// so the output is byte-deterministic for a given state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", n, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", n, f.typ)
		if f.hist != nil {
			keys := make([]string, 0, len(f.hist))
			for k := range f.hist {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				s := f.hist[k]
				var cum uint64
				for i, b := range f.buckets {
					cum += s.counts[i]
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", n, withLE(k, formatBound(b)), cum)
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", n, withLE(k, "+Inf"), s.count)
				fmt.Fprintf(&sb, "%s_sum%s %v\n", n, k, s.sum)
				fmt.Fprintf(&sb, "%s_count%s %d\n", n, k, s.count)
			}
			continue
		}
		keys := make([]string, 0, len(f.vals))
		for k := range f.vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s%s %v\n", n, k, f.vals[k])
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, sb.String())
	return err
}

// withLE splices the le="bound" label into a rendered label key,
// preserving the canonical form ({} wrapping, existing labels first —
// the exposition format does not require sorted label names, only a
// deterministic rendering, which appending gives us).
func withLE(key, bound string) string {
	le := `le="` + bound + `"`
	if key == "" {
		return "{" + le + "}"
	}
	return key[:len(key)-1] + "," + le + "}"
}

// formatBound renders a bucket upper bound the way Prometheus clients
// do: shortest round-trip decimal.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// ServeHTTP serves the registry as a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}

package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Labels name one series within a metric family. A nil map is the
// unlabelled series.
type Labels map[string]string

// key renders the labels in canonical Prometheus form — sorted names,
// escaped values — so equal label sets always address the same series.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// family is one metric name with its metadata and series.
type family struct {
	typ  string // "gauge" or "counter"
	help string
	vals map[string]float64 // rendered label set -> value
}

// Registry is a hand-rolled Prometheus-style metric registry: labelled
// gauge/counter families with deterministic text exposition. It exists
// because the repository takes no external dependencies; the exposition
// format is the stable v0.0.4 text format every scraper accepts.
// The zero value is not ready; use NewRegistry. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Describe sets a family's type ("gauge" or "counter") and help text.
// Families Set without a Describe default to type gauge with no help.
func (r *Registry) Describe(name, typ, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name)
	f.typ, f.help = typ, help
}

// Set stores the value of the series (name, labels).
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name).vals[labels.key()] = v
}

// Add increments the series (name, labels) by dv, creating it at dv.
func (r *Registry) Add(name string, labels Labels, dv float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name).vals[labels.key()] += dv
}

// family returns the named family, creating a gauge; caller holds r.mu.
func (r *Registry) family(name string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{typ: "gauge", vals: map[string]float64{}}
		r.families[name] = f
	}
	return f
}

// WriteText renders the registry in the Prometheus text exposition
// format (v0.0.4): families sorted by name, series sorted by label set,
// so the output is byte-deterministic for a given state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", n, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", n, f.typ)
		keys := make([]string, 0, len(f.vals))
		for k := range f.vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s%s %v\n", n, k, f.vals[k])
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, sb.String())
	return err
}

// ServeHTTP serves the registry as a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}

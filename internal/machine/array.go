package machine

import "fmt"

// Array is a one-dimensional float64 array living in the simulated address
// space. Every Get/Set charges the accessing CPU for the reference; Data
// gives zero-cost access for verification and initialisation that should
// not perturb the experiment.
type Array struct {
	Name string
	base uint64
	data []float64
	m    *Machine
}

// NewArray allocates a page-aligned simulated array of n float64s.
func (m *Machine) NewArray(name string, n int) *Array {
	return &Array{Name: name, base: m.Alloc(n * 8), data: make([]float64, n), m: m}
}

// Len returns the element count.
func (a *Array) Len() int { return len(a.data) }

// Base returns the array's base virtual address.
func (a *Array) Base() uint64 { return a.base }

// Addr returns the virtual address of element i.
func (a *Array) Addr(i int) uint64 { return a.base + uint64(i)*8 }

// Get loads element i as CPU c.
func (a *Array) Get(c *CPU, i int) float64 {
	c.Load(a.base + uint64(i)*8)
	return a.data[i]
}

// Set stores v into element i as CPU c.
func (a *Array) Set(c *CPU, i int, v float64) {
	c.Store(a.base + uint64(i)*8)
	a.data[i] = v
}

// Add adds v to element i as CPU c (one write reference: the read half of
// the read-modify-write hits the line the store just claimed).
func (a *Array) Add(c *CPU, i int, v float64) {
	c.Store(a.base + uint64(i)*8)
	a.data[i] += v
}

// GetRun loads elements [i, i+n) as CPU c in one bulk access and returns
// that window of the backing store. The slice aliases the array: callers
// must treat it as read-only and must not hold it across an access by
// another thread to the same elements (runs assume no cross-thread
// aliasing; see DESIGN.md).
func (a *Array) GetRun(c *CPU, i, n int) []float64 {
	c.LoadRun(a.base+uint64(i)*8, n, 8)
	return a.data[i : i+n]
}

// SetRun stores src into elements [i, i+len(src)) as CPU c in one bulk
// access.
func (a *Array) SetRun(c *CPU, i int, src []float64) {
	c.StoreRun(a.base+uint64(i)*8, len(src), 8)
	copy(a.data[i:], src)
}

// MutRun charges n stores to elements [i, i+n) as CPU c and returns the
// backing window for the caller to update in place. As with Add, the read
// half of a read-modify-write hits the line the store just claimed, so
// in-place updates through the returned slice charge exactly one write
// reference per element.
func (a *Array) MutRun(c *CPU, i, n int) []float64 {
	c.StoreRun(a.base+uint64(i)*8, n, 8)
	return a.data[i : i+n]
}

// Data returns the backing storage without charging any simulated cost.
func (a *Array) Data() []float64 { return a.data }

// PageRange returns the half-open range of virtual page numbers spanned by
// the array; migration engines register hot areas with it.
func (a *Array) PageRange() (lo, hi uint64) {
	lo = a.m.VPN(a.base)
	hi = a.m.VPN(a.base+uint64(len(a.data)*8)-1) + 1
	return lo, hi
}

// String identifies the array for diagnostics.
func (a *Array) String() string {
	return fmt.Sprintf("%s[%d]@%#x", a.Name, len(a.data), a.base)
}

// IntArray is a one-dimensional int32 array in simulated memory (sparse
// matrix index structures in CG use it).
type IntArray struct {
	Name string
	base uint64
	data []int32
	m    *Machine
}

// NewIntArray allocates a page-aligned simulated array of n int32s.
func (m *Machine) NewIntArray(name string, n int) *IntArray {
	return &IntArray{Name: name, base: m.Alloc(n * 4), data: make([]int32, n), m: m}
}

// Len returns the element count.
func (a *IntArray) Len() int { return len(a.data) }

// Base returns the array's base virtual address.
func (a *IntArray) Base() uint64 { return a.base }

// Get loads element i as CPU c.
func (a *IntArray) Get(c *CPU, i int) int32 {
	c.Load(a.base + uint64(i)*4)
	return a.data[i]
}

// Set stores v into element i as CPU c.
func (a *IntArray) Set(c *CPU, i int, v int32) {
	c.Store(a.base + uint64(i)*4)
	a.data[i] = v
}

// GetRun loads elements [i, i+n) as CPU c in one bulk access and returns
// that window of the backing store (read-only for the caller, as with
// Array.GetRun).
func (a *IntArray) GetRun(c *CPU, i, n int) []int32 {
	c.LoadRun(a.base+uint64(i)*4, n, 4)
	return a.data[i : i+n]
}

// MutRun charges n stores to elements [i, i+n) as CPU c and returns the
// backing window for in-place updates.
func (a *IntArray) MutRun(c *CPU, i, n int) []int32 {
	c.StoreRun(a.base+uint64(i)*4, n, 4)
	return a.data[i : i+n]
}

// Data returns the backing storage without charging any simulated cost.
func (a *IntArray) Data() []int32 { return a.data }

// PageRange returns the page span of the array.
func (a *IntArray) PageRange() (lo, hi uint64) {
	lo = a.m.VPN(a.base)
	hi = a.m.VPN(a.base+uint64(len(a.data)*4)-1) + 1
	return lo, hi
}

// Array3 is a dense 3-D view over an Array with C layout: the last index
// is contiguous. The NAS grid codes use it so that parallelising the
// outermost dimension gives each thread a contiguous page range — the
// layout the paper's first-touch tuning relies on.
type Array3 struct {
	*Array
	N1, N2, N3 int
}

// NewArray3 allocates an n1 x n2 x n3 simulated grid.
func (m *Machine) NewArray3(name string, n1, n2, n3 int) *Array3 {
	return &Array3{Array: m.NewArray(name, n1*n2*n3), N1: n1, N2: n2, N3: n3}
}

// Idx returns the flat index of (i,j,k).
func (a *Array3) Idx(i, j, k int) int { return (i*a.N2+j)*a.N3 + k }

// Row returns the flat index of (i,j,0) — the base of the contiguous
// last-index row, ready for GetRun/SetRun/MutRun over up to N3 elements.
func (a *Array3) Row(i, j int) int { return (i*a.N2 + j) * a.N3 }

// Get3 loads (i,j,k) as CPU c.
func (a *Array3) Get3(c *CPU, i, j, k int) float64 { return a.Get(c, a.Idx(i, j, k)) }

// Set3 stores v at (i,j,k) as CPU c.
func (a *Array3) Set3(c *CPU, i, j, k int, v float64) { a.Set(c, a.Idx(i, j, k), v) }

// Array4 is a dense 4-D view (component-innermost layout used by BT/SP:
// u[i][j][k][m] with m the solution component).
type Array4 struct {
	*Array
	N1, N2, N3, N4 int
}

// NewArray4 allocates an n1 x n2 x n3 x n4 simulated grid.
func (m *Machine) NewArray4(name string, n1, n2, n3, n4 int) *Array4 {
	return &Array4{Array: m.NewArray(name, n1*n2*n3*n4), N1: n1, N2: n2, N3: n3, N4: n4}
}

// Idx returns the flat index of (i,j,k,l).
func (a *Array4) Idx(i, j, k, l int) int { return ((i*a.N2+j)*a.N3+k)*a.N4 + l }

// Row returns the flat index of (i,j,0,0) — the base of the contiguous
// (k,l) plane of N3*N4 elements; BT and SP sweep whole rows of
// component vectors through the run APIs with it.
func (a *Array4) Row(i, j int) int { return (i*a.N2 + j) * a.N3 * a.N4 }

// Vec returns the flat index of (i,j,k,0) — the contiguous N4-component
// vector of one grid point, the unit the vectorised line solvers run over.
func (a *Array4) Vec(i, j, k int) int { return ((i*a.N2+j)*a.N3 + k) * a.N4 }

// Get4 loads (i,j,k,l) as CPU c.
func (a *Array4) Get4(c *CPU, i, j, k, l int) float64 { return a.Get(c, a.Idx(i, j, k, l)) }

// Set4 stores v at (i,j,k,l) as CPU c.
func (a *Array4) Set4(c *CPU, i, j, k, l int, v float64) { a.Set(c, a.Idx(i, j, k, l), v) }

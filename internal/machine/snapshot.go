package machine

// Machine snapshot/fork support. A sweep's cells share an identical
// engine-independent prefix (allocation, initialisation, the cold-start
// first-touch iteration); cloning the machine at that point lets every
// engine variant resume from one simulated prefix instead of repeating
// it (see internal/nas's Prefix/RunFromSnapshot and DESIGN.md §10).

// Clone returns a deep copy of the machine at its current state: page
// table, per-CPU caches, TLBs, clocks, per-node tallies, statistics,
// coherence directory and heap cursor. Only immutable state — the
// topology and the latency table's hop ladder — is shared.
//
// Two things deliberately do not survive a clone:
//
//   - barrier hooks: they are closures over engine state bound to the
//     parent, so the clone starts hook-free and engines re-attach to the
//     copy they drive (a disabled engine's hook is a no-op, so a
//     hook-free prefix is equivalent to one carrying disabled hooks);
//   - the tracer: trace streams are per-run observers.
//
// Cloning must happen at a quiescent point (all CPUs settled, no team
// mid-region, no concurrent accesses). At such a point a forked run is
// bit-identical to continuing the parent — the snapshot invariant the
// fork-vs-scratch tests in internal/nas prove. The parent is not
// mutated; concurrent Clone calls on the same parent are safe provided
// nothing is simulating on it.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		Cfg:       m.Cfg,
		Topo:      m.Topo,
		PT:        m.PT.Clone(),
		Lat:       m.Lat,
		pageShift: m.pageShift,
		heap:      m.heap,
		cohShift:  m.cohShift,
		lineState: append([]uint32(nil), m.lineState...),
		l1Shift:   m.l1Shift,
		bulkOK:    m.bulkOK,
		settleAcc: make([]int64, len(m.settleAcc)),
		// refCounting carries over; freeRun deliberately does not — a
		// clone is taken at a quiescent point and starts simulating.
		refCounting: m.refCounting,
		// The resident-elision switch and armed pages carry over; the
		// per-CPU repeat memos do not (they are pure heuristics — replay
		// re-proves everything — so a memo-free clone is bit-identical).
		residentElide: m.residentElide,
		elideArmed:    append([]bool(nil), m.elideArmed...),
	}
	c.cpus = make([]*CPU, len(m.cpus))
	for i, src := range m.cpus {
		c.cpus[i] = &CPU{
			ID:      src.ID,
			NodeID:  src.NodeID,
			m:       c,
			clock:   src.clock,
			l1:      src.l1.Clone(),
			l2:      src.l2.Clone(),
			tlb:     src.tlb.Clone(),
			nodeAcc: append([]int64(nil), src.nodeAcc...),
			stat:    src.stat,
		}
	}
	return c
}

// RewindHeap resets the allocation cursor to the bottom of the arena
// without touching any other state. A forked run uses it to rebuild its
// kernel: kernel constructors allocate deterministically, so replaying
// the same build sequence on a rewound clone reproduces the parent's
// exact addresses while binding the rebuilt host-side arrays to the
// clone. Callers should assert AllocatedPages afterwards matches the
// parent's.
func (m *Machine) RewindHeap() { m.heap = 0 }

package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestArrayBasics(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("vals", 100)
	if a.Len() != 100 {
		t.Errorf("Len = %d, want 100", a.Len())
	}
	c := m.CPU(0)
	a.Set(c, 7, 3.5)
	if got := a.Get(c, 7); got != 3.5 {
		t.Errorf("Get(7) = %v, want 3.5", got)
	}
	a.Add(c, 7, 1.5)
	if got := a.Data()[7]; got != 5 {
		t.Errorf("after Add, a[7] = %v, want 5", got)
	}
	if a.Addr(3) != a.Base()+24 {
		t.Errorf("Addr(3) = %#x, want base+24", a.Addr(3))
	}
	if !strings.Contains(a.String(), "vals") {
		t.Errorf("String() = %q, want the name in it", a.String())
	}
}

func TestArrayOutOfBoundsPanics(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 4)
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-bounds Get")
		}
	}()
	a.Get(m.CPU(0), 4)
}

func TestIntArrayBasics(t *testing.T) {
	m := defMachine(t)
	a := m.NewIntArray("idx", 50)
	if a.Len() != 50 {
		t.Errorf("Len = %d, want 50", a.Len())
	}
	c := m.CPU(3)
	a.Set(c, 10, -7)
	if got := a.Get(c, 10); got != -7 {
		t.Errorf("Get = %d, want -7", got)
	}
	if a.Data()[10] != -7 {
		t.Error("Data() disagrees with Get")
	}
	lo, hi := a.PageRange()
	if hi <= lo {
		t.Errorf("empty page range [%d,%d)", lo, hi)
	}
	if a.Base()%uint64(m.PageBytes()) != 0 {
		t.Error("IntArray not page-aligned")
	}
}

func TestArray3Indexing(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray3("g", 3, 4, 5)
	c := m.CPU(0)
	// Idx must be the row-major C layout with the last index contiguous.
	if a.Idx(0, 0, 1)-a.Idx(0, 0, 0) != 1 {
		t.Error("last index not contiguous")
	}
	if a.Idx(0, 1, 0)-a.Idx(0, 0, 0) != 5 {
		t.Error("middle stride wrong")
	}
	if a.Idx(1, 0, 0)-a.Idx(0, 0, 0) != 20 {
		t.Error("outer stride wrong")
	}
	a.Set3(c, 2, 3, 4, 9)
	if got := a.Get3(c, 2, 3, 4); got != 9 {
		t.Errorf("Get3 = %v, want 9", got)
	}
	if a.Data()[a.Idx(2, 3, 4)] != 9 {
		t.Error("flat access disagrees")
	}
}

func TestArray4Indexing(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray4("u", 2, 3, 4, 5)
	c := m.CPU(1)
	if a.Idx(0, 0, 0, 1)-a.Idx(0, 0, 0, 0) != 1 ||
		a.Idx(0, 0, 1, 0)-a.Idx(0, 0, 0, 0) != 5 ||
		a.Idx(0, 1, 0, 0)-a.Idx(0, 0, 0, 0) != 20 ||
		a.Idx(1, 0, 0, 0)-a.Idx(0, 0, 0, 0) != 60 {
		t.Error("Array4 strides wrong")
	}
	a.Set4(c, 1, 2, 3, 4, 42)
	if got := a.Get4(c, 1, 2, 3, 4); got != 42 {
		t.Errorf("Get4 = %v, want 42", got)
	}
}

// Property: Idx is a bijection over the grid bounds.
func TestArray3IdxBijective(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray3("g", 7, 5, 3)
	seen := map[int]bool{}
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 3; k++ {
				x := a.Idx(i, j, k)
				if x < 0 || x >= a.Len() || seen[x] {
					t.Fatalf("Idx(%d,%d,%d) = %d invalid or duplicate", i, j, k, x)
				}
				seen[x] = true
			}
		}
	}
	if len(seen) != a.Len() {
		t.Errorf("Idx covered %d of %d cells", len(seen), a.Len())
	}
}

func TestCoherenceInvalidationAcrossCPUs(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 64)
	w, r := m.CPU(0), m.CPU(15)

	// Reader caches the line.
	r.Load(a.Addr(0))
	r.Load(a.Addr(0))
	missesBefore := r.Stat().L2Miss

	// A different CPU writes the unit: the reader's copy must go stale.
	w.Store(a.Addr(1))
	r.Load(a.Addr(0))
	if r.Stat().L2Miss != missesBefore+1 {
		t.Error("reader did not take an invalidation miss after a remote store")
	}

	// Without intervening writes, the refilled copy stays valid.
	missesBefore = r.Stat().L2Miss
	r.Load(a.Addr(0))
	if r.Stat().L2Miss != missesBefore {
		t.Error("reader missed again without any new write")
	}
}

func TestCoherenceOwnerStoresAreFree(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 64)
	c := m.CPU(2)
	c.Store(a.Addr(0))
	misses := c.Stat().L2Miss
	for i := 0; i < 50; i++ {
		c.Store(a.Addr(0)) // exclusive owner: M-state writes
	}
	if c.Stat().L2Miss != misses {
		t.Errorf("owner stores caused %d extra L2 misses", c.Stat().L2Miss-misses)
	}
}

func TestCoherenceWriteAfterRemoteReadInvalidates(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 64)
	w, r := m.CPU(0), m.CPU(8)
	w.Store(a.Addr(0)) // w owns the unit
	r.Load(a.Addr(0))  // r shares it
	// w writes again: because the unit went shared, this must bump the
	// version and invalidate r's copy.
	w.Store(a.Addr(0))
	misses := r.Stat().L2Miss
	r.Load(a.Addr(0))
	if r.Stat().L2Miss != misses+1 {
		t.Error("shared copy not invalidated by the owner's next store")
	}
}

// Property: reading any address right after writing it from the same CPU
// hits in L1 (read-your-writes locality).
func TestReadYourWritesHitsL1(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 4096)
	c := m.CPU(5)
	f := func(idx uint16) bool {
		i := int(idx) % a.Len()
		a.Set(c, i, 1)
		before := c.Stat().L1Miss
		a.Get(c, i)
		return c.Stat().L1Miss == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

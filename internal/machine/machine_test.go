package machine

import (
	"testing"

	"upmgo/internal/memsys"
	"upmgo/internal/vm"
)

func defMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultConfigShape(t *testing.T) {
	m := defMachine(t)
	if m.NumCPUs() != 16 {
		t.Errorf("NumCPUs = %d, want 16", m.NumCPUs())
	}
	if m.Topo.Nodes() != 8 {
		t.Errorf("Nodes = %d, want 8", m.Topo.Nodes())
	}
	if m.CPU(5).NodeID != 2 {
		t.Errorf("CPU 5 on node %d, want 2", m.CPU(5).NodeID)
	}
	if m.PageBytes() != 16*1024 {
		t.Errorf("PageBytes = %d, want 16384", m.PageBytes())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	if _, err := New(cfg); err == nil {
		t.Error("3 nodes accepted")
	}
	cfg = DefaultConfig()
	cfg.PageBytes = 3000
	if _, err := New(cfg); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	cfg = DefaultConfig()
	cfg.CPUsPerNode = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative CPUs per node accepted")
	}
}

func TestAllocPageAlignedAndDisjoint(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("a", 10)
	b := m.NewArray("b", 10)
	if a.Base()%uint64(m.PageBytes()) != 0 || b.Base()%uint64(m.PageBytes()) != 0 {
		t.Error("arrays not page-aligned")
	}
	aLo, aHi := a.PageRange()
	bLo, bHi := b.PageRange()
	if aHi > bLo && bHi > aLo {
		t.Errorf("arrays share pages: a=[%d,%d) b=[%d,%d)", aLo, aHi, bLo, bHi)
	}
}

func TestAllocPanicsWhenArenaExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArenaPages = 2
	m := MustNew(cfg)
	defer func() {
		if recover() == nil {
			t.Error("no panic on arena exhaustion")
		}
	}()
	m.Alloc(10 * cfg.PageBytes)
}

// TestTouchLatencyLadder verifies the paper's Table 1 end to end: the cost
// of a load depends on the level of the hierarchy that serves it.
func TestTouchLatencyLadder(t *testing.T) {
	m := defMachine(t)
	lat := m.Lat
	c := m.CPU(0) // node 0
	a := m.NewArray("x", 8192)

	// Cold access from CPU 0: first-touch fault + TLB miss + local memory.
	t0 := c.Now()
	c.Load(a.Addr(0))
	cold := c.Now() - t0
	want := lat.L1Hit + lat.PageFault + lat.TLBRefill + lat.MemLatency(0)
	if cold != want {
		t.Errorf("cold local access cost %d, want %d", cold, want)
	}

	// Immediately again: L1 hit.
	t0 = c.Now()
	c.Load(a.Addr(0))
	if got := c.Now() - t0; got != lat.L1Hit {
		t.Errorf("L1 hit cost %d, want %d", got, lat.L1Hit)
	}

	// Same line after flushing L1 only is impossible through the public
	// API (FlushCaches clears both), so model an L2 hit by touching a
	// different word of a line that has fallen out of L1 but not L2:
	// stream enough lines to evict L1 (32 KB) but not L2 (4 MB).
	for i := 0; i < 3000; i++ {
		c.Load(a.Addr(i * 4)) // 32-byte lines: every 4th float64
	}
	t0 = c.Now()
	c.Load(a.Addr(0))
	if got := c.Now() - t0; got != lat.L1Hit+lat.L2Hit {
		t.Errorf("L2 hit cost %d, want %d", got, lat.L1Hit+lat.L2Hit)
	}

	// Remote access: CPU 15 (node 7, 3 hops from node 0) touches a page
	// homed on node 0. Flush its caches to force the memory access.
	r := m.CPU(15)
	r.FlushCaches()
	t0 = r.Now()
	r.Load(a.Addr(0))
	hops := m.Topo.Hops(7, 0)
	want = lat.L1Hit + lat.TLBRefill + lat.MemLatency(hops)
	if got := r.Now() - t0; got != want {
		t.Errorf("remote access cost %d, want %d (hops=%d)", got, want, hops)
	}
}

func TestTouchUpdatesCountersOnL2MissOnly(t *testing.T) {
	m := defMachine(t)
	c := m.CPU(2) // node 1
	a := m.NewArray("x", 64)
	c.Load(a.Addr(0))
	vpn := m.VPN(a.Addr(0))
	row := m.PT.Counters(vpn, nil)
	if row[1] != 1 {
		t.Fatalf("counter row after one miss = %v, want node1=1", row)
	}
	// L1 hits must not move the counters.
	for i := 0; i < 10; i++ {
		c.Load(a.Addr(0))
	}
	if row = m.PT.Counters(vpn, nil); row[1] != 1 {
		t.Errorf("counters moved on cache hits: %v", row)
	}
}

func TestStatsLocalVsRemote(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 2048*4)
	c0 := m.CPU(0)
	// CPU 0 touches one element of each of 2 pages: local (first touch).
	c0.Load(a.Addr(0))
	c0.Load(a.Addr(2048)) // 16 KB page = 2048 float64s
	r := m.CPU(15)
	r.Load(a.Addr(0)) // remote: page homed on node 0
	s := m.Stats()
	if s.LocalMem != 2 || s.RemoteMem != 1 {
		t.Errorf("local/remote = %d/%d, want 2/1", s.LocalMem, s.RemoteMem)
	}
	if got := s.RemoteRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("RemoteRatio = %v, want 1/3", got)
	}
	if s.Faults != 2 {
		t.Errorf("faults = %d, want 2", s.Faults)
	}
}

func TestSettleSynchronisesClocks(t *testing.T) {
	m := defMachine(t)
	cpus := m.CPUs()[:4]
	cpus[0].Advance(100)
	cpus[1].Advance(900)
	tb := m.Settle(cpus, 0)
	if tb < 900 {
		t.Errorf("settled time %d < max clock 900", tb)
	}
	for _, c := range cpus {
		c.SetClock(tb)
	}
	for _, c := range cpus {
		if c.Now() != tb {
			t.Errorf("CPU %d clock %d, want %d", c.ID, c.Now(), tb)
		}
	}
}

func TestSettleAppliesSaturationFloor(t *testing.T) {
	m := defMachine(t)
	cpus := m.CPUs()
	// Simulate a region where every CPU made 1000 accesses to node 0 but
	// little compute time passed: the floor must dominate.
	for _, c := range cpus {
		c.nodeAcc[0] = 1000
		c.Advance(1000) // 1 ns of compute
	}
	tb := m.Settle(cpus, 0)
	floor := int64(16000) * m.Lat.MemService
	if tb < floor {
		t.Errorf("settled time %d below saturation floor %d", tb, floor)
	}
}

func TestSettleBalancedBeatsConcentrated(t *testing.T) {
	mk := func(conc bool) int64 {
		m := defMachine(t)
		cpus := m.CPUs()
		for _, c := range cpus {
			if conc {
				c.nodeAcc[0] = 800
			} else {
				for n := 0; n < 8; n++ {
					c.nodeAcc[n] = 100
				}
			}
			c.Advance(200 * memsys.Micro)
		}
		return m.Settle(cpus, 0)
	}
	if bal, con := mk(false), mk(true); con <= bal {
		t.Errorf("concentrated settle %d <= balanced %d; contention model inactive", con, bal)
	}
}

func TestBarrierHookRuns(t *testing.T) {
	m := defMachine(t)
	called := false
	m.AddBarrierHook(func(now int64) int64 {
		called = true
		return 42
	})
	tb := m.Settle(m.CPUs()[:1], 0)
	if !called {
		t.Fatal("hook not called")
	}
	if m.CPU(0).Now() != tb {
		t.Error("hook cost not propagated to CPU clock")
	}
}

func TestPlacementPolicyWiredThrough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := MustNew(cfg)
	a := m.NewArray("x", 4096)
	m.CPU(13).Load(a.Addr(0))
	if home := m.PT.Home(m.VPN(a.Addr(0))); home != 0 {
		t.Errorf("worst-case page homed on %d, want 0", home)
	}
}

func TestFlopsCharging(t *testing.T) {
	m := defMachine(t)
	c := m.CPU(0)
	t0 := c.Now()
	c.Flops(10)
	if got := c.Now() - t0; got != 10*m.Lat.FlopCost {
		t.Errorf("10 flops cost %d, want %d", got, 10*m.Lat.FlopCost)
	}
}

func TestMigrationInvalidatesTLBLazily(t *testing.T) {
	m := defMachine(t)
	c := m.CPU(0)
	a := m.NewArray("x", 64)
	c.Load(a.Addr(0)) // faults page onto node 0, loads TLB
	vpn := m.VPN(a.Addr(0))
	if res := m.PT.Migrate(vpn, 5); !res.Moved {
		t.Fatal("migration refused")
	}
	c.FlushCaches() // drop caches but NOT the TLB? FlushCaches drops TLB too...
	// Rebuild the TLB entry at the old generation is not possible through
	// the public API, so check the generation directly.
	if m.PT.Gen(vpn) == 0 {
		t.Error("migration did not bump the generation")
	}
	// A fresh touch must be served by node 5 now.
	before := c.Stat().RemoteMem
	c.Load(a.Addr(0))
	if c.Stat().RemoteMem != before+1 {
		t.Error("post-migration access not served remotely")
	}
}

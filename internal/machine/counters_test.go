package machine

import "testing"

// touchSome drives a small mixed read/write workload across two CPUs so
// every counter family (clocks, stats, cache hit/miss/tick, page-table
// faults) moves.
func touchSome(m *Machine, a *Array) {
	c0, c1 := m.CPU(0), m.CPU(1)
	for i := 0; i < a.Len(); i++ {
		a.Set(c0, i, float64(i))
	}
	for i := 0; i < a.Len(); i++ {
		a.Get(c1, i)
	}
}

func TestAppendCountersLayout(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 4096)
	touchSome(m, a)
	snap := m.AppendCounters(nil)
	if len(snap) != m.CounterLen() {
		t.Fatalf("AppendCounters produced %d elements, CounterLen says %d", len(snap), m.CounterLen())
	}
	// Re-appending onto an existing slice extends it in place.
	twice := m.AppendCounters(snap)
	if len(twice) != 2*m.CounterLen() {
		t.Fatalf("second append: %d elements, want %d", len(twice), 2*m.CounterLen())
	}
	var moved bool
	for _, v := range snap {
		if v != 0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("workload left every counter at zero")
	}
}

// TestApplyCounterDelta: fast-forwarding by k deltas lands every counter
// exactly on snapshot + k*delta — the arithmetic the steady-state
// extrapolation relies on.
func TestApplyCounterDelta(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 4096)
	s0 := m.AppendCounters(nil)
	touchSome(m, a)
	s1 := m.AppendCounters(nil)

	delta := make([]int64, len(s1))
	for i := range s1 {
		delta[i] = s1[i] - s0[i]
	}
	const k = 5
	m.ApplyCounterDelta(delta, k)
	s2 := m.AppendCounters(nil)
	for i := range s2 {
		if want := s1[i] + k*delta[i]; s2[i] != want {
			t.Errorf("counter %d: got %d, want %d after fast-forward", i, s2[i], want)
		}
	}
	// The per-CPU clocks advanced too, visible through the CPU API.
	if m.CPU(0).Now() <= s1[0] {
		t.Errorf("CPU 0 clock did not advance: %d", m.CPU(0).Now())
	}

	defer func() {
		if recover() == nil {
			t.Error("no panic on a wrong-length delta")
		}
	}()
	m.ApplyCounterDelta(delta[:3], 1)
}

// TestFreeRun: in free-run mode data movement is real but nothing is
// charged — clocks, stats and page-reference counters all stay put.
func TestFreeRun(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 4096)
	touchSome(m, a) // fault the pages in before entering free-run
	c := m.CPU(0)
	before := m.AppendCounters(nil)

	if m.FreeRun() {
		t.Fatal("free-run on by default")
	}
	m.SetFreeRun(true)
	if !m.FreeRun() {
		t.Fatal("SetFreeRun(true) not visible")
	}
	a.Set(c, 7, 42.5)
	runs := a.Data()[100:200]
	a.SetRun(c, 300, runs)
	if got := a.Get(c, 7); got != 42.5 {
		t.Errorf("free-run store lost: Get(7) = %v, want 42.5", got)
	}
	m.SetFreeRun(false)

	after := m.AppendCounters(nil)
	for i := range after {
		if after[i] != before[i] {
			t.Errorf("free-run charged counter %d: %d -> %d", i, before[i], after[i])
		}
	}
}

// TestRefCountingGate: with reference counting off, accesses charge time
// and advance stats but leave the per-page counter rows untouched, so
// the row-inclusive state hash is stationary while the home-only hash
// agrees (homes never move either way).
func TestRefCountingGate(t *testing.T) {
	m := defMachine(t)
	a := m.NewArray("x", 64*1024)
	touchSome(m, a) // place the pages
	n := m.AllocatedPages()

	if !m.RefCounting() {
		t.Fatal("reference counting off by default")
	}
	m.SetRefCounting(false)
	rows := m.PT.StateHash(n, true)
	clock := m.CPU(1).Now()
	m.CPU(1).FlushL1L2() // force real misses; rows bump only on misses
	for i := 0; i < a.Len(); i += 512 {
		a.Get(m.CPU(1), i)
	}
	if got := m.PT.StateHash(n, true); got != rows {
		t.Error("counter rows advanced with reference counting off")
	}
	if m.CPU(1).Now() == clock {
		t.Error("time was not charged with reference counting off")
	}

	m.SetRefCounting(true)
	m.CPU(1).FlushL1L2()
	for i := 0; i < a.Len(); i += 512 {
		a.Get(m.CPU(1), i)
	}
	if got := m.PT.StateHash(n, true); got == rows {
		t.Error("counter rows still frozen after SetRefCounting(true)")
	}
}

func TestMigrationCostLadder(t *testing.T) {
	m := defMachine(t)
	if m.PageMoveCost() <= 0 || m.ShootdownCost() <= 0 {
		t.Fatalf("non-positive cost components: move %d, shootdown %d",
			m.PageMoveCost(), m.ShootdownCost())
	}
	if m.MigrationCost() < m.PageMoveCost() {
		t.Errorf("MigrationCost %d below its PageMoveCost component %d",
			m.MigrationCost(), m.PageMoveCost())
	}
}

package machine

import (
	"reflect"
	"testing"

	"upmgo/internal/memsys"
	"upmgo/internal/topology"
)

// TestSetTopology: SetTopology parses a shape and overwrites exactly the
// shape-derived fields — levels, node count, CPUs per node — leaving the
// rest of the config (ladder, caches, placement) alone.
func TestSetTopology(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.SetTopology("hier64"); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 8 || cfg.CPUsPerNode != 8 {
		t.Errorf("hier64 = %d nodes × %d CPUs, want 8 × 8", cfg.Nodes, cfg.CPUsPerNode)
	}
	want := []topology.Level{
		{Name: "socket", Arity: 4, Hop: 2, ExtraPS: 2 * topology.DefaultExtraPerHopPS},
		{Name: "die", Arity: 2, Hop: 1, ExtraPS: topology.DefaultExtraPerHopPS},
	}
	if !reflect.DeepEqual(cfg.Topo, want) {
		t.Errorf("hier64 levels = %+v, want %+v", cfg.Topo, want)
	}
	if cfg.Lat.MemByHops[0] != memsys.Origin2000().MemByHops[0] {
		t.Error("SetTopology touched the latency ladder")
	}
	if err := cfg.SetTopology("bogus"); err == nil {
		t.Error("bogus shape accepted")
	}
}

// TestNewHierarchicalMachine builds the 64-CPU hier64 machine: the
// interconnect is a Hierarchy, the node count comes from the shape (any
// configured value is overridden), and the memory ladder is re-derived
// per hop distance as local latency + the crossed levels' extras.
func TestNewHierarchicalMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3 // bogus; the shape wins
	if err := cfg.SetTopology("hier64"); err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Topo.(*topology.Hierarchy); !ok {
		t.Fatalf("interconnect is %T, want *topology.Hierarchy", m.Topo)
	}
	if m.Topo.Nodes() != 8 || m.NumCPUs() != 64 {
		t.Errorf("machine is %d nodes / %d CPUs, want 8 / 64", m.Topo.Nodes(), m.NumCPUs())
	}
	// hier64's levels: die (hop 1, +235 ns) inside socket (hop 2,
	// +470 ns). Distances 0..3 are all reachable, so the ladder reads
	// local, +die, +socket, +both.
	local := memsys.Origin2000().MemByHops[0]
	wantMB := []int64{
		local,
		local + topology.DefaultExtraPerHopPS,
		local + 2*topology.DefaultExtraPerHopPS,
		local + 3*topology.DefaultExtraPerHopPS,
	}
	if !reflect.DeepEqual(m.Lat.MemByHops, wantMB) {
		t.Errorf("derived ladder = %v, want %v", m.Lat.MemByHops, wantMB)
	}
	// The derivation must not alias the shared default ladder.
	if !reflect.DeepEqual(memsys.Origin2000().MemByHops, DefaultConfig().Lat.MemByHops) {
		t.Error("building a hierarchical machine mutated the default ladder")
	}
}

// TestNewCubeHierarchyKeepsLadder: a cube shape carries no extras, so the
// configured Origin2000 ladder stays in force — the property the
// bit-identity harness in internal/nas rests on.
func TestNewCubeHierarchyKeepsLadder(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.SetTopology("cube:2x2x2x2"); err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 16 {
		t.Errorf("origin cube = %d CPUs, want 16", m.NumCPUs())
	}
	if !reflect.DeepEqual(m.Lat.MemByHops, memsys.Origin2000().MemByHops) {
		t.Errorf("cube shape changed the ladder: %v", m.Lat.MemByHops)
	}
	// And its distance metric matches the hypercube's on every pair.
	hc, err := topology.NewHypercube(8)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if m.Topo.Hops(a, b) != hc.Hops(a, b) {
				t.Fatalf("Hops(%d,%d) = %d, hypercube %d", a, b, m.Topo.Hops(a, b), hc.Hops(a, b))
			}
		}
	}
}

// TestNewHierarchicalMachineRejectsTooManyCPUs: the coherence directory's
// 8-bit writer field caps machines at 256 CPUs; a 512-CPU shape must be
// rejected, not wrapped.
func TestNewHierarchicalMachineRejectsTooManyCPUs(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.SetTopology("8x8x8"); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Error("512-CPU machine accepted")
	}
}

// TestNewRejectsBadHierarchy: invalid levels surface as a construction
// error rather than a panic.
func TestNewRejectsBadHierarchy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = []topology.Level{{Name: "bad", Arity: 0, Hop: 1}}
	if _, err := New(cfg); err == nil {
		t.Error("zero-arity level accepted")
	}
}

package machine

import "testing"

// elideMachine builds a machine with an armed 256-float array and returns
// both. The array spans a handful of pages of the default geometry and
// fits comfortably in L1, so an all-hit bulk read over it is exactly the
// shape the resident-elision fast path targets.
func elideMachine(t *testing.T, elide bool) (*Machine, *Array) {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewArray("a", 256)
	if elide {
		m.SetResidentElide(true)
		lo, hi := a.PageRange()
		m.ArmResidentPages([][2]uint64{{lo, hi}})
	}
	return m, a
}

// TestResidentElideBitIdentity: the golden contract — a machine with
// elision armed charges exactly the counters and clocks of one without,
// across repeated resident reads, remote-write invalidations that force
// the replay validation to fail, and re-warmed repeats.
func TestResidentElideBitIdentity(t *testing.T) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	run := func(elide bool) []int64 {
		m, a := elideMachine(t, elide)
		c := m.CPU(0)
		a.SetRun(c, 0, vals)
		for r := 0; r < 6; r++ {
			a.GetRun(c, 0, 256) // arm, then replay repeatedly
		}
		a.GetRun(c, 64, 128) // sub-run: different key, re-arms
		a.GetRun(c, 64, 128)
		remote := m.CPU(m.NumCPUs() - 1)
		a.SetRun(remote, 0, vals) // version bump: stale replay must fall back
		for r := 0; r < 4; r++ {
			a.GetRun(c, 0, 256)
		}
		return m.AppendCounters(nil)
	}
	plain := run(false)
	elided := run(true)
	if len(plain) != len(elided) {
		t.Fatalf("counter vector lengths differ: %d vs %d", len(plain), len(elided))
	}
	for i := range plain {
		if plain[i] != elided[i] {
			t.Fatalf("counter %d diverges: plain %d, elided %d", i, plain[i], elided[i])
		}
	}
}

// TestResidentElideEngages: the fast path is not vacuous — after an
// armed all-hit read, the replay validation succeeds on the resident run
// and charges exactly n accesses and n L1-hit latencies.
func TestResidentElideEngages(t *testing.T) {
	m, a := elideMachine(t, true)
	c := m.CPU(0)
	vals := make([]float64, 256)
	a.SetRun(c, 0, vals)
	a.GetRun(c, 0, 256) // warm + arm
	a.GetRun(c, 0, 256) // exact repeat: replays or re-arms, either way resident
	if !c.repOK {
		t.Fatal("repeat memo not armed after an all-hit resident read")
	}
	acc, clock := c.stat.Accesses, c.Now()
	if !c.replayRun(a.Base(), a.Base()+255*8, 256, 8) {
		t.Fatal("replay validation failed on a resident run")
	}
	if c.stat.Accesses != acc+256 {
		t.Errorf("replay charged %d accesses, want 256", c.stat.Accesses-acc)
	}
	if got, want := c.Now()-clock, 256*m.Lat.L1Hit; got != want {
		t.Errorf("replay charged %d ps, want %d", got, want)
	}

	// A remote write bumps the line versions: the stale replay must refuse.
	remote := m.CPU(m.NumCPUs() - 1)
	a.Set(remote, 0, 1)
	if c.replayRun(a.Base(), a.Base()+255*8, 256, 8) {
		t.Fatal("replay validated a run invalidated by a remote write")
	}
}

// TestResidentElideDisarmed: pages outside every armed range, writes, and
// non-power-of-two strides never take the fast path — the memo stays
// unarmed, so the full path's behavior is trivially preserved.
func TestResidentElideDisarmed(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetResidentElide(true) // elision on, but no pages armed
	a := m.NewArray("a", 64)
	c := m.CPU(0)
	a.SetRun(c, 0, make([]float64, 64))
	a.GetRun(c, 0, 64)
	a.GetRun(c, 0, 64)
	if c.repOK {
		t.Fatal("memo armed over unarmed pages")
	}
}

// Package machine assembles the simulated ccNUMA multiprocessor: CPUs with
// private caches and TLBs, hypercube-connected memory nodes, a paged
// address space, and integer-picosecond virtual time. Application code
// (the NAS kernels, the examples) performs every array element access
// through this package, which charges the access to the accessing CPU's
// clock according to where it is served — L1, L2, local memory, or an
// N-hop remote memory — exactly the ladder of the paper's Table 1.
//
// Virtual time and determinism: each CPU carries its own clock. Within a
// parallel region CPUs never read each other's clocks, so goroutines can
// execute truly in parallel on the host; at every barrier the runtime
// calls Settle, which applies the memory-node contention model to the
// region just finished and synchronises all clocks to the barrier time.
// The result is bit-reproducible regardless of host scheduling (up to
// first-touch fault races on chunk-boundary pages, which static loop
// schedules make rare; the omp package also offers a serial mode).
package machine

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"upmgo/internal/memsys"
	"upmgo/internal/topology"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

// Config describes a machine. DefaultConfig returns the 16-processor SGI
// Origin2000 of the paper.
type Config struct {
	Nodes       int // memory nodes, power of two
	CPUsPerNode int

	PageBytes     int   // virtual memory page size
	ArenaPages    int   // size of the simulated address space
	CapacityPages int64 // per-node page capacity, 0 = unlimited

	L1Bytes, L1Line, L1Ways int
	L2Bytes, L2Line, L2Ways int
	TLBEntries, TLBWays     int

	Lat memsys.Latency

	// Topo, when non-nil, replaces the default hypercube interconnect
	// with a hierarchical topology built from these levels (outermost
	// first; see topology.Hierarchy). Nodes is overridden by the level
	// product. When any level carries ExtraPS, the memory ladder is
	// re-derived per hop distance as local latency + the level extras —
	// the per-level generalization of the paper's Table 1; otherwise the
	// configured (or default Origin2000) ladder stays in force, which is
	// how a cube-shaped hierarchy remains bit-identical to the legacy
	// path. Nil keeps the hypercube over Nodes.
	Topo []topology.Level

	Placement   vm.Policy
	Seed        uint64
	CounterBits int // hardware reference counter width, 0 = 11

	// ScalarRuns disables the bulk-access fast path: LoadRun/StoreRun then
	// decompose into per-element touches. The bulk path is bit-identical
	// to the scalar one by construction (see DESIGN.md, "Bulk-access fast
	// path"); this switch exists so the equivalence tests can prove it and
	// so regressions can be bisected against the reference ladder.
	ScalarRuns bool
}

// DefaultConfig returns the machine evaluated in the paper: 16 R10000
// processors on 8 nodes (2 per node), 16 KB pages, 32 KB 2-way L1 with
// 32-byte lines, 4 MB 2-way L2 with 128-byte lines, 64-entry TLB, and the
// Table 1 latency ladder.
func DefaultConfig() Config {
	return Config{
		Nodes:       8,
		CPUsPerNode: 2,
		PageBytes:   16 * 1024,
		ArenaPages:  1 << 15, // 512 MB of simulated address space
		L1Bytes:     32 * 1024,
		L1Line:      32,
		L1Ways:      2,
		L2Bytes:     4 * 1024 * 1024,
		L2Line:      128,
		L2Ways:      2,
		TLBEntries:  64,
		TLBWays:     8,
		Lat:         memsys.Origin2000(),
		Placement:   vm.FirstTouch,
	}
}

// SetTopology configures the machine's shape from a shape string or
// preset name ("4x2x8", "cube:2x2x2", "hier64"; see topology.ParseShape):
// it sets Topo to the parsed node levels and Nodes/CPUsPerNode to the
// shape's counts. Every other field is untouched.
func (c *Config) SetTopology(shape string) error {
	sh, err := topology.ParseShape(shape)
	if err != nil {
		return err
	}
	c.Topo = sh.Levels
	c.Nodes = sh.NodeCount()
	c.CPUsPerNode = sh.CPUsPerNode
	return nil
}

// BarrierHook runs at every barrier after contention settlement; it
// returns extra picoseconds to add to the barrier time (e.g. the cost of
// kernel-initiated page migrations applied at this quiescent point).
type BarrierHook func(now int64) int64

// Machine is one simulated ccNUMA multiprocessor. It is not safe to share
// a Machine between concurrently running teams.
type Machine struct {
	Cfg  Config
	Topo topology.Topology
	PT   *vm.PageTable
	Lat  memsys.Latency

	cpus      []*CPU
	pageShift uint
	heap      uint64 // next free byte in the arena

	// Coherence directory: one packed state word per coherence unit (an
	// L2 line): bits [31:9] a write version, [8:1] the last writer's CPU
	// id, bit 0 a "shared since last write" flag. A store by a CPU that
	// is not the exclusive owner bumps the version; every other CPU's
	// cached copy of the unit then fails its version check and misses,
	// exactly the invalidation a MESI directory would deliver, while an
	// owner's repeated stores stay free as in the M state. This is what
	// produces the paper's sustained memory traffic in iterative codes —
	// without it, steady-state stencil sweeps would run entirely from
	// private caches and page placement would stop mattering.
	cohShift  uint
	lineState []uint32

	// Bulk-access fast path: l1Shift segments runs by L1 line inside a
	// coherence unit; bulkOK gates the path on the hierarchy nesting it
	// assumes (L1 line <= L2 line <= page) and on Config.ScalarRuns.
	l1Shift uint
	bulkOK  bool

	settleAcc []int64 // per-node tally scratch reused across barriers

	hooks  []BarrierHook
	tracer trace.Tracer

	// freeRun suspends every virtual-time effect of execution: touches
	// charge nothing, clocks freeze, barrier settlement (and its hooks)
	// becomes a no-op and the tracer is hidden. The steady-state
	// fast-forward engine uses it to advance a kernel's *numerical* state
	// through extrapolated iterations while the machine's clocks and
	// counters have already been advanced analytically.
	freeRun bool

	// refCounting gates page reference-counter accumulation (CountMiss /
	// CountMissN on L2 misses). The NAS driver clears it for runs in which
	// no attached engine or sampler can ever read the counters — the rows
	// are then dead state whose upkeep is pure host cost. Counter-visible
	// outputs are unaffected by construction: the rows feed only kmig
	// scans, UPMlib invocations and the metrics sampler.
	refCounting bool

	// Resident-elision fast path: when residentElide is on and a CPU's
	// bulk read run exactly repeats its previous one with no intervening
	// accesses, the run is re-validated against the caches (every line
	// still resident at the coherence directory's current version, the
	// read path's shared-flag CAS provably a no-op) and replayed as flat
	// counter arithmetic instead of the full per-unit walk. Validation is
	// self-contained — nothing from the recorded run is trusted — so the
	// replay is bit-identical by proof, not by bookkeeping. elideArmed
	// gates the path per page: only runs entirely within armed pages are
	// considered (the NAS driver arms the kernel's hot arrays).
	residentElide bool
	elideArmed    []bool // indexed by vpn
}

// SetTracer attaches an event tracer to the machine; nil detaches it.
// The machine emits page-fault and replica-collapse shootdown events;
// the omp runtime and the migration engines read the tracer through
// Tracer to emit theirs. Tracing is observation only — it never advances
// a clock — so traced and untraced runs are bit-identical (proven by
// internal/nas's tracing equivalence test).
func (m *Machine) SetTracer(t trace.Tracer) { m.tracer = t }

// Tracer returns the attached tracer, or nil. During free-run it returns
// nil: extrapolated iterations must not emit events, since their virtual
// time has already been accounted for analytically.
func (m *Machine) Tracer() trace.Tracer {
	if m.freeRun {
		return nil
	}
	return m.tracer
}

// SetFreeRun switches free-run mode on or off. In free-run mode simulated
// accesses return data without charging clocks or counters, Settle is a
// no-op (barrier hooks do not fire), and Tracer reports nil. See the
// freeRun field for the intended use.
func (m *Machine) SetFreeRun(on bool) { m.freeRun = on }

// FreeRun reports whether the machine is in free-run mode.
func (m *Machine) FreeRun() bool { return m.freeRun }

// SetRefCounting enables or disables page reference-counter accumulation.
// It defaults to on; callers may switch it off for runs where no engine
// or sampler ever reads the counters (see the refCounting field).
func (m *Machine) SetRefCounting(on bool) { m.refCounting = on }

// RefCounting reports whether page reference counters accumulate.
func (m *Machine) RefCounting() bool { return m.refCounting }

// SetResidentElide switches the resident-elision fast path on or off (see
// the residentElide field). Off by default; runs with it on are
// bit-identical to runs without it — the per-run validation proves every
// elided charge equals what the full walk would have produced.
func (m *Machine) SetResidentElide(on bool) { m.residentElide = on }

// ResidentElide reports whether the resident-elision fast path is armed.
func (m *Machine) ResidentElide() bool { return m.residentElide }

// ArmResidentPages marks the given [start,end) vpn ranges as candidates
// for resident elision. Arming is additive; pages outside every armed
// range always take the full access path.
func (m *Machine) ArmResidentPages(ranges [][2]uint64) {
	for _, r := range ranges {
		if r[1] > uint64(len(m.elideArmed)) {
			grown := make([]bool, r[1])
			copy(grown, m.elideArmed)
			m.elideArmed = grown
		}
		for vpn := r[0]; vpn < r[1]; vpn++ {
			m.elideArmed[vpn] = true
		}
	}
}

// pagesArmed reports whether every page the byte span [addr,last] touches
// is armed for resident elision.
func (m *Machine) pagesArmed(addr, last uint64) bool {
	end := last >> m.pageShift
	if end >= uint64(len(m.elideArmed)) {
		return false
	}
	for vpn := addr >> m.pageShift; vpn <= end; vpn++ {
		if !m.elideArmed[vpn] {
			return false
		}
	}
	return true
}

// New builds a machine. Zero fields of cfg that have a default are filled
// in from DefaultConfig.
func New(cfg Config) (*Machine, error) {
	def := DefaultConfig()
	if cfg.Nodes == 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.CPUsPerNode == 0 {
		cfg.CPUsPerNode = def.CPUsPerNode
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = def.PageBytes
	}
	if cfg.ArenaPages == 0 {
		cfg.ArenaPages = def.ArenaPages
	}
	if cfg.L1Bytes == 0 {
		cfg.L1Bytes, cfg.L1Line, cfg.L1Ways = def.L1Bytes, def.L1Line, def.L1Ways
	}
	if cfg.L2Bytes == 0 {
		cfg.L2Bytes, cfg.L2Line, cfg.L2Ways = def.L2Bytes, def.L2Line, def.L2Ways
	}
	if cfg.TLBEntries == 0 {
		cfg.TLBEntries, cfg.TLBWays = def.TLBEntries, def.TLBWays
	}
	if cfg.Lat.MemByHops == nil {
		cfg.Lat = def.Lat
	}
	if cfg.PageBytes <= 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		return nil, fmt.Errorf("machine: page size %d not a power of two", cfg.PageBytes)
	}
	if cfg.CPUsPerNode <= 0 {
		return nil, fmt.Errorf("machine: %d CPUs per node invalid", cfg.CPUsPerNode)
	}
	var topo topology.Topology
	if cfg.Topo != nil {
		h, err := topology.NewHierarchy(cfg.Topo)
		if err != nil {
			return nil, err
		}
		cfg.Nodes = h.Nodes()
		if extras := h.LatencyExtras(); extras != nil {
			// Per-level latency ladder: local latency plus the summed
			// extras of the levels each distance crosses. A fresh slice —
			// the configured ladder may be shared (DefaultConfig's).
			mb := make([]int64, len(extras))
			for d, ex := range extras {
				mb[d] = cfg.Lat.MemByHops[0] + ex
			}
			cfg.Lat.MemByHops = mb
		}
		topo = h
	} else {
		hc, err := topology.NewHypercube(cfg.Nodes)
		if err != nil {
			return nil, err
		}
		topo = hc
	}
	pt, err := vm.New(topo, vm.Config{
		Pages:         cfg.ArenaPages,
		Policy:        cfg.Placement,
		Seed:          cfg.Seed,
		CounterBits:   cfg.CounterBits,
		CapacityPages: cfg.CapacityPages,
	})
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:         cfg,
		Topo:        topo,
		PT:          pt,
		Lat:         cfg.Lat,
		pageShift:   uint(bits.TrailingZeros(uint(cfg.PageBytes))),
		cohShift:    uint(bits.TrailingZeros(uint(cfg.L2Line))),
		l1Shift:     uint(bits.TrailingZeros(uint(cfg.L1Line))),
		settleAcc:   make([]int64, cfg.Nodes),
		refCounting: true,
	}
	m.bulkOK = !cfg.ScalarRuns && cfg.L1Line <= cfg.L2Line && cfg.L2Line <= cfg.PageBytes
	m.lineState = make([]uint32, (uint64(cfg.ArenaPages)<<m.pageShift)>>m.cohShift)
	if ncpu := cfg.Nodes * cfg.CPUsPerNode; ncpu > 256 {
		return nil, fmt.Errorf("machine: %d CPUs exceed the coherence directory's 8-bit writer field", ncpu)
	}
	ncpu := cfg.Nodes * cfg.CPUsPerNode
	m.cpus = make([]*CPU, ncpu)
	for i := range m.cpus {
		l1, err := memsys.NewCache(cfg.L1Bytes, cfg.L1Line, cfg.L1Ways)
		if err != nil {
			return nil, err
		}
		l2, err := memsys.NewCache(cfg.L2Bytes, cfg.L2Line, cfg.L2Ways)
		if err != nil {
			return nil, err
		}
		tlb, err := memsys.NewTLB(cfg.TLBEntries, cfg.TLBWays)
		if err != nil {
			return nil, err
		}
		m.cpus[i] = &CPU{
			ID:      i,
			NodeID:  i / cfg.CPUsPerNode,
			m:       m,
			l1:      l1,
			l2:      l2,
			tlb:     tlb,
			nodeAcc: make([]int64, cfg.Nodes),
		}
	}
	return m, nil
}

// MustNew is New for statically known configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NumCPUs returns the processor count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// CPU returns processor i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// CPUs returns all processors in id order.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// PageBytes returns the page size.
func (m *Machine) PageBytes() int { return m.Cfg.PageBytes }

// PageShift returns log2 of the page size.
func (m *Machine) PageShift() uint { return m.pageShift }

// VPN returns the virtual page number of an address.
func (m *Machine) VPN(addr uint64) uint64 { return addr >> m.pageShift }

// AddBarrierHook registers fn to run at every barrier settlement.
func (m *Machine) AddBarrierHook(fn BarrierHook) { m.hooks = append(m.hooks, fn) }

// AddBarrierHookFront registers fn to run before every already-registered
// barrier hook. An observer registered this way sees the settled barrier
// time before any engine hook charges its cost — the campaign observer
// (internal/nas) uses this to record the time the kernel engine's hook is
// about to receive, even though the engine attached first. A front hook
// that returns 0 leaves the settlement bit-identical.
func (m *Machine) AddBarrierHookFront(fn BarrierHook) {
	m.hooks = append([]BarrierHook{fn}, m.hooks...)
}

// Alloc reserves n bytes of simulated address space, page-aligned so that
// distinct arrays never share a page, and returns the base address.
func (m *Machine) Alloc(n int) uint64 {
	if n <= 0 {
		panic(fmt.Sprintf("machine: Alloc(%d)", n))
	}
	base := m.heap
	pages := (uint64(n) + uint64(m.Cfg.PageBytes) - 1) >> m.pageShift
	m.heap += pages << m.pageShift
	if m.VPN(m.heap) > uint64(m.PT.Pages()) {
		panic(fmt.Sprintf("machine: arena exhausted allocating %d bytes (%d pages in arena)", n, m.PT.Pages()))
	}
	return base
}

// AllocatedPages returns the number of pages allocated so far; migration
// engines scan only this prefix of the arena.
func (m *Machine) AllocatedPages() uint64 { return m.VPN(m.heap) }

// PageMoveCost returns the cost of moving one page as part of a batched
// range migration, without the TLB shootdown: the amortised fixed kernel
// work plus the page copy.
func (m *Machine) PageMoveCost() int64 {
	return m.Lat.MigratePageBatched + int64(m.Cfg.PageBytes)*m.Lat.MigrateBytePS
}

// ShootdownCost returns the cost of one machine-wide TLB shootdown round
// (one interprocessor interrupt per CPU).
func (m *Machine) ShootdownCost() int64 {
	return int64(len(m.cpus)) * m.Lat.ShootdownPerCPU
}

// MigrationCost returns the cost of one stand-alone coherent page
// migration: full fixed kernel work, the page copy, and one TLB-shootdown
// interrupt per processor. The interrupt-driven kernel engine pays this
// full price per page; UPMlib batches the moves of one invocation
// (PageMoveCost each plus a single ShootdownCost for the batch).
func (m *Machine) MigrationCost() int64 {
	return m.Lat.MigratePage +
		int64(m.Cfg.PageBytes)*m.Lat.MigrateBytePS +
		m.ShootdownCost()
}

// Settle ends the region that started at start for the given CPUs: it
// applies the contention model to the per-node access tallies, advances
// every clock past queueing delays, enforces the saturation floor, runs
// barrier hooks, and returns the settled time. Callers (the omp runtime)
// then assign the returned time to every participating clock.
func (m *Machine) Settle(cpus []*CPU, start int64) int64 {
	if m.freeRun {
		// Free-run: clocks are frozen at their extrapolated values and
		// barrier hooks (the kernel migration engine) must not fire.
		return start
	}
	tmax := start
	for _, c := range cpus {
		if c.clock > tmax {
			tmax = c.clock
		}
	}
	acc := m.settleAcc
	for n := range acc {
		acc[n] = 0
	}
	for _, c := range cpus {
		for n, a := range c.nodeAcc {
			acc[n] += a
		}
	}
	per, floor := memsys.ContentionDelays(acc, tmax-start, m.Lat.MemService)
	tb := start
	for _, c := range cpus {
		for n, a := range c.nodeAcc {
			if a != 0 {
				c.clock += a * per[n]
				c.nodeAcc[n] = 0
			}
		}
		if c.clock > tb {
			tb = c.clock
		}
	}
	if f := start + floor; f > tb {
		tb = f
	}
	for _, h := range m.hooks {
		tb += h(tb)
	}
	for _, c := range cpus {
		c.clock = tb
	}
	return tb
}

// countersPerCPU is the number of AppendCounters slots each CPU
// contributes: clock, the seven CPUStats fields, and hits/misses/tick for
// each private cache.
const countersPerCPU = 1 + 7 + 3 + 3

// AppendCounters appends the machine's complete monotone counter state to
// dst and returns the extended slice: per CPU the virtual clock, the
// seven CPUStats fields and each private cache's hits, misses and LRU
// tick; then the page table's fault, migration, replica and collapse
// totals. The layout is fixed so that the element-wise difference of two
// snapshots taken at consecutive iteration boundaries is the iteration's
// delta vector, and so that ApplyCounterDelta can fast-forward the same
// state by a multiple of that delta.
func (m *Machine) AppendCounters(dst []int64) []int64 {
	for _, c := range m.cpus {
		dst = append(dst, c.clock,
			int64(c.stat.Accesses), int64(c.stat.L1Miss), int64(c.stat.L2Miss),
			int64(c.stat.TLBMiss), int64(c.stat.LocalMem), int64(c.stat.RemoteMem),
			int64(c.stat.Faults))
		h1, m1 := c.l1.Stats()
		h2, m2 := c.l2.Stats()
		dst = append(dst, int64(h1), int64(m1), int64(c.l1.Tick()),
			int64(h2), int64(m2), int64(c.l2.Tick()))
	}
	return append(dst, m.PT.Faults(), m.PT.Migrations(), m.PT.ReplicaCreations(), m.PT.Collapses())
}

// CounterLen returns the length AppendCounters adds to its argument.
func (m *Machine) CounterLen() int { return len(m.cpus)*countersPerCPU + 4 }

// AppendCounterNames appends one name per AppendCounters slot, in the
// same order, so index i of a counter delta vector can be reported by
// name (the steady-state detector's why-not diagnostics do). Names, not
// values: nothing here reads simulation state.
func (m *Machine) AppendCounterNames(dst []string) []string {
	for i := range m.cpus {
		for _, s := range [...]string{"clock", "accesses", "l1_miss", "l2_miss",
			"tlb_miss", "local_mem", "remote_mem", "faults",
			"l1_hits", "l1_misses", "l1_tick", "l2_hits", "l2_misses", "l2_tick"} {
			dst = append(dst, fmt.Sprintf("cpu%d_%s", i, s))
		}
	}
	return append(dst, "pt_faults", "pt_migrations", "pt_replicas", "pt_collapses")
}

// CountersPerCPU returns the per-CPU stride of the AppendCounters layout,
// so consumers that must classify entries structurally (the campaign
// observer's clock-vs-frozen split) need not hard-code it.
func (m *Machine) CountersPerCPU() int { return countersPerCPU }

// ApplyCounterDelta advances every counter AppendCounters reports by k
// repetitions of the per-iteration delta vector — the steady-state
// fast-forward. delta must have CounterLen elements laid out exactly as
// AppendCounters produces them.
func (m *Machine) ApplyCounterDelta(delta []int64, k int64) {
	if len(delta) != m.CounterLen() {
		panic(fmt.Sprintf("machine: counter delta has %d elements, want %d", len(delta), m.CounterLen()))
	}
	i := 0
	for _, c := range m.cpus {
		d := delta[i : i+countersPerCPU]
		c.clock += d[0] * k
		c.stat.Accesses += uint64(d[1] * k)
		c.stat.L1Miss += uint64(d[2] * k)
		c.stat.L2Miss += uint64(d[3] * k)
		c.stat.TLBMiss += uint64(d[4] * k)
		c.stat.LocalMem += uint64(d[5] * k)
		c.stat.RemoteMem += uint64(d[6] * k)
		c.stat.Faults += uint64(d[7] * k)
		c.l1.FastForward(uint64(d[8]), uint64(d[9]), uint64(d[10]), k)
		c.l2.FastForward(uint64(d[11]), uint64(d[12]), uint64(d[13]), k)
		i += countersPerCPU
	}
	m.PT.FastForwardCounters(delta[i]*k, delta[i+1]*k, delta[i+2]*k, delta[i+3]*k)
}

// Stats aggregates the memory-system counters of every CPU.
func (m *Machine) Stats() Stats {
	var s Stats
	for _, c := range m.cpus {
		s.L1Miss += c.stat.L1Miss
		s.L2Miss += c.stat.L2Miss
		s.TLBMiss += c.stat.TLBMiss
		s.LocalMem += c.stat.LocalMem
		s.RemoteMem += c.stat.RemoteMem
		s.Accesses += c.stat.Accesses
		s.Faults += c.stat.Faults
	}
	s.Migrations = m.PT.Migrations()
	return s
}

// Stats summarises memory-system activity. The JSON tags are the wire
// form used by the sweep result store and the sweepd job API.
type Stats struct {
	Accesses   uint64 `json:"accesses"`
	L1Miss     uint64 `json:"l1_miss"`
	L2Miss     uint64 `json:"l2_miss"`
	TLBMiss    uint64 `json:"tlb_miss"`
	LocalMem   uint64 `json:"local_mem"`  // L2 misses served by the local node
	RemoteMem  uint64 `json:"remote_mem"` // L2 misses served remotely
	Faults     uint64 `json:"faults"`
	Migrations int64  `json:"migrations"`
}

// RemoteRatio returns the fraction of memory accesses served remotely.
func (s Stats) RemoteRatio() float64 {
	t := s.LocalMem + s.RemoteMem
	if t == 0 {
		return 0
	}
	return float64(s.RemoteMem) / float64(t)
}

// CPU is one simulated processor: private L1/L2/TLB, a picosecond clock,
// and per-region access tallies for the contention model. A CPU must only
// be driven from one goroutine at a time (the omp runtime guarantees
// this).
type CPU struct {
	ID     int
	NodeID int

	m     *Machine
	clock int64
	l1    *memsys.Cache
	l2    *memsys.Cache
	tlb   *memsys.TLB

	nodeAcc []int64 // memory accesses per home node in the current region
	stat    CPUStats

	// Resident-elision repeat memo: the key of the last all-hit bulk read
	// run this CPU performed, and the Accesses count right after it. A new
	// run attempts the elided replay only when it repeats the key with no
	// intervening accesses (stat.Accesses still equals repAcc) — the
	// solver pattern of reading the same field twice in one stencil. The
	// memo is a heuristic only: replay re-proves every condition against
	// live cache and directory state, so a stale memo can cost a failed
	// validation walk but never a wrong charge. Clones start memo-free.
	repOK     bool
	repAddr   uint64
	repN      int
	repStride uint64
	repAcc    uint64
	repSlots  []int32 // scratch reused across replays
	repCounts []int32
}

// CPUStats counts this CPU's memory-system events.
type CPUStats struct {
	Accesses  uint64
	L1Miss    uint64
	L2Miss    uint64
	TLBMiss   uint64
	LocalMem  uint64
	RemoteMem uint64
	Faults    uint64
}

// Machine returns the CPU's machine.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns the CPU's virtual clock in picoseconds.
func (c *CPU) Now() int64 { return c.clock }

// SetClock forces the CPU clock; the omp runtime uses it at fork/join.
// In free-run mode the clock is frozen at its extrapolated value.
func (c *CPU) SetClock(t int64) {
	if c.m.freeRun {
		return
	}
	c.clock = t
}

// Advance adds ps picoseconds of pure computation to the clock.
func (c *CPU) Advance(ps int64) {
	if c.m.freeRun {
		return
	}
	c.clock += ps
}

// Flops charges n floating-point operations of computation.
func (c *CPU) Flops(n int) {
	if c.m.freeRun {
		return
	}
	c.clock += int64(n) * c.m.Lat.FlopCost
}

// Stat returns the CPU's event counters.
func (c *CPU) Stat() CPUStats { return c.stat }

// Load performs one simulated read of addr.
func (c *CPU) Load(addr uint64) { c.touch(addr, false) }

// Store performs one simulated write of addr, invalidating every other
// CPU's cached copy of the coherence unit.
func (c *CPU) Store(addr uint64) { c.touch(addr, true) }

// LoadRun performs n simulated reads of addr, addr+stride, ...,
// addr+(n-1)*stride (stride in bytes). It charges exactly what n Load
// calls would — same clocks, same miss counts, same reference-counter
// totals — but pays the directory, cache, TLB and page-table machinery
// once per line or page instead of once per element (see DESIGN.md,
// "Bulk-access fast path").
func (c *CPU) LoadRun(addr uint64, n int, stride uint64) { c.touchRun(addr, n, stride, false) }

// StoreRun performs n simulated writes of addr, addr+stride, ...,
// addr+(n-1)*stride, with the same per-event equivalence to n Store calls
// as LoadRun has to Load.
func (c *CPU) StoreRun(addr uint64, n int, stride uint64) { c.touchRun(addr, n, stride, true) }

// touchRun is the bulk-access engine behind LoadRun and StoreRun. The run
// is segmented page -> coherence unit (L2 line) -> L1 line; each level
// does its bookkeeping once per segment while advancing clocks and
// counters by the element count, so the machine state it leaves behind is
// bit-identical to the per-element ladder in touch. Strides wider than an
// L2 line (and degenerate strides) gain nothing from batching and fall
// back to the scalar loop.
func (c *CPU) touchRun(addr uint64, n int, stride uint64, write bool) {
	m := c.m
	if n <= 0 || m.freeRun {
		return
	}
	if !m.bulkOK || stride == 0 || stride > uint64(m.Cfg.L2Line) {
		for i := 0; i < n; i++ {
			c.touch(addr+uint64(i)*stride, write)
		}
		return
	}
	// Resident elision: an exact, immediate repeat of the previous all-hit
	// read run over armed pages replays as flat counter arithmetic. When
	// the replay's validation fails (or the memo does not match) the run
	// falls through to the full walk, which re-arms the memo if it turns
	// out all-hit again.
	arming := false
	var armMiss uint64
	if m.residentElide && !write && stride&(stride-1) == 0 && stride <= uint64(m.Cfg.L1Line) {
		if last := addr + uint64(n-1)*stride; m.pagesArmed(addr, last) {
			if c.repOK && addr == c.repAddr && n == c.repN && stride == c.repStride &&
				c.stat.Accesses == c.repAcc && c.replayRun(addr, last, n, stride) {
				return
			}
			arming, armMiss = true, c.stat.L1Miss
		}
	}
	lat := &m.Lat
	c.stat.Accesses += uint64(n)
	tracking := write && m.PT.WriteTracking()
	// Short vector runs (the solvers' per-point component blocks) almost
	// always land inside a single coherence unit; charge them on a flat
	// path with no segmentation loops.
	if last := addr + uint64(n-1)*stride; last>>m.cohShift == addr>>m.cohShift && !tracking {
		c.touchUnit(addr, last, n, stride, write)
		c.armRepeat(arming, armMiss, addr, n, stride)
		return
	}
	// Segment lengths divide the distance to the next boundary by the
	// stride; for the power-of-two strides every caller uses, a shift
	// replaces the (hot) hardware division.
	shift := uint(bits.TrailingZeros64(stride))
	pow2 := stride == 1<<shift
	segLen := func(rem uint64) int {
		if pow2 {
			return int(rem>>shift) + 1
		}
		return int(rem/stride) + 1
	}
	for i := 0; i < n; {
		a := addr + uint64(i)*stride
		vpn := a >> m.pageShift
		nPage := n - i
		if l := segLen((vpn+1)<<m.pageShift - 1 - a); l < nPage {
			nPage = l
		}
		if tracking {
			// As in touch: the write log and replica collapse fire even
			// when every store in the run hits a cache.
			if dropped := m.PT.MarkWritten(vpn); dropped > 0 {
				c.clock += lat.MigratePage + m.ShootdownCost()
				if m.tracer != nil {
					m.tracer.Emit(trace.Event{Time: c.clock, CPU: c.ID,
						Kind: trace.EvShootdown, Name: "collapse", Arg0: 1, Arg1: int64(vpn)})
				}
			}
		}
		// Walk the page's coherence units, counting L2 misses; the memory
		// path below is charged once for all of them.
		l2misses := 0
		for j := 0; j < nPage; {
			aj := a + uint64(j)*stride
			unit := aj >> m.cohShift
			nUnit := nPage - j
			if l := segLen((unit+1)<<m.cohShift - 1 - aj); l < nUnit {
				nUnit = l
			}
			ver, newVer := c.coherence(unit, write)
			c.clock += int64(nUnit) * lat.L1Hit
			// L1-line segments inside the unit. The first element of the
			// unit validates against ver; every later element sees the
			// just-stamped newVer, exactly as repeated scalar touches
			// would. L2 is probed once per L1-missing segment, with the
			// version pair of the first missing segment deciding the
			// (at most one) L2 miss.
			probes := 0
			var probeAddr uint64
			var probeVer, probeNewVer uint32
			if lastA := aj + uint64(nUnit-1)*stride; pow2 && stride <= uint64(m.Cfg.L1Line) && lastA>>m.l1Shift > aj>>m.l1Shift {
				// The unit's lines are consecutive and evenly filled:
				// one batched probe covers them all.
				nLines := int(lastA>>m.l1Shift - aj>>m.l1Shift + 1)
				first := int(((aj>>m.l1Shift+1)<<m.l1Shift-1-aj)>>shift) + 1
				perLine := int(uint64(m.Cfg.L1Line) >> shift)
				miss, mAddr, mVer := c.l1.AccessLines(aj, nLines, first, perLine, nUnit-first-(nLines-2)*perLine, ver, newVer)
				if miss > 0 {
					c.stat.L1Miss += uint64(miss)
					probes, probeAddr, probeVer, probeNewVer = miss, mAddr, mVer, newVer
				}
			} else {
				v0 := ver
				for k := 0; k < nUnit; {
					ak := aj + uint64(k)*stride
					nLine := nUnit - k
					if l := segLen((ak>>m.l1Shift+1)<<m.l1Shift - 1 - ak); l < nLine {
						nLine = l
					}
					if !c.l1.AccessRange(ak, nLine, v0, newVer) {
						c.stat.L1Miss++
						if probes == 0 {
							probeAddr, probeVer, probeNewVer = ak, v0, newVer
						}
						probes++
					}
					v0 = newVer
					k += nLine
				}
			}
			if probes > 0 {
				if c.l2.AccessRange(probeAddr, probes, probeVer, probeNewVer) {
					c.clock += int64(probes) * lat.L2Hit
				} else {
					c.stat.L2Miss++
					c.clock += int64(probes-1) * lat.L2Hit
					l2misses++
				}
			}
			j += nUnit
		}
		if l2misses > 0 {
			// The scalar path resolves the page only when an access
			// actually reaches memory, so the fault (and its charge)
			// must stay behind the first L2 miss here too.
			home, gen, faulted := m.PT.Resolve(vpn, c.NodeID)
			if faulted {
				c.stat.Faults++
				c.clock += lat.PageFault
				if m.tracer != nil {
					m.tracer.Emit(trace.Event{Time: c.clock, CPU: c.ID,
						Kind: trace.EvPageFault, Arg0: int64(vpn), Arg1: int64(home)})
				}
			}
			if !write && m.PT.HasReplicas(vpn) {
				home = m.PT.NearestCopy(vpn, c.NodeID)
			}
			if !c.tlb.LookupRun(vpn, gen, l2misses) {
				c.stat.TLBMiss++
				c.clock += lat.TLBRefill
			}
			hops := m.Topo.Hops(c.NodeID, home)
			if hops == 0 {
				c.stat.LocalMem += uint64(l2misses)
			} else {
				c.stat.RemoteMem += uint64(l2misses)
			}
			c.clock += int64(l2misses) * lat.MemLatency(hops)
			if m.refCounting {
				m.PT.CountMissN(vpn, c.NodeID, uint32(l2misses))
			}
			c.nodeAcc[home] += int64(l2misses)
		}
		i += nPage
	}
	c.armRepeat(arming, armMiss, addr, n, stride)
}

// armRepeat records the just-completed bulk read run as the CPU's repeat
// memo when it qualified for elision (arming) and turned out all-hit (no
// L1 miss was charged since armMiss was sampled).
func (c *CPU) armRepeat(arming bool, armMiss uint64, addr uint64, n int, stride uint64) {
	if arming && c.stat.L1Miss == armMiss {
		c.repOK = true
		c.repAddr, c.repN, c.repStride = addr, n, stride
		c.repAcc = c.stat.Accesses
	}
}

// replayRun validates and performs one elided repeat of a read run. The
// proof obligations, all checked against live state:
//
//   - every coherence unit's directory word permits a no-op read: this
//     CPU is the last writer or the shared flag is already set, so the
//     normal path's best-effort CAS would not have changed the word;
//   - every L1 line the run touches is resident with stored version equal
//     to the unit's current directory version, so every access is a hit
//     and the hit path's version re-stamp writes back the same value.
//
// Both passed, the run's only effects are Accesses += n, clock advance at
// the L1-hit rate, and the L1 hit/tick/LRU-stamp updates — which Replay
// applies with the exact cumulative tick values the per-line walk would
// have produced. Validation mutates nothing, so a false return leaves the
// machine untouched for the full walk.
func (c *CPU) replayRun(addr, last uint64, n int, stride uint64) bool {
	m := c.m
	firstLine := addr >> m.l1Shift
	nLines := int(last>>m.l1Shift-firstLine) + 1
	me := uint32(c.ID)
	slots := c.repSlots[:0]
	var ok bool
	for unit, end := addr>>m.cohShift, last>>m.cohShift; unit <= end; unit++ {
		word := atomic.LoadUint32(&m.lineState[unit])
		if (word>>1)&0xff != me && word&1 == 0 {
			return false
		}
		lo := unit << m.cohShift
		if lo < addr {
			lo = addr
		}
		hi := (unit+1)<<m.cohShift - 1
		if hi > last {
			hi = last
		}
		un := int(hi>>m.l1Shift-lo>>m.l1Shift) + 1
		if slots, ok = c.l1.ResidentRun(lo, un, word>>9, slots); !ok {
			return false
		}
	}
	// Per-line element counts are pure geometry: the first line holds the
	// elements up to its boundary, full lines L1Line/stride each, the last
	// line the remainder.
	counts := c.repCounts[:0]
	if nLines == 1 {
		counts = append(counts, int32(n))
	} else {
		shift := uint(bits.TrailingZeros64(stride))
		first := int(((firstLine+1)<<m.l1Shift-1-addr)>>shift) + 1
		perLine := int(uint64(m.Cfg.L1Line) >> shift)
		counts = append(counts, int32(first))
		for i := 1; i < nLines-1; i++ {
			counts = append(counts, int32(perLine))
		}
		counts = append(counts, int32(n-first-(nLines-2)*perLine))
	}
	c.repSlots, c.repCounts = slots, counts
	c.l1.Replay(slots, counts)
	c.stat.Accesses += uint64(n)
	c.clock += int64(n) * m.Lat.L1Hit
	c.repAcc = c.stat.Accesses
	return true
}

// touchUnit charges a run that lies entirely within one coherence unit
// (and therefore one page, spanning at most L2Line/L1Line L1 lines): the
// flat common case touchRun peels off. Event for event it matches what
// touchRun's general segmentation — and hence the scalar ladder — would
// charge: one coherence decision, per-L1-line probes with the first
// element of the unit validating against ver and the rest against newVer,
// at most one L2 miss, and the memory path behind it.
func (c *CPU) touchUnit(addr, last uint64, n int, stride uint64, write bool) {
	m := c.m
	lat := &m.Lat
	ver, newVer := c.coherence(addr>>m.cohShift, write)
	c.clock += int64(n) * lat.L1Hit
	probes := 0
	var probeAddr uint64
	var probeVer uint32
	if addr>>m.l1Shift == last>>m.l1Shift {
		if !c.l1.AccessRange(addr, n, ver, newVer) {
			c.stat.L1Miss++
			probes, probeAddr, probeVer = 1, addr, ver
		}
	} else if shift := uint(bits.TrailingZeros64(stride)); stride == 1<<shift && stride <= uint64(m.Cfg.L1Line) {
		nLines := int(last>>m.l1Shift - addr>>m.l1Shift + 1)
		first := int(((addr>>m.l1Shift+1)<<m.l1Shift-1-addr)>>shift) + 1
		perLine := int(uint64(m.Cfg.L1Line) >> shift)
		miss, mAddr, mVer := c.l1.AccessLines(addr, nLines, first, perLine, n-first-(nLines-2)*perLine, ver, newVer)
		if miss > 0 {
			c.stat.L1Miss += uint64(miss)
			probes, probeAddr, probeVer = miss, mAddr, mVer
		}
	} else {
		v0 := ver
		for k := 0; k < n; {
			ak := addr + uint64(k)*stride
			nLine := n - k
			if l := int(((ak>>m.l1Shift+1)<<m.l1Shift-1-ak)/stride) + 1; l < nLine {
				nLine = l
			}
			if !c.l1.AccessRange(ak, nLine, v0, newVer) {
				c.stat.L1Miss++
				if probes == 0 {
					probeAddr, probeVer = ak, v0
				}
				probes++
			}
			v0 = newVer
			k += nLine
		}
	}
	if probes == 0 {
		return
	}
	if c.l2.AccessRange(probeAddr, probes, probeVer, newVer) {
		c.clock += int64(probes) * lat.L2Hit
		return
	}
	c.stat.L2Miss++
	c.clock += int64(probes-1) * lat.L2Hit
	vpn := addr >> m.pageShift
	home, gen, faulted := m.PT.Resolve(vpn, c.NodeID)
	if faulted {
		c.stat.Faults++
		c.clock += lat.PageFault
		if m.tracer != nil {
			m.tracer.Emit(trace.Event{Time: c.clock, CPU: c.ID,
				Kind: trace.EvPageFault, Arg0: int64(vpn), Arg1: int64(home)})
		}
	}
	if !write && m.PT.HasReplicas(vpn) {
		home = m.PT.NearestCopy(vpn, c.NodeID)
	}
	if !c.tlb.LookupRun(vpn, gen, 1) {
		c.stat.TLBMiss++
		c.clock += lat.TLBRefill
	}
	hops := m.Topo.Hops(c.NodeID, home)
	if hops == 0 {
		c.stat.LocalMem++
	} else {
		c.stat.RemoteMem++
	}
	c.clock += lat.MemLatency(hops)
	if m.refCounting {
		m.PT.CountMissN(vpn, c.NodeID, 1)
	}
	c.nodeAcc[home]++
}

// touch performs one simulated memory reference to addr, walking
// L1 -> L2 -> (TLB, page table) -> local or remote memory, charging the
// clock at each level and updating the page reference counters on an L2
// miss — the Origin2000 counts *memory* accesses, i.e. L2 misses, which is
// why cache-friendly code barely moves the counters.
func (c *CPU) touch(addr uint64, write bool) {
	if c.m.freeRun {
		return
	}
	lat := &c.m.Lat
	c.stat.Accesses++
	if write && c.m.PT.WriteTracking() {
		// Replication extension: log the write; a write to a replicated
		// page invalidates every read copy even when the store itself
		// hits in a cache.
		if dropped := c.m.PT.MarkWritten(addr >> c.m.pageShift); dropped > 0 {
			c.clock += lat.MigratePage + c.m.ShootdownCost()
			if c.m.tracer != nil {
				c.m.tracer.Emit(trace.Event{Time: c.clock, CPU: c.ID,
					Kind: trace.EvShootdown, Name: "collapse", Arg0: 1, Arg1: int64(addr >> c.m.pageShift)})
			}
		}
	}
	ver, newVer := c.coherence(addr>>c.m.cohShift, write)
	c.clock += lat.L1Hit
	if c.l1.Access(addr, ver, newVer) {
		return
	}
	c.stat.L1Miss++
	if c.l2.Access(addr, ver, newVer) {
		c.clock += lat.L2Hit
		return
	}
	c.stat.L2Miss++
	vpn := addr >> c.m.pageShift
	home, gen, faulted := c.m.PT.Resolve(vpn, c.NodeID)
	if faulted {
		c.stat.Faults++
		c.clock += lat.PageFault
		if c.m.tracer != nil {
			c.m.tracer.Emit(trace.Event{Time: c.clock, CPU: c.ID,
				Kind: trace.EvPageFault, Arg0: int64(vpn), Arg1: int64(home)})
		}
	}
	if !write && c.m.PT.HasReplicas(vpn) {
		// Reads are served by the closest copy (replication extension).
		home = c.m.PT.NearestCopy(vpn, c.NodeID)
	}
	if !c.tlb.Lookup(vpn, gen) {
		c.stat.TLBMiss++
		c.clock += lat.TLBRefill
		c.tlb.Insert(vpn, gen)
	}
	hops := c.m.Topo.Hops(c.NodeID, home)
	if hops == 0 {
		c.stat.LocalMem++
	} else {
		c.stat.RemoteMem++
	}
	c.clock += lat.MemLatency(hops)
	if c.m.refCounting {
		c.m.PT.CountMiss(vpn, c.NodeID)
	}
	c.nodeAcc[home]++
}

// coherence runs the directory protocol for one access to a unit and
// returns the version to validate cached copies against and the version
// to stamp this CPU's refreshed entries with.
//
//   - read: copies at the current version are valid; a read by a CPU other
//     than the last writer marks the unit shared;
//   - write by the exclusive owner (last writer, nothing shared since):
//     free, as in the MESI M state;
//   - any other write: bump the version (invalidating every other cached
//     copy at its next use), take ownership, clear the shared flag.
func (c *CPU) coherence(unit uint64, write bool) (ver, newVer uint32) {
	p := &c.m.lineState[unit]
	word := atomic.LoadUint32(p)
	ver = word >> 9
	me := uint32(c.ID)
	if !write {
		if (word>>1)&0xff != me && word&1 == 0 {
			// Best effort: losing this race only delays the shared
			// flag to the next read.
			atomic.CompareAndSwapUint32(p, word, word|1)
		}
		return ver, ver
	}
	if (word>>1)&0xff == me && word&1 == 0 {
		return ver, ver // exclusive owner
	}
	for {
		next := (ver+1)<<9 | me<<1
		if atomic.CompareAndSwapUint32(p, word, next) {
			return ver, ver + 1
		}
		word = atomic.LoadUint32(p)
		ver = word >> 9
		if (word>>1)&0xff == me && word&1 == 0 {
			return ver, ver
		}
	}
}

// FlushCaches empties the CPU's caches and TLB (used by tests and by the
// latency probe to construct known hierarchy states).
func (c *CPU) FlushCaches() {
	c.l1.Flush()
	c.l2.Flush()
	c.tlb.Flush()
}

// FlushL1 empties only the L1 cache (latency probe).
func (c *CPU) FlushL1() { c.l1.Flush() }

// FlushL1L2 empties both caches but keeps the TLB warm (latency probe).
func (c *CPU) FlushL1L2() {
	c.l1.Flush()
	c.l2.Flush()
}

// CacheStats exposes hit/miss counters of the private caches.
func (c *CPU) CacheStats() (l1Hits, l1Misses, l2Hits, l2Misses uint64) {
	l1Hits, l1Misses = c.l1.Stats()
	l2Hits, l2Misses = c.l2.Stats()
	return
}

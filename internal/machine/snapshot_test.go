package machine

import (
	"reflect"
	"testing"
)

// cloneConfig is a small machine with every optional feature reachable:
// tight capacity so placement overflows, 4 nodes so hops vary.
func cloneConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes, cfg.CPUsPerNode = 4, 2
	cfg.PageBytes = 1024
	cfg.ArenaPages = 1 << 10
	cfg.L1Bytes, cfg.L1Line, cfg.L1Ways = 4*1024, 32, 2
	cfg.L2Bytes, cfg.L2Line, cfg.L2Ways = 16*1024, 128, 2
	cfg.CapacityPages = 200
	return cfg
}

// exercise drives m through every stateful component: loads and stores
// from every CPU (caches, TLBs, coherence words, clocks, stats, node
// tallies), page faults, counter bumps, migrations, freezes, replicas
// and the write log.
func exercise(m *Machine, rounds int) {
	a := m.NewArray("x", 64*m.Cfg.PageBytes/8)
	lo, hi := a.PageRange()
	for r := 0; r < rounds; r++ {
		for i := 0; i < m.NumCPUs(); i++ {
			c := m.CPU(i)
			for p := lo; p < hi; p++ {
				addr := p << m.PageShift()
				c.Load(addr + uint64(8*i))
				if (int(p)+i+r)%3 == 0 {
					c.Store(addr + uint64(8*i))
				}
			}
			c.LoadRun(a.Addr(0), 32, 8)
			c.Advance(int64(100 * (i + 1)))
		}
		m.Settle(m.CPUs(), 0)
	}
	m.PT.SetWriteTracking(true)
	m.PT.Replicate(lo, int(lo+1)%m.Cfg.Nodes)
	m.PT.Migrate(lo+1, 2)
	m.PT.Freeze(lo + 2)
	m.PT.CountMiss(lo+3, 1)
}

// machinesEqual compares every piece of simulated state of two machines
// except the intentionally unshared parts (hooks, tracer) and the CPUs'
// back-pointers. reflect.DeepEqual sees unexported fields, so the caches,
// TLBs and page tables are compared in full.
func machinesEqual(t *testing.T, a, b *Machine) bool {
	t.Helper()
	ok := true
	check := func(name string, x, y any) {
		if !reflect.DeepEqual(x, y) {
			t.Errorf("%s diverged:\n a: %+v\n b: %+v", name, x, y)
			ok = false
		}
	}
	check("Cfg", a.Cfg, b.Cfg)
	check("heap", a.heap, b.heap)
	check("lineState", a.lineState, b.lineState)
	check("PT", a.PT, b.PT)
	if len(a.cpus) != len(b.cpus) {
		t.Fatalf("cpu counts differ: %d vs %d", len(a.cpus), len(b.cpus))
	}
	for i := range a.cpus {
		ca, cb := a.cpus[i], b.cpus[i]
		check("clock", ca.clock, cb.clock)
		check("stat", ca.stat, cb.stat)
		check("nodeAcc", ca.nodeAcc, cb.nodeAcc)
		check("l1", ca.l1, cb.l1)
		check("l2", ca.l2, cb.l2)
		check("tlb", ca.tlb, cb.tlb)
	}
	return ok
}

// TestCloneIsolation is the deep-copy property test: mutate every
// component of a fork — caches, TLB, page-table counters and homes,
// coherence words, clocks, heap, replicas — and assert the parent is
// bit-for-bit untouched (and vice versa: mutating the parent leaves an
// earlier fork alone).
func TestCloneIsolation(t *testing.T) {
	m := MustNew(cloneConfig())
	exercise(m, 2)

	ref := m.Clone() // frozen reference picture of the parent
	fork := m.Clone()
	if !machinesEqual(t, m, ref) || !machinesEqual(t, m, fork) {
		t.Fatal("clone is not initially identical to its parent")
	}

	// Hammer the fork through every mutation path.
	exercise(fork, 3)
	fork.Alloc(fork.Cfg.PageBytes * 3)
	fork.CPU(0).FlushCaches()
	fork.CPU(1).SetClock(1 << 40)
	fork.PT.ResetAllCounters()
	fork.PT.Unfreeze(0)
	fork.PT.CollapseReplicas(0)
	if !machinesEqual(t, m, ref) {
		t.Error("mutating the fork changed the parent")
	}

	// And the other direction: the parent keeps simulating, the fork's
	// snapshot (compared against a clone of the untouched reference) must
	// not move.
	forkRef := ref.Clone()
	exercise(m, 1)
	if !machinesEqual(t, ref, forkRef) {
		t.Error("mutating the parent changed a fork")
	}
}

// TestCloneRewindHeapReplaysAllocations: allocation on a rewound clone is
// deterministic and returns the original addresses — the property kernel
// rebuilds on forks rely on.
func TestCloneRewindHeapReplaysAllocations(t *testing.T) {
	m := MustNew(cloneConfig())
	sizes := []int{100, 4096, 1, 3 * 1024}
	var addrs []uint64
	for _, s := range sizes {
		addrs = append(addrs, m.Alloc(s))
	}
	c := m.Clone()
	c.RewindHeap()
	if c.AllocatedPages() != 0 {
		t.Fatalf("rewound clone reports %d allocated pages", c.AllocatedPages())
	}
	for i, s := range sizes {
		if got := c.Alloc(s); got != addrs[i] {
			t.Errorf("replayed Alloc(%d) = %#x, original %#x", s, got, addrs[i])
		}
	}
	if c.AllocatedPages() != m.AllocatedPages() {
		t.Errorf("replayed heap has %d pages, original %d", c.AllocatedPages(), m.AllocatedPages())
	}
	if m.heap != c.heap {
		t.Errorf("heap cursors diverge: %d vs %d", m.heap, c.heap)
	}
}

// TestCloneStartsHookFree: barrier hooks are closures over parent-bound
// engine state and must not leak into clones.
func TestCloneStartsHookFree(t *testing.T) {
	m := MustNew(cloneConfig())
	fired := 0
	m.AddBarrierHook(func(now int64) int64 { fired++; return 0 })
	c := m.Clone()
	c.Settle(c.CPUs(), 0)
	if fired != 0 {
		t.Error("parent hook fired during a clone's settlement")
	}
	m.Settle(m.CPUs(), 0)
	if fired != 1 {
		t.Errorf("parent hook fired %d times on the parent, want 1", fired)
	}
}

package machine

import (
	"fmt"
	"testing"
)

// bulkTestConfig returns a deliberately tiny machine so that short runs
// cross L1 lines, L2 lines, pages, and TLB capacity.
func bulkTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CPUsPerNode = 2
	cfg.PageBytes = 1024
	cfg.ArenaPages = 256
	cfg.L1Bytes, cfg.L1Line, cfg.L1Ways = 512, 32, 2
	cfg.L2Bytes, cfg.L2Line, cfg.L2Ways = 2048, 128, 2
	cfg.TLBEntries, cfg.TLBWays = 8, 2
	return cfg
}

// pair builds two identical machines, one with the bulk fast path enabled
// and one forced onto the scalar reference ladder. Driving both with the
// same call sequence and comparing their full observable state is the
// equivalence contract of the bulk path.
func pair(t *testing.T, cfg Config) (bulk, scalar *Machine) {
	t.Helper()
	b := cfg
	b.ScalarRuns = false
	s := cfg
	s.ScalarRuns = true
	return MustNew(b), MustNew(s)
}

// compareMachines asserts bit-identical clocks, event counters, cache
// counters and page reference counters between the two machines.
func compareMachines(t *testing.T, bulk, scalar *Machine, pages uint64) {
	t.Helper()
	for i := range bulk.CPUs() {
		cb, cs := bulk.CPU(i), scalar.CPU(i)
		if cb.Now() != cs.Now() {
			t.Errorf("cpu %d: clock %d (bulk) != %d (scalar)", i, cb.Now(), cs.Now())
		}
		if cb.Stat() != cs.Stat() {
			t.Errorf("cpu %d: stats %+v (bulk) != %+v (scalar)", i, cb.Stat(), cs.Stat())
		}
		bh1, bm1, bh2, bm2 := cb.CacheStats()
		sh1, sm1, sh2, sm2 := cs.CacheStats()
		if bh1 != sh1 || bm1 != sm1 || bh2 != sh2 || bm2 != sm2 {
			t.Errorf("cpu %d: cache stats L1 %d/%d vs %d/%d, L2 %d/%d vs %d/%d",
				i, bh1, bm1, sh1, sm1, bh2, bm2, sh2, sm2)
		}
	}
	if bulk.Stats() != scalar.Stats() {
		t.Errorf("machine stats %+v (bulk) != %+v (scalar)", bulk.Stats(), scalar.Stats())
	}
	var cb, cs []uint32
	for vpn := uint64(0); vpn < pages; vpn++ {
		cb = bulk.PT.Counters(vpn, cb)
		cs = scalar.PT.Counters(vpn, cs)
		for n := range cb {
			if cb[n] != cs[n] {
				t.Errorf("page %d node %d: counter %d (bulk) != %d (scalar)", vpn, n, cb[n], cs[n])
			}
		}
	}
}

// drive applies the same operation to the matching CPU of both machines.
func drive(bulk, scalar *Machine, cpu int, op func(c *CPU)) {
	op(bulk.CPU(cpu))
	op(scalar.CPU(cpu))
}

func TestLoadRunMatchesScalarAcrossBoundaries(t *testing.T) {
	cfg := bulkTestConfig()
	for _, tc := range []struct {
		name   string
		base   uint64
		n      int
		stride uint64
	}{
		{"within-one-L1-line", 8, 3, 8},
		{"cross-L1-lines", 24, 6, 8},
		{"cross-L2-line", 120, 4, 8},
		{"cross-page", 1000, 20, 8},
		{"many-pages", 8, 700, 8},          // spans > 5 pages
		{"tlb-pressure", 0, 2048, 8},       // 16 pages > 8 TLB entries
		{"stride-16", 4, 130, 16},          // two elements per L1 line
		{"stride-4-int", 2, 300, 4},        // int32-style references
		{"stride-64", 0, 40, 64},           // one element every other L1 line
		{"stride-over-L2-line", 0, 9, 256}, // falls back to the scalar loop
		{"misaligned", 13, 333, 8},
		{"single", 40, 1, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bulk, scalar := pair(t, cfg)
			drive(bulk, scalar, 0, func(c *CPU) {
				c.LoadRun(tc.base, tc.n, tc.stride)
				c.LoadRun(tc.base, tc.n, tc.stride) // warm second sweep
			})
			compareMachines(t, bulk, scalar, 64)
		})
	}
}

func TestStoreRunMatchesScalar(t *testing.T) {
	cfg := bulkTestConfig()
	bulk, scalar := pair(t, cfg)
	// First-touch faults, ownership claims, then an invalidating reader
	// and a re-writer: exercises every coherence transition in run form.
	drive(bulk, scalar, 0, func(c *CPU) { c.StoreRun(64, 600, 8) })
	drive(bulk, scalar, 1, func(c *CPU) { c.LoadRun(64, 600, 8) })
	drive(bulk, scalar, 0, func(c *CPU) { c.StoreRun(64, 600, 8) })
	drive(bulk, scalar, 3, func(c *CPU) { c.StoreRun(200, 100, 8) })
	drive(bulk, scalar, 0, func(c *CPU) { c.LoadRun(64, 600, 8) })
	compareMachines(t, bulk, scalar, 64)
}

func TestRunMixedWithScalarTouches(t *testing.T) {
	cfg := bulkTestConfig()
	bulk, scalar := pair(t, cfg)
	drive(bulk, scalar, 0, func(c *CPU) {
		for i := 0; i < 100; i++ {
			c.Store(uint64(i) * 8)
		}
		c.LoadRun(0, 100, 8)
		c.Load(40)
		c.StoreRun(16, 50, 8)
		c.LoadRun(0, 100, 8)
	})
	compareMachines(t, bulk, scalar, 64)
}

func TestStoreRunWriteTrackingAndReplicas(t *testing.T) {
	cfg := bulkTestConfig()
	bulk, scalar := pair(t, cfg)
	// Place pages 0..4 from node 0, replicate page 1 on node 2, enable
	// write tracking, then write a run across pages 0..2: the run must
	// collapse the replica and charge the invalidation exactly once.
	drive(bulk, scalar, 0, func(c *CPU) { c.LoadRun(0, 640, 8) })
	for _, m := range []*Machine{bulk, scalar} {
		if !m.PT.Replicate(1, 2) {
			t.Fatal("replicate failed")
		}
		m.PT.SetWriteTracking(true)
	}
	drive(bulk, scalar, 2, func(c *CPU) { c.LoadRun(1024, 128, 8) }) // read via replica
	drive(bulk, scalar, 4, func(c *CPU) { c.StoreRun(512, 256, 8) }) // spans pages 0..2
	if got := bulk.PT.Replicas(1); got != 0 {
		t.Fatalf("replica not collapsed: mask %#x", got)
	}
	if !bulk.PT.Written(1) {
		t.Fatal("write log missed page 1")
	}
	compareMachines(t, bulk, scalar, 64)
	if bulk.PT.Collapses() != scalar.PT.Collapses() {
		t.Errorf("collapses %d (bulk) != %d (scalar)", bulk.PT.Collapses(), scalar.PT.Collapses())
	}
}

func TestArrayRunHelpersChargeAndMove(t *testing.T) {
	cfg := bulkTestConfig()
	m := MustNew(cfg)
	a := m.NewArray("a", 512)
	c := m.CPU(0)
	src := make([]float64, 256)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	a.SetRun(c, 128, src)
	got := a.GetRun(c, 128, 256)
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("element %d: got %g want %g", i, got[i], src[i])
		}
	}
	w := a.MutRun(c, 128, 256)
	for i := range w {
		w[i] *= 2
	}
	if a.Get(c, 130) != 2*src[2] {
		t.Fatalf("MutRun write lost: %g", a.Get(c, 130))
	}
	st := c.Stat()
	if want := uint64(256 + 256 + 256 + 1); st.Accesses != want {
		t.Fatalf("accesses %d, want %d", st.Accesses, want)
	}
	ia := m.NewIntArray("ia", 64)
	iw := ia.MutRun(c, 0, 64)
	for i := range iw {
		iw[i] = int32(i)
	}
	iv := ia.GetRun(c, 0, 64)
	if iv[63] != 63 {
		t.Fatalf("IntArray run: %d", iv[63])
	}
}

func TestRowAndVecIndexHelpers(t *testing.T) {
	m := MustNew(bulkTestConfig())
	a3 := m.NewArray3("a3", 4, 5, 6)
	if a3.Row(2, 3) != a3.Idx(2, 3, 0) {
		t.Errorf("Array3.Row(2,3) = %d, want %d", a3.Row(2, 3), a3.Idx(2, 3, 0))
	}
	a4 := m.NewArray4("a4", 3, 4, 5, 6)
	if a4.Row(1, 2) != a4.Idx(1, 2, 0, 0) {
		t.Errorf("Array4.Row(1,2) = %d, want %d", a4.Row(1, 2), a4.Idx(1, 2, 0, 0))
	}
	if a4.Vec(1, 2, 3) != a4.Idx(1, 2, 3, 0) {
		t.Errorf("Array4.Vec(1,2,3) = %d, want %d", a4.Vec(1, 2, 3), a4.Idx(1, 2, 3, 0))
	}
}

// benchMachine builds the default (paper) machine with one array swept by
// the microbenchmarks.
func benchMachine(scalar bool) (*Machine, *Array) {
	cfg := DefaultConfig()
	cfg.ScalarRuns = scalar
	m := MustNew(cfg)
	return m, m.NewArray("sweep", 1<<16)
}

func benchSweep(b *testing.B, scalar bool) {
	m, a := benchMachine(scalar)
	c := m.CPU(0)
	n := a.Len()
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scalar {
			for j := 0; j < n; j++ {
				c.Load(a.Addr(j))
			}
		} else {
			const chunk = 4096
			for j := 0; j < n; j += chunk {
				c.LoadRun(a.Addr(j), chunk, 8)
			}
		}
	}
	_ = fmt.Sprintf("%d", c.Now()) // keep the clock live
}

// BenchmarkTouchScalar sweeps 64k elements through the per-element ladder.
func BenchmarkTouchScalar(b *testing.B) { benchSweep(b, true) }

// BenchmarkTouchRun sweeps the same elements through the bulk fast path.
func BenchmarkTouchRun(b *testing.B) { benchSweep(b, false) }

// Package vm implements the paged virtual memory of the simulated ccNUMA
// machine: the page table, the four page placement policies evaluated by
// the paper (first-touch, round-robin, random, worst-case/buddy), the
// per-page per-node saturating hardware reference counters of the
// Origin2000, and the page migration mechanics (capacity-constrained, with
// IRIX-style best-effort forwarding, generation bump for lazy TLB
// shootdown, and ping-pong freeze bits used by UPMlib).
package vm

import (
	"fmt"
	"sync/atomic"

	"upmgo/internal/topology"
)

// Policy selects how a page gets a home node.
type Policy int

const (
	// FirstTouch places a page on the node of the processor that first
	// touches it — the IRIX default and the scheme the NAS codes are
	// tuned for.
	FirstTouch Policy = iota
	// RoundRobin stripes pages over nodes by virtual page number
	// (IRIX DSM_PLACEMENT=ROUNDROBIN).
	RoundRobin
	// Random places each page on a pseudo-random node drawn from a
	// seeded hash of the page number, emulating the paper's
	// SIGSEGV-handler experiment with a balanced random spread.
	Random
	// WorstCase places every page on node 0, the allocation a best-fit
	// buddy allocator produces; the paper's worst case.
	WorstCase
)

// String returns the short labels used by the paper's figures.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "ft"
	case RoundRobin:
		return "rr"
	case Random:
		return "rand"
	case WorstCase:
		return "wc"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies lists every placement scheme in the order the paper plots them.
var Policies = []Policy{FirstTouch, RoundRobin, Random, WorstCase}

// MarshalText encodes the policy as its figure label ("ft", "rr", "rand",
// "wc"), so JSON sweep requests and store records read the way the paper
// writes them rather than as bare enum integers.
func (p Policy) MarshalText() ([]byte, error) {
	for _, q := range Policies {
		if p == q {
			return []byte(p.String()), nil
		}
	}
	return nil, fmt.Errorf("vm: cannot encode Policy(%d)", int(p))
}

// UnmarshalText decodes a figure label produced by MarshalText.
func (p *Policy) UnmarshalText(text []byte) error {
	for _, q := range Policies {
		if string(text) == q.String() {
			*p = q
			return nil
		}
	}
	return fmt.Errorf("vm: unknown placement policy %q (want ft, rr, rand or wc)", text)
}

// CounterMax11 is the saturation value of the Origin2000's 11-bit per-node
// reference counters.
const CounterMax11 = 1<<11 - 1

// PageTable maps virtual page numbers to home nodes and carries the
// hardware reference counters. The address space is a single contiguous
// arena starting at page 0; the machine package allocates arrays from it.
//
// Concurrency: Resolve (page faults) and CountMiss run concurrently from
// every simulated CPU and use atomics; Migrate and counter resets must be
// called from quiescent points (barriers or serial sections), which is
// where both migration engines operate.
type PageTable struct {
	topo       topology.Topology
	policy     Policy
	seed       uint64
	counterMax uint32

	home   []int32  // -1 = unmapped
	gen    []uint32 // bumped on every migration (TLB shootdown)
	frozen []uint32 // 1 = UPMlib froze the page (ping-pong damping)
	prev   []int32  // previous home, for ping-pong detection

	// counters[vpn*nodes+node]: accesses (L2 misses) from each node.
	counters []uint32

	// Replication state (see replicate.go): per-page replica bitmasks,
	// the page-level write log, and event counters.
	repl        []uint32
	written     []uint32
	trackWrites bool
	replicas    atomic.Int64
	collapses   atomic.Int64

	// used[node] counts resident pages; capacity is the per-node limit
	// (0 = unlimited). Migrations respect it with best-effort
	// forwarding; initial placement respects it for first-touch only in
	// the sense that a full node overflows to the closest one.
	used     []int64
	capacity int64

	faults     atomic.Int64
	migrations atomic.Int64
}

// Config configures a page table.
type Config struct {
	Pages         int    // size of the arena in pages
	Policy        Policy // initial placement scheme
	Seed          uint64 // seed for Random placement
	CounterBits   int    // hardware counter width; 0 means 11 (Origin2000)
	CapacityPages int64  // per-node page capacity; 0 = unlimited
}

// New builds a page table over topo with the given configuration.
func New(topo topology.Topology, cfg Config) (*PageTable, error) {
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("vm: page count %d invalid", cfg.Pages)
	}
	bits := cfg.CounterBits
	if bits == 0 {
		bits = 11
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("vm: counter width %d invalid", bits)
	}
	n := topo.Nodes()
	pt := &PageTable{
		topo:       topo,
		policy:     cfg.Policy,
		seed:       cfg.Seed,
		counterMax: uint32(1<<bits - 1),
		home:       make([]int32, cfg.Pages),
		gen:        make([]uint32, cfg.Pages),
		frozen:     make([]uint32, cfg.Pages),
		prev:       make([]int32, cfg.Pages),
		counters:   make([]uint32, cfg.Pages*n),
		used:       make([]int64, n),
		capacity:   cfg.CapacityPages,
	}
	for i := range pt.home {
		pt.home[i] = -1
		pt.prev[i] = -1
	}
	return pt, nil
}

// Clone returns a deep copy of the page table — homes, generations,
// freeze bits, ping-pong history, reference counters, replica masks, the
// write log, capacity tallies and event counters — sharing only the
// immutable topology. The copy must be taken at a quiescent point (no
// concurrent Resolve/CountMiss in flight); machine.Machine.Clone
// documents the full snapshot contract.
func (pt *PageTable) Clone() *PageTable {
	n := &PageTable{
		topo:        pt.topo,
		policy:      pt.policy,
		seed:        pt.seed,
		counterMax:  pt.counterMax,
		home:        append([]int32(nil), pt.home...),
		gen:         append([]uint32(nil), pt.gen...),
		frozen:      append([]uint32(nil), pt.frozen...),
		prev:        append([]int32(nil), pt.prev...),
		counters:    append([]uint32(nil), pt.counters...),
		trackWrites: pt.trackWrites,
		used:        append([]int64(nil), pt.used...),
		capacity:    pt.capacity,
	}
	// repl and written are lazily allocated; preserve nil-ness so the
	// clone takes the same allocation paths as the original.
	if pt.repl != nil {
		n.repl = append([]uint32(nil), pt.repl...)
	}
	if pt.written != nil {
		n.written = append([]uint32(nil), pt.written...)
	}
	n.replicas.Store(pt.replicas.Load())
	n.collapses.Store(pt.collapses.Load())
	n.faults.Store(pt.faults.Load())
	n.migrations.Store(pt.migrations.Load())
	return n
}

// Pages returns the arena size in pages.
func (pt *PageTable) Pages() int { return len(pt.home) }

// Nodes returns the node count.
func (pt *PageTable) Nodes() int { return pt.topo.Nodes() }

// CounterMax returns the saturation value of the reference counters.
func (pt *PageTable) CounterMax() uint32 { return pt.counterMax }

// Policy returns the initial placement policy.
func (pt *PageTable) Policy() Policy { return pt.policy }

// splitmix64 hashes x; used for deterministic Random placement so the
// placement of a page does not depend on which CPU faults it first.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// placeFor returns the policy's preferred node for vpn when faulted from
// accessor's node.
func (pt *PageTable) placeFor(vpn uint64, accessor int) int {
	switch pt.policy {
	case FirstTouch:
		return accessor
	case RoundRobin:
		return int(vpn) % pt.topo.Nodes()
	case Random:
		return int(splitmix64(vpn^pt.seed) % uint64(pt.topo.Nodes()))
	case WorstCase:
		return 0
	}
	return accessor
}

// Resolve returns the home node and generation for vpn, faulting the page
// in (placement policy + capacity overflow) if this is its first access
// from any processor. faulted reports whether this call performed the
// fault, so the caller can charge the fault cost.
func (pt *PageTable) Resolve(vpn uint64, accessorNode int) (home int, gen uint32, faulted bool) {
	h := atomic.LoadInt32(&pt.home[vpn])
	if h >= 0 {
		return int(h), atomic.LoadUint32(&pt.gen[vpn]), false
	}
	target := pt.admit(pt.placeFor(vpn, accessorNode))
	if atomic.CompareAndSwapInt32(&pt.home[vpn], -1, int32(target)) {
		pt.faults.Add(1)
		return target, atomic.LoadUint32(&pt.gen[vpn]), true
	}
	// Another CPU faulted the page first; undo our capacity claim.
	atomic.AddInt64(&pt.used[target], -1)
	return int(atomic.LoadInt32(&pt.home[vpn])), atomic.LoadUint32(&pt.gen[vpn]), false
}

// admit charges one page of capacity on the target node, overflowing to
// the closest node with room when the target is full. It returns the node
// actually used.
func (pt *PageTable) admit(target int) int {
	if pt.capacity <= 0 {
		atomic.AddInt64(&pt.used[target], 1)
		return target
	}
	for _, n := range pt.topo.ByDistance(target) {
		if atomic.AddInt64(&pt.used[n], 1) <= pt.capacity {
			return n
		}
		atomic.AddInt64(&pt.used[n], -1)
	}
	// Everything full: best effort keeps the page on the target anyway.
	atomic.AddInt64(&pt.used[target], 1)
	return target
}

// Home returns the current home node of vpn, or -1 if unmapped.
func (pt *PageTable) Home(vpn uint64) int { return int(atomic.LoadInt32(&pt.home[vpn])) }

// Gen returns the current translation generation of vpn.
func (pt *PageTable) Gen(vpn uint64) uint32 { return atomic.LoadUint32(&pt.gen[vpn]) }

// CountMiss records one memory access (an L2 miss) to vpn from the given
// node in the hardware counters, saturating at the counter width.
func (pt *PageTable) CountMiss(vpn uint64, node int) {
	p := &pt.counters[int(vpn)*pt.topo.Nodes()+node]
	for {
		old := atomic.LoadUint32(p)
		if old >= pt.counterMax {
			return
		}
		if atomic.CompareAndSwapUint32(p, old, old+1) {
			return
		}
	}
}

// CountMissN records n memory accesses to vpn from node in one saturating
// update, leaving the counter exactly where n CountMiss calls would: the
// bulk-access path of internal/machine batches every miss a run takes on
// one page into a single call.
func (pt *PageTable) CountMissN(vpn uint64, node int, n uint32) {
	if n == 0 {
		return
	}
	p := &pt.counters[int(vpn)*pt.topo.Nodes()+node]
	for {
		old := atomic.LoadUint32(p)
		if old >= pt.counterMax {
			return
		}
		next := old + n
		if next > pt.counterMax || next < old {
			next = pt.counterMax
		}
		if atomic.CompareAndSwapUint32(p, old, next) {
			return
		}
	}
}

// Counters copies the reference-counter row of vpn into dst (len >= nodes)
// and returns it. Values are already saturated.
func (pt *PageTable) Counters(vpn uint64, dst []uint32) []uint32 {
	n := pt.topo.Nodes()
	if dst == nil {
		dst = make([]uint32, n)
	}
	base := int(vpn) * n
	for i := 0; i < n; i++ {
		dst[i] = atomic.LoadUint32(&pt.counters[base+i])
	}
	return dst[:n]
}

// ResetCounters zeroes the counter row of vpn.
func (pt *PageTable) ResetCounters(vpn uint64) {
	base := int(vpn) * pt.topo.Nodes()
	for i := 0; i < pt.topo.Nodes(); i++ {
		atomic.StoreUint32(&pt.counters[base+i], 0)
	}
}

// DecayCounters halves the counter row of vpn (the aging step kernel
// engines apply so that stale history does not pin migration decisions,
// and so saturated counters become informative again).
func (pt *PageTable) DecayCounters(vpn uint64) {
	base := int(vpn) * pt.topo.Nodes()
	for i := 0; i < pt.topo.Nodes(); i++ {
		p := &pt.counters[base+i]
		atomic.StoreUint32(p, atomic.LoadUint32(p)/2)
	}
}

// ResetAllCounters zeroes every counter.
func (pt *PageTable) ResetAllCounters() {
	for i := range pt.counters {
		atomic.StoreUint32(&pt.counters[i], 0)
	}
}

// MigrateResult describes the outcome of a migration request.
type MigrateResult struct {
	Moved bool // page changed node
	From  int  // node the page was on when the request ran
	Dest  int  // node the page ended on (forwarding may divert it)
}

// Migrate moves vpn to the requested node, subject to the capacity
// constraint: a full target forwards the page to the closest node with
// room (the IRIX best-effort strategy). Moving a page bumps its generation
// so stale TLB entries miss, and records ping-pong history for Freeze
// decisions. Migrate must run at a quiescent point.
func (pt *PageTable) Migrate(vpn uint64, to int) MigrateResult {
	cur := int(atomic.LoadInt32(&pt.home[vpn]))
	if cur < 0 || to == cur {
		return MigrateResult{Moved: false, From: cur, Dest: cur}
	}
	if atomic.LoadUint32(&pt.frozen[vpn]) != 0 {
		return MigrateResult{Moved: false, From: cur, Dest: cur}
	}
	// The move frees the source node first; best-effort forwarding may
	// then land the page back on the source, which is a no-op.
	atomic.AddInt64(&pt.used[cur], -1)
	dest := pt.admit(to)
	if dest == cur {
		return MigrateResult{Moved: false, From: cur, Dest: cur}
	}
	pt.prev[vpn] = int32(cur)
	atomic.StoreInt32(&pt.home[vpn], int32(dest))
	atomic.AddUint32(&pt.gen[vpn], 1)
	pt.migrations.Add(1)
	return MigrateResult{Moved: true, From: cur, Dest: dest}
}

// PrevHome returns the node the page lived on before its last migration,
// or -1 if it never moved.
func (pt *PageTable) PrevHome(vpn uint64) int { return int(pt.prev[vpn]) }

// Freeze pins vpn: subsequent Migrate calls refuse to move it. UPMlib
// freezes pages that bounce between two nodes in consecutive iterations.
func (pt *PageTable) Freeze(vpn uint64) { atomic.StoreUint32(&pt.frozen[vpn], 1) }

// Unfreeze releases a frozen page.
func (pt *PageTable) Unfreeze(vpn uint64) { atomic.StoreUint32(&pt.frozen[vpn], 0) }

// Frozen reports whether vpn is frozen.
func (pt *PageTable) Frozen(vpn uint64) bool { return atomic.LoadUint32(&pt.frozen[vpn]) != 0 }

// Faults returns the number of page faults taken so far.
func (pt *PageTable) Faults() int64 { return pt.faults.Load() }

// Migrations returns the number of successful page moves so far.
func (pt *PageTable) Migrations() int64 { return pt.migrations.Load() }

// FastForwardCounters advances the page table's monotone event counters
// without simulating the events behind them: the steady-state
// fast-forward engine adds k-iteration multiples of the per-iteration
// deltas it proved constant. Homes, generations, freeze bits and the
// reference-counter rows are left exactly as they are — at a steady
// iteration boundary they are on a period-one orbit, so their current
// values are also their values after any number of further iterations.
func (pt *PageTable) FastForwardCounters(dFaults, dMigrations, dReplicas, dCollapses int64) {
	pt.faults.Add(dFaults)
	pt.migrations.Add(dMigrations)
	pt.replicas.Add(dReplicas)
	pt.collapses.Add(dCollapses)
}

// StateHash returns an FNV-1a digest of the migration-relevant page-table
// state over the first npages pages: every page's home node and, when
// withCounters is set, its reference-counter row. The steady-state
// detector folds it into the per-iteration fingerprint — equal hashes at
// consecutive iteration boundaries mean the state a migration engine
// bases future decisions on is stationary, which is what licenses
// extrapolating "no further migrations" to the remaining iterations.
// Counter rows are included only when an attached engine still reads them
// (the kernel engine's competitive scan); under an inactive or absent
// engine the rows grow monotonically and would never repeat.
func (pt *PageTable) StateHash(npages uint64, withCounters bool) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := pt.topo.Nodes()
	for vpn := uint64(0); vpn < npages; vpn++ {
		h ^= uint64(uint32(atomic.LoadInt32(&pt.home[vpn])))
		h *= prime64
		if withCounters {
			base := int(vpn) * n
			for i := 0; i < n; i++ {
				h ^= uint64(atomic.LoadUint32(&pt.counters[base+i]))
				h *= prime64
			}
		}
	}
	return h
}

// Used returns the number of pages resident on each node.
func (pt *PageTable) Used() []int64 {
	out := make([]int64, len(pt.used))
	for i := range out {
		out[i] = atomic.LoadInt64(&pt.used[i])
	}
	return out
}

// HomeHistogram returns how many mapped pages live on each node; the
// placement tests use it to check balance properties.
func (pt *PageTable) HomeHistogram() []int {
	h := make([]int, pt.topo.Nodes())
	for vpn := range pt.home {
		if n := atomic.LoadInt32(&pt.home[vpn]); n >= 0 {
			h[n]++
		}
	}
	return h
}

package vm

import (
	"testing"
	"testing/quick"

	"upmgo/internal/topology"
)

func TestWriteTrackingLifecycle(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	if pt.WriteTracking() {
		t.Error("tracking on by default")
	}
	pt.SetWriteTracking(true)
	if !pt.WriteTracking() {
		t.Error("tracking not enabled")
	}
	if pt.Written(3) {
		t.Error("page written before any write")
	}
	pt.MarkWritten(3)
	if !pt.Written(3) {
		t.Error("write not recorded")
	}
	pt.ResetWritten()
	if pt.Written(3) {
		t.Error("write log survived reset")
	}
	pt.SetWriteTracking(false)
	if pt.WriteTracking() {
		t.Error("tracking not disabled")
	}
}

func TestReplicateAndNearestCopy(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	pt.Resolve(0, 0) // home node 0
	if !pt.Replicate(0, 7) {
		t.Fatal("replication refused")
	}
	if pt.Replicate(0, 7) {
		t.Error("duplicate replica accepted")
	}
	if pt.Replicate(0, 0) {
		t.Error("replication onto the home accepted")
	}
	if !pt.HasReplicas(0) {
		t.Error("HasReplicas false")
	}
	// From node 7 the replica itself is nearest; from node 1 the home.
	if got := pt.NearestCopy(0, 7); got != 7 {
		t.Errorf("NearestCopy(from 7) = %d, want 7", got)
	}
	if got := pt.NearestCopy(0, 1); got != 0 {
		t.Errorf("NearestCopy(from 1) = %d, want 0", got)
	}
	// From node 6 (110): home 0 is 2 hops, replica 7 (111) is 1 hop.
	if got := pt.NearestCopy(0, 6); got != 7 {
		t.Errorf("NearestCopy(from 6) = %d, want 7", got)
	}
	if pt.ReplicaCreations() != 1 {
		t.Errorf("ReplicaCreations = %d, want 1", pt.ReplicaCreations())
	}
}

func TestReplicateUnmappedPageRefused(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	if pt.Replicate(2, 3) {
		t.Error("replicated an unmapped page")
	}
}

func TestCollapseReplicas(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	pt.Resolve(1, 0)
	pt.Replicate(1, 3)
	pt.Replicate(1, 5)
	gen := pt.Gen(1)
	used := pt.Used()
	if used[3] != 1 || used[5] != 1 {
		t.Fatalf("replica capacity not charged: %v", used)
	}
	if n := pt.CollapseReplicas(1); n != 2 {
		t.Fatalf("collapsed %d copies, want 2", n)
	}
	if pt.HasReplicas(1) {
		t.Error("replicas survived collapse")
	}
	if pt.Gen(1) != gen+1 {
		t.Error("collapse did not bump the generation")
	}
	used = pt.Used()
	if used[3] != 0 || used[5] != 0 {
		t.Errorf("replica capacity not released: %v", used)
	}
	if pt.Collapses() != 1 {
		t.Errorf("Collapses = %d, want 1", pt.Collapses())
	}
	// Collapsing again is a no-op.
	if n := pt.CollapseReplicas(1); n != 0 {
		t.Errorf("second collapse dropped %d", n)
	}
}

func TestMarkWrittenCollapses(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	pt.SetWriteTracking(true)
	pt.Resolve(0, 0)
	pt.Replicate(0, 6)
	if n := pt.MarkWritten(0); n != 1 {
		t.Errorf("MarkWritten dropped %d copies, want 1", n)
	}
	if pt.HasReplicas(0) {
		t.Error("write left replicas alive")
	}
}

func TestReplicateCapacity(t *testing.T) {
	topo := topology.MustHypercube(8)
	pt, err := New(topo, Config{Pages: 4, Policy: FirstTouch, CapacityPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	pt.Resolve(0, 0)
	pt.Resolve(1, 2) // node 2 now full
	if pt.Replicate(0, 2) {
		t.Error("replication onto a full node accepted")
	}
	if !pt.Replicate(0, 3) {
		t.Error("replication onto a free node refused")
	}
}

// Property: NearestCopy never returns a node farther than the home.
func TestNearestCopyNeverWorse(t *testing.T) {
	topo := topology.MustHypercube(8)
	pt, _ := New(topo, Config{Pages: 1, Policy: FirstTouch})
	pt.Resolve(0, 0)
	pt.Replicate(0, 5)
	pt.Replicate(0, 6)
	f := func(from uint8) bool {
		n := int(from) % 8
		return topo.Hops(n, pt.NearestCopy(0, n)) <= topo.Hops(n, pt.Home(0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package vm

import (
	"testing"
	"testing/quick"

	"upmgo/internal/topology"
)

func newPT(t *testing.T, pages int, pol Policy) *PageTable {
	t.Helper()
	pt, err := New(topology.MustHypercube(8), Config{Pages: pages, Policy: pol, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestNewRejectsBadConfig(t *testing.T) {
	topo := topology.MustHypercube(8)
	if _, err := New(topo, Config{Pages: 0}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := New(topo, Config{Pages: 4, CounterBits: 40}); err == nil {
		t.Error("40-bit counters accepted")
	}
}

func TestFirstTouchPlacesOnAccessor(t *testing.T) {
	pt := newPT(t, 16, FirstTouch)
	home, _, faulted := pt.Resolve(3, 5)
	if !faulted || home != 5 {
		t.Errorf("Resolve = (%d,%v), want (5,true)", home, faulted)
	}
	// Second access from elsewhere keeps the home.
	home, _, faulted = pt.Resolve(3, 1)
	if faulted || home != 5 {
		t.Errorf("second Resolve = (%d,%v), want (5,false)", home, faulted)
	}
	if pt.Faults() != 1 {
		t.Errorf("faults = %d, want 1", pt.Faults())
	}
}

func TestRoundRobinStripes(t *testing.T) {
	pt := newPT(t, 32, RoundRobin)
	for vpn := uint64(0); vpn < 32; vpn++ {
		home, _, _ := pt.Resolve(vpn, 7) // accessor must be irrelevant
		if home != int(vpn)%8 {
			t.Errorf("vpn %d placed on %d, want %d", vpn, home, vpn%8)
		}
	}
}

func TestRandomIsDeterministicAndBalanced(t *testing.T) {
	const pages = 4096
	pt1 := newPT(t, pages, Random)
	pt2 := newPT(t, pages, Random)
	for vpn := uint64(0); vpn < pages; vpn++ {
		h1, _, _ := pt1.Resolve(vpn, int(vpn)%8)
		h2, _, _ := pt2.Resolve(vpn, int(7-vpn%8)) // different accessors
		if h1 != h2 {
			t.Fatalf("random placement depends on accessor: vpn %d -> %d vs %d", vpn, h1, h2)
		}
	}
	hist := pt1.HomeHistogram()
	for n, c := range hist {
		// Expect pages/8 = 512 per node; allow generous imbalance.
		if c < 350 || c > 700 {
			t.Errorf("node %d holds %d pages, want ~512 (unbalanced random)", n, c)
		}
	}
}

func TestRandomSeedChangesPlacement(t *testing.T) {
	topo := topology.MustHypercube(8)
	a, _ := New(topo, Config{Pages: 256, Policy: Random, Seed: 1})
	b, _ := New(topo, Config{Pages: 256, Policy: Random, Seed: 2})
	diff := 0
	for vpn := uint64(0); vpn < 256; vpn++ {
		ha, _, _ := a.Resolve(vpn, 0)
		hb, _, _ := b.Resolve(vpn, 0)
		if ha != hb {
			diff++
		}
	}
	if diff == 0 {
		t.Error("two seeds produced identical random placements")
	}
}

func TestWorstCasePlacesEverythingOnNode0(t *testing.T) {
	pt := newPT(t, 64, WorstCase)
	for vpn := uint64(0); vpn < 64; vpn++ {
		if home, _, _ := pt.Resolve(vpn, int(vpn)%8); home != 0 {
			t.Fatalf("vpn %d placed on node %d, want 0", vpn, home)
		}
	}
	if hist := pt.HomeHistogram(); hist[0] != 64 {
		t.Errorf("node 0 holds %d pages, want 64", hist[0])
	}
}

func TestCountersSaturateAt11Bits(t *testing.T) {
	pt := newPT(t, 4, FirstTouch)
	pt.Resolve(0, 0)
	for i := 0; i < CounterMax11+500; i++ {
		pt.CountMiss(0, 3)
	}
	row := pt.Counters(0, nil)
	if row[3] != CounterMax11 {
		t.Errorf("counter = %d, want saturation at %d", row[3], CounterMax11)
	}
	if row[0] != 0 {
		t.Errorf("untouched counter = %d, want 0", row[0])
	}
}

func TestConfigurableCounterWidth(t *testing.T) {
	pt, err := New(topology.MustHypercube(8), Config{Pages: 2, CounterBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pt.CountMiss(1, 2)
	}
	if row := pt.Counters(1, nil); row[2] != 15 {
		t.Errorf("4-bit counter = %d, want 15", row[2])
	}
}

func TestResetCounters(t *testing.T) {
	pt := newPT(t, 4, FirstTouch)
	pt.CountMiss(2, 1)
	pt.ResetCounters(2)
	if row := pt.Counters(2, nil); row[1] != 0 {
		t.Errorf("counter = %d after reset, want 0", row[1])
	}
	pt.CountMiss(1, 0)
	pt.CountMiss(3, 7)
	pt.ResetAllCounters()
	if pt.Counters(1, nil)[0] != 0 || pt.Counters(3, nil)[7] != 0 {
		t.Error("ResetAllCounters left residue")
	}
}

func TestMigrateMovesAndBumpsGeneration(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	pt.Resolve(5, 2)
	g0 := pt.Gen(5)
	res := pt.Migrate(5, 6)
	if !res.Moved || res.Dest != 6 {
		t.Fatalf("Migrate = %+v, want move to 6", res)
	}
	if pt.Home(5) != 6 {
		t.Errorf("home = %d, want 6", pt.Home(5))
	}
	if pt.Gen(5) != g0+1 {
		t.Errorf("generation = %d, want %d", pt.Gen(5), g0+1)
	}
	if pt.PrevHome(5) != 2 {
		t.Errorf("prev home = %d, want 2", pt.PrevHome(5))
	}
	if pt.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", pt.Migrations())
	}
}

func TestMigrateNoopCases(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	if res := pt.Migrate(1, 3); res.Moved {
		t.Error("migrated an unmapped page")
	}
	pt.Resolve(1, 3)
	if res := pt.Migrate(1, 3); res.Moved {
		t.Error("migrated a page onto its own home")
	}
	if pt.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0", pt.Migrations())
	}
}

func TestFreezeBlocksMigration(t *testing.T) {
	pt := newPT(t, 8, FirstTouch)
	pt.Resolve(2, 0)
	pt.Freeze(2)
	if res := pt.Migrate(2, 5); res.Moved {
		t.Error("frozen page migrated")
	}
	if !pt.Frozen(2) {
		t.Error("Frozen() = false after Freeze")
	}
	pt.Unfreeze(2)
	if res := pt.Migrate(2, 5); !res.Moved {
		t.Error("unfrozen page refused to migrate")
	}
}

func TestCapacityForwarding(t *testing.T) {
	topo := topology.MustHypercube(8)
	pt, err := New(topo, Config{Pages: 16, Policy: WorstCase, CapacityPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// WorstCase wants all 16 pages on node 0, but only 4 fit; the rest
	// overflow to nearby nodes.
	for vpn := uint64(0); vpn < 16; vpn++ {
		pt.Resolve(vpn, 3)
	}
	used := pt.Used()
	if used[0] != 4 {
		t.Errorf("node 0 holds %d pages, want its capacity 4", used[0])
	}
	var total int64
	for _, u := range used {
		if u > 4 {
			t.Errorf("a node exceeds capacity: %v", used)
		}
		total += u
	}
	if total != 16 {
		t.Errorf("total resident pages = %d, want 16", total)
	}
}

func TestMigrateRespectsCapacityWithForwarding(t *testing.T) {
	topo := topology.MustHypercube(8)
	pt, err := New(topo, Config{Pages: 9, Policy: RoundRobin, CapacityPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	for vpn := uint64(0); vpn < 9; vpn++ {
		pt.Resolve(vpn, 0) // one page per node, two on node 0
	}
	// Node 0 is full: migrating vpn 7 (home node 7) to node 0 must
	// forward it to the closest node to 0 with room (a 1-hop neighbour).
	res := pt.Migrate(7, 0)
	if !res.Moved {
		t.Fatal("migration refused outright; want best-effort forwarding")
	}
	if res.Dest == 0 {
		t.Error("page landed on a full node")
	}
	if pt.topoHops(0, res.Dest) != 1 {
		t.Errorf("forwarded to node %d at distance %d from target, want a 1-hop neighbour", res.Dest, pt.topoHops(0, res.Dest))
	}
}

// topoHops is a test helper exposing hop distance via the embedded topology.
func (pt *PageTable) topoHops(a, b int) int { return pt.topo.Hops(a, b) }

// Property: after any sequence of resolves, every mapped page has a valid
// home node and the used[] histogram matches the home[] histogram.
func TestUsedMatchesHomes(t *testing.T) {
	f := func(seed uint64, accessors []uint8) bool {
		pt, err := New(topology.MustHypercube(4), Config{Pages: 32, Policy: Random, Seed: seed})
		if err != nil {
			return false
		}
		for i, a := range accessors {
			pt.Resolve(uint64(i%32), int(a)%4)
		}
		hist := pt.HomeHistogram()
		used := pt.Used()
		for n := range hist {
			if int64(hist[n]) != used[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{FirstTouch: "ft", RoundRobin: "rr", Random: "rand", WorstCase: "wc"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy has empty string")
	}
}

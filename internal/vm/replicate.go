package vm

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Read-only page replication. The paper notes that "read-only pages can be
// replicated in multiple nodes" — the classic companion of page migration
// on the pre-ccNUMA machines it cites — but UPMlib as published only
// migrates. This file supplies the mechanism as an extension: a page may
// have read copies on several nodes; reads are served by the closest copy;
// a write collapses every replica (write-invalidate at page granularity,
// with the usual generation bump standing in for the TLB shootdown).
//
// The replica set is a per-page node bitmask, so replication supports up
// to 32 nodes; the machines in this repository have at most 8.

// MaxReplicationNodes is the largest machine (in nodes) that supports
// replication.
const MaxReplicationNodes = 32

// SetWriteTracking enables or disables the page-level write log that
// replication policies use to find read-only pages. Resetting the log is
// the caller's job (ResetWritten).
func (pt *PageTable) SetWriteTracking(on bool) {
	if on && pt.topo.Nodes() > MaxReplicationNodes {
		panic(fmt.Sprintf("vm: write tracking/replication supports at most %d nodes, machine has %d",
			MaxReplicationNodes, pt.topo.Nodes()))
	}
	if on && pt.written == nil {
		pt.written = make([]uint32, len(pt.home))
	}
	pt.trackWrites = on
}

// WriteTracking reports whether the write log is active.
func (pt *PageTable) WriteTracking() bool { return pt.trackWrites }

// MarkWritten records a write to vpn (called by the machine on stores when
// tracking is on). It also collapses any replicas, returning the number of
// copies dropped so the caller can charge the invalidation.
func (pt *PageTable) MarkWritten(vpn uint64) (dropped int) {
	if pt.written != nil && atomic.LoadUint32(&pt.written[vpn]) == 0 {
		atomic.StoreUint32(&pt.written[vpn], 1)
	}
	if pt.repl != nil && atomic.LoadUint32(&pt.repl[vpn]) != 0 {
		return pt.CollapseReplicas(vpn)
	}
	return 0
}

// Written reports whether vpn has been written since the last reset.
func (pt *PageTable) Written(vpn uint64) bool {
	return pt.written != nil && atomic.LoadUint32(&pt.written[vpn]) != 0
}

// ResetWritten clears the write log.
func (pt *PageTable) ResetWritten() {
	for i := range pt.written {
		atomic.StoreUint32(&pt.written[i], 0)
	}
}

// Replicate adds a read copy of vpn on node, charging one page of node
// capacity (with the same best-effort forwarding as migrations — a full
// node simply fails the replication). It reports whether a copy was
// created. Replicating onto the home node is a no-op.
func (pt *PageTable) Replicate(vpn uint64, node int) bool {
	if pt.topo.Nodes() > MaxReplicationNodes {
		panic("vm: replication unsupported on machines this large")
	}
	home := int(atomic.LoadInt32(&pt.home[vpn]))
	if home < 0 || node == home {
		return false
	}
	if pt.repl == nil {
		pt.repl = make([]uint32, len(pt.home))
	}
	bit := uint32(1) << uint(node)
	if atomic.LoadUint32(&pt.repl[vpn])&bit != 0 {
		return false // already replicated there
	}
	if pt.capacity > 0 {
		if atomic.AddInt64(&pt.used[node], 1) > pt.capacity {
			atomic.AddInt64(&pt.used[node], -1)
			return false
		}
	} else {
		atomic.AddInt64(&pt.used[node], 1)
	}
	for {
		old := atomic.LoadUint32(&pt.repl[vpn])
		if atomic.CompareAndSwapUint32(&pt.repl[vpn], old, old|bit) {
			pt.replicas.Add(1)
			return true
		}
	}
}

// Replicas returns the replica bitmask of vpn (home not included).
func (pt *PageTable) Replicas(vpn uint64) uint32 {
	if pt.repl == nil {
		return 0
	}
	return atomic.LoadUint32(&pt.repl[vpn])
}

// HasReplicas reports whether vpn has any read copies.
func (pt *PageTable) HasReplicas(vpn uint64) bool { return pt.Replicas(vpn) != 0 }

// NearestCopy returns the node closest to from that holds vpn — the home
// or any replica.
func (pt *PageTable) NearestCopy(vpn uint64, from int) int {
	home := int(atomic.LoadInt32(&pt.home[vpn]))
	mask := pt.Replicas(vpn)
	if mask == 0 || home < 0 {
		return home
	}
	best, bestHops := home, pt.topo.Hops(from, home)
	for m := mask; m != 0; m &= m - 1 {
		n := bits.TrailingZeros32(m)
		if h := pt.topo.Hops(from, n); h < bestHops {
			best, bestHops = n, h
		}
	}
	return best
}

// CollapseReplicas drops every read copy of vpn (a write-invalidate),
// bumps the page generation so stale read mappings miss, and returns the
// number of copies dropped.
func (pt *PageTable) CollapseReplicas(vpn uint64) int {
	if pt.repl == nil {
		return 0
	}
	mask := atomic.SwapUint32(&pt.repl[vpn], 0)
	if mask == 0 {
		return 0
	}
	n := bits.OnesCount32(mask)
	for m := mask; m != 0; m &= m - 1 {
		atomic.AddInt64(&pt.used[bits.TrailingZeros32(m)], -1)
	}
	atomic.AddUint32(&pt.gen[vpn], 1)
	pt.collapses.Add(1)
	return n
}

// ReplicaCount returns the number of live replica copies created so far
// minus none dropped — i.e. cumulative creations; Collapses counts
// write-invalidation events.
func (pt *PageTable) ReplicaCreations() int64 { return pt.replicas.Load() }

// Collapses returns the number of write-invalidation events.
func (pt *PageTable) Collapses() int64 { return pt.collapses.Load() }

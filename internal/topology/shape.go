package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultExtraPerHopPS is the per-hop-unit extra memory latency a parsed
// (non-cube) shape assigns to its levels: 235 ns, the Origin2000's
// measured one-hop increment (564 − 329 ns from Table 1). A level with
// hop weight w contributes w × this on top of the local latency.
const DefaultExtraPerHopPS = 235_000

// Shape is a parsed machine shape: the node levels of a hierarchy plus
// the CPUs per node. The grammar is
//
//	[cube:]A1xA2x...xAk
//
// with k >= 2 components: the last is CPUs per node, the rest are level
// arities outermost first ("4x2x8" = 4 sockets × 2 dies of one node each,
// 8 CPUs per node). Hop weights default to 1 at the innermost node level
// and double outward, so every level subset has a distinct distance; each
// level carries hop × DefaultExtraPerHopPS of extra latency. The "cube:"
// prefix zeroes the extras and makes every level unit-hop — the flat
// distance semantics of the legacy hypercube — so "cube:2x2x2" is the
// paper's 4-node class-S machine expressed as a hierarchy. Preset names
// (see Presets) parse to their spec.
type Shape struct {
	// Levels are the node levels, outermost first.
	Levels []Level
	// CPUsPerNode is the innermost fan-out, consumed by the machine
	// layer rather than the topology.
	CPUsPerNode int
	// Cube records the "cube:" prefix: unit hops, no extra latency.
	Cube bool
}

// Presets maps mnemonic shape names (case-insensitive in ParseShape) to
// their spec. origin is the paper's 8-node 16-CPU Origin2000; hier64/128/
// 256 are the modern multi-socket shapes the scaling sweeps target.
var Presets = map[string]string{
	"origin":  "cube:2x2x2x2",
	"hier64":  "4x2x8",
	"hier128": "4x4x8",
	"hier256": "8x4x8",
}

// levelNames names k node levels outermost first from the conventional
// tiers of a modern machine.
func levelNames(k int) []string {
	all := []string{"rack", "board", "socket", "die"}
	if k <= len(all) {
		return all[len(all)-k:]
	}
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("L%d", i)
	}
	return out
}

// ParseShape parses a shape string or preset name.
func ParseShape(s string) (Shape, error) {
	spec := strings.TrimSpace(s)
	if p, ok := Presets[strings.ToLower(spec)]; ok {
		spec = p
	}
	var sh Shape
	if rest, ok := strings.CutPrefix(spec, "cube:"); ok {
		sh.Cube = true
		spec = rest
	}
	parts := strings.Split(spec, "x")
	if len(parts) < 2 {
		return Shape{}, fmt.Errorf("topology: shape %q needs at least two components (levels then CPUs per node)", s)
	}
	arities := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return Shape{}, fmt.Errorf("topology: shape %q: component %q is not a positive integer", s, p)
		}
		arities[i] = v
	}
	sh.CPUsPerNode = arities[len(arities)-1]
	arities = arities[:len(arities)-1]
	nodes := 1
	for _, a := range arities {
		if nodes > MaxHierarchyNodes/a {
			return Shape{}, fmt.Errorf("topology: shape %q exceeds %d nodes", s, MaxHierarchyNodes)
		}
		nodes *= a
	}
	names := levelNames(len(arities))
	sh.Levels = make([]Level, len(arities))
	hop := 1
	for i := len(arities) - 1; i >= 0; i-- {
		lv := Level{Name: names[i], Arity: arities[i], Hop: hop}
		if !sh.Cube {
			lv.ExtraPS = int64(hop) * DefaultExtraPerHopPS
			hop *= 2
		}
		sh.Levels[i] = lv
	}
	return sh, nil
}

// String renders the canonical shape spec; ParseShape(sh.String()) is
// identity for every shape ParseShape produces. Fingerprints embed this
// form, so equivalent spellings of one shape collide in the caches.
func (sh Shape) String() string {
	var b strings.Builder
	if sh.Cube {
		b.WriteString("cube:")
	}
	for _, lv := range sh.Levels {
		fmt.Fprintf(&b, "%dx", lv.Arity)
	}
	fmt.Fprintf(&b, "%d", sh.CPUsPerNode)
	return b.String()
}

// NodeCount returns the product of the level arities.
func (sh Shape) NodeCount() int {
	n := 1
	for _, lv := range sh.Levels {
		n *= lv.Arity
	}
	return n
}

// CPUCount returns NodeCount × CPUsPerNode.
func (sh Shape) CPUCount() int { return sh.NodeCount() * sh.CPUsPerNode }

// Build constructs the Hierarchy for the node levels.
func (sh Shape) Build() (*Hierarchy, error) { return NewHierarchy(sh.Levels) }

// CubeEquivalent reports whether the shape is indistinguishable from the
// legacy hypercube machine with the given node and CPU counts: a cube
// shape (unit hops, no extras) of all-binary levels with matching counts
// has exactly the Hamming distance metric, the same ByDistance orders and
// the same ladder, so a run on it is bit-identical to the hypercube path.
// Fingerprinting canonicalises such shapes away, keeping every legacy
// cache entry and store record valid.
func (sh Shape) CubeEquivalent(nodes, cpusPerNode int) bool {
	if !sh.Cube || sh.CPUsPerNode != cpusPerNode || sh.NodeCount() != nodes {
		return false
	}
	for _, lv := range sh.Levels {
		if lv.Arity != 2 || lv.Hop != 1 || lv.ExtraPS != 0 {
			return false
		}
	}
	return true
}

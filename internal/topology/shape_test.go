package topology

import "testing"

func TestParseShape(t *testing.T) {
	sh, err := ParseShape("4x2x8")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Cube {
		t.Error("plain shape parsed as cube")
	}
	if sh.CPUsPerNode != 8 || sh.NodeCount() != 8 || sh.CPUCount() != 64 {
		t.Errorf("4x2x8: cpus=%d nodes=%d total=%d, want 8/8/64", sh.CPUsPerNode, sh.NodeCount(), sh.CPUCount())
	}
	// Outermost first, hops doubling outward, extras proportional.
	want := []Level{
		{Name: "socket", Arity: 4, Hop: 2, ExtraPS: 2 * DefaultExtraPerHopPS},
		{Name: "die", Arity: 2, Hop: 1, ExtraPS: DefaultExtraPerHopPS},
	}
	for i, lv := range sh.Levels {
		if lv != want[i] {
			t.Errorf("level %d = %+v, want %+v", i, lv, want[i])
		}
	}
	if sh.String() != "4x2x8" {
		t.Errorf("String() = %q, want 4x2x8", sh.String())
	}
}

func TestParseShapeCube(t *testing.T) {
	sh, err := ParseShape("cube:2x2x2")
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Cube || sh.NodeCount() != 4 || sh.CPUsPerNode != 2 {
		t.Fatalf("cube:2x2x2 parsed as %+v", sh)
	}
	for _, lv := range sh.Levels {
		if lv.Hop != 1 || lv.ExtraPS != 0 {
			t.Errorf("cube level %+v, want unit hop and no extras", lv)
		}
	}
	if sh.String() != "cube:2x2x2" {
		t.Errorf("String() = %q", sh.String())
	}
	if !sh.CubeEquivalent(4, 2) {
		t.Error("cube:2x2x2 not equivalent to 4 nodes x 2 CPUs")
	}
	for _, c := range []struct{ n, c int }{{8, 2}, {4, 4}} {
		if sh.CubeEquivalent(c.n, c.c) {
			t.Errorf("cube:2x2x2 claimed equivalent to %d nodes x %d CPUs", c.n, c.c)
		}
	}
}

func TestParseShapePresets(t *testing.T) {
	cases := []struct {
		name         string
		nodes, total int
	}{
		{"origin", 8, 16},
		{"hier64", 8, 64},
		{"hier128", 16, 128},
		{"HIER256", 32, 256}, // presets are case-insensitive
	}
	for _, c := range cases {
		sh, err := ParseShape(c.name)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", c.name, err)
		}
		if sh.NodeCount() != c.nodes || sh.CPUCount() != c.total {
			t.Errorf("%s: %d nodes / %d CPUs, want %d/%d", c.name, sh.NodeCount(), sh.CPUCount(), c.nodes, c.total)
		}
		if _, err := sh.Build(); err != nil {
			t.Errorf("%s: Build: %v", c.name, err)
		}
	}
	// origin is the paper's machine expressed as a hierarchy.
	sh, _ := ParseShape("origin")
	if !sh.CubeEquivalent(8, 2) {
		t.Error("origin preset not cube-equivalent to the default machine")
	}
}

func TestParseShapeRoundTrip(t *testing.T) {
	for _, s := range []string{"4x2x8", "cube:2x2x2", "8x4x8", "2x2x2x2x1"} {
		sh, err := ParseShape(s)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", s, err)
		}
		again, err := ParseShape(sh.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", sh.String(), err)
		}
		if again.String() != sh.String() {
			t.Errorf("round trip %q -> %q -> %q", s, sh.String(), again.String())
		}
	}
}

func TestParseShapeErrors(t *testing.T) {
	for _, s := range []string{"", "8", "0x2", "2x-1", "ax2", "cube:", "2xx2", "64x64x1"} {
		if _, err := ParseShape(s); err == nil {
			t.Errorf("ParseShape(%q) succeeded, want error", s)
		}
	}
}

func TestLevelNamesDeep(t *testing.T) {
	sh, err := ParseShape("2x2x2x2x2x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Levels) != 5 {
		t.Fatalf("got %d levels, want 5", len(sh.Levels))
	}
	for i, lv := range sh.Levels {
		want := []string{"L0", "L1", "L2", "L3", "L4"}[i]
		if lv.Name != want {
			t.Errorf("level %d name %q, want %q", i, lv.Name, want)
		}
	}
}

package topology

import "fmt"

// Topology is the interconnect surface the memory system consumes. The
// simulator needs only the hop distance between two nodes (indexing the
// latency ladder), the closest-node order for best-effort page forwarding,
// and — for display and ladder derivation — the level structure. Hypercube
// and Hierarchy both implement it; Machine holds one.
type Topology interface {
	// Nodes returns the number of memory nodes.
	Nodes() int
	// Hops returns the network distance between nodes a and b; 0 for
	// a == b. Implementations panic on out-of-range ids, because a bad
	// node id always indicates memory-system corruption upstream.
	Hops(a, b int) int
	// Distance is Hops under its metric name. Hierarchical topologies
	// serve it from the cached per-level distance matrix.
	Distance(a, b int) int
	// Neighbors returns the node ids adjacent to a (distance equal to
	// one level's hop contribution), nearest level first.
	Neighbors(a int) []int
	// ByDistance returns all nodes ordered by increasing distance from
	// a, ties broken by ascending node id; the first element is a.
	ByDistance(a int) []int
	// MaxHops returns the network diameter.
	MaxHops() int
	// Levels returns the level structure, outermost first. For a
	// hypercube each dimension is a binary unit-hop level.
	Levels() []Level
}

// Level is one tier of a hierarchical NUMA machine (a rack, board, socket
// or die). A node id decomposes into one coordinate digit per level,
// outermost level first; two nodes that differ in a level's digit pay that
// level's Hop contribution once, regardless of how far the digits are
// apart (crossing a socket boundary costs the same whichever socket you
// land in).
type Level struct {
	// Name labels the level in ladders and shape strings ("socket").
	Name string
	// Arity is how many children the level fans out to (>= 1).
	Arity int
	// Hop is the distance contribution paid when two nodes differ at
	// this level (>= 1). The default shape grammar doubles it outward
	// (1, 2, 4, ...) so every level subset has a distinct distance.
	Hop int
	// ExtraPS is the extra memory latency in picoseconds charged on top
	// of the local ladder entry when an access crosses this level. Zero
	// everywhere means the machine keeps its configured MemByHops ladder.
	ExtraPS int64
}

// MaxHierarchyNodes bounds the node count of a Hierarchy; the cached
// distance matrix is n², and the simulator's coherence directory caps
// machines at 256 CPUs anyway.
const MaxHierarchyNodes = 1024

// Hierarchy is an arbitrary tree of levels — e.g. 4 sockets × 2 dies,
// with CPUs per node handled by the machine layer. Node ids are mixed-radix
// numbers over the level arities (outermost level most significant), and
// the distance between two nodes is the sum of the Hop contributions of
// every level where their digits differ. That sum is a true metric
// (symmetric, zero iff equal, triangle inequality per level), and a
// hierarchy of k binary unit-hop levels reproduces the 2^k-node
// hypercube's Hamming distances exactly — the bridge the bit-identity
// tests lean on. Distances are precomputed into an n×n matrix at
// construction; lookups never walk the tree.
type Hierarchy struct {
	levels  []Level
	stride  []int // stride[i]: id units per digit of level i
	n       int
	maxHops int
	dist    []int32 // n×n cached distance matrix
}

// NewHierarchy builds a hierarchy from levels, outermost first.
func NewHierarchy(levels []Level) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("topology: hierarchy needs at least one level")
	}
	n := 1
	maxHops := 0
	for i, lv := range levels {
		if lv.Arity < 1 {
			return nil, fmt.Errorf("topology: level %d arity %d invalid", i, lv.Arity)
		}
		if lv.Hop < 1 {
			return nil, fmt.Errorf("topology: level %d hop %d invalid (must be >= 1)", i, lv.Hop)
		}
		if lv.ExtraPS < 0 {
			return nil, fmt.Errorf("topology: level %d negative latency %d", i, lv.ExtraPS)
		}
		if n > MaxHierarchyNodes/lv.Arity {
			return nil, fmt.Errorf("topology: hierarchy exceeds %d nodes", MaxHierarchyNodes)
		}
		n *= lv.Arity
		if lv.Arity > 1 {
			maxHops += lv.Hop
		}
	}
	h := &Hierarchy{
		levels:  append([]Level(nil), levels...),
		stride:  make([]int, len(levels)),
		n:       n,
		maxHops: maxHops,
	}
	s := 1
	for i := len(levels) - 1; i >= 0; i-- {
		h.stride[i] = s
		s *= levels[i].Arity
	}
	h.dist = make([]int32, n*n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := int32(0)
			for i, lv := range levels {
				if (a/h.stride[i])%lv.Arity != (b/h.stride[i])%lv.Arity {
					d += int32(lv.Hop)
				}
			}
			h.dist[a*n+b] = d
			h.dist[b*n+a] = d
		}
	}
	return h, nil
}

// MustHierarchy is NewHierarchy for statically known shapes; it panics on
// a bad one.
func MustHierarchy(levels []Level) *Hierarchy {
	h, err := NewHierarchy(levels)
	if err != nil {
		panic(err)
	}
	return h
}

// Nodes returns the number of nodes (the product of the level arities).
func (h *Hierarchy) Nodes() int { return h.n }

// Hops returns the cached distance between nodes a and b. It panics on
// out-of-range ids, matching Hypercube.Hops.
func (h *Hierarchy) Hops(a, b int) int {
	if a < 0 || a >= h.n || b < 0 || b >= h.n {
		panic(fmt.Sprintf("topology: node out of range: Hops(%d,%d) on %d nodes", a, b, h.n))
	}
	return int(h.dist[a*h.n+b])
}

// Distance is Hops: the full metric served from the cached matrix.
func (h *Hierarchy) Distance(a, b int) int { return h.Hops(a, b) }

// Neighbors returns the nodes that differ from a in exactly one level's
// digit, innermost level first, digits ascending within a level — the
// order Hypercube.Neighbors produces on binary levels.
func (h *Hierarchy) Neighbors(a int) []int {
	if a < 0 || a >= h.n {
		panic(fmt.Sprintf("topology: node %d out of range (%d nodes)", a, h.n))
	}
	var out []int
	for i := len(h.levels) - 1; i >= 0; i-- {
		ar := h.levels[i].Arity
		own := (a / h.stride[i]) % ar
		base := a - own*h.stride[i]
		for d := 0; d < ar; d++ {
			if d != own {
				out = append(out, base+d*h.stride[i])
			}
		}
	}
	return out
}

// ByDistance returns all nodes ordered by increasing distance from a, ties
// broken by ascending node id; the first element is a itself. The memory
// manager uses this for best-effort forwarding when a migration target is
// full. The algorithm is the same distance-bucket sweep as Hypercube's, so
// identical metrics yield identical orders.
func (h *Hierarchy) ByDistance(a int) []int {
	out := make([]int, 0, h.n)
	for d := 0; d <= h.maxHops; d++ {
		for b := 0; b < h.n; b++ {
			if h.Hops(a, b) == d {
				out = append(out, b)
			}
		}
	}
	return out
}

// MaxHops returns the network diameter: the sum of the hop contributions
// of every level with more than one child.
func (h *Hierarchy) MaxHops() int { return h.maxHops }

// Levels returns a copy of the level structure, outermost first.
func (h *Hierarchy) Levels() []Level { return append([]Level(nil), h.levels...) }

// LatencyExtras returns, per hop distance 0..MaxHops, the extra memory
// latency in picoseconds that distance implies: the maximum over level
// subsets whose hop contributions sum to the distance of their summed
// ExtraPS. With the default doubling hop weights every distance decomposes
// uniquely, so the maximum is exact, not conservative. Distances no subset
// reaches inherit the previous entry, keeping the ladder monotone. The
// result is nil when no level carries extra latency — the machine then
// keeps its configured ladder, which is how a cube-shaped hierarchy stays
// bit-identical to the hypercube path.
func (h *Hierarchy) LatencyExtras() []int64 {
	any := false
	for _, lv := range h.levels {
		if lv.Arity > 1 && lv.ExtraPS != 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	const unreached = -1
	ext := make([]int64, h.maxHops+1)
	for d := 1; d <= h.maxHops; d++ {
		ext[d] = unreached
	}
	for _, lv := range h.levels {
		if lv.Arity <= 1 {
			continue
		}
		for d := h.maxHops - lv.Hop; d >= 0; d-- {
			if ext[d] == unreached {
				continue
			}
			if cand := ext[d] + lv.ExtraPS; cand > ext[d+lv.Hop] {
				ext[d+lv.Hop] = cand
			}
		}
	}
	for d := 1; d <= h.maxHops; d++ {
		if ext[d] == unreached {
			ext[d] = ext[d-1]
		}
	}
	return ext
}

// Distance on Hypercube is Hops under its metric name.
func (h *Hypercube) Distance(a, b int) int { return h.Hops(a, b) }

// Levels reports the hypercube as dim binary unit-hop levels, so ladder
// rendering and shape display treat both topologies uniformly.
func (h *Hypercube) Levels() []Level {
	out := make([]Level, h.dim)
	for d := range out {
		out[d] = Level{Name: fmt.Sprintf("dim%d", h.dim-1-d), Arity: 2, Hop: 1}
	}
	return out
}

var (
	_ Topology = (*Hypercube)(nil)
	_ Topology = (*Hierarchy)(nil)
)

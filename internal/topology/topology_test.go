package topology

import (
	"testing"
	"testing/quick"
)

func TestNewHypercubeValidSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		h, err := NewHypercube(n)
		if err != nil {
			t.Fatalf("NewHypercube(%d): %v", n, err)
		}
		if h.Nodes() != n {
			t.Errorf("Nodes() = %d, want %d", h.Nodes(), n)
		}
	}
}

func TestNewHypercubeRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 3, 5, 6, 7, 9, 12, 100} {
		if _, err := NewHypercube(n); err == nil {
			t.Errorf("NewHypercube(%d) succeeded, want error", n)
		}
	}
}

func TestMustHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHypercube(3) did not panic")
		}
	}()
	MustHypercube(3)
}

func TestHopsKnownValues(t *testing.T) {
	h := MustHypercube(8)
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 2, 1},
		{0, 3, 2},
		{0, 7, 3},
		{5, 2, 3}, // 101 ^ 010 = 111
		{6, 4, 1},
	}
	for _, c := range cases {
		if got := h.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsPanicsOutOfRange(t *testing.T) {
	h := MustHypercube(4)
	defer func() {
		if recover() == nil {
			t.Error("Hops(0,4) did not panic")
		}
	}()
	h.Hops(0, 4)
}

// Property: hop distance is a metric (symmetric, zero iff equal, triangle
// inequality) on every hypercube size we use.
func TestHopsIsAMetric(t *testing.T) {
	h := MustHypercube(16)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%16, int(b)%16, int(c)%16
		if h.Hops(x, y) != h.Hops(y, x) {
			return false
		}
		if (h.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return h.Hops(x, z) <= h.Hops(x, y)+h.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	h := MustHypercube(8)
	got := h.Neighbors(5) // 101 -> 100, 111, 001
	want := []int{4, 7, 1}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Neighbors(5)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	for _, nb := range got {
		if h.Hops(5, nb) != 1 {
			t.Errorf("neighbor %d at distance %d, want 1", nb, h.Hops(5, nb))
		}
	}
}

func TestByDistanceOrderingAndCompleteness(t *testing.T) {
	h := MustHypercube(16)
	for a := 0; a < 16; a++ {
		order := h.ByDistance(a)
		if len(order) != 16 {
			t.Fatalf("ByDistance(%d) returned %d nodes", a, len(order))
		}
		if order[0] != a {
			t.Errorf("ByDistance(%d)[0] = %d, want self", a, order[0])
		}
		seen := make(map[int]bool)
		prev := -1
		for _, b := range order {
			if seen[b] {
				t.Fatalf("ByDistance(%d) repeats node %d", a, b)
			}
			seen[b] = true
			d := h.Hops(a, b)
			if d < prev {
				t.Fatalf("ByDistance(%d) not sorted: node %d at distance %d after distance %d", a, b, d, prev)
			}
			prev = d
		}
	}
}

func TestMaxHops(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {8, 3}, {16, 4}} {
		if got := MustHypercube(c.n).MaxHops(); got != c.want {
			t.Errorf("MaxHops(%d nodes) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Property: every node has exactly dim neighbours at distance 1, and the
// number of nodes at distance d from any node is C(dim, d).
func TestDistanceDistribution(t *testing.T) {
	h := MustHypercube(32) // dim 5
	binom := []int{1, 5, 10, 10, 5, 1}
	for a := 0; a < 32; a++ {
		counts := make([]int, 6)
		for b := 0; b < 32; b++ {
			counts[h.Hops(a, b)]++
		}
		for d, want := range binom {
			if counts[d] != want {
				t.Errorf("node %d: %d nodes at distance %d, want %d", a, counts[d], d, want)
			}
		}
	}
}

func TestDim(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {8, 3}, {64, 6}} {
		if got := MustHypercube(c.n).Dim(); got != c.want {
			t.Errorf("Dim(%d nodes) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNeighborsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Neighbors(9) on 8 nodes did not panic")
		}
	}()
	MustHypercube(8).Neighbors(9)
}

// Package topology models the interconnection network of a ccNUMA
// multiprocessor as a (fat) hypercube, the topology of the SGI Origin2000
// evaluated by the paper. The only property the memory system needs from
// the network is the hop distance between the node of an accessing
// processor and the node that homes a page; the latency ladder of Table 1
// in the paper is indexed by that distance.
package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is an N-node hypercube. Node identifiers are 0..N-1 and the
// hop distance between two nodes is the Hamming distance of their
// identifiers, exactly as in a binary hypercube. N must be a power of two;
// the Origin2000 router pairs two nodes per router vertex, which shortens
// some routes — we model the plain hypercube and fold the vendor-measured
// effect into the latency table instead.
type Hypercube struct {
	n   int
	dim int
}

// NewHypercube returns a hypercube with n nodes. n must be a power of two
// and at least 1.
func NewHypercube(n int) (*Hypercube, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("topology: node count %d is not a power of two", n)
	}
	return &Hypercube{n: n, dim: bits.TrailingZeros(uint(n))}, nil
}

// MustHypercube is NewHypercube for statically known sizes; it panics on a
// bad size.
func MustHypercube(n int) *Hypercube {
	h, err := NewHypercube(n)
	if err != nil {
		panic(err)
	}
	return h
}

// Nodes returns the number of nodes.
func (h *Hypercube) Nodes() int { return h.n }

// Dim returns the dimension of the cube (log2 of the node count).
func (h *Hypercube) Dim() int { return h.dim }

// Hops returns the network distance in router hops between nodes a and b.
// It is 0 for a == b. Hops panics if either node is out of range, because
// a bad node id here always indicates memory-system corruption upstream.
func (h *Hypercube) Hops(a, b int) int {
	if a < 0 || a >= h.n || b < 0 || b >= h.n {
		panic(fmt.Sprintf("topology: node out of range: Hops(%d,%d) on %d nodes", a, b, h.n))
	}
	return bits.OnesCount(uint(a ^ b))
}

// Neighbors returns the node ids adjacent to node a (one per dimension),
// in ascending dimension order.
func (h *Hypercube) Neighbors(a int) []int {
	if a < 0 || a >= h.n {
		panic(fmt.Sprintf("topology: node %d out of range (%d nodes)", a, h.n))
	}
	out := make([]int, h.dim)
	for d := 0; d < h.dim; d++ {
		out[d] = a ^ (1 << d)
	}
	return out
}

// ByDistance returns all node ids ordered by increasing hop distance from
// node a, ties broken by ascending node id. The first element is a itself.
// The memory manager uses this for best-effort forwarding when a migration
// target is full: the page lands on the closest node with free capacity,
// mirroring the IRIX behaviour the paper describes.
func (h *Hypercube) ByDistance(a int) []int {
	out := make([]int, 0, h.n)
	for d := 0; d <= h.dim; d++ {
		for b := 0; b < h.n; b++ {
			if h.Hops(a, b) == d {
				out = append(out, b)
			}
		}
	}
	return out
}

// MaxHops returns the network diameter.
func (h *Hypercube) MaxHops() int { return h.dim }

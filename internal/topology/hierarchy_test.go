package topology

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genHierarchy decodes a random but always-valid hierarchy from raw fuzz
// bytes: 1..4 levels, arities 1..4, hop weights 1..4, occasional extra
// latency. quick.Check drives it with random values.
func genHierarchy(raw []byte, r *rand.Rand) *Hierarchy {
	nl := 1 + int(r.Int31n(4))
	levels := make([]Level, nl)
	for i := range levels {
		var b byte
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		} else {
			b = byte(r.Int31n(256))
		}
		levels[i] = Level{
			Arity: 1 + int(b&3),
			Hop:   1 + int((b>>2)&3),
		}
		if b&0x40 != 0 {
			levels[i].ExtraPS = int64(levels[i].Hop) * DefaultExtraPerHopPS
		}
	}
	return MustHierarchy(levels)
}

// Property: Hops is a metric on every generated hierarchy — zero iff
// equal, symmetric, triangle inequality — and agrees with Distance.
func TestHierarchyHopsIsAMetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(raw []byte, ai, bi, ci uint16) bool {
		h := genHierarchy(raw, r)
		n := h.Nodes()
		a, b, c := int(ai)%n, int(bi)%n, int(ci)%n
		if (h.Hops(a, b) == 0) != (a == b) {
			return false
		}
		if h.Hops(a, b) != h.Hops(b, a) {
			return false
		}
		if h.Hops(a, c) > h.Hops(a, b)+h.Hops(b, c) {
			return false
		}
		return h.Distance(a, b) == h.Hops(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a hierarchy of k binary unit-hop levels reproduces the
// 2^k-node hypercube exactly — distances, diameter, neighbour order and
// ByDistance order. This is the bridge the bit-identity harness stands on.
func TestBinaryHierarchyMatchesHypercube(t *testing.T) {
	for k := 1; k <= 6; k++ {
		levels := make([]Level, k)
		for i := range levels {
			levels[i] = Level{Arity: 2, Hop: 1}
		}
		h := MustHierarchy(levels)
		cube := MustHypercube(1 << k)
		if h.Nodes() != cube.Nodes() || h.MaxHops() != cube.MaxHops() {
			t.Fatalf("k=%d: nodes/diameter %d/%d, want %d/%d",
				k, h.Nodes(), h.MaxHops(), cube.Nodes(), cube.MaxHops())
		}
		for a := 0; a < h.Nodes(); a++ {
			for b := 0; b < h.Nodes(); b++ {
				if h.Hops(a, b) != cube.Hops(a, b) {
					t.Fatalf("k=%d: Hops(%d,%d) = %d, want %d", k, a, b, h.Hops(a, b), cube.Hops(a, b))
				}
			}
			if got, want := h.Neighbors(a), cube.Neighbors(a); !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: Neighbors(%d) = %v, want %v", k, a, got, want)
			}
			if got, want := h.ByDistance(a), cube.ByDistance(a); !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: ByDistance(%d) = %v, want %v", k, a, got, want)
			}
		}
	}
}

// A 1-level hierarchy of 2^k nodes is the uniform (complete-graph) case:
// hypercube distances survive only where they are 0 or the full level hop.
func TestOneLevelHierarchyDistances(t *testing.T) {
	h := MustHierarchy([]Level{{Arity: 8, Hop: 1}})
	cube := MustHypercube(8)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			want := 0
			if a != b {
				want = 1
			}
			if got := h.Hops(a, b); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", a, b, got, want)
			}
			if cube.Hops(a, b) <= 1 && h.Hops(a, b) != cube.Hops(a, b) {
				t.Fatalf("Hops(%d,%d) diverges from hypercube at distance <= 1", a, b)
			}
		}
	}
	if h.MaxHops() != 1 {
		t.Fatalf("MaxHops = %d, want 1", h.MaxHops())
	}
}

func TestHierarchyKnownDistances(t *testing.T) {
	// 4 sockets × 2 dies: socket crossings cost 2, die crossings 1.
	h := MustHierarchy([]Level{
		{Name: "socket", Arity: 4, Hop: 2},
		{Name: "die", Arity: 2, Hop: 1},
	})
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1}, // same socket, other die
		{0, 2, 2}, // other socket, same die digit
		{0, 3, 3}, // other socket, other die
		{5, 4, 1},
		{7, 1, 2},
	}
	for _, c := range cases {
		if got := h.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if h.MaxHops() != 3 {
		t.Errorf("MaxHops = %d, want 3", h.MaxHops())
	}
}

func TestHierarchyHopsPanicsOutOfRange(t *testing.T) {
	h := MustHierarchy([]Level{{Arity: 2, Hop: 1}, {Arity: 2, Hop: 1}})
	for _, c := range [][2]int{{0, 4}, {4, 0}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hops(%d,%d) did not panic", c[0], c[1])
				}
			}()
			h.Hops(c[0], c[1])
		}()
	}
}

func TestHierarchyNeighborsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Neighbors(4) on 4 nodes did not panic")
		}
	}()
	MustHierarchy([]Level{{Arity: 4, Hop: 1}}).Neighbors(4)
}

func TestNewHierarchyRejectsBadLevels(t *testing.T) {
	cases := [][]Level{
		nil,
		{{Arity: 0, Hop: 1}},
		{{Arity: 2, Hop: 0}},
		{{Arity: 2, Hop: 1, ExtraPS: -1}},
		{{Arity: 64, Hop: 1}, {Arity: 64, Hop: 1}}, // 4096 > MaxHierarchyNodes
	}
	for i, levels := range cases {
		if _, err := NewHierarchy(levels); err == nil {
			t.Errorf("case %d: NewHierarchy(%v) succeeded, want error", i, levels)
		}
	}
}

func TestMustHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHierarchy(nil) did not panic")
		}
	}()
	MustHierarchy(nil)
}

// Property: ByDistance is a permutation sorted by distance with self
// first, on every generated hierarchy.
func TestHierarchyByDistanceSorted(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(raw []byte, ai uint16) bool {
		h := genHierarchy(raw, r)
		a := int(ai) % h.Nodes()
		order := h.ByDistance(a)
		if len(order) != h.Nodes() || order[0] != a {
			return false
		}
		seen := make(map[int]bool)
		prev := -1
		for _, b := range order {
			if seen[b] {
				return false
			}
			seen[b] = true
			d := h.Hops(a, b)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLevelsCopies(t *testing.T) {
	h := MustHierarchy([]Level{{Name: "socket", Arity: 2, Hop: 1}})
	ls := h.Levels()
	ls[0].Arity = 99
	if h.Levels()[0].Arity != 2 {
		t.Error("Levels() exposed internal state")
	}
}

func TestLatencyExtras(t *testing.T) {
	// Doubling hops: die 1 (235 ns), socket 2 (470 ns); distances 0..3
	// decompose uniquely.
	h := MustHierarchy([]Level{
		{Name: "socket", Arity: 4, Hop: 2, ExtraPS: 470_000},
		{Name: "die", Arity: 2, Hop: 1, ExtraPS: 235_000},
	})
	want := []int64{0, 235_000, 470_000, 705_000}
	got := h.LatencyExtras()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LatencyExtras = %v, want %v", got, want)
	}

	// No extras anywhere -> nil, the hypercube-compatible ladder.
	if ex := MustHierarchy([]Level{{Arity: 2, Hop: 1}}).LatencyExtras(); ex != nil {
		t.Fatalf("LatencyExtras without ExtraPS = %v, want nil", ex)
	}

	// Unreachable distances inherit the previous rung: one 4-ary level
	// with hop 3 reaches only distances 0 and 3.
	h2 := MustHierarchy([]Level{{Arity: 4, Hop: 3, ExtraPS: 700_000}})
	want2 := []int64{0, 0, 0, 700_000}
	if got2 := h2.LatencyExtras(); !reflect.DeepEqual(got2, want2) {
		t.Fatalf("LatencyExtras (sparse) = %v, want %v", got2, want2)
	}
}

func TestHypercubeLevels(t *testing.T) {
	ls := MustHypercube(8).Levels()
	if len(ls) != 3 {
		t.Fatalf("Levels() on 8 nodes = %d levels, want 3", len(ls))
	}
	for _, lv := range ls {
		if lv.Arity != 2 || lv.Hop != 1 || lv.ExtraPS != 0 {
			t.Errorf("hypercube level %+v, want binary unit-hop", lv)
		}
	}
	if MustHypercube(8).Distance(1, 2) != MustHypercube(8).Hops(1, 2) {
		t.Error("Hypercube.Distance != Hops")
	}
}

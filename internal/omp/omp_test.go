package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"upmgo/internal/machine"
)

func newTeam(t *testing.T, n int) *Team {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTeam(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNewTeamBounds(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	if _, err := NewTeam(m, 0); err == nil {
		t.Error("team of 0 accepted")
	}
	if _, err := NewTeam(m, 17); err == nil {
		t.Error("team of 17 accepted on a 16-CPU machine")
	}
	if _, err := NewTeam(m, 16); err != nil {
		t.Errorf("team of 16 rejected: %v", err)
	}
}

func TestParallelRunsEveryThreadOnItsCPU(t *testing.T) {
	tm := newTeam(t, 16)
	var ran [16]atomic.Int32
	tm.Parallel(func(tr *Thread) {
		if tr.CPU.ID != tr.ID {
			t.Errorf("thread %d on CPU %d", tr.ID, tr.CPU.ID)
		}
		ran[tr.ID].Add(1)
	})
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Errorf("thread %d ran %d times", i, ran[i].Load())
		}
	}
}

func TestParallelAdvancesAndSynchronisesClocks(t *testing.T) {
	tm := newTeam(t, 8)
	tm.Parallel(func(tr *Thread) {
		tr.CPU.Advance(int64(tr.ID) * 1000)
	})
	// After the join, all participating clocks equal and >= fork + max.
	want := tm.Master().Now()
	if want < 7000 {
		t.Errorf("join time %d < slowest thread's 7000", want)
	}
	for i := 0; i < 8; i++ {
		if got := tm.Machine().CPU(i).Now(); got != want {
			t.Errorf("CPU %d clock %d, want %d", i, got, want)
		}
	}
}

func TestForStaticCoversRangeExactlyOnce(t *testing.T) {
	tm := newTeam(t, 16)
	const n = 1003
	counts := make([]atomic.Int32, n)
	tm.Parallel(func(tr *Thread) {
		tr.For(0, n, Static(), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				counts[i].Add(1)
			}
		})
	})
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, counts[i].Load())
		}
	}
}

func TestForSchedulesCoverRange(t *testing.T) {
	scheds := map[string]Schedule{
		"static":      Static(),
		"staticChunk": StaticChunk(7),
		"dynamic":     Dynamic(5),
		"guided":      Guided(3),
	}
	for name, s := range scheds {
		s := s
		t.Run(name, func(t *testing.T) {
			tm := newTeam(t, 5)
			const n = 517
			counts := make([]atomic.Int32, n)
			tm.Parallel(func(tr *Thread) {
				tr.For(3, n, s, func(c *machine.CPU, from, to int) {
					for i := from; i < to; i++ {
						counts[i].Add(1)
					}
				})
			})
			for i := 0; i < 3; i++ {
				if counts[i].Load() != 0 {
					t.Errorf("iteration %d outside range executed", i)
				}
			}
			for i := 3; i < n; i++ {
				if counts[i].Load() != 1 {
					t.Fatalf("iteration %d executed %d times", i, counts[i].Load())
				}
			}
		})
	}
}

func TestForStaticPartitionIsContiguousAndOrdered(t *testing.T) {
	tm := newTeam(t, 4)
	var mu sync.Mutex
	got := map[int][2]int{}
	tm.Parallel(func(tr *Thread) {
		tr.For(0, 100, Static(), func(c *machine.CPU, from, to int) {
			mu.Lock()
			got[tr.ID] = [2]int{from, to}
			mu.Unlock()
		})
	})
	want := map[int][2]int{0: {0, 25}, 1: {25, 50}, 2: {50, 75}, 3: {75, 100}}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("thread %d got %v, want %v", id, got[id], w)
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	tm := newTeam(t, 4)
	ran := atomic.Int32{}
	tm.Parallel(func(tr *Thread) {
		tr.For(5, 5, Static(), func(c *machine.CPU, from, to int) { ran.Add(1) })
		tr.For(9, 2, Static(), func(c *machine.CPU, from, to int) { ran.Add(1) })
	})
	if ran.Load() != 0 {
		t.Errorf("body ran %d times on empty ranges", ran.Load())
	}
}

func TestTwoConsecutiveDynamicLoops(t *testing.T) {
	// The shared chunk counter must reset between loops.
	tm := newTeam(t, 4)
	const n = 100
	c1 := make([]atomic.Int32, n)
	c2 := make([]atomic.Int32, n)
	tm.Parallel(func(tr *Thread) {
		tr.For(0, n, Dynamic(9), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				c1[i].Add(1)
			}
		})
		tr.For(0, n, Dynamic(9), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				c2[i].Add(1)
			}
		})
	})
	for i := 0; i < n; i++ {
		if c1[i].Load() != 1 || c2[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d/%d times", i, c1[i].Load(), c2[i].Load())
		}
	}
}

func TestReduceSum(t *testing.T) {
	tm := newTeam(t, 16)
	var got [16]float64
	tm.Parallel(func(tr *Thread) {
		got[tr.ID] = tr.ReduceSum(float64(tr.ID + 1))
	})
	for id, v := range got {
		if v != 136 { // 1+2+...+16
			t.Errorf("thread %d saw sum %v, want 136", id, v)
		}
	}
}

func TestReduceMax(t *testing.T) {
	tm := newTeam(t, 7)
	var got [7]float64
	tm.Parallel(func(tr *Thread) {
		got[tr.ID] = tr.ReduceMax(float64((tr.ID*3)%7 + 1))
	})
	for id, v := range got {
		if v != 7 {
			t.Errorf("thread %d saw max %v, want 7", id, v)
		}
	}
}

func TestConsecutiveReductionsDoNotInterfere(t *testing.T) {
	tm := newTeam(t, 8)
	var a, b [8]float64
	tm.Parallel(func(tr *Thread) {
		a[tr.ID] = tr.ReduceSum(1)
		b[tr.ID] = tr.ReduceSum(2)
	})
	for i := 0; i < 8; i++ {
		if a[i] != 8 || b[i] != 16 {
			t.Errorf("thread %d: sums %v,%v want 8,16", i, a[i], b[i])
		}
	}
}

func TestSingleRunsOnceOnMaster(t *testing.T) {
	tm := newTeam(t, 8)
	var n atomic.Int32
	var cpu atomic.Int32
	tm.Parallel(func(tr *Thread) {
		tr.Single(func(c *machine.CPU) {
			n.Add(1)
			cpu.Store(int32(c.ID))
		})
	})
	if n.Load() != 1 {
		t.Errorf("Single body ran %d times", n.Load())
	}
	if cpu.Load() != 0 {
		t.Errorf("Single ran on CPU %d, want 0", cpu.Load())
	}
}

func TestSectionsDistributeAll(t *testing.T) {
	tm := newTeam(t, 3)
	var ran [7]atomic.Int32
	secs := make([]func(c *machine.CPU), 7)
	for i := range secs {
		i := i
		secs[i] = func(c *machine.CPU) { ran[i].Add(1) }
	}
	tm.Parallel(func(tr *Thread) {
		tr.Sections(secs...)
	})
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Errorf("section %d ran %d times", i, ran[i].Load())
		}
	}
}

func TestBarrierSynchronisesVirtualTime(t *testing.T) {
	tm := newTeam(t, 4)
	var after [4]int64
	tm.Parallel(func(tr *Thread) {
		tr.CPU.Advance(int64(tr.ID+1) * 10000)
		tr.Barrier()
		after[tr.ID] = tr.CPU.Now()
	})
	for i := 1; i < 4; i++ {
		if after[i] != after[0] {
			t.Errorf("clock after barrier differs: CPU %d at %d vs %d", i, after[i], after[0])
		}
	}
	if after[0] < 40000 {
		t.Errorf("barrier time %d < slowest thread 40000", after[0])
	}
}

func TestNowaitSkipsBarrier(t *testing.T) {
	tm := newTeam(t, 4)
	var diverged atomic.Bool
	tm.Parallel(func(tr *Thread) {
		before := tr.CPU.Now()
		tr.For(0, 4, Static(), func(c *machine.CPU, from, to int) {
			c.Advance(int64(tr.ID) * 1000)
		}, Nowait)
		if tr.CPU.Now() != before+int64(tr.ID)*1000 {
			return
		}
		if tr.ID != 0 {
			diverged.Store(true) // clocks still differ: no barrier ran
		}
	})
	if !diverged.Load() {
		t.Error("Nowait loop appears to have synchronised clocks")
	}
}

func TestSerialModeDeterministicFirstTouch(t *testing.T) {
	run := func() []int {
		m := machine.MustNew(machine.DefaultConfig())
		tm := MustTeam(m, 16)
		tm.SetSerial(true)
		a := m.NewArray("x", 16*2048) // 16 pages
		tm.Parallel(func(tr *Thread) {
			tr.For(0, a.Len(), Static(), func(c *machine.CPU, from, to int) {
				for i := from; i < to; i++ {
					a.Set(c, i, 1)
				}
			})
		})
		lo, hi := a.PageRange()
		homes := make([]int, 0, hi-lo)
		for p := lo; p < hi; p++ {
			homes = append(homes, m.PT.Home(p))
		}
		return homes
	}
	h1, h2 := run(), run()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("page %d homed differently across identical serial runs: %d vs %d", i, h1[i], h2[i])
		}
	}
	// With a 16-page array and 16 threads on 8 nodes, first-touch must
	// spread pages over every node (2 pages per node).
	counts := make(map[int]int)
	for _, h := range h1 {
		counts[h]++
	}
	if len(counts) != 8 {
		t.Errorf("first-touch used %d nodes, want 8 (homes %v)", len(counts), h1)
	}
}

func TestSerialModePanicsOnDynamic(t *testing.T) {
	tm := newTeam(t, 2)
	tm.SetSerial(true)
	defer func() {
		if recover() == nil {
			t.Error("Dynamic in serial mode did not panic")
		}
	}()
	tm.Parallel(func(tr *Thread) {
		tr.For(0, 10, Dynamic(1), func(c *machine.CPU, from, to int) {})
	})
}

func TestMasterSerialSectionSettledAtFork(t *testing.T) {
	tm := newTeam(t, 4)
	m := tm.Machine()
	a := m.NewArray("x", 2048)
	// Master does serial work touching memory, then a parallel region
	// starts: the fork must not lose the master's elapsed time.
	master := tm.Master()
	master.Load(a.Addr(0))
	before := master.Now()
	tm.Parallel(func(tr *Thread) {})
	if tm.Master().Now() <= before {
		t.Error("join time did not advance past the serial section")
	}
}

// Property: for any range and thread count, the static schedule assigns
// every iteration exactly once and respects bounds.
func TestStaticScheduleProperty(t *testing.T) {
	f := func(loRaw, nRaw uint16, teamRaw uint8) bool {
		lo := int(loRaw % 1000)
		n := int(nRaw % 2000)
		team := int(teamRaw%16) + 1
		hi := lo + n
		m := machine.MustNew(machine.DefaultConfig())
		tm := MustTeam(m, team)
		counts := make([]atomic.Int32, n)
		tm.Parallel(func(tr *Thread) {
			tr.For(lo, hi, Static(), func(c *machine.CPU, from, to int) {
				if from < lo || to > hi {
					t.Errorf("chunk [%d,%d) outside [%d,%d)", from, to, lo, hi)
				}
				for i := from; i < to; i++ {
					counts[i-lo].Add(1)
				}
			})
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSetBindingValidation(t *testing.T) {
	tm := newTeam(t, 4)
	if err := tm.SetBinding([]int{0, 1, 2}); err == nil {
		t.Error("short binding accepted")
	}
	if err := tm.SetBinding([]int{0, 1, 2, 2}); err == nil {
		t.Error("duplicate binding accepted")
	}
	if err := tm.SetBinding([]int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range binding accepted")
	}
	if err := tm.SetBinding([]int{4, 5, 6, 7}); err != nil {
		t.Errorf("valid binding rejected: %v", err)
	}
}

func TestSetBindingMovesThreads(t *testing.T) {
	tm := newTeam(t, 4)
	if err := tm.SetBinding([]int{12, 13, 14, 15}); err != nil {
		t.Fatal(err)
	}
	var onCPU [4]int
	tm.Parallel(func(tr *Thread) {
		onCPU[tr.ID] = tr.CPU.ID
	})
	for i, want := range []int{12, 13, 14, 15} {
		if onCPU[i] != want {
			t.Errorf("thread %d ran on CPU %d, want %d", i, onCPU[i], want)
		}
	}
	if tm.Master().ID != 12 {
		t.Errorf("master is CPU %d, want 12", tm.Master().ID)
	}
}

func TestSetBindingPreservesVirtualTime(t *testing.T) {
	tm := newTeam(t, 4)
	tm.Parallel(func(tr *Thread) { tr.CPU.Advance(1000000) })
	before := tm.Master().Now()
	if err := tm.SetBinding([]int{8, 9, 10, 11}); err != nil {
		t.Fatal(err)
	}
	if tm.Master().Now() < before {
		t.Errorf("time went backwards after rebinding: %d < %d", tm.Master().Now(), before)
	}
}

package omp

import (
	"sync"

	"upmgo/internal/machine"
)

// Critical sections (OpenMP CRITICAL): real mutual exclusion plus
// virtual-time serialisation — a thread entering a section that another
// thread occupied until virtual time T resumes no earlier than T, so the
// simulated cost of contended critical sections is the serialised sum of
// their bodies, as on a real machine. The paper's discussion of
// synchronisation overhead as OpenMP's scalability limit is exactly about
// constructs like this one.
//
// Entry order between concurrently arriving threads follows host
// scheduling, so — unlike barriers and loops — programs whose *results*
// depend on critical-section order are not bit-reproducible. (OpenMP
// gives the same non-guarantee.)

type critSection struct {
	mu  sync.Mutex
	end int64 // virtual time the section was last held until
}

// critCosts: acquiring an uncontended lock and releasing it (a couple of
// coherent read-modify-writes).
const (
	critEnterCost = 300 * 1000 // 300 ns in ps
	critExitCost  = 200 * 1000
)

// Critical executes f under the named critical section. All sections with
// the same name exclude each other, as in OpenMP; the empty name is the
// anonymous section.
func (tr *Thread) Critical(name string, f func(c *machine.CPU)) {
	t := tr.team
	t.critMu.Lock()
	if t.crit == nil {
		t.crit = make(map[string]*critSection)
	}
	cs, ok := t.crit[name]
	if !ok {
		cs = &critSection{}
		t.crit[name] = cs
	}
	t.critMu.Unlock()

	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.end > tr.CPU.Now() {
		tr.CPU.SetClock(cs.end)
	}
	tr.CPU.Advance(critEnterCost)
	f(tr.CPU)
	tr.CPU.Advance(critExitCost)
	cs.end = tr.CPU.Now()
}

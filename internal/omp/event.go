package omp

import (
	"fmt"
	"sync"
)

// EventSet provides point-to-point post/wait synchronisation between team
// members — the pipelining idiom NAS LU builds from !$OMP FLUSH and flag
// arrays so that a wavefront can flow through a parallel region without
// full barriers. Each (owner, tag) cell is posted by its owning thread
// and may be awaited by any other member.
//
// Virtual time: a Wait that blocks establishes a happens-before edge, so
// the waiter's clock advances to at least the poster's clock at the Post
// plus a synchronisation cost; timing stays deterministic because clocks
// only cross threads at these well-defined events.
//
// Serial mode: thread bodies run to completion in id order, so a Wait on
// an event that is not yet posted cannot block; it returns immediately.
// That is only sound when the results of the region are discarded — which
// is the case for the cold-start placement iteration, the one place the
// NAS drivers run pipelined code serially.
type EventSet struct {
	team  *Team
	tags  int
	cells []eventCell
}

type eventCell struct {
	mu     sync.Mutex
	cond   *sync.Cond
	posted bool
	clock  int64
}

// NewEventSet creates an EventSet with the given number of tags per
// thread (for a k-pipelined sweep, one tag per k plane).
func NewEventSet(t *Team, tags int) *EventSet {
	if tags <= 0 {
		panic(fmt.Sprintf("omp: EventSet with %d tags", tags))
	}
	e := &EventSet{team: t, tags: tags, cells: make([]eventCell, t.n*tags)}
	for i := range e.cells {
		e.cells[i].cond = sync.NewCond(&e.cells[i].mu)
	}
	return e
}

func (e *EventSet) cell(owner, tag int) *eventCell {
	if owner < 0 || owner >= e.team.n || tag < 0 || tag >= e.tags {
		panic(fmt.Sprintf("omp: event (%d,%d) out of range (%d threads, %d tags)", owner, tag, e.team.n, e.tags))
	}
	return &e.cells[owner*e.tags+tag]
}

// Post publishes (tr.ID, tag) at the caller's current virtual time and
// charges a small flag-write cost.
func (e *EventSet) Post(tr *Thread, tag int) {
	tr.CPU.Advance(postCost)
	c := e.cell(tr.ID, tag)
	c.mu.Lock()
	c.posted = true
	c.clock = tr.CPU.Now()
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Wait blocks until (owner, tag) has been posted and advances the
// caller's clock past the post time plus the synchronisation cost.
func (e *EventSet) Wait(tr *Thread, owner, tag int) {
	c := e.cell(owner, tag)
	if e.team.serial {
		// See the type comment: in serial mode an unposted event cannot
		// ever be posted while we block; proceed (results discarded).
		c.mu.Lock()
		post := c.clock
		c.mu.Unlock()
		if post > tr.CPU.Now() {
			tr.CPU.SetClock(post + waitCost)
		}
		return
	}
	c.mu.Lock()
	for !c.posted {
		c.cond.Wait()
	}
	post := c.clock
	c.mu.Unlock()
	if post+waitCost > tr.CPU.Now() {
		tr.CPU.SetClock(post + waitCost)
	} else {
		tr.CPU.Advance(waitCost)
	}
}

// Reset clears every cell. It must run at a quiescent point (between
// parallel regions, or by a Single inside one) before the events are
// reused for the next sweep.
func (e *EventSet) Reset() {
	for i := range e.cells {
		c := &e.cells[i]
		c.mu.Lock()
		c.posted = false
		c.clock = 0
		c.mu.Unlock()
	}
}

// Post/wait costs: a cache-line flag write plus the spin-read on the
// consumer side (NAS LU's pipelining overhead).
const (
	postCost = 200 * 1000 // 200 ns in ps
	waitCost = 400 * 1000 // 400 ns in ps
)

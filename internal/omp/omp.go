// Package omp implements the OpenMP-like execution model of the paper on
// top of the simulated machine: fork/join parallel regions, worksharing
// loops with the OpenMP SCHEDULE kinds (static, static-chunked, dynamic,
// guided), barriers, master/single/critical constructs and reductions.
//
// The runtime executes each team member on its own goroutine bound to one
// simulated CPU, so simulations use real host parallelism, while all
// *simulated* timing flows through the per-CPU virtual clocks and the
// barrier settlement in the machine package. Fork, join and barrier
// overheads are charged explicitly; the paper's discussion of OpenMP
// parallelism-management overhead ("critical task size") corresponds to
// these constants.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
)

// Schedule selects how loop iterations map to threads.
type Schedule struct {
	kind  schedKind
	chunk int
}

type schedKind int

const (
	schedStatic schedKind = iota
	schedStaticChunk
	schedDynamic
	schedGuided
)

// Static partitions the iteration space into one contiguous block per
// thread (OpenMP SCHEDULE(STATIC)). This is the schedule the NAS codes
// use; it makes iteration-to-thread mapping, and hence first-touch page
// placement, deterministic.
func Static() Schedule { return Schedule{kind: schedStatic} }

// StaticChunk deals chunks of the given size round-robin
// (SCHEDULE(STATIC, chunk)).
func StaticChunk(chunk int) Schedule { return Schedule{kind: schedStaticChunk, chunk: chunk} }

// Dynamic hands out chunks first-come-first-served (SCHEDULE(DYNAMIC,
// chunk)). Chunk assignment depends on host scheduling, so runs using it
// are not bit-reproducible; the NAS reproductions do not use it.
func Dynamic(chunk int) Schedule { return Schedule{kind: schedDynamic, chunk: max(1, chunk)} }

// Guided hands out exponentially shrinking chunks (SCHEDULE(GUIDED)).
// Like Dynamic, it is first-come-first-served.
func Guided(minChunk int) Schedule { return Schedule{kind: schedGuided, chunk: max(1, minChunk)} }

// Team is a fork/join group of simulated threads pinned 1:1 onto the
// machine's CPUs in id order (the paper runs on an idle machine, so we
// model perfect, stable thread-to-processor binding).
type Team struct {
	m        *machine.Machine
	n        int
	serial   bool
	binding  []int // thread i runs on CPU binding[i]
	barrier  *clockBarrier
	lastJoin int64 // time of the previous join; serial sections span from here

	// Persistent worker lanes: member i>0 of every non-serial region runs
	// on lanes[i-1], a goroutine that lives for the team's lifetime, so a
	// run's thousands of parallel regions reuse n-1 goroutines instead of
	// spawning n fresh ones each. Member 0 runs on the caller's goroutine.
	// Started lazily by the first non-serial region; each member needs its
	// own lane (not a smaller pool) because region bodies block on
	// mid-region barriers that only release once every member arrives.
	// Workers reference only their channel — never the Team — so the
	// finalizer set at startLanes can close the channels and let the
	// workers exit once the team becomes unreachable.
	lanes []chan func()

	red struct {
		vals []float64
		out  float64
	}

	critMu sync.Mutex
	crit   map[string]*critSection
}

// NewTeam creates a team of n threads on m. n must be between 1 and the
// machine's CPU count.
func NewTeam(m *machine.Machine, n int) (*Team, error) {
	if n < 1 || n > m.NumCPUs() {
		return nil, fmt.Errorf("omp: team size %d out of range 1..%d", n, m.NumCPUs())
	}
	t := &Team{m: m, n: n, binding: make([]int, n)}
	for i := range t.binding {
		t.binding[i] = i
	}
	t.barrier = newClockBarrier()
	t.red.vals = make([]float64, n)
	return t, nil
}

// MustTeam is NewTeam for statically known sizes.
func MustTeam(m *machine.Machine, n int) *Team {
	t, err := NewTeam(m, n)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the number of threads.
func (t *Team) Size() int { return t.n }

// Machine returns the underlying machine.
func (t *Team) Machine() *machine.Machine { return t.m }

// SetSerial switches the team to serial execution: thread bodies run one
// after another, to completion, on the calling goroutine. This makes
// first-touch fault resolution fully deterministic, which is why the NAS
// drivers use it for the cold-start placement iteration. Restrictions: in
// serial mode barriers degenerate (no cross-thread rendezvous is possible),
// so region bodies must not consume values produced by *other* threads
// between barriers — the cold-start iteration discards its results, so
// this is safe there — and Dynamic/Guided schedules panic. Virtual-time
// settlement still happens once per barrier phase, attributed when the
// last thread passes.
func (t *Team) SetSerial(serial bool) { t.serial = serial }

// SetBinding changes the thread-to-CPU mapping: thread i subsequently
// runs on CPU perm[i]. perm must be a permutation of distinct CPU ids.
// The paper assumes stable bindings on an idle machine and defers
// scheduler interference to its companion work; this hook models that
// interference — an OS that migrates threads invalidates the locality any
// page placement or migration engine established, which is what UPMlib's
// reactivation then repairs.
func (t *Team) SetBinding(perm []int) error {
	if len(perm) != t.n {
		return fmt.Errorf("omp: binding has %d entries for a team of %d", len(perm), t.n)
	}
	seen := make(map[int]bool, t.n)
	for _, c := range perm {
		if c < 0 || c >= t.m.NumCPUs() || seen[c] {
			return fmt.Errorf("omp: binding %v is not a permutation of distinct CPU ids", perm)
		}
		seen[c] = true
	}
	// The new CPUs inherit the team's notion of time.
	now := t.Master().Now()
	copy(t.binding, perm)
	for _, c := range t.cpus() {
		if c.Now() < now {
			c.SetClock(now)
		}
	}
	return nil
}

// Binding returns a copy of the current thread-to-CPU mapping.
func (t *Team) Binding() []int { return append([]int(nil), t.binding...) }

// Thread is the per-member view inside a parallel region.
type Thread struct {
	ID   int
	CPU  *machine.CPU
	team *Team
}

// Parallel runs body on every team member (the OpenMP PARALLEL
// construct). The master's clock plus the fork overhead seeds every
// member's clock; join settles the final region and leaves the master
// clock at the join time. Nested Parallel calls are not supported.
func (t *Team) Parallel(body func(tr *Thread)) { t.parallel("", body) }

// ParallelNamed is Parallel with a region label for the trace layer: the
// fork and join events carry the name, so a trace summary can break the
// run down by phase (compute_rhs, x_solve, ...) the way the paper's
// Figure 5 does. With no tracer attached the name is inert.
func (t *Team) ParallelNamed(name string, body func(tr *Thread)) { t.parallel(name, body) }

func (t *Team) parallel(name string, body func(tr *Thread)) {
	if t.m.FreeRun() {
		// Free-run: clocks are frozen and Settle/SetClock/Tracer are
		// inert, so skip the timing choreography and just execute the
		// bodies — barriers and reductions still rendezvous so the
		// kernel's numerics come out bit-identical to a simulated region.
		t.runBodies(body)
		return
	}
	master := t.Master()
	// Settle the serial section the master executed since the last join,
	// so its access tallies do not leak into the parallel region.
	master.SetClock(t.m.Settle([]*machine.CPU{master}, t.lastJoin))
	// The fork event is stamped before the fork overhead and the join
	// event after the join barrier settles, so named region spans and the
	// serial gaps between them tile the timeline exactly (the trace
	// summary's sum contract).
	if trc := t.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: master.Now(), CPU: master.ID, Kind: trace.EvRegionFork, Name: name})
	}
	start := master.Now() + t.m.Lat.Fork
	cpus := t.cpus()
	for _, c := range cpus {
		c.SetClock(start)
	}
	t.barrier.reset(start)
	t.runBodies(body)
	// Implicit join barrier: settle the last region.
	end := t.m.Settle(cpus, t.barrier.regionStart) + t.m.Lat.BarrierBase + int64(t.n)*t.m.Lat.BarrierPerCPU
	for _, c := range cpus {
		c.SetClock(end)
	}
	t.lastJoin = end
	if trc := t.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: end, CPU: master.ID, Kind: trace.EvRegionJoin, Name: name})
	}
}

// runBodies executes body once per member: sequentially in serial mode,
// otherwise member 0 on the calling goroutine and members 1..n-1 on the
// team's persistent lanes.
func (t *Team) runBodies(body func(tr *Thread)) {
	if t.serial {
		for i := 0; i < t.n; i++ {
			body(&Thread{ID: i, CPU: t.m.CPU(t.binding[i]), team: t})
		}
		return
	}
	if t.lanes == nil && t.n > 1 {
		t.startLanes()
	}
	var wg sync.WaitGroup
	wg.Add(t.n - 1)
	for i := 1; i < t.n; i++ {
		id := i
		t.lanes[id-1] <- func() {
			defer wg.Done()
			body(&Thread{ID: id, CPU: t.m.CPU(t.binding[id]), team: t})
		}
	}
	body(&Thread{ID: 0, CPU: t.m.CPU(t.binding[0]), team: t})
	wg.Wait()
}

// startLanes spawns the persistent worker goroutines. The finalizer is
// the teardown path: workers hold only their channel, so when the Team
// becomes unreachable the finalizer closes the channels and every worker
// returns. No work can be in flight then — dispatching requires a live
// Team reference.
func (t *Team) startLanes() {
	t.lanes = make([]chan func(), t.n-1)
	for i := range t.lanes {
		ch := make(chan func(), 1)
		t.lanes[i] = ch
		go func() {
			for f := range ch {
				f()
			}
		}()
	}
	lanes := t.lanes
	runtime.SetFinalizer(t, func(*Team) {
		for _, ch := range lanes {
			close(ch)
		}
	})
}

func (t *Team) cpus() []*machine.CPU {
	cpus := make([]*machine.CPU, t.n)
	for i := range cpus {
		cpus[i] = t.m.CPU(t.binding[i])
	}
	return cpus
}

// Master returns the master CPU (thread 0's processor) for serial
// sections between parallel regions.
func (t *Team) Master() *machine.CPU { return t.m.CPU(t.binding[0]) }

// Barrier synchronises the team: contention settlement for the region
// since the previous barrier, then clock alignment plus barrier overhead.
// It must be called by every member (as in OpenMP).
func (tr *Thread) Barrier() {
	tr.team.barrier.wait(tr, nil)
}

// For executes the loop [lo, hi) with the given schedule; body receives
// the thread's CPU and a [from, to) sub-range. A worksharing barrier
// follows unless nowait; pass Nowait to skip it (OpenMP NOWAIT).
func (tr *Thread) For(lo, hi int, s Schedule, body func(c *machine.CPU, from, to int), opts ...Option) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	switch s.kind {
	case schedStatic:
		n := hi - lo
		if n > 0 {
			chunk := (n + tr.team.n - 1) / tr.team.n
			from := lo + tr.ID*chunk
			to := min(from+chunk, hi)
			if from < to {
				body(tr.CPU, from, to)
			}
		}
	case schedStaticChunk:
		for from := lo + tr.ID*s.chunk; from < hi; from += tr.team.n * s.chunk {
			body(tr.CPU, from, min(from+s.chunk, hi))
		}
	case schedDynamic:
		if tr.team.serial {
			panic("omp: Dynamic schedule is invalid in serial mode")
		}
		for {
			from := int(tr.team.barrier.dyn.Add(int64(s.chunk))) - s.chunk + lo
			if from >= hi {
				break
			}
			body(tr.CPU, from, min(from+s.chunk, hi))
		}
	case schedGuided:
		if tr.team.serial {
			panic("omp: Guided schedule is invalid in serial mode")
		}
		for {
			remaining := hi - lo - int(tr.team.barrier.dyn.Load())
			if remaining <= 0 {
				break
			}
			take := max(s.chunk, remaining/(2*tr.team.n))
			from := int(tr.team.barrier.dyn.Add(int64(take))) - take + lo
			if from >= hi {
				break
			}
			body(tr.CPU, from, min(from+take, hi))
		}
	}
	if !o.nowait {
		tr.Barrier()
		if s.kind == schedDynamic || s.kind == schedGuided {
			if tr.ID == 0 {
				tr.team.barrier.dyn.Store(0)
			}
			tr.Barrier() // all see the reset before the next shared loop
		}
	} else if s.kind == schedDynamic || s.kind == schedGuided {
		panic("omp: Nowait is not supported with Dynamic/Guided schedules")
	}
}

// Option modifies a worksharing construct.
type Option func(*options)

type options struct{ nowait bool }

// Nowait removes the implicit barrier at the end of a worksharing loop.
func Nowait(o *options) { o.nowait = true }

// ReduceSum performs a barrier-synchronised sum reduction and returns the
// total to every thread.
func (tr *Thread) ReduceSum(v float64) float64 {
	t := tr.team
	t.red.vals[tr.ID] = v
	tr.team.barrier.wait(tr, func() {
		s := 0.0
		for _, x := range t.red.vals[:t.n] {
			s += x
		}
		t.red.out = s
	})
	out := t.red.out
	tr.Barrier() // keep red.out stable until everyone has read it
	return out
}

// ReduceMax performs a barrier-synchronised max reduction.
func (tr *Thread) ReduceMax(v float64) float64 {
	t := tr.team
	t.red.vals[tr.ID] = v
	tr.team.barrier.wait(tr, func() {
		s := t.red.vals[0]
		for _, x := range t.red.vals[1:t.n] {
			if x > s {
				s = x
			}
		}
		t.red.out = s
	})
	out := t.red.out
	tr.Barrier()
	return out
}

// Single runs f on thread 0 only, with barriers on both sides so that all
// threads observe its effects (OpenMP SINGLE + implicit barrier; we pin it
// to the master for determinism, making it equivalent to MASTER+BARRIER).
func (tr *Thread) Single(f func(c *machine.CPU)) {
	tr.Barrier()
	if tr.ID == 0 {
		f(tr.CPU)
	}
	tr.Barrier()
}

// Sections distributes the given section bodies over threads round-robin
// (OpenMP SECTIONS) and barriers at the end.
func (tr *Thread) Sections(sections ...func(c *machine.CPU)) {
	for i := tr.ID; i < len(sections); i += tr.team.n {
		sections[i](tr.CPU)
	}
	tr.Barrier()
}

// clockBarrier is a reusable sense-reversing barrier that also performs
// virtual-time settlement: the last thread to arrive settles the region
// with the machine's contention model and establishes the new region
// start.
type clockBarrier struct {
	mu          sync.Mutex
	cond        *sync.Cond
	team        *Team
	count       int
	phase       uint64
	regionStart int64
	dyn         atomic.Int64 // shared iteration counter for dynamic/guided
}

func newClockBarrier() *clockBarrier {
	b := &clockBarrier{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *clockBarrier) reset(start int64) {
	b.regionStart = start
	b.count = 0
	b.dyn.Store(0)
}

// wait blocks until all team members arrive. The last arriver runs
// lastFn (if any), settles clocks, and releases the others.
func (b *clockBarrier) wait(tr *Thread, lastFn func()) {
	t := tr.team
	if trc := t.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: tr.CPU.Now(), CPU: tr.CPU.ID, Kind: trace.EvBarrierArrive})
	}
	if t.serial {
		// In serial mode all members of the "parallel" region run
		// sequentially; barriers degenerate to settlement once per
		// phase. We emulate by settling when thread n-1 arrives.
		if tr.ID == t.n-1 {
			if lastFn != nil {
				lastFn()
			}
			b.settle(t)
		}
		return
	}
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == t.n {
		if lastFn != nil {
			lastFn()
		}
		b.settle(t)
		b.count = 0
		b.phase++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *clockBarrier) settle(t *Team) {
	if t.m.FreeRun() {
		// Clocks are frozen; the rendezvous above was the whole point.
		return
	}
	cpus := t.cpus()
	end := t.m.Settle(cpus, b.regionStart) + t.m.Lat.BarrierBase + int64(t.n)*t.m.Lat.BarrierPerCPU
	for _, c := range cpus {
		c.SetClock(end)
	}
	b.regionStart = end
	// The release is a machine-level quiescent point (hooks have run), not
	// one thread's action; it goes on the kernel lane.
	if trc := t.m.Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: end, CPU: trace.KernelCPU, Kind: trace.EvBarrierRelease, Arg0: int64(t.n)})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

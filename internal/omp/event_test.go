package omp

import (
	"sync/atomic"
	"testing"

	"upmgo/internal/machine"
)

func TestEventSetPipelineOrder(t *testing.T) {
	tm := newTeam(t, 4)
	ev := NewEventSet(tm, 8)
	// Each thread appends (thread, stage) tokens; the pipeline forces
	// thread i to pass stage s only after thread i-1 did.
	var order [4 * 8]int64
	var pos atomic.Int64
	tm.Parallel(func(tr *Thread) {
		for s := 0; s < 8; s++ {
			if tr.ID > 0 {
				ev.Wait(tr, tr.ID-1, s)
			}
			order[pos.Add(1)-1] = int64(tr.ID*100 + s)
			tr.CPU.Advance(1000)
			ev.Post(tr, s)
		}
	})
	// Check the pipeline invariant: for every thread i>0 and stage s,
	// (i,s) appears after (i-1,s).
	idx := map[int64]int{}
	for i, tok := range order {
		idx[tok] = i
	}
	for i := 1; i < 4; i++ {
		for s := 0; s < 8; s++ {
			if idx[int64(i*100+s)] < idx[int64((i-1)*100+s)] {
				t.Fatalf("thread %d passed stage %d before thread %d", i, s, i-1)
			}
		}
	}
}

func TestEventWaitPropagatesVirtualTime(t *testing.T) {
	tm := newTeam(t, 2)
	var waiterTime, posterTime int64
	ev := NewEventSet(tm, 1)
	tm.Parallel(func(tr *Thread) {
		if tr.ID == 0 {
			tr.CPU.Advance(5_000_000) // the poster is 5 us ahead
			ev.Post(tr, 0)
			posterTime = tr.CPU.Now()
		} else {
			ev.Wait(tr, 0, 0)
			waiterTime = tr.CPU.Now()
		}
	})
	if waiterTime < posterTime {
		t.Errorf("waiter resumed at %d, before the post at %d", waiterTime, posterTime)
	}
}

func TestEventResetClearsPosts(t *testing.T) {
	tm := newTeam(t, 1)
	ev := NewEventSet(tm, 2)
	tm.Parallel(func(tr *Thread) {
		ev.Post(tr, 0)
	})
	ev.Reset()
	// After reset, a serial-mode wait sees an unposted cell (clock 0).
	tm.SetSerial(true)
	tm.Parallel(func(tr *Thread) {
		before := tr.CPU.Now()
		ev.Wait(tr, 0, 0)
		if tr.CPU.Now() < before {
			t.Error("clock went backwards")
		}
	})
}

func TestEventSetPanicsOutOfRange(t *testing.T) {
	tm := newTeam(t, 2)
	ev := NewEventSet(tm, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range event")
		}
	}()
	// White-box: drive Post directly so the panic lands on this
	// goroutine (panics inside Parallel workers crash the process).
	tr := &Thread{ID: 0, CPU: tm.Machine().CPU(0), team: tm}
	ev.Post(tr, 5)
}

func TestCriticalMutualExclusionAndSerialisedTime(t *testing.T) {
	tm := newTeam(t, 8)
	var inside, max32 atomic.Int32
	count := 0
	tm.Parallel(func(tr *Thread) {
		for i := 0; i < 10; i++ {
			tr.Critical("ctr", func(c *machine.CPU) {
				if v := inside.Add(1); v > max32.Load() {
					max32.Store(v)
				}
				count++ // safe: inside the section
				c.Advance(10_000)
				inside.Add(-1)
			})
		}
	})
	if count != 80 {
		t.Errorf("count = %d, want 80 (lost updates)", count)
	}
	if max32.Load() != 1 {
		t.Errorf("max concurrency in section = %d, want 1", max32.Load())
	}
	// Virtual time must reflect serialisation: 80 sections of >=10 ns
	// body plus enter/exit costs cannot complete before their sum.
	minSpan := int64(80 * (10_000 + critEnterCost + critExitCost))
	if got := tm.Master().Now(); got < minSpan {
		t.Errorf("join at %d ps, below the serialised bound %d", got, minSpan)
	}
}

func TestNamedCriticalSectionsAreIndependent(t *testing.T) {
	tm := newTeam(t, 2)
	ev := NewEventSet(tm, 1)
	// Thread 1 parks inside section "a" until thread 0 has passed
	// section "b": if the names shared a lock this would deadlock.
	tm.Parallel(func(tr *Thread) {
		if tr.ID == 1 {
			tr.Critical("a", func(c *machine.CPU) {
				ev.Wait(tr, 0, 0)
			})
		} else {
			tr.Critical("b", func(c *machine.CPU) {})
			ev.Post(tr, 0)
		}
	})
}

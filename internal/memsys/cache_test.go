package memsys

import (
	"testing"
	"testing/quick"
)

func TestNewCacheRejectsBadShapes(t *testing.T) {
	cases := []struct{ size, line, ways int }{
		{0, 32, 2}, {1024, 0, 2}, {1024, 33, 2}, {1024, 32, 0},
		{1000, 32, 2}, {32 * 3 * 2, 32, 2}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := NewCache(c.size, c.line, c.ways); err == nil {
			t.Errorf("NewCache(%d,%d,%d) succeeded, want error", c.size, c.line, c.ways)
		}
	}
}

func TestCacheShape(t *testing.T) {
	c := MustCache(32*1024, 32, 2)
	if c.LineBytes() != 32 || c.Ways() != 2 || c.Sets() != 512 {
		t.Errorf("shape = %d/%d/%d, want 32/2/512", c.LineBytes(), c.Ways(), c.Sets())
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := MustCache(1024, 32, 2)
	if c.Access(0x1000, 0, 0) {
		t.Error("first access hit")
	}
	if !c.Access(0x1000, 0, 0) {
		t.Error("second access missed")
	}
	if !c.Access(0x101f, 0, 0) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1020, 0, 0) {
		t.Error("next-line access hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, line 32, size 128 -> 2 sets. Set 0 holds lines with even
	// line index.
	c := MustCache(128, 32, 2)
	a, b, d := uint64(0), uint64(128), uint64(256) // all map to set 0
	c.Access(a, 0, 0)
	c.Access(b, 0, 0)
	c.Access(a, 0, 0) // a is MRU
	c.Access(d, 0, 0) // evicts b
	if !c.Contains(a) {
		t.Error("a evicted, want kept (MRU)")
	}
	if c.Contains(b) {
		t.Error("b kept, want evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d not inserted")
	}
}

func TestCacheFlush(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(64, 0, 0)
	c.Flush()
	if c.Contains(64) {
		t.Error("line survived Flush")
	}
}

func TestCacheStats(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(0, 0, 0)
	c.Access(0, 0, 0)
	c.Access(32, 0, 0)
	h, m := c.Stats()
	if h != 1 || m != 2 {
		t.Errorf("stats = %d hits/%d misses, want 1/2", h, m)
	}
}

// Property: immediately after any access, the line is resident.
func TestCacheAccessMakesResident(t *testing.T) {
	c := MustCache(4096, 128, 4)
	f := func(addr uint64) bool {
		c.Access(addr, 0, 0)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than the associativity within one set
// never misses after the first touch (LRU guarantees this).
func TestCacheNoThrashWithinAssociativity(t *testing.T) {
	c := MustCache(1024, 32, 4)         // 8 sets, 4 ways
	addrs := []uint64{0, 256, 512, 768} // all set 0
	for _, a := range addrs {
		c.Access(a, 0, 0)
	}
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			if !c.Access(a, 0, 0) {
				t.Fatalf("round %d: address %#x missed", round, a)
			}
		}
	}
}

func TestTLBLookupInsert(t *testing.T) {
	tlb := MustTLB(64, 8)
	if tlb.Lookup(7, 0) {
		t.Error("empty TLB hit")
	}
	tlb.Insert(7, 0)
	if !tlb.Lookup(7, 0) {
		t.Error("inserted vpn missed")
	}
}

func TestTLBGenerationShootdown(t *testing.T) {
	tlb := MustTLB(64, 8)
	tlb.Insert(7, 0)
	if tlb.Lookup(7, 1) {
		t.Error("stale-generation entry hit; shootdown not applied")
	}
	// The stale entry must have been dropped: even the old generation
	// misses now.
	if tlb.Lookup(7, 0) {
		t.Error("stale entry survived generation mismatch")
	}
	tlb.Insert(7, 1)
	if !tlb.Lookup(7, 1) {
		t.Error("reinserted entry missed")
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	tlb := MustTLB(2, 2) // one set, two ways
	tlb.Insert(1, 0)
	tlb.Insert(2, 0)
	tlb.Lookup(1, 0) // 1 becomes MRU
	tlb.Insert(3, 0) // evicts 2
	if !tlb.Lookup(1, 0) {
		t.Error("MRU entry evicted")
	}
	if tlb.Lookup(2, 0) {
		t.Error("LRU entry kept")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := MustTLB(64, 8)
	tlb.Insert(3, 0)
	tlb.Flush()
	if tlb.Lookup(3, 0) {
		t.Error("entry survived Flush")
	}
}

func TestTLBRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ e, w int }{{0, 1}, {8, 0}, {8, 3}, {24, 8}} {
		if _, err := NewTLB(c.e, c.w); err == nil {
			t.Errorf("NewTLB(%d,%d) succeeded, want error", c.e, c.w)
		}
	}
}

func TestTLBEntriesAndStats(t *testing.T) {
	tlb := MustTLB(64, 8)
	if tlb.Entries() != 64 {
		t.Errorf("Entries = %d, want 64", tlb.Entries())
	}
	tlb.Lookup(1, 0) // miss
	tlb.Insert(1, 0)
	tlb.Lookup(1, 0) // hit
	h, m := tlb.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d/%d, want 1/1", h, m)
	}
}

func TestMustTLBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTLB(3,2) did not panic")
		}
	}()
	MustTLB(3, 2)
}

func TestMustCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCache bad shape did not panic")
		}
	}()
	MustCache(100, 32, 2)
}

// Property: a stale-version hit refills in place, so the immediately
// following access at the new version hits.
func TestCacheStaleRefill(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(64, 0, 0)
	if c.Access(64, 1, 1) {
		t.Fatal("stale copy hit")
	}
	if !c.Access(64, 1, 1) {
		t.Error("refilled copy missed")
	}
}

// A writer's own refill must stay valid for itself: fill with newVer >
// ver, then access at newVer.
func TestCacheWriterKeepsOwnCopy(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(64, 3, 4) // write path: validate at 3, stamp 4
	if !c.Access(64, 4, 4) {
		t.Error("writer's own copy went stale")
	}
}

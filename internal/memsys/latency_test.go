package memsys

import (
	"testing"
	"testing/quick"
)

func TestOrigin2000Table1(t *testing.T) {
	l := Origin2000()
	cases := []struct {
		hops int
		want int64
	}{
		{0, 329 * Nano},
		{1, 564 * Nano},
		{2, 759 * Nano},
		{3, 862 * Nano},
		{4, 962 * Nano}, // extrapolated
		{5, 1062 * Nano},
	}
	for _, c := range cases {
		if got := l.MemLatency(c.hops); got != c.want {
			t.Errorf("MemLatency(%d) = %d ps, want %d ps", c.hops, got, c.want)
		}
	}
	if l.L1Hit != 5500*Pico {
		t.Errorf("L1Hit = %d, want 5500 ps", l.L1Hit)
	}
	if l.L2Hit != 56900*Pico {
		t.Errorf("L2Hit = %d, want 56900 ps", l.L2Hit)
	}
}

func TestRemoteToLocalRatioMatchesPaper(t *testing.T) {
	// The paper stresses that the Origin2000 remote:local ratio is between
	// 2:1 and 3:1; the model must preserve that.
	l := Origin2000()
	local := l.MemLatency(0)
	for h := 1; h <= 3; h++ {
		r := float64(l.MemLatency(h)) / float64(local)
		if r < 1.5 || r > 3.0 {
			t.Errorf("remote(%d hops):local ratio = %.2f, want within [1.5,3.0]", h, r)
		}
	}
}

func TestScaleRemote(t *testing.T) {
	l := Origin2000().ScaleRemote(3, 1)
	if l.MemLatency(0) != 329*Nano {
		t.Errorf("local latency changed by ScaleRemote: %d", l.MemLatency(0))
	}
	want := 329*Nano + 3*(564-329)*Nano
	if got := l.MemLatency(1); got != want {
		t.Errorf("scaled 1-hop = %d, want %d", got, want)
	}
	// Original must be unchanged (value receiver).
	if Origin2000().MemLatency(1) != 564*Nano {
		t.Error("ScaleRemote mutated the source Latency")
	}
}

func TestMemLatencyMonotoneInHops(t *testing.T) {
	l := Origin2000()
	f := func(a, b uint8) bool {
		ha, hb := int(a%12), int(b%12)
		if ha > hb {
			ha, hb = hb, ha
		}
		return l.MemLatency(ha) <= l.MemLatency(hb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContentionDelaysIdleAndLowLoad(t *testing.T) {
	per, floor := ContentionDelays([]int64{0, 0}, 1000*Nano, 155*Nano)
	if per[0] != 0 || per[1] != 0 || floor != 0 {
		t.Errorf("idle nodes: per=%v floor=%d, want zeros", per, floor)
	}
	// 1 access in a long region: utilisation ~0.
	per, _ = ContentionDelays([]int64{1}, SecondPicos, 155*Nano)
	if per[0] != 0 {
		t.Errorf("low load delay = %d, want 0", per[0])
	}
}

func TestContentionDelaysSaturationFloor(t *testing.T) {
	// 10000 accesses of 155 ns service on one node: busy = 1.55 ms.
	per, floor := ContentionDelays([]int64{10000}, 100*Micro, 155*Nano)
	if floor != 10000*155*Nano {
		t.Errorf("floor = %d, want %d", floor, 10000*155*Nano)
	}
	if per[0] <= 0 {
		t.Error("saturated node has zero per-access delay")
	}
}

func TestContentionDelaysMonotoneInLoad(t *testing.T) {
	s := int64(155 * Nano)
	t0 := int64(1000 * Micro)
	prev := int64(-1)
	for a := int64(0); a <= 12000; a += 500 {
		per, _ := ContentionDelays([]int64{a}, t0, s)
		if per[0] < prev {
			t.Fatalf("delay not monotone: %d accesses -> %d, previous %d", a, per[0], prev)
		}
		prev = per[0]
	}
}

func TestContentionDelaysBalancedVsConcentrated(t *testing.T) {
	// Same total traffic, spread over 8 nodes vs concentrated on 1: the
	// concentrated case must cost strictly more per access and have a
	// larger floor. This is the mechanism behind the paper's worst-case
	// placement results.
	s := int64(155 * Nano)
	t0 := int64(2 * Milli)
	total := int64(16000)
	spread := make([]int64, 8)
	for i := range spread {
		spread[i] = total / 8
	}
	conc := make([]int64, 8)
	conc[0] = total
	perS, floorS := ContentionDelays(spread, t0, s)
	perC, floorC := ContentionDelays(conc, t0, s)
	if perC[0] <= perS[0] {
		t.Errorf("concentrated per-access delay %d <= spread %d", perC[0], perS[0])
	}
	if floorC <= floorS {
		t.Errorf("concentrated floor %d <= spread floor %d", floorC, floorS)
	}
}

func TestContentionDelaysZeroDuration(t *testing.T) {
	// A zero-length region must not divide by zero.
	per, _ := ContentionDelays([]int64{5}, 0, 155*Nano)
	if per[0] < 0 {
		t.Error("negative delay for zero-duration region")
	}
}

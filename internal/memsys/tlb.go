package memsys

import "fmt"

// TLB is a set-associative translation lookaside buffer over virtual page
// numbers. Each entry carries the page-table generation observed when the
// translation was loaded; a page migration bumps the page's generation, so
// stale entries miss on their next use. This models lazy TLB shootdown —
// the eager interprocessor-interrupt cost of a shootdown is charged by the
// migration engines themselves.
type TLB struct {
	ways    int
	setMask uint64
	vpns    []uint64 // vpn+1, 0 invalid
	gens    []uint32
	age     []uint64
	tick    uint64

	hits, misses uint64
}

// NewTLB builds a TLB with the given number of entries and associativity.
// entries must be a power-of-two multiple of ways.
func NewTLB(entries, ways int) (*TLB, error) {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("memsys: TLB shape %d entries / %d ways invalid", entries, ways)
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("memsys: TLB set count %d not a power of two", sets)
	}
	return &TLB{
		ways:    ways,
		setMask: uint64(sets - 1),
		vpns:    make([]uint64, entries),
		gens:    make([]uint32, entries),
		age:     make([]uint64, entries),
	}, nil
}

// MustTLB is NewTLB for statically known shapes.
func MustTLB(entries, ways int) *TLB {
	t, err := NewTLB(entries, ways)
	if err != nil {
		panic(err)
	}
	return t
}

// Lookup reports whether vpn has a translation loaded at generation gen.
// An entry whose generation does not match is invalidated (a shootdown
// took effect) and the lookup misses.
func (t *TLB) Lookup(vpn uint64, gen uint32) bool {
	set := int(vpn&t.setMask) * t.ways
	tag := vpn + 1
	t.tick++
	for w := 0; w < t.ways; w++ {
		if t.vpns[set+w] == tag {
			if t.gens[set+w] != gen {
				t.vpns[set+w] = 0
				t.misses++
				return false
			}
			t.age[set+w] = t.tick
			t.hits++
			return true
		}
	}
	t.misses++
	return false
}

// LookupRun performs n lookups of vpn at generation gen: the first has the
// full semantics of Lookup, with the translation loaded via Insert when it
// misses, and the remaining n-1 are the guaranteed hits a just-loaded
// translation gives. It reports whether the first lookup hit (the caller
// charges one refill when it did not). Tick, the entry's age, and the
// hit/miss counters end up bit-identical to n Lookup calls plus the one
// Insert a scalar caller would have issued.
func (t *TLB) LookupRun(vpn uint64, gen uint32, n int) bool {
	if n <= 0 {
		return true
	}
	hit := t.Lookup(vpn, gen)
	if !hit {
		t.Insert(vpn, gen)
	}
	if n > 1 {
		t.tick += uint64(n - 1)
		t.hits += uint64(n - 1)
		set := int(vpn&t.setMask) * t.ways
		tag := vpn + 1
		for w := 0; w < t.ways; w++ {
			if t.vpns[set+w] == tag {
				t.age[set+w] = t.tick
				break
			}
		}
	}
	return hit
}

// Clone returns a deep copy of the TLB: resident translations with their
// shootdown generations, LRU state and hit/miss counters. See
// Cache.Clone for the snapshot/fork use.
func (t *TLB) Clone() *TLB {
	return &TLB{
		ways:    t.ways,
		setMask: t.setMask,
		vpns:    append([]uint64(nil), t.vpns...),
		gens:    append([]uint32(nil), t.gens...),
		age:     append([]uint64(nil), t.age...),
		tick:    t.tick,
		hits:    t.hits,
		misses:  t.misses,
	}
}

// Insert loads the translation for vpn at generation gen, evicting LRU.
func (t *TLB) Insert(vpn uint64, gen uint32) {
	set := int(vpn&t.setMask) * t.ways
	tag := vpn + 1
	t.tick++
	victim := set
	for w := 0; w < t.ways; w++ {
		if t.vpns[set+w] == tag || t.vpns[set+w] == 0 {
			victim = set + w
			break
		}
		if t.age[set+w] < t.age[victim] {
			victim = set + w
		}
	}
	t.vpns[victim] = tag
	t.gens[victim] = gen
	t.age[victim] = t.tick
}

// Flush drops every translation.
func (t *TLB) Flush() {
	for i := range t.vpns {
		t.vpns[i] = 0
	}
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.vpns) }

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

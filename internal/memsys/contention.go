package memsys

// Contention models each memory node as a single server with fixed
// per-access occupancy (Latency.MemService). It is evaluated in bulk at
// every barrier over the accesses of the just-finished region, which keeps
// the simulation deterministic under real goroutine parallelism:
//
//   - below saturation, every access to node n pays an M/D/1-style queueing
//     delay that grows with the node's utilisation during the region;
//   - a saturated node bounds the region's wall-clock time from below by
//     its total busy time (the "floor"), which is what makes the paper's
//     worst-case placement collapse: all processors contend for the memory
//     of one node.
//
// The model intentionally ignores network-link contention; the paper
// attributes the worst-case pain to memory-module contention, which is
// captured here.

// ContentionDelays computes, for each node, the extra delay charged to
// every access to that node, given the per-node access counts of a region,
// the uncontended region duration t0 (picoseconds), and the per-access
// service occupancy. It also returns the largest per-node busy time, which
// callers use as a lower bound ("floor") on the region's wall-clock span.
func ContentionDelays(accesses []int64, t0, service int64) (perAccess []int64, busyFloor int64) {
	perAccess = make([]int64, len(accesses))
	if t0 < 1 {
		t0 = 1
	}
	for n, a := range accesses {
		if a <= 0 {
			continue
		}
		busy := a * service
		if busy > busyFloor {
			busyFloor = busy
		}
		// Utilisation in parts per 1024 to stay in integers.
		u := busy * 1024 / t0
		switch {
		case u <= 512: // below 50% utilisation: negligible queueing
			continue
		case u >= 973: // >= ~95%: cap the queueing term; the floor takes over
			perAccess[n] = service * 19 / 2
		default:
			// M/D/1 waiting time: Wq = service * u / (2*(1-u)).
			perAccess[n] = service * u / (2 * (1024 - u))
		}
	}
	return perAccess, busyFloor
}

package memsys

import (
	"reflect"
	"testing"
)

// TestCacheCloneIsolation: a clone is bit-identical to its parent
// (contents, LRU age, hit/miss stats) and the two diverge independently
// afterwards — the memsys half of the machine snapshot invariant.
func TestCacheCloneIsolation(t *testing.T) {
	c := MustCache(4*1024, 64, 2)
	for i := uint64(0); i < 512; i++ {
		c.Access(i*64, 0, 0)
	}
	c.Access(0, 0, 0) // a hit, so the stats are non-trivial

	k := c.Clone()
	if !reflect.DeepEqual(c, k) {
		t.Fatal("clone differs from parent")
	}

	// Disturb the clone: new lines evict, stats advance, a version bump
	// invalidates. The parent must not move.
	before := *c
	beforeTags := append([]uint64(nil), c.tags...)
	for i := uint64(1000); i < 1100; i++ {
		k.Access(i*64, 0, 0)
	}
	k.Access(0, 1, 1)
	k.Flush()
	if h, m := c.Stats(); h != before.hits || m != before.misses {
		t.Error("mutating the clone changed the parent's stats")
	}
	if !reflect.DeepEqual(c.tags, beforeTags) {
		t.Error("mutating the clone changed the parent's tags")
	}

	// And the reverse: the parent keeps running, the clone's snapshot of
	// the original state must not move.
	k2 := c.Clone()
	for i := uint64(2000); i < 2100; i++ {
		c.Access(i*64, 0, 0)
	}
	if reflect.DeepEqual(c, k2) {
		t.Error("parent did not diverge from the clone")
	}
	if hits, _ := k2.Stats(); hits != before.hits {
		t.Error("mutating the parent changed the clone")
	}
}

// TestTLBCloneIsolation mirrors the cache test for the TLB, including
// the shootdown generations that version its entries.
func TestTLBCloneIsolation(t *testing.T) {
	tl := MustTLB(64, 4)
	for v := uint64(0); v < 100; v++ {
		if !tl.Lookup(v, 1) {
			tl.Insert(v, 1)
		}
	}
	tl.Lookup(99, 1) // hit

	k := tl.Clone()
	if !reflect.DeepEqual(tl, k) {
		t.Fatal("clone differs from parent")
	}

	hits, misses := tl.Stats()
	for v := uint64(500); v < 600; v++ {
		k.Insert(v, 2)
		k.Lookup(v, 2)
	}
	k.Flush()
	if h, m := tl.Stats(); h != hits || m != misses {
		t.Error("mutating the clone changed the parent's stats")
	}
	if !tl.Lookup(99, 1) {
		t.Error("mutating the clone evicted the parent's entries")
	}
}

// Package memsys provides the building blocks of the simulated memory
// hierarchy: set-associative caches, a TLB with generation-based shootdown,
// the ccNUMA latency ladder of the paper's Table 1, and the memory-node
// contention model. All times are integer picoseconds so that simulated
// executions are exactly reproducible across hosts.
package memsys

import "fmt"

// Cache is a set-associative, write-allocate cache with LRU replacement.
// It tracks tags only (the simulator keeps array values in ordinary Go
// memory); Access reports hit/miss and updates the replacement state.
//
// Tags are derived from virtual addresses. A virtually-indexed,
// virtually-tagged cache means a page migration does not displace cached
// lines; the migration cost and TLB shootdown are charged explicitly
// elsewhere. DESIGN.md lists this as a documented simplification.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	tags      []uint64 // sets*ways, 0 means invalid, otherwise lineAddr+1
	vers      []uint32 // coherence version captured when the line was filled
	age       []uint64 // LRU timestamps, parallel to tags
	tick      uint64

	hits, misses uint64
}

// NewCache builds a cache of sizeBytes with lineBytes lines and the given
// associativity. sizeBytes must be a multiple of lineBytes*ways and all
// shape parameters must be powers of two.
func NewCache(sizeBytes, lineBytes, ways int) (*Cache, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("memsys: line size %d not a power of two", lineBytes)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("memsys: associativity %d invalid", ways)
	}
	if sizeBytes <= 0 || sizeBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("memsys: size %d not divisible by line*ways = %d", sizeBytes, lineBytes*ways)
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("memsys: set count %d not a power of two", sets)
	}
	c := &Cache{
		ways: ways,
		tags: make([]uint64, sets*ways),
		vers: make([]uint32, sets*ways),
		age:  make([]uint64, sets*ways),
	}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustCache is NewCache for statically known shapes.
func MustCache(sizeBytes, lineBytes, ways int) *Cache {
	c, err := NewCache(sizeBytes, lineBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks up addr at coherence version ver, returns true on a hit,
// and on a miss allocates the line (evicting the LRU way). A resident line
// whose stored version differs from ver is a stale copy — another CPU
// wrote the coherence unit since it was filled — and misses (the
// invalidation a real protocol would have delivered). On both hit and
// fill, the entry's version becomes newVer; a writer passes newVer > ver
// so its own copy stays valid while every other cache's copy goes stale.
func (c *Cache) Access(addr uint64, ver, newVer uint32) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == tag {
			c.age[set+w] = c.tick
			if c.vers[set+w] != ver {
				// Stale: treat as an invalidation-induced miss and
				// refill in place.
				c.vers[set+w] = newVer
				c.misses++
				return false
			}
			c.vers[set+w] = newVer
			c.hits++
			return true
		}
	}
	c.misses++
	victim := set
	for w := 1; w < c.ways; w++ {
		if c.age[set+w] < c.age[victim] {
			victim = set + w
		}
	}
	c.tags[victim] = tag
	c.vers[victim] = newVer
	c.age[victim] = c.tick
	return false
}

// Contains reports whether addr is resident without disturbing LRU state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
}

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.tags) / c.ways }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Package memsys provides the building blocks of the simulated memory
// hierarchy: set-associative caches, a TLB with generation-based shootdown,
// the ccNUMA latency ladder of the paper's Table 1, and the memory-node
// contention model. All times are integer picoseconds so that simulated
// executions are exactly reproducible across hosts.
package memsys

import "fmt"

// Cache is a set-associative, write-allocate cache with LRU replacement.
// It tracks tags only (the simulator keeps array values in ordinary Go
// memory); Access reports hit/miss and updates the replacement state.
//
// Tags are derived from virtual addresses. A virtually-indexed,
// virtually-tagged cache means a page migration does not displace cached
// lines; the migration cost and TLB shootdown are charged explicitly
// elsewhere. DESIGN.md lists this as a documented simplification.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	tags      []uint64 // sets*ways, 0 means invalid, otherwise lineAddr+1
	vers      []uint32 // coherence version captured when the line was filled
	age       []uint64 // LRU timestamps, parallel to tags
	tick      uint64

	hits, misses uint64
}

// NewCache builds a cache of sizeBytes with lineBytes lines and the given
// associativity. sizeBytes must be a multiple of lineBytes*ways and all
// shape parameters must be powers of two.
func NewCache(sizeBytes, lineBytes, ways int) (*Cache, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("memsys: line size %d not a power of two", lineBytes)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("memsys: associativity %d invalid", ways)
	}
	if sizeBytes <= 0 || sizeBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("memsys: size %d not divisible by line*ways = %d", sizeBytes, lineBytes*ways)
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("memsys: set count %d not a power of two", sets)
	}
	c := &Cache{
		ways: ways,
		tags: make([]uint64, sets*ways),
		vers: make([]uint32, sets*ways),
		age:  make([]uint64, sets*ways),
	}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustCache is NewCache for statically known shapes.
func MustCache(sizeBytes, lineBytes, ways int) *Cache {
	c, err := NewCache(sizeBytes, lineBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks up addr at coherence version ver, returns true on a hit,
// and on a miss allocates the line (evicting the LRU way). A resident line
// whose stored version differs from ver is a stale copy — another CPU
// wrote the coherence unit since it was filled — and misses (the
// invalidation a real protocol would have delivered). On both hit and
// fill, the entry's version becomes newVer; a writer passes newVer > ver
// so its own copy stays valid while every other cache's copy goes stale.
func (c *Cache) Access(addr uint64, ver, newVer uint32) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == tag {
			c.age[set+w] = c.tick
			if c.vers[set+w] != ver {
				// Stale: treat as an invalidation-induced miss and
				// refill in place.
				c.vers[set+w] = newVer
				c.misses++
				return false
			}
			c.vers[set+w] = newVer
			c.hits++
			return true
		}
	}
	c.misses++
	victim := set
	for w := 1; w < c.ways; w++ {
		if c.age[set+w] < c.age[victim] {
			victim = set + w
		}
	}
	c.tags[victim] = tag
	c.vers[victim] = newVer
	c.age[victim] = c.tick
	return false
}

// AccessRange performs n consecutive accesses that all fall within the
// line containing addr: the first has the full lookup/fill/invalidate
// semantics of Access, and the remaining n-1 are the guaranteed hits that
// immediately repeated references to a just-touched line produce. It
// reports whether the first access hit. The replacement state it leaves
// behind — tick, the line's age, hit and miss counts — is bit-identical
// to n individual Access calls, which is what lets the bulk path of
// internal/machine substitute one probe for a per-element loop.
func (c *Cache) AccessRange(addr uint64, n int, ver, newVer uint32) bool {
	if n <= 0 {
		return true
	}
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	c.tick += uint64(n)
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == tag {
			c.age[set+w] = c.tick
			if c.vers[set+w] != ver {
				// Stale copy: the first access misses and refills in
				// place; the rest hit the refreshed line.
				c.vers[set+w] = newVer
				c.misses++
				c.hits += uint64(n - 1)
				return false
			}
			c.vers[set+w] = newVer
			c.hits += uint64(n)
			return true
		}
	}
	c.misses++
	c.hits += uint64(n - 1)
	victim := set
	for w := 1; w < c.ways; w++ {
		if c.age[set+w] < c.age[victim] {
			victim = set + w
		}
	}
	c.tags[victim] = tag
	c.vers[victim] = newVer
	c.age[victim] = c.tick
	return false
}

// AccessLines probes nLines consecutive cache lines in one call — the
// whole-coherence-unit companion to AccessRange for contiguous runs whose
// stride does not exceed the line size. The line containing addr holds
// firstCount elements, full middle lines perLine each, and the last line
// lastCount. The first element of the call validates against ver and
// every later line against newVer (the caller has just stamped the unit's
// new version), exactly as successive per-line AccessRange calls would;
// tick, ages, hit and miss counts come out bit-identical. It returns the
// number of missing lines plus the address and version of the first miss,
// which the caller forwards to the next cache level.
func (c *Cache) AccessLines(addr uint64, nLines, firstCount, perLine, lastCount int, ver, newVer uint32) (misses int, missAddr uint64, missVer uint32) {
	line := addr >> c.lineShift
	tags, vers, age := c.tags, c.vers, c.age
	tick, hits, missCnt := c.tick, c.hits, c.misses
	v := ver
	for i := 0; i < nLines; i++ {
		n := perLine
		if i == 0 {
			n = firstCount
		} else if i == nLines-1 {
			n = lastCount
		}
		set := int(line&c.setMask) * c.ways
		tag := line + 1
		tick += uint64(n)
		hit, resident := false, false
		if c.ways == 2 {
			// The paper machine's caches are 2-way; probing both ways
			// branch-free keeps this innermost loop flat.
			if tags[set] == tag {
				age[set] = tick
				resident = true
				hit = vers[set] == v
				vers[set] = newVer
			} else if tags[set+1] == tag {
				age[set+1] = tick
				resident = true
				hit = vers[set+1] == v
				vers[set+1] = newVer
			}
		} else {
			for w := 0; w < c.ways; w++ {
				if tags[set+w] == tag {
					age[set+w] = tick
					resident = true
					hit = vers[set+w] == v
					vers[set+w] = newVer
					break
				}
			}
		}
		if hit {
			hits += uint64(n)
		} else {
			if !resident {
				victim := set
				if c.ways == 2 {
					// Matches the general scan below for the 2-way
					// machine without paying the loop set-up.
					if age[set+1] < age[set] {
						victim = set + 1
					}
				} else {
					for w := 1; w < c.ways; w++ {
						if age[set+w] < age[victim] {
							victim = set + w
						}
					}
				}
				tags[victim] = tag
				vers[victim] = newVer
				age[victim] = tick
			}
			missCnt++
			hits += uint64(n - 1)
			if misses == 0 {
				missAddr, missVer = line<<c.lineShift, v
			}
			misses++
		}
		v = newVer
		line++
	}
	c.tick, c.hits, c.misses = tick, hits, missCnt
	return misses, missAddr, missVer
}

// ResidentRun checks that the nLines consecutive lines starting at the
// line containing addr are all resident with stored coherence version ver,
// appending each line's slot index to slots. It mutates nothing and reads
// no LRU state, so a failed check (ok=false, slots possibly part-filled
// for the caller to discard) leaves the cache untouched and the normal
// access path free to run. The resident-elision fast path of
// internal/machine uses it as the proof obligation before Replay.
func (c *Cache) ResidentRun(addr uint64, nLines int, ver uint32, slots []int32) ([]int32, bool) {
	line := addr >> c.lineShift
	for i := 0; i < nLines; i++ {
		set := int(line&c.setMask) * c.ways
		tag := line + 1
		found := -1
		for w := 0; w < c.ways; w++ {
			if c.tags[set+w] == tag {
				found = set + w
				break
			}
		}
		if found < 0 || c.vers[found] != ver {
			return slots, false
		}
		slots = append(slots, int32(found))
		line++
	}
	return slots, true
}

// Replay charges a proven all-hit read run over previously collected
// slots: counts[i] guaranteed hits to slots[i], in line order. Tick, the
// hit count and the slots' LRU stamps come out bit-identical to the
// AccessRange/AccessLines walk the normal path would have performed; tags
// and versions are untouched, which is exact because ResidentRun proved
// each stored version already equals the value a read hit would re-stamp.
func (c *Cache) Replay(slots []int32, counts []int32) {
	tick := c.tick
	var n uint64
	for i, s := range slots {
		cnt := uint64(counts[i])
		tick += cnt
		n += cnt
		c.age[s] = tick
	}
	c.tick = tick
	c.hits += n
}

// Clone returns a deep copy of the cache: tags, coherence versions, LRU
// state and hit/miss counters. Subsequent accesses to either copy leave
// the other bit-for-bit untouched, which is what lets a forked machine
// resume a simulation exactly where its parent stopped.
func (c *Cache) Clone() *Cache {
	return &Cache{
		lineShift: c.lineShift,
		setMask:   c.setMask,
		ways:      c.ways,
		tags:      append([]uint64(nil), c.tags...),
		vers:      append([]uint32(nil), c.vers...),
		age:       append([]uint64(nil), c.age...),
		tick:      c.tick,
		hits:      c.hits,
		misses:    c.misses,
	}
}

// Contains reports whether addr is resident without disturbing LRU state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
}

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.tags) / c.ways }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Tick returns the LRU timestamp counter, which advances by exactly one
// per simulated access. The steady-state detector includes it in the
// per-iteration counter vector: equal tick deltas across iterations are a
// necessary condition for the replacement state to be on a periodic
// orbit.
func (c *Cache) Tick() uint64 { return c.tick }

// FastForward advances the cache's monotone counters by k repetitions of
// the per-iteration deltas (dHits, dMisses, dTick) without simulating the
// accesses behind them. The steady-state fast-forward engine calls this
// after proving the deltas repeat; tags, versions and relative LRU ages
// are left untouched, which is sound because an extrapolated run performs
// no further simulated accesses that could consult them.
func (c *Cache) FastForward(dHits, dMisses, dTick uint64, k int64) {
	c.hits += dHits * uint64(k)
	c.misses += dMisses * uint64(k)
	c.tick += dTick * uint64(k)
}

package memsys

// Pico is one picosecond; all simulator times are int64 picoseconds.
const (
	Pico        int64 = 1
	Nano              = 1000 * Pico
	Micro             = 1000 * Nano
	Milli             = 1000 * Micro
	SecondPicos       = 1000 * Milli
)

// Latency holds every timing constant of the simulated machine. The memory
// ladder reproduces Table 1 of the paper (contended access latency on a
// 16-processor Origin2000); the system-software costs are set to
// Origin2000/IRIX magnitudes discussed in the paper and its references.
type Latency struct {
	// Core.
	FlopCost int64 // charged per floating-point operation by kernels
	L1Hit    int64 // load-to-use on an L1 hit
	L2Hit    int64 // additional cost of an L2 hit (L1 miss)

	// Memory ladder: MemByHops[h] is the cost of an L2 miss served by a
	// memory h hops away. Distances beyond the table extrapolate by
	// ExtraHop per hop.
	MemByHops []int64
	ExtraHop  int64

	// Virtual memory.
	TLBRefill int64 // software-reload cost of a TLB miss
	PageFault int64 // first-access fault: zero-fill + placement decision

	// Page migration: fixed kernel work per migration, a per-byte copy
	// cost, and a per-processor TLB shootdown interrupt cost.
	// MigratePageBatched is the much smaller fixed per-page cost inside a
	// batched range migration (one syscall migrating many pages, as the
	// IRIX memory-locality-domain interface offers to user level).
	MigratePage        int64
	MigratePageBatched int64
	MigrateBytePS      int64
	ShootdownPerCPU    int64

	// Runtime (fork/join and barrier management).
	Fork          int64 // charged to every worker when a team is forked
	BarrierBase   int64
	BarrierPerCPU int64

	// Contention: per-access occupancy of a memory node (directory +
	// DRAM service for one cache line).
	MemService int64
}

// Origin2000 returns the latency model of the machine evaluated in the
// paper: 250 MHz R10000, Table 1 ladder (5.5 ns L1, 56.9 ns L2, 329 ns
// local, 564/759/862 ns at 1/2/3 hops).
func Origin2000() Latency {
	return Latency{
		FlopCost:           2 * Nano, // 250 MHz, ~2 cycles sustained per flop
		L1Hit:              5*Nano + 500*Pico,
		L2Hit:              56*Nano + 900*Pico,
		MemByHops:          []int64{329 * Nano, 564 * Nano, 759 * Nano, 862 * Nano},
		ExtraHop:           100 * Nano,
		TLBRefill:          500 * Nano,
		PageFault:          25 * Micro,
		MigratePage:        8 * Micro,
		MigratePageBatched: 1500 * Nano,
		MigrateBytePS:      1250 * Pico, // ~800 MB/s page copy
		ShootdownPerCPU:    1500 * Nano,
		Fork:               4 * Micro,
		BarrierBase:        3 * Micro,
		BarrierPerCPU:      250 * Nano,
		MemService:         155 * Nano, // ~128-byte line at ~800 MB/s per node
	}
}

// MemLatency returns the cost of an L2 miss served hops router hops away.
func (l Latency) MemLatency(hops int) int64 {
	if hops < len(l.MemByHops) {
		return l.MemByHops[hops]
	}
	last := len(l.MemByHops) - 1
	return l.MemByHops[last] + int64(hops-last)*l.ExtraHop
}

// ScaleRemote returns a copy of l with every remote (hops >= 1) memory
// latency scaled by num/den, keeping the local latency fixed. The ablation
// benches use this to emulate ccNUMA machines with higher remote:local
// ratios, which the paper predicts are more placement-sensitive.
func (l Latency) ScaleRemote(num, den int64) Latency {
	ladder := make([]int64, len(l.MemByHops))
	copy(ladder, l.MemByHops)
	local := ladder[0]
	for i := 1; i < len(ladder); i++ {
		ladder[i] = local + (ladder[i]-local)*num/den
	}
	l.MemByHops = ladder
	l.ExtraHop = l.ExtraHop * num / den
	return l
}

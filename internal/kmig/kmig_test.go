package kmig

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/vm"
)

// mkMachine builds a default machine with one 8-page array already
// faulted onto node 0, and returns the machine, the base vpn, and a
// convenience function that records misses from a node.
func mkMachine(t *testing.T) (*machine.Machine, uint64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	a := m.NewArray("x", 8*2048)
	lo, hi := a.PageRange()
	for p := lo; p < hi; p++ {
		m.PT.Resolve(p, 0)
	}
	return m, lo
}

func TestMigratesOnThresholdExcess(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5) // remote node 5 hammers page lo
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", e.Migrations())
	}
	if home := m.PT.Home(lo); home != 5 {
		t.Errorf("page homed on %d, want 5", home)
	}
}

func TestNoMigrationBelowThreshold(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 200})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0 (below threshold)", e.Migrations())
	}
}

func TestNoMigrationWhenHomeDominates(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10})
	for i := 0; i < 300; i++ {
		m.PT.CountMiss(lo, 0) // home node accesses dominate
	}
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0 (home dominates)", e.Migrations())
	}
}

func TestThrottleLimitsMigrationsPerScan(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10, MaxPerScan: 2, DecayEvery: -1, MinScanPS: -1})
	for p := lo; p < lo+8; p++ {
		for i := 0; i < 100; i++ {
			m.PT.CountMiss(p, 3)
		}
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 2 {
		t.Errorf("migrations = %d, want 2 (throttled)", e.Migrations())
	}
	if e.Rejected() != 6 {
		t.Errorf("rejected = %d, want 6", e.Rejected())
	}
	// Next barrier moves two more.
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 4 {
		t.Errorf("migrations after second scan = %d, want 4", e.Migrations())
	}
}

func TestDisabledEngineDoesNothing(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10})
	e.SetEnabled(false)
	for i := 0; i < 500; i++ {
		m.PT.CountMiss(lo, 7)
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 0 || e.Cost() != 0 {
		t.Errorf("disabled engine migrated %d pages at cost %d", e.Migrations(), e.Cost())
	}
	if m.PT.Home(lo) != 0 {
		t.Error("page moved while engine disabled")
	}
}

func TestMigrationCostChargedToBarrier(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	tb := m.Settle(m.CPUs()[:1], 0)
	wantCost := m.MigrationCost()
	if e.Cost() != wantCost {
		t.Errorf("cost = %d, want %d", e.Cost(), wantCost)
	}
	if tb < wantCost {
		t.Errorf("barrier time %d does not include migration cost %d", tb, wantCost)
	}
}

func TestCountersResetAfterMigration(t *testing.T) {
	m, lo := mkMachine(t)
	Attach(m, Config{Threshold: 10})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	m.Settle(m.CPUs()[:1], 0)
	row := m.PT.Counters(lo, nil)
	for n, c := range row {
		if c != 0 {
			t.Errorf("counter[%d] = %d after migration, want 0", n, c)
		}
	}
}

func TestScanEverySkipsBarriers(t *testing.T) {
	m, lo := mkMachine(t)
	e := Attach(m, Config{Threshold: 10, ScanEvery: 3, MinScanPS: -1})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	m.Settle(m.CPUs()[:1], 0) // barrier 1: skipped
	m.Settle(m.CPUs()[:1], 0) // barrier 2: skipped
	if e.Migrations() != 0 {
		t.Fatalf("engine scanned before its interval: %d migrations", e.Migrations())
	}
	m.Settle(m.CPUs()[:1], 0) // barrier 3: scans
	if e.Migrations() != 1 {
		t.Errorf("migrations = %d after 3rd barrier, want 1", e.Migrations())
	}
}

func TestDecayHalvesCounters(t *testing.T) {
	m, lo := mkMachine(t)
	// DecayEvery=1: every scan halves. Threshold high so no migration
	// interferes.
	Attach(m, Config{Threshold: 2000, DecayEvery: 1, MinScanPS: -1})
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 5)
	}
	m.Settle(m.CPUs()[:1], 0)
	if got := m.PT.Counters(lo, nil)[5]; got != 50 {
		t.Errorf("counter after one decay = %d, want 50", got)
	}
	m.Settle(m.CPUs()[:1], 0)
	if got := m.PT.Counters(lo, nil)[5]; got != 25 {
		t.Errorf("counter after two decays = %d, want 25", got)
	}
}

func TestEndToEndWorstCaseGetsRepaired(t *testing.T) {
	// Drive real accesses: every CPU streams over its own chunk of an
	// array initially placed entirely on node 0 (worst case). The engine
	// must migrate hot pages toward the accessors.
	cfg := machine.DefaultConfig()
	cfg.Placement = vm.WorstCase
	m := machine.MustNew(cfg)
	e := Attach(m, Config{Threshold: 32, MaxPerScan: 64, MinScanPS: -1})
	a := m.NewArray("x", 16*2048) // 16 pages, one per CPU
	for iter := 0; iter < 6; iter++ {
		for id := 0; id < 16; id++ {
			c := m.CPU(id)
			c.FlushCaches() // force memory traffic every pass
			from, to := id*2048, (id+1)*2048
			for i := from; i < to; i++ {
				a.Set(c, i, float64(i))
			}
		}
		m.Settle(m.CPUs(), 0)
	}
	if e.Migrations() == 0 {
		t.Fatal("no migrations under sustained remote traffic")
	}
	// Most pages must now be homed on their accessor's node.
	lo, _ := a.PageRange()
	good := 0
	for id := 0; id < 16; id++ {
		if m.PT.Home(lo+uint64(id)) == id/2 {
			good++
		}
	}
	if good < 10 {
		t.Errorf("only %d/16 pages repaired to their accessor's node", good)
	}
}

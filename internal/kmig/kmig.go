// Package kmig implements the baseline the paper compares against: an
// IRIX-style, kernel-level competitive page migration engine in the spirit
// of Verghese et al. (ASPLOS'96), the design the Origin2000 kernel adopted.
//
// The hardware counts, per page frame, the memory accesses from every
// node. When the count from some remote node exceeds the count from the
// page's home node by more than a threshold, the kernel migrates the page
// to that node, invalidating TLB entries machine-wide.
//
// The real engine is interrupt-driven; the simulator applies the same
// criterion at barriers (its quiescent points), which keeps runs
// deterministic. The migration cost — page copy plus one TLB-shootdown
// interrupt per processor — is charged to the barrier time, since every
// processor participates in the shootdown.
package kmig

import (
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

// Config tunes the kernel engine.
type Config struct {
	// Threshold is the excess of remote over home accesses that triggers
	// a migration (the IRIX "predefined threshold").
	Threshold uint32 `json:"threshold,omitempty"`
	// MaxPerScan bounds migrations applied at one barrier, modelling the
	// kernel's resource-management throttle. 0 means the default.
	MaxPerScan int `json:"max_per_scan,omitempty"`
	// ScanEvery applies the policy only at every k-th barrier, modelling
	// the bounded rate at which interrupts fire. 0 means every barrier.
	ScanEvery int `json:"scan_every,omitempty"`
	// DecayEvery halves every page's counters at every k-th scan (the
	// kernel's aging step; it also un-saturates the 11-bit counters).
	// 0 means the default; negative disables decay.
	DecayEvery int `json:"decay_every,omitempty"`
	// MinScanPS spaces scans by simulated time: a barrier is eligible to
	// scan only when at least this many picoseconds have passed since the
	// last scan. The real daemon runs off the clock tick, not off every
	// synchronisation point, so on machines whose barriers are microseconds
	// apart it integrates counters over many barriers before deciding —
	// which is what filters out per-phase repartitioning flutter (pages
	// legitimately touched by different nodes in different phases of one
	// step). 0 means the default (64 page-migration costs, bounding the
	// worst-case scan overhead to a fraction of runtime); negative disables
	// the spacing so every barrier is eligible.
	MinScanPS int64 `json:"min_scan_ps,omitempty"`
}

// DefaultConfig mirrors the spirit of the IRIX defaults: migrate on a
// clear excess, few pages at a time. The threshold of 32 is calibrated
// to the paper machine's page geometry — 16KB pages of 128-byte L2
// lines, i.e. an excess worth a quarter of the page's coherence units;
// Attach rescales that ratio when the attached machine's pages hold a
// different number of lines (the shrunken Class S/W machines).
func DefaultConfig() Config {
	return Config{Threshold: 32, MaxPerScan: 16, ScanEvery: 1, DecayEvery: 1}
}

// Engine is an attached kernel migration engine.
type Engine struct {
	m   *machine.Machine
	cfg Config

	enabled  bool
	barriers int64
	scans    int64
	lastScan int64 // simulated time of the last scan; MinInt64 before any

	migrations int64
	rejected   int64 // candidates dropped by the per-scan throttle
	costPS     int64 // total picoseconds charged

	obs func(ScanSample) // campaign observer, nil when unset

	row []uint32 // scratch counter row
}

// Attach creates the engine and registers it on the machine's barriers.
// It starts enabled; SetEnabled(false) corresponds to running without
// DSM_MIGRATION.
func Attach(m *machine.Machine, cfg Config) *Engine {
	if cfg.Threshold == 0 {
		// Scale the default to the machine: the canonical 32 assumes
		// 16KB/128B = 128 lines per page, so keep the excess at a
		// quarter of the lines one page holds.
		cfg.Threshold = uint32(m.Cfg.PageBytes/m.Cfg.L2Line) / 4
		if cfg.Threshold == 0 {
			cfg.Threshold = 1
		}
	}
	if cfg.MaxPerScan == 0 {
		// The canonical 16 is the IRIX throttle on the paper's 16-CPU
		// machine: one page per processor per scan. Hierarchical machines
		// have more processors generating counter traffic, so the scan
		// budget scales with them; at or below 16 CPUs (every paper-class
		// machine) the default is unchanged.
		cfg.MaxPerScan = max(DefaultConfig().MaxPerScan, m.NumCPUs())
	}
	if cfg.ScanEvery == 0 {
		cfg.ScanEvery = 1
	}
	if cfg.DecayEvery == 0 {
		cfg.DecayEvery = DefaultConfig().DecayEvery
	}
	if cfg.MinScanPS == 0 {
		cfg.MinScanPS = 64 * m.MigrationCost()
	}
	e := &Engine{m: m, cfg: cfg, enabled: true, lastScan: math.MinInt64,
		row: make([]uint32, m.Topo.Nodes())}
	m.AddBarrierHook(e.hook)
	return e
}

// SetEnabled turns the engine on or off (DSM_MIGRATION).
func (e *Engine) SetEnabled(on bool) { e.enabled = on }

// Enabled reports whether the engine is active.
func (e *Engine) Enabled() bool { return e.enabled }

// Migrations returns the number of pages the engine has moved.
func (e *Engine) Migrations() int64 { return e.migrations }

// Rejected returns the number of eligible pages dropped by the throttle.
func (e *Engine) Rejected() int64 { return e.rejected }

// Cost returns the total picoseconds of migration overhead charged.
func (e *Engine) Cost() int64 { return e.costPS }

// CounterLen returns the length AppendCounters appends.
func (e *Engine) CounterLen() int { return 6 }

// AppendCounters appends the engine's cumulative counters — barriers
// seen, scans run, pages migrated, candidates rejected, picoseconds
// charged, and the lastScan time cursor — to dst and returns it. The
// steady-state detector folds them into the per-iteration delta vector:
// equal deltas mean the engine does the same work (possibly none) every
// iteration. lastScan must be included: it is decision state (the
// MinScanPS gate reads it), and equal scan-count deltas alone do not pin
// the scan-spacing phase — a time-gated scan cadence that divides the
// iteration time unevenly drifts through the iterations while keeping
// per-iteration scan counts equal, until an iteration suddenly gets one
// scan more or fewer (FT's short Class S iterations exhibit exactly
// this). With lastScan in the vector such drift breaks delta equality
// and the detector rightly refuses to fire.
func (e *Engine) AppendCounters(dst []int64) []int64 {
	return append(dst, e.barriers, e.scans, e.migrations, e.rejected, e.costPS, e.lastScan)
}

// AppendCounterNames appends one name per AppendCounters slot, in the
// same order, for by-name reporting of delta-vector indices.
func (e *Engine) AppendCounterNames(dst []string) []string {
	return append(dst, "kmig_barriers", "kmig_scans", "kmig_migrations",
		"kmig_rejected", "kmig_cost_ps", "kmig_last_scan")
}

// ApplyCounterDelta advances the counters by k repetitions of a
// per-iteration delta (laid out as AppendCounters), extrapolating the
// work the engine would have done over k more identical iterations.
// lastScan advances with its proven delta too: on a periodic orbit the
// last scan time moves forward by exactly the cycle's span, which keeps
// the MinScanPS gate's phase correct if charged simulation ever resumes
// after the jump (the analytic campaign drain does resume it).
func (e *Engine) ApplyCounterDelta(delta []int64, k int64) {
	if len(delta) != e.CounterLen() {
		panic("kmig: counter delta length mismatch")
	}
	e.barriers += delta[0] * k
	e.scans += delta[1] * k
	e.migrations += delta[2] * k
	e.rejected += delta[3] * k
	e.costPS += delta[4] * k
	e.lastScan += delta[5] * k
}

// ScanCursor is the engine's barrier-gating state: everything the hook
// reads to decide whether a barrier scans. The analytic campaign drain
// (internal/nas) advances a private cursor over a cloned page table with
// StepBarrier — the exact code path the live hook runs — and installs it
// with CommitCampaign, so drained and simulated gating are identical by
// construction.
type ScanCursor struct {
	Barriers, Scans, LastScan int64
}

// Cursor returns the engine's current gating state.
func (e *Engine) Cursor() ScanCursor {
	return ScanCursor{Barriers: e.barriers, Scans: e.scans, LastScan: e.lastScan}
}

// GatePhase returns the ScanEvery gate's modular position — the one piece
// of decision state that per-iteration counter deltas cannot expose. Two
// iterations with identical deltas but different phases behave differently
// at future barriers (the gate fires on barriers ≡ 0 mod ScanEvery), so
// the steady-state detector folds the phase into its state hash: a long
// scan cadence's quiet stretches then never masquerade as a period-one
// orbit. Always 0 when the gate is trivial (ScanEvery ≤ 1).
func (e *Engine) GatePhase() int64 {
	if e.cfg.ScanEvery > 1 {
		return e.barriers % int64(e.cfg.ScanEvery)
	}
	return 0
}

// ScanSample reports one completed scan to a campaign observer: its
// ordinal, the pages it moved, the candidates the throttle rejected, the
// cost it charged and the barrier time it ran at.
type ScanSample struct {
	Scan     int64
	Moved    int
	Rejected int64
	Cost     int64
	Now      int64
}

// SetObserver registers a callback invoked after every live scan (never
// during a drain). Observation only — the callback must not mutate
// simulation state.
func (e *Engine) SetObserver(fn func(ScanSample)) { e.obs = fn }

// Resolved returns the engine's configuration with defaults applied.
func (e *Engine) Resolved() Config { return e.cfg }

// CommitCampaign installs the gating cursor and adds the counter totals
// a drained campaign computed with StepBarrier. The migration count is
// not added here: the drain runs pt.Migrate against a clone that then
// becomes the live page table, so the page-table tally is already real —
// only the engine's own cumulative counters need the totals.
func (e *Engine) CommitCampaign(cur ScanCursor, migrations, rejected, cost int64) {
	e.barriers, e.scans, e.lastScan = cur.Barriers, cur.Scans, cur.LastScan
	e.migrations += migrations
	e.rejected += rejected
	e.costPS += cost
}

// ScanResult is one StepBarrier outcome. Scanned is false when a gate
// (ScanEvery, MinScanPS) suppressed the scan.
type ScanResult struct {
	Scanned  bool
	Moved    int
	Rejected int64
	Cost     int64
	Moves    []trace.PageMove // nil unless collectMoves
}

// StepBarrier advances cur through one barrier at time now against pt:
// the gating, scanning and migration logic of the live hook, operating
// on caller-provided state. It mutates pt (migrations, counter resets,
// decay) and cur but never the engine's own counters.
func (e *Engine) StepBarrier(cur *ScanCursor, pt *vm.PageTable, now int64, collectMoves bool) ScanResult {
	cur.Barriers++
	if e.cfg.ScanEvery > 1 && cur.Barriers%int64(e.cfg.ScanEvery) != 0 {
		return ScanResult{}
	}
	if e.cfg.MinScanPS > 0 && cur.LastScan != math.MinInt64 && now-cur.LastScan < e.cfg.MinScanPS {
		return ScanResult{}
	}
	cur.LastScan = now
	cur.Scans++
	moved := 0
	var rejected, cost int64
	perPage := e.m.MigrationCost()
	npages := e.m.AllocatedPages()
	decay := e.cfg.DecayEvery > 0 && cur.Scans%int64(e.cfg.DecayEvery) == 0
	var moves []trace.PageMove
	for vpn := uint64(0); vpn < npages; vpn++ {
		home := pt.Home(vpn)
		if home < 0 {
			continue
		}
		row := pt.Counters(vpn, e.row)
		if decay {
			// Decisions below use the copied row; age the live counters.
			pt.DecayCounters(vpn)
		}
		best, bestCount := -1, uint32(0)
		for n, c := range row {
			if n != home && c > bestCount {
				best, bestCount = n, c
			}
		}
		if best < 0 || bestCount <= row[home] || bestCount-row[home] <= e.cfg.Threshold {
			continue
		}
		if moved >= e.cfg.MaxPerScan {
			rejected++
			continue
		}
		if res := pt.Migrate(vpn, best); res.Moved {
			moved++
			cost += perPage
			pt.ResetCounters(vpn)
			if collectMoves {
				moves = append(moves, trace.PageMove{VPN: vpn, From: res.From, To: res.Dest})
			}
		}
	}
	return ScanResult{Scanned: true, Moved: moved, Rejected: rejected, Cost: cost, Moves: moves}
}

// hook runs at every barrier: scan the allocated pages, apply the
// competitive criterion, migrate up to MaxPerScan pages, reset the moved
// pages' counters, and return the overhead to add to the barrier time.
func (e *Engine) hook(now int64) int64 {
	if !e.enabled {
		return 0
	}
	cur := e.Cursor()
	trc := e.m.Tracer()
	r := e.StepBarrier(&cur, e.m.PT, now, trc != nil)
	e.barriers, e.scans, e.lastScan = cur.Barriers, cur.Scans, cur.LastScan
	if !r.Scanned {
		return 0
	}
	e.migrations += int64(r.Moved)
	e.rejected += r.Rejected
	e.costPS += r.Cost
	if e.obs != nil {
		e.obs(ScanSample{Scan: e.scans, Moved: r.Moved, Rejected: r.Rejected, Cost: r.Cost, Now: now})
	}
	if trc != nil {
		trc.Emit(trace.Event{Time: now, CPU: trace.KernelCPU, Kind: trace.EvKmigScan,
			Arg0: int64(r.Moved), Arg1: r.Cost})
		if r.Moved > 0 {
			trc.Emit(trace.Event{Time: now, CPU: trace.KernelCPU, Kind: trace.EvKmigMigrate,
				Arg0: int64(r.Moved), Pages: r.Moves})
			// The interrupt-driven engine pays one shootdown round per page
			// (MigrationCost), unlike UPMlib's batched single round.
			trc.Emit(trace.Event{Time: now, CPU: trace.KernelCPU, Kind: trace.EvShootdown,
				Name: "kmig", Arg0: int64(r.Moved)})
		}
	}
	return r.Cost
}

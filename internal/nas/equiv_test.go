package nas_test

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/vm"
)

// TestBulkScalarEquivalence is the golden contract of the bulk-access fast
// path: simulating a contiguous run one coherence unit at a time must be an
// *accounting* optimisation only. For every benchmark, both placement
// extremes, the full Class S run under Config.ScalarRuns=true (per-element
// simulation) and the default bulk path must agree bit-for-bit on every
// virtual-time figure and every hardware counter. Threads=1 keeps the
// interleaving deterministic so the comparison is exact, not statistical.
func TestBulkScalarEquivalence(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	for _, b := range builders {
		for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
			t.Run(b.name+"/"+p.String(), func(t *testing.T) {
				run := func(scalar bool) nas.Result {
					r, err := nas.Run(b.build, nas.Config{
						Class:     nas.ClassS,
						Placement: p,
						Threads:   1,
						Tweak: func(mc *machine.Config) {
							mc.ScalarRuns = scalar
						},
					})
					if err != nil {
						t.Fatalf("scalar=%v: %v", scalar, err)
					}
					if !r.Verified {
						t.Fatalf("scalar=%v: verification failed: %v", scalar, r.VerifyErr)
					}
					return r
				}
				bulk, scal := run(false), run(true)
				if bulk.TotalPS != scal.TotalPS {
					t.Errorf("TotalPS: bulk %d, scalar %d", bulk.TotalPS, scal.TotalPS)
				}
				if bulk.ColdPS != scal.ColdPS {
					t.Errorf("ColdPS: bulk %d, scalar %d", bulk.ColdPS, scal.ColdPS)
				}
				for i := range bulk.IterPS {
					if i < len(scal.IterPS) && bulk.IterPS[i] != scal.IterPS[i] {
						t.Errorf("IterPS[%d]: bulk %d, scalar %d", i, bulk.IterPS[i], scal.IterPS[i])
					}
				}
				if len(bulk.IterPS) != len(scal.IterPS) {
					t.Errorf("iterations: bulk %d, scalar %d", len(bulk.IterPS), len(scal.IterPS))
				}
				if bulk.Mach != scal.Mach {
					t.Errorf("machine stats diverge:\n bulk   %+v\n scalar %+v", bulk.Mach, scal.Mach)
				}
			})
		}
	}
}

// BenchmarkBTChargingMode times the same BT Class S run under both
// charging modes; the ratio is the host-side payoff of the fast path.
func BenchmarkBTChargingMode(b *testing.B) {
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"bulk", false}, {"scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := nas.Run(bt.New, nas.Config{
					Class:     nas.ClassS,
					Placement: vm.FirstTouch,
					Tweak: func(mc *machine.Config) {
						mc.ScalarRuns = mode.scalar
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

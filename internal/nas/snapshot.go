package nas

import (
	"fmt"
	"time"

	"upmgo/internal/machine"
	"upmgo/internal/omp"
)

// Prefix is a reusable checkpoint of one benchmark's engine-independent
// cold start: the simulated machine exactly at the divergence point where
// Run would arm the migration engines (after allocation, initialisation,
// the serial first-touch iteration, Reinit and the counter reset).
//
// A Prefix is immutable once built — RunFromSnapshot only ever clones the
// held machine — so one Prefix may serve concurrent forks. The kernel's
// host-side data is not part of the snapshot: kernel builders are
// deterministic in (class, scale, seed) and allocate sequentially, so
// each fork rebuilds its kernel on the clone at identical addresses, and
// a freshly built kernel's data equals a Reinit'd one by the Kernel
// contract.
type Prefix struct {
	build Builder
	key   string
	cfg   Config // the prefix-relevant fields, canonicalised
	snap  *machine.Machine
}

// RunPrefix simulates the engine-independent prefix of cfg once and
// returns it as a reusable checkpoint. Configs that cannot be canonically
// keyed (a Tweak function, a Tracer or a Metrics sampler — see
// Config.PrefixFingerprint) are rejected: forks must be provably
// interchangeable with from-scratch runs, and those fields break the
// equivalence.
func RunPrefix(build Builder, cfg Config) (*Prefix, error) {
	key, ok := cfg.PrefixFingerprint()
	if !ok {
		return nil, fmt.Errorf("nas: config with a Tweak, Tracer or Metrics cannot be snapshotted")
	}
	m, _, _, err := runPrefix(build, cfg)
	if err != nil {
		return nil, err
	}
	return &Prefix{build: build, key: key, cfg: cfg, snap: m}, nil
}

// Key returns the prefix's canonical fingerprint
// (Config.PrefixFingerprint of the config it was built from).
func (p *Prefix) Key() string { return p.key }

// RunFromSnapshot forks the checkpoint and runs cfg's timed main loop and
// verification on the fork: arm engines, iterate, verify — everything Run
// does after the divergence point. cfg must have the same prefix
// fingerprint as the config the Prefix was built from; the engine fields
// are free. At Threads 1 the returned Result is bit-identical to
// Run(build, cfg) from scratch (the snapshot invariant; at full team
// width both paths are statistical per the simulator's coherence
// contract, see DESIGN.md §8).
func (p *Prefix) RunFromSnapshot(cfg Config) (Result, error) {
	key, ok := cfg.PrefixFingerprint()
	if !ok {
		return Result{}, fmt.Errorf("nas: config with a Tweak, Tracer or Metrics cannot fork a snapshot")
	}
	if key != p.key {
		return Result{}, fmt.Errorf("nas: config prefix %q does not match snapshot prefix %q", key, p.key)
	}
	var t0 time.Time
	if cfg.HostStages != nil {
		t0 = time.Now()
	}
	m := p.snap.Clone()
	// Rebuild the kernel on the clone: the builder re-runs the exact
	// allocation sequence of the prefix on the rewound heap, giving every
	// array its original address while binding the rebuilt host data to
	// the clone.
	m.RewindHeap()
	scale := cfg.ComputeScale
	if scale < 1 {
		scale = 1
	}
	k := p.build(m, cfg.Class, scale, cfg.Seed)
	if got, want := m.AllocatedPages(), p.snap.AllocatedPages(); got != want {
		return Result{}, fmt.Errorf("nas: %s fork rebuilt %d pages, prefix allocated %d (non-deterministic builder?)",
			k.Name(), got, want)
	}
	threads := cfg.Threads
	if threads == 0 {
		threads = m.NumCPUs()
	}
	// A fresh team is equivalent to the prefix's team at the divergence
	// point: its first region settles the master's serial section from
	// lastJoin 0 instead of the cold-start join time, but with zeroed
	// per-node tallies the settlement is start-independent (zero accesses
	// mean zero queueing delay and a zero saturation floor).
	team, err := omp.NewTeam(m, threads)
	if err != nil {
		return Result{}, err
	}
	if cfg.HostStages != nil {
		cfg.HostStages.Fork += time.Since(t0)
	}
	return runMain(m, k, team, cfg)
}

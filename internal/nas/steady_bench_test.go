package nas

import (
	"testing"

	"upmgo/internal/kmig"
	"upmgo/internal/machine"
)

// BenchmarkSteadyStateDetect measures the per-iteration overhead -steady
// adds while the loop is still being watched: one full counter snapshot,
// the page-home hash over every allocated page, and the delta
// comparison. The sub-cases split by what the hash must cover — homes
// only, or homes plus the reference-counter rows (required exactly when
// the kernel engine is enabled, since its scans read the rows). The
// footprint is sized to a figure-sweep cell so the pages metric anchors
// the cost: detection only pays off while this stays far below one
// iteration's simulation cost.
func BenchmarkSteadyStateDetect(b *testing.B) {
	for _, c := range []struct {
		name     string
		withRows bool
	}{{"homes", false}, {"homes+rows", true}} {
		b.Run(c.name, func(b *testing.B) {
			m, err := machine.New(machine.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			m.NewArray("ballast", 4<<20) // ~2k pages of hashed footprint
			eng := kmig.Attach(m, kmig.DefaultConfig())
			det := newSteadyDetector(m, eng, nil, 0, 0, c.withRows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.observe(1, 1)
			}
			b.ReportMetric(float64(m.AllocatedPages()), "pages")
		})
	}
}

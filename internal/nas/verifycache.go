package nas

import (
	"fmt"
	"sync"
)

// VerifyCache shares the end-of-run verification outcome between runs
// whose numerics are identical. The simulator's fundamental invariant is
// that placement policies, migration engines and thread bindings move
// pages and charge virtual time but never change a kernel value, so every
// run of one benchmark at one class, iteration count, thread count, seed
// and compute scale computes the same float trajectory — and therefore
// the same Verify outcome. A sweep attaches one cache to all its cells
// (Config.TailCache); the first cell of each benchmark to finish verifies
// normally and seeds the cache, and every later extrapolating cell skips
// the free-run re-execution of its tail outright, because the tail's
// numerics have exactly one consumer and the consumer's answer is known.
type VerifyCache struct {
	mu sync.Mutex
	m  map[string]verdict
}

type verdict struct {
	verified bool
	err      error
}

// NewVerifyCache returns an empty cache, safe for concurrent use.
func NewVerifyCache() *VerifyCache {
	return &VerifyCache{m: make(map[string]verdict)}
}

// Len reports how many distinct numeric trajectories have been verified.
func (c *VerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *VerifyCache) get(key string) (verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *VerifyCache) put(key string, v verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// numericKey identifies a run's float trajectory: exactly the fields that
// reach the kernel's arithmetic. Placement, engines, perturbations and
// machine cost tweaks are deliberately absent — they act on page homes
// and clocks, never on values. threads is the resolved team size (not
// Config.Threads, whose zero means "machine width").
func numericKey(kernel string, c Config, niter, threads int) string {
	scale := c.ComputeScale
	if scale < 1 {
		scale = 1
	}
	return fmt.Sprintf("%s class=%v iters=%d threads=%d seed=%d scale=%d",
		kernel, c.Class, niter, threads, c.Seed, scale)
}

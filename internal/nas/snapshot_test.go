package nas_test

import (
	"reflect"
	"strings"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

// TestForkVsScratchBitIdentity is the golden contract of the snapshot
// subsystem: forking a cold-start prefix and running the timed loop on
// the clone must reproduce a from-scratch run of the same config exactly
// — every virtual time, every per-iteration span, every hardware counter,
// every engine statistic. One prefix per (benchmark, placement) serves
// all engine variants, which doubles as the sharing proof. Threads=1
// keeps the interleaving deterministic so the comparison is exact.
func TestForkVsScratchBitIdentity(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	engines := []struct {
		name string
		set  func(c *nas.Config)
	}{
		{"plain", func(c *nas.Config) {}},
		{"kmig", func(c *nas.Config) { c.KernelMig = true }},
		{"upmlib", func(c *nas.Config) { c.UPM = nas.UPMDistribute }},
	}
	for _, b := range builders {
		for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
			t.Run(b.name+"/"+p.String(), func(t *testing.T) {
				base := nas.Config{Class: nas.ClassS, Placement: p, Threads: 1}
				prefix, err := nas.RunPrefix(b.build, base)
				if err != nil {
					t.Fatal(err)
				}
				for _, eng := range engines {
					cfg := base
					eng.set(&cfg)
					scratch, err := nas.Run(b.build, cfg)
					if err != nil {
						t.Fatalf("%s scratch: %v", eng.name, err)
					}
					forked, err := prefix.RunFromSnapshot(cfg)
					if err != nil {
						t.Fatalf("%s fork: %v", eng.name, err)
					}
					if !forked.Verified {
						t.Fatalf("%s fork failed verification: %v", eng.name, forked.VerifyErr)
					}
					if !reflect.DeepEqual(scratch, forked) {
						t.Errorf("%s: fork diverges from scratch:\n scratch %+v\n fork    %+v",
							eng.name, scratch, forked)
					}
				}
			})
		}
	}
}

// TestForkRecRepAndPerturbationBitIdentity covers the timed-loop features
// the basic engine matrix misses: record–replay hooks (BT has the phase
// change) and the mid-run scheduler perturbation with UPMlib reactivation.
// Both act strictly after the divergence point, so they too must fork
// bit-identically — from the very same prefix, since PrefixFingerprint
// ignores Iterations and PerturbAt.
func TestForkRecRepAndPerturbationBitIdentity(t *testing.T) {
	base := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1}
	prefix, err := nas.RunPrefix(bt.New, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []nas.Config{
		{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1, UPM: nas.UPMRecRep},
		{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
			UPM: nas.UPMDistribute, Iterations: 12, PerturbAt: 4},
	} {
		scratch, err := nas.Run(bt.New, cfg)
		if err != nil {
			t.Fatalf("%s scratch: %v", cfg.Label(), err)
		}
		forked, err := prefix.RunFromSnapshot(cfg)
		if err != nil {
			t.Fatalf("%s fork: %v", cfg.Label(), err)
		}
		if !reflect.DeepEqual(scratch, forked) {
			t.Errorf("%s: fork diverges from scratch:\n scratch %+v\n fork    %+v",
				cfg.Label(), scratch, forked)
		}
	}
}

// TestSnapshotRejectsUnkeyableConfigs: Tweak and Tracer configs cannot be
// canonically keyed, so both snapshot entry points must refuse them, and
// a config whose prefix differs from the snapshot's must be refused too.
func TestSnapshotRejectsUnkeyableConfigs(t *testing.T) {
	tweaked := nas.Config{Class: nas.ClassS, Tweak: func(mc *machine.Config) {}}
	if _, err := nas.RunPrefix(bt.New, tweaked); err == nil {
		t.Error("RunPrefix accepted a Tweak config")
	}
	traced := nas.Config{Class: nas.ClassS, Tracer: trace.NewRecorder()}
	if _, err := nas.RunPrefix(bt.New, traced); err == nil {
		t.Error("RunPrefix accepted a Tracer config")
	}

	prefix, err := nas.RunPrefix(bt.New, nas.Config{Class: nas.ClassS, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prefix.RunFromSnapshot(traced); err == nil {
		t.Error("RunFromSnapshot accepted a Tracer config")
	}
	mismatched := nas.Config{Class: nas.ClassS, Threads: 1, Placement: vm.WorstCase}
	if _, err := prefix.RunFromSnapshot(mismatched); err == nil ||
		!strings.Contains(err.Error(), "does not match") {
		t.Errorf("RunFromSnapshot on a mismatched prefix: %v", err)
	}
}

// TestPrefixFingerprintFieldSet pins the sharing contract: engine and
// timed-loop fields must not key the prefix (their variants share one
// cold start), while every field the prefix actually reads must.
func TestPrefixFingerprintFieldSet(t *testing.T) {
	base := nas.Config{Class: nas.ClassS, Placement: vm.RoundRobin, Threads: 1, Seed: 7}
	key := func(c nas.Config) string {
		k, ok := c.PrefixFingerprint()
		if !ok {
			t.Fatalf("config %+v not keyable", c)
		}
		return k
	}
	shared := []func(c *nas.Config){
		func(c *nas.Config) { c.KernelMig = true },
		func(c *nas.Config) { c.UPM = nas.UPMDistribute },
		func(c *nas.Config) { c.UPM = nas.UPMRecRep; c.UPMOptions.MaxCritical = 5 },
		func(c *nas.Config) { c.Kmig.Threshold = 99 },
		func(c *nas.Config) { c.Iterations = 3 },
		func(c *nas.Config) { c.PerturbAt = 2 },
		func(c *nas.Config) { c.SkipVerify = true },
		func(c *nas.Config) { c.ComputeScale = 1 }, // canonical with 0
	}
	for i, mut := range shared {
		c := base
		mut(&c)
		if key(c) != key(base) {
			t.Errorf("mutation %d changed the prefix key; engine fields must share", i)
		}
	}
	distinct := []func(c *nas.Config){
		func(c *nas.Config) { c.Class = nas.ClassW },
		func(c *nas.Config) { c.Placement = vm.WorstCase },
		func(c *nas.Config) { c.Seed = 8 },
		func(c *nas.Config) { c.ComputeScale = 4 },
		func(c *nas.Config) { c.Threads = 2 },
	}
	for i, mut := range distinct {
		c := base
		mut(&c)
		if key(c) == key(base) {
			t.Errorf("mutation %d kept the prefix key; prefix-relevant fields must split", i)
		}
	}
}

package nas

// Steady-state fast-forward. The NAS main loops are iterative solvers on
// fixed partitionings: once the migration engines stop moving pages the
// reference string repeats exactly, so every later iteration advances
// every virtual-time quantity by the same delta. The detector proves the
// repetition from the counters themselves — it fingerprints nothing about
// the kernel — and the driver then extrapolates the remaining iterations
// by scalar-multiplying the per-iteration delta into the machine, engine
// and per-phase counters instead of simulating them.
//
// Soundness. The simulator is a deterministic function of (kernel data,
// page homes + counter rows, cache/TLB/clock state, engine decision
// state). The detector's vector covers every counter that can influence a
// future decision or output: all per-CPU clocks and statistics, cache
// hit/miss/tick counters, page-table fault/migration tallies, both
// engines' cumulative statistics and decision cursors, the per-iteration
// and per-phase durations, and a hash of the page-home map (plus the
// reference-counter rows when the kernel engine — the only consumer whose
// decisions read them — is enabled). If `window` consecutive iterations
// produce identical deltas over that vector while the home map stays
// value-identical, the system is on a period-one orbit: the next
// iteration starts from the same relative state as the previous one and
// must reproduce the same delta. Multiplying the delta by the remaining
// iteration count therefore lands on exactly the counters a full
// simulation would reach — the bit-identity tests in steady_test.go
// assert this per benchmark, engine and placement.
//
// The kernel's numerics are not extrapolated: the driver re-executes the
// remaining steps in the machine's free-run mode, where data movement is
// real but clocks are frozen and accesses charge nothing, so Verify sees
// the same floating-point state as a fully simulated run.

import (
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/upm"
)

// steadyWindowDefault is the number of consecutive identical
// per-iteration deltas required before the loop is declared steady.
// Three balances confidence against wasted simulation: the engines'
// transients (UPMlib deactivation, kernel-engine decay convergence)
// produce at most pairwise-equal deltas, never three in a row.
const steadyWindowDefault = 3

// steadyDetector accumulates one counter snapshot per timed iteration and
// reports when the last `window` deltas are identical.
type steadyDetector struct {
	m      *machine.Machine
	eng    *kmig.Engine
	u      *upm.UPM // nil when the config runs without UPMlib
	window int
	// withRows extends the page-table hash over the reference-counter
	// rows. Required exactly when the kernel engine is enabled: its scans
	// read the rows, so row state influences future decisions. Without it
	// the rows are excluded — they grow monotonically with every miss and
	// would never repeat, masking genuinely steady loops.
	withRows bool

	// Cumulative pseudo-counters folded into the snapshot so that their
	// per-iteration values participate in the delta comparison.
	cumIter, cumPhase int64

	prev, cur, delta, prevDelta []int64
	prevHash                    uint64
	havePrev, haveDelta         bool
	streak                      int
}

func newSteadyDetector(m *machine.Machine, eng *kmig.Engine, u *upm.UPM, window int, withRows bool) *steadyDetector {
	if window <= 0 {
		window = steadyWindowDefault
	}
	n := m.CounterLen() + eng.CounterLen() + 2
	if u != nil {
		n += u.CounterLen()
	}
	return &steadyDetector{
		m: m, eng: eng, u: u, window: window, withRows: withRows,
		prev:      make([]int64, 0, n),
		cur:       make([]int64, 0, n),
		delta:     make([]int64, 0, n),
		prevDelta: make([]int64, 0, n),
	}
}

// snapshot appends the full counter vector to dst and returns it.
func (d *steadyDetector) snapshot(dst []int64) []int64 {
	dst = d.m.AppendCounters(dst)
	dst = d.eng.AppendCounters(dst)
	if d.u != nil {
		dst = d.u.AppendCounters(dst)
	}
	return append(dst, d.cumIter, d.cumPhase)
}

// observe records the counter state at the end of one timed iteration
// (iterPS and phasePS are that iteration's durations) and reports whether
// the loop has just been proven steady: the last `window` deltas
// identical and the page-home map stationary across them.
func (d *steadyDetector) observe(iterPS, phasePS int64) bool {
	d.cumIter += iterPS
	d.cumPhase += phasePS
	d.cur = d.snapshot(d.cur[:0])
	hash := d.m.PT.StateHash(d.m.AllocatedPages(), d.withRows)
	if !d.havePrev {
		d.prev, d.cur = d.cur, d.prev
		d.prevHash = hash
		d.havePrev = true
		return false
	}
	d.delta = d.delta[:0]
	for i, v := range d.cur {
		d.delta = append(d.delta, v-d.prev[i])
	}
	// The hash is compared by value, not by delta: counters advance, the
	// home map must not.
	if d.haveDelta && hash == d.prevHash && int64sEqual(d.delta, d.prevDelta) {
		d.streak++
	} else {
		d.streak = 1
	}
	d.haveDelta = true
	d.prev, d.cur = d.cur, d.prev
	d.prevDelta, d.delta = d.delta, d.prevDelta
	d.prevHash = hash
	return d.streak >= d.window
}

// iterDelta and phaseDelta return the proven per-iteration durations.
// Valid only after observe has returned true.
func (d *steadyDetector) iterDelta() int64  { return d.prevDelta[len(d.prevDelta)-2] }
func (d *steadyDetector) phaseDelta() int64 { return d.prevDelta[len(d.prevDelta)-1] }

// fastForward advances machine and engine counters by k repetitions of
// the proven per-iteration delta — the extrapolation itself. Valid only
// after observe has returned true.
func (d *steadyDetector) fastForward(k int64) {
	off := d.m.CounterLen()
	d.m.ApplyCounterDelta(d.prevDelta[:off], k)
	n := d.eng.CounterLen()
	d.eng.ApplyCounterDelta(d.prevDelta[off:off+n], k)
	off += n
	if d.u != nil {
		n = d.u.CounterLen()
		d.u.ApplyCounterDelta(d.prevDelta[off:off+n], k)
		off += n
	}
	d.cumIter += d.prevDelta[off] * k
	d.cumPhase += d.prevDelta[off+1] * k
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

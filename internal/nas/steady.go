package nas

// Steady-state fast-forward. The NAS main loops are iterative solvers on
// fixed partitionings: once the migration engines stop moving pages the
// reference string repeats exactly, so every later iteration advances
// every virtual-time quantity by the same delta — or, when an engine's
// scan cadence divides the loop unevenly (kmig's ScanEvery), by a short
// repeating cycle of deltas. The detector proves the repetition from the
// counters themselves — it fingerprints nothing about the kernel — and
// the driver then extrapolates the remaining iterations by multiplying
// the proven cycle of per-iteration deltas into the machine, engine and
// per-phase counters instead of simulating them.
//
// Soundness. The simulator is a deterministic function of (kernel data,
// page homes + counter rows, cache/TLB/clock state, engine decision
// state). The detector's vector covers every counter that can influence a
// future decision or output: all per-CPU clocks and statistics, cache
// hit/miss/tick counters, page-table fault/migration tallies, both
// engines' cumulative statistics and decision cursors, the per-iteration
// and per-phase durations, and a hash of the page-home map (plus the
// reference-counter rows when the kernel engine — the only consumer whose
// decisions read them — is enabled). If the last (window−1)·k deltas each
// equal the delta k iterations before them, with the home-map hash
// equally periodic, the system is on a period-k orbit: window−1 full
// cycles reproduced the cycle before them, so the next iteration starts
// from the same relative state as the one k back and must reproduce its
// delta. Summing the cycle's deltas with the right multiplicities (the
// remaining iterations walk the cycle positions in order) therefore lands
// on exactly the counters a full simulation would reach — the
// bit-identity tests in steady_test.go assert this per benchmark, engine,
// placement and period. k=1 reduces to the original period-one detector:
// same firing iteration, same extrapolation.
//
// The kernel's numerics are not extrapolated: the driver re-executes the
// remaining steps in the machine's free-run mode, where data movement is
// real but clocks are frozen and accesses charge nothing, so Verify sees
// the same floating-point state as a fully simulated run.

import (
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/upm"
)

// steadyWindowDefault is the number of consecutive identical
// per-iteration cycles required before the loop is declared steady.
// Three balances confidence against wasted simulation: the engines'
// transients (UPMlib deactivation, kernel-engine decay convergence)
// produce at most pairwise-equal deltas, never three in a row.
const steadyWindowDefault = 3

// steadyPeriodMax caps the orbit length the detector considers. Campaign
// cells cycle through a small set of scan states (kmig's ScanEvery and
// decay cadence), so short periods cover every real cell; a larger cap
// only delays the adversarial fallback (a period-9 string must run
// fully simulated — steady_test.go pins it).
const steadyPeriodMax = 8

// periodTracker is the pure cycle-detection core: a stream of
// (delta-vector, state-hash) observations in, the minimal proven period
// out. Split from steadyDetector so synthetic streams — period-2..8
// cycles, the period-9 adversary, aperiodic noise — can be unit-tested
// without building a machine.
type periodTracker struct {
	kmax, window int
	// diagKmax extends the ring and match bookkeeping one period past
	// the larger of kmax and the global cap, for diagnosis only: a
	// period-9 adversary (or a period-2 orbit under PeriodK 1) then
	// shows up as a candidate that *did* prove itself beyond the cap.
	// The firing loop never consults k > kmax, and a ring larger than
	// kmax holds every lag ≤ kmax entry at the same slot age, so
	// detection behaviour — and Result.SteadyAt — is bit-identical to
	// the exact-size ring.
	diagKmax int
	ring     [][]int64 // last diagKmax delta vectors, slot = index % diagKmax
	hashes   []uint64  // state hash observed with each ring entry
	n        int       // observations pushed so far
	matches  []int     // matches[k-1]: consecutive successful lag-k compares
	period   int       // proven period, set when push returns true

	// Diagnostic state (never read by the firing rule).
	maxMatches []int      // longest streak ever seen per candidate k
	lastFail   []failInfo // why the most recent lag-k compare failed
	homeMoves  int        // pushes whose state hash differed from the previous
	lastHash   uint64
}

// failInfo records why one lag-k comparison failed: the state hash moved
// (hash true), or delta element idx was the first to diverge.
type failInfo struct {
	hash bool
	idx  int
}

func newPeriodTracker(kmax, window int) *periodTracker {
	if kmax < 1 {
		kmax = 1
	}
	if window < 2 {
		window = 2
	}
	diag := steadyPeriodMax
	if kmax > diag {
		diag = kmax
	}
	diag++
	return &periodTracker{
		kmax:       kmax,
		window:     window,
		diagKmax:   diag,
		ring:       make([][]int64, diag),
		hashes:     make([]uint64, diag),
		matches:    make([]int, diag),
		maxMatches: make([]int, diag),
		lastFail:   make([]failInfo, diag),
	}
}

// push records one observation and reports whether a period has just been
// proven. The firing rule for period k is matches[k] ≥ (window−1)·k:
// the last window−1 whole cycles each reproduced the cycle before them.
// Candidates are tested in ascending k, so the proven period is minimal —
// and for k=1 the rule degenerates to window−1 consecutive identical
// deltas, exactly the original period-one detector's streak ≥ window.
func (t *periodTracker) push(delta []int64, hash uint64) bool {
	j := t.n + 1
	if j > 1 && hash != t.lastHash {
		t.homeMoves++
	}
	t.lastHash = hash
	// Compare out to diagKmax so candidates beyond the cap accumulate
	// diagnostic streaks; only k ≤ kmax may fire below.
	for k := 1; k <= t.diagKmax && k < j; k++ {
		s := (j - k) % t.diagKmax
		switch {
		case hash != t.hashes[s]:
			t.lastFail[k-1] = failInfo{hash: true, idx: -1}
			t.matches[k-1] = 0
		case !int64sEqual(delta, t.ring[s]):
			t.lastFail[k-1] = failInfo{idx: firstDiff(delta, t.ring[s])}
			t.matches[k-1] = 0
		default:
			t.matches[k-1]++
			if t.matches[k-1] > t.maxMatches[k-1] {
				t.maxMatches[k-1] = t.matches[k-1]
			}
		}
	}
	s := j % t.diagKmax
	t.ring[s] = append(t.ring[s][:0], delta...)
	t.hashes[s] = hash
	t.n = j
	for k := 1; k <= t.kmax && k < j; k++ {
		if t.matches[k-1] >= (t.window-1)*k {
			t.period = k
			return true
		}
	}
	return false
}

// trackerDiag summarises a tracker that never fired: the candidate
// period that came closest (or proved itself beyond the cap), its best
// streak against the firing requirement, why its latest comparison
// failed, and how often the state hash moved.
type trackerDiag struct {
	observed   int // deltas pushed
	bestPeriod int
	bestStreak int
	needed     int
	fail       failInfo
	beyondCap  bool
	homeMoves  int
}

// diagnose picks the best candidate orbit. A candidate beyond the
// firing cap that reproduced at least two full cycles (streak ≥ 2k)
// wins outright — the loop is periodic, just longer than the detector
// may prove, which is the adversarial-fallback evidence the firing rule
// itself might never accumulate under a large window. Otherwise the
// candidate with the highest streak-to-requirement ratio is reported
// together with its most recent failure.
func (t *periodTracker) diagnose() trackerDiag {
	d := trackerDiag{observed: t.n, homeMoves: t.homeMoves, fail: failInfo{idx: -1}}
	best := -1.0
	for k := 1; k <= t.diagKmax; k++ {
		need := (t.window - 1) * k
		streak := t.maxMatches[k-1]
		if k > t.kmax && streak >= 2*k {
			return trackerDiag{observed: t.n, homeMoves: t.homeMoves,
				bestPeriod: k, bestStreak: streak, needed: need,
				beyondCap: true, fail: failInfo{idx: -1}}
		}
		if prog := float64(streak) / float64(need); prog > best {
			best = prog
			d.bestPeriod, d.bestStreak, d.needed = k, streak, need
			d.fail = t.lastFail[k-1]
		}
	}
	return d
}

// firstDiff returns the first index where a and b differ, or -1 when
// equal. Lengths match by construction (one snapshot layout per run).
func firstDiff(a, b []int64) int {
	for i, v := range a {
		if i >= len(b) || v != b[i] {
			return i
		}
	}
	if len(b) > len(a) {
		return len(a)
	}
	return -1
}

// cycleDelta returns the proven cycle's delta at position p (0 ≤ p <
// period) in chronological order: position 0 is the delta the iteration
// after detection will reproduce. Valid only after push returned true.
func (t *periodTracker) cycleDelta(p int) []int64 {
	k := t.period
	return t.ring[(t.n-k+1+p)%t.diagKmax]
}

// steadyDetector accumulates one counter snapshot per timed iteration and
// reports when the trailing deltas prove a period-k orbit.
type steadyDetector struct {
	m      *machine.Machine
	eng    *kmig.Engine
	u      *upm.UPM // nil when the config runs without UPMlib
	window int
	// withRows extends the page-table hash over the reference-counter
	// rows. Required exactly when the kernel engine is enabled: its scans
	// read the rows, so row state influences future decisions. Without it
	// the rows are excluded — they grow monotonically with every miss and
	// would never repeat, masking genuinely steady loops.
	withRows bool

	// Cumulative pseudo-counters folded into the snapshot so that their
	// per-iteration values participate in the delta comparison.
	cumIter, cumPhase int64

	trk              *periodTracker
	prev, cur, delta []int64
	havePrev         bool
	observed         int // timed iterations observed (snapshots taken)
}

// newSteadyDetector builds a detector with the given confirmation window
// (0 = default 3) and period cap kmax (0 = default 8; 1 restricts to the
// original period-one detection).
func newSteadyDetector(m *machine.Machine, eng *kmig.Engine, u *upm.UPM, window, kmax int, withRows bool) *steadyDetector {
	if window <= 0 {
		window = steadyWindowDefault
	}
	if kmax <= 0 || kmax > steadyPeriodMax {
		kmax = steadyPeriodMax
	}
	n := m.CounterLen() + eng.CounterLen() + 2
	if u != nil {
		n += u.CounterLen()
	}
	return &steadyDetector{
		m: m, eng: eng, u: u, window: window, withRows: withRows,
		trk:   newPeriodTracker(kmax, window),
		prev:  make([]int64, 0, n),
		cur:   make([]int64, 0, n),
		delta: make([]int64, 0, n),
	}
}

// snapshot appends the full counter vector to dst and returns it.
func (d *steadyDetector) snapshot(dst []int64) []int64 {
	dst = d.m.AppendCounters(dst)
	dst = d.eng.AppendCounters(dst)
	if d.u != nil {
		dst = d.u.AppendCounters(dst)
	}
	return append(dst, d.cumIter, d.cumPhase)
}

// observe records the counter state at the end of one timed iteration
// (iterPS and phasePS are that iteration's durations) and reports whether
// the loop has just been proven steady; period() then yields the orbit
// length. The hash is folded into the periodicity test by value, not by
// delta: counters advance, the home map must cycle through the same k
// states.
func (d *steadyDetector) observe(iterPS, phasePS int64) bool {
	d.observed++
	d.cumIter += iterPS
	d.cumPhase += phasePS
	d.cur = d.snapshot(d.cur[:0])
	hash := d.m.PT.StateHash(d.m.AllocatedPages(), d.withRows)
	if d.withRows {
		// The kernel engine's ScanEvery gate position is decision state the
		// cumulative counters cannot expose (the gate reads barriers modulo
		// the cadence): fold it into the hash so iterations at different
		// gate phases never compare equal. Trivial gates return 0, keeping
		// every historical cell's detection point unchanged.
		hash = hash*0x100000001b3 + uint64(d.eng.GatePhase())
	}
	if !d.havePrev {
		d.prev, d.cur = d.cur, d.prev
		d.havePrev = true
		return false
	}
	d.delta = d.delta[:0]
	for i, v := range d.cur {
		d.delta = append(d.delta, v-d.prev[i])
	}
	d.prev, d.cur = d.cur, d.prev
	return d.trk.push(d.delta, hash)
}

// period returns the proven orbit length. Valid only after observe has
// returned true.
func (d *steadyDetector) period() int { return d.trk.period }

// lastDelta returns the most recent per-iteration delta vector (nil until
// two observations exist). The campaign observer reads it: detector and
// observer share one snapshot per iteration.
func (d *steadyDetector) lastDelta() []int64 {
	if d.trk.n == 0 {
		return nil
	}
	return d.trk.ring[d.trk.n%d.trk.diagKmax]
}

// cycleIterPhase returns the proven per-iteration and per-phase durations
// at cycle position p — the values extrapolated iterations at that
// position append to IterPS/PhasePS. Valid only after observe has
// returned true.
func (d *steadyDetector) cycleIterPhase(p int) (int64, int64) {
	dd := d.trk.cycleDelta(p)
	return dd[len(dd)-2], dd[len(dd)-1]
}

// fastForward advances machine and engine counters by r further
// iterations of the proven orbit: the remaining iterations walk the cycle
// positions in order starting at position 0, so position p occurs
// ⌈(r−p)/k⌉ times. Valid only after observe has returned true. For
// period 1 this is exactly r applications of the single proven delta.
func (d *steadyDetector) fastForward(r int64) {
	k := int64(d.trk.period)
	for p := int64(0); p < k; p++ {
		mult := r / k
		if p < r%k {
			mult++
		}
		if mult == 0 {
			continue
		}
		d.applyDelta(d.trk.cycleDelta(int(p)), mult)
	}
}

// applyDelta adds mult repetitions of one per-iteration delta vector to
// the machine, engine and cumulative counters.
func (d *steadyDetector) applyDelta(dd []int64, mult int64) {
	off := d.m.CounterLen()
	d.m.ApplyCounterDelta(dd[:off], mult)
	n := d.eng.CounterLen()
	d.eng.ApplyCounterDelta(dd[off:off+n], mult)
	off += n
	if d.u != nil {
		n = d.u.CounterLen()
		d.u.ApplyCounterDelta(dd[off:off+n], mult)
		off += n
	}
	d.cumIter += dd[off] * mult
	d.cumPhase += dd[off+1] * mult
}

// counterName maps a delta-vector index to the name of the counter at
// that position, following the snapshot layout exactly: machine, kernel
// engine, UPMlib (when present), then the iteration/phase
// pseudo-counters. Out-of-range indices (and the hash pseudo-position
// −1) name the page-home map itself.
func (d *steadyDetector) counterName(idx int) string {
	if idx < 0 {
		return "page_homes"
	}
	names := d.m.AppendCounterNames(nil)
	names = d.eng.AppendCounterNames(names)
	if d.u != nil {
		names = d.u.AppendCounterNames(names)
	}
	names = append(names, "iter_ps", "phase_ps")
	if idx >= len(names) {
		return "page_homes"
	}
	return names[idx]
}

// diagnose explains why the detector never fired, as a typed WhyNot.
// Called only on a detector whose observe never returned true.
func (d *steadyDetector) diagnose(perturbAt int) *WhyNot {
	g := d.trk.diagnose()
	w := &WhyNot{
		Observed:     d.observed,
		BestPeriod:   g.bestPeriod,
		BestStreak:   g.bestStreak,
		NeededStreak: g.needed,
		HomeMoves:    g.homeMoves,
	}
	switch {
	case g.beyondCap:
		// The orbit proved itself at a period the cap excludes: the
		// adversarial fallback, or an explicit PeriodK restriction.
		w.Reason = WhyNotPeriodBeyondCap
	case perturbAt > 0:
		w.Reason = WhyNotPerturbed
		w.PerturbIter = perturbAt
	case d.observed < d.window+1:
		// Even a perfectly period-one loop needs window+1 observations
		// (window deltas) before the streak can reach window−1.
		w.Reason = WhyNotLoopTooShort
	case g.fail.hash:
		w.Reason = WhyNotHomesMoving
		w.FirstDivergent = "page_homes"
	default:
		w.Reason = WhyNotAperiodic
		w.FirstDivergent = d.counterName(g.fail.idx)
	}
	return w
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

package nas

// White-box tests of the period-k cycle detector and the campaign
// observer's analytic-path gate, on synthetic observation streams — no
// kernel, no timed loop. The system-level bit-identity contracts live in
// steady_test.go and campaign_test.go.

import (
	"math/rand"
	"testing"

	"upmgo/internal/kmig"
	"upmgo/internal/machine"
)

// TestPeriodTrackerDetectsSmallPeriods: a strict period-k stream of
// distinct deltas is detected with the minimal period k for every k up to
// the cap, and the proven cycle's positions line up with the deltas the
// next iterations will reproduce.
func TestPeriodTrackerDetectsSmallPeriods(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		trk := newPeriodTracker(8, 3)
		fireAt := -1 // 1-based observation index of the firing push
		for i := 0; i < 100 && fireAt < 0; i++ {
			if trk.push([]int64{int64(i % k)}, 7) {
				fireAt = i + 1
			}
		}
		if fireAt < 0 {
			t.Fatalf("period %d never fired", k)
		}
		if trk.period != k {
			t.Errorf("period-%d stream detected as period %d", k, trk.period)
		}
		// Minimal firing point: the first k pushes fill one cycle, then
		// (window-1)*k more must each match their lag-k predecessor.
		if want := k + 2*k; fireAt != want {
			t.Errorf("period %d fired at push %d, want %d", k, fireAt, want)
		}
		// cycleDelta(0) must be the delta the next push would carry.
		for p := 0; p < k; p++ {
			want := int64((fireAt + p) % k)
			if got := trk.cycleDelta(p); got[0] != want {
				t.Errorf("period %d cycleDelta(%d) = %d, want %d", k, p, got[0], want)
			}
		}
	}
}

// TestPeriodTrackerPeriodOneEquivalence: for k=1 the firing rule
// degenerates to the original period-one detector — window consecutive
// identical deltas, firing exactly on the window-th.
func TestPeriodTrackerPeriodOneEquivalence(t *testing.T) {
	for _, window := range []int{2, 3, 5} {
		trk := newPeriodTracker(1, window)
		for i := 0; i < window-1; i++ {
			if trk.push([]int64{42}, 9) {
				t.Fatalf("window %d fired early at push %d", window, i+1)
			}
		}
		if !trk.push([]int64{42}, 9) {
			t.Fatalf("window %d did not fire on the window-th identical delta", window)
		}
		if trk.period != 1 {
			t.Errorf("window %d proved period %d, want 1", window, trk.period)
		}
	}
}

// TestPeriodTrackerAdversaries: streams the tracker must never fire on —
// a period-9 cycle (beyond the cap 8), strictly growing deltas, and a
// repeating delta whose state hash cycles with period 9 (hash equality is
// by value, so no k ≤ 8 ever lines the hashes up).
func TestPeriodTrackerAdversaries(t *testing.T) {
	trk := newPeriodTracker(8, 3)
	for i := 0; i < 200; i++ {
		if trk.push([]int64{int64(i % 9)}, 7) {
			t.Fatalf("fired on a period-9 stream at push %d (period %d)", i+1, trk.period)
		}
	}
	trk = newPeriodTracker(8, 3)
	for i := 0; i < 200; i++ {
		if trk.push([]int64{int64(i)}, 7) {
			t.Fatalf("fired on aperiodic growth at push %d", i+1)
		}
	}
	trk = newPeriodTracker(8, 3)
	for i := 0; i < 200; i++ {
		if trk.push([]int64{42}, uint64(i%9)) {
			t.Fatalf("fired across a period-9 hash cycle at push %d", i+1)
		}
	}
}

// campaignRig drives a campaignObserver with a synthetic iteration stream:
// per iteration one barrier, one scan moving moves[i] pages at the
// engine's real per-page cost, uniform compute time around it. Everything
// but the per-scan moved series is structurally identical, so the
// observer's verdict isolates exactly the monotone-decay gate.
func campaignRig(t *testing.T, moves []int) []bool {
	t.Helper()
	mc := machine.DefaultConfig()
	mc.Nodes, mc.CPUsPerNode = 2, 1
	mc.ArenaPages = 64
	m, err := machine.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	eng := kmig.Attach(m, kmig.Config{})
	camp := newCampaignObserver(m, eng, 3)

	stride := m.CountersPerCPU()
	M := m.NumCPUs() * stride
	E := M + 4
	perPage := m.MigrationCost()

	now := int64(0)
	camp.observe(nil, 0, 0, now) // prime: first call only records the end time
	verdicts := make([]bool, 0, len(moves))
	for _, mv := range moves {
		cost := int64(mv) * perPage
		barT := now + 500
		camp.barT = append(camp.barT[:0], barT)
		camp.barCost = append(camp.barCost[:0], cost)
		camp.scanSeq = append(camp.scanSeq[:0], mv)
		end := barT + cost + 500
		dIter := end - now
		delta := make([]int64, m.CounterLen()+eng.CounterLen()+2)
		delta[0] = dIter // CPU 0 is the only loop member
		delta[M+1] = int64(mv)
		delta[E] = 1 // barriers
		delta[E+1] = 1
		delta[E+2] = int64(mv)
		delta[E+4] = cost
		delta[E+eng.CounterLen()] = dIter // cumIter
		verdicts = append(verdicts, camp.observe(delta, dIter, 0, end))
		now = end
	}
	return verdicts
}

// TestCampaignMonotoneGate: the analytic path arms only for a
// non-increasing per-scan move series with ongoing activity. A throttled
// plateau proposes at the window; any increase in the series — the
// signature of a campaign still being fed — resets the streak and must
// never propose.
func TestCampaignMonotoneGate(t *testing.T) {
	verdicts := campaignRig(t, []int{16, 16, 16, 16, 12, 8})
	for i, v := range verdicts {
		if want := i >= 2; v != want {
			t.Errorf("plateau campaign: iteration %d proposed=%v, want %v", i, v, want)
		}
	}
	for _, adversary := range [][]int{
		{8, 10, 8, 10, 8, 10, 8, 10},
		{16, 16, 12, 16, 16, 16, 16},
		{4, 3, 2, 1, 2, 3, 4, 5, 6},
	} {
		for i, v := range campaignRig(t, adversary) {
			if v && adversary[i] > adversary[i-1] {
				t.Errorf("non-monotone series %v proposed at iteration %d", adversary, i)
			}
			if v {
				// Any proposal needs a fully non-increasing trailing window.
				for j := i - 2; j < i; j++ {
					if adversary[j] < adversary[j+1] {
						t.Errorf("series %v proposed at %d across an increase at %d", adversary, i, j)
					}
				}
			}
		}
	}
}

// TestCampaignGateProperty: for random move series, every proposal implies
// (a) the streak spans at least the window, (b) the trailing window of
// moves is non-increasing, and (c) the proposing iteration still moved
// pages — the formal statement of the issue's decay-determinism
// precondition.
func TestCampaignGateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(10)
		moves := make([]int, n)
		for i := range moves {
			moves[i] = rng.Intn(4)
		}
		for i, v := range campaignRig(t, moves) {
			if !v {
				continue
			}
			if i < 2 {
				t.Errorf("trial %d %v: proposed at iteration %d, before the window", trial, moves, i)
			}
			if moves[i] == 0 {
				t.Errorf("trial %d %v: proposed a quiet iteration %d", trial, moves, i)
			}
			for j := max(0, i-2); j < i; j++ {
				if moves[j] < moves[j+1] {
					t.Errorf("trial %d %v: proposed at %d despite increase at %d", trial, moves, i, j)
				}
			}
		}
	}
}

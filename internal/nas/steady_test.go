package nas_test

import (
	"reflect"
	"testing"

	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

// maskSteady zeroes the detection-metadata fields extrapolation is
// allowed to set, plus the host-side FastPath report (which records the
// run's host path, not its physics); every other Result field must be
// bit-identical between an extrapolated and a fully simulated run.
func maskSteady(r nas.Result) nas.Result {
	r.SteadyAt = 0
	r.SteadyPeriod = 0
	r.ExtrapolatedIters = 0
	r.CampaignAt = 0
	r.CampaignIters = 0
	r.FastPath = nas.FastPath{}
	return r
}

// TestSteadyExtrapolationBitIdentity is the golden contract of the
// steady-state fast-forward: for every benchmark, placement and engine,
// a run that detects the steady state and extrapolates the tail must
// report exactly the virtual times, per-iteration spans, hardware
// counters, engine statistics and verification outcome of the run that
// simulates every iteration. Threads=1 keeps the interleaving
// deterministic so the comparison is exact.
func TestSteadyExtrapolationBitIdentity(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	engines := []struct {
		name     string
		phaseful bool // requires a phase change (record–replay)
		set      func(c *nas.Config)
	}{
		{"plain", false, func(c *nas.Config) {}},
		{"kmig", false, func(c *nas.Config) { c.KernelMig = true }},
		{"upmlib", false, func(c *nas.Config) { c.UPM = nas.UPMDistribute }},
		{"recrep", true, func(c *nas.Config) { c.UPM = nas.UPMRecRep }},
	}
	hasPhase := map[string]bool{"BT": true, "SP": true}
	for _, b := range builders {
		for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
			t.Run(b.name+"/"+p.String(), func(t *testing.T) {
				for _, eng := range engines {
					if eng.phaseful && !hasPhase[b.name] {
						continue
					}
					cfg := nas.Config{Class: nas.ClassS, Placement: p, Threads: 1, Iterations: 12}
					eng.set(&cfg)
					plain, err := nas.Run(b.build, cfg)
					if err != nil {
						t.Fatalf("%s plain: %v", eng.name, err)
					}
					scfg := cfg
					scfg.SteadyState, scfg.Extrapolate = true, true
					steady, err := nas.Run(b.build, scfg)
					if err != nil {
						t.Fatalf("%s steady: %v", eng.name, err)
					}
					if !reflect.DeepEqual(plain, maskSteady(steady)) {
						t.Errorf("%s: extrapolated run diverges from simulated:\n plain  %+v\n steady %+v",
							eng.name, plain, steady)
					}
					// The solvers with deactivating or quiescent engines
					// must actually reach steady state well before the
					// end. Two cells are legitimately exempt: record–
					// replay keeps moving pages every iteration (its
					// orbit can exceed the window at this tiny class),
					// and FT under the kernel engine — kmig's time-spaced
					// scans beat aperiodically against FT's short Class S
					// iterations, so its counter rows never freeze and
					// the conservative detector rightly refuses.
					exempt := eng.phaseful || (b.name == "FT" && eng.name == "kmig")
					if steady.SteadyAt == 0 && !exempt {
						t.Errorf("%s: steady state never detected in %d iterations", eng.name, len(steady.IterPS))
					}
					if steady.SteadyAt != 0 && steady.ExtrapolatedIters != len(plain.IterPS)-steady.SteadyAt {
						t.Errorf("%s: extrapolated %d iters, want %d (steady at %d of %d)",
							eng.name, steady.ExtrapolatedIters, len(plain.IterPS)-steady.SteadyAt,
							steady.SteadyAt, len(plain.IterPS))
					}
				}
			})
		}
	}
}

// TestSteadyDetectionOnly: with Extrapolate off the detector observes and
// records but the run still simulates every iteration — bit-identical to
// a plain run in everything but SteadyAt.
func TestSteadyDetectionOnly(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1, Iterations: 10}
	plain, err := nas.Run(sp.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg
	dcfg.SteadyState = true
	det, err := nas.Run(sp.New, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.SteadyAt == 0 {
		t.Fatal("detection-only run never detected the steady state")
	}
	if det.ExtrapolatedIters != 0 {
		t.Fatalf("detection-only run extrapolated %d iterations", det.ExtrapolatedIters)
	}
	if !reflect.DeepEqual(plain, maskSteady(det)) {
		t.Errorf("detection-only run diverges from plain:\n plain %+v\n det   %+v", plain, det)
	}
}

// TestSteadyRespectsPerturbation: the detector must not extrapolate
// across the scheduler perturbation — observation starts after it, so a
// detected steady state always lies beyond PerturbAt and the perturbed
// run's result stays bit-identical to its fully simulated twin.
func TestSteadyRespectsPerturbation(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 14, PerturbAt: 4, UPM: nas.UPMDistribute}
	plain, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.SteadyState, scfg.Extrapolate = true, true
	steady, err := nas.Run(bt.New, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if steady.SteadyAt != 0 && steady.SteadyAt <= cfg.PerturbAt {
		t.Fatalf("steady state claimed at iteration %d, before the perturbation at %d",
			steady.SteadyAt, cfg.PerturbAt)
	}
	if steady.SteadyAt == 0 {
		t.Fatal("steady state never detected after the perturbation")
	}
	if !reflect.DeepEqual(plain, maskSteady(steady)) {
		t.Errorf("perturbed extrapolation diverges:\n plain  %+v\n steady %+v", plain, steady)
	}
}

// TestSteadyDisabledBySampler: a metrics sampler needs every iteration
// simulated, so it switches the detector off entirely.
func TestSteadyDisabledBySampler(t *testing.T) {
	s := metrics.NewSampler(metrics.Options{})
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 10, Metrics: s, SteadyState: true, Extrapolate: true}
	res, err := nas.Run(sp.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyAt != 0 || res.ExtrapolatedIters != 0 {
		t.Fatalf("sampled run used the detector: steadyAt=%d extrapolated=%d",
			res.SteadyAt, res.ExtrapolatedIters)
	}
}

// TestSteadyTraceSummary: an extrapolated run's trace carries the
// steady_state and extrapolate events, and the summary's sum contract
// extends across the extrapolated tail — TotalPS tiles into phases,
// serial time and the extrapolated span exactly.
func TestSteadyTraceSummary(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 12, Tracer: rec, SteadyState: true, Extrapolate: true}
	res, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtrapolatedIters == 0 {
		t.Fatal("run did not extrapolate; trace contract untestable")
	}
	var sawSteady, sawExtrap bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.EvSteadyState:
			sawSteady = true
			if ev.Arg0 != int64(res.SteadyAt) {
				t.Errorf("steady_state event at iteration %d, result says %d", ev.Arg0, res.SteadyAt)
			}
		case trace.EvExtrapolate:
			sawExtrap = true
			if ev.Arg0 != int64(res.ExtrapolatedIters) {
				t.Errorf("extrapolate event covers %d iters, result says %d", ev.Arg0, res.ExtrapolatedIters)
			}
		}
	}
	if !sawSteady || !sawExtrap {
		t.Fatalf("missing events: steady_state=%v extrapolate=%v", sawSteady, sawExtrap)
	}
	s := trace.Summarize(rec.Events())
	if s.ExtrapolatedIters != res.ExtrapolatedIters {
		t.Errorf("summary extrapolated %d iters, result %d", s.ExtrapolatedIters, res.ExtrapolatedIters)
	}
	var phasePS int64
	for _, p := range s.Phases {
		phasePS += p.TimePS
	}
	if got := phasePS + s.SerialPS + s.ExtrapolatedPS; got != s.TotalPS {
		t.Errorf("sum contract broken: phases %d + serial %d + extrapolated %d = %d != total %d",
			phasePS, s.SerialPS, s.ExtrapolatedPS, got, s.TotalPS)
	}
	var iterPS int64
	for _, it := range s.PerIter {
		iterPS += it.TimePS
	}
	if got := iterPS + s.ExtrapolatedPS; got != s.TotalPS {
		t.Errorf("per-iter contract broken: iters %d + extrapolated %d = %d != total %d",
			iterPS, s.ExtrapolatedPS, got, s.TotalPS)
	}
	if s.TotalPS != res.TotalPS {
		t.Errorf("summary total %d != result total %d", s.TotalPS, res.TotalPS)
	}
	if s.Iterations != res.SteadyAt {
		t.Errorf("summary simulated %d iterations, expected %d (steady point)", s.Iterations, res.SteadyAt)
	}
}

// TestSteadyForkBitIdentity: extrapolation composes with the snapshot
// subsystem — a forked steady run equals a from-scratch steady run.
func TestSteadyForkBitIdentity(t *testing.T) {
	base := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1, Iterations: 12}
	prefix, err := nas.RunPrefix(cg.New, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.SteadyState, cfg.Extrapolate = true, true
	cfg.KernelMig = true
	scratch, err := nas.Run(cg.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := prefix.RunFromSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scratch, forked) {
		t.Errorf("steady fork diverges from scratch:\n scratch %+v\n fork    %+v", scratch, forked)
	}
}

// TestSteadyTailCache: runs that share a numeric trajectory share one
// verification — an extrapolating run that finds its trajectory already
// verified skips the free-run tail yet reports a Result bit-identical to
// the fully simulated run of its own engine. Placement and engine
// variants land on one cache entry; a different seed gets its own.
func TestSteadyTailCache(t *testing.T) {
	vc := nas.NewVerifyCache()
	base := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 12, SteadyState: true, Extrapolate: true, TailCache: vc}
	engines := []func(c *nas.Config){
		func(c *nas.Config) {},
		func(c *nas.Config) { c.KernelMig = true },
		func(c *nas.Config) { c.UPM = nas.UPMDistribute; c.Placement = vm.WorstCase },
	}
	for i, set := range engines {
		cfg := base
		set(&cfg)
		cached, err := nas.Run(sp.New, cfg)
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		plain := cfg
		plain.SteadyState, plain.Extrapolate, plain.TailCache = false, false, nil
		want, err := nas.Run(sp.New, plain)
		if err != nil {
			t.Fatalf("engine %d plain: %v", i, err)
		}
		if !reflect.DeepEqual(want, maskSteady(cached)) {
			t.Errorf("engine %d: tail-cached run diverges from simulated:\n plain  %+v\n cached %+v",
				i, want, cached)
		}
		if !cached.Verified {
			t.Errorf("engine %d: tail-cached run not verified", i)
		}
	}
	if vc.Len() != 1 {
		t.Errorf("engine variants filled %d cache entries, want 1 shared trajectory", vc.Len())
	}
	other := base
	other.Seed = 7
	if _, err := nas.Run(sp.New, other); err != nil {
		t.Fatal(err)
	}
	if vc.Len() != 2 {
		t.Errorf("distinct seed reused the trajectory entry: %d entries, want 2", vc.Len())
	}
}

// TestSteadySkipVerifyTail: with SkipVerify nothing ever observes the
// kernel's final numerics, so an extrapolating run drops the free-run
// tail outright — and still matches the fully simulated run bit for bit.
func TestSteadySkipVerifyTail(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 12, SkipVerify: true}
	plain, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.SteadyState, scfg.Extrapolate = true, true
	steady, err := nas.Run(bt.New, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if steady.SteadyAt == 0 || steady.ExtrapolatedIters == 0 {
		t.Fatalf("run did not extrapolate: %+v", steady)
	}
	if !reflect.DeepEqual(plain, maskSteady(steady)) {
		t.Errorf("skip-verify extrapolation diverges:\n plain  %+v\n steady %+v", plain, steady)
	}
}

// TestSteadyFingerprintCanonicalisation: the steady knobs canonicalise —
// window 0 is the default, and with SteadyState off the other fields are
// dead — so equivalent configs share one cache entry while a steady and
// a plain run (whose SteadyAt fields differ) never collide.
func TestSteadyFingerprintCanonicalisation(t *testing.T) {
	base := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch}
	a := base
	a.SteadyState, a.SteadyWindow = true, 0
	b := base
	b.SteadyState, b.SteadyWindow = true, 3
	fa, ok := a.Fingerprint()
	if !ok {
		t.Fatal("fingerprint failed")
	}
	fb, _ := b.Fingerprint()
	if fa != fb {
		t.Errorf("window 0 and default window fingerprints differ:\n %q\n %q", fa, fb)
	}
	c := base
	c.Extrapolate, c.SteadyWindow = true, 5 // dead without SteadyState
	fc, _ := c.Fingerprint()
	fplain, _ := base.Fingerprint()
	if fc != fplain {
		t.Errorf("dead steady fields changed the fingerprint:\n %q\n %q", fc, fplain)
	}
	fsteady, _ := a.Fingerprint()
	if fsteady == fplain {
		t.Error("steady and plain configs share a fingerprint; SteadyAt would go stale in the cache")
	}
	d := base
	d.TailCache = nas.NewVerifyCache()
	fd, _ := d.Fingerprint()
	if fd != fplain {
		t.Errorf("attaching a tail cache changed the fingerprint:\n %q\n %q", fd, fplain)
	}
}

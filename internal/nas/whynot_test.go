package nas_test

import (
	"testing"

	"upmgo/internal/kmig"
	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/vm"
)

// steadyCfg is the common arming: detector plus extrapolation, so a nil
// WhyNot means the fast path genuinely engaged.
func steadyCfg(iters int) nas.Config {
	return nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: iters, SteadyState: true, Extrapolate: true}
}

func runWhy(t *testing.T, build nas.Builder, cfg nas.Config) *nas.WhyNot {
	t.Helper()
	res, err := nas.Run(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtrapolatedIters > 0 || res.CampaignIters > 0 {
		t.Fatalf("fast path engaged (%d extrapolated, %d campaign); the case should decline", res.ExtrapolatedIters, res.CampaignIters)
	}
	if res.FastPath.WhyNot == nil {
		t.Fatalf("declined fast-forward carries no WhyNot: %+v", res.FastPath)
	}
	return res.FastPath.WhyNot
}

// TestWhyNotLoopTooShort: fewer than window+1 timed iterations can never
// confirm even a period-one orbit; the diagnosis must say so, typed, not
// just report non-detection.
func TestWhyNotLoopTooShort(t *testing.T) {
	w := runWhy(t, bt.New, steadyCfg(3))
	if w.Reason != nas.WhyNotLoopTooShort {
		t.Fatalf("reason = %q, want %q (%s)", w.Reason, nas.WhyNotLoopTooShort, w)
	}
	if w.Observed != 3 {
		t.Errorf("observed = %d, want 3", w.Observed)
	}
}

// TestWhyNotPerturbed: a scheduler perturbation near the end of the loop
// breaks the orbit with too few iterations left for it to re-close. The
// diagnosis must name the perturbing iteration.
func TestWhyNotPerturbed(t *testing.T) {
	cfg := steadyCfg(10)
	cfg.PerturbAt = 8
	w := runWhy(t, bt.New, cfg)
	if w.Reason != nas.WhyNotPerturbed {
		t.Fatalf("reason = %q, want %q (%s)", w.Reason, nas.WhyNotPerturbed, w)
	}
	if w.PerturbIter != 8 {
		t.Errorf("perturb iteration = %d, want 8", w.PerturbIter)
	}
}

// TestWhyNotPeriodBeyondCapRestricted: a genuine period-3 orbit under
// PeriodK=1 must be diagnosed as periodic-beyond-the-cap with the true
// period as the best candidate — the evidence that raising PeriodK would
// recover the fast path.
func TestWhyNotPeriodBeyondCapRestricted(t *testing.T) {
	cfg := steadyCfg(24)
	cfg.PeriodK = 1
	w := runWhy(t, synthBuilder(0, 3), cfg)
	if w.Reason != nas.WhyNotPeriodBeyondCap {
		t.Fatalf("reason = %q, want %q (%s)", w.Reason, nas.WhyNotPeriodBeyondCap, w)
	}
	if w.BestPeriod != 3 {
		t.Errorf("best candidate period = %d, want 3", w.BestPeriod)
	}
}

// TestWhyNotPeriodBeyondCapAdversary: the period-9 reference string of
// campaign_test exceeds the global cap (8). The run simulates in full by
// design, and the diagnosis must identify the hidden period rather than
// calling the stream aperiodic.
func TestWhyNotPeriodBeyondCapAdversary(t *testing.T) {
	cfg := steadyCfg(30)
	cfg.SteadyWindow = 9
	w := runWhy(t, synthBuilder(0, 9), cfg)
	if w.Reason != nas.WhyNotPeriodBeyondCap {
		t.Fatalf("reason = %q, want %q (%s)", w.Reason, nas.WhyNotPeriodBeyondCap, w)
	}
	if w.BestPeriod != 9 {
		t.Errorf("best candidate period = %d, want 9", w.BestPeriod)
	}
}

// TestWhyNotHomesMoving: a kernel-migration campaign that outlasts the
// run keeps the page-home map in motion, so no counter orbit can close.
// With the analytic drain off (the incompressible-campaign stand-in: the
// drain's determinism proof never applies), the diagnosis must blame the
// moving homes, not the counters.
func TestWhyNotHomesMoving(t *testing.T) {
	cfg := nas.Config{
		Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 10, KernelMig: true,
		Kmig:        kmig.Config{DecayEvery: -1, MinScanPS: -1},
		SteadyState: true, Extrapolate: true, NoCampaignFF: true,
	}
	w := runWhy(t, synthBuilder(1000, 0), cfg)
	if w.Reason != nas.WhyNotHomesMoving {
		t.Fatalf("reason = %q, want %q (%s)", w.Reason, nas.WhyNotHomesMoving, w)
	}
	if w.HomeMoves == 0 {
		t.Error("homes_moving diagnosis reports zero home moves")
	}
	if w.FirstDivergent != "page_homes" {
		t.Errorf("first divergent = %q, want page_homes", w.FirstDivergent)
	}
}

// TestWhyNotDeclinedModes: the paths where detection worked but
// fast-forwarding was declined or disarmed still produce a typed reason:
// detection-only runs, runs whose orbit closes on the final iteration,
// and sampler-vetoed runs.
func TestWhyNotDeclinedModes(t *testing.T) {
	cfg := steadyCfg(12)
	cfg.Extrapolate = false
	res, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyAt == 0 {
		t.Fatalf("detection-only run never detected: %+v", res)
	}
	w := res.FastPath.WhyNot
	if w == nil || w.Reason != nas.WhyNotDetectionOnly {
		t.Fatalf("detection-only WhyNot = %+v, want reason %q", w, nas.WhyNotDetectionOnly)
	}
	if !res.FastPath.SteadyDetected || res.FastPath.Extrapolated {
		t.Errorf("detection-only flags wrong: %+v", res.FastPath)
	}

	scfg := steadyCfg(12)
	scfg.Metrics = metrics.NewSampler(metrics.Options{})
	res, err = nas.Run(bt.New, scfg)
	if err != nil {
		t.Fatal(err)
	}
	w = res.FastPath.WhyNot
	if w == nil || w.Reason != nas.WhyNotSampler {
		t.Fatalf("sampler-vetoed WhyNot = %+v, want reason %q", w, nas.WhyNotSampler)
	}
}

// TestWhyNotEngagedIsNil: when the fast path engages the report carries
// flags, not excuses.
func TestWhyNotEngagedIsNil(t *testing.T) {
	res, err := nas.Run(bt.New, steadyCfg(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtrapolatedIters == 0 {
		t.Fatalf("BT/12 did not extrapolate: %+v", res)
	}
	fp := res.FastPath
	if !fp.SteadyDetected || !fp.Extrapolated || fp.WhyNot != nil {
		t.Errorf("engaged FastPath = %+v, want detected+extrapolated with nil WhyNot", fp)
	}
}

// TestWhyNotStrings: every reason renders a non-empty, distinct sentence
// (cmd/nasbench prints these verbatim).
func TestWhyNotStrings(t *testing.T) {
	reasons := []nas.WhyNotReason{
		nas.WhyNotSampler, nas.WhyNotDetectionOnly, nas.WhyNotNoTail,
		nas.WhyNotLoopTooShort, nas.WhyNotPerturbed, nas.WhyNotPeriodBeyondCap,
		nas.WhyNotHomesMoving, nas.WhyNotAperiodic,
	}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := (&nas.WhyNot{Reason: r, BestPeriod: 2, BestStreak: 3, NeededStreak: 4,
			FirstDivergent: "cpu0_clock", Observed: 5, HomeMoves: 6, PerturbIter: 7}).String()
		if s == "" {
			t.Errorf("reason %q renders empty", r)
		}
		if seen[s] {
			t.Errorf("reason %q renders a duplicate sentence %q", r, s)
		}
		seen[s] = true
	}
	if (*nas.WhyNot)(nil).String() != "" {
		t.Error("nil WhyNot should render empty")
	}
}

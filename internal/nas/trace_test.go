package nas_test

import (
	"reflect"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/trace"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

// runTraced runs one config with a fresh recorder attached and returns the
// result plus the recorder.
func runTraced(t *testing.T, build nas.Builder, cfg nas.Config) (nas.Result, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	res, err := nas.Run(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestTracingOffOnEquivalence is the tentpole invariant: attaching a tracer
// observes the simulation but never advances a clock, so a traced run's
// every number — virtual times, engine stats, hardware counters — is
// bit-identical to the same config untraced. The config turns on both
// migration engines and uses the worst-case placement so every emission
// path (faults, scans, UPM invocations, shootdowns, barriers, regions)
// actually fires during the comparison. Threads 1 for the same reason as
// TestBulkScalarEquivalence: only there is an individual run exactly
// reproducible (at full width the simulated coherence protocol resolves
// races in host arrival order), which is what lets two separate runs be
// compared bit for bit.
func TestTracingOffOnEquivalence(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			cfg := nas.Config{
				Class:     nas.ClassS,
				Placement: vm.WorstCase,
				KernelMig: true,
				UPM:       nas.UPMDistribute,
				Threads:   1,
			}
			plain, err := nas.Run(b.build, cfg)
			if err != nil {
				t.Fatal(err)
			}
			traced, rec := runTraced(t, b.build, cfg)
			if rec.Len() == 0 {
				t.Fatal("traced run recorded no events")
			}
			if plain.TotalPS != traced.TotalPS {
				t.Errorf("TotalPS: untraced %d, traced %d", plain.TotalPS, traced.TotalPS)
			}
			if plain.ColdPS != traced.ColdPS {
				t.Errorf("ColdPS: untraced %d, traced %d", plain.ColdPS, traced.ColdPS)
			}
			if !reflect.DeepEqual(plain.IterPS, traced.IterPS) {
				t.Errorf("IterPS diverge:\n untraced %v\n traced   %v", plain.IterPS, traced.IterPS)
			}
			if !reflect.DeepEqual(plain.PhasePS, traced.PhasePS) {
				t.Errorf("PhasePS diverge:\n untraced %v\n traced   %v", plain.PhasePS, traced.PhasePS)
			}
			if plain.UPM != traced.UPM {
				t.Errorf("UPM stats diverge:\n untraced %+v\n traced   %+v", plain.UPM, traced.UPM)
			}
			if plain.KmigMoves != traced.KmigMoves || plain.KmigCost != traced.KmigCost {
				t.Errorf("kmig diverges: untraced %d/%d ps, traced %d/%d ps",
					plain.KmigMoves, plain.KmigCost, traced.KmigMoves, traced.KmigCost)
			}
			if plain.Mach != traced.Mach {
				t.Errorf("machine stats diverge:\n untraced %+v\n traced   %+v", plain.Mach, traced.Mach)
			}
			if plain.Verified != traced.Verified {
				t.Errorf("Verified: untraced %v, traced %v", plain.Verified, traced.Verified)
			}
		})
	}
}

// TestUPMDistributeProtocol asserts the paper's Figure 2 protocol against
// the event stream: under the worst-case initial placement the engine must
// move pages in the first timed iteration, keep being invoked only while
// it finds work, self-deactivate once the distribution is stable, and
// never act again after deactivating.
func TestUPMDistributeProtocol(t *testing.T) {
	// Full team width: with one thread every access comes from one node
	// and there is nothing to migrate. The assertions below are
	// structural properties of a single run (the protocol's shape), so
	// cross-run reproducibility is not needed.
	_, rec := runTraced(t, ft.New, nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		UPM:       nas.UPMDistribute,
	})
	s := trace.Summarize(rec.Events())
	if len(s.PerIter) == 0 {
		t.Fatal("no iterations traced")
	}
	if s.PerIter[0].UPMMoves == 0 {
		t.Error("UPMlib moved no pages in iteration 1 despite worst-case placement")
	}
	if s.UPMDeactivateIter == 0 {
		t.Fatalf("UPMlib never self-deactivated in %d iterations (%d invocations, %d moves)",
			s.Iterations, s.UPMInvocations, s.UPMMoves)
	}
	for _, it := range s.PerIter {
		if it.Step > s.UPMDeactivateIter && it.UPMMoves != 0 {
			t.Errorf("iteration %d: %d UPM moves after deactivation at iteration %d",
				it.Step, it.UPMMoves, s.UPMDeactivateIter)
		}
	}
	// The deactivating invocation is the one that found nothing: the last
	// invocation's move count must be zero, all earlier ones positive.
	var migrates []trace.Event
	for _, ev := range rec.Events() {
		if ev.Kind == trace.EvUPMMigrate {
			migrates = append(migrates, ev)
		}
	}
	if len(migrates) < 2 {
		t.Fatalf("want at least one productive invocation plus the deactivating one, got %d", len(migrates))
	}
	for i, ev := range migrates {
		last := i == len(migrates)-1
		if last && ev.Arg0 != 0 {
			t.Errorf("final invocation moved %d pages; deactivation requires zero", ev.Arg0)
		}
		if !last && ev.Arg0 == 0 {
			t.Errorf("invocation %d moved nothing but the engine was re-invoked", i+1)
		}
		if int64(len(ev.Pages)) != ev.Arg0 {
			t.Errorf("invocation %d: Arg0=%d but %d page moves listed", i+1, ev.Arg0, len(ev.Pages))
		}
	}
}

// TestRecordReplayProtocol asserts the Figure 3 contract: from iteration 3
// on, replay moves the top-n critical pages before z_solve and undo
// restores exactly those pages afterwards — the undo page set is the
// replay set reversed, and both respect the MaxCritical budget.
func TestRecordReplayProtocol(t *testing.T) {
	const maxCritical = 8
	// Full team width, as in TestUPMDistributeProtocol: the phase-change
	// plan is empty unless different nodes dominate different phases.
	_, rec := runTraced(t, bt.New, nas.Config{
		Class:      nas.ClassS,
		Placement:  vm.WorstCase,
		UPM:        nas.UPMRecRep,
		UPMOptions: upm.Options{MaxCritical: maxCritical},
	})
	events := rec.Events()

	type pair struct{ replay, undo *trace.Event }
	perIter := map[int]*pair{}
	step := 0
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case trace.EvIterStart:
			step = int(ev.Arg0)
		case trace.EvIterEnd:
			step = 0
		case trace.EvUPMReplay:
			if step == 0 {
				t.Fatal("replay outside a timed iteration")
			}
			if perIter[step] == nil {
				perIter[step] = &pair{}
			}
			perIter[step].replay = ev
		case trace.EvUPMUndo:
			if step == 0 {
				t.Fatal("undo outside a timed iteration")
			}
			if perIter[step] == nil {
				perIter[step] = &pair{}
			}
			perIter[step].undo = ev
		}
	}
	if len(perIter) == 0 {
		t.Fatal("no replay/undo events traced")
	}
	totalReplayMoves := 0
	for step, p := range perIter {
		if p.replay == nil || p.undo == nil {
			t.Fatalf("iteration %d: replay and undo must come in pairs (replay=%v undo=%v)",
				step, p.replay != nil, p.undo != nil)
		}
		if step < 3 {
			t.Errorf("replay at iteration %d; the protocol starts replaying at 3", step)
		}
		if n := len(p.replay.Pages); n > maxCritical {
			t.Errorf("iteration %d: replay moved %d pages, budget is %d", step, n, maxCritical)
		}
		if len(p.undo.Pages) != len(p.replay.Pages) {
			t.Errorf("iteration %d: replay moved %d pages but undo moved %d",
				step, len(p.replay.Pages), len(p.undo.Pages))
			continue
		}
		// Undo must be the exact inverse page set: every replayed
		// vpn a→b comes back b→a.
		inverse := map[uint64][2]int{}
		for _, mv := range p.replay.Pages {
			inverse[mv.VPN] = [2]int{mv.To, mv.From}
		}
		for _, mv := range p.undo.Pages {
			want, ok := inverse[mv.VPN]
			if !ok {
				t.Errorf("iteration %d: undo moved vpn %d that replay never touched", step, mv.VPN)
				continue
			}
			if mv.From != want[0] || mv.To != want[1] {
				t.Errorf("iteration %d: vpn %d undone %d→%d, want inverse %d→%d",
					step, mv.VPN, mv.From, mv.To, want[0], want[1])
			}
		}
		totalReplayMoves += len(p.replay.Pages)
	}
	if totalReplayMoves == 0 {
		t.Error("record-replay never moved a page; the phase-change plan is empty")
	}
}

// TestTraceSumContract checks the accounting identity the summarizer
// promises: the trace's virtual-time totals reproduce the driver's own
// numbers exactly — per-phase spans plus serial gaps tile the timed loop,
// and per-iteration spans match Result.IterPS picosecond for picosecond.
func TestTraceSumContract(t *testing.T) {
	res, rec := runTraced(t, bt.New, nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		UPM:       nas.UPMDistribute,
		Threads:   1,
	})
	s := trace.Summarize(rec.Events())
	if s.TotalPS != res.TotalPS {
		t.Errorf("Summary.TotalPS %d != Result.TotalPS %d", s.TotalPS, res.TotalPS)
	}
	var phasePS int64
	for _, p := range s.Phases {
		phasePS += p.TimePS
	}
	if phasePS+s.SerialPS != s.TotalPS {
		t.Errorf("phase spans %d + serial %d = %d, want TotalPS %d",
			phasePS, s.SerialPS, phasePS+s.SerialPS, s.TotalPS)
	}
	if s.SerialPS < 0 {
		t.Errorf("negative serial time %d: region spans overlap the loop boundaries", s.SerialPS)
	}
	if s.Iterations != len(res.IterPS) {
		t.Fatalf("summary has %d iterations, result %d", s.Iterations, len(res.IterPS))
	}
	for i, it := range s.PerIter {
		if it.TimePS != res.IterPS[i] {
			t.Errorf("iteration %d: trace %d ps, result %d ps", it.Step, it.TimePS, res.IterPS[i])
		}
	}
	var sum int64
	for _, it := range s.PerIter {
		sum += it.TimePS
	}
	if sum != s.TotalPS {
		t.Errorf("per-iteration spans sum to %d, want TotalPS %d", sum, s.TotalPS)
	}
}

package nas

import (
	"fmt"
	"time"
)

// FastPath reports which of the run's host-time accelerations engaged,
// and — when the steady-state machinery was armed but the tail was still
// simulated in full — a typed diagnosis of why it declined. It is
// host-side metadata in the strict PR-3 sense: populated from the same
// observations the run makes anyway, charging zero virtual time, and
// excluded from the Result's JSON form so store records and job-API
// payloads are byte-identical with or without it. The JSON tags below
// exist for the *telemetry* surfaces (exp.CellReport, the sweepd events
// stream), which serialise the report deliberately.
type FastPath struct {
	// SteadyDetected: the detector proved a periodic orbit
	// (Result.SteadyAt is the firing iteration).
	SteadyDetected bool `json:"steady_detected,omitempty"`
	// Extrapolated: the trailing iterations were fast-forwarded
	// analytically (Result.ExtrapolatedIters of them).
	Extrapolated bool `json:"extrapolated,omitempty"`
	// CampaignFF: a kernel-migration campaign was drained in closed form
	// (Result.CampaignIters iterations).
	CampaignFF bool `json:"campaign_ff,omitempty"`
	// ResidentElide: page-granular charging elision was armed
	// (Config.ResidentElide). Results are bit-identical either way; the
	// flag records only where the host time went.
	ResidentElide bool `json:"resident_elide,omitempty"`
	// TailCacheHit: the free-run verification tail was skipped because a
	// numerically identical run had already verified (Config.TailCache).
	TailCacheHit bool `json:"tail_cache_hit,omitempty"`
	// WhyNot explains why fast-forwarding declined. Nil when it engaged
	// (Extrapolated or CampaignFF), or when SteadyState was never armed.
	WhyNot *WhyNot `json:"why_not,omitempty"`
}

// WhyNotReason classifies why the steady-state fast-forward declined.
type WhyNotReason string

const (
	// WhyNotSampler: a metrics sampler was attached; it must see every
	// iteration simulated, so the detector never arms.
	WhyNotSampler WhyNotReason = "sampler_attached"
	// WhyNotDetectionOnly: the orbit was proven but Config.Extrapolate
	// was off, so the run kept simulating by request.
	WhyNotDetectionOnly WhyNotReason = "detection_only"
	// WhyNotNoTail: the orbit was proven on the final iteration; there
	// was nothing left to fast-forward.
	WhyNotNoTail WhyNotReason = "no_tail"
	// WhyNotLoopTooShort: the timed loop ended before the detector could
	// have confirmed even a period-one orbit (fewer than window+1
	// observed iterations).
	WhyNotLoopTooShort WhyNotReason = "loop_too_short"
	// WhyNotPerturbed: a scheduler perturbation (Config.PerturbAt) broke
	// or delayed the orbit and it never re-closed in the iterations that
	// remained.
	WhyNotPerturbed WhyNotReason = "perturbed"
	// WhyNotPeriodBeyondCap: the reference string does repeat, but with a
	// period above the detector's cap (Config.PeriodK, default 8) — the
	// adversarial fallback: such runs simulate in full by design.
	WhyNotPeriodBeyondCap WhyNotReason = "period_beyond_cap"
	// WhyNotHomesMoving: the page-home map never went stationary — an
	// ongoing migration campaign the analytic drain could not prove
	// deterministic (the incompressible kmig cells).
	WhyNotHomesMoving WhyNotReason = "homes_moving"
	// WhyNotAperiodic: the counter deltas themselves never repeated; the
	// reference string is genuinely aperiodic at every period tried.
	WhyNotAperiodic WhyNotReason = "aperiodic"
)

// WhyNot is the typed diagnosis behind a declined fast-forward: the
// reason plus the supporting evidence the detector gathered while
// failing — the best candidate period and how close it came, the first
// counter that refused to repeat, and the perturbation or home-map
// motion that broke the orbit.
type WhyNot struct {
	Reason WhyNotReason `json:"reason"`
	// BestPeriod is the candidate orbit length that came closest to
	// proving itself; BestStreak is its longest run of successful lag-k
	// delta comparisons, against the NeededStreak ((window−1)·k) that
	// would have fired.
	BestPeriod   int `json:"best_period,omitempty"`
	BestStreak   int `json:"best_streak,omitempty"`
	NeededStreak int `json:"needed_streak,omitempty"`
	// FirstDivergent names the first counter whose delta broke the best
	// candidate's most recent comparison — "page_homes" when the
	// page-home hash itself moved, else a counter name from the
	// AppendCounterNames layout (e.g. "cpu3_remote_mem", "kmig_scans").
	FirstDivergent string `json:"first_divergent,omitempty"`
	// Observed is the number of timed iterations the detector saw.
	Observed int `json:"observed,omitempty"`
	// HomeMoves counts observed iterations whose page-home hash differed
	// from the previous one — nonzero while a migration campaign runs.
	HomeMoves int `json:"home_moves,omitempty"`
	// PerturbIter echoes Config.PerturbAt for reason "perturbed".
	PerturbIter int `json:"perturb_iter,omitempty"`
}

// String renders the diagnosis as one human-readable sentence — the
// replacement for the ad-hoc explanation cmd/nasbench used to assemble.
func (w *WhyNot) String() string {
	if w == nil {
		return ""
	}
	switch w.Reason {
	case WhyNotSampler:
		return "metrics sampler attached: every iteration must be simulated to be sampled"
	case WhyNotDetectionOnly:
		return fmt.Sprintf("steady orbit proven (period %d) but extrapolation not requested", maxInt(w.BestPeriod, 1))
	case WhyNotNoTail:
		return fmt.Sprintf("steady orbit proven (period %d) on the final iteration: no tail left to fast-forward", maxInt(w.BestPeriod, 1))
	case WhyNotLoopTooShort:
		return fmt.Sprintf("timed loop too short: %d iterations observed, a period-1 orbit needs %d", w.Observed, w.NeededStreak+2)
	case WhyNotPerturbed:
		return fmt.Sprintf("scheduler perturbation at iteration %d broke the orbit and it never re-closed (best candidate: period %d, streak %d/%d)",
			w.PerturbIter, w.BestPeriod, w.BestStreak, w.NeededStreak)
	case WhyNotPeriodBeyondCap:
		return fmt.Sprintf("reference string repeats with period %d, beyond the detector's cap: simulated in full by design", w.BestPeriod)
	case WhyNotHomesMoving:
		return fmt.Sprintf("page-home map kept moving (%d of %d iterations): an ongoing migration campaign the analytic drain could not prove deterministic",
			w.HomeMoves, w.Observed)
	case WhyNotAperiodic:
		return fmt.Sprintf("counter deltas never repeated: %s diverged on the best candidate (period %d, streak %d/%d)",
			w.FirstDivergent, w.BestPeriod, w.BestStreak, w.NeededStreak)
	}
	return string(w.Reason)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HostStages splits one run's host wall-clock cost by stage. A run
// fills the stages it executes when Config.HostStages points here; the
// remaining fields stay zero (a store-recalled cell, for instance, only
// ever charges StoreProbe — in exp's accounting, not this struct's).
// Timing is pure observation: no time.Now call is made unless the sink
// is attached, and nothing simulated reads the values, so armed and
// unarmed runs are bit-identical in every virtual quantity.
type HostStages struct {
	// StoreProbe: looking the cell up in the on-disk result store
	// (charged by exp.Cache, not by the run itself).
	StoreProbe time.Duration `json:"store_probe,omitempty"`
	// Prefix: the engine-independent cold start (machine build, init
	// touch, cold iteration, reset) — or, for a forked cell, the wait
	// for the shared prefix snapshot.
	Prefix time.Duration `json:"prefix,omitempty"`
	// Fork: cloning the prefix snapshot and rebuilding the kernel on it.
	Fork time.Duration `json:"fork,omitempty"`
	// TimedLoop: the simulated iterations of the timed main loop.
	TimedLoop time.Duration `json:"timed_loop,omitempty"`
	// Extrapolate: applying the proven cycle deltas analytically.
	Extrapolate time.Duration `json:"extrapolate,omitempty"`
	// FreeRunTail: re-executing remaining steps in free-run mode for the
	// numerics (the extrapolation tail and analytic campaign drains).
	FreeRunTail time.Duration `json:"free_run_tail,omitempty"`
	// Verify: the numerical check.
	Verify time.Duration `json:"verify,omitempty"`
}

// Sum returns the total host time attributed to named stages.
func (h *HostStages) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.StoreProbe + h.Prefix + h.Fork + h.TimedLoop + h.Extrapolate + h.FreeRunTail + h.Verify
}

package ft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkFT(t *testing.T) (*machine.Machine, *FT, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	f := New(m, nas.ClassS, 1, 11).(*FT)
	return m, f, omp.MustTeam(m, m.NumCPUs())
}

// naiveDFT computes the O(n^2) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			w := cmplx.Exp(complex(0, sign*2*math.Pi*float64(k*j)/float64(n)))
			out[k] += x[j] * w
		}
	}
	return out
}

func TestFFT1DMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*1.7), math.Cos(float64(i)*0.9))
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		fft1d(got, false)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// Property: inverse(forward(x)) == n*... with our conventions, fft1d
// forward then inverse (and dividing by n) returns the input.
func TestFFT1DRoundTrip(t *testing.T) {
	f := func(re, im [8]float64) bool {
		x := make([]complex128, 8)
		for i := range x {
			x[i] = complex(math.Mod(re[i], 100), math.Mod(im[i], 100))
		}
		y := append([]complex128(nil), x...)
		fft1d(y, false)
		fft1d(y, true)
		for i := range y {
			if cmplx.Abs(y[i]/8-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnergyConservedAcrossSteps(t *testing.T) {
	_, f, team := mkFT(t)
	for s := 0; s < 3; s++ {
		f.Step(team, nil)
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	for i, cs := range f.Checksums() {
		if math.Abs(cs-f.energy0) > 1e-8*f.energy0 {
			t.Errorf("step %d: energy %g, want %g", i+1, cs, f.energy0)
		}
	}
}

func TestFieldEvolves(t *testing.T) {
	_, f, team := mkFT(t)
	f.Step(team, nil)
	same := true
	for i, v := range f.u1.Data() {
		if v != f.init[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("field identical to the initial condition after a step")
	}
}

func TestReinitRestoresField(t *testing.T) {
	_, f, team := mkFT(t)
	f.Step(team, nil)
	f.Reinit()
	for i, v := range f.u1.Data() {
		if v != f.init[i] {
			t.Fatalf("u1[%d] = %g after Reinit, want %g", i, v, f.init[i])
		}
	}
	if len(f.Checksums()) != 0 {
		t.Error("checksums survived Reinit")
	}
}

func TestResultsIndependentOfPlacement(t *testing.T) {
	run := func(p vm.Policy) float64 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		f := New(m, nas.ClassS, 1, 11).(*FT)
		team := omp.MustTeam(m, m.NumCPUs())
		f.Step(team, nil)
		var s float64
		for _, v := range f.u1.Data() {
			s += v * v
		}
		return s
	}
	if a, b := run(vm.FirstTouch), run(vm.WorstCase); a != b {
		t.Errorf("field depends on placement: %g vs %g", a, b)
	}
}

func TestZPassCrossesPages(t *testing.T) {
	// Under first-touch, the z-direction FFT pass must be far more
	// remote-heavy than the x pass.
	mc := machine.DefaultConfig()
	nas.ClassW.MachineTweak(&mc)
	m := machine.MustNew(mc)
	f := New(m, nas.ClassW, 1, 11).(*FT)
	team := omp.MustTeam(m, m.NumCPUs())
	team.SetSerial(true)
	f.InitTouch(team)
	team.SetSerial(false)

	before := m.Stats()
	f.fftPassX(team, f.u1, f.u2, false)
	mid := m.Stats()
	f.fftPassZ(team, f.u2, false)
	after := m.Stats()

	xr := rratio(mid.RemoteMem-before.RemoteMem, mid.LocalMem-before.LocalMem)
	zr := rratio(after.RemoteMem-mid.RemoteMem, after.LocalMem-mid.LocalMem)
	if zr < xr+0.2 {
		t.Errorf("z pass remote ratio %.2f vs x pass %.2f; want a clear transpose effect", zr, xr)
	}
}

func rratio(rem, loc uint64) float64 {
	if rem+loc == 0 {
		return 0
	}
	return float64(rem) / float64(rem+loc)
}

func TestDriverEndToEnd(t *testing.T) {
	r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, KernelMig: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("FT run failed verification: %v", r.VerifyErr)
	}
}

// TestForward3DAgainstNaiveDFT cross-checks the full 3-D transform (the
// composition of the x, y and z passes) against a direct O(n^2) DFT per
// dimension on a tiny grid.
func TestForward3DAgainstNaiveDFT(t *testing.T) {
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	f := New(m, nas.ClassS, 1, 5).(*FT)
	team := omp.MustTeam(m, m.NumCPUs())

	// Run the kernel's three forward passes.
	f.fftPassX(team, f.u1, f.u2, false)
	f.fftPassY(team, f.u2, false)
	f.fftPassZ(team, f.u2, false)

	// Reference: naive DFT along each dimension of the initial field.
	nz, ny, nx := f.nz, f.ny, f.nx
	ref := make([]complex128, nz*ny*nx)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := f.cidx(z, y, x)
				ref[(z*ny+y)*nx+x] = complex(f.init[i], f.init[i+1])
			}
		}
	}
	dftDim := func(data []complex128, base, stride, n int) {
		line := make([]complex128, n)
		for i := 0; i < n; i++ {
			line[i] = data[base+i*stride]
		}
		out := naiveDFT(line, false)
		for i := 0; i < n; i++ {
			data[base+i*stride] = out[i]
		}
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			dftDim(ref, (z*ny+y)*nx, 1, nx)
		}
	}
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			dftDim(ref, z*ny*nx+x, nx, ny)
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dftDim(ref, y*nx+x, ny*nx, nz)
		}
	}
	u2 := f.u2.Data()
	for c := range ref {
		got := complex(u2[2*c], u2[2*c+1])
		if cmplx.Abs(got-ref[c]) > 1e-8 {
			t.Fatalf("cell %d: 3-D FFT %v, naive DFT %v", c, got, ref[c])
		}
	}
}

// Package ft reproduces NAS FT: 3-D fast Fourier transforms driving a
// spectral PDE integrator. Each timed iteration transforms the field to
// frequency space (x, y, then z passes of radix-2 FFTs), applies a
// unit-modulus evolution factor per mode, transforms back, and reduces a
// checksum. The x and y passes parallelise over z-planes (local under
// tuned first-touch); the z pass parallelises over y and walks lines that
// cross every thread's pages — the transpose-like all-to-all pattern that
// makes FT the most placement-hostile NAS code, and the one where the
// paper observed kernel page migration to be counter-productive
// (page-level false sharing).
//
// The evolution factors have modulus one, so the field's energy is exactly
// conserved across any number of iterations (Parseval); Verify checks it.
package ft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// FT is one problem instance.
type FT struct {
	m          *machine.Machine
	nz, ny, nx int
	iters      int
	scale      int
	alpha      float64 // evolution phase constant

	u1 *machine.Array // field, complex interleaved (2 floats per cell)
	u2 *machine.Array // spectrum / workspace

	init      []float64 // initial field copy (host)
	energy0   float64
	checksums []float64
	steps     int
}

// New builds an FT instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	nz, ny, nx, iters := 8, 8, 8, 3
	switch class {
	case nas.ClassW:
		nz, ny, nx, iters = 16, 32, 32, 6
	case nas.ClassA:
		nz, ny, nx, iters = 64, 128, 128, 6
	}
	f := &FT{m: m, nz: nz, ny: ny, nx: nx, iters: iters, scale: scale, alpha: 1e-2}
	n := nz * ny * nx
	f.u1 = m.NewArray("u1", 2*n)
	f.u2 = m.NewArray("u2", 2*n)
	f.init = make([]float64, 2*n)
	s := seed*0x9e3779b97f4a7c15 + 77
	for i := range f.init {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		f.init[i] = float64((z^(z>>31))>>11)/float64(1<<53) - 0.5
	}
	f.Reinit()
	for i := 0; i < 2*n; i += 2 {
		f.energy0 += f.init[i]*f.init[i] + f.init[i+1]*f.init[i+1]
	}
	return f
}

// Name returns "FT".
func (f *FT) Name() string { return "FT" }

// DefaultIterations returns the timestep count (the paper runs 6).
func (f *FT) DefaultIterations() int { return f.iters }

// HasPhase reports no record–replay phase (the paper applies record–replay
// to BT and SP only).
func (f *FT) HasPhase() bool { return false }

// HotPages returns the spans of both complex arrays.
func (f *FT) HotPages() [][2]uint64 {
	var out [][2]uint64
	for _, a := range []*machine.Array{f.u1, f.u2} {
		lo, hi := a.PageRange()
		out = append(out, [2]uint64{lo, hi})
	}
	return out
}

// cidx returns the interleaved index of cell (z,y,x).
func (f *FT) cidx(z, y, x int) int { return ((z*f.ny+y)*f.nx + x) * 2 }

// Reinit restores the initial field and clears the history.
func (f *FT) Reinit() {
	copy(f.u1.Data(), f.init)
	clear(f.u2.Data())
	f.checksums = f.checksums[:0]
	f.steps = 0
}

// InitTouch writes both arrays parallel over z-planes.
func (f *FT) InitTouch(t *omp.Team) {
	t.ParallelNamed("init", func(tr *omp.Thread) {
		tr.For(0, f.nz, omp.Static(), func(c *machine.CPU, from, to int) {
			for z := from; z < to; z++ {
				for y := 0; y < f.ny; y++ {
					base := f.cidx(z, y, 0)
					row := 2 * f.nx
					copy(f.u1.MutRun(c, base, row), f.init[base:base+row])
					clear(f.u2.MutRun(c, base, row))
				}
			}
		})
	})
}

// Step performs forward FFT, evolve, inverse FFT and a checksum.
func (f *FT) Step(t *omp.Team, h *nas.Hooks) {
	for s := 0; s < f.scale; s++ {
		f.steps++
		f.fftPassX(t, f.u1, f.u2, false) // u2 = FFTx(u1)
		f.fftPassY(t, f.u2, false)
		f.fftPassZ(t, f.u2, false)
		f.evolve(t)
		f.fftPassZ(t, f.u2, true)
		f.fftPassY(t, f.u2, true)
		f.fftPassX(t, f.u2, f.u1, true) // u1 = IFFTx(u2), includes 1/N scaling
		f.checksum(t)
	}
}

// fft1d runs an in-place radix-2 Cooley-Tukey transform on the host
// scratch line; the caller charges 5*n*log2(n) flops (the standard count).
func fft1d(line []complex128, inverse bool) {
	n := len(line)
	// Bit reversal.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			line[i], line[j] = line[j], line[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		w := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			wk := complex(1, 0)
			for k := 0; k < half; k++ {
				a := line[start+k]
				b := line[start+k+half] * wk
				line[start+k] = a + b
				line[start+k+half] = a - b
				wk *= w
			}
		}
	}
}

// lineFFT gathers a strided complex line from arr, transforms it, and
// scatters it back (optionally into dst), charging memory traffic for the
// gather/scatter and flops for the butterflies — the cache-blocked
// structure NAS FT uses, where each line is transformed in cache.
func (f *FT) lineFFT(c *machine.CPU, src, dst *machine.Array, base, stride, n int, inverse bool, scratch []complex128) {
	if stride == 2 {
		// Contiguous x-line: one run covers the whole gather.
		line := src.GetRun(c, base, 2*n)
		for i := 0; i < n; i++ {
			scratch[i] = complex(line[2*i], line[2*i+1])
		}
	} else {
		// Strided y/z-line: each grid point's (re,im) pair is one run.
		for i := 0; i < n; i++ {
			pair := src.GetRun(c, base+i*stride, 2)
			scratch[i] = complex(pair[0], pair[1])
		}
	}
	fft1d(scratch[:n], inverse)
	norm := 1.0
	if inverse {
		norm = 1 / float64(n)
	}
	if stride == 2 {
		out := dst.MutRun(c, base, 2*n)
		for i := 0; i < n; i++ {
			out[2*i] = real(scratch[i]) * norm
			out[2*i+1] = imag(scratch[i]) * norm
		}
	} else {
		for i := 0; i < n; i++ {
			pair := dst.MutRun(c, base+i*stride, 2)
			pair[0] = real(scratch[i]) * norm
			pair[1] = imag(scratch[i]) * norm
		}
	}
	c.Flops(5 * n * bits.TrailingZeros(uint(n)))
}

// fftPassX transforms every x-line (contiguous), parallel over z.
func (f *FT) fftPassX(t *omp.Team, src, dst *machine.Array, inverse bool) {
	t.ParallelNamed("fft_x", func(tr *omp.Thread) {
		scratch := make([]complex128, f.nx)
		tr.For(0, f.nz, omp.Static(), func(c *machine.CPU, from, to int) {
			for z := from; z < to; z++ {
				for y := 0; y < f.ny; y++ {
					f.lineFFT(c, src, dst, f.cidx(z, y, 0), 2, f.nx, inverse, scratch)
				}
			}
		})
	})
}

// fftPassY transforms every y-line (stride nx), parallel over z.
func (f *FT) fftPassY(t *omp.Team, a *machine.Array, inverse bool) {
	t.ParallelNamed("fft_y", func(tr *omp.Thread) {
		scratch := make([]complex128, f.ny)
		tr.For(0, f.nz, omp.Static(), func(c *machine.CPU, from, to int) {
			for z := from; z < to; z++ {
				for x := 0; x < f.nx; x++ {
					f.lineFFT(c, a, a, f.cidx(z, 0, x), 2*f.nx, f.ny, inverse, scratch)
				}
			}
		})
	})
}

// fftPassZ transforms every z-line (stride nx*ny): the lines cross every
// z-plane, so this pass parallelises over y and touches all threads'
// pages — FT's all-to-all.
func (f *FT) fftPassZ(t *omp.Team, a *machine.Array, inverse bool) {
	t.ParallelNamed("fft_z", func(tr *omp.Thread) {
		scratch := make([]complex128, f.nz)
		tr.For(0, f.ny, omp.Static(), func(c *machine.CPU, from, to int) {
			for y := from; y < to; y++ {
				for x := 0; x < f.nx; x++ {
					f.lineFFT(c, a, a, f.cidx(0, y, x), 2*f.nx*f.ny, f.nz, inverse, scratch)
				}
			}
		})
	})
}

// evolve multiplies each mode by exp(i*alpha*|k|^2), a unit-modulus
// rotation (energy preserving), parallel over z.
func (f *FT) evolve(t *omp.Team) {
	t.ParallelNamed("evolve", func(tr *omp.Thread) {
		tr.For(0, f.nz, omp.Static(), func(c *machine.CPU, from, to int) {
			for z := from; z < to; z++ {
				kz := freq(z, f.nz)
				for y := 0; y < f.ny; y++ {
					ky := freq(y, f.ny)
					base := f.cidx(z, y, 0)
					row := f.u2.GetRun(c, base, 2*f.nx)
					out := f.u2.MutRun(c, base, 2*f.nx)
					for x := 0; x < f.nx; x++ {
						kx := freq(x, f.nx)
						theta := f.alpha * float64(kz*kz+ky*ky+kx*kx)
						cr, ci := math.Cos(theta), math.Sin(theta)
						re, im := row[2*x], row[2*x+1]
						out[2*x] = re*cr - im*ci
						out[2*x+1] = re*ci + im*cr
					}
					c.Flops(8 * f.nx)
				}
			}
		})
	})
}

// freq maps an index to its signed frequency.
func freq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// checksum reduces the field energy and appends it to the history.
func (f *FT) checksum(t *omp.Team) {
	var total float64
	t.ParallelNamed("checksum", func(tr *omp.Thread) {
		var s float64
		tr.For(0, f.nz, omp.Static(), func(c *machine.CPU, from, to int) {
			for z := from; z < to; z++ {
				for y := 0; y < f.ny; y++ {
					row := f.u1.GetRun(c, f.cidx(z, y, 0), 2*f.nx)
					for x := 0; x < f.nx; x++ {
						re, im := row[2*x], row[2*x+1]
						s += re*re + im*im
					}
				}
			}
			c.Flops(4 * (to - from) * f.ny * f.nx)
		}, omp.Nowait)
		s = tr.ReduceSum(s)
		if tr.ID == 0 {
			total = s
		}
		tr.Barrier()
	})
	f.checksums = append(f.checksums, total)
}

// Checksums returns the per-step energy history.
func (f *FT) Checksums() []float64 { return f.checksums }

// Verify checks exact energy conservation (the evolution is unitary) and
// that the field actually changed.
func (f *FT) Verify() error {
	if len(f.checksums) == 0 {
		return fmt.Errorf("ft: no checksums recorded")
	}
	for i, cs := range f.checksums {
		if math.IsNaN(cs) || math.Abs(cs-f.energy0) > 1e-6*f.energy0 {
			return fmt.Errorf("ft: energy not conserved at step %d: %g vs %g", i+1, cs, f.energy0)
		}
	}
	var diff float64
	u := f.u1.Data()
	for i := range u {
		d := u[i] - f.init[i]
		diff += d * d
	}
	if diff == 0 {
		return fmt.Errorf("ft: field unchanged after %d steps", f.steps)
	}
	return nil
}

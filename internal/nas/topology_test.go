package nas_test

import (
	"reflect"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/vm"
)

// TestFingerprintGolden pins the fingerprint encoding byte-for-byte
// against strings captured before the topology refactor. If any of these
// change, every cache entry and store record ever written is orphaned —
// see fingerprintView's contract.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		cfg            nas.Config
		fp, prefix, lb string
	}{
		{
			nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch},
			`{Class:S Placement:ft KernelMig:false UPM:off UPMOptions:{Threshold:0 MinAccesses:0 MaxCritical:0 FreezeBounces:0 ScanCostPerPage:0} Kmig:{Threshold:0 MaxPerScan:0 ScanEvery:0 DecayEvery:0 MinScanPS:0} Threads:0 Iterations:0 ComputeScale:1 PerturbAt:0 Seed:0 Tweak:<nil> Tracer:<nil> Metrics:<nil> SkipVerify:false SteadyState:false Extrapolate:false SteadyWindow:0 TailCache:<nil>}`,
			"prefix\x00class=S placement=ft seed=0 scale=1 threads=0",
			"ft-IRIX",
		},
		{
			nas.Config{Class: nas.ClassS, Placement: vm.RoundRobin, UPM: nas.UPMDistribute, Threads: 1, Seed: 42},
			`{Class:S Placement:rr KernelMig:false UPM:upmlib UPMOptions:{Threshold:0 MinAccesses:0 MaxCritical:0 FreezeBounces:0 ScanCostPerPage:0} Kmig:{Threshold:0 MaxPerScan:0 ScanEvery:0 DecayEvery:0 MinScanPS:0} Threads:1 Iterations:0 ComputeScale:1 PerturbAt:0 Seed:42 Tweak:<nil> Tracer:<nil> Metrics:<nil> SkipVerify:false SteadyState:false Extrapolate:false SteadyWindow:0 TailCache:<nil>}`,
			"prefix\x00class=S placement=rr seed=42 scale=1 threads=1",
			"rr-upmlib",
		},
		{
			nas.Config{Class: nas.ClassW, Placement: vm.WorstCase, KernelMig: true, Iterations: 7, ComputeScale: 3},
			`{Class:W Placement:wc KernelMig:true UPM:off UPMOptions:{Threshold:0 MinAccesses:0 MaxCritical:0 FreezeBounces:0 ScanCostPerPage:0} Kmig:{Threshold:0 MaxPerScan:0 ScanEvery:0 DecayEvery:0 MinScanPS:0} Threads:0 Iterations:7 ComputeScale:3 PerturbAt:0 Seed:0 Tweak:<nil> Tracer:<nil> Metrics:<nil> SkipVerify:false SteadyState:false Extrapolate:false SteadyWindow:0 TailCache:<nil>}`,
			"prefix\x00class=W placement=wc seed=0 scale=3 threads=0",
			"wc-IRIXmig",
		},
		{
			nas.Config{Class: nas.ClassA, Placement: vm.Random, SteadyState: true, Extrapolate: true, SteadyWindow: 5},
			`{Class:A Placement:rand KernelMig:false UPM:off UPMOptions:{Threshold:0 MinAccesses:0 MaxCritical:0 FreezeBounces:0 ScanCostPerPage:0} Kmig:{Threshold:0 MaxPerScan:0 ScanEvery:0 DecayEvery:0 MinScanPS:0} Threads:0 Iterations:0 ComputeScale:1 PerturbAt:0 Seed:0 Tweak:<nil> Tracer:<nil> Metrics:<nil> SkipVerify:false SteadyState:true Extrapolate:true SteadyWindow:5 TailCache:<nil>}`,
			"prefix\x00class=A placement=rand seed=0 scale=1 threads=0",
			"rand-IRIX",
		},
	}
	for i, c := range cases {
		fp, ok := c.cfg.Fingerprint()
		if !ok {
			t.Fatalf("case %d: not memoizable", i)
		}
		if fp != c.fp {
			t.Errorf("case %d: fingerprint drifted:\n got %q\nwant %q", i, fp, c.fp)
		}
		pfp, ok := c.cfg.PrefixFingerprint()
		if !ok || pfp != c.prefix {
			t.Errorf("case %d: prefix fingerprint drifted:\n got %q\nwant %q", i, pfp, c.prefix)
		}
		if lb := c.cfg.Label(); lb != c.lb {
			t.Errorf("case %d: label drifted: got %q, want %q", i, lb, c.lb)
		}
	}
}

// TestTopoFingerprintCompatibility: a shape cube-equivalent to the
// class's default machine canonicalises away — same fingerprint, same
// prefix key, same label — so the hierarchy-expressed Origin shares every
// historical cache entry and store record. Non-equivalent shapes get a
// canonical suffix instead, under every spelling.
func TestTopoFingerprintCompatibility(t *testing.T) {
	base := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch}
	cube := base
	cube.Topo = "cube:2x2x2" // class S runs 4 nodes × 2 CPUs
	bfp, _ := base.Fingerprint()
	cfp, ok := cube.Fingerprint()
	if !ok || cfp != bfp {
		t.Errorf("cube-equivalent shape changed the fingerprint:\n%q\n%q", cfp, bfp)
	}
	bpf, _ := base.PrefixFingerprint()
	cpf, _ := cube.PrefixFingerprint()
	if cpf != bpf {
		t.Errorf("cube-equivalent shape changed the prefix fingerprint:\n%q\n%q", cpf, bpf)
	}
	if cube.Label() != base.Label() {
		t.Errorf("cube-equivalent shape changed the label: %q vs %q", cube.Label(), base.Label())
	}

	// The paper machine's shape is class-relative: origin (8 nodes) is
	// NOT the class-S machine (4 nodes), so it keys separately there...
	origin := base
	origin.Topo = "origin"
	ofp, _ := origin.Fingerprint()
	if ofp == bfp {
		t.Error("origin (8 nodes) collided with the class-S default (4 nodes)")
	}
	// ...but is exactly the class-W/A default.
	baseW := nas.Config{Class: nas.ClassW, Placement: vm.FirstTouch}
	originW := baseW
	originW.Topo = "origin"
	wfp, _ := baseW.Fingerprint()
	owfp, _ := originW.Fingerprint()
	if owfp != wfp {
		t.Errorf("origin preset did not fold into the class-W default:\n%q\n%q", owfp, wfp)
	}

	// Non-equivalent shapes carry a canonical suffix: every spelling of
	// one shape shares one key, and labels grow the @shape suffix.
	h := base
	h.Topo = "hier64"
	hfp, _ := h.Fingerprint()
	if hfp != bfp+" topo=4x2x8" {
		t.Errorf("hier64 fingerprint suffix wrong: %q", hfp)
	}
	h2 := base
	h2.Topo = "4x2x8"
	h2fp, _ := h2.Fingerprint()
	if h2fp != hfp {
		t.Errorf("preset and spec spellings of one shape diverge:\n%q\n%q", hfp, h2fp)
	}
	if h.Label() != "ft-IRIX@4x2x8" {
		t.Errorf("hier64 label = %q, want ft-IRIX@4x2x8", h.Label())
	}
	hpf, _ := h.PrefixFingerprint()
	bpfWant := bpf + " topo=4x2x8"
	if hpf != bpfWant {
		t.Errorf("hier64 prefix fingerprint = %q, want %q", hpf, bpfWant)
	}
}

// TestHierarchyBitIdentity: the Origin expressed as a cube Hierarchy
// drives the whole stack through the hierarchical code path — mixed-radix
// distance matrix, generic ByDistance, hierarchical machine assembly —
// yet every virtual-time quantity, counter and page-home outcome is
// bit-identical to the legacy hypercube run. Threads 1 pins exact
// reproducibility (full-width teams are deterministic only up to
// intra-team interleaving). cmd/sweep's TestSweepTopoBitIdentity proves
// the same at the CLI/store level; CI runs both under -race.
func TestHierarchyBitIdentity(t *testing.T) {
	engines := []nas.Config{
		{},
		{KernelMig: true},
		{UPM: nas.UPMDistribute},
	}
	for _, p := range vm.Policies {
		for _, eng := range engines {
			cfg := eng
			cfg.Class = nas.ClassS
			cfg.Placement = p
			cfg.Threads = 1
			cfg.Seed = 42

			hier := cfg
			hier.Topo = "cube:2x2x2"

			want, err := nas.Run(bt.New, cfg)
			if err != nil {
				t.Fatalf("%s hypercube: %v", cfg.Label(), err)
			}
			got, err := nas.Run(bt.New, hier)
			if err != nil {
				t.Fatalf("%s hierarchy: %v", cfg.Label(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: hierarchy-expressed Origin diverged from the hypercube run:\nhier %+v\ncube %+v",
					cfg.Label(), got, want)
			}
		}
	}
}

// TestHierarchyBitIdentityRecRep covers the record–replay protocol (CG
// has no phase, BT does) plus a second kernel's numerics.
func TestHierarchyBitIdentityRecRep(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.WorstCase, UPM: nas.UPMRecRep, Threads: 1}
	hier := cfg
	hier.Topo = "cube:2x2x2"
	want, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nas.Run(bt.New, hier)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recrep: hierarchy run diverged from hypercube run")
	}

	ccfg := nas.Config{Class: nas.ClassS, Placement: vm.RoundRobin, KernelMig: true, Threads: 1}
	chier := ccfg
	chier.Topo = "cube:2x2x2"
	cwant, err := nas.Run(cg.New, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cgot, err := nas.Run(cg.New, chier)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cgot, cwant) {
		t.Errorf("CG: hierarchy run diverged from hypercube run")
	}
}

// TestHierarchical64CPURun: a 64-CPU 4-socket machine runs a kernel end
// to end — placement still orders ft < wc, and the worst-case run's pages
// concentrate remotely, so the machine model scales past the Origin2000.
func TestHierarchical64CPURun(t *testing.T) {
	ft, err := nas.Run(cg.New, nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Topo: "hier64"})
	if err != nil {
		t.Fatal(err)
	}
	if !ft.Verified {
		t.Fatalf("hier64 ft run failed verification: %v", ft.VerifyErr)
	}
	if ft.Label != "ft-IRIX@4x2x8" {
		t.Errorf("label = %q, want ft-IRIX@4x2x8", ft.Label)
	}
	wc, err := nas.Run(cg.New, nas.Config{Class: nas.ClassS, Placement: vm.WorstCase, Topo: "hier64"})
	if err != nil {
		t.Fatal(err)
	}
	if !(ft.TotalPS < wc.TotalPS) {
		t.Errorf("hier64: ft (%d) not faster than wc (%d)", ft.TotalPS, wc.TotalPS)
	}
}

package nas_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

var update = flag.Bool("update", false, "rewrite the golden trace summaries")

const goldenPath = "testdata/bt_s_wc_upmlib.summary.json.gz"

// goldenConfig is the pinned cell: BT Class S, worst-case placement
// repaired by UPMlib, one thread for exact determinism.
func goldenConfig() nas.Config {
	return nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		UPM:       nas.UPMDistribute,
		Threads:   1,
	}
}

// TestGoldenTrace pins the full structured trace summary of one cell. The
// merged event stream of a deterministic run is deterministic (see the
// trace package contract), so any drift in event emission, merge order, or
// summarisation shows up here as a field-level diff. Regenerate with
// `go test ./internal/nas/ -run TestGoldenTrace -update` after an
// intentional change, and justify the new numbers in the commit.
func TestGoldenTrace(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := goldenConfig()
	cfg.Tracer = rec
	if _, err := nas.Run(bt.New, cfg); err != nil {
		t.Fatal(err)
	}
	got := trace.Summarize(rec.Events())

	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	want := readGolden(t, goldenPath)

	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	typ := gv.Type()
	for i := 0; i < typ.NumField(); i++ {
		g, w := gv.Field(i).Interface(), wv.Field(i).Interface()
		if !reflect.DeepEqual(g, w) {
			t.Errorf("Summary.%s drifted:\n got  %+v\n want %+v", typ.Field(i).Name, g, w)
		}
	}
	if t.Failed() {
		t.Log("if the change is intentional, regenerate with -update")
	}
}

func writeGolden(t *testing.T, path string, s trace.Summary) {
	t.Helper()
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(append(blob, '\n')); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d events, %d bytes gzipped)", path, s.Events, buf.Len())
}

func readGolden(t *testing.T, path string) trace.Summary {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var s trace.Summary
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

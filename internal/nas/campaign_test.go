package nas_test

// System tests of the period-k orbit detector and the analytic campaign
// fast-forward, on a purpose-built synthetic kernel: a tiny L1-resident
// working set (so the campaign keystone — zero misses at every level —
// genuinely holds), an optional block of dead pages whose reference
// counters are seeded to stage a decaying kernel-migration campaign, and
// an optional compute-time modulation with a chosen period to stage real
// period-k orbits. The NAS kernels cannot reach these regimes at test
// scale; the synthetic kernel pins the bit-identity contract exactly
// where the new machinery fires.

import (
	"fmt"
	"reflect"
	"testing"

	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

// synthKernel satisfies nas.Kernel. Each Step reads the hot array (512
// bytes, L1-resident after the cold start) and charges a compute-time
// modulation of period workPeriod. At the first timed step it seeds the
// dead pages' reference-counter rows from node 1, staging a migration
// campaign the engine then works through at MaxPerScan pages per scan.
type synthKernel struct {
	m          *machine.Machine
	hot, dead  *machine.Array
	workPeriod int
	steps      int
	timed      bool // set by Reinit: the prefix's cold start is over
	seeded     bool
}

// synthBuilder returns a nas.Builder for a synthetic kernel with the given
// number of dead campaign pages and compute-modulation period (0 = uniform
// compute).
func synthBuilder(deadPages, workPeriod int) nas.Builder {
	return func(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
		k := &synthKernel{m: m, workPeriod: workPeriod}
		k.hot = m.NewArray("hot", 64)
		if deadPages > 0 {
			k.dead = m.NewArray("dead", deadPages*m.PageBytes()/8)
		}
		return k
	}
}

func (k *synthKernel) Name() string           { return "SYNTH" }
func (k *synthKernel) DefaultIterations() int { return 8 }
func (k *synthKernel) HasPhase() bool         { return false }

func (k *synthKernel) HotPages() [][2]uint64 {
	lo, hi := k.hot.PageRange()
	return [][2]uint64{{lo, hi}}
}

func (k *synthKernel) InitTouch(t *omp.Team) {
	t.ParallelNamed("init", func(tr *omp.Thread) {
		tr.For(0, 1, omp.Static(), func(c *machine.CPU, from, to int) {
			for i := range k.hot.MutRun(c, 0, k.hot.Len()) {
				_ = i
			}
			if k.dead != nil {
				// Home the dead pages on the toucher's node; they are never
				// accessed again, so their rows change only by seeding.
				for base := 0; base < k.dead.Len(); base += k.m.PageBytes() / 8 {
					k.dead.MutRun(c, base, 1)
				}
			}
		})
	})
}

func (k *synthKernel) Reinit() { k.steps = 0; k.timed = true }

func (k *synthKernel) Step(t *omp.Team, h *nas.Hooks) {
	k.steps++
	if k.timed && !k.seeded && k.dead != nil {
		// Stage the campaign: every dead page looks heavily referenced from
		// node 1. Host-side seeding, not simulated accesses — the compute
		// below never misses, which is exactly the regime the analytic
		// drain requires.
		lo, hi := k.dead.PageRange()
		for vpn := lo; vpn < hi; vpn++ {
			k.m.PT.CountMissN(vpn, 1, 255)
		}
		k.seeded = true
	}
	extra := 0
	if k.workPeriod > 1 && k.steps%k.workPeriod == 0 {
		extra = 5000
	}
	t.ParallelNamed("work", func(tr *omp.Thread) {
		tr.For(0, 1, omp.Static(), func(c *machine.CPU, from, to int) {
			for pass := 0; pass < 4; pass++ {
				k.hot.GetRun(c, 0, k.hot.Len())
			}
			c.Flops(100 + extra)
		})
	})
}

func (k *synthKernel) Verify() error {
	if k.steps == 0 {
		return fmt.Errorf("synth: no steps executed")
	}
	return nil
}

// runPair runs the same cell fully simulated and with the steady-state
// machinery on, and requires the results to be bit-identical outside the
// detection metadata.
func runPair(t *testing.T, build nas.Builder, cfg nas.Config) (plain, steady nas.Result) {
	t.Helper()
	plain, err := nas.Run(build, cfg)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	scfg := cfg
	scfg.SteadyState, scfg.Extrapolate = true, true
	steady, err = nas.Run(build, scfg)
	if err != nil {
		t.Fatalf("steady: %v", err)
	}
	if !reflect.DeepEqual(plain, maskSteady(steady)) {
		t.Errorf("steady run diverges from simulated:\n plain  %+v\n steady %+v", plain, steady)
	}
	return plain, steady
}

// campaignConfig is the staged-campaign cell: kernel engine on, no decay
// and no scan spacing so every barrier scans and the seeded rows persist
// until migrated — a pure throttled drain of the dead pages.
func campaignConfig(iters int) nas.Config {
	return nas.Config{
		Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: iters, KernelMig: true,
		Kmig: kmig.Config{DecayEvery: -1, MinScanPS: -1},
	}
}

// TestCampaignFastForwardBitIdentity: the staged campaign is proven
// drainable and drained analytically — CampaignIters > 0 — and the
// drained run is bit-identical to the fully simulated one, including the
// final page-home map (every dead page migrated in both).
func TestCampaignFastForwardBitIdentity(t *testing.T) {
	const deadPages = 400 // ≈ 8 iterations of campaign at 3 scans × 16 pages
	plain, steady := runPair(t, synthBuilder(deadPages, 0), campaignConfig(16))
	if plain.KmigMoves != deadPages {
		t.Fatalf("staging failed: simulated run migrated %d of %d dead pages", plain.KmigMoves, deadPages)
	}
	if steady.CampaignIters == 0 {
		t.Fatalf("campaign never drained: %+v", steady)
	}
	if steady.CampaignAt == 0 || steady.CampaignAt+steady.CampaignIters > 16 {
		t.Errorf("implausible drain window: at %d for %d iters", steady.CampaignAt, steady.CampaignIters)
	}
	// The post-campaign regime is quiet period-1; detection restarts after
	// the drain and must still fast-forward the tail.
	if steady.SteadyAt == 0 || steady.SteadyAt <= steady.CampaignAt {
		t.Errorf("post-campaign steady state not detected: steadyAt=%d campaignAt=%d",
			steady.SteadyAt, steady.CampaignAt)
	}
}

// TestCampaignDisabledByToggle: NoCampaignFF must keep the campaign fully
// simulated — same result, no CampaignIters — so the store toggle is
// honest about what it gates.
func TestCampaignDisabledByToggle(t *testing.T) {
	cfg := campaignConfig(16)
	plain, err := nas.Run(synthBuilder(400, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.SteadyState, scfg.Extrapolate, scfg.NoCampaignFF = true, true, true
	steady, err := nas.Run(synthBuilder(400, 0), scfg)
	if err != nil {
		t.Fatal(err)
	}
	if steady.CampaignIters != 0 || steady.CampaignAt != 0 {
		t.Fatalf("NoCampaignFF run drained a campaign: %+v", steady)
	}
	if !reflect.DeepEqual(plain, maskSteady(steady)) {
		t.Errorf("NoCampaignFF run diverges from simulated:\n plain  %+v\n steady %+v", plain, steady)
	}
}

// TestSteadyPeriodKCompute: a kernel whose compute time cycles with period
// 3 settles on a genuine period-3 orbit: the detector proves it, reports
// it, and extrapolates bit-identically. Restricting the detector to
// period-one (PeriodK=1) must refuse the orbit and fall back to full
// simulation — still bit-identical.
func TestSteadyPeriodKCompute(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1, Iterations: 24}
	_, steady := runPair(t, synthBuilder(0, 3), cfg)
	if steady.SteadyAt == 0 {
		t.Fatalf("period-3 orbit never detected: %+v", steady)
	}
	if steady.SteadyPeriod != 3 {
		t.Errorf("detected period %d, want 3", steady.SteadyPeriod)
	}

	plain, err := nas.Run(synthBuilder(0, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.SteadyState, rcfg.Extrapolate, rcfg.PeriodK = true, true, 1
	restricted, err := nas.Run(synthBuilder(0, 3), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if restricted.SteadyAt != 0 {
		t.Errorf("PeriodK=1 detector claimed a period-3 orbit at %d", restricted.SteadyAt)
	}
	if !reflect.DeepEqual(plain, maskSteady(restricted)) {
		t.Errorf("restricted run diverges from simulated:\n plain %+v\n restricted %+v", plain, restricted)
	}
}

// TestSteadyPeriod9Adversary: a period-9 reference string exceeds the
// detector's cap (8): no orbit is ever proven and the run falls back to
// full simulation, bit-identically. The window must exceed the cycle's
// flat stretch (8 identical iterations between modulated ones), otherwise
// the stretch itself satisfies the period-one rule — the detector proves
// repetition over the window, and a window shorter than the hidden cycle's
// quiet run is an explicitly weaker statement.
func TestSteadyPeriod9Adversary(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 30, SteadyWindow: 9}
	_, steady := runPair(t, synthBuilder(0, 9), cfg)
	if steady.SteadyAt != 0 {
		t.Errorf("period-9 stream fired the detector at iteration %d (period %d)",
			steady.SteadyAt, steady.SteadyPeriod)
	}
	if steady.ExtrapolatedIters != 0 {
		t.Errorf("period-9 stream extrapolated %d iterations", steady.ExtrapolatedIters)
	}
}

// TestSteadyPeriod9EngineAdversary: the engine-side period-9 string. With
// three barriers per iteration and ScanEvery=27, scans land every ninth
// iteration; between scans the counter deltas are identical, so without
// the gate-phase hash the period-one rule would fire mid-cycle and
// extrapolate the engine's counters wrongly. The phase folded into the
// state hash makes every iteration of the 9-cycle distinct: the detector
// refuses at every k ≤ 8 and the run falls back to full simulation.
func TestSteadyPeriod9EngineAdversary(t *testing.T) {
	cfg := nas.Config{
		Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 30, KernelMig: true,
		Kmig: kmig.Config{ScanEvery: 27, DecayEvery: -1, MinScanPS: -1},
	}
	_, steady := runPair(t, synthBuilder(0, 0), cfg)
	if steady.SteadyAt != 0 {
		t.Errorf("engine period-9 cadence fired the detector at iteration %d (period %d)",
			steady.SteadyAt, steady.SteadyPeriod)
	}
}

// TestSteadyPeriodKEngineCadence: kmig's ScanEvery gate makes the engine
// itself the source of the orbit — with one barrier per iteration and
// ScanEvery=2, scan activity alternates and the quiesced cell settles on
// a genuine period-2 orbit.
func TestSteadyPeriodKEngineCadence(t *testing.T) {
	cfg := nas.Config{
		Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1,
		Iterations: 24, KernelMig: true,
		Kmig: kmig.Config{ScanEvery: 2, DecayEvery: -1, MinScanPS: -1},
	}
	_, steady := runPair(t, synthBuilder(0, 0), cfg)
	if steady.SteadyAt == 0 {
		t.Fatalf("engine-cadence orbit never detected: %+v", steady)
	}
	if steady.SteadyPeriod != 2 {
		t.Errorf("detected period %d, want 2 (ScanEvery=2, one barrier per iteration)", steady.SteadyPeriod)
	}
}

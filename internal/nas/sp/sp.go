// Package sp reproduces the memory behaviour of NAS SP: the scalar
// pentadiagonal ADI solver. Like BT it computes a stencil right-hand side
// and performs implicit line solves along x, y and z, but the factorised
// operators include a fourth-difference dissipation term, so each line
// solve is a pentadiagonal (5-band) system solved by scalar Gaussian
// elimination — the structural difference from BT's block-tridiagonal
// systems that NAS preserves between the two codes.
//
// The parallelisation mirrors NAS SP: compute_rhs, x_solve, y_solve and
// add parallelise over the outermost dimension k; z_solve sweeps along k
// and parallelises over j (the phase change used by record–replay).
// Verification uses a manufactured discrete steady state, exactly as in
// package bt.
package sp

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// ncomp is the number of solution components.
const ncomp = 5

// SP is one problem instance bound to a machine.
type SP struct {
	m     *machine.Machine
	n     int
	iters int
	scale int
	dt    float64
	eps   float64 // dissipation weight (lambda4 = dt*eps)
	cm    [ncomp]float64

	u, rhs, forcing *machine.Array4
	target          []float64
	res0            float64
}

// New builds an SP instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, iters := 10, 5
	switch class {
	case nas.ClassW:
		n, iters = 34, 30
	case nas.ClassA:
		n, iters = 64, 40
	}
	s := &SP{m: m, n: n, iters: iters, scale: scale, dt: 0.05, eps: 1.0}
	for c := 0; c < ncomp; c++ {
		s.cm[c] = 1 + 0.2*float64(c)
	}
	s.u = m.NewArray4("u", n, n, n, ncomp)
	s.rhs = m.NewArray4("rhs", n, n, n, ncomp)
	s.forcing = m.NewArray4("forcing", n, n, n, ncomp)
	s.buildProblem()
	s.Reinit()
	s.res0 = s.residualNorm()
	return s
}

// Name returns "SP".
func (s *SP) Name() string { return "SP" }

// DefaultIterations returns the class's step count.
func (s *SP) DefaultIterations() int { return s.iters }

// HasPhase reports that z_solve is a record–replay phase.
func (s *SP) HasPhase() bool { return true }

// HotPages returns the spans of u, rhs and forcing.
func (s *SP) HotPages() [][2]uint64 {
	out := make([][2]uint64, 0, 3)
	for _, a := range []*machine.Array4{s.u, s.rhs, s.forcing} {
		lo, hi := a.PageRange()
		out = append(out, [2]uint64{lo, hi})
	}
	return out
}

func (s *SP) idx(k, j, i, c int) int { return ((k*s.n+j)*s.n+i)*ncomp + c }

// at reads the manufactured target with zero extension outside the grid
// (the convention the dissipation stencil uses near boundaries).
func (s *SP) at(t []float64, k, j, i, c int) float64 {
	if k < 0 || j < 0 || i < 0 || k >= s.n || j >= s.n || i >= s.n {
		return 0
	}
	return t[s.idx(k, j, i, c)]
}

// spatialTarget applies the full discrete operator L = cm*Lap_h - eps*D4
// to the target field on the host; f = -L(target) makes the target the
// exact discrete steady state.
func (s *SP) buildProblem() {
	n := s.n
	h := 1.0 / float64(n-1)
	h2 := 1 / (h * h)
	g := func(k, j, i int) float64 {
		return math.Sin(math.Pi*float64(k)*h) * math.Sin(math.Pi*float64(j)*h) * math.Sin(math.Pi*float64(i)*h)
	}
	s.target = make([]float64, n*n*n*ncomp)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for c := 0; c < ncomp; c++ {
					s.target[s.idx(k, j, i, c)] = (1 + 0.2*float64(c)) * g(k, j, i)
				}
			}
		}
	}
	f := s.forcing.Data()
	t := s.target
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					lap := (s.at(t, k+1, j, i, c) + s.at(t, k-1, j, i, c) +
						s.at(t, k, j+1, i, c) + s.at(t, k, j-1, i, c) +
						s.at(t, k, j, i+1, c) + s.at(t, k, j, i-1, c) -
						6*s.at(t, k, j, i, c)) * h2
					d4 := s.d4host(t, k, j, i, c)
					f[s.idx(k, j, i, c)] = -(s.cm[c]*lap - s.eps*d4)
				}
			}
		}
	}
}

// d4host evaluates the three-direction fourth difference with zero
// extension, scaled to be O(1) (the same scaling the line solves use).
func (s *SP) d4host(t []float64, k, j, i, c int) float64 {
	d := func(m2, m1, p1, p2, c0 float64) float64 { return m2 - 4*m1 + 6*c0 - 4*p1 + p2 }
	c0 := s.at(t, k, j, i, c)
	return d(s.at(t, k-2, j, i, c), s.at(t, k-1, j, i, c), s.at(t, k+1, j, i, c), s.at(t, k+2, j, i, c), c0) +
		d(s.at(t, k, j-2, i, c), s.at(t, k, j-1, i, c), s.at(t, k, j+1, i, c), s.at(t, k, j+2, i, c), c0) +
		d(s.at(t, k, j, i-2, c), s.at(t, k, j, i-1, c), s.at(t, k, j, i+1, c), s.at(t, k, j, i+2, c), c0)
}

// Reinit zeroes u and rhs.
func (s *SP) Reinit() {
	clear(s.u.Data())
	clear(s.rhs.Data())
}

// InitTouch writes the arrays with the compute phases' k partitioning,
// one contiguous (j,i,m) row at a time through the run APIs.
func (s *SP) InitTouch(t *omp.Team) {
	n := s.n
	f := s.forcing.Data()
	rowLen := n * ncomp
	t.ParallelNamed("init", func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			lo, hi := from, to
			if lo == 1 {
				lo = 0
			}
			if hi == n-1 {
				hi = n
			}
			for k := lo; k < hi; k++ {
				for j := 0; j < n; j++ {
					base := s.u.Row(k, j)
					clear(s.u.MutRun(c, base, rowLen))
					clear(s.rhs.MutRun(c, base, rowLen))
					copy(s.forcing.MutRun(c, base, rowLen), f[base:base+rowLen])
				}
			}
		})
	})
}

// Step advances one timestep.
func (s *SP) Step(t *omp.Team, h *nas.Hooks) {
	for r := 0; r < s.scale; r++ {
		s.computeRHS(t)
	}
	for r := 0; r < s.scale; r++ {
		s.solveDir(t, 0) // x
	}
	for r := 0; r < s.scale; r++ {
		s.solveDir(t, 1) // y
	}
	h.PhaseEnter(t.Master())
	for r := 0; r < s.scale; r++ {
		s.solveDir(t, 2) // z: the phase change
	}
	h.PhaseExit(t.Master())
	for r := 0; r < s.scale; r++ {
		s.add(t)
	}
}

// computeRHS sets rhs = dt*(cm*Lap_h(u) - eps*D4(u) + f): a 13-point
// stencil, parallel over k. Each interior (k,j) row of (n-2)*ncomp
// elements is processed as one set of bulk runs carrying exactly the
// per-element reference counts of the scalar stencil: the +-1 neighbour
// rows are read twice (once by the Laplacian, once by the fourth
// difference), the +-2 rows once when in bounds — gated whole rows in k
// and j, shortened runs for the i-direction shifts — and the centre row
// once.
func (s *SP) computeRHS(t *omp.Team) {
	n := s.n
	h2 := float64(n-1) * float64(n-1)
	L := (n - 2) * ncomp
	u := s.u.Data()
	at := func(k, j, i, m int) float64 {
		if k < 0 || j < 0 || i < 0 || k >= n || j >= n || i >= n {
			return 0
		}
		return u[s.idx(k, j, i, m)]
	}
	t.ParallelNamed("compute_rhs", func(tr *omp.Thread) {
		buf := make([]float64, L)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := s.idx(k, j, 1, 0)
					s.u.GetRun(c, base, L) // centre
					for _, kk := range []int{k - 1, k + 1} {
						s.u.GetRun(c, s.idx(kk, j, 1, 0), L) // Laplacian
						s.u.GetRun(c, s.idx(kk, j, 1, 0), L) // dissipation
					}
					for _, jj := range []int{j - 1, j + 1} {
						s.u.GetRun(c, s.idx(k, jj, 1, 0), L)
						s.u.GetRun(c, s.idx(k, jj, 1, 0), L)
					}
					s.u.GetRun(c, s.idx(k, j, 0, 0), L) // i-1 shift
					s.u.GetRun(c, s.idx(k, j, 0, 0), L)
					s.u.GetRun(c, s.idx(k, j, 2, 0), L) // i+1 shift
					s.u.GetRun(c, s.idx(k, j, 2, 0), L)
					if k-2 >= 0 {
						s.u.GetRun(c, s.idx(k-2, j, 1, 0), L)
					}
					if k+2 < n {
						s.u.GetRun(c, s.idx(k+2, j, 1, 0), L)
					}
					if j-2 >= 0 {
						s.u.GetRun(c, s.idx(k, j-2, 1, 0), L)
					}
					if j+2 < n {
						s.u.GetRun(c, s.idx(k, j+2, 1, 0), L)
					}
					// Elements with i>=2 read i-2, those with i<=n-3 read
					// i+2: two runs shorter by one grid point each.
					s.u.GetRun(c, s.idx(k, j, 0, 0), L-ncomp)
					s.u.GetRun(c, s.idx(k, j, 3, 0), L-ncomp)
					frc := s.forcing.GetRun(c, base, L)
					for i := 1; i < n-1; i++ {
						for m := 0; m < ncomp; m++ {
							c0 := at(k, j, i, m)
							lap := (at(k+1, j, i, m) + at(k-1, j, i, m) +
								at(k, j+1, i, m) + at(k, j-1, i, m) +
								at(k, j, i+1, m) + at(k, j, i-1, m) - 6*c0) * h2
							d4 := (at(k-2, j, i, m) - 4*at(k-1, j, i, m) + 6*c0 - 4*at(k+1, j, i, m) + at(k+2, j, i, m)) +
								(at(k, j-2, i, m) - 4*at(k, j-1, i, m) + 6*c0 - 4*at(k, j+1, i, m) + at(k, j+2, i, m)) +
								(at(k, j, i-2, m) - 4*at(k, j, i-1, m) + 6*c0 - 4*at(k, j, i+1, m) + at(k, j, i+2, m))
							p := (i-1)*ncomp + m
							buf[p] = s.dt * (s.cm[m]*lap - s.eps*d4 + frc[p])
						}
					}
					s.rhs.SetRun(c, base, buf)
					c.Flops(L * 30)
				}
			}
		})
	})
}

// solveLines runs the pentadiagonal elimination of one (outer,inner)
// grid line for all ncomp components at once, in place in rhs. The
// components of one grid point are contiguous, so every access becomes
// an ncomp-element run at base + p*stride; the per-point reference
// counts (one read per point in the forward sweep, one write in the
// back substitution) match the scalar solver exactly. Bands are
// constant per component: (e2, e1, d0, e1, e2) with zero Dirichlet
// extension beyond both ends.
func (s *SP) solveLines(c *machine.CPU, lam2 *[ncomp]float64, lam4 float64, length int, alpha, dd, ff []float64, base, stride int) {
	var e2, e1, d0 [ncomp]float64
	for m := 0; m < ncomp; m++ {
		e2[m] = lam4
		e1[m] = -lam2[m] - 4*lam4
		d0[m] = 1 + 2*lam2[m] + 6*lam4
	}
	// Forward elimination.
	row := s.rhs.GetRun(c, base, ncomp)
	for m := 0; m < ncomp; m++ {
		alpha[m] = d0[m]
		dd[m] = e1[m]
		ff[m] = row[m]
	}
	if length > 1 {
		row = s.rhs.GetRun(c, base+stride, ncomp)
		for m := 0; m < ncomp; m++ {
			m1 := e1[m] / alpha[m]
			alpha[ncomp+m] = d0[m] - m1*dd[m]
			dd[ncomp+m] = e1[m] - m1*e2[m]
			ff[ncomp+m] = row[m] - m1*ff[m]
		}
	}
	for p := 2; p < length; p++ {
		row = s.rhs.GetRun(c, base+p*stride, ncomp)
		for m := 0; m < ncomp; m++ {
			m2 := e2[m] / alpha[(p-2)*ncomp+m]
			b1 := e1[m] - m2*dd[(p-2)*ncomp+m]
			cc := d0[m] - m2*e2[m]
			fp := row[m] - m2*ff[(p-2)*ncomp+m]
			m1 := b1 / alpha[(p-1)*ncomp+m]
			alpha[p*ncomp+m] = cc - m1*dd[(p-1)*ncomp+m]
			dd[p*ncomp+m] = e1[m] - m1*e2[m]
			ff[p*ncomp+m] = fp - m1*ff[(p-1)*ncomp+m]
		}
	}
	// Back substitution.
	var xp1, xp2 [ncomp]float64
	for p := length - 1; p >= 0; p-- {
		w := s.rhs.MutRun(c, base+p*stride, ncomp)
		for m := 0; m < ncomp; m++ {
			x := (ff[p*ncomp+m] - dd[p*ncomp+m]*xp1[m] - e2[m]*xp2[m]) / alpha[p*ncomp+m]
			w[m] = x
			xp2[m], xp1[m] = xp1[m], x
		}
	}
	c.Flops(length * ncomp * 14)
}

// solveDir factors one direction: dir 0 = x (lines along i, parallel over
// k), 1 = y (lines along j, parallel over k), 2 = z (lines along k,
// parallel over j — the phase change).
func (s *SP) solveDir(t *omp.Team, dir int) {
	n := s.n
	h2 := float64(n-1) * float64(n-1)
	var lam2 [ncomp]float64
	for m := 0; m < ncomp; m++ {
		lam2[m] = s.dt * s.cm[m] * h2
	}
	lam4 := s.dt * s.eps
	t.ParallelNamed([...]string{"x_solve", "y_solve", "z_solve"}[dir], func(tr *omp.Thread) {
		alpha := make([]float64, n*ncomp)
		dd := make([]float64, n*ncomp)
		ff := make([]float64, n*ncomp)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for outer := from; outer < to; outer++ {
				for inner := 1; inner < n-1; inner++ {
					var base, stride int
					switch dir {
					case 0:
						base, stride = s.rhs.Vec(outer, inner, 1), ncomp
					case 1:
						base, stride = s.rhs.Vec(outer, 1, inner), n*ncomp
					default:
						base, stride = s.rhs.Vec(1, outer, inner), n*n*ncomp
					}
					s.solveLines(c, &lam2, lam4, n-2, alpha, dd, ff, base, stride)
				}
			}
		})
	})
}

// add accumulates u += rhs, parallel over k, one interior row per run.
func (s *SP) add(t *omp.Team) {
	n := s.n
	L := (n - 2) * ncomp
	t.ParallelNamed("add", func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := s.idx(k, j, 1, 0)
					r := s.rhs.GetRun(c, base, L)
					w := s.u.MutRun(c, base, L)
					for p, v := range r {
						w[p] += v
					}
					c.Flops(L)
				}
			}
		})
	})
}

// residualNorm evaluates ||cm*Lap_h(u) - eps*D4(u) + f|| on the host.
func (s *SP) residualNorm() float64 {
	n := s.n
	h2 := float64(n-1) * float64(n-1)
	u := s.u.Data()
	f := s.forcing.Data()
	var sum float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					lap := (s.at(u, k+1, j, i, c) + s.at(u, k-1, j, i, c) +
						s.at(u, k, j+1, i, c) + s.at(u, k, j-1, i, c) +
						s.at(u, k, j, i+1, c) + s.at(u, k, j, i-1, c) -
						6*s.at(u, k, j, i, c)) * h2
					r := s.cm[c]*lap - s.eps*s.d4host(u, k, j, i, c) + f[s.idx(k, j, i, c)]
					sum += r * r
				}
			}
		}
	}
	return math.Sqrt(sum)
}

// errorNorm returns the L2 distance from the manufactured solution.
func (s *SP) errorNorm() float64 {
	var sum float64
	for i, v := range s.u.Data() {
		d := v - s.target[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Verify checks convergence toward the manufactured steady state.
func (s *SP) Verify() error {
	res := s.residualNorm()
	if res >= 0.5*s.res0 || math.IsNaN(res) {
		return fmt.Errorf("sp: residual %g did not decrease from %g", res, s.res0)
	}
	return nil
}

// ResidualNorm exposes the residual for tests.
func (s *SP) ResidualNorm() float64 { return s.residualNorm() }

// ErrorNorm exposes the error for tests.
func (s *SP) ErrorNorm() float64 { return s.errorNorm() }

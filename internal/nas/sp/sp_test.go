package sp

import (
	"math"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkSP(t *testing.T) (*machine.Machine, *SP, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	s := New(m, nas.ClassS, 1, 0).(*SP)
	return m, s, omp.MustTeam(m, m.NumCPUs())
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	_, s, team := mkSP(t)
	prev := s.ResidualNorm()
	if prev == 0 {
		t.Fatal("initial residual is zero")
	}
	for i := 0; i < 5; i++ {
		s.Step(team, nil)
		res := s.ResidualNorm()
		if math.IsNaN(res) || res >= prev {
			t.Fatalf("step %d: residual %g did not decrease from %g", i+1, res, prev)
		}
		prev = res
	}
}

func TestConvergesToManufacturedSolution(t *testing.T) {
	_, s, team := mkSP(t)
	e0 := s.ErrorNorm()
	for i := 0; i < 12; i++ {
		s.Step(team, nil)
	}
	if e := s.ErrorNorm(); e >= 0.2*e0 {
		t.Errorf("error %g after 12 steps, want < 20%% of initial %g", e, e0)
	}
	if err := s.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestPentaSolverAgainstDenseReference(t *testing.T) {
	// Solve one pentadiagonal system and verify A*x = f by direct
	// multiplication with the band stencil.
	_, s, _ := mkSP(t)
	m := s.m
	c := m.CPU(0)
	const L = 7
	lam4 := 0.11
	var lam2 [ncomp]float64
	for mm := range lam2 {
		lam2[mm] = 1.3
	}
	f := []float64{1, -2, 3, 0.5, -1.5, 2.5, 0.25}
	// The vectorised solver works on ncomp-component vectors at
	// base+p*stride; load the same scalar system into every component of
	// rhs offsets 0..L*ncomp-1 and read component 0 back.
	rhs := s.rhs
	for p, v := range f {
		for mm := 0; mm < ncomp; mm++ {
			rhs.Set(c, p*ncomp+mm, v)
		}
	}
	alpha := make([]float64, L*ncomp)
	dd := make([]float64, L*ncomp)
	ff := make([]float64, L*ncomp)
	s.solveLines(c, &lam2, lam4, L, alpha, dd, ff, 0, ncomp)
	x := make([]float64, L)
	for i := 0; i < L; i++ {
		x[i] = rhs.Data()[i*ncomp]
	}
	e2 := lam4
	e1 := -lam2[0] - 4*lam4
	d0 := 1 + 2*lam2[0] + 6*lam4
	get := func(i int) float64 {
		if i < 0 || i >= L {
			return 0
		}
		return x[i]
	}
	for i := 0; i < L; i++ {
		ax := e2*get(i-2) + e1*get(i-1) + d0*get(i) + e1*get(i+1) + e2*get(i+2)
		if math.Abs(ax-f[i]) > 1e-10 {
			t.Errorf("row %d: A*x = %g, want %g", i, ax, f[i])
		}
	}
}

func TestResultsIndependentOfPlacement(t *testing.T) {
	run := func(p vm.Policy) float64 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		s := New(m, nas.ClassS, 1, 0).(*SP)
		team := omp.MustTeam(m, m.NumCPUs())
		for i := 0; i < 3; i++ {
			s.Step(team, nil)
		}
		return s.ResidualNorm()
	}
	if ft, wc := run(vm.FirstTouch), run(vm.WorstCase); ft != wc {
		t.Errorf("residual depends on placement: %g vs %g", ft, wc)
	}
}

func TestPhaseHooksAndHotPages(t *testing.T) {
	_, s, team := mkSP(t)
	if !s.HasPhase() {
		t.Error("SP must expose its z_solve phase")
	}
	if len(s.HotPages()) != 3 {
		t.Errorf("HotPages = %d ranges, want 3", len(s.HotPages()))
	}
	entered := 0
	h := &nas.Hooks{BeforePhase: func(c *machine.CPU) { entered++ }}
	s.Step(team, h)
	if entered != 1 {
		t.Errorf("phase entered %d times, want 1", entered)
	}
}

func TestReinit(t *testing.T) {
	_, s, team := mkSP(t)
	s.Step(team, nil)
	s.Reinit()
	for i, v := range s.u.Data() {
		if v != 0 {
			t.Fatalf("u[%d] = %g after Reinit", i, v)
		}
	}
}

func TestDriverEndToEnd(t *testing.T) {
	r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, UPM: nas.UPMRecRep})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("SP recrep run failed verification: %v", r.VerifyErr)
	}
	if r.Kernel != "SP" {
		t.Errorf("kernel = %q", r.Kernel)
	}
}

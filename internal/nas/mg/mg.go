// Package mg reproduces NAS MG: a V-cycle multigrid solver for the 3-D
// Poisson equation. Each timed iteration evaluates the fine-grid residual
// and applies one V-cycle (restrict residuals down the grid hierarchy,
// smooth on the coarsest grid, prolongate corrections back up with
// post-smoothing). Every level's loops parallelise over the outermost
// dimension; coarse grids have fewer planes than threads, the load
// imbalance that makes MG's memory behaviour interesting on ccNUMA.
//
// The smoother is damped Jacobi and the transfer operators are full
// weighting / trilinear interpolation on vertex-centred grids of size
// 2^k+1, so a V-cycle contracts the residual by a grid-independent
// factor, which Verify checks.
package mg

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// level is one grid of the hierarchy. r holds the level's right-hand side
// (the restricted residual on coarse grids); w is smoother scratch — the
// NAS code also smooths through an explicit residual array, because an
// in-place Jacobi sweep that reads neighbours while other threads write
// them is a data race.
type level struct {
	n       int // points per dimension (2^k + 1)
	u, r, w *machine.Array3
}

// MG is one problem instance.
type MG struct {
	m      *machine.Machine
	iters  int
	scale  int
	levels []level // levels[0] is the finest
	v      *machine.Array3
	res0   float64
}

// New builds an MG instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, iters := 17, 4
	switch class {
	case nas.ClassW:
		n, iters = 33, 4
	case nas.ClassA:
		n, iters = 129, 4
	}
	g := &MG{m: m, iters: iters, scale: scale}
	for sz := n; sz >= 5; sz = sz/2 + 1 {
		g.levels = append(g.levels, level{
			n: sz,
			u: m.NewArray3(fmt.Sprintf("u%d", sz), sz, sz, sz),
			r: m.NewArray3(fmt.Sprintf("r%d", sz), sz, sz, sz),
			w: m.NewArray3(fmt.Sprintf("w%d", sz), sz, sz, sz),
		})
	}
	g.v = m.NewArray3("v", n, n, n)
	g.buildRHS(seed)
	g.Reinit()
	g.res0 = g.residualNorm()
	return g
}

// Name returns "MG".
func (g *MG) Name() string { return "MG" }

// DefaultIterations returns the V-cycle count (the paper times 4).
func (g *MG) DefaultIterations() int { return g.iters }

// HasPhase reports no record–replay phase.
func (g *MG) HasPhase() bool { return false }

// HotPages returns the spans of every level's arrays plus the right-hand
// side.
func (g *MG) HotPages() [][2]uint64 {
	var out [][2]uint64
	for _, l := range g.levels {
		for _, a := range []*machine.Array3{l.u, l.r, l.w} {
			lo, hi := a.PageRange()
			out = append(out, [2]uint64{lo, hi})
		}
	}
	lo, hi := g.v.PageRange()
	out = append(out, [2]uint64{lo, hi})
	return out
}

// buildRHS fills v with a zero-mean pattern of point charges, NAS-style:
// +1 at some pseudo-random interior points and -1 at others.
func (g *MG) buildRHS(seed uint64) {
	n := g.levels[0].n
	v := g.v.Data()
	s := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for c := 0; c < 2*(n-2); c++ {
		k := 1 + int(next()%uint64(n-2))
		j := 1 + int(next()%uint64(n-2))
		i := 1 + int(next()%uint64(n-2))
		if c%2 == 0 {
			v[g.levels[0].u.Idx(k, j, i)] = 1
		} else {
			v[g.levels[0].u.Idx(k, j, i)] = -1
		}
	}
}

// Reinit zeroes the solution and work arrays.
func (g *MG) Reinit() {
	for _, l := range g.levels {
		clear(l.u.Data())
		clear(l.r.Data())
		clear(l.w.Data())
	}
}

// InitTouch writes every level's arrays with the compute partitioning,
// one contiguous (j-)row at a time.
func (g *MG) InitTouch(t *omp.Team) {
	vd := g.v.Data()
	t.ParallelNamed("init", func(tr *omp.Thread) {
		for li, l := range g.levels {
			n := l.n
			tr.For(0, n, omp.Static(), func(c *machine.CPU, from, to int) {
				for k := from; k < to; k++ {
					for j := 0; j < n; j++ {
						base := l.u.Row(k, j)
						clear(l.u.MutRun(c, base, n))
						clear(l.r.MutRun(c, base, n))
						clear(l.w.MutRun(c, base, n))
						if li == 0 {
							copy(g.v.MutRun(c, base, n), vd[base:base+n])
						}
					}
				}
			})
		}
	})
}

// Step runs one V-cycle: r = v - A u on the finest grid, descend, correct.
func (g *MG) Step(t *omp.Team, h *nas.Hooks) {
	for s := 0; s < g.scale; s++ {
		g.residual(t, 0)
		g.vcycle(t)
	}
}

// vcycle performs the standard V-cycle on the residual hierarchy,
// accumulating the correction into the finest u.
func (g *MG) vcycle(t *omp.Team) {
	last := len(g.levels) - 1
	// Downstroke: restrict residuals; coarse u starts at zero.
	for l := 0; l < last; l++ {
		g.restrict(t, l)
		g.zero(t, l+1)
	}
	// Coarsest: a few smoothing sweeps stand in for a direct solve.
	for s := 0; s < 8; s++ {
		g.smooth(t, last)
	}
	// Upstroke: prolongate and post-smooth.
	for l := last - 1; l >= 0; l-- {
		g.prolongate(t, l)
		g.smooth(t, l)
	}
	// The finest-level smoother above already folded the correction into
	// levels[0].u via the residual equation.
}

// applyStencilRow charges the seven contiguous u runs of one interior
// (k,j) row of the 7-point Laplacian — centre, k+-1, j+-1 rows of L
// elements plus the two i-shift windows — and evaluates f - A u into
// buf, where fr is the row's right-hand side window. It carries exactly
// the per-element reference counts of the scalar stencil.
func applyStencilRow(c *machine.CPU, u *machine.Array3, k, j int, h2 float64, fr, buf []float64) {
	n := u.N3
	L := n - 2
	ce := u.GetRun(c, u.Idx(k, j, 1), L)
	up := u.GetRun(c, u.Idx(k+1, j, 1), L)
	dn := u.GetRun(c, u.Idx(k-1, j, 1), L)
	no := u.GetRun(c, u.Idx(k, j+1, 1), L)
	so := u.GetRun(c, u.Idx(k, j-1, 1), L)
	ea := u.GetRun(c, u.Idx(k, j, 2), L)
	we := u.GetRun(c, u.Idx(k, j, 0), L)
	for p := 0; p < L; p++ {
		au := (6*ce[p] - up[p] - dn[p] - no[p] - so[p] - ea[p] - we[p]) * h2
		buf[p] = fr[p] - au
	}
	c.Flops(10 * L)
}

// residual computes r_l = f_l - A u_l where f is v on the finest level and
// the restricted residual on coarser ones. Parallel over k, one interior
// row per set of runs.
func (g *MG) residual(t *omp.Team, l int) {
	lv := g.levels[l]
	n := lv.n
	h2 := float64(n-1) * float64(n-1)
	L := n - 2
	t.ParallelNamed("residual", func(tr *omp.Thread) {
		buf := make([]float64, L)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := lv.r.Idx(k, j, 1)
					var fr []float64
					if l == 0 {
						fr = g.v.GetRun(c, base, L)
					} else {
						fr = lv.r.GetRun(c, base, L)
					}
					applyStencilRow(c, lv.u, k, j, h2, fr, buf)
					lv.r.SetRun(c, base, buf)
				}
			}
		})
	})
}

// smooth applies one damped-Jacobi sweep on level l against the level's
// right-hand side: v on the finest grid, the restricted residual
// elsewhere (NAS's psinv). It runs as two barrier-separated passes —
// residual into the scratch array, then the pointwise correction — so no
// thread reads a u value another thread is writing.
func (g *MG) smooth(t *omp.Team, l int) {
	lv := g.levels[l]
	n := lv.n
	h2 := float64(n-1) * float64(n-1)
	omega := 2.0 / 3.0
	L := n - 2
	t.ParallelNamed("smooth", func(tr *omp.Thread) {
		buf := make([]float64, L)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := lv.w.Idx(k, j, 1)
					var fr []float64
					if l == 0 {
						fr = g.v.GetRun(c, base, L)
					} else {
						fr = lv.r.GetRun(c, base, L)
					}
					applyStencilRow(c, lv.u, k, j, h2, fr, buf)
					lv.w.SetRun(c, base, buf)
				}
			}
		})
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := lv.u.Idx(k, j, 1)
					wr := lv.w.GetRun(c, base, L)
					uw := lv.u.MutRun(c, base, L)
					for p, wv := range wr {
						uw[p] += omega * wv / (6 * h2)
					}
					c.Flops(3 * L)
				}
			}
		})
	})
}

// restrict computes the level-(l+1) right-hand side by full weighting of
// the level-l residual (rprj3). It refreshes r_l first.
func (g *MG) restrict(t *omp.Team, l int) {
	g.residual(t, l)
	fine := g.levels[l]
	coarse := g.levels[l+1]
	nc := coarse.n
	Lc := nc - 2
	fr := fine.r.Data()
	t.ParallelNamed("restrict", func(tr *omp.Thread) {
		buf := make([]float64, Lc)
		tr.For(1, nc-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				fk := 2 * k
				for j := 1; j < nc-1; j++ {
					fj := 2 * j
					// The fine points feeding this coarse row sit at
					// columns 2i+di, i = 1..nc-2: 27 stride-two runs of
					// Lc elements, one per (dk,dj,di) leg of the full
					// weighting — exactly one read per leg per point, as
					// in the scalar gather.
					for dk := -1; dk <= 1; dk++ {
						for dj := -1; dj <= 1; dj++ {
							for di := -1; di <= 1; di++ {
								c.LoadRun(fine.r.Addr(fine.r.Idx(fk+dk, fj+dj, 2+di)), Lc, 16)
							}
						}
					}
					for i := 1; i < nc-1; i++ {
						fi := 2 * i
						var s float64
						for dk := -1; dk <= 1; dk++ {
							for dj := -1; dj <= 1; dj++ {
								for di := -1; di <= 1; di++ {
									w := 0.125 * weight1(dk) * weight1(dj) * weight1(di)
									s += w * fr[fine.r.Idx(fk+dk, fj+dj, fi+di)]
								}
							}
						}
						buf[i-1] = s
					}
					coarse.r.SetRun(c, coarse.r.Idx(k, j, 1), buf)
					c.Flops(40 * Lc)
				}
			}
		})
	})
}

func weight1(d int) float64 {
	if d == 0 {
		return 1
	}
	return 0.5
}

// prolongate adds the trilinear interpolation of the level-(l+1)
// correction into the level-l solution (interp). For one fine row (k,j)
// the coarse reads decompose into contiguous runs: even fine columns
// read coarse i0 = 1..(n-3)/2 once per contributing (dk,dj) plane, odd
// columns read i0 and i0+1 for i0 = 0..(n-3)/2 — so each plane charges
// one run of evens and two overlapping runs of odds, reproducing the
// scalar gather's per-element counts.
func (g *MG) prolongate(t *omp.Team, l int) {
	fine := g.levels[l]
	coarse := g.levels[l+1]
	n := fine.n
	L := n - 2
	nEven := (n - 3) / 2 // fine i = 2,4..n-3
	nOdd := (n - 1) / 2  // fine i = 1,3..n-2
	cu := coarse.u.Data()
	t.ParallelNamed("prolongate", func(tr *omp.Thread) {
		buf := make([]float64, L)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				k0, kf := k/2, float64(k%2)/2
				for j := 1; j < n-1; j++ {
					j0, jf := j/2, float64(j%2)/2
					for dk := 0; dk <= 1; dk++ {
						if dk == 1 && kf == 0 {
							continue
						}
						for dj := 0; dj <= 1; dj++ {
							if dj == 1 && jf == 0 {
								continue
							}
							rowBase := coarse.u.Idx(k0+dk, j0+dj, 0)
							coarse.u.GetRun(c, rowBase+1, nEven)
							coarse.u.GetRun(c, rowBase, nOdd)
							coarse.u.GetRun(c, rowBase+1, nOdd)
						}
					}
					for i := 1; i < n-1; i++ {
						buf[i-1] = trilerp(cu, coarse, k, j, i)
					}
					base := fine.u.Idx(k, j, 1)
					uw := fine.u.MutRun(c, base, L)
					for p, v := range buf {
						uw[p] += v
					}
					c.Flops(14 * L)
				}
			}
		})
	})
}

// trilerp evaluates the coarse-grid correction at fine point (k,j,i)
// from the coarse level's raw storage (charging is done by the caller's
// runs).
func trilerp(cu []float64, coarse level, k, j, i int) float64 {
	k0, kf := k/2, float64(k%2)/2
	j0, jf := j/2, float64(j%2)/2
	i0, if_ := i/2, float64(i%2)/2
	var s float64
	for dk := 0; dk <= 1; dk++ {
		wk := 1 - kf
		if dk == 1 {
			wk = kf
		}
		if wk == 0 {
			continue
		}
		for dj := 0; dj <= 1; dj++ {
			wj := 1 - jf
			if dj == 1 {
				wj = jf
			}
			if wj == 0 {
				continue
			}
			for di := 0; di <= 1; di++ {
				wi := 1 - if_
				if di == 1 {
					wi = if_
				}
				if wi == 0 {
					continue
				}
				s += wk * wj * wi * cu[coarse.u.Idx(k0+dk, j0+dj, i0+di)]
			}
		}
	}
	return s
}

// zero clears level l's solution (coarse corrections start at zero).
func (g *MG) zero(t *omp.Team, l int) {
	lv := g.levels[l]
	n := lv.n
	t.ParallelNamed("zero", func(tr *omp.Thread) {
		tr.For(0, n, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 0; j < n; j++ {
					clear(lv.u.MutRun(c, lv.u.Row(k, j), n))
				}
			}
		})
	})
}

// residualNorm evaluates ||v - A u|| on the finest grid, host-side.
func (g *MG) residualNorm() float64 {
	lv := g.levels[0]
	n := lv.n
	h2 := float64(n-1) * float64(n-1)
	u := lv.u.Data()
	v := g.v.Data()
	idx := lv.u.Idx
	var s float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				au := (6*u[idx(k, j, i)] -
					u[idx(k+1, j, i)] - u[idx(k-1, j, i)] -
					u[idx(k, j+1, i)] - u[idx(k, j-1, i)] -
					u[idx(k, j, i+1)] - u[idx(k, j, i-1)]) * h2
				d := v[idx(k, j, i)] - au
				s += d * d
			}
		}
	}
	return math.Sqrt(s)
}

// ResidualNorm exposes the residual for tests.
func (g *MG) ResidualNorm() float64 { return g.residualNorm() }

// Verify checks that the V-cycles contracted the residual.
func (g *MG) Verify() error {
	res := g.residualNorm()
	if math.IsNaN(res) || res >= 0.5*g.res0 {
		return fmt.Errorf("mg: residual %g did not contract from %g", res, g.res0)
	}
	return nil
}

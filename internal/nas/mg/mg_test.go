package mg

import (
	"math"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkMG(t *testing.T) (*machine.Machine, *MG, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	g := New(m, nas.ClassS, 1, 3).(*MG)
	return m, g, omp.MustTeam(m, m.NumCPUs())
}

func TestHierarchyShape(t *testing.T) {
	_, g, _ := mkMG(t)
	// 17 -> 9 -> 5.
	want := []int{17, 9, 5}
	if len(g.levels) != len(want) {
		t.Fatalf("levels = %d, want %d", len(g.levels), len(want))
	}
	for i, n := range want {
		if g.levels[i].n != n {
			t.Errorf("level %d size %d, want %d", i, g.levels[i].n, n)
		}
	}
}

func TestVCycleContractsResidual(t *testing.T) {
	_, g, team := mkMG(t)
	prev := g.ResidualNorm()
	if prev == 0 {
		t.Fatal("zero initial residual")
	}
	for cyc := 0; cyc < 4; cyc++ {
		g.Step(team, nil)
		res := g.ResidualNorm()
		if math.IsNaN(res) || res >= prev {
			t.Fatalf("cycle %d: residual %g did not contract from %g", cyc+1, res, prev)
		}
		if res > 0.8*prev {
			t.Errorf("cycle %d: weak contraction %g -> %g", cyc+1, prev, res)
		}
		prev = res
	}
	if err := g.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRHSIsZeroMeanAndNonTrivial(t *testing.T) {
	_, g, _ := mkMG(t)
	var sum, asum float64
	for _, v := range g.v.Data() {
		sum += v
		asum += math.Abs(v)
	}
	if asum == 0 {
		t.Fatal("rhs is identically zero")
	}
	if math.Abs(sum) > 1e-9 {
		// +1/-1 charges come in equal numbers unless collisions
		// overwrote some; allow a small imbalance only.
		if math.Abs(sum) > 4 {
			t.Errorf("rhs sum %g, want near zero", sum)
		}
	}
}

func TestResultsIndependentOfPlacement(t *testing.T) {
	run := func(p vm.Policy) float64 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		g := New(m, nas.ClassS, 1, 3).(*MG)
		team := omp.MustTeam(m, m.NumCPUs())
		g.Step(team, nil)
		return g.ResidualNorm()
	}
	if a, b := run(vm.FirstTouch), run(vm.WorstCase); a != b {
		t.Errorf("residual depends on placement: %g vs %g", a, b)
	}
}

func TestHotPagesCoverAllLevels(t *testing.T) {
	_, g, _ := mkMG(t)
	want := 3*len(g.levels) + 1
	if got := len(g.HotPages()); got != want {
		t.Errorf("HotPages = %d ranges, want %d", got, want)
	}
}

func TestReinitClearsAllLevels(t *testing.T) {
	_, g, team := mkMG(t)
	g.Step(team, nil)
	g.Reinit()
	for li, l := range g.levels {
		for i, v := range l.u.Data() {
			if v != 0 {
				t.Fatalf("level %d u[%d] = %g after Reinit", li, i, v)
			}
		}
	}
}

func TestDriverEndToEnd(t *testing.T) {
	r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: vm.Random, UPM: nas.UPMDistribute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("MG run failed verification: %v", r.VerifyErr)
	}
	if r.Kernel != "MG" {
		t.Errorf("kernel = %q", r.Kernel)
	}
}

// Package lu is an extension benchmark beyond the paper's five codes: a
// reproduction of NAS LU's memory behaviour — an SSOR (symmetric
// successive over-relaxation) solver whose lower- and upper-triangular
// sweeps carry loop dependences in all three grid directions. The NAS
// OpenMP code parallelises the sweeps with software pipelining: threads
// own j-bands and hand k-planes down (forward sweep) or up (backward
// sweep) the thread chain with point-to-point post/wait flags instead of
// barriers. That wavefront pattern — fine-grained producer/consumer
// locality between *neighbouring* threads — is qualitatively different
// from the fork/join codes the paper evaluates, which is exactly why it
// makes an interesting extra data point for the placement and migration
// experiments.
//
// The solver is numerically real: SSOR on the 3-D Poisson equation with
// the same manufactured-solution verification as BT/SP.
package lu

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// LU is one problem instance.
type LU struct {
	m     *machine.Machine
	n     int
	iters int
	scale int
	omega float64

	u, f   *machine.Array3
	target []float64
	res0   float64

	events *omp.EventSet // rebuilt per team in Step
	team   *omp.Team
}

// New builds an LU instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, iters := 10, 5
	switch class {
	case nas.ClassW:
		n, iters = 34, 20
	case nas.ClassA:
		n, iters = 64, 50
	}
	l := &LU{m: m, n: n, iters: iters, scale: scale, omega: 1.2}
	l.u = m.NewArray3("u", n, n, n)
	l.f = m.NewArray3("f", n, n, n)
	l.buildProblem()
	l.Reinit()
	l.res0 = l.residualNorm()
	return l
}

// Name returns "LU".
func (l *LU) Name() string { return "LU" }

// DefaultIterations returns the class's SSOR iteration count.
func (l *LU) DefaultIterations() int { return l.iters }

// HasPhase reports no record–replay phase: the two sweeps have the same
// j-band ownership, so there is nothing to redistribute between them.
func (l *LU) HasPhase() bool { return false }

// HotPages returns the spans of u and f.
func (l *LU) HotPages() [][2]uint64 {
	var out [][2]uint64
	for _, a := range []*machine.Array3{l.u, l.f} {
		lo, hi := a.PageRange()
		out = append(out, [2]uint64{lo, hi})
	}
	return out
}

// idx flattens grid point (k,j,i) into the j-major storage order: the
// sweeps are parallelised over j-bands, so j must be the slowest-varying
// index for a thread's band to be a contiguous page range (the property
// first-touch placement and the migration engines rely on).
func (l *LU) idx(k, j, i int) int { return (j*l.n+k)*l.n + i }

// buildProblem manufactures f = -Lap_h(g) for g = sin(pi x)sin(pi y)
// sin(pi z), making g the exact discrete solution of -Lap_h u = f.
func (l *LU) buildProblem() {
	n := l.n
	h := 1.0 / float64(n-1)
	g := func(k, j, i int) float64 {
		return math.Sin(math.Pi*float64(k)*h) * math.Sin(math.Pi*float64(j)*h) * math.Sin(math.Pi*float64(i)*h)
	}
	l.target = make([]float64, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				l.target[l.idx(k, j, i)] = g(k, j, i)
			}
		}
	}
	h2 := 1 / (h * h)
	f := l.f.Data()
	t := l.target
	idx := l.idx
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				lap := (t[idx(k+1, j, i)] + t[idx(k-1, j, i)] +
					t[idx(k, j+1, i)] + t[idx(k, j-1, i)] +
					t[idx(k, j, i+1)] + t[idx(k, j, i-1)] -
					6*t[idx(k, j, i)]) * h2
				f[idx(k, j, i)] = -lap
			}
		}
	}
}

// Reinit zeroes the solution.
func (l *LU) Reinit() { clear(l.u.Data()) }

// InitTouch writes u and f with the sweeps' j-band partitioning.
func (l *LU) InitTouch(t *omp.Team) {
	n := l.n
	fd := l.f.Data()
	t.Parallel(func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			lo, hi := from, to
			if lo == 1 {
				lo = 0
			}
			if hi == n-1 {
				hi = n
			}
			for j := lo; j < hi; j++ {
				for k := 0; k < n; k++ {
					for i := 0; i < n; i++ {
						l.u.Set(c, l.idx(k, j, i), 0)
						l.f.Set(c, l.idx(k, j, i), fd[l.idx(k, j, i)])
					}
				}
			}
		})
	})
}

// Step runs one SSOR iteration: a forward (lower-triangular) sweep
// pipelined down the thread chain and a backward (upper-triangular) sweep
// pipelined up it.
func (l *LU) Step(t *omp.Team, h *nas.Hooks) {
	if l.events == nil || l.team != t {
		l.events = omp.NewEventSet(t, l.n)
		l.team = t
	}
	for s := 0; s < l.scale; s++ {
		l.sweep(t, false)
		l.sweep(t, true)
	}
}

// sweep performs one Gauss-Seidel pass. Threads own j-bands; the loop
// dependence in j means thread tr must not touch plane k until its
// lower-j (forward) or higher-j (backward) neighbour has finished that
// plane — the NAS LU pipeline.
func (l *LU) sweep(t *omp.Team, backward bool) {
	n := l.n
	h2 := float64(n-1) * float64(n-1)
	invh2 := 1.0 / h2
	ev := l.events
	// Static partition arithmetic: threads at the tail may own no j rows
	// and thus never post; nobody must wait on them.
	chunk := (n - 2 + t.Size() - 1) / t.Size()
	hasWork := func(thread int) bool { return 1+thread*chunk < n-1 }
	t.Parallel(func(tr *omp.Thread) {
		if tr.ID == 0 {
			ev.Reset()
		}
		tr.Barrier()
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, jFrom, jTo int) {
			for kk := 1; kk < n-1; kk++ {
				k := kk
				if backward {
					k = n - 1 - kk
				}
				// Wait for the j-neighbour's progress on this plane.
				if !backward && tr.ID > 0 {
					ev.Wait(tr, tr.ID-1, k)
				}
				if backward && tr.ID < t.Size()-1 && hasWork(tr.ID+1) {
					ev.Wait(tr, tr.ID+1, k)
				}
				for jj := jFrom; jj < jTo; jj++ {
					j := jj
					if backward {
						j = jFrom + jTo - 1 - jj
					}
					for ii := 1; ii < n-1; ii++ {
						i := ii
						if backward {
							i = n - 1 - ii
						}
						gs := (l.u.Get(c, l.idx(k+1, j, i)) + l.u.Get(c, l.idx(k-1, j, i)) +
							l.u.Get(c, l.idx(k, j+1, i)) + l.u.Get(c, l.idx(k, j-1, i)) +
							l.u.Get(c, l.idx(k, j, i+1)) + l.u.Get(c, l.idx(k, j, i-1)) +
							l.f.Get(c, l.idx(k, j, i))*invh2) / 6
						old := l.u.Get(c, l.idx(k, j, i))
						l.u.Set(c, l.idx(k, j, i), (1-l.omega)*old+l.omega*gs)
						c.Flops(12)
					}
				}
				ev.Post(tr, k)
			}
		})
	})
}

// residualNorm evaluates ||f + Lap_h(u)|| on the host.
func (l *LU) residualNorm() float64 {
	n := l.n
	h2 := float64(n-1) * float64(n-1)
	u := l.u.Data()
	f := l.f.Data()
	idx := l.idx
	var s float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				lap := (u[idx(k+1, j, i)] + u[idx(k-1, j, i)] +
					u[idx(k, j+1, i)] + u[idx(k, j-1, i)] +
					u[idx(k, j, i+1)] + u[idx(k, j, i-1)] -
					6*u[idx(k, j, i)]) * h2
				r := f[idx(k, j, i)] + lap
				s += r * r
			}
		}
	}
	return math.Sqrt(s)
}

// errorNorm returns the distance from the manufactured solution.
func (l *LU) errorNorm() float64 {
	var s float64
	for i, v := range l.u.Data() {
		d := v - l.target[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Verify checks SSOR convergence.
func (l *LU) Verify() error {
	res := l.residualNorm()
	if math.IsNaN(res) || res >= 0.5*l.res0 {
		return fmt.Errorf("lu: residual %g did not decrease from %g", res, l.res0)
	}
	return nil
}

// ResidualNorm exposes the residual for tests.
func (l *LU) ResidualNorm() float64 { return l.residualNorm() }

// ErrorNorm exposes the error for tests.
func (l *LU) ErrorNorm() float64 { return l.errorNorm() }

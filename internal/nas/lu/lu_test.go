package lu

import (
	"math"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkLU(t *testing.T) (*machine.Machine, *LU, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	l := New(m, nas.ClassS, 1, 0).(*LU)
	return m, l, omp.MustTeam(m, m.NumCPUs())
}

func TestSSORResidualDecreasesMonotonically(t *testing.T) {
	_, l, team := mkLU(t)
	prev := l.ResidualNorm()
	if prev == 0 {
		t.Fatal("zero initial residual")
	}
	for s := 0; s < 6; s++ {
		l.Step(team, nil)
		res := l.ResidualNorm()
		if math.IsNaN(res) || res >= prev {
			t.Fatalf("step %d: residual %g did not decrease from %g", s+1, res, prev)
		}
		prev = res
	}
}

func TestSSORConvergesToManufacturedSolution(t *testing.T) {
	_, l, team := mkLU(t)
	e0 := l.ErrorNorm()
	for s := 0; s < 12; s++ {
		l.Step(team, nil)
	}
	if e := l.ErrorNorm(); e >= 0.05*e0 {
		t.Errorf("error %g after 12 SSOR steps, want < 5%% of %g (SSOR converges fast)", e, e0)
	}
	if err := l.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// The pipelined parallel sweep must compute exactly what a sequential
// SSOR sweep computes: the events enforce the Gauss-Seidel dependences.
func TestPipelinedSweepMatchesSequential(t *testing.T) {
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)

	mPar := machine.MustNew(mc)
	par := New(mPar, nas.ClassS, 1, 0).(*LU)
	teamPar := omp.MustTeam(mPar, mPar.NumCPUs())

	mSeq := machine.MustNew(mc)
	seq := New(mSeq, nas.ClassS, 1, 0).(*LU)
	teamSeq := omp.MustTeam(mSeq, 1) // one thread: trivially sequential

	for s := 0; s < 2; s++ {
		par.Step(teamPar, nil)
		seq.Step(teamSeq, nil)
	}
	up, us := par.u.Data(), seq.u.Data()
	for i := range up {
		if math.Abs(up[i]-us[i]) > 1e-12 {
			t.Fatalf("u[%d]: pipelined %g vs sequential %g", i, up[i], us[i])
		}
	}
}

func TestUnevenTeamSizesDoNotDeadlock(t *testing.T) {
	// Class S has 8 interior j rows; a team of 5 leaves thread 4 with
	// fewer rows (8 = 2+2+2+2+0 with chunk 2): the backward sweep must
	// not wait on the workless tail.
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	l := New(m, nas.ClassS, 1, 0).(*LU)
	team := omp.MustTeam(m, 5)
	prev := l.ResidualNorm()
	l.Step(team, nil)
	if res := l.ResidualNorm(); res >= prev {
		t.Errorf("residual %g did not decrease from %g with an uneven team", res, prev)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
		r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: p, UPM: nas.UPMDistribute})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Verified {
			t.Errorf("%s: verification failed: %v", p, r.VerifyErr)
		}
	}
}

func TestPlacementOrderingHoldsForPipelinedCode(t *testing.T) {
	run := func(p vm.Policy) int64 {
		r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: p})
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalPS
	}
	ft, wc := run(vm.FirstTouch), run(vm.WorstCase)
	if ft >= wc {
		t.Errorf("ft (%d) not faster than wc (%d) for LU", ft, wc)
	}
}

func TestHotPages(t *testing.T) {
	_, l, _ := mkLU(t)
	if got := len(l.HotPages()); got != 2 {
		t.Errorf("HotPages = %d ranges, want 2 (u, f)", got)
	}
	if l.HasPhase() {
		t.Error("LU must not advertise a record-replay phase")
	}
}

package nas

// Analytic fast-forward of kernel-migration campaigns. A campaign is the
// regime the period-k detector cannot touch: the kernel engine keeps
// migrating (or rejecting) pages every scan, so the page-home hash moves
// every iteration and no counter orbit closes. But when the compute under
// the campaign is *frozen* — every iteration issues the same reference
// string and satisfies it entirely from the caches — the campaign's whole
// remaining trajectory is determined by state the engine alone owns: the
// reference-counter rows (which only the scans still touch, via decay and
// reset), the page homes, and the scan-gating cursor. The drain below
// replays exactly that: it walks the remaining barriers against a clone
// of the page table with the engine's own StepBarrier code, computes each
// remaining scan's moves and cost in closed form from the observed
// barrier timing structure, and commits the final state in one step.
//
// Soundness. The keystone precondition is zero misses at every level of
// the hierarchy (L1, L2, TLB, faults) per iteration over the confirmation
// window: the simulator consults the page table, the TLB and memory
// latencies only on the L2-miss path, so zero L2 misses prove compute
// reads nothing the campaign mutates — migrating any page, live or dead,
// is invisible to it — and zero L1 misses prove no access ever reads
// cache replacement state (a miss's victim selection is the only reader
// of the LRU ages), so the free-run replay's unadvanced cache metadata
// can never surface. Compute is deterministic and its state is frozen
// (every non-clock counter delta repeats exactly; zero misses mean cache
// contents are static), so every future iteration reproduces the same
// barrier timing structure: the per-barrier compute gaps and the
// end-of-iteration tail. The engine's future decisions are then a
// function of (rows, homes, cursor, barrier times), all of which the
// drain replays exactly — same code path (StepBarrier), same inputs —
// so the drained trajectory is the simulated one by construction.
// campaign_test.go proves bit-identity per benchmark and placement.
//
// The decay-determinism precondition of the period-k issue is enforced
// on top: the per-scan move series across the window must be
// non-increasing (competitive campaigns decay as rows age; a
// non-monotone series means the campaign is still being fed and must
// not be fast-forwarded — steady_test.go's adversary pins this).

import (
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/vm"
)

// campaignObserver watches one timed loop for a drainable campaign: a
// front barrier hook records the settle time of every barrier, the
// engine's scan observer attributes each scan's moves and cost to its
// barrier, and observe() checks the closure preconditions once per
// iteration. One-shot: after a drain (or a failed one) it disarms.
type campaignObserver struct {
	m      *machine.Machine
	eng    *kmig.Engine
	window int

	disabled bool
	haveEnd  bool
	iterEnd  int64 // master clock at the previous observe()

	// Per-barrier records of the current iteration, filled by the front
	// hook and the engine's scan observer.
	barT    []int64 // settle time the engine's hook received
	barCost []int64 // cost the scan at that barrier charged (0 = no scan)
	scanSeq []int   // per-scan moved counts, in scan order

	// Marked-phase window of the current iteration (0,0 = no phase).
	phaseStart, phaseEnd int64

	// Baseline of the qualifying streak.
	streak    int
	base      []int64 // frozen delta vector (clocks, engine, PT-migrations zeroed)
	baseIter  int64   // per-iteration compute time: dIter − scan costs
	basePhase int64   // per-phase compute time: dPhase − in-phase scan costs
	gaps      []int64 // pre-settle compute advance since the previous barrier end
	tail      int64   // compute advance from the last barrier end to iteration end
	inPhase   []bool  // barrier lies inside the marked phase
	members   []bool  // per-CPU: clock advances with the iteration
	lastMoved int     // previous scan's moved count (monotone decay check)

	// Scratch reused across iterations.
	norm     []int64
	curGaps  []int64
	curPhase []bool
	curMemb  []bool
}

// newCampaignObserver attaches the observer's hooks. Must be called after
// the engine attached (the front hook registers ahead of the engine's, so
// it records the exact time the engine's gate will read).
func newCampaignObserver(m *machine.Machine, eng *kmig.Engine, window int) *campaignObserver {
	if window <= 0 {
		window = steadyWindowDefault
	}
	camp := &campaignObserver{m: m, eng: eng, window: window, lastMoved: -1}
	m.AddBarrierHookFront(func(now int64) int64 {
		if !camp.disabled {
			camp.barT = append(camp.barT, now)
			camp.barCost = append(camp.barCost, 0)
		}
		return 0
	})
	eng.SetObserver(func(s kmig.ScanSample) {
		if camp.disabled {
			return
		}
		n := len(camp.barT)
		if n == 0 || camp.barT[n-1] != s.Now {
			// A scan the front hook did not see settle: the hook order
			// assumption broke. Never propose a drain from here on.
			camp.disabled = true
			return
		}
		camp.barCost[n-1] = s.Cost
		camp.scanSeq = append(camp.scanSeq, s.Moved)
	})
	return camp
}

// armPhase points the step's hooks at the observer so it learns the
// marked phase's time window (needed to attribute in-phase scan costs to
// PhasePS). Campaign cells never run record–replay, so the hook slots are
// free.
func (camp *campaignObserver) armPhase(h *Hooks) {
	camp.phaseStart, camp.phaseEnd = 0, 0
	h.BeforePhase = func(c *machine.CPU) { camp.phaseStart = c.Now() }
	h.AfterPhase = func(c *machine.CPU) { camp.phaseEnd = c.Now() }
}

// observe evaluates the closure preconditions at the end of one timed
// iteration: delta is the detector's full counter-delta vector for the
// iteration, dIter/dPhase its durations, iterEnd the master clock now.
// It reports whether a drain is proven safe (window consecutive
// qualifying, structurally identical iterations with ongoing, decaying
// campaign activity).
func (camp *campaignObserver) observe(delta []int64, dIter, dPhase, iterEnd int64) bool {
	if camp.disabled {
		return false
	}
	propose := false
	if camp.haveEnd {
		propose = camp.evaluate(delta, dIter, dPhase, iterEnd)
	}
	camp.haveEnd = true
	camp.iterEnd = iterEnd
	camp.barT = camp.barT[:0]
	camp.barCost = camp.barCost[:0]
	camp.scanSeq = camp.scanSeq[:0]
	return propose
}

// Structural indices into the per-CPU counter block (machine.AppendCounters
// layout): the clock and the miss counters that must stay at zero delta.
// L1 misses are included deliberately: a miss is the only reader of cache
// replacement state (LRU ages, victim selection), so zero misses at every
// level proves the drained iterations neither read nor need the cache
// metadata the free-run replay leaves unadvanced — and by induction the
// post-campaign regime stays miss-free too.
const (
	cpuClockOff   = 0
	cpuL1MissOff  = 2
	cpuL2MissOff  = 3
	cpuTLBMissOff = 4
	cpuFaultsOff  = 7
	cpuL1CMissOff = 9
	cpuL2CMissOff = 12
)

func (camp *campaignObserver) evaluate(delta []int64, dIter, dPhase, iterEnd int64) bool {
	B := len(camp.barT)
	if B == 0 {
		camp.streak = 0
		return false
	}
	stride := camp.m.CountersPerCPU()
	ncpu := camp.m.NumCPUs()
	M := ncpu * stride // page-table counter block
	E := M + 4         // engine counter block (== m.CounterLen())
	engN := camp.eng.CounterLen()

	// Totals of this iteration's engine activity, per the sample stream.
	var cost, phaseCost int64
	moved := 0
	for b := 0; b < B; b++ {
		cost += camp.barCost[b]
		if camp.phaseStart <= camp.barT[b] && camp.barT[b] < camp.phaseEnd {
			phaseCost += camp.barCost[b]
		}
	}
	for _, mv := range camp.scanSeq {
		moved += mv
	}
	rejected := delta[E+3]

	// Keystone: compute must be entirely cache-resident — not one miss at
	// any level of the hierarchy, on any CPU.
	for i := 0; i < ncpu; i++ {
		b := i * stride
		if delta[b+cpuL1MissOff] != 0 || delta[b+cpuL2MissOff] != 0 ||
			delta[b+cpuTLBMissOff] != 0 || delta[b+cpuFaultsOff] != 0 ||
			delta[b+cpuL1CMissOff] != 0 || delta[b+cpuL2CMissOff] != 0 {
			camp.streak = 0
			return false
		}
	}
	// Page-table counters: no faults, no replication traffic; the
	// migration tally must match the engine's scans exactly.
	if delta[M] != 0 || delta[M+1] != int64(moved) || delta[M+2] != 0 || delta[M+3] != 0 {
		camp.streak = 0
		return false
	}
	// Engine counters must agree with the sample stream: every barrier
	// was seen, every scan sampled, every move and rejection attributed.
	if delta[E] != int64(B) || delta[E+1] != int64(len(camp.scanSeq)) ||
		delta[E+2] != int64(moved) || delta[E+4] != cost {
		camp.streak = 0
		return false
	}
	// Clock classification: members advance by exactly the iteration
	// span, everyone else not at all.
	camp.curMemb = camp.curMemb[:0]
	for i := 0; i < ncpu; i++ {
		d := delta[i*stride+cpuClockOff]
		switch d {
		case dIter:
			camp.curMemb = append(camp.curMemb, true)
		case 0:
			camp.curMemb = append(camp.curMemb, false)
		default:
			camp.streak = 0
			return false
		}
	}
	// Barrier timing structure: per-barrier compute gaps and the
	// end-of-iteration tail, with costs peeled off.
	camp.curGaps = camp.curGaps[:0]
	camp.curPhase = camp.curPhase[:0]
	prevEnd := camp.iterEnd
	for b := 0; b < B; b++ {
		camp.curGaps = append(camp.curGaps, camp.barT[b]-prevEnd)
		camp.curPhase = append(camp.curPhase,
			camp.phaseStart <= camp.barT[b] && camp.barT[b] < camp.phaseEnd)
		prevEnd = camp.barT[b] + camp.barCost[b]
	}
	tail := iterEnd - prevEnd
	baseIter := dIter - cost
	basePhase := dPhase - phaseCost

	// Frozen compute vector: everything except the clocks, the engine
	// block and the PT migration tally must repeat exactly.
	camp.norm = append(camp.norm[:0], delta...)
	for i := 0; i < ncpu; i++ {
		camp.norm[i*stride+cpuClockOff] = 0
	}
	camp.norm[M+1] = 0
	for j := E; j < E+engN; j++ {
		camp.norm[j] = 0
	}
	camp.norm[E+engN] = 0   // cumIter (≡ dIter, normalised via baseIter)
	camp.norm[E+engN+1] = 0 // cumPhase

	// Monotone decay (the issue's determinism precondition): the per-scan
	// moved series must be non-increasing — within this iteration always,
	// and across the whole window when continuing a streak. A
	// MaxPerScan-capped campaign plateaus at the cap, so "non-increasing",
	// not "strictly decreasing". lastMoved −1 means no scan seen yet.
	withinOK, lastWithin := monotoneSeq(-1, camp.scanSeq)
	crossOK, lastCross := monotoneSeq(camp.lastMoved, camp.scanSeq)

	same := camp.streak > 0 && crossOK &&
		int64sEqual(camp.norm, camp.base) &&
		int64sEqual(camp.curGaps, camp.gaps) &&
		boolsEqual(camp.curPhase, camp.inPhase) &&
		boolsEqual(camp.curMemb, camp.members) &&
		tail == camp.tail && baseIter == camp.baseIter && basePhase == camp.basePhase
	switch {
	case same:
		camp.streak++
		camp.lastMoved = lastCross
	case withinOK:
		camp.streak = 1
		camp.base = append(camp.base[:0], camp.norm...)
		camp.gaps = append(camp.gaps[:0], camp.curGaps...)
		camp.inPhase = append(camp.inPhase[:0], camp.curPhase...)
		camp.members = append(camp.members[:0], camp.curMemb...)
		camp.tail, camp.baseIter, camp.basePhase = tail, baseIter, basePhase
		camp.lastMoved = lastWithin
	default:
		camp.streak = 0
		camp.lastMoved = -1
	}
	// Propose only an ongoing campaign: the latest iteration still moved
	// pages. (A rejected-only iteration cannot occur — the throttle only
	// rejects once MaxPerScan pages moved — but check both for clarity.)
	return camp.streak >= camp.window && (moved > 0 || rejected > 0)
}

// drainPlan is a computed campaign closure, ready to commit.
type drainPlan struct {
	V                     int     // iterations drained
	iterPS, phasePS       []int64 // their per-iteration and per-phase times
	moved, rejected, cost int64   // engine counter totals over the drain
	cur                   kmig.ScanCursor
	clone                 *vm.PageTable
}

// drain computes the campaign's remaining trajectory in closed form: it
// replays up to budget iterations' barriers against a clone of the page
// table using the engine's own StepBarrier, stopping before the first
// quiet iteration (no moves, no rejections — that iteration belongs to
// the post-campaign steady regime and is left to the charged loop). Each
// iteration runs against a fresh sub-clone so a quiet iteration's scan
// side effects (row decay, gating cursor) are never committed. The
// returned plan's clone holds the exact page table — homes, rows, gens,
// migration tally — a full simulation of those V iterations would reach.
func (camp *campaignObserver) drain(budget int) drainPlan {
	plan := drainPlan{
		clone: camp.m.PT.Clone(),
		cur:   camp.eng.Cursor(),
	}
	now := camp.iterEnd
	B := len(camp.gaps)
	for plan.V < budget {
		clone := plan.clone.Clone()
		cur := plan.cur
		vnow := now
		var cost, phaseCost, rejected int64
		moved := 0
		for b := 0; b < B; b++ {
			vnow += camp.gaps[b]
			r := camp.eng.StepBarrier(&cur, clone, vnow, false)
			if r.Scanned {
				moved += r.Moved
				rejected += r.Rejected
				cost += r.Cost
				if camp.inPhase[b] {
					phaseCost += r.Cost
				}
				vnow += r.Cost
			}
		}
		vnow += camp.tail
		if moved == 0 && rejected == 0 {
			break
		}
		plan.V++
		plan.clone, plan.cur, now = clone, cur, vnow
		plan.iterPS = append(plan.iterPS, camp.baseIter+cost)
		plan.phasePS = append(plan.phasePS, camp.basePhase+phaseCost)
		plan.moved += int64(moved)
		plan.rejected += rejected
		plan.cost += cost
	}
	return plan
}

// machineDelta returns the frozen per-iteration machine counter delta
// with member clocks restored to the compute time — the vector one
// drained iteration advances the machine by, costs excluded (they are
// added separately per the drain's actual scan costs).
func (camp *campaignObserver) machineDelta() []int64 {
	stride := camp.m.CountersPerCPU()
	d := append([]int64(nil), camp.base[:camp.m.CounterLen()]...)
	for i, member := range camp.members {
		if member {
			d[i*stride+cpuClockOff] = camp.baseIter
		}
	}
	return d
}

// clockDelta returns a machine counter vector that advances every member
// clock by ps and nothing else — the drained scans' cost share.
func (camp *campaignObserver) clockDelta(ps int64) []int64 {
	stride := camp.m.CountersPerCPU()
	d := make([]int64, camp.m.CounterLen())
	for i, member := range camp.members {
		if member {
			d[i*stride+cpuClockOff] = ps
		}
	}
	return d
}

// monotoneSeq reports whether seq, prefixed by a previous value (−1 = no
// previous scan), is non-increasing, and returns the final value.
func monotoneSeq(prev int, seq []int) (bool, int) {
	last := prev
	for _, mv := range seq {
		if last >= 0 && mv > last {
			return false, last
		}
		last = mv
	}
	return true, last
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Package nas provides the shared driver for the OpenMP NAS benchmark
// reproductions (BT, SP, CG, MG, FT): problem classes, the experiment
// configuration (placement scheme, kernel migration, UPMlib mode), the
// cold-start first-touch protocol, the UPMlib invocation protocols of the
// paper's Figures 2 and 3, per-iteration timing, and verification.
package nas

import (
	"fmt"
	"strings"
	"time"

	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/metrics"
	"upmgo/internal/omp"
	"upmgo/internal/topology"
	"upmgo/internal/trace"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

// Class scales a benchmark. The paper runs NAS Class A on real hardware;
// the simulator pays host time per simulated access, so the default
// experiment class (W) scales the grids down and scales the simulated
// cache sizes with them, preserving the ratio of working set to cache
// that makes placement matter. EXPERIMENTS.md records the exact sizes.
type Class int

const (
	// ClassS is tiny: unit tests.
	ClassS Class = iota
	// ClassW is the default experiment scale.
	ClassW
	// ClassA approaches the paper's problem sizes (expensive; use from
	// cmd/nasbench explicitly).
	ClassA
)

// String returns "S", "W" or "A".
func (c Class) String() string { return [...]string{"S", "W", "A"}[c] }

// MarshalText encodes the class as its letter, so JSON sweep requests and
// store records carry "W" rather than a bare enum integer.
func (c Class) MarshalText() ([]byte, error) {
	if c < ClassS || c > ClassA {
		return nil, fmt.Errorf("nas: cannot encode Class(%d)", int(c))
	}
	return []byte(c.String()), nil
}

// UnmarshalText decodes a class letter (case-insensitive).
func (c *Class) UnmarshalText(text []byte) error {
	cl, err := ParseClass(string(text))
	if err != nil {
		return err
	}
	*c = cl
	return nil
}

// ParseClass maps a class letter ("S", "W", "A", either case) to its
// Class, the inverse of String.
func ParseClass(s string) (Class, error) {
	for _, c := range []Class{ClassS, ClassW, ClassA} {
		if strings.EqualFold(s, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("nas: unknown class %q (want S, W or A)", s)
}

// MachineTweak scales the simulated machine with the class: cache sizes
// shrink so the per-thread working set exceeds L2 the way NAS Class A
// exceeds the Origin2000's 4 MB L2, page sizes shrink so a page does not
// span several threads' partitions, and the tiny test class runs on a
// 4-node machine so that every thread of the scaled-down grids has work
// (idle nodes would distort the contention comparison between placements).
func (c Class) MachineTweak(mc *machine.Config) {
	switch c {
	case ClassS:
		mc.Nodes, mc.CPUsPerNode = 4, 2
		mc.PageBytes = 1024
		// 4 MB of arena is ample for every Class S working set; the
		// default 512 MB worth of page-table state would dominate the
		// host cost of building and resetting these tiny machines.
		mc.ArenaPages = 1 << 12
		mc.L1Bytes, mc.L1Line, mc.L1Ways = 4*1024, 32, 2
		mc.L2Bytes, mc.L2Line, mc.L2Ways = 16*1024, 128, 2
	case ClassW:
		mc.PageBytes = 2 * 1024
		mc.L1Bytes, mc.L1Line, mc.L1Ways = 8*1024, 32, 2
		mc.L2Bytes, mc.L2Line, mc.L2Ways = 64*1024, 128, 2
	case ClassA:
		// The real machine.
	}
}

// Mode selects the UPMlib protocol.
type Mode int

const (
	// UPMOff runs without the user-level engine.
	UPMOff Mode = iota
	// UPMDistribute uses iterative page migration as implicit data
	// distribution (the paper's Figure 2 protocol).
	UPMDistribute
	// UPMRecRep adds record–replay redistribution around the kernel's
	// phase change (the paper's Figure 3 protocol; BT and SP only).
	UPMRecRep
)

// String returns a short label.
func (m Mode) String() string { return [...]string{"off", "upmlib", "recrep"}[m] }

// MarshalText encodes the mode as its short label.
func (m Mode) MarshalText() ([]byte, error) {
	if m < UPMOff || m > UPMRecRep {
		return nil, fmt.Errorf("nas: cannot encode Mode(%d)", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText decodes a short label produced by MarshalText.
func (m *Mode) UnmarshalText(text []byte) error {
	for _, q := range []Mode{UPMOff, UPMDistribute, UPMRecRep} {
		if string(text) == q.String() {
			*m = q
			return nil
		}
	}
	return fmt.Errorf("nas: unknown UPM mode %q (want off, upmlib or recrep)", text)
}

// Hooks are the serial-section calls a kernel makes around its
// phase-change phase (z_solve in BT/SP). The driver fills them per step to
// implement the record–replay protocol; kernels without a phase ignore
// them.
type Hooks struct {
	// BeforePhase runs on the master immediately before the phase's
	// parallel region; AfterPhase immediately after its join.
	BeforePhase func(c *machine.CPU)
	AfterPhase  func(c *machine.CPU)
	// phaseStart is used by the driver to time the phase.
	phaseStart int64
	phasePS    int64
}

// PhaseEnter must be called by the kernel right before the marked phase's
// parallel region (after BeforePhase side effects are charged).
func (h *Hooks) PhaseEnter(c *machine.CPU) {
	if h == nil {
		return
	}
	if h.BeforePhase != nil {
		h.BeforePhase(c)
	}
	h.phaseStart = c.Now()
	if trc := c.Machine().Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: h.phaseStart, CPU: c.ID, Kind: trace.EvPhaseEnter})
	}
}

// PhaseExit must be called right after the marked phase's join.
func (h *Hooks) PhaseExit(c *machine.CPU) {
	if h == nil {
		return
	}
	h.phasePS += c.Now() - h.phaseStart
	if trc := c.Machine().Tracer(); trc != nil {
		trc.Emit(trace.Event{Time: c.Now(), CPU: c.ID, Kind: trace.EvPhaseExit})
	}
	if h.AfterPhase != nil {
		h.AfterPhase(c)
	}
}

// Kernel is one NAS benchmark bound to a machine.
type Kernel interface {
	// Name returns the benchmark's short name ("BT", ...).
	Name() string
	// DefaultIterations returns the class's main-loop step count.
	DefaultIterations() int
	// InitTouch writes the initial data through simulated accesses with
	// the same loop partitioning as the compute phases. NAS codes
	// parallelise their initialisation routines exactly so that
	// first-touch places each page on its dominant accessor; without
	// this, stencil reads of neighbour planes during the first parallel
	// region would shift every page's home by one node.
	InitTouch(t *omp.Team)
	// Step executes one timestep as a sequence of parallel regions on
	// the team, invoking hooks around the marked phase if any.
	Step(t *omp.Team, h *Hooks)
	// Reinit restores the initial data (used to discard the cold-start
	// iteration's results) without touching simulated memory.
	Reinit()
	// Verify checks the numerical outcome after the main loop.
	Verify() error
	// HotPages returns the page spans of the compiler-identified hot
	// arrays (shared arrays both read and written across parallel
	// constructs).
	HotPages() [][2]uint64
	// HasPhase reports whether the kernel has a phase change usable by
	// record–replay.
	HasPhase() bool
}

// Builder constructs a kernel on a machine at a class and compute scale.
type Builder func(m *machine.Machine, class Class, scale int, seed uint64) Kernel

// Config selects one experiment cell. The JSON tags define the wire form
// used by sweep requests (cmd/sweepd's POST /v1/jobs) and store records:
// enums encode as their figure labels (Class "W", Placement "ft", UPM
// "upmlib") via their MarshalText methods, and the non-serializable
// observation hooks (Tweak, Tracer, Metrics, TailCache) are excluded —
// exactly the fields Fingerprint refuses to encode.
type Config struct {
	Class      Class       `json:"class"`
	Placement  vm.Policy   `json:"placement"`
	KernelMig  bool        `json:"kernel_mig,omitempty"` // IRIX-style kernel engine on
	UPM        Mode        `json:"upm,omitempty"`        // user-level engine protocol
	UPMOptions upm.Options `json:"upm_options"`          // zero = paper defaults
	Kmig       kmig.Config `json:"kmig"`                 // zero = defaults
	Threads    int         `json:"threads,omitempty"`    // 0 = all CPUs
	Iterations int         `json:"iterations,omitempty"` // 0 = class default
	// ComputeScale repeats each phase's body (the paper's synthetic
	// scaling in Figure 6). 0 or 1 = normal.
	ComputeScale int `json:"compute_scale,omitempty"`
	// PerturbAt models OS scheduler interference (the multiprogramming
	// case the paper defers to its companion work): after iteration
	// PerturbAt the thread-to-CPU binding rotates by one node, stranding
	// every thread's pages on its old node. UPMlib, if enabled, is
	// reactivated to repair the damage. 0 = never.
	PerturbAt int    `json:"perturb_at,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Tweak adjusts the machine configuration after class defaults
	// (ablation benches use it).
	Tweak func(mc *machine.Config) `json:"-"`
	// Tracer, when non-nil, receives virtual-time-stamped events from
	// every simulation layer (regions, barriers, iterations, faults,
	// engine actions). Tracing never charges virtual time, so a traced
	// run's numbers are bit-identical to the same config untraced.
	Tracer trace.Tracer `json:"-"`
	// Metrics, when non-nil, samples the run's NUMA locality state at
	// every iteration mark and marked-phase boundary: per-node page
	// residency, the reference-counter rows (read before the engine
	// invocation that resets them), migrations, shootdown rounds,
	// replica collapses and barrier imbalance. Like Tracer it is
	// observation-only — a sampled run is bit-identical in virtual time
	// to an unsampled one — and like Tracer it makes the config
	// unfingerprintable, so the sweep cache never serves stale metrics.
	Metrics *metrics.Sampler `json:"-"`
	// SkipVerify skips the numerical check (benchmarks that time very
	// few iterations on purpose may not converge).
	SkipVerify bool `json:"skip_verify,omitempty"`
	// SteadyState arms the steady-state detector: at the end of every
	// timed iteration (past PerturbAt, if set) it snapshots the machine
	// and engine counters, and when SteadyWindow consecutive iterations
	// produce identical deltas with a stationary page-home map it records
	// the iteration in Result.SteadyAt. Detection is observation-only
	// unless Extrapolate is also set. Ignored when Metrics is attached:
	// the sampler needs every iteration simulated.
	SteadyState bool `json:"steady_state,omitempty"`
	// Extrapolate, with SteadyState, fast-forwards the run at detection:
	// the remaining iterations' virtual time and counters are added
	// analytically (remaining × the proven per-iteration delta) and the
	// kernel re-executes the remaining steps in free-run mode so the
	// numerics still reach their exact final state for Verify. Every
	// virtual-time quantity of the Result is bit-identical to the fully
	// simulated run (steady_test.go proves it per benchmark and engine).
	Extrapolate bool `json:"extrapolate,omitempty"`
	// SteadyWindow is the number of consecutive identical deltas that
	// proves steadiness. 0 means the default (3).
	SteadyWindow int `json:"steady_window,omitempty"`
	// PeriodK caps the orbit length the steady-state detector considers:
	// the detector proves period-k repetition for the minimal k ≤ PeriodK.
	// 0 means the default cap (8); 1 restricts detection to the original
	// period-one orbits. Extrapolated results are bit-identical to
	// simulated ones for every k, so the cap only moves Result.SteadyAt/
	// SteadyPeriod metadata; the default canonicalises out of Fingerprint.
	PeriodK int `json:"period_k,omitempty"`
	// NoCampaignFF disables the analytic campaign fast-forward (on by
	// default with SteadyState+Extrapolate under the kernel engine): the
	// closed-form drain of a kernel-migration campaign whose remaining
	// trajectory is proven deterministic. The drain is bit-identical to
	// full simulation (campaign_test.go proves it), so the toggle exists
	// for A/B timing and debugging only.
	NoCampaignFF bool `json:"no_campaign_ff,omitempty"`
	// ResidentElide arms page-granular charging elision: exact repeats of
	// a read-only bulk access run over armed, proven-cache-resident pages
	// replay their recorded L1-hit charging instead of walking the memory
	// system. Every replay is guarded by a per-call residency and
	// coherence re-check, so results are bit-identical with or without it
	// (it never partitions the fingerprint space).
	ResidentElide bool `json:"resident_elide,omitempty"`
	// TailCache, when non-nil, shares verification outcomes between runs
	// with identical numerics (see VerifyCache). An extrapolating run
	// that finds its trajectory already verified skips the free-run
	// re-execution of its tail; every verified run seeds the cache.
	// Attach one cache per sweep. Results are bit-identical with or
	// without it, so it does not partition the fingerprint space.
	TailCache *VerifyCache `json:"-"`
	// HostStages, when non-nil, receives the run's host wall-clock cost
	// split by stage (prefix, fork, timed loop, extrapolation, free-run
	// tail, verification). Pure observation of the host clock: nothing
	// simulated reads it, no virtual time is charged, and without a sink
	// not even time.Now is called, so armed and unarmed runs are
	// bit-identical in every virtual quantity. Like TailCache it never
	// partitions the fingerprint space — it is simply absent from the
	// fingerprint encoding.
	HostStages *HostStages `json:"-"`
	// Topo selects the machine's shape: a topology.ParseShape string or
	// preset ("4x2x8", "hier64", "cube:2x2x2"). It overrides the class
	// default machine's node/CPU counts and, for shapes with per-level
	// latency, its memory ladder. Empty keeps the class default. Shapes
	// that are cube-equivalent to the class default canonicalise to
	// empty in Fingerprint/Label — such runs are bit-identical to the
	// legacy hypercube path, so they share its cache entries and store
	// records (the compatibility guarantee topology_test.go pins).
	Topo string `json:"topo,omitempty"`
}

// Fingerprint returns a canonical text encoding of the configuration,
// suitable as a memoization key: two configs with equal fingerprints
// drive bit-identical simulations, because Run is deterministic in the
// config alone. Zero values that Run itself normalises are canonicalised
// (ComputeScale 0 and 1 deliberately collide). Iterations 0 means "class
// default" and is kept distinct from an explicit equal count — that is
// conservative (two cache entries) but never wrong. The second result is
// false when the config cannot be canonically encoded (a Tweak function,
// a Tracer or a Metrics sampler is set — a tracer's or sampler's
// identity is a pointer, and serving such a run from a cache would
// silently drop its events or return stale metrics) and therefore must
// not be memoized.
func (c Config) Fingerprint() (string, bool) {
	if c.Tweak != nil || c.Tracer != nil || c.Metrics != nil {
		return "", false
	}
	if c.ComputeScale < 1 {
		c.ComputeScale = 1
	}
	// Steady-state knobs are canonicalised the way runMain reads them:
	// without SteadyState the other two fields are dead, and window 0 is
	// the default. (SteadyState stays in the key even though extrapolated
	// results are bit-identical to simulated ones — Result.SteadyAt and
	// ExtrapolatedIters do differ.)
	if !c.SteadyState {
		c.Extrapolate = false
		c.SteadyWindow = 0
	} else if c.SteadyWindow <= 0 {
		c.SteadyWindow = steadyWindowDefault
	}
	// The PR-9 toggles canonicalise the way runMain reads them, and join
	// the frozen fingerprintView only as suffixes (the same compatibility
	// discipline as Topo) so historical keys survive:
	//   - PeriodK: dead without SteadyState; 0 and ≥ the cap collide with
	//     the default. Only an explicit restriction (1..7) partitions the
	//     space — like SteadyState itself it changes Result.SteadyAt/
	//     SteadyPeriod metadata, never the physical quantities.
	//   - NoCampaignFF: dead unless the campaign path could arm
	//     (SteadyState+Extrapolate under the kernel engine, no UPM).
	//     Changes CampaignIters metadata when a campaign closes.
	//   - ResidentElide: canonicalised out entirely. Elision is proven
	//     bit-identical including all metadata, so both settings share one
	//     key (the guarantee TestFingerprintCanonicalisation pins).
	if !c.SteadyState || c.PeriodK <= 0 || c.PeriodK >= steadyPeriodMax {
		c.PeriodK = 0
	}
	if !c.SteadyState || !c.Extrapolate || !c.KernelMig || c.UPM != UPMOff {
		c.NoCampaignFF = false
	}
	c.ResidentElide = false
	fp := fmt.Sprintf("%+v", fingerprintView{
		Class:        c.Class,
		Placement:    c.Placement,
		KernelMig:    c.KernelMig,
		UPM:          c.UPM,
		UPMOptions:   c.UPMOptions,
		Kmig:         c.Kmig,
		Threads:      c.Threads,
		Iterations:   c.Iterations,
		ComputeScale: c.ComputeScale,
		PerturbAt:    c.PerturbAt,
		Seed:         c.Seed,
		SkipVerify:   c.SkipVerify,
		SteadyState:  c.SteadyState,
		Extrapolate:  c.Extrapolate,
		SteadyWindow: c.SteadyWindow,
	})
	if t := c.canonTopo(); t != "" {
		fp += " topo=" + t
	}
	if c.PeriodK != 0 {
		fp += fmt.Sprintf(" periodk=%d", c.PeriodK)
	}
	if c.NoCampaignFF {
		fp += " nocampff"
	}
	return fp, true
}

// fingerprintView is the fingerprint encoding of a Config: exactly the
// pre-topology field list, in the original order, so that fmt's %+v of a
// view is byte-for-byte the fingerprint every cache entry and store
// record was keyed by before Topo existed. The topology joins the key
// only as an explicit suffix, and only when canonTopo is non-empty —
// which is the fingerprint compatibility guarantee: default-shape runs
// keep their historical keys. The hook fields (Tweak, Tracer, Metrics,
// TailCache) are retained as always-nil placeholders because their
// "<nil>" renderings are part of the historical byte layout. Do not
// reorder, rename or extend this struct; fingerprint_test.go pins its
// rendering against golden strings.
type fingerprintView struct {
	Class        Class
	Placement    vm.Policy
	KernelMig    bool
	UPM          Mode
	UPMOptions   upm.Options
	Kmig         kmig.Config
	Threads      int
	Iterations   int
	ComputeScale int
	PerturbAt    int
	Seed         uint64
	Tweak        func(mc *machine.Config)
	Tracer       trace.Tracer
	Metrics      *metrics.Sampler
	SkipVerify   bool
	SteadyState  bool
	Extrapolate  bool
	SteadyWindow int
	TailCache    *VerifyCache
}

// canonTopo returns the canonical topology component of the config's
// identity: empty when Topo is unset or names a shape indistinguishable
// from the class's default hypercube machine (cube levels of arity 2,
// matching node and CPU counts — such runs are proven bit-identical to
// the legacy path), else the canonical shape spelling, so "HIER64" and
// "4x2x8" collide. Unparseable strings are returned verbatim: Run will
// reject them, and two configs that fail identically may share the key.
func (c Config) canonTopo() string {
	if c.Topo == "" {
		return ""
	}
	sh, err := topology.ParseShape(c.Topo)
	if err != nil {
		return c.Topo
	}
	mc := machine.DefaultConfig()
	c.Class.MachineTweak(&mc)
	if sh.CubeEquivalent(mc.Nodes, mc.CPUsPerNode) {
		return ""
	}
	return sh.String()
}

// PrefixFingerprint returns a canonical key for the engine-independent
// prefix of a run — Fingerprint minus every field the prefix does not
// read. Two configs with equal prefix fingerprints drive bit-identical
// cold starts, so their runs can fork from one shared machine snapshot
// (RunPrefix / Prefix.RunFromSnapshot). The field list mirrors exactly
// what runPrefix consumes: Class, Placement, Seed, ComputeScale
// (canonicalised, 0≡1), Threads and the canonical topology (appended only
// when non-default, preserving historical keys); the engine and timed-loop fields
// (KernelMig, UPM, UPMOptions, Kmig, Iterations, PerturbAt, SkipVerify)
// act only after the divergence point and are deliberately absent. The
// second result is false when the prefix cannot be canonically encoded,
// for the same reasons as Fingerprint: a Tweak function has no canonical
// encoding, forking a traced prefix would replay its cold-start events
// into the wrong stream, and a sampled prefix would feed one sampler
// from many forks.
func (c Config) PrefixFingerprint() (string, bool) {
	if c.Tweak != nil || c.Tracer != nil || c.Metrics != nil {
		return "", false
	}
	scale := c.ComputeScale
	if scale < 1 {
		scale = 1
	}
	fp := fmt.Sprintf("prefix\x00class=%v placement=%v seed=%d scale=%d threads=%d",
		c.Class, c.Placement, c.Seed, scale, c.Threads)
	if t := c.canonTopo(); t != "" {
		fp += " topo=" + t
	}
	return fp, true
}

// tracer returns the effective event sink: the user's Tracer, the
// Metrics sampler (which aggregates the same stream), or a tee of both.
// Built here rather than with trace.Tee directly so a nil *Sampler never
// becomes a non-nil Tracer interface.
func (c Config) tracer() trace.Tracer {
	switch {
	case c.Metrics != nil && c.Tracer != nil:
		return trace.Tee(c.Tracer, c.Metrics)
	case c.Metrics != nil:
		return c.Metrics
	default:
		return c.Tracer
	}
}

// Label renders the paper's bar labels, e.g. "rr-IRIXmig" or "ft-upmlib".
// A non-default topology joins as an "@shape" suffix ("ft-upmlib@4x2x8");
// shapes canonTopo folds into the default keep the bare label.
func (c Config) Label() string {
	var l string
	switch {
	case c.UPM == UPMRecRep:
		l = c.Placement.String() + "-recrep"
	case c.UPM == UPMDistribute:
		l = c.Placement.String() + "-upmlib"
	case c.KernelMig:
		l = c.Placement.String() + "-IRIXmig"
	default:
		l = c.Placement.String() + "-IRIX"
	}
	if t := c.canonTopo(); t != "" {
		l += "@" + t
	}
	return l
}

// Result reports one run. The JSON tags define the store-record and job-API
// payload form; every timing field is an integer picosecond count, so the
// JSON round-trip is exact and a decoded Result is bit-identical to the
// one encoded (the invariant internal/store's tests pin). VerifyErr is
// excluded: only verified results are ever persisted or served, and an
// error value has no canonical encoding.
type Result struct {
	Kernel string `json:"kernel"`
	Label  string `json:"label"`
	Class  Class  `json:"class"`

	TotalPS int64   `json:"total_ps"`           // virtual time of the main loop
	ColdPS  int64   `json:"cold_ps"`            // virtual time of the cold-start iteration
	IterPS  []int64 `json:"iter_ps"`            // per-iteration virtual times
	PhasePS []int64 `json:"phase_ps,omitempty"` // per-iteration marked-phase durations (BT/SP)

	UPM        upm.Stats     `json:"upm"`
	KmigMoves  int64         `json:"kmig_moves,omitempty"`
	KmigCost   int64         `json:"kmig_cost,omitempty"`
	Mach       machine.Stats `json:"mach"`
	PagesTotal int           `json:"pages_total,omitempty"` // hot pages monitored

	Verified  bool  `json:"verified"`
	VerifyErr error `json:"-"`

	// SteadyAt is the iteration at whose end the steady-state detector
	// (Config.SteadyState) proved the per-iteration delta repeats; 0 when
	// detection was off or never fired. ExtrapolatedIters is how many of
	// the trailing iterations were extrapolated instead of simulated
	// (Config.Extrapolate); their IterPS/PhasePS entries are the proven
	// per-iteration deltas, so the sum contracts over IterPS and TotalPS
	// hold exactly as in a fully simulated run.
	SteadyAt          int `json:"steady_at,omitempty"`
	ExtrapolatedIters int `json:"extrapolated_iters,omitempty"`
	// SteadyPeriod is the proven orbit length behind SteadyAt; omitted
	// (0) when detection never fired and elided when 1, so records from
	// the period-one era decode identically.
	SteadyPeriod int `json:"steady_period,omitempty"`
	// CampaignAt/CampaignIters report the analytic campaign fast-forward:
	// the iteration at whose end the kernel engine's remaining migration
	// campaign was proven deterministic and drained in closed form, and
	// how many iterations the drain covered. Those iterations' IterPS
	// entries are the analytically derived per-iteration times; the sum
	// contracts hold exactly as in a fully simulated run.
	CampaignAt    int `json:"campaign_at,omitempty"`
	CampaignIters int `json:"campaign_iters,omitempty"`

	// FastPath reports which host-time accelerations engaged and, when
	// the steady-state machinery was armed but declined, the typed
	// WhyNot diagnosis. Host-side metadata: excluded from the JSON form,
	// so store records and job-API payloads are byte-identical with or
	// without it, and zeroed by the bit-identity comparisons the
	// steady/campaign/elide tests run (it describes the host's path, not
	// the simulated physics).
	FastPath FastPath `json:"-"`
}

// Seconds returns the main-loop virtual time in seconds.
func (r Result) Seconds() float64 { return float64(r.TotalPS) / 1e12 }

// String summarises the run.
func (r Result) String() string {
	return fmt.Sprintf("%s.%s %-12s %8.4fs  iters=%d  remote=%.1f%%  upmMig=%d  kmig=%d",
		r.Kernel, r.Class, r.Label, r.Seconds(), len(r.IterPS),
		100*r.Mach.RemoteRatio(), r.UPM.Migrations+r.UPM.ReplayMigrations, r.KmigMoves)
}

// Run executes one benchmark under one configuration and returns its
// result. The protocol follows the paper:
//
//  1. allocate and initialise, 2. run one cold-start iteration (serial
//     mode, results discarded) so first-touch placement happens exactly as
//     in the tuned NAS codes, 3. reset counters, 4. run the timed main
//     loop with the configured migration engines, 5. verify.
//
// Steps 1–3 are engine-independent by construction (runPrefix reads no
// engine field of the config); RunPrefix/RunFromSnapshot exploit that to
// simulate them once per (class, placement, threads, seed, scale) tuple
// and fork machine clones for the engine variants.
func Run(build Builder, cfg Config) (Result, error) {
	var t0 time.Time
	if cfg.HostStages != nil {
		t0 = time.Now()
	}
	m, k, team, err := runPrefix(build, cfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.HostStages != nil {
		cfg.HostStages.Prefix += time.Since(t0)
	}
	return runMain(m, k, team, cfg)
}

// runPrefix performs the engine-independent prefix of a run: machine
// build, kernel build, the serial cold-start first-touch iteration, data
// reinitialisation and the counter reset. It reads only Class, Placement,
// Seed, ComputeScale, Threads, Topo, Tweak and Tracer from the config — never
// an engine or timed-loop field — which is what makes the state it
// produces shareable across engine variants (PrefixFingerprint keys
// exactly this field set).
func runPrefix(build Builder, cfg Config) (*machine.Machine, Kernel, *omp.Team, error) {
	mc := machine.DefaultConfig()
	cfg.Class.MachineTweak(&mc)
	if cfg.Topo != "" {
		// The shape overrides the class machine's node/CPU geometry (and,
		// for shapes with per-level latency, its ladder) but keeps its
		// page and cache geometry. Applied before Tweak so ablations can
		// still adjust a shaped machine.
		if err := mc.SetTopology(cfg.Topo); err != nil {
			return nil, nil, nil, err
		}
	}
	mc.Placement = cfg.Placement
	mc.Seed = cfg.Seed
	if cfg.Tweak != nil {
		cfg.Tweak(&mc)
	}
	m, err := machine.New(mc)
	if err != nil {
		return nil, nil, nil, err
	}
	// Attach before the cold start so first-touch faults are in the trace.
	// The effective tracer tees the user's Tracer with the Metrics
	// sampler, so both observe every machine- and engine-level emission.
	m.SetTracer(cfg.tracer())
	scale := cfg.ComputeScale
	if scale < 1 {
		scale = 1
	}
	k := build(m, cfg.Class, scale, cfg.Seed)

	threads := cfg.Threads
	if threads == 0 {
		threads = m.NumCPUs()
	}
	team, err := omp.NewTeam(m, threads)
	if err != nil {
		return nil, nil, nil, err
	}

	// Parallel initialisation plus one cold-start iteration: the tuned
	// NAS codes initialise in parallel and execute the complete parallel
	// computation once before the timed loop purely to let first-touch
	// place the pages. Serial mode makes fault resolution deterministic;
	// results are discarded.
	// Reference-counter rows accumulated here are dead state: the prefix
	// ends by resetting every row, so the per-miss bookkeeping below
	// would be discarded wholesale. Eliding it leaves the post-reset
	// machine bit-identical and shaves the cold start for every engine.
	m.SetRefCounting(false)
	team.SetSerial(true)
	k.InitTouch(team)
	k.Step(team, nil)
	team.SetSerial(false)
	k.Reinit()
	m.PT.ResetAllCounters()
	m.SetRefCounting(true)
	return m, k, team, nil
}

// runMain arms the configured migration engines and runs the timed main
// loop plus verification — everything after the divergence point. The
// kernel engine attaches here rather than before the cold start: a
// disabled engine's barrier hook is a pure no-op, so attaching the
// engine late is bit-identical to carrying it disabled through the
// prefix, and it keeps the prefix machine hook-free (barrier hooks are
// closures and cannot be cloned; see machine.Machine.Clone).
func runMain(m *machine.Machine, k Kernel, team *omp.Team, cfg Config) (Result, error) {
	if cfg.UPM == UPMRecRep && !k.HasPhase() {
		return Result{}, fmt.Errorf("nas: %s has no phase change; record-replay does not apply", k.Name())
	}

	// The kernel engine is enabled only for the timed loop: that is where
	// the paper's engines compete, and letting it repair placement during
	// the untimed cold start would credit it with free migrations no real
	// run gets.
	eng := kmig.Attach(m, cfg.Kmig)
	eng.SetEnabled(cfg.KernelMig)

	var u *upm.UPM
	if cfg.UPM != UPMOff {
		u = upm.Init(m, cfg.UPMOptions)
		for _, r := range k.HotPages() {
			u.MemRefCnt(r[0], r[1])
		}
	}

	// With no counter consumer — no kernel engine, no UPMlib, no sampler —
	// the per-page reference-counter rows are dead state: nothing reads
	// them before the run ends, so the per-miss CountMiss bookkeeping can
	// be skipped outright. This is the hot path of the plain-IRIX cells.
	if !cfg.KernelMig && cfg.UPM == UPMOff && cfg.Metrics == nil {
		m.SetRefCounting(false)
	}

	// Resident elision: arm the kernel's hot arrays so exact immediate
	// repeats of all-hit bulk reads over them replay as flat arithmetic.
	// Proven bit-identical — the replay re-validates residency and
	// coherence per run — so no engine or observer needs to know.
	if cfg.ResidentElide {
		m.SetResidentElide(true)
		m.ArmResidentPages(k.HotPages())
	}

	// The steady-state detector observes only; extrapolation additionally
	// requires Extrapolate. A sampler disables both — it must see every
	// iteration simulated to sample it.
	var det *steadyDetector
	if cfg.SteadyState && cfg.Metrics == nil {
		det = newSteadyDetector(m, eng, u, cfg.SteadyWindow, cfg.PeriodK, cfg.KernelMig)
	}
	// The campaign observer handles exactly the cells the detector cannot:
	// an ongoing kernel-migration campaign keeps the page-home hash moving,
	// so no counter orbit ever closes, but when the compute under it is
	// proven frozen (campaign.go) the campaign itself can be drained in
	// closed form. Armed only for extrapolating kernel-engine runs with no
	// user-level engine and no scheduler perturbation.
	var camp *campaignObserver
	if det != nil && cfg.Extrapolate && cfg.KernelMig && cfg.UPM == UPMOff &&
		!cfg.NoCampaignFF && cfg.PerturbAt == 0 {
		camp = newCampaignObserver(m, eng, cfg.SteadyWindow)
	}

	master := team.Master()
	res := Result{Kernel: k.Name(), Label: cfg.Label(), Class: cfg.Class, ColdPS: master.Now()}
	niter := cfg.Iterations
	if niter == 0 {
		niter = k.DefaultIterations()
	}
	// Arm the sampler at the head of the timed loop: the baseline sample
	// records the post-reset state every engine starts from, and event
	// tallies from the untimed cold start are discarded.
	if cfg.Metrics != nil {
		cfg.Metrics.Start(m, k.HotPages(), master.Now())
	}
	trc := cfg.tracer()
	start := master.Now()
	reactivated := false
	nkey := numericKey(k.Name(), cfg, niter, len(team.Binding()))
	var tailVerdict verdict
	haveTail := false
	// Host-stage accounting: accumulated locally and folded into the
	// sink after the loop, so TimedLoop is the loop's wall time minus
	// the analytic and free-run spans it contains.
	hs := cfg.HostStages
	var loopStart time.Time
	var extraHost, freeHost time.Duration
	if hs != nil {
		loopStart = time.Now()
	}
	for step := 1; step <= niter; step++ {
		iterStart := master.Now()
		if trc != nil {
			trc.Emit(trace.Event{Time: iterStart, CPU: master.ID,
				Kind: trace.EvIterStart, Arg0: int64(step)})
		}
		hooks := stepHooks(u, cfg.UPM, step)
		if camp != nil && !camp.disabled {
			camp.armPhase(hooks)
		}
		k.Step(team, hooks)
		// Sample between the step's compute and the engine invocation:
		// this is the last point where the reference-counter rows hold
		// the iteration's accumulated refs (MigrateMemory resets the
		// rows it scans).
		if cfg.Metrics != nil {
			cfg.Metrics.SampleIteration(step, master.Now())
		}
		switch cfg.UPM {
		case UPMDistribute:
			// Figure 2: invoke after step 1 and then for as long as
			// the previous invocation migrated something (or after a
			// scheduler perturbation re-armed the engine).
			if step == 1 || reactivated || (u.Active() && u.LastMigrations() > 0) {
				u.MigrateMemory(master)
				reactivated = false
			}
		case UPMRecRep:
			// Figure 3: the initial distribution is approximated
			// after the first iteration only.
			if step == 1 {
				u.MigrateMemory(master)
			}
		}
		if trc != nil {
			trc.Emit(trace.Event{Time: master.Now(), CPU: master.ID,
				Kind: trace.EvIterEnd, Arg0: int64(step), Arg1: master.Now() - iterStart})
		}
		res.IterPS = append(res.IterPS, master.Now()-iterStart)
		if hooks != nil {
			res.PhasePS = append(res.PhasePS, hooks.phasePS)
		} else {
			res.PhasePS = append(res.PhasePS, 0)
		}
		if cfg.PerturbAt != 0 && step == cfg.PerturbAt {
			// The "OS" migrates every thread one node over.
			perm := team.Binding()
			shift := m.Cfg.CPUsPerNode
			rotated := make([]int, len(perm))
			for i := range perm {
				rotated[i] = perm[(i+shift)%len(perm)]
			}
			if err := team.SetBinding(rotated); err != nil {
				return Result{}, err
			}
			master = team.Master()
			if u != nil {
				u.Reactivate()
				reactivated = true
			}
		}
		// Observe after the iteration's full effect — engine invocations
		// and any perturbation included. Before PerturbAt the loop is
		// about to be disturbed, so observation starts past it.
		if det == nil || (cfg.PerturbAt != 0 && step <= cfg.PerturbAt) {
			continue
		}
		if !det.observe(res.IterPS[step-1], res.PhasePS[step-1]) {
			// No orbit closed — the campaign observer gets its look at the
			// same snapshot. A proven campaign is drained in closed form,
			// its iterations free-run for the numerics, and detection
			// restarts fresh in the post-campaign regime.
			if camp != nil && camp.observe(det.lastDelta(),
				res.IterPS[step-1], res.PhasePS[step-1], master.Now()) {
				plan := camp.drain(niter - step)
				camp.disabled = true
				if plan.V > 0 {
					m.PT = plan.clone
					eng.CommitCampaign(plan.cur, plan.moved, plan.rejected, plan.cost)
					m.ApplyCounterDelta(camp.machineDelta(), int64(plan.V))
					m.ApplyCounterDelta(camp.clockDelta(plan.cost), 1)
					res.CampaignAt = step
					res.CampaignIters = plan.V
					var addPS int64
					for _, v := range plan.iterPS {
						addPS += v
					}
					res.IterPS = append(res.IterPS, plan.iterPS...)
					res.PhasePS = append(res.PhasePS, plan.phasePS...)
					if trc != nil {
						trc.Emit(trace.Event{Time: master.Now(), CPU: master.ID,
							Kind: trace.EvCampaignFF, Arg0: int64(plan.V), Arg1: addPS})
					}
					// Free-run the drained steps so the numerics stay on
					// the exact trajectory (compute provably never reads
					// what the campaign moved, but Verify needs the values).
					var t0 time.Time
					if hs != nil {
						t0 = time.Now()
					}
					m.SetFreeRun(true)
					for fs := 0; fs < plan.V; fs++ {
						k.Step(team, &Hooks{})
					}
					m.SetFreeRun(false)
					if hs != nil {
						freeHost += time.Since(t0)
					}
					step += plan.V
					det = newSteadyDetector(m, eng, u, cfg.SteadyWindow, cfg.PeriodK, cfg.KernelMig)
				}
			}
			continue
		}
		{
			res.SteadyAt = step
			if p := det.period(); p > 1 {
				res.SteadyPeriod = p
			}
			if trc != nil {
				trc.Emit(trace.Event{Time: master.Now(), CPU: master.ID,
					Kind: trace.EvSteadyState, Arg0: int64(step), Arg1: int64(det.window)})
			}
			r := int64(niter - step)
			if !cfg.Extrapolate || r == 0 {
				// Detection-only: record the iteration and keep simulating.
				det = nil
				continue
			}
			var t0 time.Time
			if hs != nil {
				t0 = time.Now()
			}
			det.fastForward(r)
			res.ExtrapolatedIters += int(r)
			period := det.period()
			var addedIter int64
			for i := int64(0); i < r; i++ {
				dIter, dPhase := det.cycleIterPhase(int(i) % period)
				res.IterPS = append(res.IterPS, dIter)
				res.PhasePS = append(res.PhasePS, dPhase)
				addedIter += dIter
			}
			if hs != nil {
				extraHost += time.Since(t0)
			}
			if trc != nil {
				// Stamped with the post-jump clock; Summarize treats it as
				// the timed loop's final mark.
				trc.Emit(trace.Event{Time: master.Now(), CPU: master.ID,
					Kind: trace.EvExtrapolate, Arg0: r, Arg1: addedIter})
			}
			// The tail's numerics have exactly one consumer: Verify. When
			// its answer is already known — the check is skipped, or a run
			// with the same numeric trajectory verified it (VerifyCache) —
			// re-executing the remaining steps is pure waste.
			if cfg.SkipVerify {
				break
			}
			if cfg.TailCache != nil {
				if v, ok := cfg.TailCache.get(nkey); ok {
					tailVerdict, haveTail = v, true
					break
				}
			}
			// Re-execute the remaining steps in free-run mode: clocks are
			// frozen and accesses charge nothing, but the kernel's data
			// advances exactly as a simulated run's would, so Verify sees
			// the true final numerics. Engine calls are skipped (empty
			// hooks, no MigrateMemory) — on the proven period-one orbit
			// they only move time and page homes, never kernel values.
			if hs != nil {
				t0 = time.Now()
			}
			m.SetFreeRun(true)
			for fs := step + 1; fs <= niter; fs++ {
				k.Step(team, &Hooks{})
			}
			m.SetFreeRun(false)
			if hs != nil {
				freeHost += time.Since(t0)
			}
			break
		}
	}
	res.TotalPS = master.Now() - start
	if hs != nil {
		hs.TimedLoop += time.Since(loopStart) - extraHost - freeHost
		hs.Extrapolate += extraHost
		hs.FreeRunTail += freeHost
	}

	if u != nil {
		res.UPM = u.Stats()
	}
	res.KmigMoves = eng.Migrations()
	res.KmigCost = eng.Cost()
	res.Mach = m.Stats()
	for _, r := range k.HotPages() {
		res.PagesTotal += int(r[1] - r[0])
	}
	if !cfg.SkipVerify {
		var t0 time.Time
		if hs != nil {
			t0 = time.Now()
		}
		if haveTail {
			res.Verified, res.VerifyErr = tailVerdict.verified, tailVerdict.err
		} else {
			res.VerifyErr = k.Verify()
			res.Verified = res.VerifyErr == nil
			if cfg.TailCache != nil {
				cfg.TailCache.put(nkey, verdict{res.Verified, res.VerifyErr})
			}
		}
		if hs != nil {
			hs.Verify += time.Since(t0)
		}
	}
	res.FastPath = FastPath{
		SteadyDetected: res.SteadyAt > 0,
		Extrapolated:   res.ExtrapolatedIters > 0,
		CampaignFF:     res.CampaignIters > 0,
		ResidentElide:  cfg.ResidentElide,
		TailCacheHit:   haveTail,
	}
	if cfg.SteadyState && res.ExtrapolatedIters == 0 && res.CampaignIters == 0 {
		res.FastPath.WhyNot = runWhyNot(cfg, det, res)
	}
	return res, nil
}

// runWhyNot builds the typed diagnosis for a run whose steady-state
// machinery was armed but never fast-forwarded anything: the sampler
// veto, the proven-but-declined cases, or — when detection itself never
// fired — the detector's own evidence of what broke the orbit.
func runWhyNot(cfg Config, det *steadyDetector, res Result) *WhyNot {
	switch {
	case cfg.Metrics != nil:
		return &WhyNot{Reason: WhyNotSampler}
	case res.SteadyAt > 0:
		p := res.SteadyPeriod
		if p == 0 {
			p = 1
		}
		w := &WhyNot{BestPeriod: p, Observed: res.SteadyAt}
		if cfg.Extrapolate {
			w.Reason = WhyNotNoTail
		} else {
			w.Reason = WhyNotDetectionOnly
		}
		return w
	case det != nil:
		return det.diagnose(cfg.PerturbAt)
	}
	return nil
}

// stepHooks builds the record–replay hooks of the paper's Figure 3 for
// the given step: step 2 records around the phase and compares; later
// steps replay before it and undo after it.
func stepHooks(u *upm.UPM, mode Mode, step int) *Hooks {
	if u == nil || mode != UPMRecRep {
		return &Hooks{}
	}
	h := &Hooks{}
	switch {
	case step == 1:
		// Plain first iteration; MigrateMemory runs after it.
	case step == 2:
		h.BeforePhase = func(c *machine.CPU) { u.Record(c) }
		h.AfterPhase = func(c *machine.CPU) {
			u.Record(c)
			u.CompareCounters(c)
		}
	default:
		h.BeforePhase = func(c *machine.CPU) { u.Replay(c) }
		h.AfterPhase = func(c *machine.CPU) { u.Undo(c) }
	}
	return h
}

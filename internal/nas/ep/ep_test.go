package ep

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkEP(t *testing.T) (*machine.Machine, *EP, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	e := New(m, nas.ClassS, 1, 9).(*EP)
	return m, e, omp.MustTeam(m, m.NumCPUs())
}

func TestVerifyAgainstHostReplay(t *testing.T) {
	_, e, team := mkEP(t)
	for i := 0; i < 3; i++ {
		e.Step(team, nil)
	}
	if e.Accepted() == 0 {
		t.Fatal("no pairs accepted")
	}
	if err := e.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestAcceptanceRateIsPiOver4ish(t *testing.T) {
	_, e, team := mkEP(t)
	e.Step(team, nil)
	rate := float64(e.Accepted()) / float64(e.pairs)
	if rate < 0.72 || rate > 0.84 { // pi/4 ~ 0.785
		t.Errorf("acceptance rate %.3f, want ~0.785", rate)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: vm.WorstCase, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("EP failed verification: %v", r.VerifyErr)
	}
}

// The control property: EP has (almost) no shared data, so even the
// worst-case placement must cost only a few percent.
func TestEPIsPlacementInsensitive(t *testing.T) {
	run := func(p vm.Policy) float64 {
		r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: p, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return r.Seconds()
	}
	ft, wc := run(vm.FirstTouch), run(vm.WorstCase)
	if slow := wc/ft - 1; slow > 0.05 {
		t.Errorf("EP wc slowdown %.1f%%, want < 5%% (embarrassingly parallel)", 100*slow)
	}
}

// Package ep is an extension benchmark: NAS EP (embarrassingly parallel),
// the control case for the placement experiments. EP generates pairs of
// uniform deviates, applies the Box–Muller acceptance test and tallies the
// Gaussian deviates into ten concentric annuli. Apart from the final
// reduction it touches no shared data, so *no* page placement scheme can
// hurt it — the paper's argument is about codes with shared-memory
// locality, and EP shows the experiments measure exactly that and not some
// simulator artefact.
package ep

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// EP is one problem instance.
type EP struct {
	m     *machine.Machine
	pairs int // random pairs per iteration
	iters int
	scale int
	seed  uint64

	// Shared result table: one row of annulus counts per thread, plus
	// the global sums (written once per iteration in a reduction-style
	// region). Tiny, but it is the only shared data, matching NAS EP.
	counts *machine.Array // threads x 10

	sumX, sumY float64
	accepted   int64
	steps      int // step() calls since Reinit (Verify replays them)
}

// New builds an EP instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	pairs, iters := 1<<12, 4
	switch class {
	case nas.ClassW:
		pairs, iters = 1<<15, 6
	case nas.ClassA:
		pairs, iters = 1<<20, 6
	}
	e := &EP{m: m, pairs: pairs, iters: iters, scale: scale, seed: seed}
	e.counts = m.NewArray("counts", m.NumCPUs()*10)
	e.Reinit()
	return e
}

// Name returns "EP".
func (e *EP) Name() string { return "EP" }

// DefaultIterations returns the class's iteration count.
func (e *EP) DefaultIterations() int { return e.iters }

// HasPhase reports no phase change.
func (e *EP) HasPhase() bool { return false }

// HotPages returns the single shared table.
func (e *EP) HotPages() [][2]uint64 {
	lo, hi := e.counts.PageRange()
	return [][2]uint64{{lo, hi}}
}

// Reinit clears the tallies.
func (e *EP) Reinit() {
	clear(e.counts.Data())
	e.sumX, e.sumY, e.accepted, e.steps = 0, 0, 0, 0
}

// InitTouch writes each thread's count row.
func (e *EP) InitTouch(t *omp.Team) {
	t.Parallel(func(tr *omp.Thread) {
		for q := 0; q < 10; q++ {
			e.counts.Set(tr.CPU, tr.ID*10+q, 0)
		}
	})
}

// lcg is NAS EP's multiplicative congruential generator (mod 2^46).
type lcg struct{ s uint64 }

const (
	lcgMult = 0x5DEECE66D        // a well-tested 2^46 MLCG multiplier
	lcgMask = (1 << 46) - 1      // modulus 2^46
	lcgNorm = 1.0 / (1 << 46)    // to (0,1)
	lcgSkip = 0x2545F4914F6CDD1D // stream-splitting stride
)

func (g *lcg) next() float64 {
	g.s = (g.s*lcgMult + 0xB) & lcgMask
	return float64(g.s) * lcgNorm
}

// Step generates pairs, tallies the accepted Gaussian deviates by annulus
// into the thread's own row of the shared table, and reduces the sums.
func (e *EP) Step(t *omp.Team, h *nas.Hooks) {
	for s := 0; s < e.scale; s++ {
		e.step(t)
	}
}

func (e *EP) step(t *omp.Team) {
	e.steps++
	iter := e.accepted // only used to vary the stream per iteration
	var totX, totY float64
	var acc int64
	t.Parallel(func(tr *omp.Thread) {
		c := tr.CPU
		g := lcg{s: (e.seed + uint64(tr.ID)*lcgSkip + uint64(iter)) & lcgMask}
		var sx, sy float64
		var myAcc int64
		n := e.pairs / t.Size()
		for i := 0; i < n; i++ {
			x := 2*g.next() - 1
			y := 2*g.next() - 1
			tsq := x*x + y*y
			c.Flops(8)
			if tsq > 1 || tsq == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(tsq) / tsq)
			gx, gy := f*x, f*y
			sx += gx
			sy += gy
			myAcc++
			q := int(math.Max(math.Abs(gx), math.Abs(gy)))
			if q > 9 {
				q = 9
			}
			e.counts.Add(c, tr.ID*10+q, 1)
			c.Flops(12)
		}
		sx = tr.ReduceSum(sx)
		sy = tr.ReduceSum(sy)
		myAcc = int64(tr.ReduceSum(float64(myAcc)))
		if tr.ID == 0 {
			totX, totY, acc = sx, sy, myAcc
		}
		tr.Barrier()
	})
	e.sumX += totX
	e.sumY += totY
	e.accepted += acc
}

// Verify recomputes the tallies on the host with the same generator and
// checks the sums and the annulus table.
func (e *EP) Verify() error {
	var refX, refY float64
	var refAcc int64
	refCounts := make([]float64, 10)
	var iterBase int64
	for it := 0; it < e.steps; it++ {
		iterAcc := int64(0)
		for id := 0; id < e.m.NumCPUs(); id++ {
			g := lcg{s: (e.seed + uint64(id)*lcgSkip + uint64(iterBase)) & lcgMask}
			n := e.pairs / e.m.NumCPUs()
			for i := 0; i < n; i++ {
				x := 2*g.next() - 1
				y := 2*g.next() - 1
				tsq := x*x + y*y
				if tsq > 1 || tsq == 0 {
					continue
				}
				f := math.Sqrt(-2 * math.Log(tsq) / tsq)
				gx, gy := f*x, f*y
				refX += gx
				refY += gy
				refAcc++
				iterAcc++
				q := int(math.Max(math.Abs(gx), math.Abs(gy)))
				if q > 9 {
					q = 9
				}
				refCounts[q]++
			}
		}
		iterBase += iterAcc
	}
	if refAcc != e.accepted {
		return fmt.Errorf("ep: accepted %d pairs, reference %d", e.accepted, refAcc)
	}
	if math.Abs(refX-e.sumX) > 1e-9*math.Abs(refX)+1e-12 ||
		math.Abs(refY-e.sumY) > 1e-9*math.Abs(refY)+1e-12 {
		return fmt.Errorf("ep: sums (%g,%g) differ from reference (%g,%g)", e.sumX, e.sumY, refX, refY)
	}
	data := e.counts.Data()
	for q := 0; q < 10; q++ {
		var got float64
		for id := 0; id < e.m.NumCPUs(); id++ {
			got += data[id*10+q]
		}
		if got != refCounts[q] {
			return fmt.Errorf("ep: annulus %d count %g, reference %g", q, got, refCounts[q])
		}
	}
	return nil
}

// Accepted returns the number of accepted pairs so far (for tests).
func (e *EP) Accepted() int64 { return e.accepted }

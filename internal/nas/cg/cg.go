// Package cg reproduces NAS CG: estimating the smallest eigenvalue of a
// large sparse symmetric positive-definite matrix with inverse power
// iteration, where each outer step solves A z = x by conjugate gradient.
// The memory signature is the one the paper discusses: the CSR matrix is
// row-partitioned (local under tuned first-touch), while the gather
// x[colidx[k]] in the sparse mat-vec scatters reads across every node's
// pages irrespective of placement.
//
// The matrix is a randomly sparsified symmetric diagonally-dominant
// matrix built from a seeded generator (NAS's makea also builds a random
// sparse SPD matrix); CG therefore converges provably and Verify checks
// the true residual of the final solve plus the stability of the
// eigenvalue estimate.
package cg

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// CG is one problem instance.
type CG struct {
	m      *machine.Machine
	n      int // matrix order
	nonzer int // off-diagonal nonzeros per row (approximate)
	outer  int // outer power-iteration steps (the timed iterations)
	inner  int // CG steps per outer iteration
	shift  float64
	scale  int

	rowstr *machine.IntArray // CSR row starts, len n+1
	colidx *machine.IntArray // CSR column indices
	a      *machine.Array    // CSR values
	x      *machine.Array    // current eigenvector estimate
	z      *machine.Array    // CG solution
	p, q   *machine.Array    // CG direction and A*p
	r      *machine.Array    // CG residual

	zeta     float64
	zetaPrev float64

	// host-side copies for verification
	valsH []float64
	colH  []int32
	rowH  []int32
	xPrev []float64 // x before the last CG solve (the solve's rhs)
}

// New builds a CG instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, nonzer, outer, inner := 700, 8, 4, 10
	switch class {
	case nas.ClassW:
		n, nonzer, outer, inner = 4000, 10, 8, 12
	case nas.ClassA:
		n, nonzer, outer, inner = 14000, 11, 15, 25
	}
	c := &CG{m: m, n: n, nonzer: nonzer, outer: outer, inner: inner, shift: 20, scale: scale}
	c.build(seed)
	c.Reinit()
	return c
}

// Name returns "CG".
func (c *CG) Name() string { return "CG" }

// DefaultIterations returns the outer step count.
func (c *CG) DefaultIterations() int { return c.outer }

// HasPhase reports no record–replay phase (CG has a uniform pattern).
func (c *CG) HasPhase() bool { return false }

// HotPages returns the spans of every shared array involved in the solve.
func (c *CG) HotPages() [][2]uint64 {
	var out [][2]uint64
	add := func(lo, hi uint64) { out = append(out, [2]uint64{lo, hi}) }
	add(c.a.PageRange())
	add(c.colidx.PageRange())
	add(c.x.PageRange())
	add(c.z.PageRange())
	add(c.p.PageRange())
	add(c.q.PageRange())
	add(c.r.PageRange())
	return out
}

// rng is a splitmix64 stream.
type rng struct{ s uint64 }

func (g *rng) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *rng) float() float64 { return float64(g.next()>>11) / float64(1<<53) }

func (g *rng) intn(n int) int { return int(g.next() % uint64(n)) }

// build constructs the sparse SPD matrix in CSR form: for each row i,
// nonzer random off-diagonal entries (symmetrised by construction of the
// pattern per row pair) with small positive weights, and a diagonal that
// strictly dominates the row, shifted by the eigenvalue shift.
func (c *CG) build(seed uint64) {
	g := rng{s: seed*2654435761 + 12345}
	n := c.n
	// Build the symmetric pattern host-side first.
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64, c.nonzer*2)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < c.nonzer; k++ {
			j := g.intn(n)
			if j == i {
				continue
			}
			w := -g.float() // negative off-diagonals: an M-matrix
			adj[i][j] = w
			adj[j][i] = w
		}
	}
	nnz := n // diagonals
	for i := range adj {
		nnz += len(adj[i])
	}
	c.rowstr = c.m.NewIntArray("rowstr", n+1)
	c.colidx = c.m.NewIntArray("colidx", nnz)
	c.a = c.m.NewArray("a", nnz)
	c.x = c.m.NewArray("x", n)
	c.z = c.m.NewArray("z", n)
	c.p = c.m.NewArray("p", n)
	c.q = c.m.NewArray("q", n)
	c.r = c.m.NewArray("r", n)

	rowH := c.rowstr.Data()
	colH := c.colidx.Data()
	vals := c.a.Data()
	pos := 0
	for i := 0; i < n; i++ {
		rowH[i] = int32(pos)
		var rowSum float64
		// Deterministic column order: ascending.
		cols := make([]int, 0, len(adj[i])+1)
		for j := range adj[i] {
			cols = append(cols, j)
		}
		sortInts(cols)
		diagAt := -1
		for _, j := range cols {
			if j > i && diagAt < 0 {
				diagAt = pos
				pos++ // reserve diagonal slot
			}
			colH[pos] = int32(j)
			vals[pos] = adj[i][j]
			rowSum += math.Abs(adj[i][j])
			pos++
		}
		if diagAt < 0 {
			diagAt = pos
			pos++
		}
		colH[diagAt] = int32(i)
		vals[diagAt] = rowSum + 1 // strict diagonal dominance: SPD
		rowH[i+1] = int32(pos)
	}
	rowH[n] = int32(pos)
	c.valsH = vals
	c.colH = colH
	c.rowH = rowH
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Reinit restores the initial eigenvector estimate.
func (c *CG) Reinit() {
	x := c.x.Data()
	for i := range x {
		x[i] = 1
	}
	clear(c.z.Data())
	clear(c.p.Data())
	clear(c.q.Data())
	clear(c.r.Data())
	c.zeta, c.zetaPrev = 0, math.Inf(1)
}

// InitTouch writes every array with the row partitioning of the solve
// loops (NAS CG's makea and initialisation loops are parallel).
func (c *CG) InitTouch(t *omp.Team) {
	n := c.n
	rowH := c.rowH
	valsH := c.valsH
	colH := c.colH
	t.ParallelNamed("init", func(tr *omp.Thread) {
		tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
			cnt := to - from
			if cnt <= 0 {
				return
			}
			xw := c.x.MutRun(cpu, from, cnt)
			for i := range xw {
				xw[i] = 1
			}
			clear(c.z.MutRun(cpu, from, cnt))
			clear(c.p.MutRun(cpu, from, cnt))
			clear(c.q.MutRun(cpu, from, cnt))
			clear(c.r.MutRun(cpu, from, cnt))
			copy(c.rowstr.MutRun(cpu, from, cnt), rowH[from:to])
			lo, hi := int(rowH[from]), int(rowH[to])
			copy(c.a.MutRun(cpu, lo, hi-lo), valsH[lo:hi])
			copy(c.colidx.MutRun(cpu, lo, hi-lo), colH[lo:hi])
		})
	})
}

// Step performs one outer power-iteration step: solve A z = x with CG,
// update zeta and renormalise x (NAS CG's timed iteration).
func (c *CG) Step(t *omp.Team, h *nas.Hooks) {
	c.xPrev = append(c.xPrev[:0], c.x.Data()...) // rhs of this solve (host copy)
	for s := 0; s < c.scale; s++ {
		c.conjGrad(t)
	}
	// zeta and normalisation.
	n := c.n
	var xz float64
	t.ParallelNamed("zeta_norm", func(tr *omp.Thread) {
		var sxz, szz float64
		tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
			if to <= from {
				return
			}
			zr := c.z.GetRun(cpu, from, to-from)
			xr := c.x.GetRun(cpu, from, to-from)
			for i, zi := range zr {
				sxz += xr[i] * zi
				szz += zi * zi
			}
			cpu.Flops(4 * (to - from))
		}, omp.Nowait)
		sxz = tr.ReduceSum(sxz)
		szz = tr.ReduceSum(szz)
		if tr.ID == 0 {
			xz = sxz
		}
		norm := 1 / math.Sqrt(szz)
		tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
			if to <= from {
				return
			}
			zr := c.z.GetRun(cpu, from, to-from)
			xw := c.x.MutRun(cpu, from, to-from)
			for i, zi := range zr {
				xw[i] = zi * norm
			}
			cpu.Flops(to - from)
		})
	})
	c.zetaPrev = c.zeta
	c.zeta = c.shift + 1/xz
}

// conjGrad runs c.inner CG steps on A z = x starting from z = 0.
func (c *CG) conjGrad(t *omp.Team) {
	n := c.n
	var rho float64
	t.ParallelNamed("conj_grad", func(tr *omp.Thread) {
		// z = 0, r = x, p = r.
		var s float64
		tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
			if to <= from {
				return
			}
			xr := c.x.GetRun(cpu, from, to-from)
			clear(c.z.MutRun(cpu, from, to-from))
			copy(c.r.MutRun(cpu, from, to-from), xr)
			copy(c.p.MutRun(cpu, from, to-from), xr)
			for _, xi := range xr {
				s += xi * xi
			}
			cpu.Flops(2 * (to - from))
		}, omp.Nowait)
		s = tr.ReduceSum(s)
		if tr.ID == 0 {
			rho = s
		}
		tr.Barrier()

		for it := 0; it < c.inner; it++ {
			// q = A p. The CSR row of a and colidx is contiguous and
			// becomes one run per row; the gather p[colidx[k]] stays a
			// per-element access — its scatter across every node's pages
			// is the memory signature the paper discusses, and no run can
			// represent it.
			var pq float64
			tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
				if to <= from {
					return
				}
				rs := c.rowstr.GetRun(cpu, from, to-from)
				re := c.rowstr.GetRun(cpu, from+1, to-from)
				pr := c.p.GetRun(cpu, from, to-from)
				qw := c.q.MutRun(cpu, from, to-from)
				for i := from; i < to; i++ {
					lo, hi := int(rs[i-from]), int(re[i-from])
					av := c.a.GetRun(cpu, lo, hi-lo)
					cv := c.colidx.GetRun(cpu, lo, hi-lo)
					var sum float64
					for k, ak := range av {
						sum += ak * c.p.Get(cpu, int(cv[k]))
					}
					qw[i-from] = sum
					pq += pr[i-from] * sum
					cpu.Flops(2 * (hi - lo))
				}
			}, omp.Nowait)
			pq = tr.ReduceSum(pq)
			alpha := rho / pq

			// z += alpha p; r -= alpha q; rhoNew = r.r.
			var rr float64
			tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
				if to <= from {
					return
				}
				pr := c.p.GetRun(cpu, from, to-from)
				qr := c.q.GetRun(cpu, from, to-from)
				rv := c.r.GetRun(cpu, from, to-from)
				zw := c.z.MutRun(cpu, from, to-from)
				rw := c.r.MutRun(cpu, from, to-from)
				for i := range pr {
					zw[i] += alpha * pr[i]
					ri := rv[i] - alpha*qr[i]
					rw[i] = ri
					rr += ri * ri
				}
				cpu.Flops(6 * (to - from))
			}, omp.Nowait)
			rr = tr.ReduceSum(rr)
			beta := rr / rho

			// p = r + beta p.
			tr.For(0, n, omp.Static(), func(cpu *machine.CPU, from, to int) {
				if to <= from {
					return
				}
				rv := c.r.GetRun(cpu, from, to-from)
				pv := c.p.GetRun(cpu, from, to-from)
				pw := c.p.MutRun(cpu, from, to-from)
				for i := range rv {
					pw[i] = rv[i] + beta*pv[i]
				}
				cpu.Flops(2 * (to - from))
			})
			if tr.ID == 0 {
				rho = rr
			}
			tr.Barrier()
		}
	})
}

// Zeta returns the current eigenvalue estimate.
func (c *CG) Zeta() float64 { return c.zeta }

// SolveResidual returns the relative residual ||A z - x_prev|| / ||x_prev||
// of the most recent CG solve, computed on the host.
func (c *CG) SolveResidual() float64 {
	if c.xPrev == nil {
		return math.Inf(1)
	}
	n := c.n
	z := c.z.Data()
	var num, den float64
	for i := 0; i < n; i++ {
		var s float64
		for k := c.rowH[i]; k < c.rowH[i+1]; k++ {
			s += c.valsH[k] * z[c.colH[k]]
		}
		d := s - c.xPrev[i]
		num += d * d
		den += c.xPrev[i] * c.xPrev[i]
	}
	return math.Sqrt(num / den)
}

// Verify checks that the final CG solve genuinely solved A z = x_prev and
// that the eigenvalue estimate stabilised and lies in the Gershgorin range
// of the shifted matrix.
func (c *CG) Verify() error {
	res := c.SolveResidual()
	if math.IsNaN(res) || res > 1e-6 {
		return fmt.Errorf("cg: final solve residual %g, want <= 1e-6", res)
	}
	if math.Abs(c.zeta-c.zetaPrev) > 1e-2*math.Abs(c.zeta) {
		return fmt.Errorf("cg: zeta did not stabilise: %g vs %g", c.zeta, c.zetaPrev)
	}
	// zeta - shift = 1/(x.z) must lie within the Gershgorin spectrum of A
	// (x is unit-norm, z = A^-1 x, so 1/(x.z) is between the extreme
	// eigenvalues).
	lo, hi := c.gershgorin()
	if est := c.zeta - c.shift; est < lo-1e-9 || est > hi+1e-9 {
		return fmt.Errorf("cg: zeta-shift = %g outside the Gershgorin range [%g, %g]", est, lo, hi)
	}
	return nil
}

// gershgorin returns the Gershgorin eigenvalue bounds of A.
func (c *CG) gershgorin() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < c.n; i++ {
		var diag, off float64
		for k := c.rowH[i]; k < c.rowH[i+1]; k++ {
			if int(c.colH[k]) == i {
				diag = c.valsH[k]
			} else {
				off += math.Abs(c.valsH[k])
			}
		}
		lo = math.Min(lo, diag-off)
		hi = math.Max(hi, diag+off)
	}
	return lo, hi
}

package cg

import (
	"math"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkCG(t *testing.T) (*machine.Machine, *CG, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	c := New(m, nas.ClassS, 1, 7).(*CG)
	return m, c, omp.MustTeam(m, m.NumCPUs())
}

func TestMatrixIsSymmetricAndDominant(t *testing.T) {
	_, c, _ := mkCG(t)
	// Rebuild a dense map and check A[i][j] == A[j][i] and dominance.
	entries := make(map[[2]int]float64)
	for i := 0; i < c.n; i++ {
		var diag, off float64
		for k := c.rowH[i]; k < c.rowH[i+1]; k++ {
			j := int(c.colH[k])
			entries[[2]int{i, j}] = c.valsH[k]
			if j == i {
				diag = c.valsH[k]
			} else {
				off += math.Abs(c.valsH[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant: diag %g vs off %g", i, diag, off)
		}
	}
	for ij, v := range entries {
		if w, ok := entries[[2]int{ij[1], ij[0]}]; !ok || w != v {
			t.Fatalf("asymmetry at %v: %g vs %g", ij, v, w)
		}
	}
}

func TestCSRRowsSortedAndSelfConsistent(t *testing.T) {
	_, c, _ := mkCG(t)
	for i := 0; i < c.n; i++ {
		prev := -1
		for k := c.rowH[i]; k < c.rowH[i+1]; k++ {
			j := int(c.colH[k])
			if j <= prev {
				t.Fatalf("row %d columns not strictly ascending at k=%d", i, k)
			}
			if j < 0 || j >= c.n {
				t.Fatalf("row %d column %d out of range", i, j)
			}
			prev = j
		}
	}
	if int(c.rowH[c.n]) != c.a.Len() {
		t.Errorf("rowstr[n] = %d, want nnz %d", c.rowH[c.n], c.a.Len())
	}
}

func TestCGSolvesSystem(t *testing.T) {
	_, c, team := mkCG(t)
	c.Step(team, nil)
	if res := c.SolveResidual(); res > 1e-8 {
		t.Errorf("CG residual %g after one outer step, want tiny (well-conditioned matrix)", res)
	}
}

func TestZetaConvergesIntoSpectrum(t *testing.T) {
	_, c, team := mkCG(t)
	for i := 0; i < c.DefaultIterations(); i++ {
		c.Step(team, nil)
	}
	lo, hi := c.gershgorin()
	if est := c.Zeta() - c.shift; est < lo || est > hi {
		t.Errorf("zeta-shift %g outside spectrum bounds [%g,%g]", est, lo, hi)
	}
	if err := c.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestDeterministicAcrossSeedsAndPlacements(t *testing.T) {
	run := func(p vm.Policy) float64 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		c := New(m, nas.ClassS, 1, 7).(*CG)
		team := omp.MustTeam(m, m.NumCPUs())
		for i := 0; i < 3; i++ {
			c.Step(team, nil)
		}
		return c.Zeta()
	}
	if a, b := run(vm.FirstTouch), run(vm.WorstCase); a != b {
		t.Errorf("zeta depends on placement: %v vs %v", a, b)
	}
}

func TestSeedChangesMatrix(t *testing.T) {
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m1 := machine.MustNew(mc)
	c1 := New(m1, nas.ClassS, 1, 1).(*CG)
	m2 := machine.MustNew(mc)
	c2 := New(m2, nas.ClassS, 1, 2).(*CG)
	if c1.a.Len() == c2.a.Len() {
		same := true
		for i := range c1.valsH {
			if c1.valsH[i] != c2.valsH[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical matrices")
		}
	}
}

func TestHotPagesCoverSolveArrays(t *testing.T) {
	_, c, _ := mkCG(t)
	if got := len(c.HotPages()); got != 7 {
		t.Errorf("HotPages = %d ranges, want 7", got)
	}
}

func TestGatherTrafficIsRemoteHeavyEvenUnderFirstTouch(t *testing.T) {
	// The sparse matvec's x[colidx[k]] gather reads pages of x owned by
	// every node; under first-touch the overall remote ratio of CG should
	// therefore sit clearly above the BT-style stencil codes' x/y phases.
	m, c, team := mkCG(t)
	team.SetSerial(true)
	c.InitTouch(team)
	team.SetSerial(false)
	c.Step(team, nil)
	s := m.Stats()
	if s.RemoteMem == 0 {
		t.Fatal("no remote traffic at all")
	}
	if r := s.RemoteRatio(); r < 0.2 {
		t.Errorf("remote ratio %.2f; the gather should produce substantial remote traffic", r)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: vm.RoundRobin, UPM: nas.UPMDistribute, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("CG run failed verification: %v", r.VerifyErr)
	}
}

func TestRecRepRejected(t *testing.T) {
	if _, err := nas.Run(New, nas.Config{Class: nas.ClassS, UPM: nas.UPMRecRep}); err == nil {
		t.Error("record-replay accepted for the phaseless CG")
	}
}

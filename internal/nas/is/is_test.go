package is

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkIS(t *testing.T) (*machine.Machine, *IS, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	s := New(m, nas.ClassS, 1, 13).(*IS)
	return m, s, omp.MustTeam(m, m.NumCPUs())
}

func TestSortsCorrectly(t *testing.T) {
	_, s, team := mkIS(t)
	for i := 0; i < 3; i++ {
		s.Step(team, nil)
		if err := s.Verify(); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
}

func TestPerturbationChangesKeysPerIteration(t *testing.T) {
	_, s, team := mkIS(t)
	before := append([]int32(nil), s.keys.Data()...)
	s.Step(team, nil)
	diff := 0
	for i, v := range s.keys.Data() {
		if v != before[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("keys unchanged: iterations would be identical")
	}
	if diff > 2 {
		t.Errorf("%d keys changed, want at most 2", diff)
	}
}

func TestReinitRestoresKeys(t *testing.T) {
	_, s, team := mkIS(t)
	s.Step(team, nil)
	s.Reinit()
	for i, v := range s.keys.Data() {
		if v != s.initKeys[i] {
			t.Fatalf("key %d = %d after Reinit, want %d", i, v, s.initKeys[i])
		}
	}
}

func TestResultsIndependentOfPlacement(t *testing.T) {
	run := func(p vm.Policy) []int32 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		s := New(m, nas.ClassS, 1, 13).(*IS)
		team := omp.MustTeam(m, m.NumCPUs())
		s.Step(team, nil)
		return append([]int32(nil), s.outKeys.Data()...)
	}
	a, b := run(vm.FirstTouch), run(vm.WorstCase)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outKeys[%d] depends on placement: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestScatterIsPlacementHostile(t *testing.T) {
	// Even under tuned first-touch, the scatter writes land where the
	// key values dictate: the remote ratio must stay high.
	m, s, team := mkIS(t)
	team.SetSerial(true)
	s.InitTouch(team)
	team.SetSerial(false)
	s.Step(team, nil)
	if r := m.Stats().RemoteRatio(); r < 0.3 {
		t.Errorf("remote ratio %.2f under ft; the scatter should defeat placement", r)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
		r, err := nas.Run(New, nas.Config{Class: nas.ClassS, Placement: p, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Verified {
			t.Errorf("%s: %v", p, r.VerifyErr)
		}
	}
}

func TestHotPages(t *testing.T) {
	_, s, _ := mkIS(t)
	if got := len(s.HotPages()); got != 3 {
		t.Errorf("HotPages = %d ranges, want 3", got)
	}
	if s.HasPhase() {
		t.Error("IS must not advertise a record-replay phase")
	}
}

// Package is is an extension benchmark: NAS IS (integer sort), a parallel
// counting sort. Each iteration histograms the keys (thread-private bucket
// rows merged by a scan), then scatters every key to its ranked position.
// The scatter is the interesting memory pattern: writes land wherever the
// *values* send them, spraying stores across the whole output array
// regardless of which thread issues them — a write-side analogue of CG's
// gather and the most placement-hostile pattern in the suite.
package is

import (
	"fmt"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// IS is one problem instance.
type IS struct {
	m       *machine.Machine
	n       int // keys
	buckets int
	iters   int
	scale   int
	seed    uint64

	keys    *machine.IntArray
	outKeys *machine.IntArray
	counts  *machine.Array // threads x buckets, thread-private rows
	offsets []int32        // host-side scatter offsets per (bucket, thread)

	initKeys []int32
	step     int
}

// New builds an IS instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, buckets, iters := 1<<14, 256, 5
	switch class {
	case nas.ClassW:
		n, buckets, iters = 1<<17, 1024, 10
	case nas.ClassA:
		n, buckets, iters = 1<<23, 2048, 10
	}
	s := &IS{m: m, n: n, buckets: buckets, iters: iters, scale: scale, seed: seed}
	s.keys = m.NewIntArray("keys", n)
	s.outKeys = m.NewIntArray("outKeys", n)
	s.counts = m.NewArray("counts", m.NumCPUs()*buckets)
	s.offsets = make([]int32, buckets*m.NumCPUs())
	s.initKeys = make([]int32, n)
	g := seed*0x9e3779b97f4a7c15 + 3
	for i := range s.initKeys {
		g ^= g << 13
		g ^= g >> 7
		g ^= g << 17
		s.initKeys[i] = int32(g % uint64(buckets))
	}
	s.Reinit()
	return s
}

// Name returns "IS".
func (s *IS) Name() string { return "IS" }

// DefaultIterations returns the class's ranking iteration count (NAS
// IS performs 10).
func (s *IS) DefaultIterations() int { return s.iters }

// HasPhase reports no record–replay phase: the scatter's destinations
// change with the data, so no per-phase plan is stable.
func (s *IS) HasPhase() bool { return false }

// HotPages returns the key, output and count arrays.
func (s *IS) HotPages() [][2]uint64 {
	var out [][2]uint64
	for _, r := range [][2]uint64{pr(s.keys.PageRange()), pr(s.outKeys.PageRange()), pr(s.counts.PageRange())} {
		out = append(out, r)
	}
	return out
}

func pr(lo, hi uint64) [2]uint64 { return [2]uint64{lo, hi} }

// Reinit restores the initial key array.
func (s *IS) Reinit() {
	copy(s.keys.Data(), s.initKeys)
	clear(s.outKeys.Data())
	clear(s.counts.Data())
	s.step = 0
}

// InitTouch writes all arrays with the counting phase's partitioning.
func (s *IS) InitTouch(t *omp.Team) {
	kd := s.keys.Data()
	t.Parallel(func(tr *omp.Thread) {
		tr.For(0, s.n, omp.Static(), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				s.keys.Set(c, i, kd[i])
				s.outKeys.Set(c, i, 0)
			}
		})
		tr.For(0, s.counts.Len(), omp.Static(), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				s.counts.Set(c, i, 0)
			}
		})
	})
}

// Step performs one ranking iteration: perturb two keys (NAS IS does this
// to make iterations distinct), histogram, scan, scatter.
func (s *IS) Step(t *omp.Team, h *nas.Hooks) {
	for r := 0; r < s.scale; r++ {
		s.step++
		s.perturb(t)
		s.histogram(t)
		s.scan(t)
		s.scatter(t)
	}
}

// perturb modifies two keys deterministically per iteration (the NAS IS
// idiom), performed by the master.
func (s *IS) perturb(t *omp.Team) {
	c := t.Master()
	i1 := (s.step * 2521) % s.n
	i2 := (s.step*9241 + 17) % s.n
	s.keys.Set(c, i1, int32((s.step*31)%s.buckets))
	s.keys.Set(c, i2, int32((s.step*67+5)%s.buckets))
}

// histogram counts each thread's key chunk into its private bucket row.
func (s *IS) histogram(t *omp.Team) {
	b := s.buckets
	t.Parallel(func(tr *omp.Thread) {
		row := tr.ID * b
		// Clear own row.
		for q := 0; q < b; q++ {
			s.counts.Set(tr.CPU, row+q, 0)
		}
		tr.Barrier()
		tr.For(0, s.n, omp.Static(), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				k := int(s.keys.Get(c, i))
				s.counts.Add(c, row+k, 1)
				c.Flops(2)
			}
		})
	})
}

// scan computes, on the master, the global start offset of every
// (bucket, thread) segment: a prefix sum over buckets and thread rows
// (small: buckets x threads values).
func (s *IS) scan(t *omp.Team) {
	c := t.Master()
	b := s.buckets
	nt := t.Size()
	pos := int32(0)
	for q := 0; q < b; q++ {
		for id := 0; id < nt; id++ {
			s.offsets[q*nt+id] = pos
			pos += int32(s.counts.Get(c, id*b+q))
			c.Flops(2)
		}
	}
}

// scatter writes each key to its ranked slot. Thread t's keys of bucket q
// go to the contiguous segment offsets[q][t], so threads never collide,
// but the *pages* they write belong to whoever the key values dictate —
// the all-to-all write pattern.
func (s *IS) scatter(t *omp.Team) {
	b := s.buckets
	nt := t.Size()
	t.Parallel(func(tr *omp.Thread) {
		next := make([]int32, b)
		base := tr.ID
		for q := 0; q < b; q++ {
			next[q] = s.offsets[q*nt+base]
		}
		tr.For(0, s.n, omp.Static(), func(c *machine.CPU, from, to int) {
			for i := from; i < to; i++ {
				k := s.keys.Get(c, i)
				s.outKeys.Set(c, int(next[k]), k)
				next[k]++
				c.Flops(2)
			}
		})
	})
}

// Verify checks that outKeys is the sorted permutation of keys.
func (s *IS) Verify() error {
	out := s.outKeys.Data()
	prev := int32(-1)
	for i, v := range out {
		if v < prev {
			return fmt.Errorf("is: outKeys[%d] = %d < previous %d (not sorted)", i, v, prev)
		}
		prev = v
	}
	hist := make([]int64, s.buckets)
	for _, v := range s.keys.Data() {
		hist[v]++
	}
	for _, v := range out {
		hist[v]--
	}
	for q, h := range hist {
		if h != 0 {
			return fmt.Errorf("is: bucket %d imbalance %d (not a permutation)", q, h)
		}
	}
	return nil
}

package nas_test

import (
	"reflect"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/vm"
)

// TestResidentElideNASBitIdentity is the end-to-end contract of the
// resident-elision fast path: arming it must leave every Result field —
// virtual times, per-iteration spans, hardware counters, engine
// statistics, verification — bit-identical for every benchmark, engine
// and placement. The only field not compared is the host-side FastPath
// report, whose ResidentElide flag records the toggle itself (maskElide
// zeroes it on both sides); every simulated quantity and every piece of
// detection metadata must be fully equal. The real solvers rarely repeat a run
// immediately (their reference strings interleave many arrays), so most
// cells exercise the validation-refuses-then-full-walk side; the
// machine-level tests prove the replay side charges identically when it
// does engage, and the synthetic kernel below forces it at this level.
func TestResidentElideNASBitIdentity(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	engines := []struct {
		name string
		set  func(c *nas.Config)
	}{
		{"plain", func(c *nas.Config) {}},
		{"kmig", func(c *nas.Config) { c.KernelMig = true }},
		{"upmlib", func(c *nas.Config) { c.UPM = nas.UPMDistribute }},
	}
	for _, b := range builders {
		for _, p := range []vm.Policy{vm.FirstTouch, vm.WorstCase} {
			t.Run(b.name+"/"+p.String(), func(t *testing.T) {
				for _, eng := range engines {
					cfg := nas.Config{Class: nas.ClassS, Placement: p, Threads: 1, Iterations: 6}
					eng.set(&cfg)
					base, err := nas.Run(b.build, cfg)
					if err != nil {
						t.Fatalf("%s base: %v", eng.name, err)
					}
					ecfg := cfg
					ecfg.ResidentElide = true
					elided, err := nas.Run(b.build, ecfg)
					if err != nil {
						t.Fatalf("%s elided: %v", eng.name, err)
					}
					if !reflect.DeepEqual(maskElide(base), maskElide(elided)) {
						t.Errorf("%s: elided run diverges from full simulation:\n base   %+v\n elided %+v",
							eng.name, base, elided)
					}
				}
			})
		}
	}
}

// TestResidentElideSynthEngagedBitIdentity drives the path that must
// actually replay: the synthetic kernel reads the same hot run four
// times back-to-back per step, so from the second read on the memo is
// an exact immediate repeat over armed, cache-resident pages. Checked
// with and without the steady-state detector — elision must neither
// change the counters nor move the detection point.
func TestResidentElideSynthEngagedBitIdentity(t *testing.T) {
	build := synthBuilder(0, 0)
	cfg := nas.Config{Class: nas.ClassS, Placement: vm.FirstTouch, Threads: 1, Iterations: 10}
	base, err := nas.Run(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := cfg
	ecfg.ResidentElide = true
	elided, err := nas.Run(build, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(maskElide(base), maskElide(elided)) {
		t.Fatalf("elided run diverges:\n base   %+v\n elided %+v", base, elided)
	}

	scfg := cfg
	scfg.SteadyState, scfg.Extrapolate = true, true
	steady, err := nas.Run(build, scfg)
	if err != nil {
		t.Fatal(err)
	}
	secfg := scfg
	secfg.ResidentElide = true
	steadyElided, err := nas.Run(build, secfg)
	if err != nil {
		t.Fatal(err)
	}
	if steady.SteadyAt == 0 {
		t.Fatal("synthetic kernel never reached steady state")
	}
	if !reflect.DeepEqual(maskElide(steady), maskElide(steadyElided)) {
		t.Fatalf("elision moved the steady-state result:\n steady        %+v\n steady+elide  %+v",
			steady, steadyElided)
	}
}

// maskElide zeroes only the FastPath.ResidentElide flag — the host-side
// record of the toggle under test. Detection metadata (SteadyAt,
// ExtrapolatedIters, the rest of FastPath) stays in the comparison:
// elision must not move any of it.
func maskElide(r nas.Result) nas.Result {
	r.FastPath.ResidentElide = false
	return r
}

package nas

import (
	"strings"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

func TestFingerprintCanonicalisesComputeScale(t *testing.T) {
	a, ok := (Config{Class: ClassS}).Fingerprint()
	if !ok {
		t.Fatal("plain config not memoizable")
	}
	b, _ := (Config{Class: ClassS, ComputeScale: 1}).Fingerprint()
	if a != b {
		t.Errorf("ComputeScale 0 and 1 fingerprint differently:\n%s\n%s", a, b)
	}
	c, _ := (Config{Class: ClassS, ComputeScale: 4}).Fingerprint()
	if c == a {
		t.Error("ComputeScale 4 collides with 1")
	}
}

func TestFingerprintDistinguishesEveryDial(t *testing.T) {
	base := Config{Class: ClassW, Placement: vm.FirstTouch, Seed: 42}
	variants := []Config{
		base,
		{Class: ClassS, Placement: vm.FirstTouch, Seed: 42},
		{Class: ClassW, Placement: vm.WorstCase, Seed: 42},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 43},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, KernelMig: true},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, UPM: UPMDistribute},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, UPM: UPMRecRep,
			UPMOptions: upm.Options{MaxCritical: 20}},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, Iterations: 7},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, Threads: 8},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, PerturbAt: 3},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, SkipVerify: true},
	}
	seen := map[string]int{}
	for i, cfg := range variants {
		fp, ok := cfg.Fingerprint()
		if !ok {
			t.Fatalf("variant %d not memoizable", i)
		}
		if j, dup := seen[fp]; dup {
			t.Errorf("variants %d and %d collide: %s", j, i, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintCanonicalisesPeriodK: only an explicit restriction
// (1..steadyPeriodMax-1) under an active detector partitions the key
// space; 0, the cap and beyond collide with the default, and without
// SteadyState the field is dead. The suffix form is pinned so historical
// store records keep their keys.
func TestFingerprintCanonicalisesPeriodK(t *testing.T) {
	steady := Config{Class: ClassS, SteadyState: true}
	def, ok := steady.Fingerprint()
	if !ok {
		t.Fatal("steady config not memoizable")
	}
	for _, k := range []int{0, steadyPeriodMax, steadyPeriodMax + 3} {
		c := steady
		c.PeriodK = k
		if fp, _ := c.Fingerprint(); fp != def {
			t.Errorf("PeriodK=%d must collide with the default cap:\n%s\n%s", k, fp, def)
		}
	}
	c := steady
	c.PeriodK = 2
	fp2, _ := c.Fingerprint()
	if fp2 == def {
		t.Error("an explicit PeriodK=2 restriction must partition the key space")
	}
	if !strings.HasSuffix(fp2, " periodk=2") {
		t.Errorf("PeriodK joins the key as a suffix, got %q", fp2)
	}
	plain := Config{Class: ClassS}
	fplain, _ := plain.Fingerprint()
	plain.PeriodK = 2
	if fp, _ := plain.Fingerprint(); fp != fplain {
		t.Error("PeriodK must be dead without SteadyState")
	}
}

// TestFingerprintCanonicalisesCampaignToggle: NoCampaignFF partitions the
// key space exactly when the campaign fast-forward could arm —
// SteadyState+Extrapolate under the kernel engine with UPMlib off — and
// is dead everywhere else.
func TestFingerprintCanonicalisesCampaignToggle(t *testing.T) {
	armed := Config{Class: ClassS, KernelMig: true, SteadyState: true, Extrapolate: true}
	fa, _ := armed.Fingerprint()
	on := armed
	on.NoCampaignFF = true
	fn, _ := on.Fingerprint()
	if fn == fa {
		t.Error("NoCampaignFF must partition the key space when the campaign path can arm")
	}
	if !strings.HasSuffix(fn, " nocampff") {
		t.Errorf("NoCampaignFF joins the key as a suffix, got %q", fn)
	}
	dead := []Config{
		{Class: ClassS, KernelMig: true, SteadyState: true},   // detection only
		{Class: ClassS, SteadyState: true, Extrapolate: true}, // no kernel engine
		{Class: ClassS, KernelMig: true},                      // no detector at all
		{Class: ClassS, KernelMig: true, SteadyState: true, Extrapolate: true,
			UPM: UPMDistribute}, // UPMlib owns placement
	}
	for i, d := range dead {
		base, _ := d.Fingerprint()
		d.NoCampaignFF = true
		if fp, _ := d.Fingerprint(); fp != base {
			t.Errorf("dead NoCampaignFF changed the fingerprint of variant %d:\n%s\n%s", i, fp, base)
		}
	}
}

// TestFingerprintIgnoresResidentElide: elision is proven bit-identical
// including all metadata, so both settings must share one cache entry.
func TestFingerprintIgnoresResidentElide(t *testing.T) {
	for i, cfg := range []Config{
		{Class: ClassS},
		{Class: ClassS, KernelMig: true, SteadyState: true, Extrapolate: true},
	} {
		base, _ := cfg.Fingerprint()
		cfg.ResidentElide = true
		if fp, _ := cfg.Fingerprint(); fp != base {
			t.Errorf("ResidentElide changed fingerprint %d:\n%s\n%s", i, fp, base)
		}
	}
}

func TestFingerprintRejectsTweakedConfigs(t *testing.T) {
	cfg := Config{Class: ClassS, Tweak: func(mc *machine.Config) { mc.PageBytes = 4096 }}
	if _, ok := cfg.Fingerprint(); ok {
		t.Error("config with a Tweak function must not be memoizable")
	}
}

func TestFingerprintRejectsTracedConfigs(t *testing.T) {
	// A cache hit would serve the result without re-simulating, silently
	// dropping the requested trace; traced cells must always simulate.
	cfg := Config{Class: ClassS, Tracer: trace.NewRecorder()}
	if _, ok := cfg.Fingerprint(); ok {
		t.Error("config with a Tracer must not be memoizable")
	}
}

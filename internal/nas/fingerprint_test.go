package nas

import (
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/trace"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

func TestFingerprintCanonicalisesComputeScale(t *testing.T) {
	a, ok := (Config{Class: ClassS}).Fingerprint()
	if !ok {
		t.Fatal("plain config not memoizable")
	}
	b, _ := (Config{Class: ClassS, ComputeScale: 1}).Fingerprint()
	if a != b {
		t.Errorf("ComputeScale 0 and 1 fingerprint differently:\n%s\n%s", a, b)
	}
	c, _ := (Config{Class: ClassS, ComputeScale: 4}).Fingerprint()
	if c == a {
		t.Error("ComputeScale 4 collides with 1")
	}
}

func TestFingerprintDistinguishesEveryDial(t *testing.T) {
	base := Config{Class: ClassW, Placement: vm.FirstTouch, Seed: 42}
	variants := []Config{
		base,
		{Class: ClassS, Placement: vm.FirstTouch, Seed: 42},
		{Class: ClassW, Placement: vm.WorstCase, Seed: 42},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 43},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, KernelMig: true},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, UPM: UPMDistribute},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, UPM: UPMRecRep,
			UPMOptions: upm.Options{MaxCritical: 20}},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, Iterations: 7},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, Threads: 8},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, PerturbAt: 3},
		{Class: ClassW, Placement: vm.FirstTouch, Seed: 42, SkipVerify: true},
	}
	seen := map[string]int{}
	for i, cfg := range variants {
		fp, ok := cfg.Fingerprint()
		if !ok {
			t.Fatalf("variant %d not memoizable", i)
		}
		if j, dup := seen[fp]; dup {
			t.Errorf("variants %d and %d collide: %s", j, i, fp)
		}
		seen[fp] = i
	}
}

func TestFingerprintRejectsTweakedConfigs(t *testing.T) {
	cfg := Config{Class: ClassS, Tweak: func(mc *machine.Config) { mc.PageBytes = 4096 }}
	if _, ok := cfg.Fingerprint(); ok {
		t.Error("config with a Tweak function must not be memoizable")
	}
}

func TestFingerprintRejectsTracedConfigs(t *testing.T) {
	// A cache hit would serve the result without re-simulating, silently
	// dropping the requested trace; traced cells must always simulate.
	cfg := Config{Class: ClassS, Tracer: trace.NewRecorder()}
	if _, ok := cfg.Fingerprint(); ok {
		t.Error("config with a Tracer must not be memoizable")
	}
}

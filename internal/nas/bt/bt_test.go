package bt

import (
	"math"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/vm"
)

func mkBT(t *testing.T) (*machine.Machine, *BT, *omp.Team) {
	t.Helper()
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m := machine.MustNew(mc)
	b := New(m, nas.ClassS, 1, 0).(*BT)
	return m, b, omp.MustTeam(m, m.NumCPUs())
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	_, b, team := mkBT(t)
	prev := b.ResidualNorm()
	if prev == 0 {
		t.Fatal("initial residual is zero; nothing to solve")
	}
	for s := 0; s < 5; s++ {
		b.Step(team, nil)
		res := b.ResidualNorm()
		if math.IsNaN(res) || res >= prev {
			t.Fatalf("step %d: residual %g did not decrease from %g", s+1, res, prev)
		}
		prev = res
	}
}

func TestConvergesToManufacturedSolution(t *testing.T) {
	_, b, team := mkBT(t)
	e0 := b.ErrorNorm()
	for s := 0; s < 12; s++ {
		b.Step(team, nil)
	}
	e := b.ErrorNorm()
	if e >= 0.1*e0 {
		t.Errorf("error %g after 12 steps, want < 10%% of initial %g", e, e0)
	}
	if err := b.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyFailsWithoutIterations(t *testing.T) {
	_, b, _ := mkBT(t)
	if err := b.Verify(); err == nil {
		t.Error("Verify passed on the initial state")
	}
}

func TestReinitRestoresInitialState(t *testing.T) {
	_, b, team := mkBT(t)
	b.Step(team, nil)
	b.Reinit()
	for i, v := range b.u.Data() {
		if v != 0 {
			t.Fatalf("u[%d] = %g after Reinit, want 0", i, v)
		}
	}
}

func TestStepResultIndependentOfPlacement(t *testing.T) {
	// Placement affects time, never values.
	run := func(p vm.Policy) float64 {
		mc := machine.DefaultConfig()
		nas.ClassS.MachineTweak(&mc)
		mc.Placement = p
		m := machine.MustNew(mc)
		b := New(m, nas.ClassS, 1, 0).(*BT)
		team := omp.MustTeam(m, m.NumCPUs())
		for s := 0; s < 3; s++ {
			b.Step(team, nil)
		}
		return b.ResidualNorm()
	}
	ft, wc := run(vm.FirstTouch), run(vm.WorstCase)
	if ft != wc {
		t.Errorf("residual depends on placement: ft %g vs wc %g", ft, wc)
	}
}

func TestHotPagesCoverThreeArrays(t *testing.T) {
	_, b, _ := mkBT(t)
	hp := b.HotPages()
	if len(hp) != 3 {
		t.Fatalf("HotPages returned %d ranges, want 3 (u, rhs, forcing)", len(hp))
	}
	for _, r := range hp {
		if r[1] <= r[0] {
			t.Errorf("empty hot range %v", r)
		}
	}
}

func TestZSolvePhaseHooksFire(t *testing.T) {
	_, b, team := mkBT(t)
	var entered, exited int
	h := &nas.Hooks{
		BeforePhase: func(c *machine.CPU) { entered++ },
		AfterPhase:  func(c *machine.CPU) { exited++ },
	}
	b.Step(team, h)
	if entered != 1 || exited != 1 {
		t.Errorf("phase hooks fired %d/%d times, want 1/1", entered, exited)
	}
}

func TestComputeScaleMultipliesWork(t *testing.T) {
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	m1 := machine.MustNew(mc)
	b1 := New(m1, nas.ClassS, 1, 0).(*BT)
	t1 := omp.MustTeam(m1, m1.NumCPUs())
	b1.Step(t1, nil)
	d1 := t1.Master().Now()

	m4 := machine.MustNew(mc)
	b4 := New(m4, nas.ClassS, 4, 0).(*BT)
	t4 := omp.MustTeam(m4, m4.NumCPUs())
	b4.Step(t4, nil)
	d4 := t4.Master().Now()

	// Repeated sweeps run against caches the first pass warmed, so 4x the
	// compute is well under 4x the time; it must still clearly exceed one
	// pass.
	if d4 < 3*d1/2 {
		t.Errorf("scale=4 step took %d ps vs %d at scale=1; want clearly more", d4, d1)
	}
}

func TestZSolveIsRemoteHeavyUnderFirstTouch(t *testing.T) {
	// After a first-touch cold start, x/y phases are mostly local but
	// z_solve crosses every thread's pages: its remote ratio must be
	// substantially higher. This is the phase change the paper exploits.
	mc := machine.DefaultConfig()
	nas.ClassW.MachineTweak(&mc)
	m := machine.MustNew(mc)
	b := New(m, nas.ClassW, 1, 0).(*BT)
	team := omp.MustTeam(m, m.NumCPUs())
	team.SetSerial(true)
	b.InitTouch(team)
	b.Step(team, nil) // cold start: establish first-touch placement
	team.SetSerial(false)
	b.Reinit()

	before := m.Stats()
	b.computeRHS(team)
	b.xSolve(team)
	b.ySolve(team)
	mid := m.Stats()
	b.zSolve(team)
	after := m.Stats()

	xyRemote := ratio(mid.RemoteMem-before.RemoteMem, mid.LocalMem-before.LocalMem)
	zRemote := ratio(after.RemoteMem-mid.RemoteMem, after.LocalMem-mid.LocalMem)
	if zRemote < xyRemote+0.2 {
		t.Errorf("z_solve remote ratio %.2f vs x/y %.2f; expected a clear phase change", zRemote, xyRemote)
	}
}

func ratio(rem, loc uint64) float64 {
	if rem+loc == 0 {
		return 0
	}
	return float64(rem) / float64(rem+loc)
}

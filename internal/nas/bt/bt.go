// Package bt reproduces the memory behaviour of NAS BT: an iterative ADI
// (alternating direction implicit) solver on a 3-D grid with a 5-component
// solution vector. Each timestep computes a right-hand side from a 7-point
// stencil (compute_rhs), performs implicit line solves along x, y and z
// (x_solve, y_solve, z_solve), and accumulates the update (add). As in the
// NAS OpenMP code, compute_rhs, x_solve, y_solve and add parallelise over
// the outermost grid dimension k, while z_solve sweeps along k and must
// parallelise over j — the phase change the paper's record–replay
// mechanism targets.
//
// Simplification vs NAS BT: the real code solves 5x5 block-tridiagonal
// systems from the compressible Navier-Stokes equations; here the five
// components are coupled diffusion equations solved with per-component
// Thomas recurrences, with the block-solve arithmetic charged as extra
// flops. Memory access patterns — the arrays (u, rhs, forcing), the sweep
// directions, the parallelisation axes — follow the original, which is
// what the paper's experiments exercise. The solver is numerically real: a
// manufactured discrete solution lets Verify check convergence.
package bt

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// ncomp is the number of solution components (NAS BT's 5).
const ncomp = 5

// blockFlops is the extra arithmetic per element-component charged for the
// 5x5 block solves the real BT performs where we run scalar recurrences.
const blockFlops = 20

// BT is one problem instance bound to a machine.
type BT struct {
	m     *machine.Machine
	n     int // grid points per dimension (including boundary)
	iters int
	scale int
	dt    float64
	cm    [ncomp]float64 // per-component diffusion coefficients

	u, rhs, forcing *machine.Array4
	target          []float64 // manufactured discrete solution
	res0            float64   // initial residual norm

	// Per-thread host scratch, reused across parallel regions so the hot
	// loop allocates nothing. Indexed by thread ID; each thread touches
	// only its own slot.
	scratch [][]float64
}

// threadScratch returns thread id's reusable scratch of at least n
// floats.
func (b *BT) threadScratch(id, n int) []float64 {
	if len(b.scratch[id]) < n {
		b.scratch[id] = make([]float64, n)
	}
	return b.scratch[id][:n]
}

// New builds a BT instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	// 15 steps at Class S: enough main-loop time for the interrupt-driven
	// kernel engine's one-time migration burst to amortise, mirroring the
	// proportions of the paper's full-length runs.
	n, iters := 10, 15
	switch class {
	case nas.ClassW:
		n, iters = 34, 30
	case nas.ClassA:
		n, iters = 64, 40
	}
	// dt trades splitting error against smooth-mode damping; 0.05 damps
	// the dominant error mode by ~0.55 per step on these grids.
	b := &BT{m: m, n: n, iters: iters, scale: scale, dt: 0.05}
	b.scratch = make([][]float64, m.NumCPUs())
	for c := 0; c < ncomp; c++ {
		b.cm[c] = 1 + 0.25*float64(c)
	}
	b.u = m.NewArray4("u", n, n, n, ncomp)
	b.rhs = m.NewArray4("rhs", n, n, n, ncomp)
	b.forcing = m.NewArray4("forcing", n, n, n, ncomp)
	b.buildProblem()
	b.Reinit()
	b.res0 = b.residualNorm()
	return b
}

// Name returns "BT".
func (b *BT) Name() string { return "BT" }

// DefaultIterations returns the class's step count.
func (b *BT) DefaultIterations() int { return b.iters }

// HasPhase reports that z_solve is a record–replay phase.
func (b *BT) HasPhase() bool { return true }

// HotPages returns the spans of u, rhs and forcing — the arrays the
// paper's compiler instrumentation identifies (Figure 2).
func (b *BT) HotPages() [][2]uint64 {
	out := make([][2]uint64, 0, 3)
	for _, a := range []*machine.Array4{b.u, b.rhs, b.forcing} {
		lo, hi := a.PageRange()
		out = append(out, [2]uint64{lo, hi})
	}
	return out
}

// idx flattens (k,j,i,c) in the [k][j][i][c] layout.
func (b *BT) idx(k, j, i, c int) int { return ((k*b.n+j)*b.n+i)*ncomp + c }

// buildProblem fills the manufactured target g_c = (1+c/4)·sin(πx)sin(πy)
// sin(πz) and the forcing f = -cm·Lap_h(g) so that g is the exact discrete
// steady state. Host-side initialisation does not touch simulated memory.
func (b *BT) buildProblem() {
	n := b.n
	h := 1.0 / float64(n-1)
	g := func(k, j, i int) float64 {
		return math.Sin(math.Pi*float64(k)*h) * math.Sin(math.Pi*float64(j)*h) * math.Sin(math.Pi*float64(i)*h)
	}
	b.target = make([]float64, n*n*n*ncomp)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for c := 0; c < ncomp; c++ {
					b.target[b.idx(k, j, i, c)] = (1 + 0.25*float64(c)) * g(k, j, i)
				}
			}
		}
	}
	f := b.forcing.Data()
	lap := func(k, j, i, c int) float64 {
		t := b.target
		return (t[b.idx(k+1, j, i, c)] + t[b.idx(k-1, j, i, c)] +
			t[b.idx(k, j+1, i, c)] + t[b.idx(k, j-1, i, c)] +
			t[b.idx(k, j, i+1, c)] + t[b.idx(k, j, i-1, c)] -
			6*t[b.idx(k, j, i, c)]) / (h * h)
	}
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					f[b.idx(k, j, i, c)] = -b.cm[c] * lap(k, j, i, c)
				}
			}
		}
	}
}

// Reinit zeroes u and rhs (u carries the boundary values of the target,
// which are zero for the manufactured solution).
func (b *BT) Reinit() {
	clear(b.u.Data())
	clear(b.rhs.Data())
}

// InitTouch writes u, rhs and forcing in parallel with the same k-plane
// partitioning as the compute phases (the NAS initialize routine), so
// first-touch homes each plane's pages on its dominant accessor. Threads
// owning the first and last interior planes also touch the boundary
// planes.
func (b *BT) InitTouch(t *omp.Team) {
	n := b.n
	f := b.forcing.Data()
	t.ParallelNamed("init", func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			lo, hi := from, to
			if lo == 1 {
				lo = 0
			}
			if hi == n-1 {
				hi = n
			}
			rowLen := n * ncomp
			for k := lo; k < hi; k++ {
				for j := 0; j < n; j++ {
					base := b.u.Row(k, j) // == b.idx(k, j, 0, 0)
					uw := b.u.MutRun(c, base, rowLen)
					clear(uw)
					rw := b.rhs.MutRun(c, base, rowLen)
					clear(rw)
					fw := b.forcing.MutRun(c, base, rowLen)
					copy(fw, f[base:base+rowLen]) // values already in place
				}
			}
		})
	})
}

// Step advances one timestep (the body of the paper's Figure 2 loop).
func (b *BT) Step(t *omp.Team, h *nas.Hooks) {
	for s := 0; s < b.scale; s++ {
		b.computeRHS(t)
	}
	for s := 0; s < b.scale; s++ {
		b.xSolve(t)
	}
	for s := 0; s < b.scale; s++ {
		b.ySolve(t)
	}
	h.PhaseEnter(t.Master())
	for s := 0; s < b.scale; s++ {
		b.zSolve(t)
	}
	h.PhaseExit(t.Master())
	for s := 0; s < b.scale; s++ {
		b.add(t)
	}
}

// computeRHS sets rhs = dt*(cm*Lap_h(u) + forcing), parallel over k. Each
// interior (k,j) row is one contiguous run of (n-2)*ncomp elements, so the
// seven stencil reads, the forcing read and the rhs write charge the same
// per-element events as the scalar loop while walking the memory system
// once per cache line.
func (b *BT) computeRHS(t *omp.Team) {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	L := (n - 2) * ncomp
	t.ParallelNamed("compute_rhs", func(tr *omp.Thread) {
		buf := b.threadScratch(tr.ID, L)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := b.idx(k, j, 1, 0)
					up := b.u.GetRun(c, b.idx(k+1, j, 1, 0), L)
					dn := b.u.GetRun(c, b.idx(k-1, j, 1, 0), L)
					no := b.u.GetRun(c, b.idx(k, j+1, 1, 0), L)
					so := b.u.GetRun(c, b.idx(k, j-1, 1, 0), L)
					ea := b.u.GetRun(c, b.idx(k, j, 2, 0), L)
					we := b.u.GetRun(c, b.idx(k, j, 0, 0), L)
					ce := b.u.GetRun(c, base, L)
					fo := b.forcing.GetRun(c, base, L)
					x := 0
					for i := 1; i < n-1; i++ {
						for m := 0; m < ncomp; m++ {
							lap := (up[x] + dn[x] + no[x] + so[x] + ea[x] + we[x] - 6*ce[x]) * h2
							buf[x] = b.dt * (b.cm[m]*lap + fo[x])
							x++
						}
					}
					b.rhs.SetRun(c, base, buf)
					c.Flops(L * (12 + blockFlops/2))
				}
			}
		})
	})
}

// lambdas returns the per-component implicit coefficients dt*cm*h2.
func (b *BT) lambdas() [ncomp]float64 {
	h2 := float64(b.n-1) * float64(b.n-1)
	var lam [ncomp]float64
	for m := 0; m < ncomp; m++ {
		lam[m] = b.dt * b.cm[m] * h2
	}
	return lam
}

// solveSweep runs the Thomas recurrences of width independent component
// systems in lockstep: sweep step p touches the contiguous width-element
// row at base+p*stepStride. The y and z solvers pass whole interior
// i-rows (the NAS line solvers vectorise over the dimension orthogonal to
// the sweep), so every simulated charge is one long run; the x solver's
// rows are mutually adjacent (stepStride == width) and collapse further
// into three whole-line block charges via solveBlock. Element q of a row
// belongs to component q%ncomp, whose coefficients are constant:
// (-lam, 1+2lam, -lam), zero Dirichlet ends. Per element the reference
// multiset of the scalar recurrence is kept intact: forward elimination
// reads each row once, back substitution re-reads the just-written rows
// 1..steps-1 and writes every row once.
func (b *BT) solveSweep(c *machine.CPU, lam *[ncomp]float64, steps, width int, cp, dp []float64, base, stepStride int) {
	if stepStride == width {
		b.solveBlock(c, lam, steps, width, cp, dp, base)
		return
	}
	// Forward elimination.
	row := b.rhs.GetRun(c, base, width)
	for o := 0; o < width; o += ncomp {
		for m := 0; m < ncomp; m++ {
			cp[o+m] = -lam[m] / (1 + 2*lam[m])
			dp[o+m] = row[o+m] / (1 + 2*lam[m])
		}
	}
	for p := 1; p < steps; p++ {
		row = b.rhs.GetRun(c, base+p*stepStride, width)
		prev, cur := (p-1)*width, p*width
		for o := 0; o < width; o += ncomp {
			for m := 0; m < ncomp; m++ {
				den := 1 + 2*lam[m] + lam[m]*cp[prev+o+m]
				cp[cur+o+m] = -lam[m] / den
				dp[cur+o+m] = (row[o+m] + lam[m]*dp[prev+o+m]) / den
			}
		}
	}
	// Back substitution.
	w := b.rhs.MutRun(c, base+(steps-1)*stepStride, width)
	copy(w, dp[(steps-1)*width:steps*width])
	for p := steps - 2; p >= 0; p-- {
		next := b.rhs.GetRun(c, base+(p+1)*stepStride, width)
		w = b.rhs.MutRun(c, base+p*stepStride, width)
		cur := p * width
		for q := 0; q < width; q++ {
			w[q] = dp[cur+q] - cp[cur+q]*next[q]
		}
	}
	c.Flops(steps * width * (8 + blockFlops))
}

// solveBlock is solveSweep for adjacent rows (stepStride == width): the
// sweep's rows form one contiguous block, so the forward reads, the back
// substitution's re-reads of rows 1..steps-1 and the writes of every row
// are charged as three block runs — the same per-element multiset as the
// stepped form.
func (b *BT) solveBlock(c *machine.CPU, lam *[ncomp]float64, steps, width int, cp, dp []float64, base int) {
	n := steps * width
	row := b.rhs.GetRun(c, base, n)
	for o := 0; o < width; o += ncomp {
		for m := 0; m < ncomp; m++ {
			cp[o+m] = -lam[m] / (1 + 2*lam[m])
			dp[o+m] = row[o+m] / (1 + 2*lam[m])
		}
	}
	for p := 1; p < steps; p++ {
		prev, cur := (p-1)*width, p*width
		for o := 0; o < width; o += ncomp {
			for m := 0; m < ncomp; m++ {
				den := 1 + 2*lam[m] + lam[m]*cp[prev+o+m]
				cp[cur+o+m] = -lam[m] / den
				dp[cur+o+m] = (row[cur+o+m] + lam[m]*dp[prev+o+m]) / den
			}
		}
	}
	b.rhs.GetRun(c, base+width, n-width)
	w := b.rhs.MutRun(c, base, n)
	copy(w[(steps-1)*width:n], dp[(steps-1)*width:n])
	for p := steps - 2; p >= 0; p-- {
		cur := p * width
		nxt := cur + width
		for q := 0; q < width; q++ {
			w[cur+q] = dp[cur+q] - cp[cur+q]*w[nxt+q]
		}
	}
	c.Flops(steps * width * (8 + blockFlops))
}

// xSolve solves the implicit x-direction systems, parallel over k. The
// sweep runs along the contiguous dimension, so each (k,j) line is one
// contiguous block (solveBlock).
func (b *BT) xSolve(t *omp.Team) {
	n := b.n
	lam := b.lambdas()
	t.ParallelNamed("x_solve", func(tr *omp.Thread) {
		s := b.threadScratch(tr.ID, 2*n*n*ncomp)
		cp, dp := s[:n*n*ncomp], s[n*n*ncomp:]
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					b.solveSweep(c, &lam, n-2, ncomp, cp, dp, b.idx(k, j, 1, 0), ncomp)
				}
			}
		})
	})
}

// ySolve solves along y, parallel over k, vectorised over i: each sweep
// step charges one whole interior i-row.
func (b *BT) ySolve(t *omp.Team) {
	n := b.n
	lam := b.lambdas()
	t.ParallelNamed("y_solve", func(tr *omp.Thread) {
		s := b.threadScratch(tr.ID, 2*n*n*ncomp)
		cp, dp := s[:n*n*ncomp], s[n*n*ncomp:]
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				b.solveSweep(c, &lam, n-2, (n-2)*ncomp, cp, dp, b.idx(k, 1, 1, 0), n*ncomp)
			}
		})
	})
}

// zSolve solves along z, vectorised over i. The sweep direction is k, so
// the loop parallelises over j: every thread walks the full k extent of
// the grid — the phase change in the memory reference pattern.
func (b *BT) zSolve(t *omp.Team) {
	n := b.n
	lam := b.lambdas()
	t.ParallelNamed("z_solve", func(tr *omp.Thread) {
		s := b.threadScratch(tr.ID, 2*n*n*ncomp)
		cp, dp := s[:n*n*ncomp], s[n*n*ncomp:]
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for j := from; j < to; j++ {
				b.solveSweep(c, &lam, n-2, (n-2)*ncomp, cp, dp, b.idx(1, j, 1, 0), n*n*ncomp)
			}
		})
	})
}

// add accumulates u += rhs, parallel over k, one contiguous row run per
// interior (k,j).
func (b *BT) add(t *omp.Team) {
	n := b.n
	L := (n - 2) * ncomp
	t.ParallelNamed("add", func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					base := b.idx(k, j, 1, 0)
					rr := b.rhs.GetRun(c, base, L)
					uw := b.u.MutRun(c, base, L)
					for x := 0; x < L; x++ {
						uw[x] += rr[x]
					}
					c.Flops(L)
				}
			}
		})
	})
}

// residualNorm computes ||cm*Lap_h(u)+f||_2 over the interior on the host
// (no simulated cost).
func (b *BT) residualNorm() float64 {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	u := b.u.Data()
	f := b.forcing.Data()
	var s float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					lap := (u[b.idx(k+1, j, i, c)] + u[b.idx(k-1, j, i, c)] +
						u[b.idx(k, j+1, i, c)] + u[b.idx(k, j-1, i, c)] +
						u[b.idx(k, j, i+1, c)] + u[b.idx(k, j, i-1, c)] -
						6*u[b.idx(k, j, i, c)]) * h2
					r := b.cm[c]*lap + f[b.idx(k, j, i, c)]
					s += r * r
				}
			}
		}
	}
	return math.Sqrt(s)
}

// errorNorm returns the L2 distance of u from the manufactured solution.
func (b *BT) errorNorm() float64 {
	u := b.u.Data()
	var s float64
	for i, v := range u {
		d := v - b.target[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Verify checks that the ADI iteration actually converged toward the
// manufactured steady state: the residual must have dropped clearly below
// its initial value.
func (b *BT) Verify() error {
	res := b.residualNorm()
	if res >= 0.5*b.res0 || math.IsNaN(res) {
		return fmt.Errorf("bt: residual %g did not decrease from %g", res, b.res0)
	}
	return nil
}

// ResidualNorm exposes the residual for tests.
func (b *BT) ResidualNorm() float64 { return b.residualNorm() }

// ErrorNorm exposes the error for tests.
func (b *BT) ErrorNorm() float64 { return b.errorNorm() }

// Package bt reproduces the memory behaviour of NAS BT: an iterative ADI
// (alternating direction implicit) solver on a 3-D grid with a 5-component
// solution vector. Each timestep computes a right-hand side from a 7-point
// stencil (compute_rhs), performs implicit line solves along x, y and z
// (x_solve, y_solve, z_solve), and accumulates the update (add). As in the
// NAS OpenMP code, compute_rhs, x_solve, y_solve and add parallelise over
// the outermost grid dimension k, while z_solve sweeps along k and must
// parallelise over j — the phase change the paper's record–replay
// mechanism targets.
//
// Simplification vs NAS BT: the real code solves 5x5 block-tridiagonal
// systems from the compressible Navier-Stokes equations; here the five
// components are coupled diffusion equations solved with per-component
// Thomas recurrences, with the block-solve arithmetic charged as extra
// flops. Memory access patterns — the arrays (u, rhs, forcing), the sweep
// directions, the parallelisation axes — follow the original, which is
// what the paper's experiments exercise. The solver is numerically real: a
// manufactured discrete solution lets Verify check convergence.
package bt

import (
	"fmt"
	"math"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
)

// ncomp is the number of solution components (NAS BT's 5).
const ncomp = 5

// blockFlops is the extra arithmetic per element-component charged for the
// 5x5 block solves the real BT performs where we run scalar recurrences.
const blockFlops = 20

// BT is one problem instance bound to a machine.
type BT struct {
	m     *machine.Machine
	n     int // grid points per dimension (including boundary)
	iters int
	scale int
	dt    float64
	cm    [ncomp]float64 // per-component diffusion coefficients

	u, rhs, forcing *machine.Array4
	target          []float64 // manufactured discrete solution
	res0            float64   // initial residual norm
}

// New builds a BT instance. It satisfies nas.Builder.
func New(m *machine.Machine, class nas.Class, scale int, seed uint64) nas.Kernel {
	n, iters := 10, 5
	switch class {
	case nas.ClassW:
		n, iters = 34, 30
	case nas.ClassA:
		n, iters = 64, 40
	}
	// dt trades splitting error against smooth-mode damping; 0.05 damps
	// the dominant error mode by ~0.55 per step on these grids.
	b := &BT{m: m, n: n, iters: iters, scale: scale, dt: 0.05}
	for c := 0; c < ncomp; c++ {
		b.cm[c] = 1 + 0.25*float64(c)
	}
	b.u = m.NewArray4("u", n, n, n, ncomp)
	b.rhs = m.NewArray4("rhs", n, n, n, ncomp)
	b.forcing = m.NewArray4("forcing", n, n, n, ncomp)
	b.buildProblem()
	b.Reinit()
	b.res0 = b.residualNorm()
	return b
}

// Name returns "BT".
func (b *BT) Name() string { return "BT" }

// DefaultIterations returns the class's step count.
func (b *BT) DefaultIterations() int { return b.iters }

// HasPhase reports that z_solve is a record–replay phase.
func (b *BT) HasPhase() bool { return true }

// HotPages returns the spans of u, rhs and forcing — the arrays the
// paper's compiler instrumentation identifies (Figure 2).
func (b *BT) HotPages() [][2]uint64 {
	out := make([][2]uint64, 0, 3)
	for _, a := range []*machine.Array4{b.u, b.rhs, b.forcing} {
		lo, hi := a.PageRange()
		out = append(out, [2]uint64{lo, hi})
	}
	return out
}

// idx flattens (k,j,i,c) in the [k][j][i][c] layout.
func (b *BT) idx(k, j, i, c int) int { return ((k*b.n+j)*b.n+i)*ncomp + c }

// buildProblem fills the manufactured target g_c = (1+c/4)·sin(πx)sin(πy)
// sin(πz) and the forcing f = -cm·Lap_h(g) so that g is the exact discrete
// steady state. Host-side initialisation does not touch simulated memory.
func (b *BT) buildProblem() {
	n := b.n
	h := 1.0 / float64(n-1)
	g := func(k, j, i int) float64 {
		return math.Sin(math.Pi*float64(k)*h) * math.Sin(math.Pi*float64(j)*h) * math.Sin(math.Pi*float64(i)*h)
	}
	b.target = make([]float64, n*n*n*ncomp)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for c := 0; c < ncomp; c++ {
					b.target[b.idx(k, j, i, c)] = (1 + 0.25*float64(c)) * g(k, j, i)
				}
			}
		}
	}
	f := b.forcing.Data()
	lap := func(k, j, i, c int) float64 {
		t := b.target
		return (t[b.idx(k+1, j, i, c)] + t[b.idx(k-1, j, i, c)] +
			t[b.idx(k, j+1, i, c)] + t[b.idx(k, j-1, i, c)] +
			t[b.idx(k, j, i+1, c)] + t[b.idx(k, j, i-1, c)] -
			6*t[b.idx(k, j, i, c)]) / (h * h)
	}
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					f[b.idx(k, j, i, c)] = -b.cm[c] * lap(k, j, i, c)
				}
			}
		}
	}
}

// Reinit zeroes u and rhs (u carries the boundary values of the target,
// which are zero for the manufactured solution).
func (b *BT) Reinit() {
	clear(b.u.Data())
	clear(b.rhs.Data())
}

// InitTouch writes u, rhs and forcing in parallel with the same k-plane
// partitioning as the compute phases (the NAS initialize routine), so
// first-touch homes each plane's pages on its dominant accessor. Threads
// owning the first and last interior planes also touch the boundary
// planes.
func (b *BT) InitTouch(t *omp.Team) {
	n := b.n
	f := b.forcing.Data()
	t.Parallel(func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			lo, hi := from, to
			if lo == 1 {
				lo = 0
			}
			if hi == n-1 {
				hi = n
			}
			for k := lo; k < hi; k++ {
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						for m := 0; m < ncomp; m++ {
							p := b.idx(k, j, i, m)
							b.u.Set(c, p, 0)
							b.rhs.Set(c, p, 0)
							b.forcing.Set(c, p, f[p])
						}
					}
				}
			}
		})
	})
}

// Step advances one timestep (the body of the paper's Figure 2 loop).
func (b *BT) Step(t *omp.Team, h *nas.Hooks) {
	for s := 0; s < b.scale; s++ {
		b.computeRHS(t)
	}
	for s := 0; s < b.scale; s++ {
		b.xSolve(t)
	}
	for s := 0; s < b.scale; s++ {
		b.ySolve(t)
	}
	h.PhaseEnter(t.Master())
	for s := 0; s < b.scale; s++ {
		b.zSolve(t)
	}
	h.PhaseExit(t.Master())
	for s := 0; s < b.scale; s++ {
		b.add(t)
	}
}

// computeRHS sets rhs = dt*(cm*Lap_h(u) + forcing), parallel over k.
func (b *BT) computeRHS(t *omp.Team) {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	t.Parallel(func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						for m := 0; m < ncomp; m++ {
							lap := (b.u.Get(c, b.idx(k+1, j, i, m)) + b.u.Get(c, b.idx(k-1, j, i, m)) +
								b.u.Get(c, b.idx(k, j+1, i, m)) + b.u.Get(c, b.idx(k, j-1, i, m)) +
								b.u.Get(c, b.idx(k, j, i+1, m)) + b.u.Get(c, b.idx(k, j, i-1, m)) -
								6*b.u.Get(c, b.idx(k, j, i, m))) * h2
							v := b.dt * (b.cm[m]*lap + b.forcing.Get(c, b.idx(k, j, i, m)))
							b.rhs.Set(c, b.idx(k, j, i, m), v)
						}
						c.Flops(ncomp * (12 + blockFlops/2))
					}
				}
			}
		})
	})
}

// solveLine runs the Thomas recurrence for one interior line of length
// n-2, reading and writing rhs through idxAt. Coefficients are constant:
// (-lam, 1+2lam, -lam) with zero Dirichlet ends.
func (b *BT) solveLine(c *machine.CPU, lam float64, length int, cp, dp []float64, idxAt func(p int) int) {
	bb := 1 + 2*lam
	// Forward elimination.
	cp[0] = -lam / bb
	dp[0] = b.rhs.Get(c, idxAt(0)) / bb
	for p := 1; p < length; p++ {
		den := bb + lam*cp[p-1]
		cp[p] = -lam / den
		dp[p] = (b.rhs.Get(c, idxAt(p)) + lam*dp[p-1]) / den
	}
	// Back substitution.
	b.rhs.Set(c, idxAt(length-1), dp[length-1])
	for p := length - 2; p >= 0; p-- {
		v := dp[p] - cp[p]*b.rhs.Get(c, idxAt(p+1))
		b.rhs.Set(c, idxAt(p), v)
	}
	c.Flops(length * (8 + blockFlops))
}

// xSolve solves the implicit x-direction systems, parallel over k.
func (b *BT) xSolve(t *omp.Team) {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	t.Parallel(func(tr *omp.Thread) {
		cp := make([]float64, n)
		dp := make([]float64, n)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					for m := 0; m < ncomp; m++ {
						lam := b.dt * b.cm[m] * h2
						k, j, m := k, j, m
						b.solveLine(c, lam, n-2, cp, dp, func(p int) int { return b.idx(k, j, p+1, m) })
					}
				}
			}
		})
	})
}

// ySolve solves along y, parallel over k.
func (b *BT) ySolve(t *omp.Team) {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	t.Parallel(func(tr *omp.Thread) {
		cp := make([]float64, n)
		dp := make([]float64, n)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for i := 1; i < n-1; i++ {
					for m := 0; m < ncomp; m++ {
						lam := b.dt * b.cm[m] * h2
						k, i, m := k, i, m
						b.solveLine(c, lam, n-2, cp, dp, func(p int) int { return b.idx(k, p+1, i, m) })
					}
				}
			}
		})
	})
}

// zSolve solves along z. The sweep direction is k, so the loop
// parallelises over j: every thread walks the full k extent of the grid —
// the phase change in the memory reference pattern.
func (b *BT) zSolve(t *omp.Team) {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	t.Parallel(func(tr *omp.Thread) {
		cp := make([]float64, n)
		dp := make([]float64, n)
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for j := from; j < to; j++ {
				for i := 1; i < n-1; i++ {
					for m := 0; m < ncomp; m++ {
						lam := b.dt * b.cm[m] * h2
						j, i, m := j, i, m
						b.solveLine(c, lam, n-2, cp, dp, func(p int) int { return b.idx(p+1, j, i, m) })
					}
				}
			}
		})
	})
}

// add accumulates u += rhs, parallel over k.
func (b *BT) add(t *omp.Team) {
	n := b.n
	t.Parallel(func(tr *omp.Thread) {
		tr.For(1, n-1, omp.Static(), func(c *machine.CPU, from, to int) {
			for k := from; k < to; k++ {
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						for m := 0; m < ncomp; m++ {
							b.u.Add(c, b.idx(k, j, i, m), b.rhs.Get(c, b.idx(k, j, i, m)))
						}
						c.Flops(ncomp)
					}
				}
			}
		})
	})
}

// residualNorm computes ||cm*Lap_h(u)+f||_2 over the interior on the host
// (no simulated cost).
func (b *BT) residualNorm() float64 {
	n := b.n
	h2 := float64(n-1) * float64(n-1)
	u := b.u.Data()
	f := b.forcing.Data()
	var s float64
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < ncomp; c++ {
					lap := (u[b.idx(k+1, j, i, c)] + u[b.idx(k-1, j, i, c)] +
						u[b.idx(k, j+1, i, c)] + u[b.idx(k, j-1, i, c)] +
						u[b.idx(k, j, i+1, c)] + u[b.idx(k, j, i-1, c)] -
						6*u[b.idx(k, j, i, c)]) * h2
					r := b.cm[c]*lap + f[b.idx(k, j, i, c)]
					s += r * r
				}
			}
		}
	}
	return math.Sqrt(s)
}

// errorNorm returns the L2 distance of u from the manufactured solution.
func (b *BT) errorNorm() float64 {
	u := b.u.Data()
	var s float64
	for i, v := range u {
		d := v - b.target[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Verify checks that the ADI iteration actually converged toward the
// manufactured steady state: the residual must have dropped clearly below
// its initial value.
func (b *BT) Verify() error {
	res := b.residualNorm()
	if res >= 0.5*b.res0 || math.IsNaN(res) {
		return fmt.Errorf("bt: residual %g did not decrease from %g", res, b.res0)
	}
	return nil
}

// ResidualNorm exposes the residual for tests.
func (b *BT) ResidualNorm() float64 { return b.residualNorm() }

// ErrorNorm exposes the error for tests.
func (b *BT) ErrorNorm() float64 { return b.errorNorm() }

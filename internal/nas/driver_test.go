package nas_test

import (
	"os"
	"testing"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/vm"
)

func runBT(t *testing.T, cfg nas.Config) nas.Result {
	t.Helper()
	cfg.Class = nas.ClassS
	r, err := nas.Run(bt.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDriverVerifiesUnderEveryPlacement(t *testing.T) {
	for _, p := range vm.Policies {
		r := runBT(t, nas.Config{Placement: p})
		if !r.Verified {
			t.Errorf("%s: verification failed: %v", p, r.VerifyErr)
		}
		if len(r.IterPS) != 15 {
			t.Errorf("%s: %d iterations recorded, want 15 (the Class S default)", p, len(r.IterPS))
		}
		if r.TotalPS <= 0 {
			t.Errorf("%s: non-positive total time", p)
		}
	}
}

func TestPlacementOrderingMatchesPaper(t *testing.T) {
	ft := runBT(t, nas.Config{Placement: vm.FirstTouch})
	rr := runBT(t, nas.Config{Placement: vm.RoundRobin})
	wc := runBT(t, nas.Config{Placement: vm.WorstCase})
	if !(ft.TotalPS < rr.TotalPS) {
		t.Errorf("ft (%d) not faster than rr (%d)", ft.TotalPS, rr.TotalPS)
	}
	if !(rr.TotalPS < wc.TotalPS) {
		t.Errorf("rr (%d) not faster than wc (%d)", rr.TotalPS, wc.TotalPS)
	}
	// Worst case concentrates everything on node 0: remote ratio near
	// (ncpu-2)/ncpu and well above first-touch's.
	if wc.Mach.RemoteRatio() < ft.Mach.RemoteRatio()+0.2 {
		t.Errorf("wc remote ratio %.2f not clearly above ft %.2f",
			wc.Mach.RemoteRatio(), ft.Mach.RemoteRatio())
	}
}

func TestUPMlibRepairsWorstCase(t *testing.T) {
	plain := runBT(t, nas.Config{Placement: vm.WorstCase})
	fixed := runBT(t, nas.Config{Placement: vm.WorstCase, UPM: nas.UPMDistribute})
	if fixed.UPM.Migrations == 0 {
		t.Fatal("UPMlib migrated nothing under worst-case placement")
	}
	if fixed.TotalPS >= plain.TotalPS {
		t.Errorf("upmlib total %d not faster than plain wc %d", fixed.TotalPS, plain.TotalPS)
	}
	// Migration activity must concentrate in the first iteration
	// (Table 2's right half).
	frac := float64(fixed.UPM.FirstInvocation) / float64(fixed.UPM.Migrations)
	if frac < 0.5 {
		t.Errorf("only %.0f%% of migrations in the first invocation", 100*frac)
	}
}

func TestUPMlibDeactivates(t *testing.T) {
	r := runBT(t, nas.Config{Placement: vm.RoundRobin, UPM: nas.UPMDistribute})
	// Invocations must stop well before the iteration count once no page
	// moves (self-deactivation).
	if r.UPM.Invocations >= len(r.IterPS) {
		t.Errorf("engine invoked %d times over %d iterations; no self-deactivation",
			r.UPM.Invocations, len(r.IterPS))
	}
}

func TestRecordReplayRunsAndRestoresPlacement(t *testing.T) {
	r := runBT(t, nas.Config{Placement: vm.FirstTouch, UPM: nas.UPMRecRep})
	if !r.Verified {
		t.Fatalf("recrep run failed verification: %v", r.VerifyErr)
	}
	if r.UPM.ReplayMigrations == 0 {
		t.Error("record-replay performed no replay migrations")
	}
	if r.UPM.ReplayMigrations != r.UPM.UndoMigrations {
		t.Errorf("replay/undo imbalance: %d vs %d", r.UPM.ReplayMigrations, r.UPM.UndoMigrations)
	}
	// Phase durations must be recorded for every iteration.
	if len(r.PhasePS) != len(r.IterPS) {
		t.Errorf("phase times %d != iterations %d", len(r.PhasePS), len(r.IterPS))
	}
}

func TestKernelMigrationTogglesActivity(t *testing.T) {
	off := runBT(t, nas.Config{Placement: vm.WorstCase})
	on := runBT(t, nas.Config{Placement: vm.WorstCase, KernelMig: true})
	if off.KmigMoves != 0 {
		t.Errorf("kernel engine moved %d pages while disabled", off.KmigMoves)
	}
	if on.KmigMoves == 0 {
		t.Error("kernel engine moved nothing under worst-case placement")
	}
}

func TestDeterministicRepeats(t *testing.T) {
	// Identical configurations must agree to well under 0.1%: the only
	// permitted jitter is coherence-version racing on falsely shared
	// lines at chunk boundaries (host-scheduling dependent, like the
	// real machine's run-to-run variation the paper averaged away).
	a := runBT(t, nas.Config{Placement: vm.RoundRobin, UPM: nas.UPMDistribute})
	b := runBT(t, nas.Config{Placement: vm.RoundRobin, UPM: nas.UPMDistribute})
	diff := float64(a.TotalPS-b.TotalPS) / float64(a.TotalPS)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.001 {
		t.Errorf("identical configs diverged by %.3f%%: %d vs %d", 100*diff, a.TotalPS, b.TotalPS)
	}
	if a.UPM.Migrations != b.UPM.Migrations {
		t.Errorf("identical configs migrated differently: %d vs %d", a.UPM.Migrations, b.UPM.Migrations)
	}
}

func TestRecRepRejectedForPhaselessKernel(t *testing.T) {
	// Will be exercised with CG/MG/FT once present; here synthesise via
	// config misuse on a fresh kernel type is not possible, so assert the
	// driver accepts RecRep for BT (HasPhase true).
	r := runBT(t, nas.Config{Placement: vm.FirstTouch, UPM: nas.UPMRecRep})
	if r.Kernel != "BT" {
		t.Errorf("unexpected kernel %q", r.Kernel)
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		cfg  nas.Config
		want string
	}{
		{nas.Config{Placement: vm.FirstTouch}, "ft-IRIX"},
		{nas.Config{Placement: vm.RoundRobin, KernelMig: true}, "rr-IRIXmig"},
		{nas.Config{Placement: vm.Random, UPM: nas.UPMDistribute}, "rand-upmlib"},
		{nas.Config{Placement: vm.FirstTouch, UPM: nas.UPMRecRep}, "ft-recrep"},
	}
	for _, c := range cases {
		if got := c.cfg.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

func TestSchedulerPerturbationRepairedByUPMlib(t *testing.T) {
	// The OS rotates every thread one node over mid-run. Without UPMlib
	// the post-perturbation iterations stay slow (all pages are one node
	// away); with UPMlib the engine reactivates and restores locality.
	plain := runBT(t, nas.Config{Placement: vm.FirstTouch, Iterations: 12, PerturbAt: 4})
	fixed := runBT(t, nas.Config{Placement: vm.FirstTouch, Iterations: 12, PerturbAt: 4, UPM: nas.UPMDistribute})

	tail := func(r nas.Result) int64 {
		var s int64
		for _, v := range r.IterPS[8:] {
			s += v
		}
		return s
	}
	if fixed.UPM.Migrations == 0 {
		t.Fatal("UPMlib did not migrate after the perturbation")
	}
	if tail(fixed) >= tail(plain) {
		t.Errorf("post-perturbation tail not repaired: upmlib %d >= plain %d", tail(fixed), tail(plain))
	}
	// And both runs must still verify numerically.
	if !plain.Verified || !fixed.Verified {
		t.Errorf("verification failed: plain=%v fixed=%v", plain.VerifyErr, fixed.VerifyErr)
	}
}

func TestWorstCaseRemoteFractionMatchesPaperFormula(t *testing.T) {
	// Paper §2.1: with all pages on one node and secondary cache misses
	// uniformly distributed over n nodes, a fraction (n-1)/n of the
	// memory accesses is remote — 75% on the 4-node Class S machine.
	// The CPUs on the hosting node keep their accesses local, so the
	// measured ratio must sit close to, and never above, that bound.
	r := runBT(t, nas.Config{Placement: vm.WorstCase})
	want := 0.75
	got := r.Mach.RemoteRatio()
	if got > want+0.01 {
		t.Errorf("wc remote ratio %.3f above the (n-1)/n bound %.2f", got, want)
	}
	if got < want-0.15 {
		t.Errorf("wc remote ratio %.3f far below the paper's (n-1)/n estimate %.2f", got, want)
	}
}

func TestElevenBitCountersSaturateUnderWorstCase(t *testing.T) {
	// The Origin2000's 11-bit counters saturate quickly when every node
	// hammers one node's pages; the simulation must reproduce the
	// saturation artefact (it is why kernel engines need counter aging).
	mc := machineConfigForClassS()
	mc.Placement = vm.WorstCase
	m, err := machine.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewArray("x", 4096)
	lo, _ := a.PageRange()
	m.PT.Resolve(lo, 0)
	for i := 0; i < 3000; i++ {
		m.PT.CountMiss(lo, 2)
	}
	if got := m.PT.Counters(lo, nil)[2]; got != vm.CounterMax11 {
		t.Errorf("counter = %d, want saturation at %d", got, vm.CounterMax11)
	}
}

func machineConfigForClassS() machine.Config {
	mc := machine.DefaultConfig()
	nas.ClassS.MachineTweak(&mc)
	return mc
}

func TestCapacityPressureStillVerifies(t *testing.T) {
	// Failure injection: squeeze per-node capacity so placement and
	// migration constantly overflow to neighbours; the run must still be
	// numerically correct and every page must stay within capacity.
	r, err := nas.Run(bt.New, nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		UPM:       nas.UPMDistribute,
		Tweak: func(mc *machine.Config) {
			mc.CapacityPages = 40 // hot pages ~120 over 4 nodes
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("capacity-pressured run failed verification: %v", r.VerifyErr)
	}
	if r.UPM.Migrations == 0 {
		t.Error("no migrations happened under pressure")
	}
}

// TestClassAOptIn runs one Class A configuration — near the paper's real
// problem sizes — when explicitly requested with UPMGO_CLASSA=1 (it takes
// minutes of host time on one core).
func TestClassAOptIn(t *testing.T) {
	if os.Getenv("UPMGO_CLASSA") == "" {
		t.Skip("set UPMGO_CLASSA=1 to run the Class A smoke test")
	}
	r, err := nas.Run(bt.New, nas.Config{Class: nas.ClassA, Placement: vm.FirstTouch, Iterations: 3, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPS <= 0 {
		t.Error("no time elapsed")
	}
}

// TestPageAccountingInvariantAfterMigrations checks the deep bookkeeping
// invariant across a run full of faults, migrations and replays: the
// per-node residency counters must exactly match the home map.
func TestPageAccountingInvariantAfterMigrations(t *testing.T) {
	for _, cfg := range []nas.Config{
		{Placement: vm.WorstCase, UPM: nas.UPMDistribute, KernelMig: true},
		{Placement: vm.FirstTouch, UPM: nas.UPMRecRep},
	} {
		cfg.Class = nas.ClassS
		r, err := nas.Run(bt.New, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Verified {
			t.Fatalf("%s: %v", cfg.Label(), r.VerifyErr)
		}
	}
	// Re-run one config keeping the machine for inspection.
	mc := machineConfigForClassS()
	mc.Placement = vm.WorstCase
	m, err := machine.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewArray("x", 32*128) // 32 pages at 1 KB
	lo, hi := a.PageRange()
	for p := lo; p < hi; p++ {
		m.PT.Resolve(p, int(p)%4)
		if p%3 == 0 {
			m.PT.Migrate(p, int(p+1)%4)
		}
	}
	hist := m.PT.HomeHistogram()
	used := m.PT.Used()
	for n := range hist {
		if int64(hist[n]) != used[n] {
			t.Errorf("node %d: home histogram %d != residency counter %d", n, hist[n], used[n])
		}
	}
}

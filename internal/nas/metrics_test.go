package nas_test

import (
	"reflect"
	"strings"
	"testing"

	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/trace"
	"upmgo/internal/vm"
)

// TestMetricsOffOnEquivalence is the metrics layer's tentpole invariant:
// attaching a Sampler observes the simulation but never advances a
// clock, so a sampled run's every number — virtual times, engine stats,
// hardware counters — is bit-identical to the same config unsampled,
// for all five benchmarks under both migration engines. Threads 1 for
// the same reason as TestTracingOffOnEquivalence: only there is an
// individual run exactly reproducible across two separate executions.
func TestMetricsOffOnEquivalence(t *testing.T) {
	builders := []struct {
		name  string
		build nas.Builder
	}{
		{"BT", bt.New}, {"SP", sp.New}, {"CG", cg.New},
		{"MG", mg.New}, {"FT", ft.New},
	}
	engines := []struct {
		name string
		cfg  func(*nas.Config)
	}{
		{"kmig", func(c *nas.Config) { c.KernelMig = true }},
		{"upmlib", func(c *nas.Config) { c.UPM = nas.UPMDistribute }},
	}
	for _, b := range builders {
		for _, eng := range engines {
			t.Run(b.name+"/"+eng.name, func(t *testing.T) {
				cfg := nas.Config{
					Class:     nas.ClassS,
					Placement: vm.WorstCase,
					Threads:   1,
				}
				eng.cfg(&cfg)
				plain, err := nas.Run(b.build, cfg)
				if err != nil {
					t.Fatal(err)
				}
				s := metrics.NewSampler(metrics.Options{Heatmap: true})
				cfg.Metrics = s
				sampled, err := nas.Run(b.build, cfg)
				if err != nil {
					t.Fatal(err)
				}

				if plain.TotalPS != sampled.TotalPS {
					t.Errorf("TotalPS: unsampled %d, sampled %d", plain.TotalPS, sampled.TotalPS)
				}
				if plain.ColdPS != sampled.ColdPS {
					t.Errorf("ColdPS: unsampled %d, sampled %d", plain.ColdPS, sampled.ColdPS)
				}
				if !reflect.DeepEqual(plain.IterPS, sampled.IterPS) {
					t.Errorf("IterPS diverge:\n unsampled %v\n sampled   %v", plain.IterPS, sampled.IterPS)
				}
				if !reflect.DeepEqual(plain.PhasePS, sampled.PhasePS) {
					t.Errorf("PhasePS diverge:\n unsampled %v\n sampled   %v", plain.PhasePS, sampled.PhasePS)
				}
				if plain.UPM != sampled.UPM {
					t.Errorf("UPM stats diverge:\n unsampled %+v\n sampled   %+v", plain.UPM, sampled.UPM)
				}
				if plain.KmigMoves != sampled.KmigMoves || plain.KmigCost != sampled.KmigCost {
					t.Errorf("kmig stats diverge: unsampled (%d, %d), sampled (%d, %d)",
						plain.KmigMoves, plain.KmigCost, sampled.KmigMoves, sampled.KmigCost)
				}
				if plain.Mach != sampled.Mach {
					t.Errorf("machine stats diverge:\n unsampled %+v\n sampled   %+v", plain.Mach, sampled.Mach)
				}
				if plain.Verified != sampled.Verified {
					t.Errorf("Verified: unsampled %v, sampled %v", plain.Verified, sampled.Verified)
				}

				assertSeries(t, s.Series(), sampled)
			})
		}
	}
}

// assertSeries checks the sampler's output against the run it observed:
// the sample schedule (baseline + one per iteration + phase samples for
// kernels with a marked phase), per-iteration durations matching the
// driver's, and engine tallies matching the run's final statistics.
func assertSeries(t *testing.T, se metrics.Series, res nas.Result) {
	t.Helper()
	var iters, phases, baselines []metrics.Sample
	for _, sm := range se.Samples {
		switch sm.Kind {
		case "iter":
			iters = append(iters, sm)
		case "phase":
			phases = append(phases, sm)
		case "baseline":
			baselines = append(baselines, sm)
		}
	}
	if len(baselines) != 1 {
		t.Errorf("got %d baseline samples, want 1", len(baselines))
	}
	if len(iters) != len(res.IterPS) {
		t.Fatalf("got %d iteration samples, want %d", len(iters), len(res.IterPS))
	}
	hasPhase := false
	for _, ps := range res.PhasePS {
		if ps > 0 {
			hasPhase = true
		}
	}
	if hasPhase && len(phases) != len(res.IterPS) {
		t.Errorf("got %d phase samples, want one per iteration (%d)", len(phases), len(res.IterPS))
	}
	if !hasPhase && len(phases) != 0 {
		t.Errorf("got %d phase samples for a kernel without a marked phase", len(phases))
	}
	for i, sm := range iters {
		if sm.Step != i+1 {
			t.Errorf("iteration sample %d has step %d", i, sm.Step)
		}
		if sm.IterPS != res.IterPS[i] {
			t.Errorf("step %d: sampled IterPS %d, driver recorded %d", sm.Step, sm.IterPS, res.IterPS[i])
		}
		var resident int64
		for _, v := range sm.Residency {
			resident += v
		}
		if resident == 0 {
			t.Errorf("step %d: no resident pages sampled", sm.Step)
		}
		var hot int64
		for _, v := range sm.HotHomes {
			hot += v
		}
		if int(hot) != res.PagesTotal {
			t.Errorf("step %d: %d hot homes, want %d", sm.Step, hot, res.PagesTotal)
		}
	}
	last := iters[len(iters)-1]
	if last.UPMMoves != res.UPM.Migrations {
		t.Errorf("sampled UPM moves %d, run reported %d", last.UPMMoves, res.UPM.Migrations)
	}
	if last.KmigMoves != res.KmigMoves {
		t.Errorf("sampled kmig moves %d, run reported %d", last.KmigMoves, res.KmigMoves)
	}
	if last.MachLocal != res.Mach.LocalMem || last.MachRemote != res.Mach.RemoteMem {
		t.Errorf("sampled machine split (%d, %d), run reported (%d, %d)",
			last.MachLocal, last.MachRemote, res.Mach.LocalMem, res.Mach.RemoteMem)
	}
	if last.Barriers == 0 {
		t.Error("no barriers tallied over the timed loop")
	}
	if se.HotPages != res.PagesTotal {
		t.Errorf("series hot pages %d, run reported %d", se.HotPages, res.PagesTotal)
	}
	if len(se.Heat) != len(res.IterPS) {
		t.Fatalf("got %d heatmaps, want one per iteration (%d)", len(se.Heat), len(res.IterPS))
	}
	for _, h := range se.Heat {
		if h.Pages != se.HotPages || h.Nodes != se.Nodes || len(h.Counts) != h.Pages*h.Nodes {
			t.Errorf("heatmap step %d has shape (%d×%d, %d counts), want (%d×%d)",
				h.Step, h.Pages, h.Nodes, len(h.Counts), se.HotPages, se.Nodes)
		}
	}
}

// TestMetricsConfigUnfingerprintable: a sampled config must never be
// memoized or snapshotted — the cache would serve stale metrics and a
// shared prefix would feed one sampler from many forks.
func TestMetricsConfigUnfingerprintable(t *testing.T) {
	cfg := nas.Config{Class: nas.ClassS, Metrics: metrics.NewSampler(metrics.Options{})}
	if _, ok := cfg.Fingerprint(); ok {
		t.Error("Fingerprint accepted a sampled config")
	}
	if _, ok := cfg.PrefixFingerprint(); ok {
		t.Error("PrefixFingerprint accepted a sampled config")
	}
	if _, err := nas.RunPrefix(bt.New, cfg); err == nil || !strings.Contains(err.Error(), "Metrics") {
		t.Errorf("RunPrefix on a sampled config: got %v, want a Metrics rejection", err)
	}
}

// TestMetricsWithTracerTee: a run with both a Tracer and a Sampler
// attached feeds both — the sampler does not displace the tracer.
func TestMetricsWithTracerTee(t *testing.T) {
	s := metrics.NewSampler(metrics.Options{})
	cfg := nas.Config{
		Class:     nas.ClassS,
		Placement: vm.WorstCase,
		UPM:       nas.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	}
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	res, err := nas.Run(ft.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("tee dropped the recorder's events")
	}
	se := s.Series()
	var iters int
	for _, sm := range se.Samples {
		if sm.Kind == "iter" {
			iters++
		}
	}
	if iters != len(res.IterPS) {
		t.Errorf("tee'd sampler recorded %d iteration samples, want %d", iters, len(res.IterPS))
	}
}

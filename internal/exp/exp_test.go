package exp

import (
	"bytes"
	"strings"
	"testing"

	"upmgo/internal/nas"
)

func TestTable1MatchesPaperValues(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Levels in order; latencies within a few ns of Table 1 (probe
	// includes the L1 probe cost on deeper levels).
	want := []struct {
		level string
		hops  int
		lo    float64
		hi    float64
	}{
		{"L1 cache", 0, 5, 6},
		{"L2 cache", 0, 56, 65},
		{"local memory", 0, 329, 340},
		{"remote memory", 1, 564, 575},
		{"remote memory", 2, 759, 770},
		{"remote memory", 3, 862, 875},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Level != w.level || r.Hops != w.hops {
			t.Errorf("row %d = %s/%d hops, want %s/%d", i, r.Level, r.Hops, w.level, w.hops)
		}
		if r.Nanosec < w.lo || r.Nanosec > w.hi {
			t.Errorf("row %d latency %.1f ns outside [%g,%g]", i, r.Nanosec, w.lo, w.hi)
		}
	}
}

func TestWriteTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"L1 cache", "remote memory", "Latency(ns)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1ShapeBT(t *testing.T) {
	cells, err := Figure1(SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8 (4 placements x 2 engines)", len(cells))
	}
	byLabel := map[string]float64{}
	for _, c := range cells {
		byLabel[c.Label] = c.Seconds()
	}
	if byLabel["ft-IRIX"] >= byLabel["wc-IRIX"] {
		t.Errorf("ft (%.4f) not faster than wc (%.4f)", byLabel["ft-IRIX"], byLabel["wc-IRIX"])
	}
	// Kernel migration must recover part of the worst case.
	if byLabel["wc-IRIXmig"] >= byLabel["wc-IRIX"] {
		t.Errorf("kernel migration did not improve wc: %.4f vs %.4f",
			byLabel["wc-IRIXmig"], byLabel["wc-IRIX"])
	}
}

func TestFigure4UPMlibRepairsWorstCase(t *testing.T) {
	cells, err := Figure4(SweepOptions{Class: nas.ClassS, Benches: []string{"SP"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	byLabel := map[string]float64{}
	for _, c := range cells {
		byLabel[c.Label] = c.Seconds()
	}
	// At Class S only a handful of iterations amortise the one-time
	// migration burst, so the repair is partial; the Class W sweep in
	// EXPERIMENTS.md shows the paper-level ~15-20% residual.
	ft := byLabel["ft-IRIX"]
	if slow := byLabel["wc-upmlib"]/ft - 1; slow > 0.65 {
		t.Errorf("wc-upmlib still %.0f%% over ft; UPMlib should repair most of it", 100*slow)
	}
	if byLabel["wc-upmlib"] >= byLabel["wc-IRIX"] {
		t.Error("wc-upmlib not faster than plain wc")
	}
}

func TestSummarise(t *testing.T) {
	cells, err := Figure1(SweepOptions{Class: nas.ClassS, Benches: []string{"CG"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarise(cells)
	if got, ok := s.Slowdown["wc-IRIX"]; !ok || got <= 0 {
		t.Errorf("wc slowdown = %v (ok=%v), want positive", got, ok)
	}
	if got := s.Slowdown["ft-IRIX"]; got != 0 {
		t.Errorf("ft slowdown vs itself = %v, want 0", got)
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2(SweepOptions{Class: nas.ClassS, Benches: []string{"BT", "MG"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		for _, p := range []string{"rr", "rand", "wc"} {
			if v, ok := r.SlowdownTail[p]; !ok || v > 0.25 {
				t.Errorf("%s %s tail slowdown %v; steady state should be near ft", r.Bench, p, v)
			}
			if f := r.FirstIterFrac[p]; f < 0.5 || f > 1 {
				t.Errorf("%s %s first-iteration fraction %v outside [0.5,1]", r.Bench, p, f)
			}
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "BT") {
		t.Error("WriteTable2 output missing benchmark name")
	}
}

func TestFigure5ShapesAndOverheadAccounting(t *testing.T) {
	cells, err := Figure5(SweepOptions{Class: nas.ClassS, Seed: 42, Benches: []string{"BT"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	var recrep, upmlib Figure5Cell
	for _, c := range cells {
		switch c.Label {
		case "ft-recrep":
			recrep = c
		case "ft-upmlib":
			upmlib = c
		}
	}
	if recrep.Migrations <= upmlib.Migrations {
		t.Error("record-replay did not add migrations")
	}
	if recrep.OverheadS <= upmlib.OverheadS {
		t.Error("record-replay overhead not larger than plain UPMlib's")
	}
	if recrep.PhaseS <= 0 {
		t.Error("phase time not recorded")
	}
}

func TestFigure6UsesScaledBT(t *testing.T) {
	base, err := Figure5(SweepOptions{Class: nas.ClassS, Seed: 42, Iterations: 3, Benches: []string{"BT"}})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Figure6(SweepOptions{Class: nas.ClassS, Seed: 42, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].Bench != "BT" {
		t.Fatalf("Figure 6 ran %s, want BT", scaled[0].Bench)
	}
	if scaled[0].Seconds < 2*base[0].Seconds {
		t.Errorf("scaled BT (%.4fs) not clearly longer than native (%.4fs)",
			scaled[0].Seconds, base[0].Seconds)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	if _, err := Figure1(SweepOptions{Class: nas.ClassS, Benches: []string{"UA"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWriteCellsRenders(t *testing.T) {
	cells, err := Figure1(SweepOptions{Class: nas.ClassS, Benches: []string{"FT"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteCells(&buf, "test title", cells)
	out := buf.String()
	if !strings.Contains(out, "test title") || !strings.Contains(out, "ft-IRIX") || !strings.Contains(out, "#") {
		t.Errorf("WriteCells output malformed:\n%s", out)
	}
}

package exp

import (
	"fmt"
	"io"
	"strings"
)

// WriteLocalityTable renders the cells' local:remote main-memory access
// ratios as a Markdown table: one row per (benchmark, placement), one
// column per engine label. The split comes from the machine's cumulative
// counters (L2 misses served by the page's home node vs remotely), the
// ccNUMA locality measure of Wittmann & Hager (arXiv:1101.0093) — the
// paper's convergence argument in one number: under UPMlib every
// placement's ratio should approach first-touch's. Rows and columns keep
// the cells' presentation order; overlapping cells (Figure 1 ⊂ Figure 4)
// deduplicate to the last occurrence.
func WriteLocalityTable(w io.Writer, cells []Cell) error {
	type key struct{ bench, placement, engine string }
	ratios := map[key]string{}
	var rows []struct{ bench, placement string }
	var engines []string
	seenRow := map[string]bool{}
	seenEng := map[string]bool{}
	for _, c := range cells {
		placement, engine := c.Label, "IRIX"
		if i := strings.Index(c.Label, "-"); i >= 0 {
			placement, engine = c.Label[:i], c.Label[i+1:]
		}
		local, remote := c.Result.Mach.LocalMem, c.Result.Mach.RemoteMem
		ratio := "∞"
		if remote > 0 {
			ratio = fmt.Sprintf("%.2f:1", float64(local)/float64(remote))
		}
		ratios[key{c.Bench, placement, engine}] = ratio
		if rk := c.Bench + "\x00" + placement; !seenRow[rk] {
			seenRow[rk] = true
			rows = append(rows, struct{ bench, placement string }{c.Bench, placement})
		}
		if !seenEng[engine] {
			seenEng[engine] = true
			engines = append(engines, engine)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("| Bench | Placement |")
	for _, e := range engines {
		fmt.Fprintf(&sb, " %s |", e)
	}
	sb.WriteString("\n|---|---|")
	for range engines {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %s |", r.bench, r.placement)
		for _, e := range engines {
			v := ratios[key{r.bench, r.placement, e}]
			if v == "" {
				v = "—"
			}
			fmt.Fprintf(&sb, " %s |", v)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

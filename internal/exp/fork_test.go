package exp

import (
	"context"
	"reflect"
	"testing"

	"upmgo/internal/nas"
)

// TestRunnerPrefixSharing pins the fork economics on Figure 4: 12 cells
// per benchmark (4 placements × 3 engines) share 4 cold-start prefixes
// (one per placement), so every simulated cell is a fork and the prefix
// count shows the ~3× sharing the snapshot layer exists for.
func TestRunnerPrefixSharing(t *testing.T) {
	cache := NewCache()
	r := Runner{Jobs: 4, Cache: cache}
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42}
	if _, err := r.Figure4(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 12 || st.Forked != 12 || st.Prefixes != 4 {
		t.Errorf("Figure4 stats %+v, want 12 misses, 12 forked, 4 prefixes", st)
	}

	// Figure 1 is a subset: everything recalled, nothing new forked.
	if _, err := r.Figure1(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 12 || st.Forked != 12 || st.Prefixes != 4 {
		t.Errorf("after Figure1 stats %+v, want no new simulations", st)
	}

	// Figure 5's recrep cell is engine-only novelty: one new cell, forked
	// from an already-held prefix — zero new cold starts.
	if _, err := r.Figure5(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 13 || st.Forked != 13 || st.Prefixes != 4 {
		t.Errorf("after Figure5 stats %+v, want 13 misses, 13 forked, still 4 prefixes", st)
	}
}

// TestRunnerForkNoForkEquivalence is the exp-layer acceptance invariant:
// at Threads 1 a forking runner and a NoFork runner return bit-identical
// cells for the same sweep.
func TestRunnerForkNoForkEquivalence(t *testing.T) {
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"CG"}, Seed: 42, Threads: 1}
	fork := Runner{Jobs: 4, Cache: NewCache()}
	nofork := Runner{Jobs: 4, Cache: NewCache(), NoFork: true}

	f, err := fork.Figure4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	n, err := nofork.Figure4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, n) {
		t.Error("Figure4 cells differ between forked and from-scratch simulation")
	}
	if st := fork.Cache.Stats(); st.Forked == 0 {
		t.Error("forking runner forked nothing")
	}
	if st := nofork.Cache.Stats(); st.Forked != 0 || st.Prefixes != 0 {
		t.Errorf("NoFork runner touched the prefix store: %+v", st)
	}
}

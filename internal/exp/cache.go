package exp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"upmgo/internal/nas"
	"upmgo/internal/store"
)

// Cache memoizes completed cells across sweeps, keyed by CellSpec.Key.
// The paper's evaluation overlaps heavily: Figure 1's eight bars per
// benchmark are a subset of Figure 4's twelve, and Table 2 re-reads
// Figure 4's UPMlib cells; one Cache shared across a `sweep -all`
// therefore runs each unique (bench, config) simulation exactly once.
// It is safe for concurrent use, and duplicate in-flight requests
// coalesce onto a single simulation.
type Cache struct {
	mu       sync.Mutex
	cells    map[string]Cell
	inflight map[string]*inflightCell
	hits     uint64
	misses   uint64

	// Cold-start prefix snapshots (see nas.Prefix), keyed by
	// bench + nas.Config.PrefixFingerprint. Engine variants of one
	// (bench, class, placement, seed, scale, threads) tuple share a single
	// simulated prefix and fork clones from it.
	prefixes     map[string]*nas.Prefix
	prefixFlight map[string]*inflightPrefix
	prefixSims   uint64
	forked       uint64

	// Shared verification outcomes (see nas.VerifyCache): cells whose
	// numerics are identical — same benchmark, class, iterations,
	// threads, seed and scale, regardless of placement or engine —
	// verify once; extrapolating cells then skip their free-run tails.
	verify *nas.VerifyCache

	// Second level: the on-disk content-addressed result store, when
	// attached with SetStore. Reads go through (RAM, then disk, then
	// simulate) and completed simulations are written behind — after the
	// in-flight waiters are released, off every other cell's critical
	// path. Store failures never fail a cell: a corrupt record re-reads
	// as a miss (the re-simulation's Put repairs it) and a failed write
	// only bumps storeErrs.
	store        *store.Store
	diskHits     uint64
	storePuts    uint64
	storeErrs    uint64
	lastStoreErr error
}

type inflightCell struct {
	done chan struct{}
	cell Cell
	err  error
}

// cellMeta, when passed to cell, receives the serving path's provenance:
// which level satisfied the request and how long the on-disk store probe
// took. Telemetry only — cell's behaviour is identical with a nil meta.
type cellMeta struct {
	// source is one of SourceMemory (RAM or a successful in-flight
	// join), SourceStore (recalled from disk) or SourceSimulated.
	source string
	// storeProbe is the host time spent in store.Get, hit or miss.
	storeProbe time.Duration
}

// Cell provenance values, shared with exp.CellReport.
const (
	SourceMemory    = "memory"
	SourceStore     = "store"
	SourceSimulated = "simulated"
)

type inflightPrefix struct {
	done chan struct{}
	p    *nas.Prefix
	err  error
}

// NewCache returns an empty cell cache.
func NewCache() *Cache {
	return &Cache{
		cells:        map[string]Cell{},
		inflight:     map[string]*inflightCell{},
		prefixes:     map[string]*nas.Prefix{},
		prefixFlight: map[string]*inflightPrefix{},
		verify:       nas.NewVerifyCache(),
	}
}

// CacheStats is a snapshot of memoization traffic.
type CacheStats struct {
	// Hits counts cells served without a new simulation (recalled from
	// RAM, or joined onto one already in flight).
	Hits uint64
	// DiskHits counts cells recalled from the attached result store —
	// simulated by an earlier process, never by this one.
	DiskHits uint64
	// Misses counts cells that ran a fresh simulation (from scratch or by
	// forking a prefix snapshot).
	Misses uint64
	// Forked counts the subset of Misses that skipped the cold start by
	// forking a shared prefix snapshot.
	Forked uint64
	// Prefixes counts cold-start prefix simulations (each is shared by
	// every forked cell with the same prefix fingerprint).
	Prefixes uint64
	// StorePuts counts cells persisted to the store; StoreErrors counts
	// store reads or writes that failed (the cells themselves still
	// succeeded), with StoreErr holding the most recent failure.
	StorePuts   uint64
	StoreErrors uint64
	StoreErr    error
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, DiskHits: c.diskHits, Misses: c.misses,
		Forked: c.forked, Prefixes: c.prefixSims,
		StorePuts: c.storePuts, StoreErrors: c.storeErrs, StoreErr: c.lastStoreErr}
}

// SetStore attaches an on-disk result store as the cache's second level:
// cells missing from RAM are looked up on disk before simulating, and
// every fresh simulation is persisted, so later processes sharing the
// directory warm-start (`sweep -all -store dir` twice simulates nothing
// the second time). Cross-process identity is the store's contract: a
// recalled Result decodes bit-identical to the one the writing process
// computed. Attach before the first sweep; a nil store detaches.
func (c *Cache) SetStore(s *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
}

// Len returns the number of completed cells held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// cell returns the cached cell for key, running fn at most once per key
// at a time: concurrent callers with the same key wait for the first.
// Errors are not cached, and a leader's failure is not inherited by its
// waiters — the leader may have failed only because *its* caller was
// cancelled, which says nothing about a waiter's prospects. A waiter that
// survives a failed flight (its own ctx still live) retries, becoming the
// new leader if nobody beat it to the slot. The bool reports whether the
// cell was served from the cache (RAM, disk, or a successful in-flight
// duplicate) rather than by this call's own simulation.
//
// With a store attached the leader reads through it before simulating —
// an intact record short-circuits fn entirely — and writes behind it
// after: the RAM fill and waiter release happen first, so no other cell
// ever waits on disk I/O. A corrupt record is counted, skipped and
// repaired by the post-simulation write.
func (c *Cache) cell(ctx context.Context, key string, fn func() (Cell, error), meta *cellMeta) (Cell, bool, error) {
	for {
		c.mu.Lock()
		if cell, ok := c.cells[key]; ok {
			c.hits++
			c.mu.Unlock()
			if meta != nil {
				meta.source = SourceMemory
			}
			return cell, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Cell{}, false, ctx.Err()
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				if meta != nil {
					// A successful in-flight join is a RAM recall from
					// the waiter's point of view: another worker in this
					// process did the simulating.
					meta.source = SourceMemory
				}
				return f.cell, true, nil
			}
			if err := ctx.Err(); err != nil {
				return Cell{}, false, err
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			// Don't start a simulation nobody will wait for.
			c.mu.Unlock()
			return Cell{}, false, err
		}
		f := &inflightCell{done: make(chan struct{})}
		c.inflight[key] = f
		st := c.store
		c.mu.Unlock()

		// Read through the store: a cell another process already
		// simulated is recalled, not recomputed. The disk read happens
		// under the in-flight slot, so concurrent requests for the same
		// key coalesce onto one read exactly as they would onto one
		// simulation.
		if st != nil {
			var t0 time.Time
			if meta != nil {
				t0 = time.Now()
			}
			res, err := st.Get(key)
			if meta != nil {
				meta.storeProbe += time.Since(t0)
			}
			if err == nil {
				bench, _, _ := strings.Cut(key, "\x00")
				f.cell = Cell{Bench: bench, Label: res.Label, Result: res}
				c.mu.Lock()
				c.cells[key] = f.cell
				c.diskHits++
				delete(c.inflight, key)
				c.mu.Unlock()
				close(f.done)
				if meta != nil {
					meta.source = SourceStore
				}
				return f.cell, true, nil
			} else if !errors.Is(err, store.ErrNotFound) {
				c.noteStoreErr(err)
			}
		}

		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		if meta != nil {
			meta.source = SourceSimulated
		}

		f.cell, f.err = fn()

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.cells[key] = f.cell
		}
		c.mu.Unlock()
		close(f.done)

		// Write behind: waiters are already released; only this cell's
		// own caller pays for the persist, and a failure (disk full,
		// permissions) degrades to an unpersisted cell, not a failed one.
		if f.err == nil && st != nil {
			if err := st.Put(key, f.cell.Bench, f.cell.Result); err != nil {
				c.noteStoreErr(err)
			} else {
				c.mu.Lock()
				c.storePuts++
				c.mu.Unlock()
			}
		}
		return f.cell, false, f.err
	}
}

// noteStoreErr records a non-fatal store failure for Stats.
func (c *Cache) noteStoreErr(err error) {
	c.mu.Lock()
	c.storeErrs++
	c.lastStoreErr = err
	c.mu.Unlock()
}

// prefix returns the cached prefix snapshot for key, simulating it with
// fn at most once per key at a time. The single-flight discipline is
// cell's: errors are not cached, a leader's failure is not inherited,
// and a surviving waiter retries as the new leader. Prefixes are
// immutable once built (forks only ever clone them), so one snapshot may
// be handed to any number of concurrent callers.
func (c *Cache) prefix(ctx context.Context, key string, fn func() (*nas.Prefix, error)) (*nas.Prefix, error) {
	for {
		c.mu.Lock()
		if p, ok := c.prefixes[key]; ok {
			c.mu.Unlock()
			return p, nil
		}
		if f, ok := c.prefixFlight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err == nil {
				return f.p, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		f := &inflightPrefix{done: make(chan struct{})}
		c.prefixFlight[key] = f
		c.prefixSims++
		c.mu.Unlock()

		f.p, f.err = fn()

		c.mu.Lock()
		delete(c.prefixFlight, key)
		if f.err == nil {
			c.prefixes[key] = f.p
		}
		c.mu.Unlock()
		close(f.done)
		return f.p, f.err
	}
}

// noteFork records one cell simulated by forking a prefix snapshot.
func (c *Cache) noteFork() {
	c.mu.Lock()
	c.forked++
	c.mu.Unlock()
}

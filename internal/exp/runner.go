package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/trace"
)

// CellSpec names one figure/table cell: a benchmark and the exact
// configuration of its run. Every cell is an independent simulation on
// its own Machine, which is what makes the sweep embarrassingly
// parallel on the host.
type CellSpec struct {
	Bench  string
	Config nas.Config
}

// Key returns the cell's memoization key. The second result is false
// when the config cannot be canonically fingerprinted (see
// nas.Config.Fingerprint); such cells always simulate.
func (s CellSpec) Key() (string, bool) {
	fp, ok := s.Config.Fingerprint()
	if !ok {
		return "", false
	}
	return s.Bench + "\x00" + fp, true
}

// Event is one progress notification from a Runner: each cell emits one
// event when it starts and one when it finishes.
type Event struct {
	Spec  CellSpec
	Index int  // position of the cell in the batch (presentation order)
	Total int  // number of cells in the batch
	Done  bool // false: cell started; true: cell finished
	// The remaining fields are set on finished events only.
	CacheHit bool          // served from the cache, no new simulation
	VirtualS float64       // simulated seconds of the cell's main loop
	Host     time.Duration // host wall-clock spent on (or waiting for) the cell
	Err      error
	// Steady-state accounting of the finished cell, copied from its
	// Result (zero when the cell simulated every iteration): the
	// iteration the detector fired at, the proven orbit length (0 or 1 =
	// period one), and the iterations covered by detector extrapolation
	// and by the analytic campaign drain. cmd/sweep aggregates these into
	// its -steady summary line.
	SteadyAt          int
	SteadyPeriod      int
	ExtrapolatedIters int
	CampaignIters     int
	// Report is the cell's full host-side telemetry record (provenance,
	// fast-path flags and WhyNot, host time by stage). Set on finished
	// events; never nil there. Aggregate with BuildSweepReport.
	Report *CellReport
}

// Runner executes batches of cells on a bounded host worker pool. The
// zero value runs with GOMAXPROCS workers and no memoization; it is a
// plain options struct and may be copied freely.
//
// Output ordering is deterministic: results come back in spec
// (presentation) order regardless of completion order, so rendered
// figures are byte-stable across Jobs values. The Jobs level never
// influences a cell's numbers — each cell simulates on its own Machine.
// Cross-run bit-identity of an individual cell follows the simulator's
// own contract: exact at SweepOptions.Threads 1, statistical at full
// team width, where the simulated coherence protocol resolves races in
// host arrival order (see internal/nas's equivalence tests).
type Runner struct {
	// Jobs bounds the number of concurrently simulated cells.
	// 0 or negative means runtime.GOMAXPROCS(0).
	Jobs int
	// Cache, when non-nil, memoizes completed cells across batches.
	Cache *Cache
	// OnEvent, when non-nil, receives per-cell progress events. Calls
	// are serialized by the runner, so the callback needs no locking.
	OnEvent func(Event)
	// TraceDir, when non-empty, attaches a fresh trace recorder to every
	// cell and writes, per cell, a Chrome trace_event JSON
	// (<bench>-<label>-class<C>.trace.json, loadable in about:tracing or
	// Perfetto) and a text summary (.summary.txt) into the directory.
	// Traced configs are never memoizable (see nas.Config.Fingerprint),
	// so every cell simulates fresh, bypassing the Cache.
	TraceDir string
	// NoFork disables prefix-snapshot sharing: every cell simulates its
	// own cold start from scratch instead of forking the shared prefix
	// held in the Cache. The results are identical either way (exactly so
	// at Threads 1 — the snapshot invariant proven in internal/nas); the
	// flag exists as a bisection escape hatch, like nas's ScalarRuns.
	NoFork bool
	// MetricsDir, when non-empty, attaches a fresh metrics.Sampler (with
	// per-iteration heatmaps) to every cell and writes its virtual-time
	// series into the directory as <bench>-<label>-class<C>.metrics.json
	// / .metrics.csv / .prom. Sampled configs are never memoizable (see
	// nas.Config.Fingerprint), so every cell simulates fresh, bypassing
	// the Cache and the prefix snapshots.
	MetricsDir string
	// MetricsRegistry, when non-nil, attaches a sampler to every cell
	// that publishes the cell's latest iteration sample as live labelled
	// gauges (page residency per node, local/remote refs, migrations) —
	// the data behind cmd/sweep's -metrics-addr endpoint. Like
	// MetricsDir, it disables memoization for the batch.
	MetricsRegistry *metrics.Registry
}

// Cells runs one batch of cell specs and returns their cells in spec
// order. On error it returns the first failing cell's error in
// presentation order (not completion order) and abandons cells that
// have not started. Cancelling ctx stops the batch promptly — cells
// already simulating run to completion, no new cell starts — and Cells
// returns ctx.Err().
func (r Runner) Cells(ctx context.Context, specs []CellSpec) ([]Cell, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, nil
	}
	// Create the output directories once per batch, not once per cell:
	// concurrent per-cell MkdirAll calls are redundant syscalls, and
	// failing before any simulation starts beats failing mid-sweep.
	for _, dir := range []string{r.TraceDir, r.MetricsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
	}
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}

	var emitMu sync.Mutex
	emit := func(ev Event) {
		if r.OnEvent == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		r.OnEvent(ev)
	}

	// cctx stops the feeder on the first failure; the caller's ctx is
	// consulted afterwards so an internal abort is not mistaken for an
	// external cancellation.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range specs {
			select {
			case next <- i:
			case <-cctx.Done():
				return
			}
		}
	}()

	cells := make([]Cell, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				spec := specs[i]
				emit(Event{Spec: spec, Index: i, Total: len(specs)})
				start := time.Now()
				c, rep, err := r.runCell(cctx, spec)
				host := time.Since(start)
				rep.setHost(host)
				cells[i], errs[i] = c, err
				emit(Event{Spec: spec, Index: i, Total: len(specs), Done: true,
					CacheHit: err == nil && rep.Source != SourceSimulated,
					VirtualS: c.Seconds(), Host: host, Err: err,
					SteadyAt: c.Result.SteadyAt, SteadyPeriod: c.Result.SteadyPeriod,
					ExtrapolatedIters: c.Result.ExtrapolatedIters,
					CampaignIters:     c.Result.CampaignIters,
					Report:            rep})
				if err != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The internal abort cancels cctx, so cells that were merely waiting
	// on the cache report context.Canceled; the failure that caused the
	// abort is the error worth reporting. Prefer it in presentation
	// order, falling back to a bare cancellation if that is all there is.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// runCell executes or recalls one cell. Memoizable cells simulate by
// forking the benchmark's shared cold-start prefix (simulated once per
// prefix fingerprint, held in the Cache) unless NoFork asks for the
// from-scratch path; either way the Cell is the same.
//
// The returned CellReport (never nil) carries the cell's provenance and
// host-stage attribution; the caller fills HostSeconds via setHost once
// it knows the total. The HostStages sink rides on the Config but is
// observation-only: it is outside the fingerprint, charges no virtual
// time, and leaves the cell bit-identical to an uninstrumented run.
func (r Runner) runCell(ctx context.Context, spec CellSpec) (Cell, *CellReport, error) {
	hs := &nas.HostStages{}
	meta := &cellMeta{source: SourceSimulated}
	spec.Config.HostStages = hs
	if r.Cache != nil {
		// Share verification outcomes across the batch: placement and
		// engine variants of one benchmark compute identical numerics, so
		// the first to verify spares every later extrapolating cell its
		// free-run tail. Attached before Key() on purpose — the
		// fingerprint canonicalises the cache away, results being
		// bit-identical with or without it.
		spec.Config.TailCache = r.Cache.verify
	}
	if r.TraceDir != "" {
		spec.Config.Tracer = trace.NewRecorder()
	}
	if r.MetricsDir != "" || r.MetricsRegistry != nil {
		spec.Config.Metrics = metrics.NewSampler(metrics.Options{
			Heatmap:  r.MetricsDir != "",
			Registry: r.MetricsRegistry,
			Cell:     cellBase(spec),
		})
	}
	if r.Cache != nil {
		if key, ok := spec.Key(); ok {
			sim := func() (Cell, error) { return run(spec.Bench, spec.Config) }
			if !r.NoFork {
				if pkey, ok := spec.Config.PrefixFingerprint(); ok {
					sim = func() (Cell, error) { return r.forkCell(ctx, spec, pkey) }
				}
			}
			c, _, err := r.Cache.cell(ctx, key, sim, meta)
			return c, newCellReport(spec, c, meta, hs), err
		}
	}
	c, err := run(spec.Bench, spec.Config)
	if err == nil && r.TraceDir != "" {
		err = r.writeTrace(spec, spec.Config.Tracer.(*trace.Recorder))
	}
	if err == nil && r.MetricsDir != "" {
		err = r.writeMetrics(spec, spec.Config.Metrics)
	}
	return c, newCellReport(spec, c, meta, hs), err
}

// forkCell simulates spec from the shared prefix snapshot for pkey,
// building the snapshot first if this is the fingerprint's first cell.
// Concurrent cells with the same prefix coalesce onto one cold-start
// simulation and fork independent clones from it.
func (r Runner) forkCell(ctx context.Context, spec CellSpec, pkey string) (Cell, error) {
	b, ok := Builder(spec.Bench)
	if !ok {
		return Cell{}, fmt.Errorf("exp: %w: %q", ErrUnknownBenchmark, spec.Bench)
	}
	// The prefix snapshot is shared by every cell with the same
	// fingerprint, so its simulation cost cannot fairly be charged to
	// whichever cell happened to lead the flight. Each cell instead
	// charges its own wait for the snapshot — the leader's wait IS the
	// simulation, a joiner's is shorter — which both attributes the time
	// and avoids double-counting it inside the timed-loop stage.
	hs := spec.Config.HostStages
	pcfg := spec.Config
	pcfg.HostStages = nil
	var t0 time.Time
	if hs != nil {
		t0 = time.Now()
	}
	p, err := r.Cache.prefix(ctx, spec.Bench+"\x00"+pkey, func() (*nas.Prefix, error) {
		return nas.RunPrefix(b, pcfg)
	})
	if hs != nil {
		hs.Prefix += time.Since(t0)
	}
	if err != nil {
		return Cell{}, fmt.Errorf("exp: %s %s: %w", spec.Bench, spec.Config.Label(), err)
	}
	res, err := p.RunFromSnapshot(spec.Config)
	if err != nil {
		return Cell{}, fmt.Errorf("exp: %s %s: %w", spec.Bench, spec.Config.Label(), err)
	}
	if res.VerifyErr != nil {
		return Cell{}, fmt.Errorf("exp: %s %s failed verification: %w", spec.Bench, spec.Config.Label(), res.VerifyErr)
	}
	r.Cache.noteFork()
	return Cell{Bench: spec.Bench, Label: res.Label, Result: res}, nil
}

// cellBase is a cell's canonical file/label stem, shared by the trace
// and metrics writers: "<bench>-<label>-class<C>[-x<scale>]".
func cellBase(spec CellSpec) string {
	base := fmt.Sprintf("%s-%s-class%s", strings.ToLower(spec.Bench),
		spec.Config.Label(), spec.Config.Class)
	if spec.Config.ComputeScale > 1 {
		base += fmt.Sprintf("-x%d", spec.Config.ComputeScale)
	}
	return base
}

// writeTrace dumps one traced cell's Chrome trace and text summary. The
// directory exists: Cells creates it before the batch starts.
func (r Runner) writeTrace(spec CellSpec, rec *trace.Recorder) error {
	base := cellBase(spec)
	events := rec.Events()

	tf, err := os.Create(filepath.Join(r.TraceDir, base+".trace.json"))
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(tf, events); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	sf, err := os.Create(filepath.Join(r.TraceDir, base+".summary.txt"))
	if err != nil {
		return err
	}
	trace.WriteSummary(sf, trace.Summarize(events))
	return sf.Close()
}

// writeMetrics dumps one sampled cell's time series in all three export
// formats: the JSON interchange form (heatmaps included), a flat CSV,
// and a Prometheus text snapshot of the final sample.
// The directory exists: Cells creates it before the batch starts.
func (r Runner) writeMetrics(spec CellSpec, s *metrics.Sampler) error {
	se := s.Series()
	base := cellBase(spec)
	for ext, write := range map[string]func(io.Writer) error{
		".metrics.json": se.WriteJSON,
		".metrics.csv":  se.WriteCSV,
		".prom":         se.WritePrometheus,
	} {
		f, err := os.Create(filepath.Join(r.MetricsDir, base+ext))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Figure1 runs the paper's Figure 1 sweep (see Figure1Specs) on the pool.
func (r Runner) Figure1(ctx context.Context, o SweepOptions) ([]Cell, error) {
	res, err := r.Sweep(ctx, SweepRequest{Kind: KindFigure1, Options: o})
	return res.Cells, err
}

// Figure4 runs the paper's Figure 4 sweep (see Figure4Specs) on the pool.
func (r Runner) Figure4(ctx context.Context, o SweepOptions) ([]Cell, error) {
	res, err := r.Sweep(ctx, SweepRequest{Kind: KindFigure4, Options: o})
	return res.Cells, err
}

// Table2 runs the paper's Table 2 cells (see Table2Specs) on the pool
// and assembles the rows.
func (r Runner) Table2(ctx context.Context, o SweepOptions) ([]Table2Row, error) {
	res, err := r.Sweep(ctx, SweepRequest{Kind: KindTable2, Options: o})
	return res.Table2, err
}

// Figure5 runs the paper's Figure 5 sweep (see Figure5Specs) on the
// pool: o.Benches (default BT and SP) under ft / ft-IRIXmig / ft-upmlib
// / ft-recrep at o.Scale (default 1).
func (r Runner) Figure5(ctx context.Context, o SweepOptions) ([]Figure5Cell, error) {
	res, err := r.Sweep(ctx, SweepRequest{Kind: KindFigure5, Options: o})
	return res.Figure5, err
}

// Figure6 is Figure5 with the paper's Figure 6 defaults: the
// synthetically scaled BT (Scale 4) unless o overrides them.
func (r Runner) Figure6(ctx context.Context, o SweepOptions) ([]Figure5Cell, error) {
	res, err := r.Sweep(ctx, SweepRequest{Kind: KindFigure6, Options: o})
	return res.Figure5, err
}

package exp

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/store"
)

// storeOptions is the smallest sweep that exercises the store: one
// benchmark at Threads 1, where the simulator is exactly reproducible,
// so "recalled from disk" and "recomputed" are bit-comparable.
var storeOptions = SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42, Threads: 1}

func sweepWithStore(t *testing.T, dir string) ([]Cell, CacheStats) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetStore(st)
	cells, err := Runner{Jobs: 2, Cache: c}.Figure1(context.Background(), storeOptions)
	if err != nil {
		t.Fatal(err)
	}
	return cells, c.Stats()
}

// TestStoreWarmStartBitIdentical is the acceptance invariant: a second
// process sharing the store directory simulates nothing and returns
// bit-identical cells. Two fresh Cache+Store pairs stand in for the two
// processes.
func TestStoreWarmStartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, s1 := sweepWithStore(t, dir)
	if s1.Misses == 0 || s1.StorePuts != s1.Misses || s1.DiskHits != 0 {
		t.Fatalf("cold run stats look wrong: %+v", s1)
	}
	warm, s2 := sweepWithStore(t, dir)
	if s2.Misses != 0 {
		t.Errorf("warm run simulated %d cells, want 0 (stats %+v)", s2.Misses, s2)
	}
	if s2.DiskHits != s1.Misses {
		t.Errorf("warm run recalled %d cells from disk, want %d", s2.DiskHits, s1.Misses)
	}
	if s2.Prefixes != 0 {
		t.Errorf("warm run simulated %d cold-start prefixes, want 0", s2.Prefixes)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("store-recalled cells differ from the simulated originals")
	}
}

// TestStoreCorruptRecordResimulated: a damaged record is detected (never
// served), only that cell re-simulates, and the rewrite repairs it.
func TestStoreCorruptRecordResimulated(t *testing.T) {
	dir := t.TempDir()
	cold, s1 := sweepWithStore(t, dir)

	// Bit-flip one record's payload on disk.
	specs := Figure1Specs(storeOptions)
	key, ok := specs[3].Key()
	if !ok {
		t.Fatal("spec not memoizable")
	}
	path := filepath.Join(dir, store.Address(key)+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, s2 := sweepWithStore(t, dir)
	if s2.Misses != 1 {
		t.Errorf("corrupt store re-simulated %d cells, want exactly the damaged 1 (stats %+v)", s2.Misses, s2)
	}
	if s2.StoreErrors == 0 {
		t.Error("corruption left no trace in StoreErrors")
	}
	if s2.DiskHits != s1.Misses-1 {
		t.Errorf("warm run recalled %d cells, want %d", s2.DiskHits, s1.Misses-1)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cells after corruption repair differ from the originals")
	}

	// The re-simulation's write-behind repaired the record.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(key); err != nil {
		t.Errorf("record not repaired by the re-simulating run: %v", err)
	}
}

// TestStoreMixedWithRAMHits: within one process the RAM level still
// fronts the disk level — a figure overlap (Figure 1 ⊂ Figure 4) is
// served from RAM, not re-read from disk.
func TestStoreMixedWithRAMHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetStore(st)
	r := Runner{Jobs: 2, Cache: c}
	if _, err := r.Figure4(context.Background(), storeOptions); err != nil {
		t.Fatal(err)
	}
	mid := c.Stats()
	if _, err := r.Figure1(context.Background(), storeOptions); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.DiskHits != 0 {
		t.Errorf("same-process overlap read %d cells from disk, want RAM hits only", s.DiskHits)
	}
	if s.Hits <= mid.Hits {
		t.Error("Figure 1 after Figure 4 produced no RAM hits")
	}
	if s.Misses != mid.Misses {
		t.Errorf("Figure 1 after Figure 4 re-simulated %d cells", s.Misses-mid.Misses)
	}
}

package exp

import (
	"sort"
	"time"

	"upmgo/internal/nas"
)

// FastPathKind classifies how a cell's answer was obtained, from
// cheapest to most expensive. The classification is strictly ordered:
// a recalled cell is "recalled" even if the process that originally
// simulated it extrapolated, and a campaign-drained cell that also
// extrapolated its tail counts as "campaign_ff" (the drain covers the
// larger share of skipped iterations).
type FastPathKind string

const (
	// FastPathRecalled: served from the RAM cache, an in-flight
	// duplicate, or the on-disk store — no simulation at all.
	FastPathRecalled FastPathKind = "recalled"
	// FastPathCampaign: a converging kernel-migration campaign was
	// drained analytically.
	FastPathCampaign FastPathKind = "campaign_ff"
	// FastPathSteadyPK: a period-k (k ≥ 2) orbit was proven and the
	// tail extrapolated.
	FastPathSteadyPK FastPathKind = "steady_period_k"
	// FastPathSteadyP1: a period-one steady state was proven and the
	// tail extrapolated.
	FastPathSteadyP1 FastPathKind = "steady_period_1"
	// FastPathFullSim: every iteration was simulated.
	FastPathFullSim FastPathKind = "full_sim"
)

// FastPathKinds is the presentation order of the kinds (cheapest first),
// shared with cmd/traceview's report renderer.
var FastPathKinds = []FastPathKind{
	FastPathRecalled, FastPathCampaign, FastPathSteadyPK, FastPathSteadyP1, FastPathFullSim,
}

// StageSeconds is a cell's (or a sweep's) host wall-time split by stage,
// in seconds. The named stages are nas.HostStages' plus two that only
// exist at the sweep layer: StoreProbe (the on-disk store lookup,
// charged by exp.Cache) and Recall (everything a recalled cell spent
// that was not the store probe — map lookups, waiting on an in-flight
// duplicate's simulation). The residual Host − Sum() is scheduling
// noise: goroutine wakeups, channel sends, the event callback.
type StageSeconds struct {
	StoreProbe  float64 `json:"store_probe,omitempty"`
	Recall      float64 `json:"recall,omitempty"`
	Prefix      float64 `json:"prefix,omitempty"`
	Fork        float64 `json:"fork,omitempty"`
	TimedLoop   float64 `json:"timed_loop,omitempty"`
	Extrapolate float64 `json:"extrapolate,omitempty"`
	FreeRunTail float64 `json:"free_run_tail,omitempty"`
	Verify      float64 `json:"verify,omitempty"`
}

// Sum returns the total seconds attributed to named stages.
func (s StageSeconds) Sum() float64 {
	return s.StoreProbe + s.Recall + s.Prefix + s.Fork +
		s.TimedLoop + s.Extrapolate + s.FreeRunTail + s.Verify
}

// add accumulates o into s.
func (s *StageSeconds) add(o StageSeconds) {
	s.StoreProbe += o.StoreProbe
	s.Recall += o.Recall
	s.Prefix += o.Prefix
	s.Fork += o.Fork
	s.TimedLoop += o.TimedLoop
	s.Extrapolate += o.Extrapolate
	s.FreeRunTail += o.FreeRunTail
	s.Verify += o.Verify
}

// stageNames pairs each stage with its value in presentation order,
// shared by cmd/traceview's renderer.
func (s StageSeconds) Each(f func(name string, seconds float64)) {
	f("store_probe", s.StoreProbe)
	f("recall", s.Recall)
	f("prefix", s.Prefix)
	f("fork", s.Fork)
	f("timed_loop", s.TimedLoop)
	f("extrapolate", s.Extrapolate)
	f("free_run_tail", s.FreeRunTail)
	f("verify", s.Verify)
}

// CellReport is one cell's host-side telemetry: where its answer came
// from, which fast paths engaged (or a typed WhyNot when none did), and
// where its host wall-time went. Telemetry only — it carries no virtual
// quantity that is not already in the Cell, and producing it never
// perturbs the simulation (see nas.HostStages).
type CellReport struct {
	Bench string `json:"bench"`
	Label string `json:"label"`
	Class string `json:"class"`
	// Source is SourceMemory, SourceStore or SourceSimulated.
	Source string       `json:"source"`
	Kind   FastPathKind `json:"kind"`
	// HostSeconds is the cell's total host wall-time as seen by the
	// worker that ran (or waited for) it; Stages attributes it.
	HostSeconds    float64      `json:"host_seconds"`
	VirtualSeconds float64      `json:"virtual_seconds"`
	Stages         StageSeconds `json:"stages"`
	FastPath       nas.FastPath `json:"fast_path"`
}

// newCellReport assembles the per-cell report from the run's host-stage
// sink and the cache's provenance record. HostSeconds and the Recall
// pseudo-stage are filled later by setHost, once the worker knows the
// cell's total wall-time.
func newCellReport(spec CellSpec, c Cell, meta *cellMeta, hs *nas.HostStages) *CellReport {
	label := c.Label
	if label == "" {
		label = spec.Config.Label()
	}
	rep := &CellReport{
		Bench:          spec.Bench,
		Label:          label,
		Class:          spec.Config.Class.String(),
		Source:         meta.source,
		VirtualSeconds: c.Seconds(),
		FastPath:       c.Result.FastPath,
		Stages: StageSeconds{
			StoreProbe:  meta.storeProbe.Seconds(),
			Prefix:      hs.Prefix.Seconds(),
			Fork:        hs.Fork.Seconds(),
			TimedLoop:   hs.TimedLoop.Seconds(),
			Extrapolate: hs.Extrapolate.Seconds(),
			FreeRunTail: hs.FreeRunTail.Seconds(),
			Verify:      hs.Verify.Seconds(),
		},
	}
	rep.Kind = classifyFastPath(rep.Source, c.Result)
	return rep
}

// setHost records the cell's total host wall-time and derives the
// Recall pseudo-stage: a recalled cell's time is, by definition,
// everything it spent that was not the store probe (map lookups,
// waiting on an in-flight duplicate). This is what keeps the sweep
// report's attribution near-total for warm sweeps.
func (cr *CellReport) setHost(d time.Duration) {
	cr.HostSeconds = d.Seconds()
	if cr.Source != SourceSimulated {
		if rec := cr.HostSeconds - cr.Stages.StoreProbe; rec > 0 {
			cr.Stages.Recall = rec
		}
	}
}

// classifyFastPath folds provenance and the run's fast-path flags into
// the single strongest kind.
func classifyFastPath(source string, r nas.Result) FastPathKind {
	switch {
	case source != SourceSimulated:
		return FastPathRecalled
	case r.CampaignIters > 0:
		return FastPathCampaign
	case r.ExtrapolatedIters > 0 && r.SteadyPeriod > 1:
		return FastPathSteadyPK
	case r.ExtrapolatedIters > 0:
		return FastPathSteadyP1
	default:
		return FastPathFullSim
	}
}

// WhyNotCount is one bucket of a sweep's why-not histogram: how many
// fully simulated cells declined the fast path for this reason, and
// which ones (as "BENCH label classC" strings, sorted — completion
// order is a race under concurrent jobs).
type WhyNotCount struct {
	Reason string   `json:"reason"`
	Count  int      `json:"count"`
	Cells  []string `json:"cells"`
}

// SweepReport aggregates a sweep's CellReports: the shape a maintainer
// reads to answer "where did the host time of this sweep go, and which
// cells refused to fast-forward". Written by `sweep -report`, rendered
// by `traceview report`.
type SweepReport struct {
	// Cells is the number of cells reported on.
	Cells int `json:"cells"`
	// HostSeconds is the sum of per-cell host wall-time. With J parallel
	// jobs it exceeds the sweep's elapsed time by up to a factor of J.
	HostSeconds float64 `json:"host_seconds"`
	// WallSeconds is the sweep's elapsed wall-clock, when the caller
	// measured it (cmd/sweep does); zero otherwise.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// ByKind counts cells by FastPathKind, cheapest kind first.
	ByKind map[FastPathKind]int `json:"cells_by_kind"`
	// Stages is the stage-attributed share of HostSeconds, summed over
	// all cells.
	Stages StageSeconds `json:"stage_seconds"`
	// Slowest lists the top-N cells by host time, slowest first.
	Slowest []CellReport `json:"slowest,omitempty"`
	// WhyNot is the histogram of typed fast-path refusals, largest
	// bucket first (ties alphabetical).
	WhyNot []WhyNotCount `json:"why_not,omitempty"`
}

// Attributed returns the fraction of HostSeconds the named stages
// account for, in [0, 1]; 0 when nothing was reported.
func (sr SweepReport) Attributed() float64 {
	if sr.HostSeconds <= 0 {
		return 0
	}
	f := sr.Stages.Sum() / sr.HostSeconds
	if f > 1 {
		f = 1
	}
	return f
}

// BuildSweepReport aggregates reports into a SweepReport, keeping the
// topN slowest cells (topN <= 0 means 5). Nil entries (cells that never
// produced a report) are skipped. Ordering is deterministic given the
// reports: Slowest breaks host-time ties by presentation order, and the
// why-not histogram breaks count ties alphabetically by reason.
func BuildSweepReport(reports []*CellReport, topN int) SweepReport {
	if topN <= 0 {
		topN = 5
	}
	sr := SweepReport{ByKind: map[FastPathKind]int{}}
	var kept []CellReport
	whyCells := map[string][]string{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		sr.Cells++
		sr.HostSeconds += r.HostSeconds
		sr.ByKind[r.Kind]++
		sr.Stages.add(r.Stages)
		kept = append(kept, *r)
		// Only cells simulated by this sweep belong in the histogram: a
		// recalled cell carries the original run's WhyNot in its FastPath
		// (RAM recall keeps the whole Result) but declined nothing itself,
		// and counting it would double every bucket under -all's
		// overlapping figures.
		if w := r.FastPath.WhyNot; w != nil && r.Kind != FastPathRecalled {
			whyCells[string(w.Reason)] = append(whyCells[string(w.Reason)],
				r.Bench+" "+r.Label+" class"+r.Class)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		return kept[i].HostSeconds > kept[j].HostSeconds
	})
	if len(kept) > topN {
		kept = kept[:topN]
	}
	sr.Slowest = kept
	for reason, cells := range whyCells {
		sort.Strings(cells)
		sr.WhyNot = append(sr.WhyNot, WhyNotCount{Reason: reason, Count: len(cells), Cells: cells})
	}
	sort.Slice(sr.WhyNot, func(i, j int) bool {
		if sr.WhyNot[i].Count != sr.WhyNot[j].Count {
			return sr.WhyNot[i].Count > sr.WhyNot[j].Count
		}
		return sr.WhyNot[i].Reason < sr.WhyNot[j].Reason
	})
	return sr
}

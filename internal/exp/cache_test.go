package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"upmgo/internal/nas"
	"upmgo/internal/vm"
)

// TestCacheWaiterRetriesAfterLeaderFailure regression-tests the
// cancel-then-retry bug: a waiter that joined an in-flight simulation used
// to inherit the leader's error permanently, so when the leader's caller
// was cancelled mid-flight, every coalesced caller of that key failed for
// the rest of the batch even though the key had never actually been tried
// on their behalf. A surviving waiter must retry (becoming the new leader)
// and succeed.
func TestCacheWaiterRetriesAfterLeaderFailure(t *testing.T) {
	c := NewCache()
	leaderStarted := make(chan struct{})
	releaseLeader := make(chan struct{})
	errAborted := errors.New("leader aborted")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.cell(context.Background(), "k", func() (Cell, error) {
			close(leaderStarted)
			<-releaseLeader
			return Cell{}, errAborted
		}, nil)
		if !errors.Is(err, errAborted) {
			t.Errorf("leader returned %v, want its own error", err)
		}
	}()
	<-leaderStarted

	waiterDone := make(chan struct{})
	var got Cell
	var hit bool
	var werr error
	go func() {
		defer close(waiterDone)
		got, hit, werr = c.cell(context.Background(), "k", func() (Cell, error) {
			return Cell{Bench: "BT"}, nil
		}, nil)
	}()
	// Give the waiter time to join the doomed flight; if it has not
	// joined yet it simply becomes the leader after the failure, which
	// must produce the same outcome.
	time.Sleep(10 * time.Millisecond)
	close(releaseLeader)
	<-waiterDone
	wg.Wait()

	if werr != nil {
		t.Fatalf("waiter inherited the leader's failure: %v", werr)
	}
	if got.Bench != "BT" {
		t.Errorf("waiter got %+v, want its retry's cell", got)
	}
	if hit {
		t.Error("waiter's retry ran its own simulation; served=true misreports it")
	}
	if _, served, err := c.cell(context.Background(), "k", nil, nil); err != nil || !served {
		t.Errorf("retried cell not cached: served=%v err=%v", served, err)
	}
}

// TestCacheWaiterHonoursOwnCancellation: a waiter whose own context dies
// mid-flight stops waiting and reports its context's error.
func TestCacheWaiterHonoursOwnCancellation(t *testing.T) {
	c := NewCache()
	leaderStarted := make(chan struct{})
	releaseLeader := make(chan struct{})
	defer close(releaseLeader)

	go c.cell(context.Background(), "k", func() (Cell, error) {
		close(leaderStarted)
		<-releaseLeader
		return Cell{Bench: "BT"}, nil
	}, nil)
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, _, err := c.cell(ctx, "k", nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
}

// TestCacheCancelledCallerNeverSimulates: a caller whose context is
// already dead must not start a simulation nobody will consume.
func TestCacheCancelledCallerNeverSimulates(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, _, err := c.cell(ctx, "k", func() (Cell, error) { ran = true; return Cell{}, nil }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Error("cancelled caller still ran its simulation")
	}
}

// TestRunnerTraceDir checks the trace side-channel: every cell of a
// traced batch writes a Chrome trace whose per-iteration spans (using the
// exact args.ps picoseconds) sum to the cell's reported execution time,
// plus a text summary — and traced cells bypass the memoization cache
// entirely.
func TestRunnerTraceDir(t *testing.T) {
	dir := t.TempDir()
	cache := NewCache()
	r := Runner{Jobs: 2, Cache: cache, TraceDir: dir}
	specs := []CellSpec{
		{Bench: "BT", Config: nas.Config{Class: nas.ClassS, Threads: 1}},
		{Bench: "BT", Config: nas.Config{Class: nas.ClassS, Placement: vm.WorstCase,
			UPM: nas.UPMDistribute, Threads: 1}},
	}
	cells, err := r.Cells(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("traced cells must bypass the cache, saw %+v", st)
	}
	for i, spec := range specs {
		base := fmt.Sprintf("bt-%s-classS", spec.Config.Label())
		blob, err := os.ReadFile(filepath.Join(dir, base+".trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(blob, &tr); err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		var sum, open int64
		for _, ev := range tr.TraceEvents {
			if ev.Name != "iteration" {
				continue
			}
			ps, ok := ev.Args["ps"].(float64)
			if !ok {
				t.Fatalf("%s: iteration %s record lacks args.ps", base, ev.Ph)
			}
			switch ev.Ph {
			case "B":
				open = int64(ps)
			case "E":
				sum += int64(ps) - open
			}
		}
		if sum != cells[i].Result.TotalPS {
			t.Errorf("%s: iteration spans sum to %d ps, cell reports %d ps",
				base, sum, cells[i].Result.TotalPS)
		}
		txt, err := os.ReadFile(filepath.Join(dir, base+".summary.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(txt), "phase breakdown") {
			t.Errorf("%s: summary lacks the phase breakdown", base)
		}
	}
}

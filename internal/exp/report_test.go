package exp

import (
	"context"
	"testing"

	"upmgo/internal/nas"
	"upmgo/internal/store"
)

// collectReports runs specs through r and returns the finished events'
// reports in presentation order.
func collectReports(t *testing.T, r Runner, specs []CellSpec) []*CellReport {
	t.Helper()
	reports := make([]*CellReport, len(specs))
	r.OnEvent = func(ev Event) {
		if ev.Done {
			reports[ev.Index] = ev.Report
		}
	}
	if _, err := r.Cells(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("cell %d finished without a report", i)
		}
	}
	return reports
}

// TestCellReportSimulated: a fresh simulation's report carries simulated
// provenance, the right fast-path kind, and a stage breakdown that is
// positive and bounded by the cell's total host time.
func TestCellReportSimulated(t *testing.T) {
	specs := []CellSpec{
		{Bench: "BT", Config: nas.Config{Class: nas.ClassS, Threads: 1, Iterations: 12,
			SteadyState: true, Extrapolate: true}},
		{Bench: "BT", Config: nas.Config{Class: nas.ClassS, Threads: 1, Iterations: 4}},
	}
	reports := collectReports(t, Runner{Jobs: 1, Cache: NewCache()}, specs)

	steady, full := reports[0], reports[1]
	if steady.Source != SourceSimulated || full.Source != SourceSimulated {
		t.Fatalf("fresh cells not marked simulated: %q, %q", steady.Source, full.Source)
	}
	if steady.Kind != FastPathSteadyP1 {
		t.Errorf("steady cell kind = %q, want %q (fastpath %+v)", steady.Kind, FastPathSteadyP1, steady.FastPath)
	}
	if !steady.FastPath.Extrapolated || steady.FastPath.WhyNot != nil {
		t.Errorf("steady cell fastpath = %+v, want extrapolated with nil WhyNot", steady.FastPath)
	}
	if steady.Stages.Extrapolate <= 0 {
		t.Errorf("steady cell charges no extrapolation time: %+v", steady.Stages)
	}
	if full.Kind != FastPathFullSim {
		t.Errorf("plain cell kind = %q, want %q", full.Kind, FastPathFullSim)
	}
	for _, rep := range reports {
		if rep.HostSeconds <= 0 {
			t.Errorf("%s %s: host seconds %v, want > 0", rep.Bench, rep.Label, rep.HostSeconds)
		}
		sum := rep.Stages.Sum()
		if sum <= 0 {
			t.Errorf("%s %s: no host time attributed: %+v", rep.Bench, rep.Label, rep.Stages)
		}
		// Every stage interval nests inside the worker's host window, so
		// the attributed sum can only trail the total, modulo clock
		// granularity — a 1ms allowance keeps the assertion robust on
		// coarse-clock platforms.
		if sum > rep.HostSeconds+1e-3 {
			t.Errorf("%s %s: attributed %.6fs exceeds host %.6fs", rep.Bench, rep.Label, sum, rep.HostSeconds)
		}
		if rep.Stages.TimedLoop <= 0 {
			t.Errorf("%s %s: simulated cell charges no timed-loop time: %+v", rep.Bench, rep.Label, rep.Stages)
		}
		if rep.Stages.Recall != 0 || rep.Stages.StoreProbe != 0 {
			t.Errorf("%s %s: simulated, storeless cell charges recall/store stages: %+v", rep.Bench, rep.Label, rep.Stages)
		}
		if rep.Label == "" || rep.Class != "S" || rep.Bench != "BT" {
			t.Errorf("mislabelled report: %+v", rep)
		}
	}
}

// TestCellReportRecalled: the same batch replayed against a warm cache
// reports memory provenance, the recalled kind, and attributes the
// (tiny) host cost to the recall pseudo-stage — the property that keeps
// warm-sweep attribution near-total.
func TestCellReportRecalled(t *testing.T) {
	specs := []CellSpec{{Bench: "CG", Config: nas.Config{Class: nas.ClassS, Threads: 1, Iterations: 4}}}
	r := Runner{Jobs: 1, Cache: NewCache()}
	collectReports(t, r, specs)
	reports := collectReports(t, r, specs)

	rep := reports[0]
	if rep.Source != SourceMemory {
		t.Fatalf("warm cell source = %q, want %q", rep.Source, SourceMemory)
	}
	if rep.Kind != FastPathRecalled {
		t.Errorf("warm cell kind = %q, want %q", rep.Kind, FastPathRecalled)
	}
	if rep.Stages.Recall <= 0 {
		t.Errorf("warm cell charges no recall time: %+v", rep.Stages)
	}
	if rep.Stages.TimedLoop != 0 || rep.Stages.Prefix != 0 {
		t.Errorf("warm cell charges simulation stages: %+v", rep.Stages)
	}
}

// TestCellReportStoreRecalled: a cell recalled from the on-disk store by
// a cold process reports store provenance and charges the probe.
func TestCellReportStoreRecalled(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []CellSpec{{Bench: "SP", Config: nas.Config{Class: nas.ClassS, Threads: 1, Iterations: 4}}}

	warm := NewCache()
	warm.SetStore(st)
	collectReports(t, Runner{Jobs: 1, Cache: warm}, specs)

	cold := NewCache()
	cold.SetStore(st)
	reports := collectReports(t, Runner{Jobs: 1, Cache: cold}, specs)
	rep := reports[0]
	if rep.Source != SourceStore {
		t.Fatalf("disk-recalled cell source = %q, want %q", rep.Source, SourceStore)
	}
	if rep.Kind != FastPathRecalled {
		t.Errorf("disk-recalled cell kind = %q, want %q", rep.Kind, FastPathRecalled)
	}
	if rep.Stages.StoreProbe <= 0 {
		t.Errorf("disk-recalled cell charges no store probe: %+v", rep.Stages)
	}
}

// TestCellReportWhyNotFlows: a steady-armed cell whose loop is too short
// carries its typed refusal through to the report, and the sweep
// aggregation buckets it.
func TestCellReportWhyNotFlows(t *testing.T) {
	specs := []CellSpec{{Bench: "BT", Config: nas.Config{Class: nas.ClassS, Threads: 1,
		Iterations: 3, SteadyState: true, Extrapolate: true}}}
	reports := collectReports(t, Runner{Jobs: 1, Cache: NewCache()}, specs)
	w := reports[0].FastPath.WhyNot
	if w == nil || w.Reason != nas.WhyNotLoopTooShort {
		t.Fatalf("report WhyNot = %+v, want reason %q", w, nas.WhyNotLoopTooShort)
	}
	sr := BuildSweepReport(reports, 0)
	if len(sr.WhyNot) != 1 || sr.WhyNot[0].Reason != string(nas.WhyNotLoopTooShort) || sr.WhyNot[0].Count != 1 {
		t.Fatalf("sweep why-not histogram = %+v", sr.WhyNot)
	}
	if len(sr.WhyNot[0].Cells) != 1 || sr.WhyNot[0].Cells[0] != "BT "+specs[0].Config.Label()+" classS" {
		t.Errorf("histogram does not name the cell: %+v", sr.WhyNot[0].Cells)
	}
}

// TestBuildSweepReport: aggregation arithmetic and ordering on synthetic
// reports — kind counts, stage sums, top-N slowest, attribution, and the
// deterministic why-not ordering (count desc, then reason asc).
func TestBuildSweepReport(t *testing.T) {
	why := func(reason nas.WhyNotReason) nas.FastPath {
		return nas.FastPath{WhyNot: &nas.WhyNot{Reason: reason}}
	}
	reports := []*CellReport{
		{Bench: "BT", Label: "ft", Class: "W", Source: SourceSimulated, Kind: FastPathFullSim,
			HostSeconds: 4, Stages: StageSeconds{TimedLoop: 3, Verify: 0.5}, FastPath: why(nas.WhyNotAperiodic)},
		{Bench: "SP", Label: "ft", Class: "W", Source: SourceSimulated, Kind: FastPathSteadyP1,
			HostSeconds: 2, Stages: StageSeconds{TimedLoop: 1, Extrapolate: 0.5}},
		{Bench: "CG", Label: "ft", Class: "W", Source: SourceMemory, Kind: FastPathRecalled,
			HostSeconds: 0.25, Stages: StageSeconds{Recall: 0.25}},
		nil, // a cell that never reported is skipped, not counted
		{Bench: "MG", Label: "ft-kmig", Class: "W", Source: SourceSimulated, Kind: FastPathFullSim,
			HostSeconds: 8, Stages: StageSeconds{TimedLoop: 7}, FastPath: why(nas.WhyNotHomesMoving)},
		{Bench: "FT", Label: "ft-kmig", Class: "W", Source: SourceSimulated, Kind: FastPathFullSim,
			HostSeconds: 6, Stages: StageSeconds{TimedLoop: 5}, FastPath: why(nas.WhyNotHomesMoving)},
	}
	sr := BuildSweepReport(reports, 2)
	if sr.Cells != 5 {
		t.Errorf("cells = %d, want 5", sr.Cells)
	}
	if sr.HostSeconds != 20.25 {
		t.Errorf("host seconds = %v, want 20.25", sr.HostSeconds)
	}
	if sr.ByKind[FastPathFullSim] != 3 || sr.ByKind[FastPathSteadyP1] != 1 || sr.ByKind[FastPathRecalled] != 1 {
		t.Errorf("by-kind = %v", sr.ByKind)
	}
	if sr.Stages.TimedLoop != 16 || sr.Stages.Recall != 0.25 {
		t.Errorf("stage sums = %+v", sr.Stages)
	}
	if len(sr.Slowest) != 2 || sr.Slowest[0].Bench != "MG" || sr.Slowest[1].Bench != "FT" {
		t.Errorf("slowest = %+v", sr.Slowest)
	}
	if got, want := sr.Attributed(), (3+0.5+1+0.5+0.25+7+5)/20.25; got != want {
		t.Errorf("attributed = %v, want %v", got, want)
	}
	if len(sr.WhyNot) != 2 ||
		sr.WhyNot[0].Reason != string(nas.WhyNotHomesMoving) || sr.WhyNot[0].Count != 2 ||
		sr.WhyNot[1].Reason != string(nas.WhyNotAperiodic) || sr.WhyNot[1].Count != 1 {
		t.Errorf("why-not histogram = %+v", sr.WhyNot)
	}
	// Cell lists are sorted, not completion-ordered: concurrent sweeps
	// finish cells in a racy order, and the report must not leak it.
	if sr.WhyNot[0].Cells[0] != "FT ft-kmig classW" || sr.WhyNot[0].Cells[1] != "MG ft-kmig classW" {
		t.Errorf("histogram cells = %+v", sr.WhyNot[0].Cells)
	}
}

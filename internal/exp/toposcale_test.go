package exp

import (
	"bytes"
	"strings"
	"testing"

	"upmgo/internal/nas"
)

// TestTopoScaleSpecsShapes: the scaling sweep enumerates Figure 4's
// placement×engine grid once per hierarchical shape, and o.Topo narrows
// it to a single machine.
func TestTopoScaleSpecsShapes(t *testing.T) {
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"CG"}}
	specs := TopoScaleSpecs(o)
	if want := 12 * len(TopoScaleShapes); len(specs) != want {
		t.Fatalf("got %d specs, want %d (12 cells × %d shapes)", len(specs), want, len(TopoScaleShapes))
	}
	seen := map[string]int{}
	for _, s := range specs {
		seen[s.Config.Topo]++
	}
	for _, shape := range TopoScaleShapes {
		if seen[shape] != 12 {
			t.Errorf("shape %s has %d specs, want 12", shape, seen[shape])
		}
	}

	o.Topo = "hier64"
	narrow := TopoScaleSpecs(o)
	if len(narrow) != 12 {
		t.Fatalf("narrowed sweep has %d specs, want 12", len(narrow))
	}
	for _, s := range narrow {
		if s.Config.Topo != "hier64" {
			t.Fatalf("narrowed spec carries topo %q", s.Config.Topo)
		}
	}
}

// TestTopoScale64CPUEndToEnd runs the full 64-CPU Figure-4 grid through
// the Runner: 12 placement×engine cells on the 4-socket hierarchy, every
// cell verified, labels carrying the @shape suffix, and the placement
// gap still open at 64 CPUs (the question the sweep exists to ask).
func TestTopoScale64CPUEndToEnd(t *testing.T) {
	cells, err := TopoScale(SweepOptions{
		Class: nas.ClassS, Benches: []string{"CG"}, Seed: 42, Topo: "hier64",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	byLabel := map[string]float64{}
	for _, c := range cells {
		if !strings.HasSuffix(c.Label, "@4x2x8") {
			t.Errorf("cell label %q lacks the @4x2x8 shape suffix", c.Label)
		}
		if !c.Result.Verified {
			t.Errorf("cell %s failed verification: %v", c.Label, c.Result.VerifyErr)
		}
		byLabel[c.Label] = c.Seconds()
	}
	if byLabel["ft-IRIX@4x2x8"] >= byLabel["wc-IRIX@4x2x8"] {
		t.Errorf("64 CPUs: ft (%.4f) not faster than wc (%.4f)",
			byLabel["ft-IRIX@4x2x8"], byLabel["wc-IRIX@4x2x8"])
	}
	if byLabel["wc-upmlib@4x2x8"] >= byLabel["wc-IRIX@4x2x8"] {
		t.Errorf("64 CPUs: UPMlib did not improve wc (%.4f vs %.4f)",
			byLabel["wc-upmlib@4x2x8"], byLabel["wc-IRIX@4x2x8"])
	}
}

// TestWriteTable1TopoRenders: the generalized ladder names the shape in
// its header and reaches the deeper hierarchy's extra hop distances.
func TestWriteTable1TopoRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1Topo(&buf, "hier64"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4x2x8", "remote memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("hier64 table missing %q:\n%s", want, out)
		}
	}
	if remote := strings.Count(out, "remote memory"); remote != 3 {
		t.Errorf("hier64 table has %d remote rows, want 3 (hops 1..3):\n%s", remote, out)
	}
	// Empty shape must stay byte-compatible with the legacy header.
	var def bytes.Buffer
	if err := WriteTable1Topo(&def, ""); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := WriteTable1(&legacy); err != nil {
		t.Fatal(err)
	}
	if def.String() != legacy.String() {
		t.Error("WriteTable1Topo(\"\") diverged from WriteTable1")
	}
	if err := WriteTable1Topo(&buf, "bogus"); err == nil {
		t.Error("bogus shape accepted")
	}
}

package exp

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"upmgo/internal/nas"
)

// TestRunnerParallelSerialEquivalence proves the acceptance invariant:
// for fixed SweepOptions, every figure/table returns bit-identical
// cells at -jobs 1 and -jobs 8. Run under -race in CI. Threads 1 makes
// each individual simulation exactly reproducible (the same contract as
// nas's bulk/scalar equivalence test), isolating the property under
// test: the host worker pool contributes no nondeterminism.
func TestRunnerParallelSerialEquivalence(t *testing.T) {
	ctx := context.Background()
	serial := Runner{Jobs: 1}
	parallel := Runner{Jobs: 8}
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42, Threads: 1}

	s1, err := serial.Figure1(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := parallel.Figure1(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, p1) {
		t.Error("Figure1 cells differ between -jobs 1 and -jobs 8")
	}

	s4, err := serial.Figure4(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := parallel.Figure4(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s4, p4) {
		t.Error("Figure4 cells differ between -jobs 1 and -jobs 8")
	}

	st, err := serial.Table2(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := parallel.Table2(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, pt) {
		t.Error("Table2 rows differ between -jobs 1 and -jobs 8")
	}

	f5 := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42, Threads: 1}
	s5, err := serial.Figure5(ctx, f5)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := parallel.Figure5(ctx, f5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s5, p5) {
		t.Error("Figure5 cells differ between -jobs 1 and -jobs 8")
	}

	f6 := SweepOptions{Class: nas.ClassS, Seed: 42, Iterations: 3, Threads: 1}
	s6, err := serial.Figure6(ctx, f6)
	if err != nil {
		t.Fatal(err)
	}
	p6, err := parallel.Figure6(ctx, f6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s6, p6) {
		t.Error("Figure6 cells differ between -jobs 1 and -jobs 8")
	}
}

// TestRunnerCacheOverlap proves the -all memoization: Figure 1 after
// Figure 4 performs zero new simulations, and so does Table 2, whose
// four cells per benchmark are Figure 4's UPMlib cells.
func TestRunnerCacheOverlap(t *testing.T) {
	ctx := context.Background()
	cache := NewCache()
	r := Runner{Jobs: 4, Cache: cache}
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42}

	f4, err := r.Figure4(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 12 || st.Hits != 0 {
		t.Fatalf("after Figure4: %+v, want 12 misses, 0 hits", st)
	}

	f1, err := r.Figure1(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 12 {
		t.Errorf("Figure1 after Figure4 simulated %d new cells, want 0", st.Misses-12)
	}
	if st.Hits != 8 {
		t.Errorf("Figure1 after Figure4 hit %d cells, want 8", st.Hits)
	}

	if _, err := r.Table2(ctx, o); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 12 {
		t.Errorf("Table2 after Figure4 simulated %d new cells, want 0", st.Misses-12)
	}

	// The recalled cells must be the very cells Figure 4 computed.
	f4ByLabel := map[string]Cell{}
	for _, c := range f4 {
		f4ByLabel[c.Label] = c
	}
	for _, c := range f1 {
		if !reflect.DeepEqual(c, f4ByLabel[c.Label]) {
			t.Errorf("cached cell %s differs from Figure4's", c.Label)
		}
	}

	// Figure 5 at native scale shares its ft-IRIX/ft-IRIXmig/ft-upmlib
	// cells with Figures 1/4; only ft-recrep is new.
	if _, err := r.Figure5(ctx, o); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 13 {
		t.Errorf("Figure5 after Figure4 simulated %d new cells, want 1 (ft-recrep)", st.Misses-12)
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Runner{Jobs: 2}).Figure1(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled sweep returned %v, want context.Canceled", err)
	}

	// Cancel mid-batch, from the progress callback after the first cell.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	r := Runner{Jobs: 1, OnEvent: func(ev Event) {
		if ev.Done {
			cancel()
		}
	}}
	if _, err := r.Figure1(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-batch cancellation returned %v, want context.Canceled", err)
	}
}

func TestRunnerProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	r := Runner{Jobs: 3, OnEvent: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42}
	cells, err := r.Figure1(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*len(cells) {
		t.Fatalf("got %d events for %d cells, want one started + one finished each", len(events), len(cells))
	}
	started, finished := map[int]bool{}, map[int]bool{}
	for _, ev := range events {
		if ev.Total != len(cells) {
			t.Errorf("event Total = %d, want %d", ev.Total, len(cells))
		}
		if ev.Done {
			finished[ev.Index] = true
			if ev.Err != nil {
				t.Errorf("cell %d finished with error %v", ev.Index, ev.Err)
			}
			if ev.VirtualS <= 0 {
				t.Errorf("cell %d reported %v virtual seconds", ev.Index, ev.VirtualS)
			}
			if ev.Host < 0 {
				t.Errorf("cell %d reported negative host duration", ev.Index)
			}
		} else {
			started[ev.Index] = true
		}
	}
	for i := range cells {
		if !started[i] || !finished[i] {
			t.Errorf("cell %d missing started/finished events (%v/%v)", i, started[i], finished[i])
		}
	}
}

func TestRunnerUnknownBenchmarkSentinel(t *testing.T) {
	_, err := Runner{Jobs: 2}.Figure1(context.Background(), SweepOptions{Class: nas.ClassS, Benches: []string{"UA"}})
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark returned %v, want ErrUnknownBenchmark", err)
	}
}

// TestSweepMatchesWrappers pins the unified entry point to the named
// wrappers: Sweep(KindFigure6) and Figure6 must produce identical cells,
// and an unknown kind must fail with the sentinel before any simulation.
func TestSweepMatchesWrappers(t *testing.T) {
	// Threads 1: comparing two fresh runs needs exact reproducibility.
	o := SweepOptions{Class: nas.ClassS, Seed: 42, Iterations: 3, Threads: 1, Benches: []string{"BT"}}
	res, err := Sweep(SweepRequest{Kind: KindFigure6, Options: o})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Figure5, direct) {
		t.Error("Sweep(KindFigure6) != Figure6 with the same options")
	}
	if res.Kind != KindFigure6 || res.Len() != len(direct) {
		t.Errorf("SweepResult kind/len = %s/%d, want %s/%d", res.Kind, res.Len(), KindFigure6, len(direct))
	}
	if _, err := Sweep(SweepRequest{Kind: "figure9", Options: o}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind returned %v, want ErrUnknownKind", err)
	}
	if _, err := SweepSpecs(SweepRequest{Kind: "figure9"}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("SweepSpecs with unknown kind returned %v, want ErrUnknownKind", err)
	}
}

// TestKindJSONRoundTrip: the enum validates on both marshal and
// unmarshal, so a bad "kind" fails at decode time.
func TestKindJSONRoundTrip(t *testing.T) {
	blob, err := json.Marshal(SweepRequest{Kind: KindTable2, Options: SweepOptions{Class: nas.ClassW, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	var req SweepRequest
	if err := json.Unmarshal(blob, &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindTable2 || req.Options.Class != nas.ClassW || req.Options.Seed != 7 {
		t.Errorf("round trip mangled the request: %+v", req)
	}
	if err := json.Unmarshal([]byte(`{"kind":"figure9"}`), &req); err == nil {
		t.Error("bad kind decoded without error")
	}
	if _, err := json.Marshal(SweepRequest{Kind: "nope"}); err == nil {
		t.Error("bad kind encoded without error")
	}
}

// TestCellSpecKeyCanonicalisation checks the overlap the cache depends
// on: Figure 1, Figure 4 and Figure 5 build their shared cells with
// syntactically different configs (ComputeScale 0 vs 1) that must
// collide on one key.
func TestCellSpecKeyCanonicalisation(t *testing.T) {
	o := SweepOptions{Class: nas.ClassS, Benches: []string{"BT"}, Seed: 42}
	keys := map[string]bool{}
	for _, s := range Figure4Specs(o) {
		k, ok := s.Key()
		if !ok {
			t.Fatalf("Figure4 spec %s not memoizable", s.Config.Label())
		}
		keys[k] = true
	}
	for _, s := range Figure1Specs(o) {
		if k, _ := s.Key(); !keys[k] {
			t.Errorf("Figure1 cell %s not covered by Figure4's keys", s.Config.Label())
		}
	}
	for _, s := range Table2Specs(o) {
		if k, _ := s.Key(); !keys[k] {
			t.Errorf("Table2 cell %s not covered by Figure4's keys", s.Config.Label())
		}
	}
	shared := 0
	for _, s := range Figure5Specs(o) {
		if k, _ := s.Key(); keys[k] {
			shared++
		}
	}
	if shared != 3 {
		t.Errorf("Figure5 shares %d cells with Figure4, want 3 (ft-IRIX, ft-IRIXmig, ft-upmlib)", shared)
	}
}

// Package exp regenerates every table and figure of the paper's
// evaluation on the simulated machine: Table 1 (memory hierarchy
// latencies), Figures 1 and 4 (execution time of the NAS benchmarks under
// the four placement schemes, with kernel migration and with UPMlib),
// Table 2 (steady-state slowdown and migration timing statistics),
// Figure 5 (record–replay on BT and SP) and Figure 6 (record–replay on
// the synthetically scaled BT).
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/nas/bt"
	"upmgo/internal/nas/cg"
	"upmgo/internal/nas/ep"
	"upmgo/internal/nas/ft"
	"upmgo/internal/nas/is"
	"upmgo/internal/nas/lu"
	"upmgo/internal/nas/mg"
	"upmgo/internal/nas/sp"
	"upmgo/internal/topology"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

// Builders maps benchmark names to constructors, in the paper's order.
var Builders = map[string]nas.Builder{
	"BT": bt.New,
	"SP": sp.New,
	"CG": cg.New,
	"MG": mg.New,
	"FT": ft.New,
}

// BenchOrder lists the benchmarks in the paper's presentation order.
var BenchOrder = []string{"BT", "SP", "CG", "MG", "FT"}

// ExtensionBuilders maps benchmarks beyond the paper's five. They are
// excluded from the figure sweeps (which reproduce the paper verbatim)
// but available to cmd/nasbench, cmd/pagemap and the extension benches.
var ExtensionBuilders = map[string]nas.Builder{
	"LU": lu.New,
	"EP": ep.New,
	"IS": is.New,
}

// Builder looks a benchmark up in the paper set first, then the
// extensions.
func Builder(name string) (nas.Builder, bool) {
	if b, ok := Builders[name]; ok {
		return b, true
	}
	b, ok := ExtensionBuilders[name]
	return b, ok
}

// Cell is one bar of a figure.
type Cell struct {
	Bench  string     `json:"bench"`
	Label  string     `json:"label"`
	Result nas.Result `json:"result"`
}

// Seconds returns the cell's main-loop time in virtual seconds.
func (c Cell) Seconds() float64 { return c.Result.Seconds() }

// ErrUnknownBenchmark reports a benchmark name outside the paper's five
// and the extensions. Callers match it with errors.Is.
var ErrUnknownBenchmark = errors.New("unknown NAS benchmark")

// newMachine builds a simulated machine, wrapping errors with the
// harness context. Table1 and the sweep cells (whose machines are built
// inside nas.Run and wrapped by run) share this error path.
func newMachine(mc machine.Config) (*machine.Machine, error) {
	m, err := machine.New(mc)
	if err != nil {
		return nil, fmt.Errorf("exp: build machine: %w", err)
	}
	return m, nil
}

// Table1 probes the simulated memory hierarchy exactly as the paper's
// Table 1 reports it: access latency by level and by hop count.
func Table1() ([]Row, error) { return Table1Topo("") }

// Table1Topo probes the ladder of a machine with the given shape (a
// topology.ParseShape string or preset; empty = the paper's default
// Origin2000). The row set follows the topology: after the cache and
// local rows, one remote row per hop distance at which some CPU exists —
// a 3-level hierarchy yields a longer ladder than the hypercube's three
// remote rows.
func Table1Topo(topo string) ([]Row, error) {
	mc := machine.DefaultConfig()
	if topo != "" {
		if err := mc.SetTopology(topo); err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
	}
	m, err := newMachine(mc)
	if err != nil {
		return nil, err
	}
	a := m.NewArray("probe", 1<<16)
	rows := []Row{}

	c := m.CPU(0)
	// Warm: fault the page, load the TLB, fill caches.
	c.Load(a.Addr(0))
	t0 := c.Now()
	c.Load(a.Addr(0))
	rows = append(rows, Row{"L1 cache", 0, float64(c.Now()-t0) / 1e3})

	c.FlushL1()
	t0 = c.Now()
	c.Load(a.Addr(0))
	rows = append(rows, Row{"L2 cache", 0, float64(c.Now()-t0) / 1e3})

	c.FlushL1L2()
	t0 = c.Now()
	c.Load(a.Addr(0))
	rows = append(rows, Row{"local memory", 0, float64(c.Now()-t0) / 1e3})

	// Remote probes: page is homed on node 0; pick CPUs at each distance.
	for hops := 1; hops <= m.Topo.MaxHops(); hops++ {
		probe := (*machine.CPU)(nil)
		for i := 0; i < m.NumCPUs(); i++ {
			if m.Topo.Hops(m.CPU(i).NodeID, 0) == hops {
				probe = m.CPU(i)
				break
			}
		}
		if probe == nil {
			continue
		}
		probe.Load(a.Addr(0)) // warm the TLB
		probe.FlushL1L2()
		t0 = probe.Now()
		probe.Load(a.Addr(0))
		rows = append(rows, Row{"remote memory", hops, float64(probe.Now()-t0) / 1e3})
	}
	return rows, nil
}

// Row is one line of Table 1.
type Row struct {
	Level   string
	Hops    int
	Nanosec float64
}

// WriteTable1 renders Table 1 for the default machine to w.
func WriteTable1(w io.Writer) error { return WriteTable1Topo(w, "") }

// WriteTable1Topo renders the latency ladder of a machine with the given
// shape (empty = the default Origin2000) to w.
func WriteTable1Topo(w io.Writer, topo string) error {
	rows, err := Table1Topo(topo)
	if err != nil {
		return err
	}
	if topo == "" {
		fmt.Fprintln(w, "Table 1. Access latency to the levels of the simulated Origin2000 hierarchy.")
	} else {
		sh, err := topology.ParseShape(topo)
		if err != nil {
			return fmt.Errorf("exp: %w", err)
		}
		fmt.Fprintf(w, "Table 1. Access latency to the levels of the simulated %s machine.\n", sh)
	}
	fmt.Fprintf(w, "%-16s %-16s %12s\n", "Level", "Distance(hops)", "Latency(ns)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-16d %12.1f\n", r.Level, r.Hops, r.Nanosec)
	}
	return nil
}

// SweepOptions selects what a figure sweep runs. The JSON form (all
// fields optional; zero values mean the figure's defaults) is the
// "options" object of cmd/sweepd's POST /v1/jobs body.
type SweepOptions struct {
	Class   nas.Class `json:"class"`
	Benches []string  `json:"benches,omitempty"` // nil = the figure's default set (all five; BT+SP for Figure 5)
	Seed    uint64    `json:"seed,omitempty"`
	// Scale repeats each phase body in place (the paper's synthetic
	// scaling; Figure 5 runs 1, Figure 6 runs 4). 0 = the figure's
	// default. Ignored by Figures 1/4 and Table 2, which the paper runs
	// at native phase length only.
	Scale      int `json:"scale,omitempty"`
	Iterations int `json:"iterations,omitempty"` // 0 = class default
	// Threads sets the simulated team size; 0 = all CPUs (the paper's
	// setup). Threads 1 makes every cell's simulation exactly
	// reproducible: multi-threaded teams are deterministic only up to
	// the simulator's intra-team interleaving (see the equivalence
	// contract in internal/nas).
	Threads int `json:"threads,omitempty"`
	// Steady arms the steady-state detector on every cell
	// (nas.Config.SteadyState); with Extrapolate also set, each cell
	// fast-forwards its tail once the per-iteration delta is proven to
	// repeat, cutting host time while every reported virtual-time
	// quantity stays bit-identical (the contract internal/nas's
	// steady-state tests enforce). Steady without Extrapolate is
	// detection-only: full simulation plus Result.SteadyAt.
	Steady      bool `json:"steady,omitempty"`
	Extrapolate bool `json:"extrapolate,omitempty"`
	// PeriodK caps the steady detector's orbit length per cell
	// (nas.Config.PeriodK): 0 = the default cap (8), 1 = period-one
	// detection only. Meaningful only with Steady.
	PeriodK int `json:"period_k,omitempty"`
	// NoCampaignFF disables the analytic campaign fast-forward on cells
	// where it would otherwise arm (extrapolating kernel-migration runs);
	// detection and extrapolation still apply. For A/B timing — results
	// are bit-identical either way.
	NoCampaignFF bool `json:"no_campaign_ff,omitempty"`
	// ResidentElide arms the machine's resident-elision fast path on
	// every cell (nas.Config.ResidentElide). Bit-identical by proof;
	// never part of a cell's fingerprint.
	ResidentElide bool `json:"resident_elide,omitempty"`
	// Topo runs every cell on a machine of this shape (a
	// topology.ParseShape string or preset — "4x2x8", "hier64",
	// "cube:2x2x2") instead of the class default. For the toposcale sweep
	// it narrows the shape set to just this shape. Empty = class default
	// machine; shapes cube-equivalent to it canonicalise away, so their
	// cells share the default cells' cache entries and store records.
	Topo string `json:"topo,omitempty"`
}

func (o *SweepOptions) defaults() {
	if o.Benches == nil {
		o.Benches = BenchOrder
	}
}

// run executes one configuration cell.
func run(bench string, cfg nas.Config) (Cell, error) {
	b, ok := Builder(bench)
	if !ok {
		return Cell{}, fmt.Errorf("exp: %w: %q", ErrUnknownBenchmark, bench)
	}
	r, err := nas.Run(b, cfg)
	if err != nil {
		return Cell{}, fmt.Errorf("exp: %s %s: %w", bench, cfg.Label(), err)
	}
	if r.VerifyErr != nil {
		return Cell{}, fmt.Errorf("exp: %s %s failed verification: %w", bench, cfg.Label(), r.VerifyErr)
	}
	return Cell{Bench: bench, Label: r.Label, Result: r}, nil
}

// Figure1Specs enumerates the paper's Figure 1 in presentation order:
// each benchmark under ft/rr/rand/wc placement, plain and with the
// IRIX-style kernel migration engine (8 cells per benchmark).
func Figure1Specs(o SweepOptions) []CellSpec {
	o.defaults()
	var specs []CellSpec
	for _, bench := range o.Benches {
		for _, p := range vm.Policies {
			for _, km := range []bool{false, true} {
				specs = append(specs, CellSpec{bench, nas.Config{
					Class: o.Class, Placement: p, KernelMig: km,
					Seed: o.Seed, Iterations: o.Iterations, Threads: o.Threads,
					SteadyState: o.Steady, Extrapolate: o.Steady && o.Extrapolate,
					PeriodK: o.PeriodK, NoCampaignFF: o.NoCampaignFF, ResidentElide: o.ResidentElide,
					Topo: o.Topo,
				}})
			}
		}
	}
	return specs
}

// Figure4Specs enumerates the paper's Figure 4 in presentation order:
// Figure 1 plus a UPMlib cell per placement (12 cells per benchmark).
// Figure 1's cells are a strict subset, so a shared Cache runs the
// overlap once.
func Figure4Specs(o SweepOptions) []CellSpec {
	o.defaults()
	var specs []CellSpec
	for _, bench := range o.Benches {
		for _, p := range vm.Policies {
			for _, mode := range []struct {
				km  bool
				upm nas.Mode
			}{{false, nas.UPMOff}, {true, nas.UPMOff}, {false, nas.UPMDistribute}} {
				specs = append(specs, CellSpec{bench, nas.Config{
					Class: o.Class, Placement: p, KernelMig: mode.km, UPM: mode.upm,
					Seed: o.Seed, Iterations: o.Iterations, Threads: o.Threads,
					SteadyState: o.Steady, Extrapolate: o.Steady && o.Extrapolate,
					PeriodK: o.PeriodK, NoCampaignFF: o.NoCampaignFF, ResidentElide: o.ResidentElide,
					Topo: o.Topo,
				}})
			}
		}
	}
	return specs
}

// TopoScaleShapes are the hierarchical machine shapes of the scaling
// sweep, in CPU-count order: 64, 128 and 256 CPUs (8, 16 and 32 NUMA
// nodes). They are preset names; topology.Presets spells them out.
var TopoScaleShapes = []string{"hier64", "hier128", "hier256"}

// TopoScaleSpecs enumerates the placement×engine grid of Figure 4 on
// each hierarchical machine shape, in shape order — the sweep that asks
// where the paper's "balanced placement is enough" conclusion breaks as
// the machine grows past the Origin2000. o.Topo, when set, narrows the
// sweep to that single shape (e.g. just the 64-CPU machine).
func TopoScaleSpecs(o SweepOptions) []CellSpec {
	shapes := TopoScaleShapes
	if o.Topo != "" {
		shapes = []string{o.Topo}
	}
	var specs []CellSpec
	for _, shape := range shapes {
		so := o
		so.Topo = shape
		specs = append(specs, Figure4Specs(so)...)
	}
	return specs
}

// TopoScale runs the hierarchical scaling sweep with a default Runner.
func TopoScale(o SweepOptions) ([]Cell, error) {
	return Runner{}.Cells(context.Background(), TopoScaleSpecs(o))
}

// Figure1 reproduces the paper's Figure 1 with a default Runner
// (parallel, unmemoized). For cancellation, shared caching and
// progress, use Runner.Figure1.
func Figure1(o SweepOptions) ([]Cell, error) {
	return Runner{}.Figure1(context.Background(), o)
}

// Figure4 reproduces the paper's Figure 4 with a default Runner.
func Figure4(o SweepOptions) ([]Cell, error) {
	return Runner{}.Figure4(context.Background(), o)
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Bench string `json:"bench"`
	// SlowdownTail[p] is the slowdown vs first-touch measured over the
	// last 75% of the iterations, per non-ft placement.
	SlowdownTail map[string]float64 `json:"slowdown_tail"`
	// FirstIterFrac[p] is the fraction of UPMlib page migrations that
	// happened in the first invocation.
	FirstIterFrac map[string]float64 `json:"first_iter_frac"`
}

// table2Placements are the non-ft placements Table 2 compares against
// the first-touch baseline, in the paper's column order.
var table2Placements = []vm.Policy{vm.RoundRobin, vm.Random, vm.WorstCase}

// Table2Specs enumerates the paper's Table 2 cells in presentation
// order: per benchmark, the UPMlib-enabled ft baseline followed by the
// rr/rand/wc runs. All four also appear in Figure 4, so a shared Cache
// reruns none of them.
func Table2Specs(o SweepOptions) []CellSpec {
	o.defaults()
	var specs []CellSpec
	for _, bench := range o.Benches {
		for _, p := range append([]vm.Policy{vm.FirstTouch}, table2Placements...) {
			specs = append(specs, CellSpec{bench, nas.Config{
				Class: o.Class, Placement: p, UPM: nas.UPMDistribute,
				Seed: o.Seed, Iterations: o.Iterations, Threads: o.Threads,
				SteadyState: o.Steady, Extrapolate: o.Steady && o.Extrapolate,
				PeriodK: o.PeriodK, NoCampaignFF: o.NoCampaignFF, ResidentElide: o.ResidentElide,
				Topo: o.Topo,
			}})
		}
	}
	return specs
}

// Table2 reproduces the paper's Table 2 with a default Runner.
func Table2(o SweepOptions) ([]Table2Row, error) {
	return Runner{}.Table2(context.Background(), o)
}

// tailSlowdown compares the last 75% of the iterations of a run against
// the first-touch baseline (the paper's Table 2 metric).
func tailSlowdown(iters, base []int64) float64 {
	n := len(iters)
	if n == 0 || len(base) != n {
		return 0
	}
	from := n / 4
	var a, b int64
	for i := from; i < n; i++ {
		a += iters[i]
		b += base[i]
	}
	if b == 0 {
		return 0
	}
	return float64(a)/float64(b) - 1
}

// Figure5Cell is one bar of Figure 5: total time plus the non-overlapped
// migration overhead (the striped bar segment).
type Figure5Cell struct {
	Bench      string  `json:"bench"`
	Label      string  `json:"label"`
	Seconds    float64 `json:"seconds"`
	OverheadS  float64 `json:"overhead_s"` // UPMlib overhead charged on the critical path
	PhaseS     float64 `json:"phase_s"`    // cumulative marked-phase (z_solve) time
	Migrations int64   `json:"migrations"`
}

// Figure5Specs enumerates the paper's Figure 5/6 cells in presentation
// order: o.Benches (default BT and SP) with ft placement under IRIX /
// IRIXmig / upmlib / record-replay, each phase body repeated o.Scale
// times (default 1; Figure 6 uses 4). At Scale 1 the first three cells
// per benchmark also appear in Figures 1 and 4, so a shared Cache
// recalls them.
func Figure5Specs(o SweepOptions) []CellSpec {
	if o.Benches == nil {
		o.Benches = []string{"BT", "SP"}
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	// The paper's "n most critical pages" is 20 pages of 16 KB; on the
	// scaled-down classes the equivalent amount of data spans more of the
	// smaller pages.
	mc := machine.DefaultConfig()
	o.Class.MachineTweak(&mc)
	maxCritical := 20 * 16 * 1024 / mc.PageBytes
	var specs []CellSpec
	for _, bench := range o.Benches {
		cfgs := []nas.Config{
			{Placement: vm.FirstTouch},
			{Placement: vm.FirstTouch, KernelMig: true},
			{Placement: vm.FirstTouch, UPM: nas.UPMDistribute},
			{Placement: vm.FirstTouch, UPM: nas.UPMRecRep,
				UPMOptions: upm.Options{MaxCritical: maxCritical}},
		}
		for _, cfg := range cfgs {
			cfg.Class = o.Class
			cfg.Seed = o.Seed
			cfg.Iterations = o.Iterations
			cfg.Threads = o.Threads
			cfg.ComputeScale = o.Scale
			cfg.SteadyState = o.Steady
			cfg.Extrapolate = o.Steady && o.Extrapolate
			cfg.PeriodK = o.PeriodK
			cfg.NoCampaignFF = o.NoCampaignFF
			cfg.ResidentElide = o.ResidentElide
			cfg.Topo = o.Topo
			// Repeating each phase body in place (the paper's synthetic
			// scaling) changes the numerics, exactly as in the paper,
			// where the scaled experiment is timed but not verified.
			cfg.SkipVerify = o.Scale > 1
			specs = append(specs, CellSpec{bench, cfg})
		}
	}
	return specs
}

// Figure5 reproduces the paper's Figure 5 with a default Runner:
// o.Benches (default BT and SP) at o.Scale (default 1).
func Figure5(o SweepOptions) ([]Figure5Cell, error) {
	return Runner{}.Figure5(context.Background(), o)
}

// Figure6 reproduces the paper's Figure 6: the synthetically scaled BT
// (each phase repeated 4 times) under the Figure 5 configurations.
func Figure6(o SweepOptions) ([]Figure5Cell, error) {
	return Runner{}.Figure6(context.Background(), o)
}

// Summary aggregates a figure's cells the way the paper's Section 2.2
// narrates them: average slowdown per placement relative to ft-IRIX.
type Summary struct {
	// Slowdown[label] is the mean over benchmarks of
	// time(label)/time(ft with the same engine setting) - 1.
	Slowdown map[string]float64
}

// Summarise computes per-label mean slowdowns vs the ft bar with the same
// engine suffix.
func Summarise(cells []Cell) Summary {
	type key struct{ bench, label string }
	times := map[key]float64{}
	labels := map[string]bool{}
	benches := map[string]bool{}
	for _, c := range cells {
		times[key{c.Bench, c.Label}] = c.Seconds()
		labels[c.Label] = true
		benches[c.Bench] = true
	}
	s := Summary{Slowdown: map[string]float64{}}
	for label := range labels {
		suffix := label[strings.Index(label, "-"):]
		base := "ft" + suffix
		var sum float64
		var n int
		for bench := range benches {
			b, ok1 := times[key{bench, base}]
			v, ok2 := times[key{bench, label}]
			if ok1 && ok2 && b > 0 {
				sum += v/b - 1
				n++
			}
		}
		if n > 0 {
			s.Slowdown[label] = sum / float64(n)
		}
	}
	return s
}

// WriteCells renders a figure's cells as grouped ASCII bars.
func WriteCells(w io.Writer, title string, cells []Cell) {
	fmt.Fprintln(w, title)
	byBench := map[string][]Cell{}
	for _, c := range cells {
		byBench[c.Bench] = append(byBench[c.Bench], c)
	}
	var benches []string
	for b := range byBench {
		benches = append(benches, b)
	}
	sort.Slice(benches, func(i, j int) bool { return orderOf(benches[i]) < orderOf(benches[j]) })
	for _, b := range benches {
		group := byBench[b]
		var max float64
		for _, c := range group {
			if s := c.Seconds(); s > max {
				max = s
			}
		}
		fmt.Fprintf(w, "\n%s (virtual seconds, %d iterations)\n", b, len(group[0].Result.IterPS))
		for _, c := range group {
			bar := strings.Repeat("#", int(40*c.Seconds()/max+0.5))
			fmt.Fprintf(w, "  %-14s %9.4f  %s\n", c.Label, c.Seconds(), bar)
		}
	}
}

func orderOf(b string) int {
	for i, n := range BenchOrder {
		if n == b {
			return i
		}
	}
	return len(BenchOrder)
}

// WriteTable2 renders Table 2 to w.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2. Slowdown (vs ft) in the last 75% of the iterations, and the")
	fmt.Fprintln(w, "fraction of UPMlib migrations performed in the first iteration.")
	fmt.Fprintf(w, "%-6s | %8s %8s %8s | %8s %8s %8s\n", "Bench",
		"rr", "rand", "wc", "rr", "rand", "wc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s | %7.1f%% %7.1f%% %7.1f%% | %7.0f%% %7.0f%% %7.0f%%\n", r.Bench,
			100*r.SlowdownTail["rr"], 100*r.SlowdownTail["rand"], 100*r.SlowdownTail["wc"],
			100*r.FirstIterFrac["rr"], 100*r.FirstIterFrac["rand"], 100*r.FirstIterFrac["wc"])
	}
}

// WriteCellsCSV renders a figure's cells as CSV (benchmark, label,
// virtual seconds, remote ratio, migrations) for external plotting.
func WriteCellsCSV(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "benchmark,label,virtual_seconds,remote_ratio,upm_migrations,kernel_migrations")
	for _, c := range cells {
		fmt.Fprintf(w, "%s,%s,%.6f,%.4f,%d,%d\n",
			c.Bench, c.Label, c.Seconds(), c.Result.Mach.RemoteRatio(),
			c.Result.UPM.Migrations+c.Result.UPM.ReplayMigrations, c.Result.KmigMoves)
	}
}

// WriteFigure5 renders Figure 5/6 cells.
func WriteFigure5(w io.Writer, title string, cells []Figure5Cell) {
	fmt.Fprintln(w, title)
	var max float64
	for _, c := range cells {
		if c.Seconds > max {
			max = c.Seconds
		}
	}
	for _, c := range cells {
		bar := strings.Repeat("#", int(40*(c.Seconds-c.OverheadS)/max+0.5))
		over := strings.Repeat("/", int(40*c.OverheadS/max+0.5))
		fmt.Fprintf(w, "  %-3s %-12s %9.4fs (phase %7.4fs, overhead %7.4fs, migs %4d) %s%s\n",
			c.Bench, c.Label, c.Seconds, c.PhaseS, c.OverheadS, c.Migrations, bar, over)
	}
}

package exp

import "upmgo/internal/metrics"

// DescribeSweepGauges registers the sweep progress metric families —
// the upmgo_sweep_cells_* series behind cmd/sweep's -metrics-addr
// endpoint and cmd/sweepd's /metrics — alongside whatever per-cell
// NUMA families the samplers publish.
func DescribeSweepGauges(reg *metrics.Registry) {
	reg.Describe("upmgo_sweep_cells_inflight", "gauge", "Cells currently simulating on the worker pool.")
	reg.Describe("upmgo_sweep_cells_done", "counter", "Finished cells by outcome (simulated vs recalled from the memo cache).")
	reg.Describe("upmgo_sweep_cells_forked", "gauge", "Cells whose cold start was forked from a shared prefix snapshot.")
	reg.Describe("upmgo_sweep_prefix_snapshots", "gauge", "Distinct cold-start prefixes simulated and snapshotted.")
	reg.Describe("upmgo_sweep_cells_disk_hits", "gauge", "Cells recalled from the on-disk result store instead of simulating.")
	reg.Describe("upmgo_sweep_cells_stored", "gauge", "Cells persisted to the on-disk result store.")
	metrics.DescribeCellSeconds(reg)
}

// PublishSweepEvent keeps the sweep gauges current from a Runner's
// OnEvent stream. The runner serializes OnEvent calls, and the registry
// locks internally, so the scraping goroutine always sees a consistent
// snapshot.
func PublishSweepEvent(reg *metrics.Registry, cache *Cache, ev Event) {
	if !ev.Done {
		reg.Add("upmgo_sweep_cells_inflight", nil, 1)
		return
	}
	reg.Add("upmgo_sweep_cells_inflight", nil, -1)
	result := "simulated"
	if ev.CacheHit {
		result = "recalled"
	}
	reg.Add("upmgo_sweep_cells_done", metrics.Labels{"result": result}, 1)
	if rep := ev.Report; rep != nil {
		metrics.ObserveCellSeconds(reg, rep.Bench, rep.Label, rep.HostSeconds)
	}
	st := cache.Stats()
	reg.Set("upmgo_sweep_cells_forked", nil, float64(st.Forked))
	reg.Set("upmgo_sweep_prefix_snapshots", nil, float64(st.Prefixes))
	reg.Set("upmgo_sweep_cells_disk_hits", nil, float64(st.DiskHits))
	reg.Set("upmgo_sweep_cells_stored", nil, float64(st.StorePuts))
}

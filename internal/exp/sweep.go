package exp

import (
	"context"
	"errors"
	"fmt"
)

// Kind names one of the paper's five sweeps. It is the discriminator of
// SweepRequest — the same value that appears in the wire form of
// cmd/sweepd's POST /v1/jobs body — and marshals as its string name.
type Kind string

// The paper's sweeps, in presentation order.
const (
	KindFigure1 Kind = "figure1" // Figure 1: four placements × {plain, IRIX kernel migration}
	KindFigure4 Kind = "figure4" // Figure 4: Figure 1 plus a UPMlib cell per placement
	KindTable2  Kind = "table2"  // Table 2: steady-state slowdown and migration timing
	KindFigure5 Kind = "figure5" // Figure 5: record–replay on BT and SP
	KindFigure6 Kind = "figure6" // Figure 6: record–replay on the synthetically scaled BT

	// KindTopoScale is not in the paper: it reruns the Figure 4 grid on
	// the hierarchical 64/128/256-CPU machine shapes (TopoScaleShapes,
	// narrowed by Options.Topo) to probe where the paper's conclusion
	// breaks on modern machines.
	KindTopoScale Kind = "toposcale"
)

// Kinds lists every valid Kind in presentation order.
var Kinds = []Kind{KindFigure1, KindFigure4, KindTable2, KindFigure5, KindFigure6, KindTopoScale}

// ErrUnknownKind reports a Kind outside the paper's five sweeps. Callers
// match it with errors.Is; cmd/sweepd maps it to 400 Bad Request.
var ErrUnknownKind = errors.New("unknown sweep kind")

// ParseKind converts a string to a Kind, or ErrUnknownKind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("exp: %w: %q", ErrUnknownKind, s)
}

func (k Kind) String() string { return string(k) }

// MarshalText lets Kind serialize inside JSON job specs.
func (k Kind) MarshalText() ([]byte, error) {
	if _, err := ParseKind(string(k)); err != nil {
		return nil, err
	}
	return []byte(k), nil
}

// UnmarshalText validates on the way in, so a bad "kind" field fails at
// decode time, not deep inside a dispatch.
func (k *Kind) UnmarshalText(b []byte) error {
	parsed, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// SweepRequest is the one request surface for every sweep: which figure
// or table to produce, and the options its cells run under. Its JSON
// form is exactly cmd/sweepd's POST /v1/jobs body.
type SweepRequest struct {
	Kind    Kind         `json:"kind"`
	Options SweepOptions `json:"options"`
}

// SweepResult carries whichever shape the request's Kind produces:
// Cells for Figures 1 and 4 and the toposcale sweep, Table2 for Table 2,
// Figure5 for Figures 5 and 6. Exactly one of the three payload fields is
// non-nil on success.
type SweepResult struct {
	Kind    Kind          `json:"kind"`
	Cells   []Cell        `json:"cells,omitempty"`
	Table2  []Table2Row   `json:"table2,omitempty"`
	Figure5 []Figure5Cell `json:"figure5,omitempty"`
}

// Sweep runs one sweep with a default Runner (parallel, unmemoized).
// For cancellation, shared caching and progress, use Runner.Sweep.
func Sweep(req SweepRequest) (SweepResult, error) {
	return Runner{}.Sweep(context.Background(), req)
}

// Sweep dispatches one request to the pool. It is the single entry
// point behind the Figure1/Figure4/Table2/Figure5/Figure6 wrappers and
// behind cmd/sweepd's job executor; an unknown Kind fails with
// ErrUnknownKind before any cell starts.
func (r Runner) Sweep(ctx context.Context, req SweepRequest) (SweepResult, error) {
	out := SweepResult{Kind: req.Kind}
	var err error
	switch req.Kind {
	case KindFigure1:
		out.Cells, err = r.Cells(ctx, Figure1Specs(req.Options))
	case KindFigure4:
		out.Cells, err = r.Cells(ctx, Figure4Specs(req.Options))
	case KindTable2:
		out.Table2, err = r.table2(ctx, req.Options)
	case KindFigure5:
		out.Figure5, err = r.figure5(ctx, req.Options)
	case KindFigure6:
		out.Figure5, err = r.figure5(ctx, figure6Options(req.Options))
	case KindTopoScale:
		out.Cells, err = r.Cells(ctx, TopoScaleSpecs(req.Options))
	default:
		return SweepResult{}, fmt.Errorf("exp: %w: %q", ErrUnknownKind, req.Kind)
	}
	if err != nil {
		return SweepResult{Kind: req.Kind}, err
	}
	return out, nil
}

// SweepSpecs enumerates the cells a request would run, in presentation
// order, without running them. cmd/sweepd uses it to size a job's
// progress denominator at submission time.
func SweepSpecs(req SweepRequest) ([]CellSpec, error) {
	switch req.Kind {
	case KindFigure1:
		return Figure1Specs(req.Options), nil
	case KindFigure4:
		return Figure4Specs(req.Options), nil
	case KindTable2:
		return Table2Specs(req.Options), nil
	case KindFigure5:
		return Figure5Specs(req.Options), nil
	case KindFigure6:
		return Figure5Specs(figure6Options(req.Options)), nil
	case KindTopoScale:
		return TopoScaleSpecs(req.Options), nil
	default:
		return nil, fmt.Errorf("exp: %w: %q", ErrUnknownKind, req.Kind)
	}
}

// figure6Options applies the paper's Figure 6 defaults — the
// synthetically scaled BT (Scale 4) — unless o overrides them.
func figure6Options(o SweepOptions) SweepOptions {
	if o.Benches == nil {
		o.Benches = []string{"BT"}
	}
	if o.Scale == 0 {
		o.Scale = 4
	}
	return o
}

// table2 runs the Table 2 cells and assembles the rows.
func (r Runner) table2(ctx context.Context, o SweepOptions) ([]Table2Row, error) {
	o.defaults()
	cells, err := r.Cells(ctx, Table2Specs(o))
	if err != nil {
		return nil, err
	}
	per := 1 + len(table2Placements)
	var out []Table2Row
	for i, bench := range o.Benches {
		ft := cells[i*per]
		row := Table2Row{Bench: bench, SlowdownTail: map[string]float64{}, FirstIterFrac: map[string]float64{}}
		for j, p := range table2Placements {
			c := cells[i*per+1+j]
			row.SlowdownTail[p.String()] = tailSlowdown(c.Result.IterPS, ft.Result.IterPS)
			if m := c.Result.UPM.Migrations; m > 0 {
				row.FirstIterFrac[p.String()] = float64(c.Result.UPM.FirstInvocation) / float64(m)
			} else {
				row.FirstIterFrac[p.String()] = 1
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// figure5 runs the Figure 5/6 cells and derives the bar segments.
func (r Runner) figure5(ctx context.Context, o SweepOptions) ([]Figure5Cell, error) {
	cells, err := r.Cells(ctx, Figure5Specs(o))
	if err != nil {
		return nil, err
	}
	out := make([]Figure5Cell, len(cells))
	for i, c := range cells {
		var phase int64
		for _, p := range c.Result.PhasePS {
			phase += p
		}
		out[i] = Figure5Cell{
			Bench:      c.Bench,
			Label:      c.Label,
			Seconds:    c.Seconds(),
			OverheadS:  float64(c.Result.UPM.OverheadPS) / 1e12,
			PhaseS:     float64(phase) / 1e12,
			Migrations: c.Result.UPM.Migrations + c.Result.UPM.ReplayMigrations + c.Result.UPM.UndoMigrations,
		}
	}
	return out, nil
}

// Len reports the number of rows/cells in the result, whatever its
// shape — the unit of a job's progress report.
func (res SweepResult) Len() int {
	switch {
	case res.Cells != nil:
		return len(res.Cells)
	case res.Table2 != nil:
		return len(res.Table2)
	case res.Figure5 != nil:
		return len(res.Figure5)
	}
	return 0
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports the *simulated* quantity of interest
// as a custom metric (virtual seconds, slowdown percentages) alongside the
// host ns/op; the paper's conclusions live in those custom metrics.
//
// The benchmarks run at Class S so that `go test -bench=.` finishes in
// minutes on one core; cmd/sweep regenerates the Class W numbers reported
// in EXPERIMENTS.md.
package upmgo_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"upmgo"
)

const benchSeed = 42

// benchNAS runs one configuration and reports its virtual time.
func benchNAS(b *testing.B, name string, cfg upmgo.NASConfig) upmgo.NASResult {
	b.Helper()
	cfg.Seed = benchSeed
	var last upmgo.NASResult
	for i := 0; i < b.N; i++ {
		r, err := upmgo.RunNAS(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.VerifyErr != nil {
			b.Fatalf("%s %s: %v", name, r.Label, r.VerifyErr)
		}
		last = r
	}
	b.ReportMetric(last.Seconds(), "vsec")
	return last
}

// BenchmarkTable1Latency probes the memory-hierarchy ladder (Table 1).
func BenchmarkTable1Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := upmgo.WriteTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates one benchmark's Figure 1 bars (placement x
// kernel migration) and reports the wc slowdown.
func BenchmarkFigure1(b *testing.B) {
	for _, bench := range upmgo.NASBenchmarks {
		b.Run(bench, func(b *testing.B) {
			var ft, wc float64
			for i := 0; i < b.N; i++ {
				cells, err := upmgo.Figure1(upmgo.SweepOptions{
					Class: upmgo.ClassS, Benches: []string{bench}, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range cells {
					switch c.Label {
					case "ft-IRIX":
						ft = c.Seconds()
					case "wc-IRIX":
						wc = c.Seconds()
					}
				}
			}
			b.ReportMetric(100*(wc/ft-1), "wc-slowdown-%")
		})
	}
}

// BenchmarkFigure4 regenerates one benchmark's Figure 4 bars and reports
// how close UPMlib brings the worst case to first-touch (the paper's
// headline).
func BenchmarkFigure4(b *testing.B) {
	for _, bench := range upmgo.NASBenchmarks {
		b.Run(bench, func(b *testing.B) {
			var ft, wcFix float64
			for i := 0; i < b.N; i++ {
				cells, err := upmgo.Figure4(upmgo.SweepOptions{
					Class: upmgo.ClassS, Benches: []string{bench}, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range cells {
					switch c.Label {
					case "ft-IRIX":
						ft = c.Seconds()
					case "wc-upmlib":
						wcFix = c.Seconds()
					}
				}
			}
			b.ReportMetric(100*(wcFix/ft-1), "wc-upmlib-slowdown-%")
		})
	}
}

// BenchmarkSweepFigure4All is the end-to-end sweep benchmark tracked in
// BENCH_host.json: the full Figure 4 (all five benchmarks × 12 cells) on
// a fresh cache. The fork variant shares cold-start prefix snapshots
// across the engine variants of each placement (the default); nofork
// simulates every cell from scratch — the pre-snapshot behaviour — so
// the pair measures what prefix forking buys end to end.
func BenchmarkSweepFigure4All(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noFork bool
	}{{"fork", false}, {"nofork", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var st upmgo.SweepCacheStats
			for i := 0; i < b.N; i++ {
				cache := upmgo.NewSweepCache()
				r := upmgo.SweepRunner{Cache: cache, NoFork: mode.noFork}
				if _, err := r.Figure4(context.Background(), upmgo.SweepOptions{
					Class: upmgo.ClassS, Seed: benchSeed,
				}); err != nil {
					b.Fatal(err)
				}
				st = cache.Stats()
			}
			b.ReportMetric(float64(st.Forked), "forked-cells")
			b.ReportMetric(float64(st.Prefixes), "prefixes")
		})
	}
}

// BenchmarkSweepTopo64 is the hierarchical-machine datapoint tracked in
// BENCH_host.json: CG's full Figure 4 column (12 placement×engine cells)
// on the 64-CPU hier64 machine — 4× the Origin's CPUs through the
// mixed-radix distance path — with prefix forking as in a real sweep.
// The wc-slowdown metric records whether the placement gap is still open
// at 64 CPUs.
func BenchmarkSweepTopo64(b *testing.B) {
	var ft, wc float64
	for i := 0; i < b.N; i++ {
		r := upmgo.SweepRunner{Cache: upmgo.NewSweepCache()}
		res, err := r.Sweep(context.Background(), upmgo.SweepRequest{
			Kind: upmgo.KindTopoScale,
			Options: upmgo.SweepOptions{
				Class: upmgo.ClassS, Benches: []string{"CG"}, Seed: benchSeed, Topo: "hier64",
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cells := res.Cells
		for _, c := range cells {
			switch c.Label {
			case "ft-IRIX@4x2x8":
				ft = c.Seconds()
			case "wc-IRIX@4x2x8":
				wc = c.Seconds()
			}
		}
	}
	b.ReportMetric(100*(wc/ft-1), "wc-slowdown-%")
}

// BenchmarkSweepClassWSteady measures what the steady-state fast-forward
// buys at the paper-scale class: SP's full Figure 4 column (12 cells) at
// Class W, simulated in full versus detected-and-extrapolated. The
// steady sub-case pins PeriodK=1 — the original period-one detector, so
// its BENCH_host.json trajectory stays comparable — while periodk runs
// the full orbit cap plus the campaign fast-forward: periodk/steady is
// what PR 9's generalisation adds on top, steady/plain the historical
// end-to-end win. All variants share cold-start prefixes and the
// tail-verify cache through the sweep cache.
func BenchmarkSweepClassWSteady(b *testing.B) {
	for _, mode := range []struct {
		name    string
		steady  bool
		periodK int
	}{{"plain", false, 0}, {"steady", true, 1}, {"periodk", true, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := upmgo.SweepRunner{Cache: upmgo.NewSweepCache()}
				if _, err := r.Figure4(context.Background(), upmgo.SweepOptions{
					Class: upmgo.ClassW, Benches: []string{"SP"}, Seed: benchSeed,
					Steady: mode.steady, Extrapolate: true, PeriodK: mode.periodK,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Stats regenerates Table 2 and reports the worst tail
// slowdown across benchmarks and placements (paper: <= 2.7%).
func BenchmarkTable2Stats(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := upmgo.Table2(upmgo.SweepOptions{Class: upmgo.ClassS, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			for _, v := range r.SlowdownTail {
				if v > worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(100*worst, "worst-tail-slowdown-%")
}

// BenchmarkFigure5RecordReplay regenerates Figure 5 (BT and SP under
// ft/IRIXmig/upmlib/recrep) and reports record-replay's cost relative to
// plain UPMlib at native phase length (paper: overhead cancels the gains).
func BenchmarkFigure5RecordReplay(b *testing.B) {
	var upmlib, recrep float64
	for i := 0; i < b.N; i++ {
		cells, err := upmgo.Figure5(upmgo.SweepOptions{Class: upmgo.ClassS, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Bench != "BT" {
				continue
			}
			switch c.Label {
			case "ft-upmlib":
				upmlib = c.Seconds
			case "ft-recrep":
				recrep = c.Seconds
			}
		}
	}
	b.ReportMetric(100*(recrep/upmlib-1), "recrep-vs-upmlib-%")
}

// BenchmarkFigure6ScaledBT regenerates Figure 6 (BT with each phase
// repeated x4) and reports the same ratio; the paper's crossover means the
// metric should shrink versus Figure 5.
func BenchmarkFigure6ScaledBT(b *testing.B) {
	var upmlib, recrep float64
	for i := 0; i < b.N; i++ {
		cells, err := upmgo.Figure6(upmgo.SweepOptions{Class: upmgo.ClassS, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			switch c.Label {
			case "ft-upmlib":
				upmlib = c.Seconds
			case "ft-recrep":
				recrep = c.Seconds
			}
		}
	}
	b.ReportMetric(100*(recrep/upmlib-1), "recrep-vs-upmlib-%")
}

// BenchmarkAblationThreshold sweeps UPMlib's competitive ratio thr
// (DESIGN.md ablation): too low migrates on noise, too high leaves remote
// pages in place.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, thr := range []float64{1.2, 2, 4, 8} {
		b.Run(fmt.Sprintf("thr=%g", thr), func(b *testing.B) {
			r := benchNAS(b, "BT", upmgo.NASConfig{
				Class: upmgo.ClassS, Placement: upmgo.WorstCase, UPM: upmgo.UPMDistribute,
				UPMOptions: upmgo.UPMOptions{Threshold: thr},
			})
			b.ReportMetric(float64(r.UPM.Migrations), "migrations")
		})
	}
}

// BenchmarkAblationCriticalPages sweeps the record-replay page budget n.
func BenchmarkAblationCriticalPages(b *testing.B) {
	for _, n := range []int{4, 20, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchNAS(b, "BT", upmgo.NASConfig{
				Class: upmgo.ClassS, Placement: upmgo.FirstTouch, UPM: upmgo.UPMRecRep,
				UPMOptions: upmgo.UPMOptions{MaxCritical: n},
			})
			b.ReportMetric(float64(r.UPM.ReplayMigrations), "replays")
		})
	}
}

// BenchmarkAblationLatencyRatio scales the remote half of the latency
// ladder (the paper's Section 2.2 prediction: placement matters more on
// machines with higher remote:local ratios).
func BenchmarkAblationLatencyRatio(b *testing.B) {
	for _, mult := range []int64{1, 2, 4} {
		b.Run(fmt.Sprintf("x%d", mult), func(b *testing.B) {
			var ft, rr float64
			for i := 0; i < b.N; i++ {
				tweak := func(mc *upmgo.MachineConfig) {
					mc.Lat = upmgo.Origin2000Latency().ScaleRemote(mult, 1)
				}
				for _, p := range []upmgo.Policy{upmgo.FirstTouch, upmgo.RoundRobin} {
					r, err := upmgo.RunNAS("CG", upmgo.NASConfig{
						Class: upmgo.ClassS, Placement: p, Seed: benchSeed, Tweak: tweak,
					})
					if err != nil {
						b.Fatal(err)
					}
					if p == upmgo.FirstTouch {
						ft = r.Seconds()
					} else {
						rr = r.Seconds()
					}
				}
			}
			b.ReportMetric(100*(rr/ft-1), "rr-slowdown-%")
		})
	}
}

// BenchmarkAblationCounterWidth compares the Origin2000's saturating
// 11-bit reference counters against narrower and unsaturable ones.
func BenchmarkAblationCounterWidth(b *testing.B) {
	for _, bits := range []int{4, 11, 32} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			r := benchNAS(b, "BT", upmgo.NASConfig{
				Class: upmgo.ClassS, Placement: upmgo.WorstCase, UPM: upmgo.UPMDistribute,
				Tweak: func(mc *upmgo.MachineConfig) { mc.CounterBits = bits },
			})
			b.ReportMetric(float64(r.UPM.Migrations), "migrations")
		})
	}
}

// BenchmarkAblationPageSize varies the page size: bigger pages mean fewer,
// cheaper-per-byte migrations but coarser placement.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, kb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			r := benchNAS(b, "BT", upmgo.NASConfig{
				Class: upmgo.ClassS, Placement: upmgo.WorstCase, UPM: upmgo.UPMDistribute,
				Tweak: func(mc *upmgo.MachineConfig) { mc.PageBytes = kb * 1024 },
			})
			b.ReportMetric(float64(r.UPM.Migrations), "migrations")
		})
	}
}

// BenchmarkAblationComputeScale sweeps the paper's Figure 6 scaling knob:
// record-replay's deficit versus plain UPMlib shrinks as the phase grows.
func BenchmarkAblationComputeScale(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("x%d", scale), func(b *testing.B) {
			var upmlib, recrep float64
			for i := 0; i < b.N; i++ {
				for _, mode := range []upmgo.UPMMode{upmgo.UPMDistribute, upmgo.UPMRecRep} {
					r, err := upmgo.RunNAS("BT", upmgo.NASConfig{
						Class: upmgo.ClassS, Placement: upmgo.FirstTouch, UPM: mode,
						ComputeScale: scale, Seed: benchSeed, SkipVerify: scale > 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if mode == upmgo.UPMDistribute {
						upmlib = r.Seconds()
					} else {
						recrep = r.Seconds()
					}
				}
			}
			b.ReportMetric(100*(recrep/upmlib-1), "recrep-vs-upmlib-%")
		})
	}
}

// BenchmarkAblationReplication measures the read-only replication
// extension on a broadcast pattern (every CPU repeatedly reading one
// shared table homed on node 0): the paper sketches replication in one
// sentence; this quantifies it.
func BenchmarkAblationReplication(b *testing.B) {
	for _, replicate := range []bool{false, true} {
		name := "off"
		if replicate {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				cfg := upmgo.DefaultMachineConfig()
				cfg.Placement = upmgo.WorstCase
				m, err := upmgo.NewMachine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				table := m.NewArray("table", 8*2048)
				team, err := upmgo.NewTeam(m, m.NumCPUs())
				if err != nil {
					b.Fatal(err)
				}
				u := upmgo.NewUPM(m, upmgo.UPMOptions{})
				lo, hi := table.PageRange()
				u.MemRefCnt(lo, hi)
				u.EnableWriteTracking()
				sweep := func() {
					team.Parallel(func(tr *upmgo.Thread) {
						c := tr.CPU
						c.FlushCaches()
						for j := 0; j < table.Len(); j += 16 {
							table.Get(c, j)
						}
					})
				}
				sweep()
				if replicate {
					u.ReplicateReadOnly(team.Master(), upmgo.ReplicationOptions{MaxReplicas: 7})
				}
				t0 := team.Master().Now()
				for it := 0; it < 5; it++ {
					sweep()
				}
				virt = float64(team.Master().Now()-t0) / 1e12
			}
			b.ReportMetric(virt, "vsec")
		})
	}
}

// BenchmarkExtensionLU runs the pipelined-wavefront extension benchmark
// (NAS LU-style SSOR, not part of the paper's five codes) under the three
// interesting configurations: tuned first-touch, worst case, and worst
// case repaired by UPMlib.
func BenchmarkExtensionLU(b *testing.B) {
	cases := []struct {
		name string
		cfg  upmgo.NASConfig
	}{
		{"ft", upmgo.NASConfig{Class: upmgo.ClassS, Placement: upmgo.FirstTouch}},
		{"wc", upmgo.NASConfig{Class: upmgo.ClassS, Placement: upmgo.WorstCase}},
		{"wc-upmlib", upmgo.NASConfig{Class: upmgo.ClassS, Placement: upmgo.WorstCase, UPM: upmgo.UPMDistribute}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchNAS(b, "LU", c.cfg)
		})
	}
}

// BenchmarkAblationSchedule shows why the tuned NAS codes insist on
// SCHEDULE(STATIC) everywhere: first-touch locality only holds while the
// iteration-to-thread mapping is the same in every sweep. "stable" uses
// the block schedule throughout; "shifting" alternates between the block
// and cyclic static schedules — a deterministic stand-in for what
// dynamic/guided scheduling does to page affinity — and the remote share
// collapses toward the balanced-random level. No data distribution
// directive would fix this either; it is a scheduling property.
func BenchmarkAblationSchedule(b *testing.B) {
	for _, mode := range []string{"stable", "shifting"} {
		b.Run(mode, func(b *testing.B) {
			var remote float64
			for i := 0; i < b.N; i++ {
				m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
				if err != nil {
					b.Fatal(err)
				}
				a := m.NewArray("a", 64*2048)
				team, err := upmgo.NewTeam(m, m.NumCPUs())
				if err != nil {
					b.Fatal(err)
				}
				sweep := func(s upmgo.Schedule) {
					team.Parallel(func(tr *upmgo.Thread) {
						tr.CPU.FlushCaches()
						tr.For(0, a.Len(), s, func(c *upmgo.CPU, from, to int) {
							for j := from; j < to; j++ {
								a.Add(c, j, 1)
							}
						})
					})
				}
				for it := 0; it < 6; it++ {
					s := upmgo.StaticSchedule()
					if mode == "shifting" && it%2 == 1 {
						s = upmgo.StaticChunkSchedule(2048)
					}
					sweep(s)
				}
				remote = m.Stats().RemoteRatio()
			}
			b.ReportMetric(100*remote, "remote-%")
		})
	}
}

// BenchmarkAblationMachineSize scales the machine itself: the paper's
// Section 2.2 notes that on "truly large-scale Origin2000 systems" some
// accesses cross many more hops (and one node's memory serves ever more
// processors), making bad placement matter more. The worst-case slowdown
// of CG grows steeply with the node count (measured: ~140% at 4 nodes to
// ~600% at 32). The balanced rr scheme is *not* a good probe here: with
// the problem size fixed, 64 threads make a page span several partitions
// and first-touch itself degrades toward rr, which is a geometry artefact
// rather than the paper's effect.
func BenchmarkAblationMachineSize(b *testing.B) {
	for _, nodes := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("%dnodes", nodes), func(b *testing.B) {
			var ft, wc float64
			for i := 0; i < b.N; i++ {
				tweak := func(mc *upmgo.MachineConfig) {
					mc.Nodes = nodes
					mc.CPUsPerNode = 2
				}
				for _, p := range []upmgo.Policy{upmgo.FirstTouch, upmgo.WorstCase} {
					r, err := upmgo.RunNAS("CG", upmgo.NASConfig{
						Class: upmgo.ClassW, Placement: p, Seed: benchSeed,
						Iterations: 3, Tweak: tweak, SkipVerify: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					if p == upmgo.FirstTouch {
						ft = r.Seconds()
					} else {
						wc = r.Seconds()
					}
				}
			}
			b.ReportMetric(100*(wc/ft-1), "wc-slowdown-%")
		})
	}
}

// BenchmarkExtensionIS runs the integer-sort extension: its permutation
// scatter writes wherever the key values point, so placement helps it far
// less than the stencil codes, and UPMlib has little to migrate toward.
func BenchmarkExtensionIS(b *testing.B) {
	for _, p := range []upmgo.Policy{upmgo.FirstTouch, upmgo.WorstCase} {
		b.Run(p.String(), func(b *testing.B) {
			r := benchNAS(b, "IS", upmgo.NASConfig{Class: upmgo.ClassS, Placement: p})
			b.ReportMetric(100*r.Mach.RemoteRatio(), "remote-%")
		})
	}
}

// BenchmarkExtensionEP runs the embarrassingly parallel control: no page
// placement scheme should move it more than noise.
func BenchmarkExtensionEP(b *testing.B) {
	for _, p := range []upmgo.Policy{upmgo.FirstTouch, upmgo.WorstCase} {
		b.Run(p.String(), func(b *testing.B) {
			benchNAS(b, "EP", upmgo.NASConfig{Class: upmgo.ClassS, Placement: p})
		})
	}
}

// Microbenchmarks of the simulator's hot paths (host performance).

func BenchmarkSimLoadL1Hit(b *testing.B) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := m.NewArray("x", 1024)
	c := m.CPU(0)
	a.Get(c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Get(c, 0)
	}
}

func BenchmarkSimStoreOwned(b *testing.B) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := m.NewArray("x", 1024)
	c := m.CPU(0)
	a.Set(c, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Set(c, 0, 1)
	}
}

func BenchmarkSimStreamingSweep(b *testing.B) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := m.NewArray("x", 256*1024)
	c := m.CPU(0)
	b.SetBytes(int64(a.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < a.Len(); j++ {
			a.Set(c, j, float64(j))
		}
	}
}

func BenchmarkParallelForkJoin(b *testing.B) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.Parallel(func(tr *upmgo.Thread) {})
	}
}

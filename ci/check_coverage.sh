#!/bin/sh
# check_coverage.sh enforces the per-package statement-coverage floors
# recorded in ci/coverage_floors.txt: for each listed package it runs
# `go test -cover` and fails if the reported coverage is below the floor.
set -eu
cd "$(dirname "$0")/.."

fail=0
while read -r pkg floor; do
	case "$pkg" in
	"" | \#*) continue ;;
	esac
	out=$(go test -cover "./${pkg#upmgo/}")
	pct=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "coverage: $pkg reported no coverage figure" >&2
		fail=1
		continue
	fi
	if awk "BEGIN { exit !($pct < $floor) }"; then
		echo "coverage: $pkg at ${pct}%, below the ${floor}% floor" >&2
		fail=1
	else
		echo "coverage: $pkg at ${pct}% (floor ${floor}%)"
	fi
done <ci/coverage_floors.txt
exit $fail

package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseResult(t *testing.T) {
	cases := []struct {
		in   string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkTouchRun-8   \t     100\t  12345 ns/op\t 99 B/op", "BenchmarkTouchRun", 12345, true},
		{"BenchmarkSweepFigure4All/fork-16 \t 3\t 700123456 ns/op\t 12 forked-cells", "BenchmarkSweepFigure4All/fork", 700123456, true},
		{"BenchmarkNoSuffix \t 10\t 42.5 ns/op", "BenchmarkNoSuffix", 42.5, true},
		{"PASS", "", 0, false},
		{"goos: linux", "", 0, false},
		{"BenchmarkStarted", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseResult(c.in)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseResult(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.in, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestParseStream(t *testing.T) {
	// The test binary splits result lines across output events: the name
	// chunk first, the counts (with the terminating newline) later.
	stream := `{"Action":"start","Package":"upmgo"}
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"BenchmarkFigure1/BT-8 \t"}
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"3\t 500000 ns/op\n"}
{"Action":"output","Package":"upmgo","Output":"ok  \tupmgo\t1.2s\n"}
not json at all
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"BenchmarkFigure1/BT-8 \t3\t 600000 ns/op\n"}
`
	got, err := parse(bufio.NewScanner(strings.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	// A repeated result (e.g. -count) keeps the last value.
	if len(got) != 1 || got["BenchmarkFigure1/BT"] != 600000 {
		t.Errorf("parse = %v, want one entry at 600000", got)
	}
}

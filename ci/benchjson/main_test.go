package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseResult(t *testing.T) {
	cases := []struct {
		in   string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkTouchRun-8   \t     100\t  12345 ns/op\t 99 B/op", "BenchmarkTouchRun", 12345, true},
		{"BenchmarkSweepFigure4All/fork-16 \t 3\t 700123456 ns/op\t 12 forked-cells", "BenchmarkSweepFigure4All/fork", 700123456, true},
		{"BenchmarkNoSuffix \t 10\t 42.5 ns/op", "BenchmarkNoSuffix", 42.5, true},
		{"PASS", "", 0, false},
		{"goos: linux", "", 0, false},
		{"BenchmarkStarted", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseResult(c.in)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseResult(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.in, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestParseStream(t *testing.T) {
	// The test binary splits result lines across output events: the name
	// chunk first, the counts (with the terminating newline) later.
	stream := `{"Action":"start","Package":"upmgo"}
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"BenchmarkFigure1/BT-8 \t"}
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"3\t 500000 ns/op\n"}
{"Action":"output","Package":"upmgo","Output":"ok  \tupmgo\t1.2s\n"}
not json at all
{"Action":"output","Package":"upmgo","Test":"BenchmarkFigure1","Output":"BenchmarkFigure1/BT-8 \t3\t 600000 ns/op\n"}
`
	got, err := parse(bufio.NewScanner(strings.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	// A repeated result (e.g. -count) keeps the last value.
	if len(got) != 1 || got["BenchmarkFigure1/BT"] != 600000 {
		t.Errorf("parse = %v, want one entry at 600000", got)
	}
}

// stream builds a minimal `go test -json` stream carrying the given
// benchmark results, with each result line split across two output
// events the way the test binary actually emits them.
func stream(benches map[string]float64) string {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for name, ns := range benches {
		enc.Encode(testEvent{Action: "output", Package: "p", Output: name + "-8 \t"})
		enc.Encode(testEvent{Action: "output", Package: "p", Output: fmt.Sprintf("     100\t%12.0f ns/op\n", ns)})
	}
	enc.Encode(testEvent{Action: "output", Package: "p", Output: "PASS\n"})
	return sb.String()
}

// TestRunWriteAndHistory: -o writes the report, and each rewrite pushes
// the superseded snapshot onto the history tail — the perf trajectory.
func TestRunWriteAndHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var out, errw bytes.Buffer
	in := strings.NewReader(stream(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000}))
	if err := run([]string{"-o", path}, in, &out, &errw); err != nil {
		t.Fatal(err)
	}
	first, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if first.Benchmarks["BenchmarkA"] != 100 || first.Benchmarks["BenchmarkB"] != 2000 {
		t.Errorf("report benchmarks wrong: %+v", first.Benchmarks)
	}
	if len(first.History) != 0 {
		t.Errorf("fresh report carries history: %+v", first.History)
	}
	if !strings.Contains(errw.String(), "BenchmarkA") {
		t.Error("stderr echo missing")
	}

	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 110}))
	if err := run([]string{"-o", path}, in, &out, &errw); err != nil {
		t.Fatal(err)
	}
	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 120}))
	if err := run([]string{"-o", path}, in, &out, &errw); err != nil {
		t.Fatal(err)
	}
	final, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Benchmarks["BenchmarkA"] != 120 {
		t.Errorf("latest snapshot wrong: %+v", final.Benchmarks)
	}
	if len(final.History) != 2 ||
		final.History[0].Benchmarks["BenchmarkA"] != 100 ||
		final.History[1].Benchmarks["BenchmarkA"] != 110 {
		t.Fatalf("trajectory wrong (want oldest first): %+v", final.History)
	}
}

// TestRunCompare: the regression gate passes within tolerance, fails
// beyond it naming the offender, and treats missing/new benchmarks as
// informational only.
func TestRunCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	blob, err := json.Marshal(report{Date: "2026-01-01", Benchmarks: map[string]float64{
		"BenchmarkA": 100, "BenchmarkB": 2000, "BenchmarkGone": 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Within tolerance (A +5%, B -10%), one baseline bench not run, one
	// new bench: passes, reports every line.
	var out, errw bytes.Buffer
	in := strings.NewReader(stream(map[string]float64{"BenchmarkA": 105, "BenchmarkB": 1800, "BenchmarkNew": 7}))
	if err := run([]string{"-compare", path}, in, &out, &errw); err != nil {
		t.Fatalf("within-tolerance compare failed: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"+5.0%", "-10.0%", "(not run)", "(new)", "ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output lacks %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "REGRESSED") {
		t.Errorf("false regression:\n%s", text)
	}

	// Beyond tolerance: fails and names the offender.
	out.Reset()
	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 2000}))
	err = run([]string{"-compare", path}, in, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("20%% slowdown: got %v, want a regression naming BenchmarkA", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("compare output lacks the verdict:\n%s", out.String())
	}

	// A looser tolerance admits the same run.
	out.Reset()
	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 2000}))
	if err := run([]string{"-compare", path, "-tolerance", "25"}, in, &out, &errw); err != nil {
		t.Fatalf("-tolerance 25 still failed: %v", err)
	}

	// A per-benchmark override admits the offender without loosening the
	// gate for everything else...
	out.Reset()
	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 2000}))
	if err := run([]string{"-compare", path, "-tol", "BenchmarkA=25"}, in, &out, &errw); err != nil {
		t.Fatalf("-tol BenchmarkA=25 still failed: %v", err)
	}

	// ...and a tightened override fails a slowdown the default admits.
	out.Reset()
	in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 105, "BenchmarkB": 2000}))
	err = run([]string{"-compare", path, "-tol", "BenchmarkA=2"}, in, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("tightened -tol: got %v, want a regression naming BenchmarkA", err)
	}

	// Malformed overrides are rejected at the flag layer.
	for _, bad := range []string{"BenchmarkA", "=5", "BenchmarkA=lots"} {
		in = strings.NewReader(stream(map[string]float64{"BenchmarkA": 100}))
		if err := run([]string{"-compare", path, "-tol", bad}, in, &out, &errw); err == nil {
			t.Errorf("-tol %q accepted, want an error", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	good := stream(map[string]float64{"BenchmarkA": 1})
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-nope"}, good},
		{[]string{"stray"}, good},
		{nil, ""},                                         // no results on stdin
		{nil, "not json at all\n"},                        // still no results
		{[]string{"-compare", "/does/not/exist"}, good},   // unreadable baseline
		{[]string{"-o", "/does/not/exist/dir/out"}, good}, // unwritable output
	}
	for _, c := range cases {
		var out, errw bytes.Buffer
		if err := run(c.args, strings.NewReader(c.stdin), &out, &errw); err == nil {
			t.Errorf("run(%v, %q) succeeded, want an error", c.args, c.stdin)
		}
	}
}

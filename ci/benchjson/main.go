// Command benchjson turns `go test -json -bench` output into the
// machine-readable BENCH_host.json tracked by `make bench-host`: one
// object mapping benchmark name to host ns/op, stamped with the host,
// toolchain and date, so the perf trajectory of the simulator's host-side
// cost is diffable across commits.
//
// Usage:
//
//	go test -run xxx -bench ... -json ./... | go run ./ci/benchjson -o BENCH_host.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// testEvent is the subset of the `go test -json` stream benchjson reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// report is the BENCH_host.json schema.
type report struct {
	Host   string `json:"host"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Go     string `json:"go"`
	Date   string `json:"date"`
	// Benchmarks maps the full benchmark name (including sub-benchmarks,
	// e.g. "BenchmarkSweepFigure4All/fork") to host nanoseconds per op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	benches, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin (want `go test -json -bench` output)")
		os.Exit(1)
	}
	host, _ := os.Hostname()
	r := report{
		Host:       host,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Go:         runtime.Version(),
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: benches,
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(blob); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// A human-readable echo on stderr, sorted for stable eyeballing.
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "benchjson: %-50s %14.0f ns/op\n", n, benches[n])
	}
}

// parse extracts "BenchmarkX-N  iters  ns/op" result lines from the
// -json event stream. The test binary emits a result line in chunks
// ("BenchmarkFoo \t" in one output event, "  100\t 123 ns/op\n" in the
// next), so output is reassembled per (package, test) until a newline
// completes the line. Lines that are not benchmark results (progress,
// PASS, metrics-only lines) are ignored.
func parse(sc *bufio.Scanner) (map[string]float64, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	benches := map[string]float64{}
	partial := map[string]string{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // interleaved non-JSON output
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if name, nsop, ok := parseResult(buf[:nl]); ok {
				benches[name] = nsop
			}
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(partial, key)
		} else {
			partial[key] = buf
		}
	}
	return benches, sc.Err()
}

// parseResult parses one benchmark result line of `go test -bench`
// output: "BenchmarkName-8   	     100	  12345 ns/op	...".
func parseResult(s string) (string, float64, bool) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix ("-8") from the last path element so
	// names compare across hosts with different core counts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

// Command benchjson turns `go test -json -bench` output into the
// machine-readable BENCH_host.json tracked by `make bench-host`: one
// object mapping benchmark name to host ns/op, stamped with the host,
// toolchain and date, so the perf trajectory of the simulator's host-side
// cost is diffable across commits. Rewriting an existing file pushes its
// previous snapshot into a history array, so the trajectory accumulates
// dated datapoints instead of overwriting them.
//
// With -compare, benchjson instead diffs a fresh run against the
// checked-in baseline and exits non-zero when any benchmark regressed
// beyond the tolerance — the `make bench-check` regression gate.
//
// Usage:
//
//	go test -run xxx -bench ... -json ./... | go run ./ci/benchjson -o BENCH_host.json
//	go test -run xxx -bench ... -json ./... | go run ./ci/benchjson -compare BENCH_host.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// testEvent is the subset of the `go test -json` stream benchjson reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// datapoint is one superseded snapshot in the perf trajectory.
type datapoint struct {
	Date       string             `json:"date"`
	Go         string             `json:"go"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// report is the BENCH_host.json schema.
type report struct {
	Host   string `json:"host"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Go     string `json:"go"`
	Date   string `json:"date"`
	// Benchmarks maps the full benchmark name (including sub-benchmarks,
	// e.g. "BenchmarkSweepFigure4All/fork") to host nanoseconds per op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// History holds earlier snapshots, oldest first: each rewrite of the
	// file pushes the snapshot it replaces onto the tail.
	History []datapoint `json:"history,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any streams.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout); an existing report's snapshot moves into history")
	compare := fs.String("compare", "", "compare the fresh run against this baseline report instead of writing one")
	tolerance := fs.Float64("tolerance", 10, "with -compare: fail on slowdowns above this percentage")
	tols := tolerances{}
	fs.Var(tols, "tol", "with -compare: per-benchmark tolerance override, name=percent (repeatable; exact full name, e.g. -tol 'BenchmarkSweepFigure4All/fork=25')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	benches, err := parse(bufio.NewScanner(stdin))
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return errors.New("no benchmark results on stdin (want `go test -json -bench` output)")
	}

	if *compare != "" {
		return compareReport(*compare, benches, *tolerance, tols, stdout)
	}

	host, _ := os.Hostname()
	r := report{
		Host:       host,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Go:         runtime.Version(),
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: benches,
	}
	if *out != "" {
		if prev, err := readReport(*out); err == nil {
			r.History = append(prev.History, datapoint{Date: prev.Date, Go: prev.Go, Benchmarks: prev.Benchmarks})
		}
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(blob); err != nil {
		return err
	}
	// A human-readable echo on stderr, sorted for stable eyeballing.
	for _, n := range sortedNames(benches) {
		fmt.Fprintf(stderr, "benchjson: %-50s %14.0f ns/op\n", n, benches[n])
	}
	return nil
}

// readReport loads a BENCH_host.json.
func readReport(path string) (report, error) {
	var r report
	blob, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(blob, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// tolerances is the repeatable -tol flag: per-benchmark overrides of the
// default regression tolerance, keyed by the exact full benchmark name.
type tolerances map[string]float64

func (t tolerances) String() string {
	var parts []string
	for _, n := range sortedNames(t) {
		parts = append(parts, fmt.Sprintf("%s=%g", n, t[n]))
	}
	return strings.Join(parts, ",")
}

func (t tolerances) Set(s string) error {
	name, pct, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil {
		return fmt.Errorf("bad percentage in %q: %w", s, err)
	}
	t[name] = v
	return nil
}

// compareReport diffs a fresh run against the baseline: one line per
// benchmark with the percentage delta, and an error naming every
// benchmark that slowed down beyond its tolerance (a per-benchmark
// override from -tol, else the default). Benchmarks missing from either
// side are reported but never fail the gate — host benches come and go
// with the suite.
func compareReport(path string, fresh map[string]float64, tolerance float64, tols tolerances, stdout io.Writer) error {
	base, err := readReport(path)
	if err != nil {
		return err
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s holds no benchmarks", path)
	}
	var regressed []string
	fmt.Fprintf(stdout, "benchjson: fresh run vs %s (%s, ±%.0f%% default tolerance)\n", path, base.Date, tolerance)
	for _, n := range sortedNames(base.Benchmarks) {
		was := base.Benchmarks[n]
		now, ok := fresh[n]
		if !ok {
			fmt.Fprintf(stdout, "  %-50s %14.0f ns/op -> (not run)\n", n, was)
			continue
		}
		tol := tolerance
		if t, ok := tols[n]; ok {
			tol = t
		}
		delta := 100 * (now - was) / was
		verdict := "ok"
		if delta > tol {
			verdict = fmt.Sprintf("REGRESSED (>%g%%)", tol)
			regressed = append(regressed, fmt.Sprintf("%s %+.1f%% (tolerance %g%%)", n, delta, tol))
		}
		fmt.Fprintf(stdout, "  %-50s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n", n, was, now, delta, verdict)
	}
	for _, n := range sortedNames(fresh) {
		if _, ok := base.Benchmarks[n]; !ok {
			fmt.Fprintf(stdout, "  %-50s (new) %14.0f ns/op\n", n, fresh[n])
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance: %s",
			len(regressed), strings.Join(regressed, ", "))
	}
	return nil
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parse extracts "BenchmarkX-N  iters  ns/op" result lines from the
// -json event stream. The test binary emits a result line in chunks
// ("BenchmarkFoo \t" in one output event, "  100\t 123 ns/op\n" in the
// next), so output is reassembled per (package, test) until a newline
// completes the line. Lines that are not benchmark results (progress,
// PASS, metrics-only lines) are ignored.
func parse(sc *bufio.Scanner) (map[string]float64, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	benches := map[string]float64{}
	partial := map[string]string{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // interleaved non-JSON output
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if name, nsop, ok := parseResult(buf[:nl]); ok {
				benches[name] = nsop
			}
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(partial, key)
		} else {
			partial[key] = buf
		}
	}
	return benches, sc.Err()
}

// parseResult parses one benchmark result line of `go test -bench`
// output: "BenchmarkName-8   	     100	  12345 ns/op	...".
func parseResult(s string) (string, float64, bool) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix ("-8") from the last path element so
	// names compare across hosts with different core counts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

#!/bin/sh
# sweepd_smoke.sh is the end-to-end acceptance check for the sweep
# service: start sweepd over a fresh store, submit a Figure 1 class S
# job over HTTP, poll it to completion, fetch one cell record, and
# require the daemon's store to be byte-identical (diff -r) to one
# written by the sweep CLI running the same cells in another process.
# Record encoding is deterministic (no timestamps; -threads 1 makes the
# simulations exactly reproducible), which is what makes a literal
# directory diff a valid oracle.
set -eu
cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/sweep" ./cmd/sweep
go build -o "$work/sweepd" ./cmd/sweepd

"$work/sweepd" -addr 127.0.0.1:18080 -store "$work/daemon-store" -jobs 2 2>"$work/sweepd.log" &
daemon_pid=$!

# Wait for the listener.
for i in $(seq 1 50); do
	if curl -sf http://127.0.0.1:18080/metrics >/dev/null 2>&1; then
		break
	fi
	[ "$i" = 50 ] && { echo "sweepd did not start"; cat "$work/sweepd.log"; exit 1; }
	sleep 0.2
done

# Submit the job and poll until done.
job=$(curl -sf -d '{"kind":"figure1","options":{"class":"S","benches":["BT"],"seed":42,"threads":1}}' \
	http://127.0.0.1:18080/v1/jobs)
id=$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in response: $job"; exit 1; }

state=""
for i in $(seq 1 150); do
	status=$(curl -sf "http://127.0.0.1:18080/v1/jobs/$id")
	state=$(printf '%s' "$status" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed) echo "job failed: $status"; exit 1 ;;
	esac
	sleep 0.2
done
[ "$state" = "done" ] || { echo "job stuck in state '$state'"; exit 1; }

# One cell must be fetchable and non-empty.
addr=$(printf '%s' "$status" | sed -n 's/.*"address": "\([a-f0-9]*\)".*/\1/p' | head -1)
[ -n "$addr" ] || { echo "no cell address in status"; exit 1; }
curl -sf "http://127.0.0.1:18080/v1/cells/$addr" | grep -q '"payload_sha256"' ||
	{ echo "cell record missing integrity envelope"; exit 1; }

# The CLI, in a separate process and store, must write the identical
# records for the same cells.
"$work/sweep" -fig 1 -class S -benches BT -threads 1 -quiet -store "$work/cli-store" >/dev/null
diff -r "$work/daemon-store" "$work/cli-store" ||
	{ echo "daemon and CLI stores differ"; exit 1; }

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
	kill -0 "$daemon_pid" 2>/dev/null || break
	sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
	echo "sweepd did not exit on SIGTERM"
	exit 1
fi
daemon_pid=""
grep -q "drained" "$work/sweepd.log" || { echo "no drain notice in log"; cat "$work/sweepd.log"; exit 1; }

echo "sweepd smoke OK: job $id done, cell $addr served, stores byte-identical, drain clean"

#!/bin/sh
# sweepd_smoke.sh is the end-to-end acceptance check for the sweep
# service: start sweepd over a fresh store, submit a Figure 1 class S
# job over HTTP, tail its NDJSON event stream to completion, poll it to
# done, fetch one cell record, assert the telemetry histograms on
# /metrics, and require the daemon's store to be byte-identical
# (diff -r) to one written by the sweep CLI running the same cells in
# another process. Record encoding is deterministic (no timestamps;
# -threads 1 makes the simulations exactly reproducible), which is what
# makes a literal directory diff a valid oracle. A final section runs
# the host-telemetry flow of EXPERIMENTS.md's "explaining a slow sweep"
# recipe and gates the report's stage-attribution contract (>= 90%).
set -eu
cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/sweep" ./cmd/sweep
go build -o "$work/sweepd" ./cmd/sweepd
go build -o "$work/traceview" ./cmd/traceview

"$work/sweepd" -addr 127.0.0.1:18080 -store "$work/daemon-store" -jobs 2 2>"$work/sweepd.log" &
daemon_pid=$!

# Wait for the listener.
for i in $(seq 1 50); do
	if curl -sf http://127.0.0.1:18080/metrics >/dev/null 2>&1; then
		break
	fi
	[ "$i" = 50 ] && { echo "sweepd did not start"; cat "$work/sweepd.log"; exit 1; }
	sleep 0.2
done

# Submit the job and poll until done.
job=$(curl -sf -d '{"kind":"figure1","options":{"class":"S","benches":["BT"],"seed":42,"threads":1}}' \
	http://127.0.0.1:18080/v1/jobs)
id=$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in response: $job"; exit 1; }

# Tail the live event stream in the background; it ends by itself when
# the job reaches a terminal state.
curl -sN "http://127.0.0.1:18080/v1/jobs/$id/events" >"$work/events.ndjson" &
tail_pid=$!

state=""
for i in $(seq 1 150); do
	status=$(curl -sf "http://127.0.0.1:18080/v1/jobs/$id")
	state=$(printf '%s' "$status" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed) echo "job failed: $status"; exit 1 ;;
	esac
	sleep 0.2
done
[ "$state" = "done" ] || { echo "job stuck in state '$state'"; exit 1; }

# The event tail must have closed itself and carry the full lifecycle,
# including per-cell outcomes with a fast-path kind.
wait "$tail_pid" || { echo "event stream tail failed"; exit 1; }
for ev in job_queued job_started cell_started cell_done job_done; do
	grep -q "\"type\":\"$ev\"" "$work/events.ndjson" ||
		{ echo "event stream lacks $ev"; cat "$work/events.ndjson"; exit 1; }
done
grep -q '"kind":' "$work/events.ndjson" ||
	{ echo "cell_done events lack fast-path kinds"; cat "$work/events.ndjson"; exit 1; }

# /metrics must expose the telemetry histograms and the build-info gauge.
curl -sf http://127.0.0.1:18080/metrics >"$work/metrics.txt"
for want in \
	'# TYPE upmgo_sweepd_job_queue_seconds histogram' \
	'upmgo_sweepd_job_run_seconds_count{state="done"} 1' \
	'# TYPE upmgo_sweepd_http_request_seconds histogram' \
	'# TYPE upmgo_sweep_cell_host_seconds histogram' \
	'upmgo_build_info{'; do
	grep -qF "$want" "$work/metrics.txt" ||
		{ echo "/metrics lacks: $want"; cat "$work/metrics.txt"; exit 1; }
done

# One cell must be fetchable and non-empty.
addr=$(printf '%s' "$status" | sed -n 's/.*"address": "\([a-f0-9]*\)".*/\1/p' | head -1)
[ -n "$addr" ] || { echo "no cell address in status"; exit 1; }
curl -sf "http://127.0.0.1:18080/v1/cells/$addr" | grep -q '"payload_sha256"' ||
	{ echo "cell record missing integrity envelope"; exit 1; }

# The CLI, in a separate process and store, must write the identical
# records for the same cells.
"$work/sweep" -fig 1 -class S -benches BT -threads 1 -quiet -store "$work/cli-store" >/dev/null
diff -r "$work/daemon-store" "$work/cli-store" ||
	{ echo "daemon and CLI stores differ"; exit 1; }

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
	kill -0 "$daemon_pid" 2>/dev/null || break
	sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
	echo "sweepd did not exit on SIGTERM"
	exit 1
fi
daemon_pid=""
grep -q "drained" "$work/sweepd.log" || { echo "no drain notice in log"; cat "$work/sweepd.log"; exit 1; }

# Host telemetry: the EXPERIMENTS.md "explaining a slow sweep" flow.
# The Class W -all -steady report must attribute >= 90% of host time to
# named stages, and its why-not histogram must name the incompressible
# kernel-migration cells.
"$work/sweep" -all -class W -steady -quiet -report "$work/report.json" >/dev/null
"$work/traceview" report -in "$work/report.json" >"$work/report.txt"
attr=$(sed -n 's/.*(\([0-9.]*\)% of host time attributed).*/\1/p' "$work/report.txt")
[ -n "$attr" ] || { echo "report lacks the attribution ratio"; cat "$work/report.txt"; exit 1; }
awk "BEGIN{exit !($attr >= 90)}" ||
	{ echo "stage attribution $attr% below the 90% contract"; cat "$work/report.txt"; exit 1; }
grep -qE 'homes_moving.*(BT|CG|SP) (rand|rr|wc)-IRIXmig classW' "$work/report.txt" ||
	{ echo "why-not histogram does not name the kmig cells"; cat "$work/report.txt"; exit 1; }

echo "sweepd smoke OK: job $id done, events streamed, histograms live, cell $addr served, stores byte-identical, drain clean, report attribution ${attr}%"

// Integration tests of the public facade: everything a downstream user
// does — building machines, running OpenMP-style loops, attaching both
// migration engines, running the NAS reproductions — through the exported
// API only.
package upmgo_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"upmgo"
)

func TestPublicMachineAndTeam(t *testing.T) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 16 {
		t.Errorf("NumCPUs = %d, want 16", m.NumCPUs())
	}
	a := m.NewArray("a", 4096)
	team, err := upmgo.NewTeam(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	team.Parallel(func(tr *upmgo.Thread) {
		tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
			for i := from; i < to; i++ {
				a.Set(c, i, float64(i))
			}
		})
	})
	if a.Data()[100] != 100 {
		t.Errorf("a[100] = %v, want 100", a.Data()[100])
	}
	if team.Master().Now() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestPublicUPMEngine(t *testing.T) {
	cfg := upmgo.DefaultMachineConfig()
	cfg.Placement = upmgo.WorstCase
	m, err := upmgo.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewArray("a", 16*2048)
	lo, hi := a.PageRange()
	for p := lo; p < hi; p++ {
		m.PT.Resolve(p, 0)
	}
	u := upmgo.NewUPM(m, upmgo.UPMOptions{})
	u.MemRefCnt(lo, hi)
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 3)
	}
	if n := u.MigrateMemory(m.CPU(0)); n != 1 {
		t.Errorf("MigrateMemory moved %d pages, want 1", n)
	}
	if m.PT.Home(lo) != 3 {
		t.Errorf("page homed on %d, want 3", m.PT.Home(lo))
	}
}

func TestPublicKernelEngine(t *testing.T) {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := upmgo.AttachKernelMigration(m, upmgo.KernelMigConfig{Threshold: 8})
	if !e.Enabled() {
		t.Error("engine not enabled after attach")
	}
	a := m.NewArray("a", 2048)
	lo, _ := a.PageRange()
	m.PT.Resolve(lo, 0)
	for i := 0; i < 100; i++ {
		m.PT.CountMiss(lo, 6)
	}
	m.Settle(m.CPUs()[:1], 0)
	if e.Migrations() != 1 {
		t.Errorf("kernel engine migrated %d pages, want 1", e.Migrations())
	}
}

func TestPublicRunNASAllBenchmarks(t *testing.T) {
	for _, name := range upmgo.NASBenchmarks {
		r, err := upmgo.RunNAS(name, upmgo.NASConfig{Class: upmgo.ClassS, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Verified {
			t.Errorf("%s failed verification: %v", name, r.VerifyErr)
		}
		if r.Kernel != name {
			t.Errorf("result kernel %q, want %q", r.Kernel, name)
		}
	}
}

func TestPublicRunNASUnknownName(t *testing.T) {
	_, err := upmgo.RunNAS("UA", upmgo.NASConfig{})
	if err == nil || !strings.Contains(err.Error(), "UA") {
		t.Errorf("unknown benchmark error = %v", err)
	}
	if !errors.Is(err, upmgo.ErrUnknownBenchmark) {
		t.Errorf("RunNAS error %v does not wrap ErrUnknownBenchmark", err)
	}
	_, err = upmgo.Figure1(upmgo.SweepOptions{Class: upmgo.ClassS, Benches: []string{"UA"}})
	if !errors.Is(err, upmgo.ErrUnknownBenchmark) {
		t.Errorf("Figure1 error %v does not wrap ErrUnknownBenchmark", err)
	}
}

func TestPublicSweepRunnerWithCache(t *testing.T) {
	cache := upmgo.NewSweepCache()
	r := upmgo.SweepRunner{Jobs: 2, Cache: cache}
	o := upmgo.SweepOptions{Class: upmgo.ClassS, Benches: []string{"BT"}, Seed: 42}
	first, err := r.Figure1(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 8 {
		t.Fatalf("got %d cells, want 8", len(first))
	}
	if st := cache.Stats(); st.Misses != 8 || st.Hits != 0 {
		t.Errorf("first sweep stats %+v, want 8 misses", st)
	}
	again, err := r.Figure1(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 8 || st.Hits != 8 {
		t.Errorf("second sweep stats %+v, want 8 misses, 8 hits", st)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached sweep differs from the original")
	}
}

// TestPublicMetrics drives the whole observability surface through the
// facade: sample a NAS run, export the series, publish to a registry,
// scrape it over HTTP, and render the locality table from sweep cells.
func TestPublicMetrics(t *testing.T) {
	reg := upmgo.NewMetricsRegistry()
	s := upmgo.NewMetricsSampler(upmgo.MetricsOptions{Heatmap: true, Registry: reg, Cell: "cg-wc"})
	res, err := upmgo.RunNAS("CG", upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: upmgo.WorstCase,
		UPM:       upmgo.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	})
	if err != nil {
		t.Fatal(err)
	}
	se := s.Series()
	var iters int
	for _, sm := range se.Samples {
		if sm.Kind == "iter" {
			iters++
		}
	}
	if iters != len(res.IterPS) || len(se.Heat) != iters {
		t.Fatalf("series has %d iteration samples and %d heatmaps, want %d of each",
			iters, len(se.Heat), len(res.IterPS))
	}
	var buf bytes.Buffer
	if err := se.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := upmgo.ReadMetricsSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(se, back) {
		t.Error("series JSON roundtrip not lossless through the facade")
	}

	srv := httptest.NewServer(upmgo.MetricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `upmgo_page_residency{cell="cg-wc",node="0"}`) {
		t.Errorf("/metrics lacks the published residency:\n%s", body)
	}

	cells, err := upmgo.SweepRunner{Jobs: 2}.Figure1(context.Background(),
		upmgo.SweepOptions{Class: upmgo.ClassS, Benches: []string{"CG"}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := upmgo.WriteLocalityTable(&buf, cells); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| Bench | Placement |", "| CG | wc |", "IRIXmig", ":1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("locality table lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestPublicSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := upmgo.SweepRunner{Jobs: 2}
	_, err := r.Figure1(ctx, upmgo.SweepOptions{Class: upmgo.ClassS, Benches: []string{"BT"}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

func TestPublicFigure5ScaleOption(t *testing.T) {
	// Threads 1: the Figure6-vs-Figure5 comparison below needs two fresh
	// runs to be exactly reproducible.
	o := upmgo.SweepOptions{Class: upmgo.ClassS, Seed: 42, Iterations: 3, Benches: []string{"BT"}, Threads: 1}
	base, err := upmgo.Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	scaled := o
	scaled.Scale = 4
	s, err := upmgo.Figure5(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Seconds < 2*base[0].Seconds {
		t.Errorf("Scale 4 BT (%.4fs) not clearly longer than native (%.4fs)", s[0].Seconds, base[0].Seconds)
	}
	f6, err := upmgo.Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f6, s) {
		t.Error("Figure6 != Figure5 with Scale 4")
	}
}

func TestPublicLatencyScaling(t *testing.T) {
	l := upmgo.Origin2000Latency().ScaleRemote(2, 1)
	if l.MemLatency(0) != upmgo.Origin2000Latency().MemLatency(0) {
		t.Error("local latency changed")
	}
	if l.MemLatency(1) <= upmgo.Origin2000Latency().MemLatency(1) {
		t.Error("remote latency not scaled up")
	}
}

func TestPublicPolicies(t *testing.T) {
	if len(upmgo.Policies) != 4 {
		t.Errorf("Policies has %d entries, want 4", len(upmgo.Policies))
	}
	labels := map[upmgo.Policy]string{
		upmgo.FirstTouch: "ft", upmgo.RoundRobin: "rr",
		upmgo.Random: "rand", upmgo.WorstCase: "wc",
	}
	for p, want := range labels {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", p, p.String(), want)
		}
	}
}

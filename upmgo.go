// Package upmgo is a full reproduction of "Is Data Distribution Necessary
// in OpenMP?" (Nikolopoulos, Papatheodorou, Polychronopoulos, Labarta,
// Ayguadé — SC'2000, Best Paper) as a self-contained Go library.
//
// The paper's question: do OpenMP programs on ccNUMA machines need
// HPF-style data distribution directives, or can transparent, user-level
// dynamic page migration deliver the same locality? Its answer — no
// directives needed — rests on experiments this library regenerates on a
// simulated SGI Origin2000:
//
//   - a ccNUMA machine simulator (hypercube topology, caches, TLB, paged
//     memory with per-page per-node reference counters, virtual time,
//     memory-node contention) — package internal/machine and friends;
//   - an OpenMP-like fork/join runtime — internal/omp;
//   - the IRIX-style kernel competitive page migration engine —
//     internal/kmig;
//   - UPMlib, the paper's user-level page migration engine with the
//     iterative data-distribution mechanism and the record–replay
//     redistribution mechanism — internal/upm;
//   - OpenMP NAS benchmark reproductions (BT, SP, CG, MG, FT) —
//     internal/nas/...;
//   - an experiment harness regenerating every table and figure —
//     internal/exp.
//
// This package is the public facade: it re-exports the types and
// functions a downstream user needs to build machines, run OpenMP-style
// kernels on them, attach either migration engine, run the NAS
// reproductions, and regenerate the paper's evaluation. The examples/
// directory shows the API end-to-end.
package upmgo

import (
	"fmt"
	"io"
	"net/http"

	"upmgo/internal/exp"
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/memsys"
	"upmgo/internal/metrics"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/store"
	"upmgo/internal/topology"
	"upmgo/internal/trace"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

// Machine simulation.
type (
	// Machine is the simulated ccNUMA multiprocessor.
	Machine = machine.Machine
	// MachineConfig configures a Machine.
	MachineConfig = machine.Config
	// CPU is one simulated processor with a virtual clock.
	CPU = machine.CPU
	// Array is a float64 array in simulated memory.
	Array = machine.Array
	// IntArray is an int32 array in simulated memory.
	IntArray = machine.IntArray
	// Array3 and Array4 are dense multi-dimensional views.
	Array3 = machine.Array3
	Array4 = machine.Array4
	// MachineStats aggregates memory-system counters.
	MachineStats = machine.Stats
	// CPUStatsT counts one CPU's memory-system events.
	CPUStatsT = machine.CPUStats
	// Latency is the machine's timing model.
	Latency = memsys.Latency
)

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// DefaultMachineConfig returns the paper's 16-processor Origin2000.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// Origin2000Latency returns the paper's Table 1 latency model.
func Origin2000Latency() Latency { return memsys.Origin2000() }

// Page placement policies (the paper's four schemes).
type Policy = vm.Policy

const (
	// FirstTouch places pages with their first toucher (IRIX default;
	// the scheme the NAS codes are tuned for).
	FirstTouch = vm.FirstTouch
	// RoundRobin stripes pages across nodes.
	RoundRobin = vm.RoundRobin
	// Random places pages on seeded-random nodes.
	Random = vm.Random
	// WorstCase places every page on node 0 (buddy-allocator behaviour).
	WorstCase = vm.WorstCase
)

// Policies lists all placement schemes in the paper's order.
var Policies = vm.Policies

// OpenMP-like runtime.
type (
	// Team is a fork/join group of simulated threads.
	Team = omp.Team
	// Thread is the per-member view inside a parallel region.
	Thread = omp.Thread
	// Schedule selects a worksharing loop schedule.
	Schedule = omp.Schedule
	// EventSet provides point-to-point post/wait synchronisation for
	// pipelined (wavefront) parallel regions, as in NAS LU.
	EventSet = omp.EventSet
)

// NewTeam creates a team of n simulated threads on m.
func NewTeam(m *Machine, n int) (*Team, error) { return omp.NewTeam(m, n) }

// StaticSchedule returns OpenMP SCHEDULE(STATIC).
func StaticSchedule() Schedule { return omp.Static() }

// StaticChunkSchedule returns SCHEDULE(STATIC, chunk).
func StaticChunkSchedule(chunk int) Schedule { return omp.StaticChunk(chunk) }

// DynamicSchedule returns SCHEDULE(DYNAMIC, chunk).
func DynamicSchedule(chunk int) Schedule { return omp.Dynamic(chunk) }

// GuidedSchedule returns SCHEDULE(GUIDED).
func GuidedSchedule(minChunk int) Schedule { return omp.Guided(minChunk) }

// Nowait removes a worksharing loop's implicit barrier.
var Nowait = omp.Nowait

// NewEventSet creates post/wait cells (tags per thread) on a team for
// pipelined parallelism.
func NewEventSet(t *Team, tags int) *EventSet { return omp.NewEventSet(t, tags) }

// UPMlib — the paper's user-level page migration engine.
type (
	// UPM is an attached UPMlib instance.
	UPM = upm.UPM
	// UPMOptions tunes the engine (zero values = paper defaults).
	UPMOptions = upm.Options
	// UPMStats reports engine activity.
	UPMStats = upm.Stats
	// ReplicationOptions tunes the read-only page replication extension
	// (UPM.EnableWriteTracking + UPM.ReplicateReadOnly).
	ReplicationOptions = upm.ReplicationOptions
)

// NewUPM attaches a UPMlib engine to m (upmlib_init).
func NewUPM(m *Machine, opt UPMOptions) *UPM { return upm.Init(m, opt) }

// Kernel-level competitive migration engine (the IRIX baseline).
type (
	// KernelMigEngine is the IRIX-style engine.
	KernelMigEngine = kmig.Engine
	// KernelMigConfig tunes it.
	KernelMigConfig = kmig.Config
)

// AttachKernelMigration attaches the kernel engine to m's barriers.
func AttachKernelMigration(m *Machine, cfg KernelMigConfig) *KernelMigEngine {
	return kmig.Attach(m, cfg)
}

// NAS benchmark reproductions.
type (
	// NASConfig selects one benchmark run configuration.
	NASConfig = nas.Config
	// NASResult reports one run.
	NASResult = nas.Result
	// NASClass scales a benchmark (S, W, A).
	NASClass = nas.Class
	// UPMMode selects the UPMlib protocol for a NAS run.
	UPMMode = nas.Mode
	// NASPrefix is a reusable snapshot of one benchmark's
	// engine-independent cold start (machine build, allocation,
	// initialisation, the serial first-touch iteration). Build one with
	// RunNASPrefix, then fork any number of engine variants from it with
	// its RunFromSnapshot method; at Threads 1 a fork is bit-identical to
	// RunNAS from scratch.
	NASPrefix = nas.Prefix
)

// NAS problem classes and UPMlib protocols.
const (
	ClassS = nas.ClassS
	ClassW = nas.ClassW
	ClassA = nas.ClassA

	UPMOff        = nas.UPMOff
	UPMDistribute = nas.UPMDistribute
	UPMRecRep     = nas.UPMRecRep
)

// NASBenchmarks lists the benchmark names in the paper's order.
var NASBenchmarks = exp.BenchOrder

// RunNAS runs one NAS benchmark under the given configuration: the
// paper's five ("BT", "SP", "CG", "MG", "FT") or one of the extension
// codes ("LU", "EP", "IS"), which share the driver but are excluded from
// the figure sweeps.
func RunNAS(name string, cfg NASConfig) (NASResult, error) {
	b, ok := exp.Builder(name)
	if !ok {
		return NASResult{}, fmt.Errorf(`upmgo: %w: %q (want "BT", "SP", "CG", "MG", "FT", or the "LU"/"EP"/"IS" extensions)`, ErrUnknownBenchmark, name)
	}
	return nas.Run(b, cfg)
}

// RunNASPrefix simulates the engine-independent cold-start prefix of cfg
// once and returns it as a reusable snapshot: fork engine variants from
// it with NASPrefix.RunFromSnapshot instead of repeating the cold start
// per variant. Configs with a Tweak or Tracer cannot be snapshotted.
func RunNASPrefix(name string, cfg NASConfig) (*NASPrefix, error) {
	b, ok := exp.Builder(name)
	if !ok {
		return nil, fmt.Errorf(`upmgo: %w: %q (want "BT", "SP", "CG", "MG", "FT", or the "LU"/"EP"/"IS" extensions)`, ErrUnknownBenchmark, name)
	}
	return nas.RunPrefix(b, cfg)
}

// ErrUnknownBenchmark is the sentinel wrapped by RunNAS and the figure
// sweeps when a benchmark name is neither one of the paper's five nor
// an extension; match it with errors.Is.
var ErrUnknownBenchmark = exp.ErrUnknownBenchmark

// Virtual-time tracing. Set NASConfig.Tracer (or SweepRunner.TraceDir)
// to record virtual-time-stamped events from every simulation layer;
// tracing never charges virtual time, so a traced run's numbers are
// bit-identical to the same run untraced.
type (
	// Tracer receives simulation events; TraceRecorder is the standard
	// implementation.
	Tracer = trace.Tracer
	// TraceRecorder buffers events and merges them deterministically by
	// (virtual time, CPU, per-CPU sequence).
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded event.
	TraceEvent = trace.Event
	// TraceKind identifies an event type.
	TraceKind = trace.Kind
	// TracePageMove is one page migration within an event's page list.
	TracePageMove = trace.PageMove
	// TraceSummary is the structured digest of one run's trace.
	TraceSummary = trace.Summary
)

// NewTraceRecorder returns an empty event recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// WriteChromeTrace renders a merged event stream in the Chrome
// trace_event JSON format (chrome://tracing, Perfetto).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChromeTrace(w, events)
}

// SummarizeTrace digests a merged event stream (Recorder.Events order).
func SummarizeTrace(events []TraceEvent) TraceSummary { return trace.Summarize(events) }

// WriteTraceSummary renders a summary as text: the per-phase virtual-time
// breakdown, engine counters, and the per-iteration table.
func WriteTraceSummary(w io.Writer, s TraceSummary) { trace.WriteSummary(w, s) }

// NUMA locality metrics. Set NASConfig.Metrics (or SweepRunner's
// MetricsDir / MetricsRegistry) to sample, at every iteration mark and
// marked-phase boundary, per-node page residency, local vs remote access
// counts from the hardware reference-counter rows, migrations, TLB
// shootdown rounds, replica collapses and barrier-imbalance picoseconds.
// Sampling never charges virtual time — a sampled run is bit-identical
// in virtual time to the same run unsampled — and sampled configs are
// never memoized by a SweepCache.
type (
	// MetricsSampler collects a MetricsSeries from one NAS run.
	MetricsSampler = metrics.Sampler
	// MetricsOptions configures a sampler (heatmap capture, live
	// registry publication, cell label).
	MetricsOptions = metrics.Options
	// MetricsSeries is a completed sampler's time series, exportable as
	// JSON, CSV or Prometheus text.
	MetricsSeries = metrics.Series
	// MetricsSample is one snapshot within a series.
	MetricsSample = metrics.Sample
	// MetricsHeat is one iteration's hot-page × node reference-counter
	// matrix (rendered by `traceview heatmap` and `pagemap -from`).
	MetricsHeat = metrics.Heat
	// MetricsRegistry is a labelled gauge/counter registry with
	// Prometheus text exposition, backing the live -metrics-addr
	// endpoint of cmd/sweep.
	MetricsRegistry = metrics.Registry
	// MetricsLabels name one series within a registry family.
	MetricsLabels = metrics.Labels
)

// NewMetricsSampler returns an idle sampler; attach it via
// NASConfig.Metrics and read its Series after the run.
func NewMetricsSampler(opt MetricsOptions) *MetricsSampler { return metrics.NewSampler(opt) }

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHandler returns the combined observability endpoint for a
// registry: Prometheus text at /metrics, expvar at /debug/vars and the
// net/http/pprof profiles under /debug/pprof/.
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }

// ReadMetricsSeries parses a series written by MetricsSeries.WriteJSON
// (the .metrics.json files of `sweep -metrics`).
func ReadMetricsSeries(r io.Reader) (MetricsSeries, error) { return metrics.ReadSeries(r) }

// WriteLocalityTable renders Figure 1/4 cells' local:remote main-memory
// access ratios as a Markdown table (benchmark × placement rows, engine
// columns) — the locality-convergence digest behind EXPERIMENTS.md.
func WriteLocalityTable(w io.Writer, cells []ExperimentCell) error {
	return exp.WriteLocalityTable(w, cells)
}

// Experiment harness — the paper's tables and figures.
type (
	// ExperimentCell is one bar of Figure 1/4.
	ExperimentCell = exp.Cell
	// SweepOptions selects the scope of a figure sweep (class, benchmark
	// subset, seed, iteration override, synthetic phase scale).
	SweepOptions = exp.SweepOptions
	// Table2Row is one line of the paper's Table 2.
	Table2Row = exp.Table2Row
	// Figure5Cell is one bar of Figure 5/6 with its overhead split.
	Figure5Cell = exp.Figure5Cell
	// SweepRunner executes figure/table cells concurrently on a bounded
	// host worker pool with deterministic (presentation-order) output:
	// construct one, optionally attach a SweepCache and an OnEvent
	// progress callback, and call its context-taking Figure1/Figure4/
	// Table2/Figure5/Figure6 methods. The zero value runs with GOMAXPROCS
	// workers and no memoization.
	SweepRunner = exp.Runner
	// SweepCache memoizes completed cells across sweeps, so overlapping
	// figures (Figure 1 ⊂ Figure 4; Table 2 reuses Figure 4's UPMlib
	// cells) simulate each unique (benchmark, config) cell exactly once.
	// It also holds the shared cold-start prefix snapshots (NASPrefix)
	// that let engine variants of one placement fork a single simulated
	// prefix instead of repeating it (disable with SweepRunner.NoFork).
	SweepCache = exp.Cache
	// SweepCacheStats is a snapshot of a SweepCache's hit/miss counters.
	SweepCacheStats = exp.CacheStats
	// SweepEvent is one per-cell progress notification from a SweepRunner.
	SweepEvent = exp.Event
	// SweepCellSpec names one figure/table cell: a benchmark plus the
	// exact NASConfig of its run.
	SweepCellSpec = exp.CellSpec
)

// NewSweepCache returns an empty cell cache to share across sweeps.
func NewSweepCache() *SweepCache { return exp.NewCache() }

// Unified sweep request surface. Every figure and table is one
// SweepRequest — a SweepKind plus SweepOptions — dispatched through
// Sweep or SweepRunner.Sweep; the named Figure/Table functions below are
// wrappers over it. The request's JSON form is exactly the body of
// cmd/sweepd's POST /v1/jobs.
type (
	// SweepKind names one of the paper's five sweeps.
	SweepKind = exp.Kind
	// SweepRequest selects a sweep: which figure/table, and its options.
	SweepRequest = exp.SweepRequest
	// SweepResult carries whichever shape the kind produces (cells,
	// Table 2 rows, or Figure 5/6 bars).
	SweepResult = exp.SweepResult
)

// The paper's sweeps, in presentation order, plus the hierarchical
// topology-scaling sweep (Figure 4's grid on 64/128/256-CPU machines).
const (
	KindFigure1   = exp.KindFigure1
	KindFigure4   = exp.KindFigure4
	KindTable2    = exp.KindTable2
	KindFigure5   = exp.KindFigure5
	KindFigure6   = exp.KindFigure6
	KindTopoScale = exp.KindTopoScale
)

// TopoScaleShapes are the hierarchical machine shapes the toposcale sweep
// runs by default (preset names; see TopologyPresets).
var TopoScaleShapes = exp.TopoScaleShapes

// SweepKinds lists every valid SweepKind in presentation order.
var SweepKinds = exp.Kinds

// ErrUnknownSweepKind is the sentinel wrapped by Sweep and SweepSpecs
// for a kind outside the paper's five; match it with errors.Is
// (cmd/sweepd maps it to 400 Bad Request).
var ErrUnknownSweepKind = exp.ErrUnknownKind

// ParseSweepKind converts a string ("figure1" … "figure6", "table2") to
// a SweepKind, or ErrUnknownSweepKind.
func ParseSweepKind(s string) (SweepKind, error) { return exp.ParseKind(s) }

// Sweep runs one sweep request with a default SweepRunner. For
// cancellation, shared caching and progress, use SweepRunner.Sweep.
func Sweep(req SweepRequest) (SweepResult, error) { return exp.Sweep(req) }

// SweepSpecs enumerates the cells a request would run, in presentation
// order, without running them.
func SweepSpecs(req SweepRequest) ([]SweepCellSpec, error) { return exp.SweepSpecs(req) }

// DescribeSweepGauges registers the upmgo_sweep_cells_* metric families
// on a registry; PublishSweepEvent keeps them current from a
// SweepRunner's OnEvent stream. cmd/sweep's -metrics-addr endpoint and
// cmd/sweepd's /metrics share these.
func DescribeSweepGauges(reg *MetricsRegistry) { exp.DescribeSweepGauges(reg) }

// PublishSweepEvent updates the sweep gauges for one progress event.
func PublishSweepEvent(reg *MetricsRegistry, cache *SweepCache, ev SweepEvent) {
	exp.PublishSweepEvent(reg, cache, ev)
}

// Host-side run telemetry. Every surface here is observation-only: a
// run with telemetry armed is bit-identical, in every virtual quantity
// and store record byte, to the same run without it.
type (
	// NASFastPath reports which acceleration fast paths a run engaged,
	// with a typed WhyNot diagnosis when a steady-armed run declined.
	NASFastPath = nas.FastPath
	// NASWhyNot explains why a steady-armed run simulated every
	// iteration (reason enum plus the supporting evidence).
	NASWhyNot = nas.WhyNot
	// NASWhyNotReason enumerates the typed refusal reasons.
	NASWhyNotReason = nas.WhyNotReason
	// NASHostStages splits one run's host wall-clock cost by stage;
	// attach via NASConfig.HostStages.
	NASHostStages = nas.HostStages
	// CellReport is one sweep cell's host-side telemetry record
	// (provenance, fast-path kind, stage attribution), carried on
	// SweepEvent.Report.
	CellReport = exp.CellReport
	// CellStageSeconds is a cell's (or sweep's) host time by stage.
	CellStageSeconds = exp.StageSeconds
	// FastPathKind classifies how a cell's answer was obtained.
	FastPathKind = exp.FastPathKind
	// SweepReport aggregates a sweep's CellReports (`sweep -report`,
	// `traceview report`).
	SweepReport = exp.SweepReport
	// SweepWhyNotCount is one bucket of a SweepReport's why-not histogram.
	SweepWhyNotCount = exp.WhyNotCount
)

// The typed reasons a steady-armed run declined its fast-forward.
const (
	WhyNotSampler       = nas.WhyNotSampler
	WhyNotDetectionOnly = nas.WhyNotDetectionOnly
	WhyNotNoTail        = nas.WhyNotNoTail
	WhyNotLoopTooShort  = nas.WhyNotLoopTooShort
	WhyNotPerturbed     = nas.WhyNotPerturbed
	WhyNotPeriodBeyond  = nas.WhyNotPeriodBeyondCap
	WhyNotHomesMoving   = nas.WhyNotHomesMoving
	WhyNotAperiodic     = nas.WhyNotAperiodic
)

// FastPathKind values, cheapest first.
const (
	FastPathRecalled = exp.FastPathRecalled
	FastPathCampaign = exp.FastPathCampaign
	FastPathSteadyPK = exp.FastPathSteadyPK
	FastPathSteadyP1 = exp.FastPathSteadyP1
	FastPathFullSim  = exp.FastPathFullSim
)

// FastPathKinds lists the kinds in presentation order.
var FastPathKinds = exp.FastPathKinds

// Cell provenance values (CellReport.Source).
const (
	CellSourceMemory    = exp.SourceMemory
	CellSourceStore     = exp.SourceStore
	CellSourceSimulated = exp.SourceSimulated
)

// BuildSweepReport aggregates the CellReports collected from a sweep's
// events into a SweepReport, keeping the topN slowest cells (0 = 5).
func BuildSweepReport(reports []*CellReport, topN int) SweepReport {
	return exp.BuildSweepReport(reports, topN)
}

// PublishBuildInfo sets the upmgo_build_info gauge on reg: constant 1,
// with the Go runtime version and the simulator's code/schema versions
// in the labels. Both cmd/sweep's -metrics-addr endpoint and
// cmd/sweepd's /metrics publish it.
func PublishBuildInfo(reg *MetricsRegistry) {
	metrics.PublishBuildInfo(reg, store.CodeVersion, store.SchemaVersion)
}

// Histogram family names shared by the daemons' /metrics endpoints.
const (
	MetricCellSeconds     = metrics.CellSecondsName
	MetricJobQueueSeconds = metrics.JobQueueSecondsName
	MetricJobRunSeconds   = metrics.JobRunSecondsName
	MetricHTTPSeconds     = metrics.HTTPSecondsName
)

// Content-addressed on-disk result store — the persistent second level
// under a SweepCache (attach with SweepCache.SetStore) and the data
// plane of cmd/sweepd's GET /v1/cells. Records are keyed by the cell's
// memoization key, written atomically (temp file + rename), carry a
// schema/code-version envelope and a payload hash, and decode
// bit-identical across processes.
type (
	// ResultStore is one store handle; any number of handles (and
	// processes) may share a directory.
	ResultStore = store.Store
	// StoreRecord is the on-disk envelope of one cell.
	StoreRecord = store.Record
	// StoreProvenance records which engine/class/code version wrote a
	// record.
	StoreProvenance = store.Provenance
	// StoreMeta is one record's directory listing entry (ResultStore.Scan).
	StoreMeta = store.Meta
	// StoreCheckStats summarises a ResultStore.Check pass.
	StoreCheckStats = store.CheckStats
	// StoreGCStats summarises a ResultStore.GC pass.
	StoreGCStats = store.GCStats
)

// OpenResultStore opens (creating if needed) a store directory.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// StoreAddress returns the content address (hex SHA-256 of the
// memoization key) a cell's record lives at — the {address} of
// cmd/sweepd's GET /v1/cells/{address}.
func StoreAddress(key string) string { return store.Address(key) }

// EncodeStoreRecord renders the exact record bytes ResultStore.Put
// would write for a cell. Record encoding is deterministic (no
// timestamps, fixed field order), so these bytes are the byte-identity
// yardstick: what cmd/sweepd serves from /v1/cells must equal what any
// process encodes for the same (key, bench, result).
func EncodeStoreRecord(key, bench string, res NASResult) ([]byte, error) {
	return store.EncodeRecord(key, bench, res)
}

// ErrStoreNotFound reports a key with no intact record (including
// records stale by schema or code version); ErrStoreCorrupt reports a
// record that exists but fails its integrity checks (cmd/sweepd maps it
// to 500). Match both with errors.Is.
var (
	ErrStoreNotFound = store.ErrNotFound
	ErrStoreCorrupt  = store.ErrCorrupt
)

// WriteTable1 renders the paper's Table 1 (hierarchy latencies) to w.
func WriteTable1(w io.Writer) error { return exp.WriteTable1(w) }

// WriteTable1Topo renders the latency ladder of a machine with the given
// shape ("4x2x8", "hier64", "cube:2x2x2"; empty = the paper's default
// Origin2000) to w. cmd/latency's -topo flag is this function.
func WriteTable1Topo(w io.Writer, topo string) error { return exp.WriteTable1Topo(w, topo) }

// Machine topologies. The simulator's interconnect is a
// topology.Topology — the paper's hypercube or an arbitrary hierarchy of
// levels (sockets × dies × …) with per-level distance and latency
// contributions. A NASConfig/SweepOptions Topo string selects a shape by
// ParseTopoShape grammar; shapes cube-equivalent to the class default
// machine canonicalise away and share the legacy hypercube path's
// fingerprints, cache entries and store records bit-identically.
type (
	// Topology is the interconnect interface (nodes, hop distances,
	// closest-node orders, level structure).
	Topology = topology.Topology
	// TopologyLevel is one tier of a hierarchical machine.
	TopologyLevel = topology.Level
	// TopologyHierarchy is an arbitrary tree of levels with a cached
	// distance matrix.
	TopologyHierarchy = topology.Hierarchy
	// TopologyShape is a parsed machine shape: node levels plus CPUs per
	// node.
	TopologyShape = topology.Shape
)

// TopologyPresets maps mnemonic shape names ("origin", "hier64", …) to
// their shape specs.
var TopologyPresets = topology.Presets

// ParseTopoShape parses a "[cube:]A1xA2x...xAn" shape string or preset
// name: the last component is CPUs per node, the rest are level arities
// outermost first.
func ParseTopoShape(s string) (TopologyShape, error) { return topology.ParseShape(s) }

// NewTopologyHierarchy builds a hierarchical topology from levels,
// outermost first.
func NewTopologyHierarchy(levels []TopologyLevel) (*TopologyHierarchy, error) {
	return topology.NewHierarchy(levels)
}

// WriteCellsCSV renders Figure 1/4 cells as CSV for external plotting.
func WriteCellsCSV(w io.Writer, cells []ExperimentCell) { exp.WriteCellsCSV(w, cells) }

// The Figure/Table convenience functions below run a default SweepRunner
// (parallel, unmemoized, background context). For cancellation, shared
// caching across figures, or progress events, use a SweepRunner directly.

// Figure1 regenerates the paper's Figure 1 (placement × kernel migration).
func Figure1(o SweepOptions) ([]ExperimentCell, error) { return exp.Figure1(o) }

// Figure4 regenerates the paper's Figure 4 (Figure 1 plus UPMlib).
func Figure4(o SweepOptions) ([]ExperimentCell, error) { return exp.Figure4(o) }

// TopoScale runs the hierarchical scaling sweep: the Figure 4
// placement×engine grid on each TopoScaleShapes machine (o.Topo narrows
// it to one shape) — the experiment that asks where the paper's
// "balanced placement is enough" conclusion breaks past 16 CPUs.
func TopoScale(o SweepOptions) ([]ExperimentCell, error) { return exp.TopoScale(o) }

// Table2 regenerates the paper's Table 2 (steady-state slowdown and
// first-iteration migration fractions).
func Table2(o SweepOptions) ([]Table2Row, error) { return exp.Table2(o) }

// Figure5 regenerates the paper's Figure 5 (record–replay) on
// o.Benches (default BT and SP) at o.Scale (default 1).
func Figure5(o SweepOptions) ([]Figure5Cell, error) { return exp.Figure5(o) }

// Figure6 regenerates the paper's Figure 6: Figure 5 on the
// synthetically scaled BT (o.Scale default 4).
func Figure6(o SweepOptions) ([]Figure5Cell, error) { return exp.Figure6(o) }

package upmgo_test

import (
	"fmt"

	"upmgo"
)

// The smallest complete use of the library: a machine, a team, one
// parallel loop, and the locality statistics the paper's experiments are
// built on.
func Example() {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		panic(err)
	}
	a := m.NewArray("a", 16*2048) // one 16 KB page per CPU
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		panic(err)
	}
	team.Parallel(func(tr *upmgo.Thread) {
		tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
			for i := from; i < to; i++ {
				a.Set(c, i, 1)
			}
		})
	})
	s := m.Stats()
	fmt.Printf("remote fraction under first-touch: %.2f\n", s.RemoteRatio())
	// Output:
	// remote fraction under first-touch: 0.00
}

// UPMlib as implicit data distribution (the paper's Figure 2 protocol):
// a worst-case placement is repaired after the first iteration exposes
// the reference trace in the hardware counters.
func ExampleUPM_migrateMemory() {
	cfg := upmgo.DefaultMachineConfig()
	cfg.Placement = upmgo.WorstCase // buddy allocator: all pages on node 0
	m, err := upmgo.NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	a := m.NewArray("a", 16*2048)
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		panic(err)
	}
	u := upmgo.NewUPM(m, upmgo.UPMOptions{})
	lo, hi := a.PageRange()
	u.MemRefCnt(lo, hi) // upmlib_memrefcnt

	iteration := func() {
		team.Parallel(func(tr *upmgo.Thread) {
			tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				c.FlushCaches()
				for i := from; i < to; i++ {
					a.Add(c, i, 1)
				}
			})
		})
	}

	iteration()
	moved := u.MigrateMemory(team.Master()) // upmlib_migrate_memory
	fmt.Printf("pages moved after the first iteration: %d\n", moved)
	fmt.Printf("pages left on node 0: %d\n", m.PT.HomeHistogram()[0])
	// Output:
	// pages moved after the first iteration: 14
	// pages left on node 0: 2
}

// Record–replay data redistribution (the paper's Figure 3 protocol) on a
// two-phase access pattern: record the phase's counters once, then replay
// the computed page migrations before the phase and undo them after it.
func ExampleUPM_record() {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		panic(err)
	}
	a := m.NewArray("a", 16*2048) // one page per CPU
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		panic(err)
	}
	u := upmgo.NewUPM(m, upmgo.UPMOptions{MaxCritical: 16})
	lo, hi := a.PageRange()
	u.MemRefCnt(lo, hi)

	// Phase body: thread t works on the chunk half the machine away (a
	// deterministic stand-in for a transpose-like phase change).
	phase := func() {
		team.Parallel(func(tr *upmgo.Thread) {
			tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				c.FlushCaches()
				n := a.Len()
				for i := from; i < to; i++ {
					a.Add(c, (i+n/2)%n, 1)
				}
			})
		})
	}

	team.Parallel(func(tr *upmgo.Thread) { // first-touch placement
		tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
			for i := from; i < to; i++ {
				a.Set(c, i, 0)
			}
		})
	})

	master := team.Master()
	u.Record(master) // snapshot before the phase
	phase()
	u.Record(master) // snapshot after it
	u.CompareCounters(master)

	moved := u.Replay(master) // next iteration: move the pages ahead of the phase
	phase()
	restored := u.Undo(master) // and put them back afterwards
	fmt.Printf("replayed %d pages, restored %d\n", moved, restored)
	// Output:
	// replayed 16 pages, restored 16
}

// Running one of the paper's benchmarks under a chosen placement scheme
// and engine, as cmd/nasbench does.
func ExampleRunNAS() {
	r, err := upmgo.RunNAS("MG", upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: upmgo.RoundRobin,
		UPM:       upmgo.UPMDistribute,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s verified: %v, iterations: %d\n", r.Kernel, r.Verified, len(r.IterPS))
	// Output:
	// MG verified: true, iterations: 4
}

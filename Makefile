GO ?= go

.PHONY: all build test race bench sweep examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (EXPERIMENTS.md input).
sweep:
	$(GO) run ./cmd/sweep -all -class W | tee experiments_classW.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datadist
	$(GO) run ./examples/recordreplay
	$(GO) run ./examples/numafuture
	$(GO) run ./examples/replication

clean:
	$(GO) clean ./...

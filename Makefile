GO ?= go

.PHONY: all build test race cover bench bench-host bench-check sweep examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package coverage, then the checked-in floors (ci/coverage_floors.txt).
cover:
	$(GO) test -cover ./...
	sh ci/check_coverage.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Host-side (wall clock) benchmarks, recorded machine-readably: the raw
# scalar-vs-run sweep of the bulk-access fast path, a full figure
# benchmark, and the end-to-end sweep with prefix forking on and off.
# The combined `go test -json` stream is distilled by ci/benchjson into
# BENCH_host.json (benchmark name -> ns/op, stamped with host and date);
# check it in to extend the perf trajectory.
bench-host:
	{ $(GO) test -run xxx -bench 'BenchmarkTouch(Scalar|Run)' -benchmem -json ./internal/machine; \
	  $(GO) test -run xxx -bench 'BenchmarkFigure1/BT$$|BenchmarkSweepFigure4All' -benchtime 3x -json .; } \
	| $(GO) run ./ci/benchjson -o BENCH_host.json

# Regression gate: re-run the same benchmarks and diff against the
# checked-in BENCH_host.json; exits non-zero on any slowdown beyond 10%.
# Host benches are wall-clock noisy — treat a failure as a prompt to
# investigate (and re-run), not as proof of a regression.
bench-check:
	{ $(GO) test -run xxx -bench 'BenchmarkTouch(Scalar|Run)' -benchmem -json ./internal/machine; \
	  $(GO) test -run xxx -bench 'BenchmarkFigure1/BT$$|BenchmarkSweepFigure4All' -benchtime 3x -json .; } \
	| $(GO) run ./ci/benchjson -compare BENCH_host.json

# Regenerate every table and figure of the paper (EXPERIMENTS.md input).
sweep:
	$(GO) run ./cmd/sweep -all -class W | tee experiments_classW.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datadist
	$(GO) run ./examples/recordreplay
	$(GO) run ./examples/numafuture
	$(GO) run ./examples/replication

clean:
	$(GO) clean ./...

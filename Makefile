GO ?= go

.PHONY: all build test race cover bench bench-host bench-check sweep examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package coverage, then the checked-in floors (ci/coverage_floors.txt).
cover:
	$(GO) test -cover ./...
	sh ci/check_coverage.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Host-side (wall clock) benchmarks, recorded machine-readably: the raw
# scalar-vs-run sweep of the bulk-access fast path, the steady-detector
# per-iteration overhead, all five Figure 1 cells, the end-to-end sweep
# with prefix forking on and off, the 64-CPU hierarchical Figure 4
# column (the toposcale sweep's unit of work), and the paper-scale
# Class W column with and without steady-state fast-forward. The combined
# `go test -json` stream is distilled by ci/benchjson into
# BENCH_host.json (benchmark name -> ns/op, stamped with host and date);
# check it in to extend the perf trajectory.
BENCH_STREAM = { $(GO) test -run xxx -bench 'BenchmarkTouch(Scalar|Run)' -benchmem -json ./internal/machine; \
	  $(GO) test -run xxx -bench 'BenchmarkSteadyStateDetect' -json ./internal/nas; \
	  $(GO) test -run xxx -bench 'BenchmarkFigure1|BenchmarkSweepFigure4All' -benchtime 3x -json .; \
	  $(GO) test -run xxx -bench 'BenchmarkSweepTopo64' -benchtime 3x -json .; \
	  $(GO) test -run xxx -bench 'BenchmarkSweepClassWSteady' -benchtime 1x -json .; }

bench-host:
	$(BENCH_STREAM) | $(GO) run ./ci/benchjson -o BENCH_host.json

# Regression gate (blocking in CI): re-run the same benchmarks and diff
# against the checked-in BENCH_host.json; exits non-zero on any slowdown
# beyond tolerance. Tolerances are per-benchmark, sized to observed
# run-to-run jitter on shared/virtualized runners: microbenchmarks swing
# up to ~2x between idle-host runs, sub-second figure cells ~60%, the
# multi-second sweeps ~30%. The gate therefore catches algorithmic
# regressions (a lost fast path, an accidental O(n^2)) rather than
# single-digit drift — the dated history in BENCH_host.json is the tool
# for watching drift.
bench-check:
	$(BENCH_STREAM) | $(GO) run ./ci/benchjson -compare BENCH_host.json \
	  -tol 'BenchmarkTouchScalar=100' -tol 'BenchmarkTouchRun=100' \
	  -tol 'BenchmarkSteadyStateDetect/homes=100' -tol 'BenchmarkSteadyStateDetect/homes+rows=100' \
	  -tol 'BenchmarkFigure1/BT=60' -tol 'BenchmarkFigure1/CG=60' -tol 'BenchmarkFigure1/FT=60' \
	  -tol 'BenchmarkFigure1/MG=60' -tol 'BenchmarkFigure1/SP=60' \
	  -tol 'BenchmarkSweepFigure4All/fork=40' -tol 'BenchmarkSweepFigure4All/nofork=40' \
	  -tol 'BenchmarkSweepTopo64=60' \
	  -tol 'BenchmarkSweepClassWSteady/plain=40' -tol 'BenchmarkSweepClassWSteady/steady=40' \
	  -tol 'BenchmarkSweepClassWSteady/periodk=40'

# Regenerate every table and figure of the paper (EXPERIMENTS.md input).
sweep:
	$(GO) run ./cmd/sweep -all -class W | tee experiments_classW.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datadist
	$(GO) run ./examples/recordreplay
	$(GO) run ./examples/numafuture
	$(GO) run ./examples/replication

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test race cover bench bench-host sweep examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package coverage, then the checked-in floors (ci/coverage_floors.txt).
cover:
	$(GO) test -cover ./...
	sh ci/check_coverage.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Host-side (wall clock) effect of the bulk-access fast path: the raw
# scalar-vs-run sweep, then a full benchmark under both charging modes.
bench-host:
	$(GO) test -run xxx -bench 'BenchmarkTouch(Scalar|Run)' -benchmem ./internal/machine
	$(GO) test -run xxx -bench 'BenchmarkFigure1/BT' -benchtime 3x .

# Regenerate every table and figure of the paper (EXPERIMENTS.md input).
sweep:
	$(GO) run ./cmd/sweep -all -class W | tee experiments_classW.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datadist
	$(GO) run ./examples/recordreplay
	$(GO) run ./examples/numafuture
	$(GO) run ./examples/replication

clean:
	$(GO) clean ./...

// Recordreplay: the paper's data *re*distribution mechanism on a
// two-phase kernel. Phase A sweeps the grid row-partitioned (local under
// first-touch); phase B processes the rows under a rotated partition —
// thread t works on the band half the machine away — so the placement
// phase A established is wrong for every page of phase B. A static data
// distribution can serve one phase only. UPMlib records the counters
// around phase B during one iteration, computes which pages phase B wants
// elsewhere, and in every later iteration replays those migrations before
// the phase and undoes them after it — the paper's Figure 3 protocol,
// without any data distribution directive in the program.
package main

import (
	"fmt"
	"log"

	"upmgo"
)

const (
	n     = 512 // n x n grid, one page per two rows at 16 KB pages
	iters = 6
)

func main() {
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		log.Fatal(err)
	}
	a := m.NewArray("a", n*n)
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		log.Fatal(err)
	}
	u := upmgo.NewUPM(m, upmgo.UPMOptions{MaxCritical: 128})
	lo, hi := a.PageRange()
	u.MemRefCnt(lo, hi)

	phaseA := func() { // rows: local under first-touch
		team.Parallel(func(tr *upmgo.Thread) {
			tr.For(0, n, upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				for r := from; r < to; r++ {
					for col := 0; col < n; col++ {
						a.Add(c, r*n+col, 1)
						c.Flops(1)
					}
				}
			})
		})
	}
	phaseB := func() { // rotated row bands: every page is remote now
		team.Parallel(func(tr *upmgo.Thread) {
			tr.For(0, n, upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				for r0 := from; r0 < to; r0++ {
					r := (r0 + n/2) % n // the band half the machine away
					for col := 0; col < n; col++ {
						a.Add(c, r*n+col, 1)
						c.Flops(1)
					}
				}
			})
		})
	}

	// First-touch placement by phase A's partitioning.
	phaseA()

	master := team.Master()
	fmt.Println("iter  phaseB(ms)  replays  undos")
	for it := 1; it <= iters; it++ {
		phaseA()
		switch it {
		case 1:
			// Record around phase B once.
			u.Record(master)
		default:
			u.Replay(master) // move phase B's critical pages ahead of it
		}
		t0 := master.Now()
		phaseB()
		dt := master.Now() - t0
		switch it {
		case 1:
			u.Record(master)
			u.CompareCounters(master)
		default:
			u.Undo(master) // restore phase A's distribution
		}
		s := u.Stats()
		fmt.Printf("%4d %11.3f %8d %6d\n", it, float64(dt)/1e9, s.ReplayMigrations, s.UndoMigrations)
	}
	fmt.Printf("\n%d phase plans computed; every replayed page went home afterwards: %v\n",
		u.Plans(), u.Stats().ReplayMigrations == u.Stats().UndoMigrations)
}

// Replication: the extension the paper sketches in one sentence —
// "read-only pages can be replicated in multiple nodes". Every CPU
// repeatedly reads a shared coefficient table that a buddy allocator put
// on node 0; UPMlib's replication policy detects the multi-node read-only
// trace and copies the hot pages to their reader nodes, after which the
// broadcast reads are served locally everywhere. A later write proves the
// safety net: it collapses every copy.
package main

import (
	"fmt"
	"log"

	"upmgo"
)

func main() {
	cfg := upmgo.DefaultMachineConfig()
	cfg.Placement = upmgo.WorstCase
	m, err := upmgo.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	table := m.NewArray("table", 8*2048) // 8 pages of coefficients on node 0
	for i := range table.Data() {
		table.Data()[i] = 1.0 / float64(i+1)
	}
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		log.Fatal(err)
	}
	u := upmgo.NewUPM(m, upmgo.UPMOptions{})
	lo, hi := table.PageRange()
	u.MemRefCnt(lo, hi)
	u.EnableWriteTracking()

	sweep := func() (remotePct float64, ms float64) {
		s0 := m.Stats()
		t0 := team.Master().Now()
		team.Parallel(func(tr *upmgo.Thread) {
			c := tr.CPU
			c.FlushCaches() // the table competes with real working sets
			var acc float64
			for i := 0; i < table.Len(); i += 16 {
				acc += table.Get(c, i)
			}
			_ = acc
		})
		s1 := m.Stats()
		rem := float64(s1.RemoteMem - s0.RemoteMem)
		loc := float64(s1.LocalMem - s0.LocalMem)
		return 100 * rem / (rem + loc), float64(team.Master().Now()-t0) / 1e9
	}

	fmt.Println("phase                    remote%   time(ms)")
	r, ms := sweep()
	fmt.Printf("before replication       %6.1f   %8.3f\n", r, ms)

	created := u.ReplicateReadOnly(team.Master(), upmgo.ReplicationOptions{MaxReplicas: 7})
	for i := 0; i < 3; i++ {
		r, ms = sweep()
	}
	fmt.Printf("after  replication       %6.1f   %8.3f   (%d copies created)\n", r, ms, created)

	// A write invalidates the copies — correctness beats locality.
	w := m.CPU(5)
	table.Set(w, 0, 2)
	fmt.Printf("after a write: page 0 still replicated? %v (collapses so far: %d)\n",
		m.PT.HasReplicas(lo), m.PT.Collapses())
}

// Quickstart: build the paper's 16-processor Origin2000, run an
// OpenMP-style parallel loop on it, and see where the memory accesses were
// served. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"upmgo"
)

func main() {
	// The simulated machine of the paper: 16 CPUs on 8 nodes, first-touch
	// page placement, Table 1 latencies.
	m, err := upmgo.NewMachine(upmgo.DefaultMachineConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A 4 MB simulated array and an OpenMP-style team.
	a := m.NewArray("a", 512*1024)
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		log.Fatal(err)
	}

	// PARALLEL DO: initialise in parallel — under first-touch this also
	// places each page on the node of the thread that owns its elements.
	team.Parallel(func(tr *upmgo.Thread) {
		tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
			for i := from; i < to; i++ {
				a.Set(c, i, float64(i))
			}
		})
	})

	// A second pass with the same partitioning: now every thread's pages
	// are local, so remote accesses stay near zero.
	var sum float64
	team.Parallel(func(tr *upmgo.Thread) {
		var s float64
		tr.For(0, a.Len(), upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
			for i := from; i < to; i++ {
				s += a.Get(c, i)
			}
			c.Flops(to - from)
		}, upmgo.Nowait)
		s = tr.ReduceSum(s)
		if tr.ID == 0 {
			sum = s
		}
		tr.Barrier()
	})

	stats := m.Stats()
	fmt.Printf("sum               = %.6g\n", sum)
	fmt.Printf("virtual time      = %.3f ms\n", float64(team.Master().Now())/1e9)
	fmt.Printf("memory accesses   = %d (L2 misses %d)\n", stats.Accesses, stats.L2Miss)
	fmt.Printf("served remotely   = %.1f%%  <- first-touch makes the sweep local\n", 100*stats.RemoteRatio())
	fmt.Printf("page faults       = %d\n", stats.Faults)
}

// Datadist: the paper's headline mechanism on a custom kernel. An
// iterative stencil starts with the worst possible data placement (every
// page on node 0 — what a buddy allocator gives you), and UPMlib's
// iterative page-migration mechanism transparently reproduces the effect
// of a proper data distribution after the first iteration: no directives,
// no source changes beyond the two library calls of the paper's Figure 2.
package main

import (
	"fmt"
	"log"

	"upmgo"
)

const (
	rows  = 256
	cols  = 2048 // one 16 KB page per row
	iters = 8
)

func main() {
	cfg := upmgo.DefaultMachineConfig()
	cfg.Placement = upmgo.WorstCase // buddy-style: everything on node 0
	m, err := upmgo.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	grid := m.NewArray("grid", rows*cols)
	next := m.NewArray("next", rows*cols)
	team, err := upmgo.NewTeam(m, m.NumCPUs())
	if err != nil {
		log.Fatal(err)
	}

	// upmlib_init + upmlib_memrefcnt on the two hot arrays.
	u := upmgo.NewUPM(m, upmgo.UPMOptions{})
	lo, hi := grid.PageRange()
	u.MemRefCnt(lo, hi)
	lo, hi = next.PageRange()
	u.MemRefCnt(lo, hi)

	sweep := func() {
		team.Parallel(func(tr *upmgo.Thread) {
			tr.For(1, rows-1, upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				for r := from; r < to; r++ {
					for col := 1; col < cols-1; col++ {
						v := 0.25 * (grid.Get(c, (r-1)*cols+col) + grid.Get(c, (r+1)*cols+col) +
							grid.Get(c, r*cols+col-1) + grid.Get(c, r*cols+col+1))
						next.Set(c, r*cols+col, v)
						c.Flops(4)
					}
				}
			})
			// Copy back with the same partitioning.
			tr.For(1, rows-1, upmgo.StaticSchedule(), func(c *upmgo.CPU, from, to int) {
				for r := from; r < to; r++ {
					for col := 1; col < cols-1; col++ {
						grid.Set(c, r*cols+col, next.Get(c, r*cols+col))
					}
				}
			})
		})
	}

	for i := range grid.Data() {
		grid.Data()[i] = float64(i % 7)
	}

	master := team.Master()
	fmt.Println("iter   time(ms)  remote%   migrations")
	var prevRemote, prevLocal uint64
	for it := 1; it <= iters; it++ {
		t0 := master.Now()
		sweep()
		// The paper's Figure 2 protocol: invoke after the first
		// iteration and keep invoking while pages still move.
		if it == 1 || (u.Active() && u.LastMigrations() > 0) {
			u.MigrateMemory(master)
		}
		s := m.Stats()
		remote := s.RemoteMem - prevRemote
		local := s.LocalMem - prevLocal
		prevRemote, prevLocal = s.RemoteMem, s.LocalMem
		fmt.Printf("%4d %10.3f %8.1f %12d\n",
			it, float64(master.Now()-t0)/1e9,
			100*float64(remote)/float64(max64(remote+local, 1)), u.Stats().Migrations)
	}
	fmt.Printf("\nUPMlib moved %d pages (%d in the first invocation) and then deactivated itself: %v\n",
		u.Stats().Migrations, u.Stats().FirstInvocation, !u.Active())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

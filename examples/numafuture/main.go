// Numafuture: the paper's Section 2.2 prediction, measured. The authors
// argue the impact of page placement "would be more significant on ccNUMA
// architectures with higher remote memory access latencies" — machines
// less aggressively optimised than the Origin2000, or much larger ones
// where accesses cross many hops. This example scales the remote half of
// the latency ladder and shows the worst-case placement penalty growing
// with the remote:local ratio, while UPMlib keeps repairing it.
package main

import (
	"fmt"
	"log"

	"upmgo"
)

func main() {
	fmt.Println("remote:local   rr slowdown    rr+upmlib slowdown   (NAS CG, class S)")
	for _, mult := range []int64{1, 2, 4, 8} {
		ft := run(mult, upmgo.FirstTouch, upmgo.UPMOff)
		rr := run(mult, upmgo.RoundRobin, upmgo.UPMOff)
		fix := run(mult, upmgo.RoundRobin, upmgo.UPMDistribute)
		ratio := float64(scaled(mult).MemLatency(3)) / float64(scaled(mult).MemLatency(0))
		fmt.Printf("   %4.1f:1       %+7.1f%%        %+7.1f%%\n",
			ratio, 100*(rr/ft-1), 100*(fix/ft-1))
	}
	fmt.Println("\nOn the real Origin2000 the balanced round-robin placement loses little —")
	fmt.Println("the paper's core observation. As the remote:local ratio grows (less")
	fmt.Println("optimised or much larger ccNUMA machines, the paper's Section 2.2")
	fmt.Println("prediction), the same placement hurts more, and user-level page migration")
	fmt.Println("absorbs most of the loss.")
}

func scaled(mult int64) upmgo.Latency {
	return upmgo.Origin2000Latency().ScaleRemote(mult, 1)
}

func run(mult int64, p upmgo.Policy, mode upmgo.UPMMode) float64 {
	r, err := upmgo.RunNAS("CG", upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: p,
		UPM:       mode,
		Seed:      7,
		Tweak: func(mc *upmgo.MachineConfig) {
			mc.Lat = scaled(mult)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return r.Seconds()
}

module upmgo

go 1.23

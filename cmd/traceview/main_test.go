package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upmgo"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-class", "Q"},
		{"-placement", "best"},
		{"-upm", "sometimes"},
		{"-bench", "UA"},
		{"stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunSummary(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "FT", "-class", "S", "-placement", "wc", "-upm", "distribute"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"FT.S",             // the result line
		"phase breakdown",  // the Figure 5 decomposition
		"self-deactivated", // UPMlib's Figure 2 protocol fired
		"per iteration:",   // the per-iteration table
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary lacks %q:\n%s", want, text)
		}
	}
}

// writeSeries runs CG Class S with a sampler attached and dumps the
// series JSON — the same artifact `sweep -metrics` drops per cell. (CG,
// not FT: Class S FT fits in the L2 caches after warm-up, so its
// steady-state counter heatmaps are legitimately all zero.)
func writeSeries(t *testing.T, heatmap bool) string {
	t.Helper()
	s := upmgo.NewMetricsSampler(upmgo.MetricsOptions{Heatmap: heatmap, Cell: "cg-wc-test"})
	cfg := upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: upmgo.WorstCase,
		UPM:       upmgo.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	}
	if _, err := upmgo.RunNAS("CG", cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cg.metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Series().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunHeatmap renders a freshly captured series and checks the
// subcommand's geometry: a header naming the cell, one block per
// iteration with one intensity row per node, and the dominant-node row.
func TestRunHeatmap(t *testing.T) {
	path := writeSeries(t, true)
	var out, errw bytes.Buffer
	if err := run([]string{"heatmap", "-in", path, "-width", "40"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cg-wc-test:") || !strings.Contains(text, "iterations captured") {
		t.Errorf("header missing:\n%s", text)
	}
	blocks := strings.Count(text, "iteration ")
	nodeRows := strings.Count(text, "node 0 |")
	domRows := strings.Count(text, "dom    |")
	if blocks == 0 || nodeRows != blocks || domRows != blocks {
		t.Errorf("got %d iteration blocks, %d node-0 rows, %d dom rows", blocks, nodeRows, domRows)
	}
	// Early iterations carry live counters, so at least one dominant row
	// must name nodes. (Later rows may be all '.': once UPMlib freezes
	// the pages, reference counting stops.)
	populated := 0
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "dom    |"); ok {
			if strings.Trim(rest, ".|") != "" {
				populated++
			}
		}
	}
	if populated == 0 {
		t.Errorf("every dominant row is empty:\n%s", text)
	}

	// -iter selects a single block.
	out.Reset()
	if err := run([]string{"heatmap", "-in", path, "-iter", "1"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "iteration "); got != 1 {
		t.Errorf("-iter 1 rendered %d blocks", got)
	}
}

// TestRunHeatmapErrors: bad invocations fail loudly rather than printing
// an empty map.
func TestRunHeatmapErrors(t *testing.T) {
	withHeat := writeSeries(t, true)
	without := writeSeries(t, false)
	cases := [][]string{
		{"heatmap"}, // -in required
		{"heatmap", "-in", "/does/not/exist.json"},   // unreadable
		{"heatmap", "-in", withHeat, "-iter", "999"}, // no such iteration
		{"heatmap", "-in", without},                  // series captured no heatmaps
		{"heatmap", "-in", withHeat, "stray"},        // stray positional
		{"heatmap", "-nope"},                         // unknown flag
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// writeReportFile aggregates three synthetic cell runs the way
// `sweep -report` does and drops the JSON: one full simulation that
// refused to fast-forward (the incompressible kmig shape), one recalled
// cell, one extrapolated cell. The stage numbers are chosen so exactly
// 95% of the host time is attributed.
func writeReportFile(t *testing.T) string {
	t.Helper()
	reps := []*upmgo.CellReport{
		{Bench: "BT", Label: "ft-IRIXmig", Class: "W", Source: upmgo.CellSourceSimulated,
			Kind: upmgo.FastPathFullSim, HostSeconds: 2.5, VirtualSeconds: 30,
			Stages: upmgo.CellStageSeconds{TimedLoop: 2.4},
			FastPath: upmgo.NASFastPath{WhyNot: &upmgo.NASWhyNot{
				Reason: upmgo.WhyNotHomesMoving, HomeMoves: 7, Observed: 40}}},
		{Bench: "CG", Label: "ft", Class: "W", Source: upmgo.CellSourceStore,
			Kind: upmgo.FastPathRecalled, HostSeconds: 1.0, VirtualSeconds: 12,
			Stages: upmgo.CellStageSeconds{StoreProbe: 0.05, Recall: 0.9}},
		{Bench: "SP", Label: "rr", Class: "W", Source: upmgo.CellSourceSimulated,
			Kind: upmgo.FastPathSteadyP1, HostSeconds: 0.5, VirtualSeconds: 20,
			Stages: upmgo.CellStageSeconds{TimedLoop: 0.3, Extrapolate: 0.15}},
	}
	sr := upmgo.BuildSweepReport(reps, 5)
	sr.WallSeconds = 2.0
	blob, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunReport renders a sweep report and checks every section: the
// headline with the parallelism ratio, the fast-path kind counts in
// cheapest-first order, the stage breakdown with its attribution ratio,
// the slowest-cell ranking, and the why-not histogram naming the
// refusing cell.
func TestRunReport(t *testing.T) {
	path := writeReportFile(t)
	var out, errw bytes.Buffer
	if err := run([]string{"report", "-in", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"sweep report: 3 cell runs, 4.000s host time over 2.000s wall (2.0x parallel)",
		"Cells by fast path",
		"recalled",
		"steady_period_1",
		"full_sim",
		"95.0% of host time attributed",
		"timed_loop",
		"store_probe",
		"(unattributed)",
		"Slowest cells:",
		"1. BT  ft-IRIXmig",
		"Why the fast path declined:",
		"homes_moving",
		"BT ft-IRIXmig classW",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
	// Kind order: recalled (cheapest) must render before full_sim.
	if strings.Index(text, "recalled") > strings.Index(text, "full_sim") {
		t.Error("fast-path kinds are not cheapest-first")
	}
	// The slowest list is host-time descending.
	if strings.Index(text, "1. BT") > strings.Index(text, "2. CG") {
		t.Error("slowest cells are not ranked by host time")
	}
}

// TestRunReportErrors: bad invocations fail loudly.
func TestRunReportErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"report"}, // -in required
		{"report", "-in", "/does/not/exist.json"},
		{"report", "-in", bad},
		{"report", "-in", empty}, // no cells
		{"report", "-in", bad, "stray"},
		{"report", "-nope"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunChromeDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.trace.json")
	var out, errw bytes.Buffer
	args := []string{"-bench", "BT", "-class", "S", "-upm", "recrep", "-chrome", path}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("dump is not Chrome-loadable JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"iteration", "z_solve", "marked_phase", "upm_replay", "upm_undo"} {
		if !names[want] {
			t.Errorf("Chrome trace lacks %q records", want)
		}
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Error("stderr lacks the wrote-file confirmation")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upmgo"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-class", "Q"},
		{"-placement", "best"},
		{"-upm", "sometimes"},
		{"-bench", "UA"},
		{"stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunSummary(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "FT", "-class", "S", "-placement", "wc", "-upm", "distribute"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"FT.S",             // the result line
		"phase breakdown",  // the Figure 5 decomposition
		"self-deactivated", // UPMlib's Figure 2 protocol fired
		"per iteration:",   // the per-iteration table
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary lacks %q:\n%s", want, text)
		}
	}
}

// writeSeries runs CG Class S with a sampler attached and dumps the
// series JSON — the same artifact `sweep -metrics` drops per cell. (CG,
// not FT: Class S FT fits in the L2 caches after warm-up, so its
// steady-state counter heatmaps are legitimately all zero.)
func writeSeries(t *testing.T, heatmap bool) string {
	t.Helper()
	s := upmgo.NewMetricsSampler(upmgo.MetricsOptions{Heatmap: heatmap, Cell: "cg-wc-test"})
	cfg := upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: upmgo.WorstCase,
		UPM:       upmgo.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	}
	if _, err := upmgo.RunNAS("CG", cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cg.metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Series().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunHeatmap renders a freshly captured series and checks the
// subcommand's geometry: a header naming the cell, one block per
// iteration with one intensity row per node, and the dominant-node row.
func TestRunHeatmap(t *testing.T) {
	path := writeSeries(t, true)
	var out, errw bytes.Buffer
	if err := run([]string{"heatmap", "-in", path, "-width", "40"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cg-wc-test:") || !strings.Contains(text, "iterations captured") {
		t.Errorf("header missing:\n%s", text)
	}
	blocks := strings.Count(text, "iteration ")
	nodeRows := strings.Count(text, "node 0 |")
	domRows := strings.Count(text, "dom    |")
	if blocks == 0 || nodeRows != blocks || domRows != blocks {
		t.Errorf("got %d iteration blocks, %d node-0 rows, %d dom rows", blocks, nodeRows, domRows)
	}
	// Early iterations carry live counters, so at least one dominant row
	// must name nodes. (Later rows may be all '.': once UPMlib freezes
	// the pages, reference counting stops.)
	populated := 0
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "dom    |"); ok {
			if strings.Trim(rest, ".|") != "" {
				populated++
			}
		}
	}
	if populated == 0 {
		t.Errorf("every dominant row is empty:\n%s", text)
	}

	// -iter selects a single block.
	out.Reset()
	if err := run([]string{"heatmap", "-in", path, "-iter", "1"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "iteration "); got != 1 {
		t.Errorf("-iter 1 rendered %d blocks", got)
	}
}

// TestRunHeatmapErrors: bad invocations fail loudly rather than printing
// an empty map.
func TestRunHeatmapErrors(t *testing.T) {
	withHeat := writeSeries(t, true)
	without := writeSeries(t, false)
	cases := [][]string{
		{"heatmap"}, // -in required
		{"heatmap", "-in", "/does/not/exist.json"},   // unreadable
		{"heatmap", "-in", withHeat, "-iter", "999"}, // no such iteration
		{"heatmap", "-in", without},                  // series captured no heatmaps
		{"heatmap", "-in", withHeat, "stray"},        // stray positional
		{"heatmap", "-nope"},                         // unknown flag
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunChromeDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.trace.json")
	var out, errw bytes.Buffer
	args := []string{"-bench", "BT", "-class", "S", "-upm", "recrep", "-chrome", path}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("dump is not Chrome-loadable JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"iteration", "z_solve", "marked_phase", "upm_replay", "upm_undo"} {
		if !names[want] {
			t.Errorf("Chrome trace lacks %q records", want)
		}
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Error("stderr lacks the wrote-file confirmation")
	}
}

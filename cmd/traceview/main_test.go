package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-class", "Q"},
		{"-placement", "best"},
		{"-upm", "sometimes"},
		{"-bench", "UA"},
		{"stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunSummary(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "FT", "-class", "S", "-placement", "wc", "-upm", "distribute"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"FT.S",             // the result line
		"phase breakdown",  // the Figure 5 decomposition
		"self-deactivated", // UPMlib's Figure 2 protocol fired
		"per iteration:",   // the per-iteration table
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary lacks %q:\n%s", want, text)
		}
	}
}

func TestRunChromeDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.trace.json")
	var out, errw bytes.Buffer
	args := []string{"-bench", "BT", "-class", "S", "-upm", "recrep", "-chrome", path}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("dump is not Chrome-loadable JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"iteration", "z_solve", "marked_phase", "upm_replay", "upm_undo"} {
		if !names[want] {
			t.Errorf("Chrome trace lacks %q records", want)
		}
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Error("stderr lacks the wrote-file confirmation")
	}
}

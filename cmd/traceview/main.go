// Command traceview runs one NAS benchmark with the virtual-time tracer
// attached and prints the trace summary: the per-phase virtual-time
// breakdown of the timed loop (the paper's Figure 5 decomposition), the
// migration-engine activity per iteration, and the machine event counts.
// Tracing never charges virtual time, so the numbers are identical to an
// untraced run of the same configuration.
//
// Examples:
//
//	traceview -bench BT                            # ft baseline summary
//	traceview -bench FT -placement wc -upm distribute
//	traceview -bench SP -upm recrep -chrome sp.json # + Chrome trace dump
//
// The heatmap subcommand renders the per-page × node reference-counter
// matrices captured by `sweep -metrics` (one per iteration) as ASCII
// intensity rows — how each node's references concentrate and shift
// across the hot pages as the migration engines act:
//
//	traceview heatmap -in out/bt-wc-upmlib-classS.metrics.json
//	traceview heatmap -in cell.metrics.json -iter 3 -width 64
//
// The report subcommand pretty-prints the host-side sweep report that
// `sweep -report file.json` writes: cells by fast-path kind, the host
// wall-time split by stage with its attribution ratio, the slowest
// cells, and the why-not histogram of cells that declined to
// fast-forward:
//
//	traceview report -in report.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upmgo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any writers.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "heatmap" {
		return runHeatmap(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "report" {
		return runReport(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT (or LU, EP, IS)")
	class := fs.String("class", "S", "problem class: S, W or A")
	placement := fs.String("placement", "ft", "initial page placement: ft, rr, rand or wc")
	upmMode := fs.String("upm", "off", "UPMlib protocol: off, distribute or recrep")
	kmig := fs.Bool("kmig", false, "enable the IRIX-style kernel migration engine")
	threads := fs.Int("threads", 0, "team size (0 = all simulated CPUs)")
	iters := fs.Int("iters", 0, "override iteration count (0 = class default)")
	seed := fs.Uint64("seed", 42, "workload seed")
	chrome := fs.String("chrome", "", "also write the Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	cfg := upmgo.NASConfig{Threads: *threads, Iterations: *iters, Seed: *seed}
	switch strings.ToUpper(*class) {
	case "S":
		cfg.Class = upmgo.ClassS
	case "W":
		cfg.Class = upmgo.ClassW
	case "A":
		cfg.Class = upmgo.ClassA
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	switch strings.ToLower(*placement) {
	case "ft":
		cfg.Placement = upmgo.FirstTouch
	case "rr":
		cfg.Placement = upmgo.RoundRobin
	case "rand":
		cfg.Placement = upmgo.Random
	case "wc":
		cfg.Placement = upmgo.WorstCase
	default:
		return fmt.Errorf("unknown placement %q (want ft, rr, rand or wc)", *placement)
	}
	switch strings.ToLower(*upmMode) {
	case "off":
		cfg.UPM = upmgo.UPMOff
	case "distribute":
		cfg.UPM = upmgo.UPMDistribute
	case "recrep":
		cfg.UPM = upmgo.UPMRecRep
	default:
		return fmt.Errorf("unknown upm mode %q (want off, distribute or recrep)", *upmMode)
	}
	cfg.KernelMig = *kmig

	rec := upmgo.NewTraceRecorder()
	cfg.Tracer = rec
	res, err := upmgo.RunNAS(strings.ToUpper(*bench), cfg)
	if err != nil {
		return err
	}
	events := rec.Events()

	fmt.Fprintf(stdout, "%s\n", res)
	upmgo.WriteTraceSummary(stdout, upmgo.SummarizeTrace(events))

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := upmgo.WriteChromeTrace(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "traceview: wrote %s (%d events)\n", *chrome, len(events))
	}
	return nil
}

// runReport renders a `sweep -report` file as text tables.
func runReport(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceview report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "sweep report to render (a JSON file from `sweep -report`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *in == "" {
		fs.Usage()
		return errors.New("report: -in is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var sr upmgo.SweepReport
	if err := json.Unmarshal(blob, &sr); err != nil {
		return fmt.Errorf("%s is not a sweep report: %w", *in, err)
	}
	if sr.Cells == 0 {
		return fmt.Errorf("%s reports no cells — produce one with `sweep ... -report %s`", *in, *in)
	}
	writeReport(stdout, sr)
	return nil
}

// writeReport prints one SweepReport: the headline, cells by fast-path
// kind (cheapest first), host time by stage with the attribution ratio
// the telemetry layer promises (≥90% on real sweeps), the slowest
// cells, and the why-not histogram naming each refusing cell.
func writeReport(w io.Writer, sr upmgo.SweepReport) {
	fmt.Fprintf(w, "sweep report: %d cell runs, %.3fs host time", sr.Cells, sr.HostSeconds)
	if sr.WallSeconds > 0 {
		fmt.Fprintf(w, " over %.3fs wall (%.1fx parallel)", sr.WallSeconds, sr.HostSeconds/sr.WallSeconds)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "\nCells by fast path (cheapest first):")
	var maxKind int
	for _, k := range upmgo.FastPathKinds {
		if n := sr.ByKind[k]; n > maxKind {
			maxKind = n
		}
	}
	for _, k := range upmgo.FastPathKinds {
		n := sr.ByKind[k]
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-16s %5d  %s\n", k, n, strings.Repeat("#", bar(float64(n), float64(maxKind))))
	}

	fmt.Fprintf(w, "\nHost time by stage (%.1f%% of host time attributed):\n", 100*sr.Attributed())
	var maxStage float64
	sr.Stages.Each(func(name string, sec float64) {
		if sec > maxStage {
			maxStage = sec
		}
	})
	sr.Stages.Each(func(name string, sec float64) {
		if sec <= 0 {
			return
		}
		fmt.Fprintf(w, "  %-16s %10.4fs %5.1f%%  %s\n", name, sec,
			100*sec/sr.HostSeconds, strings.Repeat("#", bar(sec, maxStage)))
	})
	if resid := sr.HostSeconds - sr.Stages.Sum(); resid > 0 {
		fmt.Fprintf(w, "  %-16s %10.4fs %5.1f%%\n", "(unattributed)", resid, 100*resid/sr.HostSeconds)
	}

	if len(sr.Slowest) > 0 {
		fmt.Fprintln(w, "\nSlowest cells:")
		for i, c := range sr.Slowest {
			fmt.Fprintf(w, "  %d. %-3s %-14s class%-2s %-15s %9.4fs host (%8.4fs virtual, %s)\n",
				i+1, c.Bench, c.Label, c.Class, c.Kind, c.HostSeconds, c.VirtualSeconds, c.Source)
		}
	}

	if len(sr.WhyNot) > 0 {
		fmt.Fprintln(w, "\nWhy the fast path declined:")
		for _, wn := range sr.WhyNot {
			fmt.Fprintf(w, "  %-24s %5d  %s\n", wn.Reason, wn.Count, joinCells(wn.Cells, 6))
		}
	}
}

// bar scales v against max to a 40-column hash bar (at least one column
// for any non-zero value, like the figure renderers).
func bar(v, max float64) int {
	if v <= 0 || max <= 0 {
		return 0
	}
	n := int(40*v/max + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// joinCells renders a why-not bucket's cell names, elided past limit.
func joinCells(cells []string, limit int) string {
	if len(cells) <= limit {
		return strings.Join(cells, ", ")
	}
	return fmt.Sprintf("%s, +%d more", strings.Join(cells[:limit], ", "), len(cells)-limit)
}

// heatRamp maps a bucket's share of the hottest bucket to a character,
// dimmest to brightest.
const heatRamp = " .:-=+*#%@"

// runHeatmap renders the reference-counter heatmaps of a metrics series.
func runHeatmap(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceview heatmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "metrics series to render (a .metrics.json from `sweep -metrics`)")
	iter := fs.Int("iter", 0, "single iteration to render (0 = every captured iteration)")
	width := fs.Int("width", 80, "heatmap columns; hot pages are bucketed to fit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *in == "" {
		fs.Usage()
		return errors.New("heatmap: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	se, err := upmgo.ReadMetricsSeries(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	if len(se.Heat) == 0 {
		return fmt.Errorf("%s carries no heatmaps — capture with `sweep -metrics dir` or MetricsOptions{Heatmap: true}", *in)
	}

	cell := se.Cell
	if cell == "" {
		cell = *in
	}
	fmt.Fprintf(stdout, "%s: %d hot pages × %d nodes, %d iterations captured\n\n",
		cell, se.HotPages, se.Nodes, len(se.Heat))
	rendered := 0
	for _, h := range se.Heat {
		if *iter != 0 && h.Step != *iter {
			continue
		}
		writeHeat(stdout, h, *width)
		rendered++
	}
	if rendered == 0 {
		return fmt.Errorf("no heatmap for iteration %d (series has steps 1..%d)", *iter, len(se.Heat))
	}
	return nil
}

// writeHeat prints one iteration's matrix: an intensity row per node
// (each column aggregates a contiguous run of hot pages, scaled to the
// hottest bucket of the iteration) and a closing row naming each
// column's dominant node ('.' where no references landed).
func writeHeat(w io.Writer, h upmgo.MetricsHeat, width int) {
	cols := width
	if cols < 1 {
		cols = 1
	}
	if cols > h.Pages {
		cols = h.Pages
	}
	sums := make([][]uint64, h.Nodes)
	for n := range sums {
		sums[n] = make([]uint64, cols)
	}
	for p := 0; p < h.Pages; p++ {
		c := p * cols / h.Pages
		for n := 0; n < h.Nodes; n++ {
			sums[n][c] += uint64(h.Counts[p*h.Nodes+n])
		}
	}
	var max uint64
	for _, row := range sums {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	fmt.Fprintf(w, "iteration %d (column ≈ %d pages, ramp %q):\n",
		h.Step, (h.Pages+cols-1)/cols, heatRamp)
	for n, row := range sums {
		line := make([]byte, cols)
		for c, v := range row {
			idx := 0
			if max > 0 {
				idx = int(v * uint64(len(heatRamp)-1) / max)
			}
			line[c] = heatRamp[idx]
		}
		fmt.Fprintf(w, "  node %d |%s|\n", n, line)
	}
	dom := make([]byte, cols)
	for c := 0; c < cols; c++ {
		best, bestN := uint64(0), -1
		for n := range sums {
			if sums[n][c] > best {
				best, bestN = sums[n][c], n
			}
		}
		if bestN < 0 {
			dom[c] = '.'
		} else {
			dom[c] = byte('0' + bestN%10)
		}
	}
	fmt.Fprintf(w, "  dom    |%s|\n\n", dom)
}

// Command traceview runs one NAS benchmark with the virtual-time tracer
// attached and prints the trace summary: the per-phase virtual-time
// breakdown of the timed loop (the paper's Figure 5 decomposition), the
// migration-engine activity per iteration, and the machine event counts.
// Tracing never charges virtual time, so the numbers are identical to an
// untraced run of the same configuration.
//
// Examples:
//
//	traceview -bench BT                            # ft baseline summary
//	traceview -bench FT -placement wc -upm distribute
//	traceview -bench SP -upm recrep -chrome sp.json # + Chrome trace dump
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upmgo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT (or LU, EP, IS)")
	class := fs.String("class", "S", "problem class: S, W or A")
	placement := fs.String("placement", "ft", "initial page placement: ft, rr, rand or wc")
	upmMode := fs.String("upm", "off", "UPMlib protocol: off, distribute or recrep")
	kmig := fs.Bool("kmig", false, "enable the IRIX-style kernel migration engine")
	threads := fs.Int("threads", 0, "team size (0 = all simulated CPUs)")
	iters := fs.Int("iters", 0, "override iteration count (0 = class default)")
	seed := fs.Uint64("seed", 42, "workload seed")
	chrome := fs.String("chrome", "", "also write the Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	cfg := upmgo.NASConfig{Threads: *threads, Iterations: *iters, Seed: *seed}
	switch strings.ToUpper(*class) {
	case "S":
		cfg.Class = upmgo.ClassS
	case "W":
		cfg.Class = upmgo.ClassW
	case "A":
		cfg.Class = upmgo.ClassA
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	switch strings.ToLower(*placement) {
	case "ft":
		cfg.Placement = upmgo.FirstTouch
	case "rr":
		cfg.Placement = upmgo.RoundRobin
	case "rand":
		cfg.Placement = upmgo.Random
	case "wc":
		cfg.Placement = upmgo.WorstCase
	default:
		return fmt.Errorf("unknown placement %q (want ft, rr, rand or wc)", *placement)
	}
	switch strings.ToLower(*upmMode) {
	case "off":
		cfg.UPM = upmgo.UPMOff
	case "distribute":
		cfg.UPM = upmgo.UPMDistribute
	case "recrep":
		cfg.UPM = upmgo.UPMRecRep
	default:
		return fmt.Errorf("unknown upm mode %q (want off, distribute or recrep)", *upmMode)
	}
	cfg.KernelMig = *kmig

	rec := upmgo.NewTraceRecorder()
	cfg.Tracer = rec
	res, err := upmgo.RunNAS(strings.ToUpper(*bench), cfg)
	if err != nil {
		return err
	}
	events := rec.Events()

	fmt.Fprintf(stdout, "%s\n", res)
	upmgo.WriteTraceSummary(stdout, upmgo.SummarizeTrace(events))

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := upmgo.WriteChromeTrace(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "traceview: wrote %s (%d events)\n", *chrome, len(events))
	}
	return nil
}

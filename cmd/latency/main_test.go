package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRunRejectsArguments(t *testing.T) {
	for _, args := range [][]string{{"-nope"}, {"stray"}} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// TestRunTable1 checks the probed ladder: every hierarchy level appears
// and the latencies grow monotonically down the table.
func TestRunTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"L1 cache", "L2 cache", "local memory", "remote memory"} {
		if !strings.Contains(text, want) {
			t.Errorf("table lacks a %q row:\n%s", want, text)
		}
	}
	var last float64
	var levels int
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		ns, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			continue // header lines
		}
		levels++
		if ns < last {
			t.Errorf("latency ladder not monotone at %q (%.1f after %.1f)", line, ns, last)
		}
		last = ns
	}
	if levels != 6 {
		t.Errorf("parsed %d latency rows, want 6:\n%s", levels, text)
	}
}

package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRunRejectsArguments(t *testing.T) {
	for _, args := range [][]string{{"-nope"}, {"stray"}} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// checkLadder parses a rendered table and returns the number of latency
// rows, failing the test if the ladder is not monotone or lacks a level.
func checkLadder(t *testing.T, text string) int {
	t.Helper()
	for _, want := range []string{"L1 cache", "L2 cache", "local memory", "remote memory"} {
		if !strings.Contains(text, want) {
			t.Errorf("table lacks a %q row:\n%s", want, text)
		}
	}
	var last float64
	var levels int
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		ns, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			continue // header lines
		}
		levels++
		if ns < last {
			t.Errorf("latency ladder not monotone at %q (%.1f after %.1f)", line, ns, last)
		}
		last = ns
	}
	return levels
}

// TestRunTable1 checks the probed ladder: every hierarchy level appears
// and the latencies grow monotonically down the table.
func TestRunTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if levels := checkLadder(t, out.String()); levels != 6 {
		t.Errorf("parsed %d latency rows, want 6:\n%s", levels, out.String())
	}
}

// TestRunTable1ThreeLevelHierarchy prints the ladder of a 3-level
// 4×2×2-node hierarchy (64 CPUs): the doubling hop weights make every
// distance 1..7 reachable, so the table grows to 3 + 7 rows, still
// monotone.
func TestRunTable1ThreeLevelHierarchy(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-topo", "4x2x2x4"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "4x2x2x4") {
		t.Errorf("header does not name the shape:\n%s", text)
	}
	if levels := checkLadder(t, text); levels != 10 {
		t.Errorf("parsed %d latency rows, want 10:\n%s", levels, text)
	}
}

// TestRunTable1OriginPreset: the origin preset is the default machine
// expressed as a hierarchy, so its ladder is identical to the default.
func TestRunTable1OriginPreset(t *testing.T) {
	var def, hier, errw bytes.Buffer
	if err := run(nil, &def, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", "origin"}, &hier, &errw); err != nil {
		t.Fatal(err)
	}
	defRows := def.String()[strings.Index(def.String(), "Level"):]
	hierRows := hier.String()[strings.Index(hier.String(), "Level"):]
	if defRows != hierRows {
		t.Errorf("origin preset ladder differs from the default:\n%s\nvs\n%s", hierRows, defRows)
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-topo", "bogus"}, &out, &errw); err == nil {
		t.Error("run(-topo bogus) succeeded, want an error")
	}
}

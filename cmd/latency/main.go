// Command latency probes the simulated ccNUMA memory hierarchy and prints
// the paper's Table 1: access latency to L1, L2, local memory and remote
// memory at each hop distance the configured topology reaches.
//
// Usage:
//
//	latency                 # the paper's Origin2000 (remote at 1..3 hops)
//	latency -topo hier64    # a 64-CPU 4-socket hierarchy's ladder
//	latency -topo 4x2x2x4   # any [cube:]LxLx...xC shape spec
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upmgo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "latency: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topo := fs.String("topo", "", "machine shape: a [cube:]LxLx...xC spec (last component = CPUs per node) or preset (origin, hier64, hier128, hier256); empty = the paper's Origin2000")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	return upmgo.WriteTable1Topo(stdout, *topo)
}

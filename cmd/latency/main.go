// Command latency probes the simulated ccNUMA memory hierarchy and prints
// the paper's Table 1: access latency to L1, L2, local memory and remote
// memory at 1..3 hops.
//
// Usage:
//
//	latency
package main

import (
	"fmt"
	"os"

	"upmgo"
)

func main() {
	if err := upmgo.WriteTable1(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
}

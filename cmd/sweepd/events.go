package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"upmgo"
)

// jobEvent is one line of a job's NDJSON lifecycle stream. Seq numbers
// are per-job, dense from 1, so a client that reconnects can detect
// gaps (there are none — the stream always replays from the start).
type jobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // job_queued, job_started, cell_started, cell_done, job_done, job_failed
	Job  string `json:"job"`

	// Cell events: which cell, and where its record will land.
	Bench   string `json:"bench,omitempty"`
	Label   string `json:"label,omitempty"`
	Address string `json:"address,omitempty"`
	Index   int    `json:"index,omitempty"` // 1-based presentation position
	Total   int    `json:"total,omitempty"`

	// cell_done only: outcome and host cost.
	Kind           string  `json:"kind,omitempty"` // exp.FastPathKind
	WhyNot         string  `json:"why_not,omitempty"`
	HostSeconds    float64 `json:"host_seconds,omitempty"`
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`

	// job_done / job_failed only.
	CellsDone int    `json:"cells_done,omitempty"`
	Error     string `json:"error,omitempty"`
}

// appendEvent records one event on j's log and wakes every stream
// waiting on it. Caller holds s.mu.
func (s *server) appendEvent(j *job, ev jobEvent) {
	ev.Seq = len(j.events) + 1
	ev.Job = j.ID
	j.events = append(j.events, ev)
	s.cond.Broadcast()
}

// cellEvent translates one runner progress event into the job's stream
// form, joining it with the submission-time cell list for the address.
func cellEvent(j *job, ev upmgo.SweepEvent) jobEvent {
	je := jobEvent{
		Type:  "cell_started",
		Index: ev.Index + 1,
		Total: ev.Total,
	}
	if ev.Index >= 0 && ev.Index < len(j.Cells) {
		ref := j.Cells[ev.Index]
		je.Bench, je.Label, je.Address = ref.Bench, ref.Label, ref.Address
	}
	if !ev.Done {
		return je
	}
	je.Type = "cell_done"
	je.HostSeconds = ev.Host.Seconds()
	je.VirtualSeconds = ev.VirtualS
	if rep := ev.Report; rep != nil {
		je.Kind = string(rep.Kind)
		if w := rep.FastPath.WhyNot; w != nil {
			je.WhyNot = string(w.Reason)
		}
	}
	if ev.Err != nil {
		je.Error = ev.Err.Error()
	}
	return je
}

// terminal reports whether a job state can no longer change (and its
// event log is therefore complete).
func (st jobState) terminal() bool { return st == jobDone || st == jobFailed }

// handleEvents streams one job's lifecycle as NDJSON: the full history
// first (a finished job replays and closes immediately), then live
// events as they happen, ending when the job reaches a terminal state
// or the client disconnects. `curl -N .../v1/jobs/job-1/events` tails a
// running sweep.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrJobNotFound, id))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// cond.Wait cannot watch the client's context, so a sentinel
	// goroutine turns disconnection into a broadcast; every stream
	// rechecks its own context after each wakeup.
	done := r.Context().Done()
	go func() {
		<-done
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	next := 0
	for {
		s.mu.Lock()
		for next >= len(j.events) && !j.State.terminal() && r.Context().Err() == nil {
			s.cond.Wait()
		}
		batch := j.events[next:]
		next = len(j.events)
		finished := j.State.terminal()
		s.mu.Unlock()

		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(batch) > 0 && fl != nil {
			fl.Flush()
		}
		if r.Context().Err() != nil {
			return
		}
		if finished && next == eventCount(s, j) {
			return
		}
	}
}

// eventCount reads the job's current event count under the lock.
func eventCount(s *server, j *job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(j.events)
}

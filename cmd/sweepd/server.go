package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"upmgo"
)

// ErrJobNotFound reports a job id the server has never issued. The HTTP
// layer maps it to 404 Not Found; matched with errors.Is.
var ErrJobNotFound = errors.New("sweepd: job not found")

// jobState is a job's place in its lifecycle. States only move forward:
// queued → running → done|failed.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// cellRef points one of a job's cells at its store record: fetch it at
// /v1/cells/{address} once the job is done.
type cellRef struct {
	Bench   string `json:"bench"`
	Label   string `json:"label"`
	Address string `json:"address,omitempty"` // empty: cell not memoizable, never stored
}

// job is one submitted sweep. All fields are guarded by server.mu; the
// status JSON served to clients is a snapshot taken under the lock.
type job struct {
	ID        string             `json:"id"`
	State     jobState           `json:"state"`
	Request   upmgo.SweepRequest `json:"request"`
	Cells     []cellRef          `json:"cells"`
	CellsDone int                `json:"cells_done"`
	Error     string             `json:"error,omitempty"`
	Result    *upmgo.SweepResult `json:"result,omitempty"`

	// Host-side telemetry, invisible to the status JSON: the lifecycle
	// event log behind GET /v1/jobs/{id}/events, and the timestamps the
	// queue-wait and run-time histograms are computed from.
	events   []jobEvent
	accepted time.Time
	started  time.Time
}

// server is the job API: a bounded queue feeding one worker goroutine
// that runs jobs in submission order (each job's cells simulate
// concurrently on the runner's pool), over a shared cache and optional
// result store.
type server struct {
	jobsWide int // runner pool width per job
	cache    *upmgo.SweepCache
	store    *upmgo.ResultStore
	reg      *upmgo.MetricsRegistry

	mu     sync.Mutex
	cond   *sync.Cond // on mu; broadcast on every appended job event
	jobs   map[string]*job
	order  []string // submission order, for GET /v1/jobs
	nextID int

	log *slog.Logger

	queue chan *job
	done  chan struct{} // closed when the worker exits (drain complete)
}

func newServer(jobsWide, queueCap int, st *upmgo.ResultStore, logger *slog.Logger) *server {
	cache := upmgo.NewSweepCache()
	if st != nil {
		cache.SetStore(st)
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	reg := upmgo.NewMetricsRegistry()
	upmgo.DescribeSweepGauges(reg)
	upmgo.PublishBuildInfo(reg)
	reg.Describe("upmgo_sweepd_jobs", "gauge", "Jobs by lifecycle state.")
	reg.DescribeHistogram(upmgo.MetricJobQueueSeconds,
		"Seconds jobs spent queued (accepted to started).", nil)
	reg.DescribeHistogram(upmgo.MetricJobRunSeconds,
		"Seconds jobs spent running (started to terminal state).", nil)
	reg.DescribeHistogram(upmgo.MetricHTTPSeconds,
		"HTTP request latency by endpoint pattern and status code.", nil)
	s := &server{
		jobsWide: jobsWide,
		cache:    cache,
		store:    st,
		reg:      reg,
		log:      logger,
		jobs:     map[string]*job{},
		queue:    make(chan *job, queueCap),
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// handler builds the versioned API mux. The metrics endpoint (plus
// /debug/vars, /debug/pprof/ and the index page) is the same handler
// cmd/sweep serves on -metrics-addr, mounted as the fallback so the
// /v1 patterns take precedence.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", upmgo.MetricsHandler(s.reg))
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cells/{address}", s.handleCell)
	return s.withTelemetry(mux)
}

// statusWriter captures the response code for the latency histogram and
// the request log. It forwards Flush so the NDJSON event stream keeps
// its live-tail behaviour through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry wraps the mux with per-request latency observation and
// structured request logging. The endpoint label is the mux's matched
// pattern ("GET /v1/jobs/{id}"), so path parameters never explode the
// label space; unmatched paths share the fallback's pattern.
func (s *server) withTelemetry(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		elapsed := time.Since(t0)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		s.reg.Observe(upmgo.MetricHTTPSeconds,
			upmgo.MetricsLabels{"endpoint": pattern, "code": strconv.Itoa(sw.code)},
			elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "endpoint", pattern,
			"code", sw.code, "elapsed", elapsed)
	})
}

// httpError writes a JSON error body with the status the error maps to:
// bad requests 400, unknown jobs/cells 404, corrupt records 500.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit validates a sweep request, enumerates its cells, and
// enqueues it. A full queue answers 503 so the client can back off; the
// submission itself never blocks on simulation.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req upmgo.SweepRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// SweepSpecs re-validates the kind (decode already did, via the
	// enum's UnmarshalText) and yields the progress denominator plus each
	// cell's store address, so clients know where results will land
	// before a single cell has run.
	specs, err := upmgo.SweepSpecs(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cells := make([]cellRef, len(specs))
	for i, spec := range specs {
		cells[i] = cellRef{Bench: spec.Bench, Label: spec.Config.Label()}
		if key, ok := spec.Key(); ok {
			cells[i].Address = upmgo.StoreAddress(key)
		}
	}

	s.mu.Lock()
	s.nextID++
	j := &job{
		ID:       fmt.Sprintf("job-%d", s.nextID),
		State:    jobQueued,
		Request:  req,
		Cells:    cells,
		accepted: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, errors.New("job queue full"))
		return
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.appendEvent(j, jobEvent{Type: "job_queued", Total: len(cells)})
	snap := *j
	s.publishJobGauges()
	s.mu.Unlock()
	s.log.Info("job queued", "job", j.ID, "kind", req.Kind.String(), "cells", len(cells))

	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

// handleList serves every job's status, oldest first.
func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var snap job
	if ok {
		snap = *j
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrJobNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCell serves one store record verbatim — the exact bytes `sweep
// -store` or a finished job persisted, integrity-checked on the way out.
// Served bytes are therefore byte-identical to what any other process
// computes for the same cell.
func (s *server) handleCell(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, errors.New("no result store attached (start sweepd with -store)"))
		return
	}
	blob, err := s.store.ReadRecord(r.PathValue("address"))
	switch {
	case errors.Is(err, upmgo.ErrStoreNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, upmgo.ErrStoreCorrupt):
		// The record exists but cannot be trusted; a re-run of the sweep
		// (here or via the CLI) repairs it in place.
		httpError(w, http.StatusInternalServerError, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

// work is the single job executor: jobs run one at a time in submission
// order until ctx is cancelled, at which point still-queued jobs fail
// fast (the drain contract: the running job finishes, nothing new
// starts).
func (s *server) work(ctx context.Context) {
	defer close(s.done)
	for {
		select {
		case <-ctx.Done():
			s.failQueued()
			return
		case j := <-s.queue:
			if ctx.Err() != nil {
				s.fail(j, errors.New("server draining"))
				continue
			}
			s.runJob(ctx, j)
		}
	}
}

// failQueued drains the queue channel, failing everything not yet run.
func (s *server) failQueued() {
	for {
		select {
		case j := <-s.queue:
			s.fail(j, errors.New("server draining"))
		default:
			return
		}
	}
}

func (s *server) fail(j *job, err error) {
	s.mu.Lock()
	j.State = jobFailed
	j.Error = err.Error()
	s.appendEvent(j, jobEvent{Type: "job_failed", CellsDone: j.CellsDone, Error: j.Error})
	s.publishJobGauges()
	s.mu.Unlock()
	s.log.Warn("job failed", "job", j.ID, "error", err)
}

// runJob executes one sweep on the shared cache/store, streaming
// per-cell progress into the job record and the metrics registry.
func (s *server) runJob(ctx context.Context, j *job) {
	s.mu.Lock()
	j.State = jobRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.accepted)
	s.appendEvent(j, jobEvent{Type: "job_started", Total: len(j.Cells)})
	s.publishJobGauges()
	s.mu.Unlock()
	s.reg.Observe(upmgo.MetricJobQueueSeconds, nil, queueWait.Seconds())
	s.log.Info("job started", "job", j.ID, "queue_wait", queueWait)

	r := upmgo.SweepRunner{
		Jobs:  s.jobsWide,
		Cache: s.cache,
		OnEvent: func(ev upmgo.SweepEvent) {
			upmgo.PublishSweepEvent(s.reg, s.cache, ev)
			s.mu.Lock()
			if ev.Done {
				j.CellsDone++
			}
			s.appendEvent(j, cellEvent(j, ev))
			s.mu.Unlock()
		},
	}
	res, err := r.Sweep(ctx, j.Request)

	s.mu.Lock()
	if err != nil {
		j.State = jobFailed
		j.Error = err.Error()
		s.appendEvent(j, jobEvent{Type: "job_failed", CellsDone: j.CellsDone, Error: j.Error})
	} else {
		j.State = jobDone
		j.Result = &res
		s.appendEvent(j, jobEvent{Type: "job_done", CellsDone: j.CellsDone, Total: len(j.Cells)})
	}
	state := j.State
	cellsDone := j.CellsDone
	elapsed := time.Since(j.started)
	s.publishJobGauges()
	s.mu.Unlock()
	s.reg.Observe(upmgo.MetricJobRunSeconds,
		upmgo.MetricsLabels{"state": string(state)}, elapsed.Seconds())
	if err != nil {
		s.log.Warn("job failed", "job", j.ID, "elapsed", elapsed, "error", err)
	} else {
		s.log.Info("job done", "job", j.ID, "elapsed", elapsed, "cells", cellsDone)
	}
}

// publishJobGauges re-derives the per-state job counts. Called under
// s.mu on every transition; the registry locks internally.
func (s *server) publishJobGauges() {
	counts := map[jobState]int{}
	for _, j := range s.jobs {
		counts[j.State]++
	}
	for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed} {
		s.reg.Set("upmgo_sweepd_jobs", upmgo.MetricsLabels{"state": string(st)}, float64(counts[st]))
	}
}

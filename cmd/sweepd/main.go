// Command sweepd serves the paper's sweeps as a long-running job
// service: submit a sweep request, poll its progress, and fetch
// individual cells out of the shared content-addressed result store —
// the same store `sweep -store` reads and writes, so a sweep the daemon
// ran once is a warm start for every later client and process.
//
// The HTTP API is versioned under /v1:
//
//	POST /v1/jobs            submit a sweep (body: {"kind": "figure1", "options": {...}})
//	GET  /v1/jobs            list jobs, oldest first
//	GET  /v1/jobs/{id}       one job's status, progress and (when done) result
//	GET  /v1/cells/{address} one cell's store record, served verbatim
//	GET  /metrics            Prometheus text (upmgo_sweep_cells_*, upmgo_sweepd_jobs)
//	GET  /debug/pprof/       host profiles; /debug/vars for expvar
//
// Jobs run one at a time off a bounded queue (each job's cells simulate
// concurrently, -jobs wide); a full queue answers 503. SIGTERM/SIGINT
// drains gracefully: the listener stops, the running job finishes,
// still-queued jobs fail with "server draining", and the process exits.
//
// Examples:
//
//	sweepd -store results/ -addr localhost:8080
//	curl -d '{"kind":"figure1","options":{"class":"S","threads":1}}' localhost:8080/v1/jobs
//	curl -d '{"kind":"figure4","options":{"class":"W","topo":"hier64"}}' localhost:8080/v1/jobs
//	curl -d '{"kind":"toposcale","options":{"class":"W","steady":true}}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/job-1
//	sweepd -store results/ -check     # offline admin: verify every record
//	sweepd -store results/ -gc 64e6   # drop corrupt/stale, evict to 64 MB
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"upmgo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
}

// serving is a test seam: called with the bound listen address once the
// server is accepting, so tests can drive a real listener on port 0.
var serving = func(addr string) {}

// run is main without the process exit: it parses args, then either
// performs one offline store-admin action or serves the job API until
// ctx is cancelled (the signal path) and the drain completes.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address for the job API")
	storeDir := fs.String("store", "", "content-addressed result store directory (shared with `sweep -store`; enables /v1/cells and cross-process warm starts)")
	jobs := fs.Int("jobs", 0, "concurrent cell simulations per job (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 16, "maximum queued jobs before POST /v1/jobs answers 503")
	drain := fs.Duration("drain", time.Minute, "graceful-shutdown grace period for the running job")
	logFormat := fs.String("log", "text", "structured log format: text or json (slog to stderr)")
	scan := fs.Bool("scan", false, "offline admin: list every record in -store and exit")
	check := fs.Bool("check", false, "offline admin: verify every record in -store and exit (non-zero on corruption)")
	gc := fs.Int64("gc", -1, "offline admin: drop corrupt/stale records, evict oldest intact ones down to this byte budget (0 = no size cap), and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	logger, err := newLogger(*logFormat, stderr)
	if err != nil {
		return err
	}

	admin := *scan || *check || *gc >= 0
	if admin && *storeDir == "" {
		return errors.New("-scan/-check/-gc need -store")
	}

	var st *upmgo.ResultStore
	if *storeDir != "" {
		var err error
		if st, err = upmgo.OpenResultStore(*storeDir); err != nil {
			return fmt.Errorf("-store: %w", err)
		}
	}
	if admin {
		return runAdmin(st, *scan, *check, *gc, stdout)
	}

	if *queue < 1 {
		return errors.New("-queue must be at least 1")
	}
	s := newServer(*jobs, *queue, st, logger)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	srv := &http.Server{Handler: s.handler()}

	workCtx, stopWork := context.WithCancel(context.Background())
	go s.work(workCtx)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(),
		"endpoints", "/v1/jobs /v1/jobs/{id}/events /v1/cells /metrics")
	serving(ln.Addr().String())

	select {
	case err := <-errc:
		stopWork()
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight HTTP exchanges and the running
	// job finish (still-queued jobs fail fast), then exit.
	logger.Info("draining", "grace", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(dctx)
	stopWork()
	select {
	case <-s.done:
	case <-dctx.Done():
		return fmt.Errorf("drain: running job did not finish within %s", *drain)
	}
	logger.Info("drained")
	return shutdownErr
}

// newLogger builds the process logger: slog to w in the chosen format.
// The "drained" message sweepd_smoke.sh greps for appears as msg=drained
// (text) or "msg":"drained" (json) — greppable either way.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("-log: unknown format %q (want text or json)", format)
	}
}

// runAdmin performs one offline store maintenance pass.
func runAdmin(st *upmgo.ResultStore, scan, check bool, gc int64, stdout io.Writer) error {
	switch {
	case scan:
		metas, err := st.Scan()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-16s %-6s %-8s %-6s %10s %s\n", "address", "bench", "engine", "class", "bytes", "state")
		for _, m := range metas {
			state := "ok"
			if m.Corrupt {
				state = "corrupt"
			} else if m.Stale {
				state = "stale"
			}
			fmt.Fprintf(stdout, "%-16s %-6s %-8s %-6s %10d %s\n",
				m.Address[:16], m.Bench, m.Engine, m.Class, m.Bytes, state)
		}
		fmt.Fprintf(stdout, "%d records\n", len(metas))
		return nil
	case check:
		ck, err := st.Check()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d intact, %d stale, %d corrupt (%d bytes)\n",
			ck.Records, ck.Stale, ck.Corrupt, ck.Bytes)
		if ck.Corrupt > 0 {
			return fmt.Errorf("%d corrupt records (a re-run with -store repairs them, or -gc drops them)", ck.Corrupt)
		}
		return nil
	default:
		stats, err := st.GC(gc)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "removed %d records (%d bytes), kept %d (%d bytes)\n",
			stats.Removed, stats.RemovedBytes, stats.Kept, stats.KeptBytes)
		return nil
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"upmgo"
)

// seedStore writes one real cell into a fresh store directory.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := upmgo.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := upmgo.RunNAS("BT", upmgo.NASConfig{Class: upmgo.ClassS, Placement: upmgo.FirstTouch, Seed: 42, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("BT\x00seeded", "BT", res); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAdminScanCheckGC(t *testing.T) {
	dir := seedStore(t)
	ctx := context.Background()
	var out, errw bytes.Buffer

	if err := run(ctx, []string{"-store", dir, "-scan"}, &out, &errw); err != nil {
		t.Fatalf("-scan: %v", err)
	}
	if !strings.Contains(out.String(), "1 records") || !strings.Contains(out.String(), "BT") {
		t.Errorf("-scan output:\n%s", out.String())
	}

	out.Reset()
	if err := run(ctx, []string{"-store", dir, "-check"}, &out, &errw); err != nil {
		t.Fatalf("-check: %v", err)
	}
	if !strings.Contains(out.String(), "1 intact, 0 stale, 0 corrupt") {
		t.Errorf("-check output:\n%s", out.String())
	}

	out.Reset()
	if err := run(ctx, []string{"-store", dir, "-gc", "1"}, &out, &errw); err != nil {
		t.Fatalf("-gc: %v", err)
	}
	if !strings.Contains(out.String(), "removed 1 records") {
		t.Errorf("-gc output:\n%s", out.String())
	}
}

func TestAdminNeedsStore(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"-check"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("admin without -store: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"extra"}, &out, &errw); err == nil {
		t.Error("positional arguments accepted")
	}
	if err := run(context.Background(), []string{"-queue", "0"}, &out, &errw); err == nil {
		t.Error("-queue 0 accepted")
	}
	if err := run(context.Background(), []string{"-store", "/dev/null/nope"}, &out, &errw); err == nil {
		t.Error("unusable -store accepted")
	}
}

// TestServeAndDrain boots the real daemon on an ephemeral port, submits
// a job over TCP, then cancels the context (the SIGTERM path) and
// expects a clean drain: the running job finishes before run returns.
func TestServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	old := serving
	serving = func(addr string) { addrc <- addr }
	defer func() { serving = old }()

	var out, errw bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store", dir, "-jobs", "2"}, &out, &errw)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited early: %v (stderr: %s)", err, errw.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	blob, _ := json.Marshal(testRequest)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %s", resp.Status)
	}

	// Poll until done, then drain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get("http://" + addr + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got job
		if err := json.NewDecoder(jr.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if got.State == jobDone {
			break
		}
		if got.State == jobFailed {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v (stderr: %s)", err, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	if !strings.Contains(errw.String(), "drained") {
		t.Errorf("stderr missing drain notice:\n%s", errw.String())
	}

	// The drained daemon left a warm store behind: every cell of the job
	// is on disk, intact.
	st, err := upmgo.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := st.Check()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Records != 8 || ck.Corrupt != 0 {
		t.Errorf("store after drain: %+v, want 8 intact", ck)
	}
}

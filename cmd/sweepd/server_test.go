package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"upmgo"
)

// testRequest is the smallest real sweep: Figure 1 on BT at class S,
// Threads 1 (exactly reproducible, so byte-comparisons are valid).
var testRequest = upmgo.SweepRequest{
	Kind: upmgo.KindFigure1,
	Options: upmgo.SweepOptions{
		Class: upmgo.ClassS, Benches: []string{"BT"}, Seed: 42, Threads: 1,
	},
}

// startServer boots a server (with worker) over a fresh store directory
// and returns it with its HTTP test frontend.
func startServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	st, err := upmgo.OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(2, 4, st, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go s.work(ctx)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		<-s.done
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (job, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	}
	return j, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %s", id, resp.Status)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitDone polls a job until it leaves the queue and the pool.
func waitDone(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := getJob(t, ts, id)
		if j.State == jobDone || j.State == jobFailed {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle is the acceptance path: submit → poll → done with a
// result identical to the in-process computation → fetch one cell from
// /v1/cells and byte-compare it against an independently encoded record.
func TestJobLifecycle(t *testing.T) {
	_, ts := startServer(t)
	blob, err := json.Marshal(testRequest)
	if err != nil {
		t.Fatal(err)
	}
	j, resp := postJob(t, ts, string(blob))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %s", resp.Status)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Errorf("Location = %q", loc)
	}
	if len(j.Cells) != 8 {
		t.Fatalf("figure1/BT enumerated %d cells, want 8", len(j.Cells))
	}

	final := waitDone(t, ts, j.ID)
	if final.State != jobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.CellsDone != len(final.Cells) {
		t.Errorf("progress says %d/%d cells", final.CellsDone, len(final.Cells))
	}

	// The served result must match a direct, storeless, in-process sweep.
	direct, err := upmgo.Sweep(testRequest)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || !reflect.DeepEqual(*final.Result, direct) {
		t.Error("job result differs from direct Sweep of the same request")
	}

	// Fetch one cell and byte-compare it against the record encoding of
	// the direct computation: daemon-served bytes are bit-identical to
	// what any process computes for the cell.
	specs, err := upmgo.SweepSpecs(testRequest)
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range final.Cells {
		cresp, err := http.Get(ts.URL + "/v1/cells/" + ref.Address)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(cresp.Body)
		cresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/cells/%s: %s", ref.Address, cresp.Status)
		}
		key, ok := specs[i].Key()
		if !ok {
			t.Fatal("spec not memoizable")
		}
		want, err := upmgo.EncodeStoreRecord(key, ref.Bench, direct.Cells[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("cell %s served bytes differ from the direct computation's encoding", ref.Label)
		}
	}
}

// TestWarmStartSecondJob: the same request twice simulates nothing the
// second time (RAM + store hits only), and returns the identical result.
func TestWarmStartSecondJob(t *testing.T) {
	s, ts := startServer(t)
	blob, _ := json.Marshal(testRequest)
	j1, _ := postJob(t, ts, string(blob))
	first := waitDone(t, ts, j1.ID)
	stats := s.cache.Stats()
	if stats.Misses == 0 || stats.StorePuts != stats.Misses {
		t.Fatalf("cold job stats look wrong: %+v", stats)
	}
	j2, _ := postJob(t, ts, string(blob))
	second := waitDone(t, ts, j2.ID)
	if after := s.cache.Stats(); after.Misses != stats.Misses {
		t.Errorf("second job simulated %d new cells, want 0", after.Misses-stats.Misses)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Error("second job's result differs from the first")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := startServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown kind", `{"kind":"figure9","options":{}}`},
		{"not json", `not json`},
		{"unknown field", `{"kind":"figure1","options":{},"surprise":1}`},
		{"bad class", `{"kind":"figure1","options":{"class":"Z"}}`},
	} {
		if _, resp := postJob(t, ts, tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %s, want 400", tc.name, resp.Status)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: got %s, want 404", resp.Status)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/cells/" + strings.Repeat("0", 64)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("missing cell: got %s, want 404", resp.Status)
		}
	}
}

// TestQueueFullAnswers503: with no worker draining the queue, the
// (queueCap+1)-th submission is rejected with 503 and does not appear in
// the job list.
func TestQueueFullAnswers503(t *testing.T) {
	s := newServer(1, 2, nil, nil) // worker never started
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	blob, _ := json.Marshal(testRequest)
	for i := 0; i < 2; i++ {
		if _, resp := postJob(t, ts, string(blob)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: %s", i, resp.Status)
		}
	}
	_, resp := postJob(t, ts, string(blob))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission: got %s, want 503", resp.Status)
	}
	list, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var body struct {
		Jobs []job `json:"jobs"`
	}
	if err := json.NewDecoder(list.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 2 {
		t.Errorf("job list has %d entries, want the 2 accepted", len(body.Jobs))
	}
}

// TestDrainFailsQueuedJobs: cancelling the worker context fails
// still-queued jobs fast and closes the drain barrier.
func TestDrainFailsQueuedJobs(t *testing.T) {
	s := newServer(1, 4, nil, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	blob, _ := json.Marshal(testRequest)
	j, _ := postJob(t, ts, string(blob))

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-cancelled: the worker must fail everything queued
	go s.work(ctx)
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	if got := getJob(t, ts, j.ID); got.State != jobFailed || !strings.Contains(got.Error, "draining") {
		t.Errorf("queued job after drain: state %s, error %q", got.State, got.Error)
	}
}

// TestMetricsEndpoint: the daemon serves the shared sweep gauges plus
// its own job-state family on /metrics.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t)
	blob, _ := json.Marshal(testRequest)
	j, _ := postJob(t, ts, string(blob))
	waitDone(t, ts, j.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`upmgo_sweepd_jobs{state="done"} 1`,
		"upmgo_sweep_cells_done",
		"upmgo_sweep_cells_stored",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCellsSharedWithCLIStore: a store directory populated by one
// process (standing in for `sweep -store`) is served by the daemon
// without re-running anything — no worker involved at all.
func TestCellsSharedWithCLIStore(t *testing.T) {
	dir := t.TempDir()
	writer, err := upmgo.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := upmgo.Sweep(testRequest)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := upmgo.SweepSpecs(testRequest)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := specs[0].Key()
	if !ok {
		t.Fatal("spec not memoizable")
	}
	if err := writer.Put(key, specs[0].Bench, direct.Cells[0].Result); err != nil {
		t.Fatal(err)
	}

	reader, err := upmgo.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(1, 1, reader, nil) // no worker: serving is read-only
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/cells/%s", ts.URL, upmgo.StoreAddress(key)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cells: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := upmgo.EncodeStoreRecord(key, specs[0].Bench, direct.Cells[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("daemon served different bytes than the CLI-written record")
	}
}
